/**
 * @file
 * Domain example: co-run an ocean-model stencil pass (the paper's
 * 654.rom_s loops, written out literally from Fig. 2a) with an image
 * filter (OpenCV-style rgb2hsv) on all four SIMD architectures, and
 * watch the elastic lane partition react to the stencil's two phases.
 *
 * This is the paper's motivating scenario expressed through the public
 * API: real expression DAGs with common subexpressions, stencil offsets
 * (dz[k-1]) and loop-invariant constants.
 */

#include <cstdio>

#include "sim/system.hh"
#include "workloads/phases.hh"

using namespace occamy;

int
main()
{
    // Core0: the 654.rom_s memory-intensive pair of loops (Fig. 2a).
    std::vector<kir::Loop> ocean = {
        workloads::makeRh3dLoop(49152),
        workloads::makeRhoEosLoop(49152),
    };
    // Core1: a compute-intensive per-pixel colour-space conversion.
    std::vector<kir::Loop> filter = {
        workloads::makeNamedPhase("rgb2hsv", 393216),
    };

    std::printf("co-running ocean stencil (memory) with rgb2hsv "
                "(compute) on 32 shared lanes\n\n");
    std::printf("%-8s %12s %12s %10s %10s %8s\n", "arch", "ocean(cyc)",
                "filter(cyc)", "ocean spd", "filter spd", "util");

    Cycle base0 = 0, base1 = 0;
    for (SharingPolicy p :
         {SharingPolicy::Private, SharingPolicy::Temporal,
          SharingPolicy::StaticSpatial, SharingPolicy::Elastic}) {
        System sys(MachineConfig::forPolicy(p, 2));
        sys.setWorkload(0, "ocean", ocean);
        sys.setWorkload(1, "filter", filter);
        RunResult r = sys.run();
        if (p == SharingPolicy::Private) {
            base0 = r.cores[0].finish;
            base1 = r.cores[1].finish;
        }
        std::printf("%-8s %12llu %12llu %9.2fx %9.2fx %7.1f%%\n",
                    policyName(p),
                    static_cast<unsigned long long>(r.cores[0].finish),
                    static_cast<unsigned long long>(r.cores[1].finish),
                    static_cast<double>(base0) / r.cores[0].finish,
                    static_cast<double>(base1) / r.cores[1].finish,
                    100.0 * r.simdUtil);

        if (p == SharingPolicy::Elastic) {
            std::printf("\nelastic phase trace (core0):\n");
            for (const auto &ph : r.cores[0].phases)
                std::printf("  %-10s [%7llu .. %7llu]  VL %u -> %u "
                            "lanes, issue rate %.2f\n",
                            ph.name.c_str(),
                            static_cast<unsigned long long>(ph.start),
                            static_cast<unsigned long long>(ph.end),
                            ph.firstVl * kLanesPerBu,
                            ph.lastVl * kLanesPerBu, ph.issueRate);
            std::printf("elastic phase trace (core1):\n");
            for (const auto &ph : r.cores[1].phases)
                std::printf("  %-10s [%7llu .. %7llu]  VL %u -> %u "
                            "lanes, issue rate %.2f\n",
                            ph.name.c_str(),
                            static_cast<unsigned long long>(ph.start),
                            static_cast<unsigned long long>(ph.end),
                            ph.firstVl * kLanesPerBu,
                            ph.lastVl * kLanesPerBu, ph.issueRate);
        }
    }
    return 0;
}
