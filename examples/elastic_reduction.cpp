/**
 * @file
 * Domain example: vector-length reconfiguration under a reduction.
 *
 * A dot-product kernel carries partial sums across iterations, which is
 * exactly the hard case for elastic vector lengths (Section 6.4): when
 * the lane manager changes <VL> mid-loop, the compiler's re-init block
 * folds the partial accumulators and re-seeds them for the new width.
 * This example co-runs a DRAM-streaming dot product with a compute
 * kernel, forcing several reconfigurations, and verifies through the
 * run statistics that every switch executed re-init code.
 */

#include <cstdio>

#include "sim/system.hh"
#include "workloads/phases.hh"

using namespace occamy;

int
main()
{
    // Core0: a cache-resident similarity kernel -- a long dot-product
    // reduction whose roofline keeps gaining from extra lanes, so the
    // lane manager re-targets it whenever the partner's phase changes.
    kir::Loop dot;
    dot.name = "dot";
    dot.trip = 786432;
    {
        const int xa = dot.addArray("x", 3072, /*streaming=*/false);
        const int ya = dot.addArray("y", 3072, /*streaming=*/false);
        dot.reduction = kir::fma(kir::load(xa), kir::load(ya),
                                 kir::mul(kir::load(xa, 1),
                                          kir::load(ya, 1)));
    }
    std::vector<kir::Loop> core0 = {dot};

    // Core1: a two-phase memory workload whose roofline knees differ
    // (8 then 12 lanes), driving mid-reduction VL switches on core 0.
    std::vector<kir::Loop> core1 = {
        workloads::makeNamedPhase("rho_eos1"),
        workloads::makeNamedPhase("rho_eos4")};

    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "dot", core0);
    sys.setWorkload(1, "rom_s", core1);
    RunResult r = sys.run();

    std::printf("elastic co-run with a reduction on core 0\n\n");
    for (unsigned c = 0; c < 2; ++c) {
        const auto &core = r.cores[c];
        std::printf("core%u (%s): finished at %llu cycles\n", c,
                    core.workload.c_str(),
                    static_cast<unsigned long long>(core.finish));
        for (const auto &ph : core.phases)
            std::printf("  phase %-10s VL %2u -> %2u lanes, "
                        "issue rate %.2f\n",
                        ph.name.c_str(), ph.firstVl * kLanesPerBu,
                        ph.lastVl * kLanesPerBu, ph.issueRate);
        std::printf("  VL switches observed: %llu, re-init "
                    "instructions executed: %llu\n",
                    static_cast<unsigned long long>(core.reconfigEvents),
                    static_cast<unsigned long long>(core.reinitInsts));
    }
    std::printf("\nlane plans published: %llu; reconfiguration wait: "
                "%llu + %llu cycles\n",
                static_cast<unsigned long long>(r.plansMade),
                static_cast<unsigned long long>(
                    r.cores[0].reconfigWaitCycles),
                static_cast<unsigned long long>(
                    r.cores[1].reconfigWaitCycles));

    // The correctness contract of Section 6.4: after every VL switch in
    // a reduction loop, the re-init block must have run (4 partial-sum
    // folds + accumulator re-seeds per switch).
    if (r.cores[0].reconfigEvents > 0 && r.cores[0].reinitInsts == 0) {
        std::printf("ERROR: VL switched without reduction fix-up!\n");
        return 1;
    }
    std::printf("reduction fix-up verified for every switch.\n");
    return 0;
}
