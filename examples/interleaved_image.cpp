/**
 * @file
 * Domain example: interleaved vs planar image processing with
 * gather/scatter.
 *
 * OpenCV-style pipelines often receive interleaved RGB buffers; a
 * vectorized grayscale conversion then needs stride-3 gathers, which
 * cost one port beat per element and monopolize the ld/st issue slots.
 * This example measures the same math over planar and interleaved
 * layouts, then shows a de-interleave (scatter) + planar pipeline, on
 * the elastic machine.
 */

#include <cstdio>

#include "sim/system.hh"

using namespace occamy;

namespace
{

constexpr std::uint64_t kTile = 3072;   // VecCache-resident tile.

kir::Loop
planarGray(std::uint64_t pixels)
{
    kir::Loop loop;
    loop.name = "gray_planar";
    loop.trip = pixels;
    const int r = loop.addArray("r", kTile, false);
    const int g = loop.addArray("g", kTile, false);
    const int b = loop.addArray("b", kTile, false);
    const int gray = loop.addArray("gray", kTile, false);
    loop.store(gray,
               kir::add(kir::mul(kir::cst(0.299), kir::load(r)),
                        kir::add(kir::mul(kir::cst(0.587), kir::load(g)),
                                 kir::mul(kir::cst(0.114),
                                          kir::load(b)))));
    return loop;
}

kir::Loop
interleavedGray(std::uint64_t pixels)
{
    kir::Loop loop;
    loop.name = "gray_ilv";
    loop.trip = pixels;
    const int rgb = loop.addArray("rgb", kTile * 3, false);
    const int gray = loop.addArray("gray", kTile, false);
    loop.store(gray,
               kir::add(kir::mul(kir::cst(0.299),
                                 kir::loadStrided(rgb, 3, 0)),
                        kir::add(kir::mul(kir::cst(0.587),
                                          kir::loadStrided(rgb, 3, 1)),
                                 kir::mul(kir::cst(0.114),
                                          kir::loadStrided(rgb, 3, 2)))));
    return loop;
}

kir::Loop
deinterleaveChannel(std::uint64_t pixels, int channel)
{
    kir::Loop loop;
    loop.name = "deilv_c" + std::to_string(channel);
    loop.trip = pixels;
    const int rgb = loop.addArray("rgb", kTile * 3, false);
    const int plane = loop.addArray("plane", kTile, false);
    loop.store(plane, kir::loadStrided(rgb, 3, channel));
    return loop;
}

Cycle
timeIt(const char *tag, std::vector<kir::Loop> loops)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, tag, std::move(loops));
    sys.setWorkload(1, "idle", {});
    const RunResult r = sys.run({.maxCycles = 40'000'000});
    std::printf("  %-28s %10llu cycles  (%.2f MB DRAM, util %.1f%%)\n",
                tag, static_cast<unsigned long long>(r.cores[0].finish),
                r.dramBytes / 1048576.0, 100.0 * r.simdUtil);
    return r.cores[0].finish;
}

} // namespace

int
main()
{
    const std::uint64_t pixels = 262144;   // A 512x512 image.
    std::printf("grayscale conversion of a %llu-pixel image on the "
                "elastic machine:\n\n",
                static_cast<unsigned long long>(pixels));

    const Cycle planar = timeIt("planar R/G/B", {planarGray(pixels)});
    const Cycle ilv =
        timeIt("interleaved RGB (gathers)", {interleavedGray(pixels)});
    const Cycle deilv = timeIt(
        "de-interleave then planar",
        {deinterleaveChannel(pixels, 0), deinterleaveChannel(pixels, 1),
         deinterleaveChannel(pixels, 2), planarGray(pixels)});

    std::printf("\ninterleaved costs %.2fx planar; de-interleaving "
                "first costs %.2fx\n",
                static_cast<double>(ilv) / planar,
                static_cast<double>(deilv) / planar);
    std::printf("(gathers move one element per port beat and crack "
                "into both ld/st issue slots)\n");
    return 0;
}
