/**
 * @file
 * Quickstart: define a kernel in the kernel IR, compile it with the
 * Occamy compiler, inspect the generated EM-SIMD code, and run it on
 * the elastic co-processor.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "sim/system.hh"

using namespace occamy;

int
main()
{
    // 1. Describe a loop: saxpy-like y[i] = a*x[i] + y[i].
    kir::Loop loop;
    loop.name = "saxpy";
    loop.trip = 65536;
    const int x = loop.addArray("x", loop.trip);
    const int y = loop.addArray("y", loop.trip);
    loop.store(y, kir::fma(kir::cst(2.5), kir::load(x), kir::load(y)));

    // 2. Compile it for the elastic (Occamy) machine and disassemble.
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    Compiler compiler(CompileOptions::forMachine(cfg));
    Program prog = compiler.compile("quickstart", {loop});
    std::printf("%s\n", prog.disassemble().c_str());

    const PhaseInfo &phase = prog.loops[0].phase;
    std::printf("phase analysis: oi_issue=%.3f oi_mem=%.3f "
                "(%u compute, %u memory insts/iter)\n\n",
                phase.oi.issue, phase.oi.mem, phase.computeInsts,
                phase.memInsts);

    // 3. Run it on a 2-core machine, solo on core 0.
    System sys(cfg);
    sys.setWorkload(0, "saxpy", {loop});
    sys.setWorkload(1, "idle", {});
    RunResult result = sys.run();

    std::printf("ran to completion in %llu cycles\n",
                static_cast<unsigned long long>(result.cores[0].finish));
    std::printf("SIMD compute instructions issued: %llu\n",
                static_cast<unsigned long long>(
                    result.cores[0].computeIssued));
    std::printf("vector-length switches: %llu, SIMD utilization: %.1f%%\n",
                static_cast<unsigned long long>(result.vlSwitches),
                100.0 * result.simdUtil);
    return 0;
}
