/**
 * @file
 * Domain example: use the LaneMgr's vector-length-aware roofline and
 * greedy partitioner as a standalone planning library — the same
 * decision procedure the hardware runs — to size lane allocations for
 * a mixed set of workloads before committing silicon time.
 *
 * Prints an annotated roofline (which ceiling binds at each vector
 * length) and the partition plans for several co-run scenarios.
 */

#include <cstdio>
#include <vector>

#include "kir/analysis.hh"
#include "lanemgr/partitioner.hh"
#include "workloads/phases.hh"

using namespace occamy;

namespace
{

void
annotate(const RooflineParams &p, const char *name, const PhaseOI &oi)
{
    std::printf("\n%s (oi_issue=%.2f, oi_mem=%.2f, level=%s)\n", name,
                oi.issue, oi.mem,
                oi.level == MemLevel::Dram
                    ? "DRAM"
                    : (oi.level == MemLevel::L2 ? "L2" : "VecCache"));
    std::printf("  %-8s %12s %10s\n", "lanes", "GFLOP/s", "bound by");
    for (unsigned bus = 1; bus <= 8; ++bus) {
        const double ap = attainable(p, oi, bus);
        const char *bound = "compute";
        if (ap >= memBandwidth(p, oi.level) * oi.mem - 1e-9)
            bound = "memory BW";
        else if (ap >= simdIssueBandwidth(p, bus) * oi.issue - 1e-9)
            bound = "SIMD issue BW";
        std::printf("  %-8u %12.1f %10s\n", bus * kLanesPerBu, ap,
                    bound);
    }
    std::printf("  knee: %u lanes\n", kneeVl(p, oi, 8) * kLanesPerBu);
}

PhaseOI
oiOf(const char *phase)
{
    const MachineConfig cfg;
    return kir::phaseOI(workloads::makeNamedPhase(phase),
                        cfg.vecCache.sizeBytes, cfg.l2.sizeBytes);
}

void
plan(const RooflineParams &p, const char *title,
     const std::vector<std::pair<const char *, PhaseOI>> &phases)
{
    std::printf("\nplan: %s\n", title);
    std::vector<PhaseOI> ois;
    for (const auto &[name, oi] : phases)
        ois.push_back(oi);
    const auto vls = greedyPartition(p, ois, 8);
    unsigned used = 0;
    for (std::size_t i = 0; i < vls.size(); ++i) {
        std::printf("  %-12s -> %u lanes\n", phases[i].first,
                    vls[i] * kLanesPerBu);
        used += vls[i];
    }
    std::printf("  free: %u lanes\n", (8 - used) * kLanesPerBu);
}

} // namespace

int
main()
{
    const RooflineParams p = RooflineParams::fromConfig(MachineConfig{});

    std::printf("vector-length-aware roofline (2 GHz, 32 lanes, "
                "64 GB/s DRAM)\n");
    annotate(p, "rho_eos1 (memory-intensive)", oiOf("rho_eos1"));
    annotate(p, "rho_eos2 (reuse: issue-bound below 12 lanes)",
             oiOf("rho_eos2"));
    annotate(p, "wsm51 (compute-intensive)", oiOf("wsm51"));

    plan(p, "memory + compute",
         {{"rho_eos1", oiOf("rho_eos1")}, {"wsm51", oiOf("wsm51")}});
    plan(p, "two compute workloads (fair split)",
         {{"wsm51", oiOf("wsm51")}, {"set_vbc1", oiOf("set_vbc1")}});
    plan(p, "two memory workloads (leftover lanes stay free)",
         {{"rho_eos1", oiOf("rho_eos1")}, {"sff2", oiOf("sff2")}});
    plan(p, "one active workload",
         {{"wsm51", oiOf("wsm51")}, {"(idle)", PhaseOI{}}});
    return 0;
}
