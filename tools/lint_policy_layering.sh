#!/usr/bin/env bash
# Layering lint for the SharingModel policy layer: no code outside
# src/policy/ (and the display-name map in src/common/config.cc) may
# branch on the SharingPolicy enum. Storing or forwarding an enum value
# is fine — switching or comparing on it is the smell this guards
# against, because such logic belongs in a policy::SharingModel hook.
#
# Usage: lint_policy_layering.sh [repo-root]   (exit 0 = clean)

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

# Branching forms: `case SharingPolicy::X`, `== / != SharingPolicy::X`
# (either operand order), and `switch (<...>.policy)`.
patterns=(
    'case[[:space:]]+SharingPolicy::'
    '[=!]=[[:space:]]*SharingPolicy::'
    'SharingPolicy::[A-Za-z_]+[[:space:]]*[=!]='
    'switch[[:space:]]*\([^)]*policy'
)

fail=0
for pat in "${patterns[@]}"; do
    hits=$(grep -rnE "$pat" src \
               --include='*.cc' --include='*.hh' \
               | grep -v '^src/policy/' \
               | grep -v '^src/common/config\.cc:')
    if [ -n "$hits" ]; then
        echo "policy layering violation (pattern '$pat'):"
        echo "$hits"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo
    echo "SharingPolicy branching belongs in src/policy/ — add or use a"
    echo "policy::SharingModel hook instead of switching on the enum."
    exit 1
fi
echo "policy layering: clean"
