/**
 * @file
 * occamy-batchrun: drive arbitrary pair x policy sweeps through the
 * parallel experiment runner without recompiling.
 *
 * Jobs fan out across worker threads with per-job fault containment;
 * output (stdout table, --json-out, --csv-out) is ordered by job id and
 * therefore byte-identical for any --jobs value. Live progress goes to
 * stderr with --progress. Exits non-zero if any job failed, so CI can
 * gate on it. --topology CxK sweeps clustered machines (per-cluster
 * arbiter stats land in the JSON/CSV exports).
 *
 * All flags live in one cliopts::OptionSet table (src/common/cliopts)
 * shared with occamy-sim; --help is generated from it.
 *
 * Examples:
 *   occamy-batchrun --jobs 4 --pairs all --policy all --json-out sweep.json
 *   occamy-batchrun --pairs 1,2,3,4 --policy occamy --csv-out sweep.csv
 *   occamy-batchrun --pairs 6+16,1+13 --policy all --topology 4x4
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/cliopts.hh"
#include "common/cliopts_lists.hh"
#include "obs/events.hh"
#include "obs/export.hh"
#include "policy/sharing_model.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "traffic/admission.hh"
#include "traffic/arrival.hh"
#include "traffic/scheduler.hh"
#include "workloads/suite.hh"

using namespace occamy;

namespace
{

struct Options
{
    unsigned jobs = 0;                  // 0 = runner default
    std::string pairs = "spec";
    /** Empty = every registered policy, in registry order. */
    std::vector<SharingPolicy> policies;
    unsigned clusters = 1;
    unsigned cores = 2;                 // per cluster
    Cycle maxCycles = 40'000'000;
    std::string jsonOut;
    std::string csvOut;
    bool progress = false;
    bool quiet = false;
    std::string traceOut;
    std::string traceEvents = "all";
    Cycle snapshotEvery = 0;
    bool fastForward = true;
    bool strictTimeout = false;
    std::string faultPlan;
    std::uint64_t faultSeed = 0;
    Cycle watchdogCycles = 0;
    double wallClockLimitSec = 0.0;
    unsigned retries = 0;
    std::string checkpointPrefix;
    Cycle checkpointEvery = 0;
    std::string restoreFrom;
    unsigned simThreads = 1;

    // Multi-tenant traffic mode (replaces the pair sweep when set).
    std::string traffic;            ///< Arrival-process name; "" = off.
    unsigned tenants = 2;
    std::uint64_t arrivalSeed = 1;
    double sloMs = 0.0;             ///< SLO budget in milliseconds.
    double trafficRate = 200'000.0; ///< Mean inter-arrival gap, cycles.
    std::uint64_t trafficJobs = 4;  ///< Jobs per tenant stream.
    std::string scheduler = "fcfs"; ///< Dispatcher name or "all".
    std::string admission = "none"; ///< Admission policy; "none" = off.
    unsigned admissionCap = 4;      ///< Per-tenant cap / bucket size.
};

std::optional<SharingPolicy>
parsePolicy(const std::string &s)
{
    if (const policy::SharingModel *m = policy::modelByName(s))
        return m->id();
    return std::nullopt;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : s) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item.push_back(c);
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

/** Resolve --pairs into catalog entries; empty return = bad selector. */
std::vector<workloads::Pair>
selectPairs(const std::string &spec)
{
    const auto all = workloads::allPairs();
    if (spec == "all")
        return all;
    if (spec == "spec")
        return workloads::specPairs();
    if (spec == "opencv")
        return workloads::opencvPairs();

    std::vector<workloads::Pair> out;
    for (const std::string &token : splitCommas(spec)) {
        if (token.find('+') != std::string::npos) {
            bool found = false;
            for (const auto &p : all)
                if (p.label == token) {
                    out.push_back(p);
                    found = true;
                    break;
                }
            if (!found) {
                std::fprintf(stderr, "unknown pair label: %s\n",
                             token.c_str());
                return {};
            }
        } else {
            const long idx = std::atol(token.c_str());
            if (idx < 1 || idx > static_cast<long>(all.size())) {
                std::fprintf(stderr,
                             "pair index %s out of range 1..%zu\n",
                             token.c_str(), all.size());
                return {};
            }
            out.push_back(all[static_cast<std::size_t>(idx - 1)]);
        }
    }
    return out;
}

/** The whole flag surface, declared once. */
cliopts::OptionSet
optionTable(Options &opt)
{
    cliopts::OptionSet cli("occamy-batchrun",
                           "parallel pair x policy sweeps");
    cli.value("jobs", &opt.jobs, "N",
              "worker threads (default: OCCAMY_JOBS env or hardware\n"
              "concurrency)", 1)
        .value("pairs", &opt.pairs, "SPEC",
               "all|spec|opencv, or a comma list of 1-based indices\n"
               "into the 25-pair catalog and/or labels like 6+16\n"
               "(default: spec)")
        .custom("policy", "P",
                "registered policy names (private|fts|vls|occamy|\n"
                "vls-wc), comma list allowed, or 'all' (default: all)",
                [&opt](const std::string &v, std::string &err) {
                    opt.policies.clear();
                    if (v == "all")
                        return true;    // = every registered policy.
                    for (const std::string &tok : splitCommas(v)) {
                        auto p = parsePolicy(tok);
                        if (!p) {
                            err = "unknown policy: " + tok +
                                  " (see --list-policies)";
                            return false;
                        }
                        opt.policies.push_back(*p);
                    }
                    return true;
                })
        .custom("topology", "CxK",
                "sweep C co-processor clusters of K cores each\n"
                "(default 1x2); clustered machines add per-cluster\n"
                "arbiter columns to the JSON/CSV exports",
                [&opt](const std::string &v, std::string &err) {
                    return cliopts::parseTopology(v, opt.clusters,
                                                  opt.cores, err);
                })
        .custom("cores", "N",
                "flat core count per job (default 2); shorthand for\n"
                "--topology 1xN",
                [&opt](const std::string &v, std::string &err) {
                    char *end = nullptr;
                    const unsigned long long n =
                        std::strtoull(v.c_str(), &end, 10);
                    if (v.empty() || *end != '\0' || n == 0) {
                        err = "--cores wants a positive integer, got \"" +
                              v + "\"";
                        return false;
                    }
                    opt.clusters = 1;
                    opt.cores = static_cast<unsigned>(n);
                    return true;
                })
        .value("max-cycles", &opt.maxCycles, "N",
               "per-job simulation cap (default 4e7)")
        .value("json-out", &opt.jsonOut, "FILE",
               "write the aggregated sweep JSON")
        .value("csv-out", &opt.csvOut, "FILE",
               "write the per-job summary CSV")
        .flag("progress", &opt.progress,
              "live done/running/failed/ETA on stderr")
        .flag("quiet", &opt.quiet, "suppress the stdout summary table")
        .value("trace-out", &opt.traceOut, "PFX",
               "capture a per-job event trace, written to\n"
               "PFX<label>.trace.json (Chrome/Perfetto format; '/' in\n"
               "labels becomes '_')")
        .value("trace-events", &opt.traceEvents, "L",
               "categories: comma list of phase,pipeline,partition,\n"
               "reconfig,mem,sched,cluster or 'all'")
        .value("snapshot-every", &opt.snapshotEvery, "N",
               "metric snapshot each N cycles")
        .onOff("fast-forward", &opt.fastForward,
               "skip quiescent cycle spans (default on; results are\n"
               "identical either way)")
        .flag("strict-timeout", &opt.strictTimeout,
              "exit 3 (with a stderr note) if any job hit its\n"
              "--max-cycles cap")
        .value("fault-plan", &opt.faultPlan, "S",
               "deterministic fault plan applied to every job (see\n"
               "occamy-sim --help for the grammar)")
        .value("fault-seed", &opt.faultSeed, "N",
               "seeded random fault plan per job (ignored when\n"
               "--fault-plan is given)")
        .value("watchdog-cycles", &opt.watchdogCycles, "N",
               "per-job livelock watchdog threshold (escalates stuck\n"
               "<VL> spins; default off)")
        .value("wall-clock-limit", &opt.wallClockLimitSec, "S",
               "kill any job after S seconds of host time (failed,\n"
               "partial result kept)")
        .value("retries", &opt.retries, "N",
               "retry transiently-failed jobs (OOM etc.) up to N\n"
               "times with exponential backoff")
        .value("checkpoint-out", &opt.checkpointPrefix, "PFX",
               "per-job periodic checkpoints, written to\n"
               "PFX<label>.ckpt every --checkpoint-every cycles ('/'\n"
               "in labels becomes '_')")
        .value("checkpoint-every", &opt.checkpointEvery, "N",
               "checkpoint period in cycles (required with\n"
               "--checkpoint-out)")
        .value("restore", &opt.restoreFrom, "F",
               "resume from checkpoint F; the sweep must select\n"
               "exactly one pair and one policy")
        .value("sim-threads", &opt.simThreads, "N",
               "worker threads per job's own cycle loop (clustered\n"
               "machines only; byte-identical for any N; composes\n"
               "with --jobs)")
        .value("traffic", &opt.traffic, "PROC",
               "multi-tenant traffic mode: stochastic arrivals from\n"
               "process PROC (poisson|bursty|diurnal|closed) swept\n"
               "over policy x scheduler instead of the pair sweep")
        .value("tenants", &opt.tenants, "N", "tenant streams (default 2)",
               1)
        .value("arrival-seed", &opt.arrivalSeed, "N",
               "deterministic arrival-stream seed (default 1; same\n"
               "seed = byte-identical stream)")
        .value("slo-ms", &opt.sloMs, "X",
               "per-job SLO budget in milliseconds of simulated time\n"
               "(default: no deadline)", true)
        .value("traffic-rate", &opt.trafficRate, "G",
               "mean inter-arrival gap per tenant, cycles (default\n"
               "200000)", true)
        .value("traffic-jobs", &opt.trafficJobs, "N",
               "jobs generated per tenant (default 4)", 1)
        .value("scheduler", &opt.scheduler, "S",
               "dispatch discipline (fcfs|sjf|edf|oi) or 'all'\n"
               "(default fcfs)")
        .value("admission", &opt.admission, "A",
               "admission policy for traffic mode (none|static-cap|\n"
               "token-bucket|slo-aware); 'none' (default) keeps every\n"
               "export byte-identical to admission-less builds")
        .value("admission-cap", &opt.admissionCap, "N",
               "per-tenant in-flight cap / token-bucket size\n"
               "(default 4)", 1);
    cliopts::addListOptions(
        cli, cliopts::kListTraffic | cliopts::kListSchedulers |
                 cliopts::kListAdmission | cliopts::kListPairs |
                 cliopts::kListWorkloads | cliopts::kListPolicies);
    cli.alias("list", "list-pairs");
    cli.footer("exit status: 0 all jobs ok, 1 some job failed, 2 usage "
               "error,\n             3 a job timed out under "
               "--strict-timeout");
    return cli;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    const cliopts::OptionSet cli = optionTable(opt);
    const cliopts::ParseResult pr = cli.parse(argc, argv);
    if (pr.status == cliopts::Status::Exit)
        return pr.exitCode;
    if (pr.status == cliopts::Status::Error) {
        std::fprintf(stderr, "%s\n", pr.error.c_str());
        cli.printHelp(stderr);
        return 2;
    }
    if (opt.policies.empty())
        for (const policy::SharingModel *m : policy::allModels())
            opt.policies.push_back(m->id());

    // Per-job machine override; null on the default 1x2 shape so the
    // sweep presets stay byte-for-byte on MachineConfig::forPolicy.
    std::function<void(MachineConfig &)> tweak;
    if (opt.clusters != 1 || opt.cores != 2)
        tweak = [&opt](MachineConfig &cfg) {
            cfg = opt.clusters == 1
                      ? MachineConfig::forPolicy(cfg.policy, opt.cores)
                      : MachineConfig::Builder(cfg.policy)
                            .topology(opt.clusters, opt.cores)
                            .build();
        };

    std::vector<workloads::Pair> pairs;
    std::vector<runner::JobSpec> jobs;
    try {
        if (!opt.traffic.empty()) {
            // Traffic mode: policy x scheduler ablation over one
            // seeded arrival stream. Validate names up front so a typo
            // is a usage error, not N contained job failures.
            if (!traffic::processByName(opt.traffic)) {
                std::fprintf(stderr, "unknown traffic process: %s\n",
                             opt.traffic.c_str());
                return 2;
            }
            std::vector<std::string> scheds;
            if (opt.scheduler == "all") {
                for (const traffic::Dispatcher *d :
                     traffic::allDispatchers())
                    scheds.push_back(d->key());
            } else {
                if (!traffic::dispatcherByName(opt.scheduler)) {
                    std::fprintf(stderr, "unknown scheduler: %s\n",
                                 opt.scheduler.c_str());
                    return 2;
                }
                scheds = {opt.scheduler};
            }
            if (opt.admission != "none" &&
                !traffic::admissionByName(opt.admission)) {
                std::fprintf(stderr, "unknown admission policy: %s\n",
                             opt.admission.c_str());
                return 2;
            }
            traffic::TrafficConfig tc;
            tc.process = opt.traffic;
            tc.tenants = opt.tenants;
            tc.seed = opt.arrivalSeed;
            tc.jobsPerTenant = opt.trafficJobs;
            tc.meanGapCycles = opt.trafficRate;
            tc.admission = opt.admission;
            tc.admissionCap = opt.admissionCap;
            jobs = runner::trafficSweepJobs(tc, opt.policies, scheds,
                                            opt.maxCycles, tweak);
            // The SLO budget is given in simulated milliseconds;
            // convert against each job's own clock (ms x GHz x 1e6
            // cycles).
            if (opt.sloMs > 0)
                for (auto &spec : jobs)
                    spec.traffic.sloCycles = static_cast<Cycle>(
                        opt.sloMs * spec.cfg.ghz * 1e6);
        } else {
            pairs = selectPairs(opt.pairs);
            if (pairs.empty()) {
                cli.printHelp(stderr);
                return 2;
            }
            jobs = runner::pairSweepJobs(pairs, opt.policies,
                                         opt.maxCycles, tweak);
        }
    } catch (const std::exception &e) {
        // An infeasible --topology surfaces from the Builder here.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    runner::RunnerOptions ropt;
    ropt.numThreads = opt.jobs;
    ropt.transientRetries = opt.retries;
    if (opt.progress)
        ropt.onProgress = runner::stderrProgress();

    if (!opt.restoreFrom.empty()) {
        // A checkpoint names one run's state: tie it to one job.
        if (jobs.size() != 1) {
            std::fprintf(stderr, "--restore needs a sweep of exactly "
                                 "one job (one pair, one policy)\n");
            return 2;
        }
        jobs[0].restoreFrom = opt.restoreFrom;
    }
    for (auto &spec : jobs) {
        if (!opt.traceOut.empty())
            spec.traceEvents = obs::parseEventMask(opt.traceEvents);
        spec.snapshotEvery = opt.snapshotEvery;
        spec.fastForward = opt.fastForward;
        spec.faultPlan = opt.faultPlan;
        spec.faultSeed = opt.faultSeed;
        spec.watchdogCycles = opt.watchdogCycles;
        spec.wallClockLimitSec = opt.wallClockLimitSec;
        spec.simThreads = opt.simThreads;
        if (!opt.checkpointPrefix.empty() && opt.checkpointEvery) {
            // One checkpoint file per job, named by its label.
            std::string label = spec.label;
            for (char &c : label)
                if (c == '/')
                    c = '_';
            spec.checkpointOut = opt.checkpointPrefix + label + ".ckpt";
            spec.checkpointEvery = opt.checkpointEvery;
        }
    }

    const runner::SweepResult sweep =
        runner::Runner(ropt).run(std::move(jobs));

    if (!opt.traceOut.empty()) {
        for (const auto &j : sweep.jobs) {
            std::string label = j.label;
            for (char &c : label)
                if (c == '/')
                    c = '_';
            const std::string path =
                opt.traceOut + label + ".trace.json";
            std::ofstream ofs(path);
            obs::writeChromeTrace(ofs, j.trace, j.result.snapshots);
            if (!opt.quiet)
                std::printf("wrote %s (%zu events)\n", path.c_str(),
                            j.trace.events.size());
        }
    }

    if (!opt.quiet) {
        std::printf("%3s  %-14s %-8s %-6s %12s %12s %12s %7s\n", "id",
                    "pair/policy", "policy", "status", "cycles",
                    "c0_finish", "c1_finish", "util");
        for (const auto &j : sweep.jobs) {
            std::printf("%3zu  %-14s %-8s %-6s", j.id, j.label.c_str(),
                        policyName(j.policy),
                        runner::jobStatusName(j.status));
            if (j.ok()) {
                std::printf(
                    " %12llu %12llu %12llu %6.1f%%",
                    static_cast<unsigned long long>(j.result.cycles),
                    static_cast<unsigned long long>(
                        j.result.cores.size() > 0 ? j.result.cores[0].finish
                                                  : 0),
                    static_cast<unsigned long long>(
                        j.result.cores.size() > 1 ? j.result.cores[1].finish
                                                  : 0),
                    100.0 * j.result.simdUtil);
            } else {
                std::printf("  %s", j.error.c_str());
            }
            std::printf("\n");
        }

        // Per-job SLO digest in traffic mode (full detail goes to the
        // JSON/CSV exports).
        if (!opt.traffic.empty()) {
            for (const auto &j : sweep.jobs) {
                if (!j.hasTraffic)
                    continue;
                const traffic::TrafficMetrics &m = j.trafficMetrics;
                std::printf("%3zu  %-22s done %llu/%llu p50 %.0f "
                            "p99 %.0f jain %.3f slo_viol %llu",
                            j.id, j.label.c_str(),
                            static_cast<unsigned long long>(m.completed),
                            static_cast<unsigned long long>(m.arrivals),
                            m.latencyP50, m.latencyP99, m.fairnessJain,
                            static_cast<unsigned long long>(
                                m.sloViolations));
                if (j.hasAdmission)
                    std::printf(
                        " shed %llu defer %llu goodput %llu",
                        static_cast<unsigned long long>(m.shed),
                        static_cast<unsigned long long>(m.deferrals),
                        static_cast<unsigned long long>(m.goodput));
                std::printf("\n");
            }
        }

        // GM per-core speedups over Private when the sweep has them.
        if (opt.traffic.empty() && opt.policies.size() > 1 &&
            opt.policies[0] == SharingPolicy::Private && sweep.allOk()) {
            const std::size_t np = opt.policies.size();
            for (std::size_t p = 1; p < np; ++p) {
                double gm[2] = {0.0, 0.0};
                for (std::size_t i = 0; i < pairs.size(); ++i) {
                    const auto &base = sweep.jobs[i * np].result.cores;
                    const auto &cur =
                        sweep.jobs[i * np + p].result.cores;
                    for (unsigned c = 0; c < 2; ++c)
                        gm[c] += std::log(
                            static_cast<double>(base[c].finish) /
                            static_cast<double>(cur[c].finish));
                }
                std::printf("GM speedup %-8s core0 %.2fx core1 %.2fx\n",
                            policyName(opt.policies[p]),
                            std::exp(gm[0] / pairs.size()),
                            std::exp(gm[1] / pairs.size()));
            }
        }
        if (sweep.failed())
            std::printf("%zu/%zu jobs failed\n", sweep.failed(),
                        sweep.jobs.size());
    }

    if (!opt.jsonOut.empty()) {
        std::ofstream ofs(opt.jsonOut);
        ofs << runner::sweepToJson(sweep) << "\n";
        if (!opt.quiet)
            std::printf("wrote %s\n", opt.jsonOut.c_str());
    }
    if (!opt.csvOut.empty()) {
        std::ofstream ofs(opt.csvOut);
        runner::writeSweepCsv(ofs, sweep);
        if (!opt.quiet)
            std::printf("wrote %s\n", opt.csvOut.c_str());
    }

    // Failed-job summary on stderr, even under --quiet: the nonzero
    // exit status alone tells CI *that* the sweep failed, this line
    // says *which* jobs and why.
    if (sweep.failed()) {
        std::fprintf(stderr, "batchrun: %zu/%zu job(s) failed\n",
                     sweep.failed(), sweep.jobs.size());
        for (const auto &j : sweep.jobs)
            if (!j.ok())
                std::fprintf(stderr, "  job %zu %s: %s\n", j.id,
                             j.label.c_str(), j.error.c_str());
    }

    if (opt.strictTimeout) {
        std::size_t timed_out = 0;
        for (const auto &j : sweep.jobs)
            if (j.result.timedOut)
                ++timed_out;
        if (timed_out) {
            std::fprintf(stderr,
                         "%zu job(s) hit the %llu-cycle cap "
                         "(--strict-timeout)\n",
                         timed_out,
                         static_cast<unsigned long long>(opt.maxCycles));
            return 3;
        }
    }
    return sweep.allOk() ? 0 : 1;
}
