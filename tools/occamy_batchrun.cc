/**
 * @file
 * occamy-batchrun: drive arbitrary pair x policy sweeps through the
 * parallel experiment runner without recompiling.
 *
 * Jobs fan out across worker threads with per-job fault containment;
 * output (stdout table, --json-out, --csv-out) is ordered by job id and
 * therefore byte-identical for any --jobs value. Live progress goes to
 * stderr with --progress. Exits non-zero if any job failed, so CI can
 * gate on it.
 *
 * Examples:
 *   occamy-batchrun --jobs 4 --pairs all --policy all --json-out sweep.json
 *   occamy-batchrun --pairs 1,2,3,4 --policy occamy --csv-out sweep.csv
 *   occamy-batchrun --pairs 6+16,1+13 --policy all --progress
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "obs/events.hh"
#include "obs/export.hh"
#include "policy/sharing_model.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "traffic/arrival.hh"
#include "traffic/scheduler.hh"
#include "workloads/suite.hh"

using namespace occamy;

namespace
{

struct Options
{
    unsigned jobs = 0;                  // 0 = runner default
    std::string pairs = "spec";
    /** Empty = every registered policy, in registry order. */
    std::vector<SharingPolicy> policies;
    Cycle maxCycles = 40'000'000;
    std::string jsonOut;
    std::string csvOut;
    bool progress = false;
    bool quiet = false;
    bool list = false;
    std::string traceOut;
    std::string traceEvents = "all";
    Cycle snapshotEvery = 0;
    bool fastForward = true;
    bool strictTimeout = false;
    std::string faultPlan;
    std::uint64_t faultSeed = 0;
    Cycle watchdogCycles = 0;
    double wallClockLimitSec = 0.0;
    unsigned retries = 0;
    bool listPolicies = false;
    bool listWorkloads = false;
    std::string checkpointPrefix;
    Cycle checkpointEvery = 0;
    std::string restoreFrom;

    // Multi-tenant traffic mode (replaces the pair sweep when set).
    std::string traffic;            ///< Arrival-process name; "" = off.
    unsigned tenants = 2;
    std::uint64_t arrivalSeed = 1;
    double sloMs = 0.0;             ///< SLO budget in milliseconds.
    double trafficRate = 200'000.0; ///< Mean inter-arrival gap, cycles.
    std::uint64_t trafficJobs = 4;  ///< Jobs per tenant stream.
    std::string scheduler = "fcfs"; ///< Dispatcher name or "all".
    bool listSchedulers = false;
    bool listTraffic = false;
};

void
usage()
{
    std::printf(
        "occamy-batchrun: parallel pair x policy sweeps\n"
        "  --jobs N         worker threads (default: OCCAMY_JOBS env or\n"
        "                   hardware concurrency)\n"
        "  --pairs SPEC     all|spec|opencv, or a comma list of 1-based\n"
        "                   indices into the 25-pair catalog and/or\n"
        "                   labels like 6+16 (default: spec)\n"
        "  --policy P       registered policy names (private|fts|vls|\n"
        "                   occamy|vls-wc), comma list allowed, or\n"
        "                   'all' (default: all)\n"
        "  --max-cycles N   per-job simulation cap (default 4e7)\n"
        "  --json-out FILE  write the aggregated sweep JSON\n"
        "  --csv-out FILE   write the per-job summary CSV\n"
        "  --progress       live done/running/failed/ETA on stderr\n"
        "  --quiet          suppress the stdout summary table\n"
        "  --trace-out PFX  capture a per-job event trace, written to\n"
        "                   PFX<label>.trace.json (Chrome/Perfetto\n"
        "                   format; '/' in labels becomes '_')\n"
        "  --trace-events L categories: comma list of phase,pipeline,\n"
        "                   partition,reconfig,mem,sched or 'all'\n"
        "  --snapshot-every N  metric snapshot each N cycles\n"
        "  --fast-forward on|off  skip quiescent cycle spans (default\n"
        "                   on; results are identical either way)\n"
        "  --strict-timeout exit 3 (with a stderr note) if any job hit\n"
        "                   its --max-cycles cap\n"
        "  --fault-plan S   deterministic fault plan applied to every\n"
        "                   job (see occamy-sim --help for the grammar)\n"
        "  --fault-seed N   seeded random fault plan per job (ignored\n"
        "                   when --fault-plan is given)\n"
        "  --watchdog-cycles N  per-job livelock watchdog threshold\n"
        "                   (escalates stuck <VL> spins; default off)\n"
        "  --wall-clock-limit S  kill any job after S seconds of host\n"
        "                   time (failed, partial result kept)\n"
        "  --retries N      retry transiently-failed jobs (OOM etc.) up\n"
        "                   to N times with exponential backoff\n"
        "  --checkpoint-out PFX  per-job periodic checkpoints, written\n"
        "                   to PFX<label>.ckpt every --checkpoint-every\n"
        "                   cycles ('/' in labels becomes '_')\n"
        "  --checkpoint-every N  checkpoint period in cycles (required\n"
        "                   with --checkpoint-out)\n"
        "  --restore F      resume from checkpoint F; the sweep must\n"
        "                   select exactly one pair and one policy\n"
        "  --traffic PROC   multi-tenant traffic mode: stochastic\n"
        "                   arrivals from process PROC (poisson|bursty|\n"
        "                   diurnal|closed) swept over policy x\n"
        "                   scheduler instead of the pair sweep\n"
        "  --tenants N      tenant streams (default 2)\n"
        "  --arrival-seed N deterministic arrival-stream seed (default\n"
        "                   1; same seed = byte-identical stream)\n"
        "  --slo-ms X       per-job SLO budget in milliseconds of\n"
        "                   simulated time (default: no deadline)\n"
        "  --traffic-rate G mean inter-arrival gap per tenant, cycles\n"
        "                   (default 200000)\n"
        "  --traffic-jobs N jobs generated per tenant (default 4)\n"
        "  --scheduler S    dispatch discipline (fcfs|sjf|edf|oi) or\n"
        "                   'all' (default fcfs)\n"
        "  --list-traffic   print registered arrival processes and exit\n"
        "  --list-schedulers  print registered dispatchers and exit\n"
        "  --list           print the pair catalog with indices\n"
        "  --list-workloads print the workload catalog and exit\n"
        "  --list-policies  print registered sharing policies and exit\n"
        "exit status: 0 all jobs ok, 1 some job failed, 2 usage error,\n"
        "             3 a job timed out under --strict-timeout\n");
}

std::optional<SharingPolicy>
parsePolicy(const std::string &s)
{
    if (const policy::SharingModel *m = policy::modelByName(s))
        return m->id();
    return std::nullopt;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : s) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item.push_back(c);
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

/** Resolve --pairs into catalog entries; empty return = bad selector. */
std::vector<workloads::Pair>
selectPairs(const std::string &spec)
{
    const auto all = workloads::allPairs();
    if (spec == "all")
        return all;
    if (spec == "spec")
        return workloads::specPairs();
    if (spec == "opencv")
        return workloads::opencvPairs();

    std::vector<workloads::Pair> out;
    for (const std::string &token : splitCommas(spec)) {
        if (token.find('+') != std::string::npos) {
            bool found = false;
            for (const auto &p : all)
                if (p.label == token) {
                    out.push_back(p);
                    found = true;
                    break;
                }
            if (!found) {
                std::fprintf(stderr, "unknown pair label: %s\n",
                             token.c_str());
                return {};
            }
        } else {
            const long idx = std::atol(token.c_str());
            if (idx < 1 || idx > static_cast<long>(all.size())) {
                std::fprintf(stderr,
                             "pair index %s out of range 1..%zu\n",
                             token.c_str(), all.size());
                return {};
            }
            out.push_back(all[static_cast<std::size_t>(idx - 1)]);
        }
    }
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--jobs") {
            const char *v = next();
            if (!v || std::atoi(v) < 1)
                return false;
            opt.jobs = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--pairs") {
            const char *v = next();
            if (!v)
                return false;
            opt.pairs = v;
        } else if (arg == "--policy") {
            const char *v = next();
            if (!v)
                return false;
            if (std::strcmp(v, "all") == 0) {
                opt.policies.clear();    // = every registered policy.
            } else {
                // One name or a comma list, e.g. "private,occamy".
                opt.policies.clear();
                for (const std::string &tok : splitCommas(v)) {
                    auto p = parsePolicy(tok);
                    if (!p)
                        return false;
                    opt.policies.push_back(*p);
                }
            }
        } else if (arg == "--max-cycles") {
            const char *v = next();
            if (!v)
                return false;
            opt.maxCycles = static_cast<Cycle>(std::atoll(v));
        } else if (arg == "--json-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.jsonOut = v;
        } else if (arg == "--csv-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.csvOut = v;
        } else if (arg == "--trace-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.traceOut = v;
        } else if (arg == "--trace-events") {
            const char *v = next();
            if (!v)
                return false;
            opt.traceEvents = v;
        } else if (arg == "--snapshot-every") {
            const char *v = next();
            if (!v)
                return false;
            opt.snapshotEvery = static_cast<Cycle>(std::atoll(v));
        } else if (arg == "--fast-forward" ||
                   arg.rfind("--fast-forward=", 0) == 0) {
            std::string v;
            if (arg.rfind("--fast-forward=", 0) == 0)
                v = arg.substr(std::strlen("--fast-forward="));
            else if (const char *n = next())
                v = n;
            if (v == "on")
                opt.fastForward = true;
            else if (v == "off")
                opt.fastForward = false;
            else
                return false;
        } else if (arg == "--fault-plan") {
            const char *v = next();
            if (!v)
                return false;
            opt.faultPlan = v;
        } else if (arg == "--fault-seed") {
            const char *v = next();
            if (!v)
                return false;
            opt.faultSeed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--watchdog-cycles") {
            const char *v = next();
            if (!v)
                return false;
            opt.watchdogCycles = static_cast<Cycle>(std::atoll(v));
        } else if (arg == "--wall-clock-limit") {
            const char *v = next();
            if (!v)
                return false;
            opt.wallClockLimitSec = std::atof(v);
        } else if (arg == "--retries") {
            const char *v = next();
            if (!v || std::atoi(v) < 0)
                return false;
            opt.retries = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--strict-timeout") {
            opt.strictTimeout = true;
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--checkpoint-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.checkpointPrefix = v;
        } else if (arg == "--checkpoint-every") {
            const char *v = next();
            if (!v)
                return false;
            opt.checkpointEvery = static_cast<Cycle>(std::atoll(v));
        } else if (arg == "--restore") {
            const char *v = next();
            if (!v)
                return false;
            opt.restoreFrom = v;
        } else if (arg == "--traffic") {
            const char *v = next();
            if (!v)
                return false;
            opt.traffic = v;
        } else if (arg == "--tenants") {
            const char *v = next();
            if (!v || std::atoi(v) < 1)
                return false;
            opt.tenants = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--arrival-seed") {
            const char *v = next();
            if (!v)
                return false;
            opt.arrivalSeed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--slo-ms") {
            const char *v = next();
            if (!v || std::atof(v) <= 0)
                return false;
            opt.sloMs = std::atof(v);
        } else if (arg == "--traffic-rate") {
            const char *v = next();
            if (!v || std::atof(v) <= 0)
                return false;
            opt.trafficRate = std::atof(v);
        } else if (arg == "--traffic-jobs") {
            const char *v = next();
            if (!v || std::atoll(v) < 1)
                return false;
            opt.trafficJobs = static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--scheduler") {
            const char *v = next();
            if (!v)
                return false;
            opt.scheduler = v;
        } else if (arg == "--list-traffic") {
            opt.listTraffic = true;
        } else if (arg == "--list-schedulers") {
            opt.listSchedulers = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--list-workloads") {
            opt.listWorkloads = true;
        } else if (arg == "--list-policies") {
            opt.listPolicies = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }
    if (opt.policies.empty())
        for (const policy::SharingModel *m : policy::allModels())
            opt.policies.push_back(m->id());

    if (opt.listPolicies) {
        std::printf("registered sharing policies (--policy):\n");
        for (const policy::SharingModel *m : policy::allModels()) {
            std::printf("  %-8s %-8s", m->key(), m->paperName());
            if (!m->aliases().empty()) {
                std::printf(" aliases:");
                for (const auto &a : m->aliases())
                    std::printf(" %s", a.c_str());
            }
            std::printf("\n");
        }
        return 0;
    }

    if (opt.listTraffic) {
        std::printf("registered arrival processes (--traffic):\n");
        for (const traffic::ArrivalProcess *p : traffic::allProcesses())
            std::printf("  %-8s %s\n", p->key(), p->summary());
        return 0;
    }

    if (opt.listSchedulers) {
        std::printf("registered dispatch disciplines (--scheduler):\n");
        for (const traffic::Dispatcher *d : traffic::allDispatchers())
            std::printf("  %-8s %s\n", d->key(), d->summary());
        return 0;
    }

    if (opt.listWorkloads) {
        std::printf("SPEC workloads:\n");
        for (unsigned n = 1; n <= 22; ++n) {
            const auto w = workloads::specWorkload(n);
            std::printf("  WL%-3u %s:", n, w.memoryIntensive ? "M" : "C");
            for (const auto &loop : w.loops)
                std::printf(" %s", loop.name.c_str());
            std::printf("\n");
        }
        std::printf("OpenCV workloads:\n");
        for (unsigned n = 1; n <= 12; ++n) {
            const auto w = workloads::opencvWorkload(n);
            std::printf("  CV%-3u %s:", n, w.memoryIntensive ? "M" : "C");
            for (const auto &loop : w.loops)
                std::printf(" %s", loop.name.c_str());
            std::printf("\n");
        }
        return 0;
    }

    if (opt.list) {
        const auto all = workloads::allPairs();
        for (std::size_t i = 0; i < all.size(); ++i)
            std::printf("%3zu  %-8s %s + %s%s\n", i + 1,
                        all[i].label.c_str(), all[i].core0.name.c_str(),
                        all[i].core1.name.c_str(),
                        i >= 16 ? "  (OpenCV)" : "");
        return 0;
    }

    std::vector<workloads::Pair> pairs;
    std::vector<runner::JobSpec> jobs;
    if (!opt.traffic.empty()) {
        // Traffic mode: policy x scheduler ablation over one seeded
        // arrival stream. Validate names up front so a typo is a usage
        // error, not N contained job failures.
        if (!traffic::processByName(opt.traffic)) {
            std::fprintf(stderr, "unknown traffic process: %s\n",
                         opt.traffic.c_str());
            return 2;
        }
        std::vector<std::string> scheds;
        if (opt.scheduler == "all") {
            for (const traffic::Dispatcher *d :
                 traffic::allDispatchers())
                scheds.push_back(d->key());
        } else {
            if (!traffic::dispatcherByName(opt.scheduler)) {
                std::fprintf(stderr, "unknown scheduler: %s\n",
                             opt.scheduler.c_str());
                return 2;
            }
            scheds = {opt.scheduler};
        }
        traffic::TrafficConfig tc;
        tc.process = opt.traffic;
        tc.tenants = opt.tenants;
        tc.seed = opt.arrivalSeed;
        tc.jobsPerTenant = opt.trafficJobs;
        tc.meanGapCycles = opt.trafficRate;
        jobs = runner::trafficSweepJobs(tc, opt.policies, scheds,
                                        opt.maxCycles);
        // The SLO budget is given in simulated milliseconds; convert
        // against each job's own clock (ms x GHz x 1e6 cycles).
        if (opt.sloMs > 0)
            for (auto &spec : jobs)
                spec.traffic.sloCycles = static_cast<Cycle>(
                    opt.sloMs * spec.cfg.ghz * 1e6);
    } else {
        pairs = selectPairs(opt.pairs);
        if (pairs.empty()) {
            usage();
            return 2;
        }
    }

    runner::RunnerOptions ropt;
    ropt.numThreads = opt.jobs;
    ropt.transientRetries = opt.retries;
    if (opt.progress)
        ropt.onProgress = runner::stderrProgress();

    if (opt.traffic.empty())
        jobs = runner::pairSweepJobs(pairs, opt.policies, opt.maxCycles);
    if (!opt.restoreFrom.empty()) {
        // A checkpoint names one run's state: tie it to one job.
        if (jobs.size() != 1) {
            std::fprintf(stderr, "--restore needs a sweep of exactly "
                                 "one job (one pair, one policy)\n");
            return 2;
        }
        jobs[0].restoreFrom = opt.restoreFrom;
    }
    for (auto &spec : jobs) {
        if (!opt.traceOut.empty())
            spec.traceEvents = obs::parseEventMask(opt.traceEvents);
        spec.snapshotEvery = opt.snapshotEvery;
        spec.fastForward = opt.fastForward;
        spec.faultPlan = opt.faultPlan;
        spec.faultSeed = opt.faultSeed;
        spec.watchdogCycles = opt.watchdogCycles;
        spec.wallClockLimitSec = opt.wallClockLimitSec;
        if (!opt.checkpointPrefix.empty() && opt.checkpointEvery) {
            // One checkpoint file per job, named by its label.
            std::string label = spec.label;
            for (char &c : label)
                if (c == '/')
                    c = '_';
            spec.checkpointOut = opt.checkpointPrefix + label + ".ckpt";
            spec.checkpointEvery = opt.checkpointEvery;
        }
    }

    const runner::SweepResult sweep =
        runner::Runner(ropt).run(std::move(jobs));

    if (!opt.traceOut.empty()) {
        for (const auto &j : sweep.jobs) {
            std::string label = j.label;
            for (char &c : label)
                if (c == '/')
                    c = '_';
            const std::string path =
                opt.traceOut + label + ".trace.json";
            std::ofstream ofs(path);
            obs::writeChromeTrace(ofs, j.trace, j.result.snapshots);
            if (!opt.quiet)
                std::printf("wrote %s (%zu events)\n", path.c_str(),
                            j.trace.events.size());
        }
    }

    if (!opt.quiet) {
        std::printf("%3s  %-14s %-8s %-6s %12s %12s %12s %7s\n", "id",
                    "pair/policy", "policy", "status", "cycles",
                    "c0_finish", "c1_finish", "util");
        for (const auto &j : sweep.jobs) {
            std::printf("%3zu  %-14s %-8s %-6s", j.id, j.label.c_str(),
                        policyName(j.policy),
                        runner::jobStatusName(j.status));
            if (j.ok()) {
                std::printf(
                    " %12llu %12llu %12llu %6.1f%%",
                    static_cast<unsigned long long>(j.result.cycles),
                    static_cast<unsigned long long>(
                        j.result.cores.size() > 0 ? j.result.cores[0].finish
                                                  : 0),
                    static_cast<unsigned long long>(
                        j.result.cores.size() > 1 ? j.result.cores[1].finish
                                                  : 0),
                    100.0 * j.result.simdUtil);
            } else {
                std::printf("  %s", j.error.c_str());
            }
            std::printf("\n");
        }

        // Per-job SLO digest in traffic mode (full detail goes to the
        // JSON/CSV exports).
        if (!opt.traffic.empty()) {
            for (const auto &j : sweep.jobs) {
                if (!j.hasTraffic)
                    continue;
                const traffic::TrafficMetrics &m = j.trafficMetrics;
                std::printf("%3zu  %-22s done %llu/%llu p50 %.0f "
                            "p99 %.0f jain %.3f slo_viol %llu\n",
                            j.id, j.label.c_str(),
                            static_cast<unsigned long long>(m.completed),
                            static_cast<unsigned long long>(m.arrivals),
                            m.latencyP50, m.latencyP99, m.fairnessJain,
                            static_cast<unsigned long long>(
                                m.sloViolations));
            }
        }

        // GM per-core speedups over Private when the sweep has them.
        if (opt.traffic.empty() && opt.policies.size() > 1 &&
            opt.policies[0] == SharingPolicy::Private && sweep.allOk()) {
            const std::size_t np = opt.policies.size();
            for (std::size_t p = 1; p < np; ++p) {
                double gm[2] = {0.0, 0.0};
                for (std::size_t i = 0; i < pairs.size(); ++i) {
                    const auto &base = sweep.jobs[i * np].result.cores;
                    const auto &cur =
                        sweep.jobs[i * np + p].result.cores;
                    for (unsigned c = 0; c < 2; ++c)
                        gm[c] += std::log(
                            static_cast<double>(base[c].finish) /
                            static_cast<double>(cur[c].finish));
                }
                std::printf("GM speedup %-8s core0 %.2fx core1 %.2fx\n",
                            policyName(opt.policies[p]),
                            std::exp(gm[0] / pairs.size()),
                            std::exp(gm[1] / pairs.size()));
            }
        }
        if (sweep.failed())
            std::printf("%zu/%zu jobs failed\n", sweep.failed(),
                        sweep.jobs.size());
    }

    if (!opt.jsonOut.empty()) {
        std::ofstream ofs(opt.jsonOut);
        ofs << runner::sweepToJson(sweep) << "\n";
        if (!opt.quiet)
            std::printf("wrote %s\n", opt.jsonOut.c_str());
    }
    if (!opt.csvOut.empty()) {
        std::ofstream ofs(opt.csvOut);
        runner::writeSweepCsv(ofs, sweep);
        if (!opt.quiet)
            std::printf("wrote %s\n", opt.csvOut.c_str());
    }

    // Failed-job summary on stderr, even under --quiet: the nonzero
    // exit status alone tells CI *that* the sweep failed, this line
    // says *which* jobs and why.
    if (sweep.failed()) {
        std::fprintf(stderr, "batchrun: %zu/%zu job(s) failed\n",
                     sweep.failed(), sweep.jobs.size());
        for (const auto &j : sweep.jobs)
            if (!j.ok())
                std::fprintf(stderr, "  job %zu %s: %s\n", j.id,
                             j.label.c_str(), j.error.c_str());
    }

    if (opt.strictTimeout) {
        std::size_t timed_out = 0;
        for (const auto &j : sweep.jobs)
            if (j.result.timedOut)
                ++timed_out;
        if (timed_out) {
            std::fprintf(stderr,
                         "%zu job(s) hit the %llu-cycle cap "
                         "(--strict-timeout)\n",
                         timed_out,
                         static_cast<unsigned long long>(opt.maxCycles));
            return 3;
        }
    }
    return sweep.allOk() ? 0 : 1;
}
