/**
 * @file
 * occamy-sim: command-line driver for the Occamy simulator.
 *
 * Runs a co-running pair (or an FCFS batch) of Table 3 workloads under
 * any registered SIMD sharing architecture and reports the paper's
 * metrics. Policies come from the name-keyed registry in src/policy/
 * (the four paper architectures plus extensions such as vls-wc).
 *
 * Usage:
 *   occamy-sim [--policy private|fts|vls|occamy|vls-wc|all] [--cores N]
 *              [--pair A+B] [--opencv] [--batch WL1,WL16,...]
 *              [--max-cycles N] [--jobs N] [--json-out FILE]
 *              [--timeline] [--stats] [--list]
 *
 * Examples:
 *   occamy-sim --pair 6+16 --policy all --jobs 4
 *   occamy-sim --policy occamy --batch WL1,WL16,WL8,WL17
 *   occamy-sim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "obs/events.hh"
#include "obs/export.hh"
#include "policy/sharing_model.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "sim/system.hh"
#include "sim/trace.hh"
#include "workloads/suite.hh"

using namespace occamy;

namespace
{

struct Options
{
    std::vector<SharingPolicy> policies{SharingPolicy::Elastic};
    unsigned cores = 2;
    std::string pair = "6+16";
    bool opencv = false;
    std::vector<std::string> batch;
    Cycle maxCycles = 40'000'000;
    unsigned jobs = 0;          // runner threads; 0 = runner default
    std::string jsonOut;
    bool timeline = false;
    bool stats = false;
    bool list = false;
    bool json = false;
    std::string csvPrefix;
    std::string traceOut;
    std::string traceEvents = "all";
    Cycle snapshotEvery = 0;
    bool fastForward = true;
    bool strictTimeout = false;
    std::string faultPlan;
    std::uint64_t faultSeed = 0;
    Cycle watchdogCycles = 0;
    bool listPolicies = false;
    std::string checkpointOut;
    Cycle checkpointEvery = 0;
    std::string restoreFrom;
};

void
usage()
{
    std::printf(
        "occamy-sim: drive the Occamy elastic-SIMD simulator\n"
        "  --policy P     registered policy name or 'all' (default\n"
        "                 occamy); registered: private, fts, vls,\n"
        "                 occamy, vls-wc\n"
        "  --cores N      number of scalar cores (default 2)\n"
        "  --pair A+B     workload ids for core0+core1 (default 6+16)\n"
        "  --opencv       interpret --pair ids as OpenCV workloads\n"
        "  --batch L      comma-separated WLn/CVn list, FCFS scheduled\n"
        "  --max-cycles N simulation cap (default 4e7)\n"
        "  --jobs N       run --policy all fan-out on N threads\n"
        "  --json-out F   write the aggregated sweep JSON to F\n"
        "  --timeline     print busy-lane timelines\n"
        "  --stats        dump memory/co-processor statistics\n"
        "  --json         print a JSON result summary\n"
        "  --csv PREFIX   write PREFIX_{timeline,phases,batch}.csv\n"
        "  --trace-out F  capture an event trace per run; .json gets\n"
        "                 Chrome/Perfetto format, .bin the compact\n"
        "                 binary format (multi-run adds _<policy>)\n"
        "  --trace-events L  categories to trace: comma list of\n"
        "                 phase,pipeline,partition,reconfig,mem,sched\n"
        "                 or 'all' (default all; needs --trace-out)\n"
        "  --snapshot-every N  metric snapshot each N cycles, rendered\n"
        "                 as counter tracks in the Chrome trace\n"
        "  --fast-forward on|off  skip quiescent cycle spans (default\n"
        "                 on; results are identical either way)\n"
        "  --strict-timeout  exit 3 (with a stderr note) if any run\n"
        "                 hit the --max-cycles cap\n"
        "  --fault-plan S deterministic fault plan, entries ';'-joined:\n"
        "                 lane@CYC:bu=N | vldeny@CYC+DUR:core=N |\n"
        "                 dram@CYC+DUR:lat=N,bw=N |\n"
        "                 cfgdelay@CYC+DUR:core=N,cycles=N\n"
        "  --fault-seed N seeded random fault plan (ignored when\n"
        "                 --fault-plan is given); same seed, same plan\n"
        "  --watchdog-cycles N  escalate a <VL> retry spin older than N\n"
        "                 cycles to the scalar fallback (default off)\n"
        "  --checkpoint-out F   checkpoint file; written every\n"
        "                 --checkpoint-every cycles (single-policy\n"
        "                 runs only; both flags required)\n"
        "  --checkpoint-every N overwrite --checkpoint-out every N\n"
        "                 cycles (the file holds the latest snapshot)\n"
        "  --restore F    resume from checkpoint F instead of cycle 0;\n"
        "                 config/workloads/options must match the run\n"
        "                 that wrote it (single-policy runs only)\n"
        "  --list, --list-workloads  list available workloads and exit\n"
        "  --list-policies  list registered sharing policies and exit\n");
}

std::optional<SharingPolicy>
parsePolicy(const std::string &s)
{
    if (const policy::SharingModel *m = policy::modelByName(s))
        return m->id();
    return std::nullopt;
}

workloads::Workload
lookupWorkload(const std::string &token)
{
    if (token.rfind("CV", 0) == 0)
        return workloads::opencvWorkload(
            static_cast<unsigned>(std::atoi(token.c_str() + 2)));
    if (token.rfind("WL", 0) == 0)
        return workloads::specWorkload(
            static_cast<unsigned>(std::atoi(token.c_str() + 2)));
    return workloads::specWorkload(
        static_cast<unsigned>(std::atoi(token.c_str())));
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--policy") {
            const char *v = next();
            if (!v)
                return false;
            if (std::strcmp(v, "all") == 0) {
                opt.policies.clear();
                for (const policy::SharingModel *m : policy::allModels())
                    opt.policies.push_back(m->id());
            } else if (auto p = parsePolicy(v)) {
                opt.policies = {*p};
            } else {
                return false;
            }
        } else if (arg == "--cores") {
            const char *v = next();
            if (!v)
                return false;
            opt.cores = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--pair") {
            const char *v = next();
            if (!v)
                return false;
            opt.pair = v;
        } else if (arg == "--opencv") {
            opt.opencv = true;
        } else if (arg == "--batch") {
            const char *v = next();
            if (!v)
                return false;
            std::string item;
            for (const char *p = v;; ++p) {
                if (*p == ',' || *p == '\0') {
                    if (!item.empty())
                        opt.batch.push_back(item);
                    item.clear();
                    if (*p == '\0')
                        break;
                } else {
                    item.push_back(*p);
                }
            }
        } else if (arg == "--max-cycles") {
            const char *v = next();
            if (!v)
                return false;
            opt.maxCycles = static_cast<Cycle>(std::atoll(v));
        } else if (arg == "--jobs") {
            const char *v = next();
            if (!v || std::atoi(v) < 1)
                return false;
            opt.jobs = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--json-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.jsonOut = v;
        } else if (arg == "--timeline") {
            opt.timeline = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--csv") {
            const char *v = next();
            if (!v)
                return false;
            opt.csvPrefix = v;
        } else if (arg == "--trace-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.traceOut = v;
        } else if (arg == "--trace-events") {
            const char *v = next();
            if (!v)
                return false;
            opt.traceEvents = v;
        } else if (arg == "--snapshot-every") {
            const char *v = next();
            if (!v)
                return false;
            opt.snapshotEvery = static_cast<Cycle>(std::atoll(v));
        } else if (arg == "--fast-forward" ||
                   arg.rfind("--fast-forward=", 0) == 0) {
            std::string v;
            if (arg.rfind("--fast-forward=", 0) == 0)
                v = arg.substr(std::strlen("--fast-forward="));
            else if (const char *n = next())
                v = n;
            if (v == "on")
                opt.fastForward = true;
            else if (v == "off")
                opt.fastForward = false;
            else
                return false;
        } else if (arg == "--fault-plan") {
            const char *v = next();
            if (!v)
                return false;
            opt.faultPlan = v;
        } else if (arg == "--fault-seed") {
            const char *v = next();
            if (!v)
                return false;
            opt.faultSeed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--watchdog-cycles") {
            const char *v = next();
            if (!v)
                return false;
            opt.watchdogCycles = static_cast<Cycle>(std::atoll(v));
        } else if (arg == "--strict-timeout") {
            opt.strictTimeout = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--checkpoint-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.checkpointOut = v;
        } else if (arg == "--checkpoint-every") {
            const char *v = next();
            if (!v)
                return false;
            opt.checkpointEvery = static_cast<Cycle>(std::atoll(v));
        } else if (arg == "--restore") {
            const char *v = next();
            if (!v)
                return false;
            opt.restoreFrom = v;
        } else if (arg == "--list" || arg == "--list-workloads") {
            opt.list = true;
        } else if (arg == "--list-policies") {
            opt.listPolicies = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

void
printRun(SharingPolicy policy, const RunResult &r, const Options &opt)
{
    std::printf("\n=== %s ===\n", policyName(policy));
    if (r.timedOut)
        std::printf("  (hit the %llu-cycle cap)\n",
                    static_cast<unsigned long long>(opt.maxCycles));
    for (std::size_t c = 0; c < r.cores.size(); ++c) {
        const auto &core = r.cores[c];
        std::printf("core%zu %-10s finish=%llu cycles, %llu SIMD "
                    "compute insts, rename-stall %llu cycles\n",
                    c, core.workload.c_str(),
                    static_cast<unsigned long long>(core.finish),
                    static_cast<unsigned long long>(core.computeIssued),
                    static_cast<unsigned long long>(
                        core.renameRegStallCycles));
        for (const auto &ph : core.phases)
            std::printf("  phase %-14s [%8llu..%8llu] VL %2u->%2u "
                        "lanes, rate %.2f\n",
                        ph.name.c_str(),
                        static_cast<unsigned long long>(ph.start),
                        static_cast<unsigned long long>(ph.end),
                        ph.firstVl * kLanesPerBu,
                        ph.lastVl * kLanesPerBu, ph.issueRate);
    }
    for (const auto &b : r.batch)
        std::printf("batch %-10s core%u [%llu..%llu]\n", b.name.c_str(),
                    b.core, static_cast<unsigned long long>(b.dispatched),
                    static_cast<unsigned long long>(b.finished));
    std::printf("SIMD utilization %.1f%%, %llu VL switches, %llu lane "
                "plans, %.2f MB DRAM traffic\n", 100.0 * r.simdUtil,
                static_cast<unsigned long long>(r.vlSwitches),
                static_cast<unsigned long long>(r.plansMade),
                r.dramBytes / 1048576.0);
    if (r.laneFaults || r.watchdogTrips)
        std::printf("faults: %llu ExeBU lane fault(s), %llu watchdog "
                    "trip(s) to the scalar fallback\n",
                    static_cast<unsigned long long>(r.laneFaults),
                    static_cast<unsigned long long>(r.watchdogTrips));
    if (opt.timeline) {
        for (std::size_t c = 0; c < r.cores.size(); ++c) {
            std::printf("core%zu busy lanes/kcycle:", c);
            const auto &tl = r.cores[c].busyLanesTimeline;
            for (std::size_t i = 0; i < tl.size(); i += 8)
                std::printf(" %.0f", tl[i]);
            std::printf("\n");
        }
    }
    if (opt.stats)
        std::printf("%s", r.statsText.c_str());
    if (opt.json)
        std::printf("%s\n", trace::toJson(r).c_str());
    if (!opt.csvPrefix.empty()) {
        auto dump = [&](const char *suffix, auto writer) {
            const std::string path =
                opt.csvPrefix + "_" + suffix + ".csv";
            std::ofstream ofs(path);
            writer(ofs, r);
            std::printf("wrote %s\n", path.c_str());
        };
        dump("timeline", trace::writeTimelinesCsv);
        dump("phases", trace::writePhasesCsv);
        dump("batch", trace::writeBatchCsv);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }

    if (opt.listPolicies) {
        std::printf("registered sharing policies (--policy):\n");
        for (const policy::SharingModel *m : policy::allModels()) {
            std::printf("  %-8s %-8s", m->key(), m->paperName());
            if (!m->aliases().empty()) {
                std::printf(" aliases:");
                for (const auto &a : m->aliases())
                    std::printf(" %s", a.c_str());
            }
            std::printf("\n");
        }
        return 0;
    }

    if (opt.list) {
        std::printf("SPEC workloads:\n");
        for (unsigned n = 1; n <= 22; ++n) {
            const auto w = workloads::specWorkload(n);
            std::printf("  WL%-3u %s:", n, w.memoryIntensive ? "M" : "C");
            for (const auto &loop : w.loops)
                std::printf(" %s", loop.name.c_str());
            std::printf("\n");
        }
        std::printf("OpenCV workloads:\n");
        for (unsigned n = 1; n <= 12; ++n) {
            const auto w = workloads::opencvWorkload(n);
            std::printf("  CV%-3u %s:", n, w.memoryIntensive ? "M" : "C");
            for (const auto &loop : w.loops)
                std::printf(" %s", loop.name.c_str());
            std::printf("\n");
        }
        return 0;
    }

    // Checkpoint files name one run's state, so tie them to one policy.
    if ((!opt.checkpointOut.empty() || !opt.restoreFrom.empty()) &&
        opt.policies.size() != 1) {
        std::fprintf(stderr, "--checkpoint-out/--restore need a single "
                             "--policy (not 'all')\n");
        return 2;
    }

    // Resolve the pair ids (e.g. "6+16").
    const auto plus = opt.pair.find('+');
    if (plus == std::string::npos) {
        usage();
        return 2;
    }
    const unsigned a =
        static_cast<unsigned>(std::atoi(opt.pair.substr(0, plus).c_str()));
    const unsigned b =
        static_cast<unsigned>(std::atoi(opt.pair.substr(plus + 1).c_str()));

    // Resolve workloads up front so catalog mistakes stay a usage
    // error, then fan one job per policy out through the runner
    // (--policy all used to run the four architectures serially).
    std::vector<runner::JobSpec> jobs;
    try {
        for (SharingPolicy policy : opt.policies) {
            runner::JobSpec spec;
            spec.id = jobs.size();
            spec.label = opt.batch.empty()
                             ? opt.pair + "/" + policyName(policy)
                             : "batch/" + std::string(policyName(policy));
            spec.cfg = MachineConfig::forPolicy(policy, opt.cores);
            spec.maxCycles = opt.maxCycles;
            spec.fastForward = opt.fastForward;
            spec.faultPlan = opt.faultPlan;
            spec.faultSeed = opt.faultSeed;
            spec.watchdogCycles = opt.watchdogCycles;
            spec.checkpointOut = opt.checkpointOut;
            spec.checkpointEvery = opt.checkpointEvery;
            spec.restoreFrom = opt.restoreFrom;
            if (!opt.traceOut.empty())
                spec.traceEvents = obs::parseEventMask(opt.traceEvents);
            spec.snapshotEvery = opt.snapshotEvery;
            if (opt.batch.empty()) {
                const workloads::Workload w0 =
                    opt.opencv ? workloads::opencvWorkload(a)
                               : workloads::specWorkload(a);
                const workloads::Workload w1 =
                    opt.opencv ? workloads::opencvWorkload(b)
                               : workloads::specWorkload(b);
                spec.workloads.emplace_back(w0.name, w0.loops);
                if (opt.cores > 1)
                    spec.workloads.emplace_back(w1.name, w1.loops);
            } else {
                for (const auto &token : opt.batch) {
                    const workloads::Workload w = lookupWorkload(token);
                    spec.batch.emplace_back(w.name, w.loops);
                }
            }
            jobs.push_back(std::move(spec));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "error: %s (use --list to see the catalog)\n",
                     e.what());
        return 2;
    }

    runner::RunnerOptions ropt;
    ropt.numThreads = opt.jobs;
    const runner::SweepResult sweep =
        runner::Runner(ropt).run(std::move(jobs));

    for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
        const runner::JobResult &j = sweep.jobs[i];
        if (!j.ok())
            std::fprintf(stderr, "job %s failed: %s\n", j.label.c_str(),
                         j.error.c_str());
        printRun(opt.policies[i], j.result, opt);
        // Keep the machine-readable --json stdout stream clean.
        if (opt.fastForward && !opt.json && j.ff.cyclesTicked)
            std::printf("engine: ticked %llu of %llu cycles "
                        "(%.1fx fast-forward, %llu spans)\n",
                        static_cast<unsigned long long>(j.ff.cyclesTicked),
                        static_cast<unsigned long long>(
                            j.ff.cyclesSimulated),
                        static_cast<double>(j.ff.cyclesSimulated) /
                            static_cast<double>(j.ff.cyclesTicked),
                        static_cast<unsigned long long>(j.ff.spans));

        if (!opt.traceOut.empty()) {
            // One trace file per run; multi-policy sweeps get the
            // policy name spliced in before the extension.
            std::string path = opt.traceOut;
            if (sweep.jobs.size() > 1) {
                const auto dot = path.rfind('.');
                const std::string tag =
                    std::string("_") + policyName(opt.policies[i]);
                if (dot == std::string::npos)
                    path += tag;
                else
                    path.insert(dot, tag);
            }
            const bool binary =
                path.size() >= 4 &&
                path.compare(path.size() - 4, 4, ".bin") == 0;
            std::ofstream ofs(path, binary ? std::ios::binary
                                           : std::ios::out);
            if (binary)
                obs::writeBinaryTrace(ofs, j.trace);
            else
                obs::writeChromeTrace(ofs, j.trace, j.result.snapshots);
            std::printf("wrote %s (%zu events, %llu dropped)\n",
                        path.c_str(), j.trace.events.size(),
                        static_cast<unsigned long long>(j.trace.dropped));
        }
    }

    if (!opt.jsonOut.empty()) {
        std::ofstream ofs(opt.jsonOut);
        ofs << runner::sweepToJson(sweep) << "\n";
        std::printf("wrote %s\n", opt.jsonOut.c_str());
    }
    if (opt.strictTimeout) {
        std::size_t timed_out = 0;
        for (const auto &j : sweep.jobs)
            if (j.result.timedOut)
                ++timed_out;
        if (timed_out) {
            std::fprintf(stderr,
                         "%zu run(s) hit the %llu-cycle cap "
                         "(--strict-timeout)\n",
                         timed_out,
                         static_cast<unsigned long long>(opt.maxCycles));
            return 3;
        }
    }
    return sweep.allOk() ? 0 : 1;
}
