/**
 * @file
 * occamy-sim: command-line driver for the Occamy simulator.
 *
 * Runs a co-running pair (or an FCFS batch) of Table 3 workloads under
 * any registered SIMD sharing architecture and reports the paper's
 * metrics. Policies come from the name-keyed registry in src/policy/
 * (the four paper architectures plus extensions such as vls-wc), and
 * the machine shape from --topology CxK (C co-processor clusters of K
 * cores; --cores N remains the flat 1xN spelling).
 *
 * All flags live in one cliopts::OptionSet table (src/common/cliopts)
 * shared with occamy-batchrun; --help is generated from it.
 *
 * Examples:
 *   occamy-sim --pair 6+16 --policy all --jobs 4
 *   occamy-sim --policy occamy --batch WL1,WL16,WL8,WL17
 *   occamy-sim --pair 6+16 --topology 4x4 --policy occamy
 *   occamy-sim --list
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/cliopts.hh"
#include "common/cliopts_lists.hh"
#include "obs/events.hh"
#include "obs/export.hh"
#include "policy/sharing_model.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "sim/system.hh"
#include "sim/trace.hh"
#include "workloads/suite.hh"

using namespace occamy;

namespace
{

struct Options
{
    std::vector<SharingPolicy> policies{SharingPolicy::Elastic};
    unsigned clusters = 1;
    unsigned cores = 2;         // per cluster; total on a flat machine
    std::string pair = "6+16";
    bool opencv = false;
    std::vector<std::string> batch;
    Cycle maxCycles = 40'000'000;
    unsigned jobs = 0;          // runner threads; 0 = runner default
    std::string jsonOut;
    bool timeline = false;
    bool stats = false;
    bool json = false;
    std::string csvPrefix;
    std::string traceOut;
    std::string traceEvents = "all";
    Cycle snapshotEvery = 0;
    bool fastForward = true;
    bool strictTimeout = false;
    std::string faultPlan;
    std::uint64_t faultSeed = 0;
    Cycle watchdogCycles = 0;
    std::string checkpointOut;
    Cycle checkpointEvery = 0;
    std::string restoreFrom;
    unsigned simThreads = 1;
};

std::optional<SharingPolicy>
parsePolicy(const std::string &s)
{
    if (const policy::SharingModel *m = policy::modelByName(s))
        return m->id();
    return std::nullopt;
}

workloads::Workload
lookupWorkload(const std::string &token)
{
    if (token.rfind("CV", 0) == 0)
        return workloads::opencvWorkload(
            static_cast<unsigned>(std::atoi(token.c_str() + 2)));
    if (token.rfind("WL", 0) == 0)
        return workloads::specWorkload(
            static_cast<unsigned>(std::atoi(token.c_str() + 2)));
    return workloads::specWorkload(
        static_cast<unsigned>(std::atoi(token.c_str())));
}

/** The whole flag surface, declared once. */
cliopts::OptionSet
optionTable(Options &opt)
{
    cliopts::OptionSet cli("occamy-sim",
                           "drive the Occamy elastic-SIMD simulator");
    cli.custom("policy", "P",
               "registered policy name or 'all' (default occamy);\n"
               "registered: private, fts, vls, occamy, vls-wc",
               [&opt](const std::string &v, std::string &err) {
                   if (v == "all") {
                       opt.policies.clear();
                       for (const policy::SharingModel *m :
                            policy::allModels())
                           opt.policies.push_back(m->id());
                       return true;
                   }
                   if (auto p = parsePolicy(v)) {
                       opt.policies = {*p};
                       return true;
                   }
                   err = "unknown policy: " + v +
                         " (see --list-policies)";
                   return false;
               })
        .custom("topology", "CxK",
                "C co-processor clusters of K cores each (default\n"
                "1x2); clustered machines add the inter-cluster\n"
                "bandwidth arbiter and work migration",
                [&opt](const std::string &v, std::string &err) {
                    return cliopts::parseTopology(v, opt.clusters,
                                                  opt.cores, err);
                })
        .custom("cores", "N",
                "number of scalar cores (default 2); shorthand for\n"
                "--topology 1xN",
                [&opt](const std::string &v, std::string &err) {
                    std::uint64_t n = 0;
                    char *end = nullptr;
                    n = std::strtoull(v.c_str(), &end, 10);
                    if (v.empty() || *end != '\0' || n == 0) {
                        err = "--cores wants a positive integer, got \"" +
                              v + "\"";
                        return false;
                    }
                    opt.clusters = 1;
                    opt.cores = static_cast<unsigned>(n);
                    return true;
                })
        .value("pair", &opt.pair, "A+B",
               "workload ids for core0+core1 (default 6+16)")
        .flag("opencv", &opt.opencv,
              "interpret --pair ids as OpenCV workloads")
        .custom("batch", "L",
                "comma-separated WLn/CVn list, FCFS scheduled",
                [&opt](const std::string &v, std::string &) {
                    opt.batch.clear();
                    std::string item;
                    for (const char *p = v.c_str();; ++p) {
                        if (*p == ',' || *p == '\0') {
                            if (!item.empty())
                                opt.batch.push_back(item);
                            item.clear();
                            if (*p == '\0')
                                break;
                        } else {
                            item.push_back(*p);
                        }
                    }
                    return true;
                })
        .value("max-cycles", &opt.maxCycles, "N",
               "simulation cap (default 4e7)")
        .value("jobs", &opt.jobs, "N",
               "run --policy all fan-out on N threads", 1)
        .value("json-out", &opt.jsonOut, "F",
               "write the aggregated sweep JSON to F")
        .flag("timeline", &opt.timeline, "print busy-lane timelines")
        .flag("stats", &opt.stats,
              "dump memory/co-processor statistics")
        .flag("json", &opt.json, "print a JSON result summary")
        .value("csv", &opt.csvPrefix, "PREFIX",
               "write PREFIX_{timeline,phases,batch}.csv")
        .value("trace-out", &opt.traceOut, "F",
               "capture an event trace per run; .json gets\n"
               "Chrome/Perfetto format, .bin the compact binary\n"
               "format (multi-run adds _<policy>)")
        .value("trace-events", &opt.traceEvents, "L",
               "categories to trace: comma list of phase,pipeline,\n"
               "partition,reconfig,mem,sched,cluster or 'all'\n"
               "(default all; needs --trace-out)")
        .value("snapshot-every", &opt.snapshotEvery, "N",
               "metric snapshot each N cycles, rendered as counter\n"
               "tracks in the Chrome trace")
        .onOff("fast-forward", &opt.fastForward,
               "skip quiescent cycle spans (default on; results are\n"
               "identical either way)")
        .flag("strict-timeout", &opt.strictTimeout,
              "exit 3 (with a stderr note) if any run hit the\n"
              "--max-cycles cap")
        .value("fault-plan", &opt.faultPlan, "S",
               "deterministic fault plan, entries ';'-joined:\n"
               "lane@CYC:bu=N | vldeny@CYC+DUR:core=N |\n"
               "dram@CYC+DUR:lat=N,bw=N |\n"
               "cfgdelay@CYC+DUR:core=N,cycles=N")
        .value("fault-seed", &opt.faultSeed, "N",
               "seeded random fault plan (ignored when --fault-plan\n"
               "is given); same seed, same plan")
        .value("watchdog-cycles", &opt.watchdogCycles, "N",
               "escalate a <VL> retry spin older than N cycles to\n"
               "the scalar fallback (default off)")
        .value("checkpoint-out", &opt.checkpointOut, "F",
               "checkpoint file; written every --checkpoint-every\n"
               "cycles (single-policy runs only; both flags required)")
        .value("checkpoint-every", &opt.checkpointEvery, "N",
               "overwrite --checkpoint-out every N cycles (the file\n"
               "holds the latest snapshot)")
        .value("restore", &opt.restoreFrom, "F",
               "resume from checkpoint F instead of cycle 0;\n"
               "config/workloads/options must match the run that\n"
               "wrote it (single-policy runs only)")
        .value("sim-threads", &opt.simThreads, "N",
               "tick clustered machines with N worker threads between\n"
               "deterministic horizons; results are byte-identical\n"
               "for any N (default 1 = serial)");
    cliopts::addListOptions(cli, cliopts::kListWorkloads |
                                     cliopts::kListPolicies);
    cli.alias("list", "list-workloads");
    return cli;
}

/** Machine for one policy under the selected topology: the flat path
 *  keeps the forPolicy presets byte-for-byte. */
MachineConfig
makeConfig(SharingPolicy policy, const Options &opt)
{
    if (opt.clusters == 1)
        return MachineConfig::forPolicy(policy, opt.cores);
    return MachineConfig::Builder(policy)
        .topology(opt.clusters, opt.cores)
        .build();
}

void
printRun(SharingPolicy policy, const RunResult &r, const Options &opt)
{
    std::printf("\n=== %s ===\n", policyName(policy));
    if (r.timedOut)
        std::printf("  (hit the %llu-cycle cap)\n",
                    static_cast<unsigned long long>(opt.maxCycles));
    for (std::size_t c = 0; c < r.cores.size(); ++c) {
        const auto &core = r.cores[c];
        std::printf("core%zu %-10s finish=%llu cycles, %llu SIMD "
                    "compute insts, rename-stall %llu cycles\n",
                    c, core.workload.c_str(),
                    static_cast<unsigned long long>(core.finish),
                    static_cast<unsigned long long>(core.computeIssued),
                    static_cast<unsigned long long>(
                        core.renameRegStallCycles));
        for (const auto &ph : core.phases)
            std::printf("  phase %-14s [%8llu..%8llu] VL %2u->%2u "
                        "lanes, rate %.2f\n",
                        ph.name.c_str(),
                        static_cast<unsigned long long>(ph.start),
                        static_cast<unsigned long long>(ph.end),
                        ph.firstVl * kLanesPerBu,
                        ph.lastVl * kLanesPerBu, ph.issueRate);
    }
    for (const auto &b : r.batch)
        std::printf("batch %-10s core%u [%llu..%llu]\n", b.name.c_str(),
                    b.core, static_cast<unsigned long long>(b.dispatched),
                    static_cast<unsigned long long>(b.finished));
    std::printf("SIMD utilization %.1f%%, %llu VL switches, %llu lane "
                "plans, %.2f MB DRAM traffic\n", 100.0 * r.simdUtil,
                static_cast<unsigned long long>(r.vlSwitches),
                static_cast<unsigned long long>(r.plansMade),
                r.dramBytes / 1048576.0);
    for (const auto &cl : r.clusters)
        std::printf("cluster%u: %.2f MB DRAM, share %u B/cyc (avg "
                    "%.1f), migrated in %llu out %llu\n", cl.cluster,
                    cl.dramBytes / 1048576.0, cl.dramShareBpc,
                    cl.avgDramShareBpc,
                    static_cast<unsigned long long>(cl.migratedIn),
                    static_cast<unsigned long long>(cl.migratedOut));
    if (r.laneFaults || r.watchdogTrips)
        std::printf("faults: %llu ExeBU lane fault(s), %llu watchdog "
                    "trip(s) to the scalar fallback\n",
                    static_cast<unsigned long long>(r.laneFaults),
                    static_cast<unsigned long long>(r.watchdogTrips));
    if (opt.timeline) {
        for (std::size_t c = 0; c < r.cores.size(); ++c) {
            std::printf("core%zu busy lanes/kcycle:", c);
            const auto &tl = r.cores[c].busyLanesTimeline;
            for (std::size_t i = 0; i < tl.size(); i += 8)
                std::printf(" %.0f", tl[i]);
            std::printf("\n");
        }
    }
    if (opt.stats)
        std::printf("%s", r.statsText.c_str());
    if (opt.json)
        std::printf("%s\n", trace::toJson(r).c_str());
    if (!opt.csvPrefix.empty()) {
        auto dump = [&](const char *suffix, auto writer) {
            const std::string path =
                opt.csvPrefix + "_" + suffix + ".csv";
            std::ofstream ofs(path);
            writer(ofs, r);
            std::printf("wrote %s\n", path.c_str());
        };
        dump("timeline", trace::writeTimelinesCsv);
        dump("phases", trace::writePhasesCsv);
        dump("batch", trace::writeBatchCsv);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    const cliopts::OptionSet cli = optionTable(opt);
    const cliopts::ParseResult pr = cli.parse(argc, argv);
    if (pr.status == cliopts::Status::Exit)
        return pr.exitCode;
    if (pr.status == cliopts::Status::Error) {
        std::fprintf(stderr, "%s\n", pr.error.c_str());
        cli.printHelp(stderr);
        return 2;
    }

    // Checkpoint files name one run's state, so tie them to one policy.
    if ((!opt.checkpointOut.empty() || !opt.restoreFrom.empty()) &&
        opt.policies.size() != 1) {
        std::fprintf(stderr, "--checkpoint-out/--restore need a single "
                             "--policy (not 'all')\n");
        return 2;
    }

    // Resolve the pair ids (e.g. "6+16").
    const auto plus = opt.pair.find('+');
    if (plus == std::string::npos) {
        std::fprintf(stderr, "bad --pair %s (want e.g. 6+16)\n",
                     opt.pair.c_str());
        return 2;
    }
    const unsigned a =
        static_cast<unsigned>(std::atoi(opt.pair.substr(0, plus).c_str()));
    const unsigned b =
        static_cast<unsigned>(std::atoi(opt.pair.substr(plus + 1).c_str()));

    // Resolve workloads and the machine up front so catalog mistakes
    // and infeasible topologies stay usage errors, then fan one job
    // per policy out through the runner (--policy all used to run the
    // four architectures serially).
    std::vector<runner::JobSpec> jobs;
    try {
        for (SharingPolicy policy : opt.policies) {
            runner::JobSpec spec;
            spec.id = jobs.size();
            spec.label = opt.batch.empty()
                             ? opt.pair + "/" + policyName(policy)
                             : "batch/" + std::string(policyName(policy));
            spec.cfg = makeConfig(policy, opt);
            spec.maxCycles = opt.maxCycles;
            spec.fastForward = opt.fastForward;
            spec.faultPlan = opt.faultPlan;
            spec.faultSeed = opt.faultSeed;
            spec.watchdogCycles = opt.watchdogCycles;
            spec.checkpointOut = opt.checkpointOut;
            spec.checkpointEvery = opt.checkpointEvery;
            spec.restoreFrom = opt.restoreFrom;
            spec.simThreads = opt.simThreads;
            if (!opt.traceOut.empty())
                spec.traceEvents = obs::parseEventMask(opt.traceEvents);
            spec.snapshotEvery = opt.snapshotEvery;
            if (opt.batch.empty()) {
                const workloads::Workload w0 =
                    opt.opencv ? workloads::opencvWorkload(a)
                               : workloads::specWorkload(a);
                const workloads::Workload w1 =
                    opt.opencv ? workloads::opencvWorkload(b)
                               : workloads::specWorkload(b);
                spec.workloads.emplace_back(w0.name, w0.loops);
                if (spec.cfg.numCores > 1)
                    spec.workloads.emplace_back(w1.name, w1.loops);
            } else {
                for (const auto &token : opt.batch) {
                    const workloads::Workload w = lookupWorkload(token);
                    spec.batch.emplace_back(w.name, w.loops);
                }
            }
            jobs.push_back(std::move(spec));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "error: %s (use --list to see the catalog)\n",
                     e.what());
        return 2;
    }

    runner::RunnerOptions ropt;
    ropt.numThreads = opt.jobs;
    const runner::SweepResult sweep =
        runner::Runner(ropt).run(std::move(jobs));

    for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
        const runner::JobResult &j = sweep.jobs[i];
        if (!j.ok())
            std::fprintf(stderr, "job %s failed: %s\n", j.label.c_str(),
                         j.error.c_str());
        printRun(opt.policies[i], j.result, opt);
        // Keep the machine-readable --json stdout stream clean.
        if (opt.fastForward && !opt.json && j.ff.cyclesTicked)
            std::printf("engine: ticked %llu of %llu cycles "
                        "(%.1fx fast-forward, %llu spans)\n",
                        static_cast<unsigned long long>(j.ff.cyclesTicked),
                        static_cast<unsigned long long>(
                            j.ff.cyclesSimulated),
                        static_cast<double>(j.ff.cyclesSimulated) /
                            static_cast<double>(j.ff.cyclesTicked),
                        static_cast<unsigned long long>(j.ff.spans));

        if (!opt.traceOut.empty()) {
            // One trace file per run; multi-policy sweeps get the
            // policy name spliced in before the extension.
            std::string path = opt.traceOut;
            if (sweep.jobs.size() > 1) {
                const auto dot = path.rfind('.');
                const std::string tag =
                    std::string("_") + policyName(opt.policies[i]);
                if (dot == std::string::npos)
                    path += tag;
                else
                    path.insert(dot, tag);
            }
            const bool binary =
                path.size() >= 4 &&
                path.compare(path.size() - 4, 4, ".bin") == 0;
            std::ofstream ofs(path, binary ? std::ios::binary
                                           : std::ios::out);
            if (binary)
                obs::writeBinaryTrace(ofs, j.trace);
            else
                obs::writeChromeTrace(ofs, j.trace, j.result.snapshots);
            std::printf("wrote %s (%zu events, %llu dropped)\n",
                        path.c_str(), j.trace.events.size(),
                        static_cast<unsigned long long>(j.trace.dropped));
        }
    }

    if (!opt.jsonOut.empty()) {
        std::ofstream ofs(opt.jsonOut);
        ofs << runner::sweepToJson(sweep) << "\n";
        std::printf("wrote %s\n", opt.jsonOut.c_str());
    }
    if (opt.strictTimeout) {
        std::size_t timed_out = 0;
        for (const auto &j : sweep.jobs)
            if (j.result.timedOut)
                ++timed_out;
        if (timed_out) {
            std::fprintf(stderr,
                         "%zu run(s) hit the %llu-cycle cap "
                         "(--strict-timeout)\n",
                         timed_out,
                         static_cast<unsigned long long>(opt.maxCycles));
            return 3;
        }
    }
    return sweep.allOk() ? 0 : 1;
}
