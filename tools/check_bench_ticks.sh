#!/usr/bin/env bash
# Fast-forward leverage regression gate.
#
# Compares a freshly generated micro_ticks report against the committed
# BENCH_ticks.json snapshot and fails when the engine loses leverage:
#
#   - `cycles` (simulated length of each scenario) must match EXACTLY —
#     it is fully deterministic, any drift means the simulation changed
#     without regenerating the snapshot (see bench/micro_ticks.cc);
#   - `cycles_ticked` and `spans` may grow by at most 10% — these are
#     the deterministic leverage metrics (fewer skipped cycles == the
#     quiescence detector got weaker);
#   - `results_match` must stay true (fast-forward on == off).
#
# Wall-clock fields are machine-dependent noise and are ignored.
#
# Usage: check_bench_ticks.sh <fresh.json> <committed-snapshot.json>
set -euo pipefail

fresh="${1:?usage: check_bench_ticks.sh <fresh.json> <snapshot.json>}"
snap="${2:?usage: check_bench_ticks.sh <fresh.json> <snapshot.json>}"

fail=0

names=$(jq -r '.scenarios[].name' "$snap")
for name in $names; do
    f=$(jq -c --arg n "$name" '.scenarios[] | select(.name == $n)' "$fresh")
    if [ -z "$f" ]; then
        echo "FAIL $name: missing from fresh report" >&2
        fail=1
        continue
    fi
    s=$(jq -c --arg n "$name" '.scenarios[] | select(.name == $n)' "$snap")

    if [ "$(jq -r '.results_match' <<<"$f")" != "true" ]; then
        echo "FAIL $name: fast-forward changed simulation results" >&2
        fail=1
    fi

    sc=$(jq -r '.cycles' <<<"$s"); fc=$(jq -r '.cycles' <<<"$f")
    if [ "$sc" != "$fc" ]; then
        echo "FAIL $name: simulated cycles drifted ($sc -> $fc);" \
             "regenerate BENCH_ticks.json if the change is intended" >&2
        fail=1
    fi

    for field in cycles_ticked spans; do
        sv=$(jq -r ".$field" <<<"$s"); fv=$(jq -r ".$field" <<<"$f")
        # >10% growth over the snapshot is a leverage regression.
        if [ $((fv * 10)) -gt $((sv * 11)) ]; then
            echo "FAIL $name: $field regressed >10% ($sv -> $fv)" >&2
            fail=1
        else
            echo "ok   $name: $field $sv -> $fv"
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "fast-forward leverage regression detected" >&2
    exit 1
fi
echo "bench ticks within bounds"
