#!/usr/bin/env bash
# Deterministic-bench regression gates.
#
# Compares a freshly generated bench report against its committed
# snapshot, dispatching on the report's "bench" field:
#
# micro_ticks (BENCH_ticks.json) — fast-forward leverage:
#   - `cycles` (simulated length of each scenario) must match EXACTLY —
#     it is fully deterministic, any drift means the simulation changed
#     without regenerating the snapshot (see bench/micro_ticks.cc);
#   - `cycles_ticked` and `spans` may grow by at most 10% — these are
#     the deterministic leverage metrics (fewer skipped cycles == the
#     quiescence detector got weaker);
#   - `results_match` must stay true (fast-forward on == off).
#   Wall-clock fields are machine-dependent noise and are ignored.
#
# fig16_scalability (BENCH_scalability.json) — clustered scale-out:
#   every field is a pure function of the config (DESIGN.md §13's
#   determinism contract), so `cycles`, `dram_bytes`, `vl_switches`,
#   `rebalances` and `migrations` must all match EXACTLY; drift means
#   the clustered machine model changed without regenerating the
#   snapshot (see bench/fig16_scalability.cc).
#
# Usage: check_bench_ticks.sh <fresh.json> <committed-snapshot.json>
set -euo pipefail

fresh="${1:?usage: check_bench_ticks.sh <fresh.json> <snapshot.json>}"
snap="${2:?usage: check_bench_ticks.sh <fresh.json> <snapshot.json>}"

fail=0
bench=$(jq -r '.bench' "$snap")

fb=$(jq -r '.bench' "$fresh")
if [ "$fb" != "$bench" ]; then
    echo "FAIL: fresh report is bench '$fb', snapshot is '$bench'" >&2
    exit 1
fi

names=$(jq -r '.scenarios[].name' "$snap")
for name in $names; do
    f=$(jq -c --arg n "$name" '.scenarios[] | select(.name == $n)' "$fresh")
    if [ -z "$f" ]; then
        echo "FAIL $name: missing from fresh report" >&2
        fail=1
        continue
    fi
    s=$(jq -c --arg n "$name" '.scenarios[] | select(.name == $n)' "$snap")

    case "$bench" in
    micro_ticks)
        if [ "$(jq -r '.results_match' <<<"$f")" != "true" ]; then
            echo "FAIL $name: fast-forward changed simulation results" >&2
            fail=1
        fi

        sc=$(jq -r '.cycles' <<<"$s"); fc=$(jq -r '.cycles' <<<"$f")
        if [ "$sc" != "$fc" ]; then
            echo "FAIL $name: simulated cycles drifted ($sc -> $fc);" \
                 "regenerate BENCH_ticks.json if the change is intended" >&2
            fail=1
        fi

        for field in cycles_ticked spans; do
            sv=$(jq -r ".$field" <<<"$s"); fv=$(jq -r ".$field" <<<"$f")
            # >10% growth over the snapshot is a leverage regression.
            if [ $((fv * 10)) -gt $((sv * 11)) ]; then
                echo "FAIL $name: $field regressed >10% ($sv -> $fv)" >&2
                fail=1
            else
                echo "ok   $name: $field $sv -> $fv"
            fi
        done
        ;;
    fig16_scalability)
        for field in cycles dram_bytes vl_switches rebalances migrations; do
            sv=$(jq -r ".$field" <<<"$s"); fv=$(jq -r ".$field" <<<"$f")
            if [ "$sv" != "$fv" ]; then
                echo "FAIL $name: $field drifted ($sv -> $fv);" \
                     "regenerate BENCH_scalability.json if intended" >&2
                fail=1
            else
                echo "ok   $name: $field $sv"
            fi
        done
        ;;
    *)
        echo "FAIL: unknown bench '$bench' in snapshot" >&2
        exit 1
        ;;
    esac
done

if [ "$fail" -ne 0 ]; then
    echo "deterministic bench regression detected ($bench)" >&2
    exit 1
fi
echo "bench $bench within bounds"
