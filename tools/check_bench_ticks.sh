#!/usr/bin/env bash
# Deterministic-bench regression gates.
#
# Compares a freshly generated bench report against its committed
# snapshot, dispatching on the report's "bench" field:
#
# micro_ticks (BENCH_ticks.json) — fast-forward leverage:
#   - `cycles` (simulated length of each scenario) must match EXACTLY —
#     it is fully deterministic, any drift means the simulation changed
#     without regenerating the snapshot (see bench/micro_ticks.cc);
#   - `cycles_ticked` and `spans` may grow by at most 10% — these are
#     the deterministic leverage metrics (fewer skipped cycles == the
#     quiescence detector got weaker);
#   - `results_match` must stay true (fast-forward on == off; for the
#     parallel_clusters scenario, 1 worker thread == N worker threads);
#   - the parallel_clusters scenario itself must be present.
#   Wall-clock fields are machine-dependent noise and are ignored.
#
# fig16_scalability (BENCH_scalability.json) — clustered scale-out:
#   every field is a pure function of the config (DESIGN.md §13's
#   determinism contract), so `cycles`, `dram_bytes`, `vl_switches`,
#   `rebalances` and `migrations` must all match EXACTLY; drift means
#   the clustered machine model changed without regenerating the
#   snapshot (see bench/fig16_scalability.cc).
#
# traffic_admission (BENCH_admission.json) — admission-control cross:
#   shed/defer/goodput under a seeded poisson stream are pure functions
#   of the config (DESIGN.md §16), so `cycles`, `arrivals`,
#   `completed`, `shed`, `deferrals`, `goodput` and `slo_violations`
#   must all match EXACTLY; drift means admission or overload behavior
#   changed without regenerating the snapshot (see
#   bench/traffic_ablation.cc's admission section).
#
# Usage: check_bench_ticks.sh <fresh.json> <committed-snapshot.json>
set -euo pipefail

fresh="${1:?usage: check_bench_ticks.sh <fresh.json> <snapshot.json>}"
snap="${2:?usage: check_bench_ticks.sh <fresh.json> <snapshot.json>}"

# A missing tool or input must be a loud failure, never a gate that
# "passes" because it compared nothing.
if ! command -v jq >/dev/null 2>&1; then
    echo "FAIL: jq not found on PATH; install jq (the gate parses the" \
         "bench JSON with it)" >&2
    exit 1
fi
if [ ! -r "$fresh" ]; then
    echo "FAIL: fresh report '$fresh' missing or unreadable; build and" \
         "run the bench binary first, e.g." \
         "'cmake --build build --target micro_ticks &&" \
         "./build/bench/micro_ticks $fresh'" >&2
    exit 1
fi
if [ ! -r "$snap" ]; then
    echo "FAIL: committed snapshot '$snap' missing or unreadable;" \
         "expected a checked-in BENCH_*.json at the repo root" >&2
    exit 1
fi

fail=0
bench=$(jq -r '.bench' "$snap")

fb=$(jq -r '.bench' "$fresh")
if [ "$fb" != "$bench" ]; then
    echo "FAIL: fresh report is bench '$fb', snapshot is '$bench'" >&2
    exit 1
fi

names=$(jq -r '.scenarios[].name' "$snap")
if [ -z "$names" ]; then
    echo "FAIL: snapshot '$snap' lists no scenarios; nothing would be" \
         "gated — regenerate it from the bench binary" >&2
    exit 1
fi

# The parallel-ticking scenario (1 vs N cycle-loop worker threads,
# DESIGN.md §15) must stay in the micro_ticks snapshot: its
# results_match and exact-cycles gates are the CI proof that the
# worker pool is deterministic. Wall-clock speedup is host-dependent
# (~1x on a single-core runner) and deliberately not gated.
if [ "$bench" = micro_ticks ] &&
   ! grep -q parallel_clusters <<<"$names"; then
    echo "FAIL: micro_ticks snapshot lacks the parallel_clusters" \
         "scenario; regenerate BENCH_ticks.json with a micro_ticks" \
         "build that includes it" >&2
    exit 1
fi

for name in $names; do
    f=$(jq -c --arg n "$name" '.scenarios[] | select(.name == $n)' "$fresh")
    if [ -z "$f" ]; then
        echo "FAIL $name: missing from fresh report" >&2
        fail=1
        continue
    fi
    s=$(jq -c --arg n "$name" '.scenarios[] | select(.name == $n)' "$snap")

    case "$bench" in
    micro_ticks)
        if [ "$(jq -r '.results_match' <<<"$f")" != "true" ]; then
            echo "FAIL $name: fast-forward changed simulation results" >&2
            fail=1
        fi

        sc=$(jq -r '.cycles' <<<"$s"); fc=$(jq -r '.cycles' <<<"$f")
        if [ "$sc" != "$fc" ]; then
            echo "FAIL $name: simulated cycles drifted ($sc -> $fc);" \
                 "regenerate BENCH_ticks.json if the change is intended" >&2
            fail=1
        fi

        for field in cycles_ticked spans; do
            sv=$(jq -r ".$field" <<<"$s"); fv=$(jq -r ".$field" <<<"$f")
            # >10% growth over the snapshot is a leverage regression.
            if [ $((fv * 10)) -gt $((sv * 11)) ]; then
                echo "FAIL $name: $field regressed >10% ($sv -> $fv)" >&2
                fail=1
            else
                echo "ok   $name: $field $sv -> $fv"
            fi
        done
        ;;
    fig16_scalability)
        for field in cycles dram_bytes vl_switches rebalances migrations; do
            sv=$(jq -r ".$field" <<<"$s"); fv=$(jq -r ".$field" <<<"$f")
            if [ "$sv" != "$fv" ]; then
                echo "FAIL $name: $field drifted ($sv -> $fv);" \
                     "regenerate BENCH_scalability.json if intended" >&2
                fail=1
            else
                echo "ok   $name: $field $sv"
            fi
        done
        ;;
    traffic_admission)
        for field in cycles arrivals completed shed deferrals goodput \
                     slo_violations; do
            sv=$(jq -r ".$field" <<<"$s"); fv=$(jq -r ".$field" <<<"$f")
            if [ "$sv" != "$fv" ]; then
                echo "FAIL $name: $field drifted ($sv -> $fv);" \
                     "regenerate BENCH_admission.json if intended" >&2
                fail=1
            else
                echo "ok   $name: $field $sv"
            fi
        done
        ;;
    *)
        echo "FAIL: unknown bench '$bench' in snapshot" >&2
        exit 1
        ;;
    esac
done

if [ "$fail" -ne 0 ]; then
    echo "deterministic bench regression detected ($bench)" >&2
    exit 1
fi
echo "bench $bench within bounds"
