/**
 * @file
 * occamy-serve: long-lived simulation daemon in the MGSim mold.
 *
 * Speaks newline-delimited JSON on stdin/stdout: each request is one
 * flat JSON object per line ({"cmd":"run","policy":"occamy",...}), each
 * response one JSON object per line, streamed as the work progresses.
 * The daemon keeps a warm pool of pre-booted System instances so a
 * matching "run" request pays zero boot cost (construction, workload
 * compilation, array binding) on the request path — verified through
 * the engine-category SystemBoot event: a pool hit records none after
 * the request arrives.
 *
 * Commands (see README.md for an example session):
 *   hello                       capabilities handshake
 *   pool policy pair [count]    pre-boot count instances into the pool
 *   run  policy pair [...]      run to completion, streaming progress
 *   sweep [pairs] [policy]      multiplex a sweep over the Runner
 *   load policy pair [...]      boot (or take) a stepped session
 *   step [cycles]               advance the session
 *   finalize                    collect the session's result
 *   inspect path                dump live component state (MGSim-style)
 *   paths                       list inspectable component paths
 *   checkpoint file             serialize the session to a file
 *   restore file policy pair    resume a session from a checkpoint
 *   shutdown                    acknowledge and exit cleanly
 *
 * Requests may carry an "id"; it is echoed on every response line the
 * request produces, so a client can multiplex.
 *
 * Overload survival (see DESIGN.md section 16): request lines are
 * bounded (--max-line-bytes; oversized lines get a structured
 * "too_large" error and the stream stays request-aligned), "load" with
 * a "traffic" key opens a multi-tenant traffic session whose admission
 * policy sheds work under overload, requests may carry a "deadline_ms"
 * wall-clock budget (tripping it yields a "busy" error with a
 * retry_after_ms hint instead of an unbounded stall), and
 * --checkpoint-dir/--auto-checkpoint persist the live session every N
 * requests so --recover can resume from the last good checkpoint after
 * a crash, reporting exactly what was lost.
 */

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cliopts.hh"
#include "fault/fault.hh"
#include "obs/events.hh"
#include "obs/sink.hh"
#include "policy/sharing_model.hh"
#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "sim/system.hh"
#include "traffic/admission.hh"
#include "traffic/arrival.hh"
#include "traffic/scheduler.hh"
#include "workloads/suite.hh"

using namespace occamy;

namespace
{

// ------------------------------------------------------ flat JSON I/O

using Kv = std::map<std::string, std::string>;

/** Parse one flat JSON object ({"k":"v","n":3,"b":true}) into a
 *  string->raw-value map. Nested arrays/objects are rejected: the
 *  protocol is deliberately flat so clients can be 10-line scripts. */
bool
parseFlat(const std::string &line, Kv &out, std::string &err)
{
    std::size_t i = 0;
    auto skipWs = [&] {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
    };
    auto parseString = [&](std::string &s) {
        if (line[i] != '"')
            return false;
        ++i;
        while (i < line.size() && line[i] != '"') {
            if (line[i] == '\\' && i + 1 < line.size()) {
                ++i;
                switch (line[i]) {
                  case 'n': s.push_back('\n'); break;
                  case 't': s.push_back('\t'); break;
                  case 'r': s.push_back('\r'); break;
                  case '"': s.push_back('"'); break;
                  case '\\': s.push_back('\\'); break;
                  case '/': s.push_back('/'); break;
                  default: return false;    // \uXXXX unsupported.
                }
            } else {
                s.push_back(line[i]);
            }
            ++i;
        }
        if (i >= line.size())
            return false;
        ++i;    // Closing quote.
        return true;
    };

    skipWs();
    if (i >= line.size() || line[i] != '{') {
        err = "expected a JSON object";
        return false;
    }
    ++i;
    skipWs();
    if (i < line.size() && line[i] == '}')
        return true;    // Empty object.
    for (;;) {
        skipWs();
        std::string key;
        if (i >= line.size() || !parseString(key)) {
            err = "expected a string key";
            return false;
        }
        skipWs();
        if (i >= line.size() || line[i] != ':') {
            err = "expected ':' after key \"" + key + "\"";
            return false;
        }
        ++i;
        skipWs();
        std::string val;
        if (i >= line.size()) {
            err = "missing value for \"" + key + "\"";
            return false;
        }
        if (line[i] == '"') {
            if (!parseString(val)) {
                err = "bad string value for \"" + key + "\"";
                return false;
            }
        } else if (line[i] == '{' || line[i] == '[') {
            err = "nested values are not supported (key \"" + key +
                  "\"); the protocol is flat";
            return false;
        } else {
            while (i < line.size() && line[i] != ',' && line[i] != '}' &&
                   !std::isspace(static_cast<unsigned char>(line[i])))
                val.push_back(line[i++]);
            if (val.empty()) {
                err = "missing value for \"" + key + "\"";
                return false;
            }
        }
        out[key] = val;
        skipWs();
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        if (i < line.size() && line[i] == '}')
            return true;
        err = "expected ',' or '}'";
        return false;
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

/** Incremental one-line JSON response builder. */
class Reply
{
  public:
    explicit Reply(const Kv &req)
    {
        // Echo the client's correlation id, if any.
        const auto it = req.find("id");
        if (it != req.end())
            str("id", it->second);
    }

    Reply &str(const std::string &k, const std::string &v)
    {
        field(k) += "\"" + jsonEscape(v) + "\"";
        return *this;
    }
    Reply &num(const std::string &k, std::uint64_t v)
    {
        field(k) += std::to_string(v);
        return *this;
    }
    Reply &flt(const std::string &k, double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        field(k) += buf;
        return *this;
    }
    Reply &boolean(const std::string &k, bool v)
    {
        field(k) += v ? "true" : "false";
        return *this;
    }

    /** Emit the line and flush: the client reads responses live. */
    void send() const
    {
        std::fputs(("{" + body_ + "}\n").c_str(), stdout);
        std::fflush(stdout);
    }

  private:
    std::string &field(const std::string &k)
    {
        if (!body_.empty())
            body_ += ",";
        body_ += "\"" + jsonEscape(k) + "\":";
        return body_;
    }
    std::string body_;
};

/** Structured error line. Every error carries a machine-readable
 *  "code" ("error" for generic failures; "too_large", "busy",
 *  "recover_failed" for the conditions a client is expected to handle
 *  programmatically). A non-negative @p retry_after_ms adds the
 *  back-off hint that accompanies "busy". */
void
sendError(const Kv &req, const std::string &msg,
          const std::string &code = "error",
          std::int64_t retry_after_ms = -1)
{
    Reply r(req);
    r.boolean("ok", false)
        .str("event", "error")
        .str("code", code)
        .str("error", msg);
    if (retry_after_ms >= 0)
        r.num("retry_after_ms",
              static_cast<std::uint64_t>(retry_after_ms));
    r.send();
}

// ------------------------------------------------- request -> job spec

std::string
getStr(const Kv &m, const std::string &k, const std::string &dflt = "")
{
    const auto it = m.find(k);
    return it == m.end() ? dflt : it->second;
}

std::uint64_t
getU64(const Kv &m, const std::string &k, std::uint64_t dflt = 0)
{
    const auto it = m.find(k);
    return it == m.end()
               ? dflt
               : static_cast<std::uint64_t>(std::atoll(it->second.c_str()));
}

bool
getBool(const Kv &m, const std::string &k, bool dflt)
{
    const auto it = m.find(k);
    if (it == m.end())
        return dflt;
    return it->second == "true" || it->second == "on" ||
           it->second == "1";
}

workloads::Workload
lookupWorkload(const std::string &token)
{
    if (token.rfind("CV", 0) == 0)
        return workloads::opencvWorkload(
            static_cast<unsigned>(std::atoi(token.c_str() + 2)));
    if (token.rfind("WL", 0) == 0)
        return workloads::specWorkload(
            static_cast<unsigned>(std::atoi(token.c_str() + 2)));
    return workloads::specWorkload(
        static_cast<unsigned>(std::atoi(token.c_str())));
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : s) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item.push_back(c);
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

/** One booted simulation the daemon holds: a pooled instance or the
 *  stepped session. Owns everything RunOptions borrows. */
struct SimEntry
{
    std::string key;            ///< Pool identity (see specKey()).
    std::string label;
    MachineConfig cfg;
    fault::FaultPlan plan;      ///< Storage behind opt.faultPlan.
    std::unique_ptr<obs::RingSink> sink;
    RunOptions opt;
    FastForwardStats ff;
    std::unique_ptr<System> sys;
    bool hasTraffic = false;    ///< Traffic session (arrival stream).
    bool hasAdmission = false;  ///< Admission policy installed.
};

/** Simulation parameters a request may set. Parsed through the same
 *  declarative option table the CLIs use (common/cliopts): the NDJSON
 *  key "max_cycles" is the flag --max-cycles, with the identical
 *  validation and error messages. */
struct SimSpec
{
    std::string policy = "occamy";
    std::string pair = "6+16";
    unsigned clusters = 1;
    unsigned cores = 2;             ///< Per cluster.
    std::string batch;
    std::uint64_t maxCycles = 40'000'000;
    std::uint64_t watchdogCycles = 0;
    std::string faultPlan;
    std::uint64_t faultSeed = 0;
    std::uint64_t snapshotEvery = 0;
    bool fastForward = true;
    std::string checkpointOut;
    std::uint64_t checkpointEvery = 0;
    std::string traceEvents;
    std::uint64_t traceCapacity = 1u << 20;
    unsigned simThreads = 1;

    // Traffic session mode: a non-empty "traffic" swaps the pair/batch
    // workload for a generated multi-tenant arrival stream (the same
    // expansion occamy-batchrun's traffic mode uses).
    std::string traffic;            ///< Arrival-process name; "" = off.
    unsigned tenants = 2;
    std::uint64_t arrivalSeed = 1;
    std::uint64_t trafficJobs = 4;
    double trafficRate = 200'000.0;
    std::uint64_t sloCycles = 0;
    std::string scheduler = "fcfs";
    std::string admission = "none";
    unsigned admissionCap = 4;
};

/** The config-key table: one entry per request key makeEntry honors. */
cliopts::OptionSet
simSpecOptions(SimSpec &s)
{
    cliopts::OptionSet set("occamy-serve", "simulation request keys");
    set.value("policy", &s.policy, "P", "sharing policy name")
        .value("pair", &s.pair, "A+B", "workload ids for core0+core1")
        .custom("topology", "CxK",
                "C co-processor clusters of K cores each",
                [&s](const std::string &v, std::string &err) {
                    return cliopts::parseTopology(v, s.clusters,
                                                  s.cores, err);
                })
        .value("cores", &s.cores, "N", "cores per cluster", 1)
        .value("batch", &s.batch, "L", "comma-separated workload list")
        .value("max-cycles", &s.maxCycles, "N", "simulation cap")
        .value("watchdog-cycles", &s.watchdogCycles, "N",
               "livelock watchdog threshold")
        .value("fault-plan", &s.faultPlan, "S",
               "deterministic fault plan")
        .value("fault-seed", &s.faultSeed, "N", "seeded fault plan")
        .value("snapshot-every", &s.snapshotEvery, "N",
               "metric snapshot period")
        .onOff("fast-forward", &s.fastForward,
               "skip quiescent cycle spans")
        .value("checkpoint-out", &s.checkpointOut, "F",
               "periodic checkpoint file")
        .value("checkpoint-every", &s.checkpointEvery, "N",
               "checkpoint period")
        .value("trace-events", &s.traceEvents, "L",
               "extra event categories")
        .value("trace-capacity", &s.traceCapacity, "N",
               "event ring capacity", 1)
        .value("sim-threads", &s.simThreads, "N",
               "cycle-loop worker threads (clustered machines)", 1)
        .value("traffic", &s.traffic, "PROC",
               "traffic session: arrival process name")
        .value("tenants", &s.tenants, "N", "tenant streams", 1)
        .value("arrival-seed", &s.arrivalSeed, "N", "arrival seed")
        .value("traffic-jobs", &s.trafficJobs, "N", "jobs per tenant", 1)
        .value("traffic-rate", &s.trafficRate, "G",
               "mean inter-arrival gap, cycles", true)
        .value("slo-cycles", &s.sloCycles, "N", "per-job SLO budget")
        .value("scheduler", &s.scheduler, "S", "dispatch discipline")
        .value("admission", &s.admission, "A", "admission policy")
        .value("admission-cap", &s.admissionCap, "N",
               "per-tenant in-flight cap / token-bucket size", 1);
    return set;
}

/** Parse a request's config keys into a SimSpec. Non-config keys
 *  (cmd, id, count, file, ...) pass through untouched; a config key
 *  with a bad value throws with the table's error message. */
SimSpec
parseSpec(const Kv &m)
{
    SimSpec s;
    const cliopts::OptionSet set = simSpecOptions(s);
    for (const auto &[k, v] : m) {
        if (!set.has(k))
            continue;
        std::string err;
        if (!set.set(k, v, err))
            throw std::runtime_error(err);
    }
    return s;
}

/** Canonical identity of a request's simulation parameters: a pooled
 *  instance may serve a request iff the keys match exactly. */
std::string
specKey(const SimSpec &s)
{
    std::string key =
        s.policy + "|" + s.pair + "|" +
        std::to_string(s.clusters) + "x" + std::to_string(s.cores) +
        "|" + s.batch + "|" + std::to_string(s.maxCycles) + "|" +
        std::to_string(s.watchdogCycles) + "|" + s.faultPlan + "|" +
        std::to_string(s.faultSeed) + "|" +
        std::to_string(s.snapshotEvery) + "|" +
        (s.fastForward ? "ff" : "tick");
    // Traffic sessions extend the key (batch requests keep their
    // historical keys): a pooled batch instance never serves a traffic
    // request or vice versa.
    if (!s.traffic.empty()) {
        char rate[32];
        std::snprintf(rate, sizeof rate, "%.6g", s.trafficRate);
        key += "|tr:" + s.traffic + "|" + std::to_string(s.tenants) +
               "|" + std::to_string(s.arrivalSeed) + "|" +
               std::to_string(s.trafficJobs) + "|" + rate + "|" +
               std::to_string(s.sloCycles) + "|" + s.scheduler + "|" +
               s.admission + "|" + std::to_string(s.admissionCap);
    }
    return key;
}

std::string
specKey(const Kv &m)
{
    return specKey(parseSpec(m));
}

/** Build a SimEntry from request params; boots unless told not to
 *  (restore boots through System::restoreCheckpoint instead). Throws
 *  std::runtime_error on bad params. */
std::unique_ptr<SimEntry>
makeEntry(const Kv &m, bool boot)
{
    const SimSpec s = parseSpec(m);
    auto e = std::make_unique<SimEntry>();
    e->key = specKey(s);

    const policy::SharingModel *model = policy::modelByName(s.policy);
    if (!model)
        throw std::runtime_error("unknown policy: " + s.policy +
                                 " (see hello's policy list)");
    e->cfg = s.clusters == 1
                 ? MachineConfig::forPolicy(model->id(), s.cores)
                 : MachineConfig::Builder(model->id())
                       .topology(s.clusters, s.cores)
                       .build();

    e->sys = std::make_unique<System>(e->cfg);
    if (!s.traffic.empty()) {
        // Traffic session: the workload is a generated multi-tenant
        // arrival stream; the pair/batch keys are ignored.
        traffic::TrafficConfig tc;
        tc.process = s.traffic;
        tc.tenants = s.tenants;
        tc.seed = s.arrivalSeed;
        tc.jobsPerTenant = s.trafficJobs;
        tc.meanGapCycles = s.trafficRate;
        tc.sloCycles = s.sloCycles;
        tc.scheduler = s.scheduler;
        tc.admission = s.admission;
        tc.admissionCap = s.admissionCap;
        const traffic::Dispatcher *disp =
            traffic::dispatcherByName(tc.scheduler);
        if (!disp)
            throw std::runtime_error("unknown scheduler: " +
                                     tc.scheduler);
        if (!traffic::processByName(tc.process))
            throw std::runtime_error("unknown traffic process: " +
                                     tc.process);
        for (const traffic::Arrival &a : traffic::generate(tc))
            e->sys->enqueueArrival(a);
        e->sys->setDispatcher(disp);
        if (tc.admissionEnabled()) {
            const traffic::AdmissionPolicy *adm =
                traffic::admissionByName(tc.admission);
            if (!adm)
                throw std::runtime_error("unknown admission policy: " +
                                         tc.admission);
            e->sys->setAdmission(
                adm, tc.admissionCap,
                static_cast<Cycle>(tc.meanGapCycles));
            e->hasAdmission = true;
        }
        e->hasTraffic = true;
        e->label = s.traffic + "/" + model->key() + "/" + tc.scheduler;
    } else {
        const auto plus = s.pair.find('+');
        if (plus == std::string::npos)
            throw std::runtime_error("bad pair (want e.g. \"6+16\"): " +
                                     s.pair);
        const workloads::Workload w0 =
            lookupWorkload(s.pair.substr(0, plus));
        const workloads::Workload w1 =
            lookupWorkload(s.pair.substr(plus + 1));
        e->sys->setWorkload(0, w0.name, w0.loops);
        if (e->cfg.numCores > 1)
            e->sys->setWorkload(1, w1.name, w1.loops);
        for (const std::string &token : splitCommas(s.batch)) {
            const workloads::Workload w = lookupWorkload(token);
            e->sys->enqueueWorkload(w.name, w.loops);
        }
        e->label = s.pair + "/" + model->key();
    }

    e->opt.maxCycles = s.maxCycles;
    e->opt.snapshotEvery = s.snapshotEvery;
    e->opt.fastForward = s.fastForward;
    e->opt.watchdogCycles = s.watchdogCycles;
    e->opt.checkpointOut = s.checkpointOut;
    e->opt.checkpointEvery = s.checkpointEvery;
    // Not part of specKey: thread count never changes results, so a
    // pooled instance may serve requests with any sim-threads value.
    e->opt.simThreads = s.simThreads;
    e->opt.ffStats = &e->ff;

    // Engine events always on: SystemBoot is the warm-pool proof and
    // CheckpointSave/Restore narrate the session. "trace_events" adds
    // simulated-hardware categories on top.
    obs::EventMask mask = obs::kEvEngine;
    if (!s.traceEvents.empty())
        mask |= obs::parseEventMask(s.traceEvents);
    e->sink = std::make_unique<obs::RingSink>(
        static_cast<std::size_t>(s.traceCapacity), mask);
    e->opt.sink = e->sink.get();

    if (!s.faultPlan.empty())
        e->plan = fault::FaultPlan::parse(s.faultPlan);
    else if (s.faultSeed)
        e->plan = fault::FaultPlan::random(s.faultSeed, e->cfg);
    if (!e->plan.empty())
        e->opt.faultPlan = &e->plan;

    if (boot)
        e->sys->boot(e->opt);
    return e;
}

std::uint64_t
countBootEvents(const obs::TraceBuffer &tb)
{
    std::uint64_t n = 0;
    for (const obs::Event &ev : tb.events)
        if (ev.kind == obs::EventKind::SystemBoot)
            ++n;
    return n;
}

// ------------------------------------------------------------- daemon

struct Daemon
{
    /** Warm pool: booted instances awaiting a matching run request. */
    std::vector<std::unique_ptr<SimEntry>> pool;
    /** The stepped session (load/step/inspect/checkpoint/restore). */
    std::unique_ptr<SimEntry> session;

    // Crash-recovery state (--checkpoint-dir / --auto-checkpoint /
    // --recover). The request Kv that created the live session is kept
    // so a recovery checkpoint can be rebuilt without the client:
    // System::restoreCheckpoint needs a same-config System first.
    std::string ckptDir;        ///< "" = auto-checkpointing off.
    std::uint64_t autoEvery = 0; ///< Checkpoint every N requests.
    std::uint64_t handled = 0;  ///< Successfully handled requests.
    std::uint64_t ckptSeq = 0;  ///< Monotonic auto-checkpoint number.
    Kv sessionSpec;             ///< Request that built `session`.

    /** Take a pool entry matching @p key, or null. */
    std::unique_ptr<SimEntry> takePooled(const std::string &key)
    {
        for (auto it = pool.begin(); it != pool.end(); ++it) {
            if ((*it)->key == key) {
                auto e = std::move(*it);
                pool.erase(it);
                return e;
            }
        }
        return nullptr;
    }
};

/** One flat-JSON line of @p m with every value as a string — readable
 *  back through parseFlat, whose output is raw strings anyway. The
 *  sidecar a recovery checkpoint needs to rebuild its System. */
std::string
kvToJsonLine(const Kv &m)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : m) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(k) + "\":\"" + jsonEscape(v) + "\"";
    }
    return out + "}";
}

/**
 * Persist the live session: <dir>/auto-<seq>.ckpt (binary state) plus
 * <dir>/auto-<seq>.json (the creating request, so recovery can rebuild
 * the System) and finally <dir>/LATEST naming the pair — written to a
 * temp file and renamed, so a crash mid-checkpoint leaves the previous
 * LATEST intact and recovery always sees a complete checkpoint.
 */
void
autoCheckpoint(Daemon &d)
{
    if (!d.session || !d.session->sys->booted() || d.ckptDir.empty())
        return;
    const std::string base = "auto-" + std::to_string(d.ckptSeq++);
    const std::string ckpt = d.ckptDir + "/" + base + ".ckpt";
    const std::string meta = d.ckptDir + "/" + base + ".json";
    {
        std::ofstream os(ckpt, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("auto-checkpoint: cannot open " +
                                     ckpt);
        d.session->sys->saveCheckpoint(os);
    }
    {
        std::ofstream os(meta, std::ios::trunc);
        if (!os)
            throw std::runtime_error("auto-checkpoint: cannot open " +
                                     meta);
        os << kvToJsonLine(d.sessionSpec) << "\n";
    }
    const std::string latest = d.ckptDir + "/LATEST";
    const std::string tmp = latest + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            throw std::runtime_error("auto-checkpoint: cannot open " +
                                     tmp);
        os << base << "\n";
    }
    if (std::rename(tmp.c_str(), latest.c_str()) != 0)
        throw std::runtime_error("auto-checkpoint: cannot rename " +
                                 tmp);
    Reply r{Kv{}};
    r.boolean("ok", true)
        .str("event", "auto_checkpoint")
        .str("file", ckpt)
        .num("cycle", d.session->sys->now())
        .num("after_requests", d.handled);
    r.send();
}

/**
 * Resume the session a crashed daemon left behind: read <dir>/LATEST,
 * rebuild the System from the recorded request, restore the state and
 * report — honestly — that everything handled after that checkpoint
 * was lost. Any failure degrades to a structured "recover_failed"
 * error and a fresh daemon; recovery never crashes the restart.
 */
void
recoverSession(Daemon &d, const std::string &dir)
{
    try {
        std::string base;
        {
            std::ifstream is(dir + "/LATEST");
            if (!is || !std::getline(is, base) || base.empty())
                throw std::runtime_error("no readable " + dir +
                                         "/LATEST (nothing to recover)");
        }
        const std::string meta = dir + "/" + base + ".json";
        const std::string ckpt = dir + "/" + base + ".ckpt";
        std::string line;
        {
            std::ifstream is(meta);
            if (!is || !std::getline(is, line))
                throw std::runtime_error("cannot read " + meta);
        }
        Kv spec;
        std::string perr;
        if (!parseFlat(line, spec, perr))
            throw std::runtime_error("bad metadata in " + meta + ": " +
                                     perr);
        auto e = makeEntry(spec, /*boot=*/false);
        std::ifstream is(ckpt, std::ios::binary);
        if (!is)
            throw std::runtime_error("cannot open " + ckpt);
        e->sys->restoreCheckpoint(is, e->opt);
        d.session = std::move(e);
        d.sessionSpec = spec;
        Reply r{Kv{}};
        r.boolean("ok", true)
            .str("event", "recovered")
            .str("file", ckpt)
            .str("label", d.session->label)
            .num("cycle", d.session->sys->now())
            // The honest loss statement: state up to this cycle is
            // back; every request handled after the checkpoint was
            // written is gone and must be replayed by the client.
            .str("lost", "all requests handled after " + ckpt +
                             " was written");
        r.send();
    } catch (const std::exception &ex) {
        d.session.reset();
        d.sessionSpec.clear();
        sendError({}, std::string("recovery failed, starting fresh: ") +
                          ex.what(),
                  "recover_failed");
    }
}

void
cmdHello(Daemon &, const Kv &req)
{
    std::string policies;
    for (const policy::SharingModel *m : policy::allModels()) {
        if (!policies.empty())
            policies += ",";
        policies += m->key();
    }
    Reply r(req);
    r.boolean("ok", true)
        .str("event", "hello")
        .str("name", "occamy-serve")
        .num("proto", 1)
        .str("policies", policies);
    r.send();
}

void
cmdPool(Daemon &d, const Kv &req)
{
    const std::uint64_t count = getU64(req, "count", 1);
    const std::string key = specKey(req);
    for (std::uint64_t i = 0; i < count; ++i) {
        auto e = makeEntry(req, /*boot=*/true);
        // Drain boot-time events now: anything the sink catches later
        // happened on a request path.
        const obs::TraceBuffer tb = e->sink->take();
        if (countBootEvents(tb) != 1)
            throw std::runtime_error("pool boot produced no SystemBoot "
                                     "event (engine tracing broken?)");
        d.pool.push_back(std::move(e));
    }
    Reply r(req);
    r.boolean("ok", true)
        .str("event", "pooled")
        .str("key", key)
        .num("count", count)
        .num("pool_size", d.pool.size());
    r.send();
}

/** Acquire an instance for run/load: pool hit or inline boot. */
std::unique_ptr<SimEntry>
acquire(Daemon &d, const Kv &req, bool &pool_hit)
{
    auto e = d.takePooled(specKey(req));
    pool_hit = e != nullptr;
    if (!e) {
        e = makeEntry(req, /*boot=*/true);
        // Inline boot happened on the request path; keep its SystemBoot
        // event in the sink so the done/loaded reply counts it.
    }
    return e;
}

/** Stream progress while advancing to completion; shared by run and
 *  the finishing step of a session. A request-supplied "deadline_ms"
 *  bounds the wall clock spent: when it trips, advancing stops at the
 *  current cycle boundary and false comes back — the caller turns that
 *  into a structured "busy" error (the session keeps its progress, so
 *  a client may simply retry). 0 / absent = no deadline. */
bool
streamToCompletion(SimEntry &e, const Kv &req)
{
    const Cycle chunk = std::max<Cycle>(getU64(req, "progress_every",
                                               2'000'000),
                                        1);
    const std::uint64_t deadline_ms = getU64(req, "deadline_ms", 0);
    const auto t0 = std::chrono::steady_clock::now();
    while (!e.sys->advance(e.sys->now() + chunk)) {
        if (deadline_ms) {
            const double elapsed =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (elapsed > static_cast<double>(deadline_ms))
                return false;
        }
        Reply p(req);
        p.boolean("ok", true)
            .str("event", "progress")
            .str("label", e.label)
            .num("cycle", e.sys->now());
        p.send();
    }
    return true;
}

void
sendRunSummary(const Kv &req, SimEntry &e, const RunResult &res,
               bool pool_hit, const char *event)
{
    const obs::TraceBuffer tb = e.sink->take();
    Reply r(req);
    r.boolean("ok", true)
        .str("event", event)
        .str("label", e.label)
        .boolean("pool_hit", pool_hit)
        // The warm-pool contract, made measurable: SystemBoot engine
        // events recorded since the request arrived. 0 on a pool hit
        // (the boot happened at pool-fill time), 1 on an inline boot.
        .num("boot_events_on_request_path", countBootEvents(tb))
        .num("cycles", res.cycles)
        .flt("simd_util", res.simdUtil)
        .num("vl_switches", res.vlSwitches)
        .num("plans_made", res.plansMade)
        .num("watchdog_trips", res.watchdogTrips)
        .num("lane_faults", res.laneFaults)
        .boolean("timed_out", res.timedOut)
        .num("cycles_ticked", e.ff.cyclesTicked)
        .num("cycles_simulated", e.ff.cyclesSimulated)
        .num("events", tb.events.size());
    if (e.hasTraffic)
        r.num("traffic_jobs", res.trafficJobs.size());
    if (e.hasAdmission)
        r.num("jobs_shed", res.jobsShed)
            .num("job_deferrals", res.jobDeferrals)
            .num("overload_enters", res.overloadEnters);
    r.send();
}

void
cmdRun(Daemon &d, const Kv &req)
{
    // Self-protection under overload: while the live traffic session's
    // admission controller reports overload, new run requests (which
    // would boot and execute a whole extra simulation inline) are
    // refused with a back-off hint instead of queued behind the storm.
    if (d.session && d.session->sys->booted() &&
        d.session->sys->overloaded()) {
        sendError(req,
                  "daemon overloaded (live traffic session is "
                  "shedding); retry later",
                  "busy", 100);
        return;
    }
    bool pool_hit = false;
    auto e = acquire(d, req, pool_hit);
    if (!streamToCompletion(*e, req)) {
        // Deadline tripped mid-run: the one-shot run is abandoned.
        sendError(req,
                  "deadline_ms exceeded at cycle " +
                      std::to_string(e->sys->now()) +
                      " before completion",
                  "busy",
                  static_cast<std::int64_t>(
                      getU64(req, "deadline_ms", 0)));
        return;
    }
    const RunResult res = e->sys->finalize();
    sendRunSummary(req, *e, res, pool_hit, "done");
}

void
cmdSweep(Daemon &, const Kv &req)
{
    const std::string pair_spec = getStr(req, "pairs", "spec");
    std::vector<workloads::Pair> pairs;
    if (pair_spec == "all")
        pairs = workloads::allPairs();
    else if (pair_spec == "spec")
        pairs = workloads::specPairs();
    else if (pair_spec == "opencv")
        pairs = workloads::opencvPairs();
    else {
        const auto all = workloads::allPairs();
        for (const std::string &token : splitCommas(pair_spec))
            for (const auto &p : all)
                if (p.label == token)
                    pairs.push_back(p);
    }
    if (pairs.empty())
        throw std::runtime_error("no pairs match: " + pair_spec);

    std::vector<SharingPolicy> policies;
    const std::string pol = getStr(req, "policy", "all");
    if (pol == "all") {
        for (const policy::SharingModel *m : policy::allModels())
            policies.push_back(m->id());
    } else if (const policy::SharingModel *m = policy::modelByName(pol)) {
        policies.push_back(m->id());
    } else {
        throw std::runtime_error("unknown policy: " + pol);
    }

    auto jobs = runner::pairSweepJobs(
        pairs, policies, getU64(req, "max_cycles", 40'000'000));
    for (auto &spec : jobs) {
        spec.fastForward = getBool(req, "fast_forward", true);
        spec.watchdogCycles = getU64(req, "watchdog_cycles", 0);
        spec.faultPlan = getStr(req, "fault_plan");
        spec.faultSeed = getU64(req, "fault_seed", 0);
    }

    runner::RunnerOptions ropt;
    ropt.numThreads =
        static_cast<unsigned>(getU64(req, "jobs", 0));
    // Progress callbacks land on this (coordinating) thread, so the
    // NDJSON stream stays well-formed.
    ropt.onProgress = [&req](const runner::Progress &p) {
        Reply r(req);
        r.boolean("ok", true)
            .str("event", "sweep_progress")
            .num("done", p.done)
            .num("total", p.total)
            .num("running", p.running)
            .num("failed", p.failed);
        r.send();
    };

    const runner::SweepResult sweep =
        runner::Runner(ropt).run(std::move(jobs));
    for (const runner::JobResult &j : sweep.jobs) {
        Reply r(req);
        r.boolean("ok", true)
            .str("event", "job")
            .num("job_id", j.id)
            .str("label", j.label)
            .str("status", runner::jobStatusName(j.status))
            .num("cycles", j.result.cycles)
            .flt("simd_util", j.result.simdUtil);
        if (!j.ok())
            r.str("error", j.error);
        r.send();
    }
    Reply r(req);
    r.boolean("ok", true)
        .str("event", "sweep_done")
        .num("jobs", sweep.jobs.size())
        .num("failed", sweep.failed());
    r.send();
}

void
cmdLoad(Daemon &d, const Kv &req)
{
    bool pool_hit = false;
    d.session = acquire(d, req, pool_hit);
    d.sessionSpec = req;
    d.sessionSpec.erase("id");
    const obs::TraceBuffer tb = d.session->sink->take();
    Reply r(req);
    r.boolean("ok", true)
        .str("event", "loaded")
        .str("label", d.session->label)
        .boolean("pool_hit", pool_hit)
        .num("boot_events_on_request_path", countBootEvents(tb))
        .num("cycle", d.session->sys->now());
    r.send();
}

SimEntry &
needSession(Daemon &d)
{
    if (!d.session || !d.session->sys->booted())
        throw std::runtime_error("no live session (use load or restore "
                                 "first)");
    return *d.session;
}

void
cmdStep(Daemon &d, const Kv &req)
{
    SimEntry &e = needSession(d);
    const Cycle cycles = getU64(req, "cycles", 100'000);
    const bool finished = e.sys->advance(e.sys->now() + cycles);
    Reply r(req);
    r.boolean("ok", true)
        .str("event", "stepped")
        .num("cycle", e.sys->now())
        .boolean("finished", finished);
    // Live overload telemetry for traffic sessions, so a client can
    // throttle itself before its requests start bouncing with "busy".
    if (e.hasAdmission)
        r.boolean("overloaded", e.sys->overloaded());
    r.send();
}

void
cmdFinalize(Daemon &d, const Kv &req)
{
    SimEntry &e = needSession(d);
    if (!streamToCompletion(e, req)) {
        // The session keeps its progress; the client may finalize
        // again (possibly with a larger deadline).
        sendError(req,
                  "deadline_ms exceeded at cycle " +
                      std::to_string(e.sys->now()) +
                      "; session kept, retry finalize",
                  "busy",
                  static_cast<std::int64_t>(
                      getU64(req, "deadline_ms", 0)));
        return;
    }
    const RunResult res = e.sys->finalize();
    sendRunSummary(req, e, res, false, "finalized");
    d.session.reset();
}

void
cmdInspect(Daemon &d, const Kv &req)
{
    SimEntry &e = needSession(d);
    const std::string path = getStr(req, "path", "system");
    Reply r(req);
    r.boolean("ok", true)
        .str("event", "inspect")
        .str("path", path)
        .num("cycle", e.sys->now())
        .str("state", e.sys->inspect(path));
    r.send();
}

void
cmdPaths(Daemon &d, const Kv &req)
{
    SimEntry &e = needSession(d);
    std::string joined;
    for (const std::string &p : e.sys->componentPaths()) {
        if (!joined.empty())
            joined += ",";
        joined += p;
    }
    Reply r(req);
    r.boolean("ok", true).str("event", "paths").str("paths", joined);
    r.send();
}

void
cmdCheckpoint(Daemon &d, const Kv &req)
{
    SimEntry &e = needSession(d);
    const std::string file = getStr(req, "file");
    if (file.empty())
        throw std::runtime_error("checkpoint needs \"file\"");
    std::ofstream os(file, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("cannot open " + file);
    e.sys->saveCheckpoint(os);
    const std::uint64_t bytes = static_cast<std::uint64_t>(os.tellp());
    os.close();
    Reply r(req);
    r.boolean("ok", true)
        .str("event", "checkpointed")
        .str("file", file)
        .num("cycle", e.sys->now())
        .num("bytes", bytes);
    r.send();
}

void
cmdRestore(Daemon &d, const Kv &req)
{
    const std::string file = getStr(req, "file");
    if (file.empty())
        throw std::runtime_error("restore needs \"file\"");
    std::ifstream is(file, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open " + file);
    auto e = makeEntry(req, /*boot=*/false);
    e->sys->restoreCheckpoint(is, e->opt);
    d.session = std::move(e);
    d.sessionSpec = req;
    d.sessionSpec.erase("id");
    Reply r(req);
    r.boolean("ok", true)
        .str("event", "restored")
        .str("file", file)
        .str("label", d.session->label)
        .num("cycle", d.session->sys->now());
    r.send();
}

/**
 * Read one newline-terminated request of at most @p max bytes into
 * @p line. @return 0 at EOF with nothing read, 1 on a complete line,
 * 2 when the line exceeded the bound — the remainder of the physical
 * line is consumed, so the stream stays aligned on request boundaries
 * and the next read starts at the next request.
 */
int
readBoundedLine(std::istream &in, std::string &line, std::size_t max)
{
    line.clear();
    int c;
    bool any = false;
    while ((c = in.get()) != std::char_traits<char>::eof()) {
        any = true;
        if (c == '\n')
            return 1;
        if (line.size() >= max) {
            while ((c = in.get()) != std::char_traits<char>::eof() &&
                   c != '\n') {
            }
            return 2;
        }
        line.push_back(static_cast<char>(c));
    }
    return any ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t maxLineBytes = 1u << 20;
    std::string ckptDir;
    std::uint64_t autoEvery = 8;
    std::string recoverDir;

    cliopts::OptionSet cli("occamy-serve",
                           "NDJSON simulation daemon on stdin/stdout");
    cli.value("max-line-bytes", &maxLineBytes, "N",
              "reject request lines longer than N bytes with a\n"
              "structured too_large error (default 1 MiB)", 1)
        .value("checkpoint-dir", &ckptDir, "DIR",
               "auto-checkpoint the live session into DIR (created\n"
               "if missing) every --auto-checkpoint requests")
        .value("auto-checkpoint", &autoEvery, "N",
               "auto-checkpoint period in handled requests\n"
               "(default 8; needs --checkpoint-dir)", 1)
        .value("recover", &recoverDir, "DIR",
               "on startup, restore the last good auto-checkpoint\n"
               "from DIR (implies --checkpoint-dir DIR unless given)");
    const cliopts::ParseResult pr = cli.parse(argc, argv);
    if (pr.status == cliopts::Status::Exit)
        return pr.exitCode;
    if (pr.status == cliopts::Status::Error) {
        std::fprintf(stderr, "%s\n", pr.error.c_str());
        cli.printHelp(stderr);
        return 2;
    }

    Daemon d;
    if (!recoverDir.empty() && ckptDir.empty())
        ckptDir = recoverDir;
    d.ckptDir = ckptDir;
    d.autoEvery = ckptDir.empty() ? 0 : autoEvery;
    if (!ckptDir.empty()) {
        // Best-effort: a dir that still cannot be written surfaces as
        // a contained structured error on the first auto-checkpoint.
        std::error_code ec;
        std::filesystem::create_directories(ckptDir, ec);
    }
    if (!recoverDir.empty())
        recoverSession(d, recoverDir);

    std::string line;
    int got;
    while ((got = readBoundedLine(std::cin, line,
                                  static_cast<std::size_t>(
                                      maxLineBytes))) != 0) {
        if (got == 2) {
            sendError({}, "request line exceeds " +
                              std::to_string(maxLineBytes) +
                              " bytes (--max-line-bytes); line dropped",
                      "too_large");
            continue;
        }
        if (line.empty())
            continue;
        Kv req;
        std::string perr;
        if (!parseFlat(line, req, perr)) {
            sendError({}, "parse error: " + perr);
            continue;
        }
        const std::string cmd = getStr(req, "cmd");
        try {
            if (cmd == "hello") {
                cmdHello(d, req);
            } else if (cmd == "pool") {
                cmdPool(d, req);
            } else if (cmd == "run") {
                cmdRun(d, req);
            } else if (cmd == "sweep") {
                cmdSweep(d, req);
            } else if (cmd == "load") {
                cmdLoad(d, req);
            } else if (cmd == "step") {
                cmdStep(d, req);
            } else if (cmd == "finalize") {
                cmdFinalize(d, req);
            } else if (cmd == "inspect") {
                cmdInspect(d, req);
            } else if (cmd == "paths") {
                cmdPaths(d, req);
            } else if (cmd == "checkpoint") {
                cmdCheckpoint(d, req);
            } else if (cmd == "restore") {
                cmdRestore(d, req);
            } else if (cmd == "shutdown") {
                Reply r(req);
                r.boolean("ok", true).str("event", "bye");
                r.send();
                return 0;
            } else {
                sendError(req, "unknown cmd: \"" + cmd + "\"");
            }
        } catch (const std::exception &ex) {
            sendError(req, ex.what());
        }
        // Crash-recovery heartbeat: persist the live session every N
        // handled requests. A checkpoint failure is reported but never
        // takes the daemon down — serving beats checkpointing.
        ++d.handled;
        if (d.autoEvery && d.handled % d.autoEvery == 0) {
            try {
                autoCheckpoint(d);
            } catch (const std::exception &ex) {
                sendError({}, std::string("auto-checkpoint failed: ") +
                                  ex.what());
            }
        }
    }
    // EOF without shutdown: still a clean exit (client hung up).
    return 0;
}
