/**
 * @file
 * occamy-regen-golden: rewrite the pinned golden-trace files that
 * tests/test_golden.cc compares against.
 *
 * Run this ONLY after an intentional behavioral change to the
 * simulator, then review the diff of tests/golden/*.json like any
 * other code change — the diff IS the behavioral change.
 *
 * Usage:
 *   occamy-regen-golden [OUTPUT_DIR]     (default: tests/golden)
 *
 * The matrix itself lives in tests/golden_matrix.hh so the tool and
 * the test can never disagree about what is pinned.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "golden_matrix.hh"
#include "runner/runner.hh"
#include "sim/trace.hh"

using namespace occamy;

int
main(int argc, char **argv)
{
    std::string dir = argc > 1 ? argv[1] : "tests/golden";
    if (!dir.empty() && dir.back() != '/')
        dir += '/';

    const auto jobs = golden::goldenJobs();
    const runner::SweepResult sweep = runner::Runner().run(jobs);

    int rc = 0;
    for (const auto &j : sweep.jobs) {
        const std::string path =
            dir + golden::goldenFileName(j.label);
        if (!j.ok()) {
            std::fprintf(stderr, "job %s failed (%s); not writing %s\n",
                         j.label.c_str(), j.error.c_str(), path.c_str());
            rc = 1;
            continue;
        }
        std::ofstream ofs(path);
        if (!ofs) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         path.c_str());
            rc = 1;
            continue;
        }
        ofs << trace::toJson(j.result) << "\n";
        std::printf("wrote %s\n", path.c_str());
    }
    return rc;
}
