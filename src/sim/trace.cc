#include "sim/trace.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace occamy::trace
{

namespace
{

/** RFC-4180 CSV field: quoted iff it contains a comma, quote, or
 *  newline, with embedded quotes doubled. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\r\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** JSON string contents (no surrounding quotes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
writeTimelinesCsv(std::ostream &os, const RunResult &r)
{
    os << "bucket";
    for (std::size_t c = 0; c < r.cores.size(); ++c)
        os << ",core" << c << "_busy,core" << c << "_alloc";
    os << "\n";

    std::size_t buckets = 0;
    for (const auto &core : r.cores)
        buckets = std::max(buckets, core.busyLanesTimeline.size());

    for (std::size_t b = 0; b < buckets; ++b) {
        os << b;
        for (const auto &core : r.cores) {
            const double busy = b < core.busyLanesTimeline.size()
                                    ? core.busyLanesTimeline[b]
                                    : 0.0;
            const double alloc = b < core.allocLanesTimeline.size()
                                     ? core.allocLanesTimeline[b]
                                     : 0.0;
            os << "," << busy << "," << alloc;
        }
        os << "\n";
    }
}

void
writePhasesCsv(std::ostream &os, const RunResult &r)
{
    os << "core,phase,start,end,compute_insts,issue_rate,first_vl,"
          "last_vl\n";
    for (std::size_t c = 0; c < r.cores.size(); ++c)
        for (const auto &ph : r.cores[c].phases)
            os << c << "," << csvField(ph.name) << "," << ph.start << ","
               << ph.end << "," << ph.computeIssued << ","
               << ph.issueRate << "," << ph.firstVl << "," << ph.lastVl
               << "\n";
}

void
writeBatchCsv(std::ostream &os, const RunResult &r)
{
    os << "workload,core,dispatched,finished\n";
    for (const auto &b : r.batch)
        os << csvField(b.name) << "," << b.core << "," << b.dispatched
           << "," << b.finished << "\n";
}

namespace
{

void
jsonCore(std::ostream &os, const CoreRunResult &core)
{
    os << "{\"workload\":\"" << jsonEscape(core.workload) << "\""
       << ",\"finish\":" << core.finish
       << ",\"compute_issued\":" << core.computeIssued
       << ",\"mem_issued\":" << core.memIssued
       << ",\"rename_reg_stall_cycles\":" << core.renameRegStallCycles
       << ",\"monitor_insts\":" << core.monitorInsts
       << ",\"reconfig_wait_cycles\":" << core.reconfigWaitCycles
       << ",\"reconfig_events\":" << core.reconfigEvents
       << ",\"phases\":[";
    for (std::size_t i = 0; i < core.phases.size(); ++i) {
        const auto &ph = core.phases[i];
        os << (i ? "," : "") << "{\"name\":\"" << jsonEscape(ph.name)
           << "\""
           << ",\"start\":" << ph.start << ",\"end\":" << ph.end
           << ",\"issue_rate\":" << ph.issueRate
           << ",\"first_vl\":" << ph.firstVl
           << ",\"last_vl\":" << ph.lastVl << "}";
    }
    os << "]}";
}

} // namespace

std::string
toJson(const RunResult &r)
{
    std::ostringstream os;
    os << std::setprecision(10);
    os << "{\"cycles\":" << r.cycles
       << ",\"simd_util\":" << r.simdUtil
       << ",\"dram_bytes\":" << r.dramBytes
       << ",\"vl_switches\":" << r.vlSwitches
       << ",\"plans_made\":" << r.plansMade
       << ",\"timed_out\":" << (r.timedOut ? "true" : "false")
       << ",\"cores\":[";
    for (std::size_t c = 0; c < r.cores.size(); ++c) {
        if (c)
            os << ",";
        jsonCore(os, r.cores[c]);
    }
    os << "],\"batch\":[";
    for (std::size_t i = 0; i < r.batch.size(); ++i) {
        const auto &b = r.batch[i];
        os << (i ? "," : "") << "{\"name\":\"" << jsonEscape(b.name)
           << "\",\"core\":" << b.core
           << ",\"dispatched\":" << b.dispatched
           << ",\"finished\":" << b.finished << "}";
    }
    os << "]";
    // Per-cluster block: present only for clustered topologies, so
    // flat-machine JSON (golden traces included) is byte-identical.
    if (!r.clusters.empty()) {
        os << ",\"arbiter_rebalances\":" << r.arbiterRebalances
           << ",\"clusters\":[";
        for (std::size_t k = 0; k < r.clusters.size(); ++k) {
            const ClusterRunResult &cl = r.clusters[k];
            os << (k ? "," : "") << "{\"cluster\":" << cl.cluster
               << ",\"dram_bytes\":" << cl.dramBytes
               << ",\"vl_switches\":" << cl.vlSwitches
               << ",\"plans_made\":" << cl.plansMade
               << ",\"dram_share_bpc\":" << cl.dramShareBpc
               << ",\"avg_dram_share_bpc\":" << cl.avgDramShareBpc
               << ",\"migrated_in\":" << cl.migratedIn
               << ",\"migrated_out\":" << cl.migratedOut << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

} // namespace occamy::trace
