/**
 * @file
 * Result exporters: CSV timelines/phase tables for plotting (the same
 * series the paper's Fig. 2 and Fig. 14 plots show) and a JSON summary
 * for machine consumption (CI regression tracking, notebooks).
 */

#ifndef OCCAMY_SIM_TRACE_HH
#define OCCAMY_SIM_TRACE_HH

#include <ostream>
#include <string>

#include "sim/system.hh"

namespace occamy::trace
{

/**
 * Write per-bucket busy/allocated-lane series:
 *   bucket,core0_busy,core0_alloc,core1_busy,core1_alloc,...
 * one row per timeline bucket (the Fig. 2(b-e) / Fig. 14(b) series).
 */
void writeTimelinesCsv(std::ostream &os, const RunResult &r);

/**
 * Write the per-phase table:
 *   core,phase,start,end,compute_insts,issue_rate,first_vl,last_vl
 */
void writePhasesCsv(std::ostream &os, const RunResult &r);

/**
 * Write batch-dispatch records:
 *   workload,core,dispatched,finished
 */
void writeBatchCsv(std::ostream &os, const RunResult &r);

/** Render the whole result as a JSON object (stable key order). */
std::string toJson(const RunResult &r);

} // namespace occamy::trace

#endif // OCCAMY_SIM_TRACE_HH
