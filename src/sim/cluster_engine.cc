#include "sim/cluster_engine.hh"

#include <algorithm>

namespace occamy
{

ClusterEngine::ClusterEngine(unsigned id, const MachineConfig &view,
                             const std::string &stats_prefix)
    : id_(id), view_(view), mem_(view_), coproc_(view_, mem_),
      mem_group_(stats_prefix + ".mem"), cp_group_(stats_prefix + ".coproc")
{
}

ClusterEngine::~ClusterEngine() = default;

void
ClusterEngine::addCore(std::unique_ptr<ScalarCore> core)
{
    cores_.push_back(std::move(core));
    busy_buckets_.emplace_back();
    alloc_buckets_.emplace_back();
}

void
ClusterEngine::attachSink(obs::EventSink *sink, bool buffered)
{
    obs::EventSink *target = sink;
    if (sink && buffered) {
        buffer_ = std::make_unique<obs::BufferSink>(*sink);
        target = buffer_.get();
    }
    mem_.setEventSink(target);
    coproc_.setEventSink(target);
    for (auto &core : cores_)
        core->setEventSink(target);
}

void
ClusterEngine::regStats()
{
    mem_.regStats(mem_group_);
    coproc_.regStats(cp_group_);
}

void
ClusterEngine::tickCycle(Cycle now, bool full_width, unsigned bucket)
{
    coproc_.tick(now);
    for (auto &core : cores_)
        core->tick(now);

    // Under FTS one full-width unit serves this cluster's cores, so
    // busy lanes are capped cluster-wide and attributed proportionally.
    // The cap is what still works: hard faults shrink the shared unit.
    fts_scale_ = 1.0;
    if (full_width) {
        unsigned sum = 0;
        for (unsigned i = 0; i < numCores(); ++i)
            sum += coproc_.busyLanes(static_cast<CoreId>(i));
        const unsigned cap = coproc_.usableLanes();
        fts_scale_ = sum > cap ? static_cast<double>(cap) / sum : 1.0;
    }

    const std::size_t b = static_cast<std::size_t>(now / bucket);
    for (unsigned i = 0; i < numCores(); ++i) {
        const unsigned alloc =
            coproc_.allocatedLanes(static_cast<CoreId>(i));
        double busy = coproc_.busyLanes(static_cast<CoreId>(i));
        if (full_width)
            busy *= fts_scale_;
        else
            busy = std::min<double>(busy, alloc);
        busy_integral_ += busy;

        if (busy_buckets_[i].size() <= b) {
            busy_buckets_[i].resize(b + 1, 0.0);
            alloc_buckets_[i].resize(b + 1, 0.0);
        }
        busy_buckets_[i][b] += busy;
        alloc_buckets_[i][b] += alloc;
    }
}

void
ClusterEngine::drainEvents()
{
    if (buffer_)
        buffer_->drain();
}

void
ClusterEngine::synthesizeSkipped(Cycle from, Cycle to, unsigned bucket)
{
    const std::size_t last_b = static_cast<std::size_t>(to / bucket);
    for (unsigned i = 0; i < numCores(); ++i) {
        if (busy_buckets_[i].size() <= last_b) {
            busy_buckets_[i].resize(last_b + 1, 0.0);
            alloc_buckets_[i].resize(last_b + 1, 0.0);
        }
        const unsigned alloc =
            coproc_.allocatedLanes(static_cast<CoreId>(i));
        if (alloc == 0)
            continue;
        for (Cycle cy = from; cy <= to;) {
            const std::size_t b = static_cast<std::size_t>(cy / bucket);
            const Cycle bucket_last =
                (static_cast<Cycle>(b) + 1) * bucket - 1;
            const Cycle upto = std::min(bucket_last, to);
            alloc_buckets_[i][b] += static_cast<double>(alloc) *
                                    static_cast<double>(upto - cy + 1);
            cy = upto + 1;
        }
    }
}

Cycle
ClusterEngine::coreWake(Cycle now) const
{
    Cycle wake = kCycleNever;
    for (const auto &core : cores_)
        wake = std::min(wake, core->nextEventAt(now));
    return wake;
}

} // namespace occamy
