/**
 * @file
 * System assembly and co-run driver: builds one of the four SIMD
 * architectures (Fig. 1), compiles each core's workload for that
 * architecture, binds arrays to disjoint address regions, runs the
 * cycle loop, and gathers the metrics the paper reports (speedups,
 * per-phase SIMD issue rates, SIMD utilization per Section 2's
 * definition, busy/allocated-lane timelines, rename-stall fractions,
 * and EM-SIMD overhead).
 */

#ifndef OCCAMY_SIM_SYSTEM_HH
#define OCCAMY_SIM_SYSTEM_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/fwd.hh"
#include "common/config.hh"
#include "compiler/compiler.hh"
#include "coproc/coproc.hh"
#include "core/scalar_core.hh"
#include "fault/fault.hh"
#include "kir/kir.hh"
#include "mem/memsystem.hh"
#include "obs/events.hh"
#include "obs/sink.hh"
#include "traffic/admission.hh"
#include "traffic/metrics.hh"
#include "traffic/scheduler.hh"
#include "traffic/traffic.hh"

namespace occamy
{

/** Per-phase outcome. */
struct PhaseResult
{
    std::string name;
    Cycle start = 0;
    Cycle end = 0;
    std::uint64_t computeIssued = 0;
    double issueRate = 0.0;     ///< SIMD compute insts / cycle.
    unsigned firstVl = 0;       ///< BUs.
    unsigned lastVl = 0;
};

/** Per-core outcome of a co-run. */
struct CoreRunResult
{
    std::string workload;
    Cycle finish = 0;           ///< Cycle the workload fully completed.
    std::vector<PhaseResult> phases;
    std::uint64_t computeIssued = 0;
    std::uint64_t memIssued = 0;
    std::uint64_t renameRegStallCycles = 0;
    std::uint64_t monitorInsts = 0;
    Cycle reconfigWaitCycles = 0;
    std::uint64_t reconfigEvents = 0;
    std::uint64_t reinitInsts = 0;

    /** Per-1000-cycle average busy lanes (timeline, Fig. 2b-e). */
    std::vector<double> busyLanesTimeline;
    /** Per-1000-cycle average allocated lanes (Fig. 14b). */
    std::vector<double> allocLanesTimeline;

    /** Fig. 15 monitoring overhead: emission slots spent on MRS
     *  <decision>, as a fraction of the core's runtime. */
    double monitorOverhead(unsigned transmit_width) const
    {
        if (!finish)
            return 0.0;
        return static_cast<double>(monitorInsts) / transmit_width /
               static_cast<double>(finish);
    }

    /** Fig. 15 reconfiguration overhead fraction. */
    double reconfigOverhead() const
    {
        if (!finish)
            return 0.0;
        return static_cast<double>(reconfigWaitCycles) /
               static_cast<double>(finish);
    }
};

/** Completion record of one batch-scheduled workload (Section 5's
 *  FCFS co-scheduling regime). */
struct BatchCompletion
{
    std::string name;
    CoreId core = 0;
    Cycle dispatched = 0;
    Cycle finished = 0;
};

/** Per-cluster outcome on a clustered machine (topology(C, K) with
 *  C > 1). Flat machines report no cluster records, keeping every
 *  pre-cluster artifact byte-identical. */
struct ClusterRunResult
{
    unsigned cluster = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t vlSwitches = 0;
    std::uint64_t plansMade = 0;
    /** DRAM bytes/cycle granted by the inter-cluster arbiter at the
     *  end of the run. */
    unsigned dramShareBpc = 0;
    /** Time-weighted mean granted share over the whole run. */
    double avgDramShareBpc = 0.0;
    /** Queued workloads adopted into / out of this cluster by the
     *  batch scheduler (cross-cluster work migration). */
    std::uint64_t migratedIn = 0;
    std::uint64_t migratedOut = 0;
};

/** Whole-machine outcome of a co-run. */
struct RunResult
{
    Cycle cycles = 0;           ///< Until the last workload finished.
    double simdUtil = 0.0;      ///< Section 2's SIMD_util over `cycles`.
    std::vector<CoreRunResult> cores;
    std::uint64_t dramBytes = 0;
    std::uint64_t vlSwitches = 0;
    std::uint64_t plansMade = 0;
    bool timedOut = false;      ///< Hit the run() cycle cap.

    /** Livelock-watchdog escalations (RunOptions::watchdogCycles). */
    std::uint64_t watchdogTrips = 0;
    /** ExeBU hard faults applied (RunOptions::faultPlan). */
    std::uint64_t laneFaults = 0;
    /** Run aborted by the wall-clock limit (nondeterministic — never
     *  part of any exported deterministic artifact). */
    bool wallKilled = false;

    /** Per-workload records for batch-queued workloads (FCFS). */
    std::vector<BatchCompletion> batch;

    /** One lifecycle record per traffic arrival (queue order). Empty
     *  unless enqueueArrival was used; traffic-off runs are unchanged
     *  in every exported artifact. */
    std::vector<traffic::JobRecord> trafficJobs;

    /** Jobs whose completion latency exceeded their SLO budget. */
    std::uint64_t sloViolations = 0;

    /** Admission-control outcome counters (all 0 — and absent from
     *  every exported artifact — unless setAdmission installed a
     *  policy). */
    std::uint64_t jobsShed = 0;     ///< Permanently rejected jobs.
    std::uint64_t jobDeferrals = 0; ///< Total defer verdicts issued.
    std::uint64_t overloadEnters = 0; ///< Times the detector tripped.

    /** Per-cluster records (clustered topologies only; empty on flat
     *  machines so their exported artifacts never change). */
    std::vector<ClusterRunResult> clusters;
    /** Inter-cluster arbiter rebalances published (0 on flat machines). */
    std::uint64_t arbiterRebalances = 0;

    /** gem5-style stats dump of the memory system and co-processor. */
    std::string statsText;

    /** Periodic metric snapshots (RunOptions::snapshotEvery > 0). */
    std::vector<obs::MetricSnapshot> snapshots;
};

/** Why the fast-forward engine chose a particular wake cycle. */
enum class WakeSource : std::uint8_t
{
    Coproc,     ///< Co-processor pipeline / lane-manager event.
    Core,       ///< Scalar-core event (stall deadline, next step).
    Mem,        ///< In-flight DRAM line fill completes.
    Dispatch,   ///< Batch context switch finishes.
    Snapshot,   ///< Periodic metric-snapshot boundary.
    Cap,        ///< Nothing pending before the maxCycles cap.
    Fault,      ///< Fault-plan boundary (lane fault / window edge).
    Watchdog,   ///< Livelock-watchdog deadline for a spinning core.
    Checkpoint, ///< Pause boundary: advance() stop cycle or a periodic
                ///< checkpoint-write cycle. Engine bookkeeping only —
                ///< never changes simulated state.
    Arrival,    ///< Next traffic arrival becomes dispatchable. A state
                ///< change the component probes can't see, so it must
                ///< be a wake candidate or fast-forward would idle past
                ///< new work.
    Arbiter,    ///< Inter-cluster bandwidth-rebalance boundary
                ///< (clustered topologies only): the arbiter may change
                ///< per-cluster DRAM grants there, which no component
                ///< probe can anticipate.
    Admission,  ///< Earliest admission re-evaluation boundary: a
                ///< deferred job's backoff expiry or a token-bucket
                ///< refill instant. Like Arrival, invisible to
                ///< component probes, so it must be a wake candidate.
};

/**
 * Accounting of one run's fast-forward behaviour. cyclesTicked counts
 * loop iterations actually executed; the ratio cyclesSimulated /
 * cyclesTicked is the engine's leverage on that workload (1.0 when
 * fast-forward is off or the machine is never quiescent).
 */
struct FastForwardStats
{
    Cycle cyclesSimulated = 0;      ///< Cycles the run covered.
    Cycle cyclesTicked = 0;         ///< Cycles actually ticked.
    Cycle cyclesSkipped = 0;        ///< Sum of skipped spans.
    std::uint64_t spans = 0;        ///< Fast-forward jumps taken.
    Cycle longestSpan = 0;          ///< Largest single jump, cycles.
};

/** Knobs of one System::run() invocation. */
struct RunOptions
{
    Cycle maxCycles = 20'000'000;   ///< Safety cap (sets timedOut).
    unsigned bucket = 1000;         ///< Timeline bucket size, cycles.

    /** Event sink to attach to every component for this run; null
     *  disables tracing (the zero-overhead default). Borrowed — must
     *  outlive the run() call. */
    obs::EventSink *sink = nullptr;

    /** Emit a metric snapshot every N cycles (0 = never). */
    Cycle snapshotEvery = 0;

    /** Skip quiescent spans of the cycle loop (results are identical
     *  either way; off forces the classic tick-every-cycle loop). */
    bool fastForward = true;

    /** If non-null, receives the run's fast-forward accounting.
     *  Borrowed — must outlive the run() call. */
    FastForwardStats *ffStats = nullptr;

    /** Fault plan to inject (null or empty = fault-free, the default;
     *  with no plan and no watchdog the run is byte-identical to a
     *  build without the fault subsystem). Borrowed — must outlive the
     *  run() call. */
    const fault::FaultPlan *faultPlan = nullptr;

    /** Livelock watchdog: a <VL>-request episode (initial write plus
     *  its Fig. 9 retry spin) older than this many cycles is escalated
     *  to the multi-version scalar fallback. 0 = watchdog off. */
    Cycle watchdogCycles = 0;

    /** Hard wall-clock kill: abort the run (wallKilled = true) once it
     *  has consumed this many seconds of host time. 0 = off. Checked
     *  coarsely (every 64k ticked cycles); inherently nondeterministic,
     *  so it feeds no deterministic artifact. */
    double wallClockLimitSec = 0.0;

    /** Periodic checkpointing: every checkpointEvery cycles, pause at
     *  the cycle boundary and (over)write checkpointOut, so the file
     *  always holds the most recent snapshot — the post-mortem
     *  workflow of DESIGN.md §11. Both must be set; writing never
     *  perturbs simulated state or kEvAll-visible traces. */
    std::string checkpointOut;
    Cycle checkpointEvery = 0;

    /** Threads ticking the per-cycle parallel cluster phase (DESIGN.md
     *  §15), capped at the cluster count; <= 1 (and every flat
     *  machine) keeps the classic serial loop. Results, stats, event
     *  streams, checkpoints, and fingerprints are byte-identical for
     *  any value — the thread count is an engine knob, never simulated
     *  state, so it is deliberately excluded from the checkpoint
     *  fingerprint. */
    unsigned simThreads = 1;
};

/** One simulated machine plus the workloads bound to its cores. */
class System
{
  public:
    explicit System(MachineConfig cfg);
    ~System();      ///< Out of line: Ctx is complete only in system.cc.

    /**
     * Assign a workload (list of kernel loops) to a core. Must be
     * called for every core before run(); pass an empty list for an
     * idle core.
     */
    void setWorkload(CoreId core, std::string name,
                     std::vector<kir::Loop> loops);

    /**
     * Queue a workload for FCFS dispatch (Section 5's co-scheduling
     * assumption): whichever core first completes its current workload
     * picks up the queue head after an OS context switch, whose cost
     * covers draining the pipelines and saving/restoring the EM-SIMD
     * dedicated registers.
     */
    void enqueueWorkload(std::string name, std::vector<kir::Loop> loops);

    /**
     * Queue one traffic arrival (src/traffic): like enqueueWorkload,
     * but the entry only becomes dispatchable at its effective arrival
     * cycle — Arrival::arriveAt, or for closed-loop jobs the
     * predecessor's completion plus the think time — and its lifecycle
     * (arrive/admit/finish, SLO compliance) is tracked into
     * RunResult::trafficJobs.
     */
    void enqueueArrival(const traffic::Arrival &a);

    /**
     * Select the dispatch discipline for queued work (default: the
     * legacy MachineConfig::schedPolicy behaviour). Borrowed — must
     * outlive the System. Registry objects (traffic::dispatcherByName)
     * are immortal singletons, so those are always safe.
     */
    void setDispatcher(const traffic::Dispatcher *d) { dispatcher_ = d; }

    /**
     * Install an admission policy gating entry of traffic arrivals
     * into the dispatchable pool (src/traffic/admission.hh). Null
     * (the default) disables the layer entirely: no admission state
     * exists, checkpoints/fingerprints/exports are byte-identical to
     * pre-admission builds. Borrowed like the dispatcher; registry
     * policies (traffic::admissionByName) are immortal singletons.
     * @p cap is the policy knob (per-tenant in-flight bound or token
     * bucket capacity; must be >= 1 when a policy is set).
     * @p refillPeriod is the token-bucket refill period in cycles
     * (one token per tenant per period); 0 picks a 100k-cycle
     * default. Only meaningful on runs with traffic arrivals.
     */
    void
    setAdmission(const traffic::AdmissionPolicy *p, unsigned cap = 4,
                 Cycle refillPeriod = 0)
    {
        admission_ = p;
        admission_cap_ = cap;
        admission_refill_ = refillPeriod;
    }

    /** Run to completion of all workloads under @p opt. Equivalent to
     *  boot(opt); advance(); finalize(). */
    RunResult run(const RunOptions &opt = {});

    // --- Incremental driving (occamy-serve, checkpointing). ---

    /**
     * Build the machine and compile/bind every core's workload, but
     * tick nothing yet: the run sits paused at cycle 0. Replaces any
     * in-progress run. @p opt is copied; its borrowed pointers (sink,
     * ffStats, faultPlan) must outlive the booted state.
     */
    void boot(const RunOptions &opt = {});

    /** @return true between boot()/restoreCheckpoint() and finalize(). */
    bool booted() const { return ctx_ != nullptr; }

    /** Current cycle of the booted run (the next cycle to execute). */
    Cycle now() const;

    /** @return true once the booted run has completed (all workloads
     *  done, or a cap/kill ended it). */
    bool finished() const;

    /** @return true while the booted run's admission controller is in
     *  its overload regime. Always false when no admission policy is
     *  installed (setAdmission) or the run is not booted; callers like
     *  occamy-serve use it to shed work before queueing more. */
    bool overloaded() const;

    /**
     * Execute the cycle loop until it completes or reaches @p stopAt
     * (whichever is first). Pausing at a cycle boundary is exact: the
     * artifacts of a paused-and-resumed run are byte-identical to an
     * uninterrupted one (only engine accounting — fast-forward span
     * shapes — may differ). @return finished().
     */
    bool advance(Cycle stopAt = kCycleNever);

    /** Gather the result and tear down the booted state. */
    RunResult finalize();

    // --- Checkpoint/restore (src/ckpt, DESIGN.md §11). ---

    /** Serialize the paused run to @p os. Requires booted(). */
    void saveCheckpoint(std::ostream &os) const;

    /**
     * Boot under @p opt, then load state from @p is, resuming exactly
     * where saveCheckpoint left off. The System must carry the same
     * config and workloads, and @p opt the same determinism-relevant
     * options, as the saving run (enforced via a fingerprint check).
     * Throws ckpt::Error on any mismatch or corruption; the System is
     * left un-booted on failure.
     */
    void restoreCheckpoint(std::istream &is, const RunOptions &opt = {});

    /** MGSim-style live inspection: dump the state of the component at
     *  @p path (see componentPaths()). Requires booted(). */
    std::string inspect(const std::string &path) const;

    /** Inspectable component paths of this machine. */
    std::vector<std::string> componentPaths() const;

    const MachineConfig &config() const { return cfg_; }

  private:
    struct Ctx;

    /** Compile a workload, bind its arrays to the next address region,
     *  and record the compile for deterministic checkpoint replay. */
    const Program *compileAndBind(Ctx &x, CoreId c,
                                  const std::string &name,
                                  const std::vector<kir::Loop> &loops);

    /** Config+workload+options digest stored in checkpoints. */
    std::uint64_t fingerprint(const Ctx &x) const;

    MachineConfig cfg_;
    std::vector<std::string> names_;
    std::vector<std::vector<kir::Loop>> loops_;
    std::vector<std::pair<std::string, std::vector<kir::Loop>>> queue_;

    /** Traffic metadata parallel to queue_ (default entries for plain
     *  enqueueWorkload calls). has_traffic_ gates every traffic-side
     *  artifact so traffic-off runs stay byte-identical. */
    std::vector<traffic::Arrival> queue_meta_;
    bool has_traffic_ = false;
    const traffic::Dispatcher *dispatcher_ = nullptr;

    /** Admission layer (null = off; see setAdmission). */
    const traffic::AdmissionPolicy *admission_ = nullptr;
    unsigned admission_cap_ = 4;
    Cycle admission_refill_ = 0;

    std::unique_ptr<Ctx> ctx_;
};

/**
 * Convenience: co-run @p workloads (one per core) under policy @p p and
 * return the result. The machine is sized with 4 ExeBUs per core; all
 * run knobs come from @p opt.
 */
RunResult corun(SharingPolicy p,
                const std::vector<std::pair<std::string,
                                            std::vector<kir::Loop>>> &wls,
                const RunOptions &opt = {});

} // namespace occamy

#endif // OCCAMY_SIM_SYSTEM_HH
