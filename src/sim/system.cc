#include "sim/system.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <sstream>

#include "fault/injector.hh"
#include "kir/analysis.hh"
#include "lanemgr/partitioner.hh"
#include "policy/sharing_model.hh"

namespace occamy
{

System::System(MachineConfig cfg) : cfg_(std::move(cfg))
{
    names_.resize(cfg_.numCores);
    loops_.resize(cfg_.numCores);
}

void
System::setWorkload(CoreId core, std::string name,
                    std::vector<kir::Loop> loops)
{
    names_.at(core) = std::move(name);
    loops_.at(core) = std::move(loops);
}

void
System::enqueueWorkload(std::string name, std::vector<kir::Loop> loops)
{
    queue_.emplace_back(std::move(name), std::move(loops));
}

RunResult
System::run(const RunOptions &opt)
{
    const Cycle max_cycles = opt.maxCycles;
    const unsigned bucket = opt.bucket;
    MachineConfig cfg = cfg_;
    const policy::SharingModel &model = policy::model(cfg.policy);

    // Offline static lane plan (Section 7.1's static spatial sharing,
    // and work-conserving variants entitled by the same plan).
    if (model.wantsOfflineStaticPlan() && cfg.staticPlan.empty()) {
        std::vector<std::vector<PhaseOI>> phase_ois(cfg.numCores);
        std::vector<bool> will_run(cfg.numCores, false);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            for (const auto &loop : loops_[c])
                phase_ois[c].push_back(kir::phaseOI(
                    loop, cfg.vecCache.sizeBytes, cfg.l2.sizeBytes));
            will_run[c] = !loops_[c].empty() || !queue_.empty();
        }
        model.resolveStaticPlan(cfg, phase_ois, will_run);
    }

    MemSystem mem(cfg);
    CoProcessor coproc(cfg, mem);

    // Fault injection (src/fault): one injector serves the whole
    // machine. Null plan = fault-free, and none of the hooks fire.
    std::unique_ptr<fault::FaultInjector> injector;
    if (opt.faultPlan && !opt.faultPlan->empty()) {
        injector = std::make_unique<fault::FaultInjector>(*opt.faultPlan,
                                                          cfg.numExeBUs);
        coproc.setFaultInjector(injector.get());
        mem.setFaultInjector(injector.get());
    }

    // Compile a workload for a core and bind its arrays into a private,
    // staggered address region (distinct cache-set alignment per slot).
    std::vector<std::unique_ptr<Program>> programs;
    unsigned region = 0;
    auto compileAndBind = [&](CoreId c, const std::string &name,
                              const std::vector<kir::Loop> &loops)
        -> const Program * {
        const unsigned fixed_vl = model.perCoreFixedVl(cfg, c);
        CompileOptions opts = CompileOptions::forMachine(cfg, fixed_vl);
        Compiler compiler(opts);
        auto prog = std::make_unique<Program>(
            compiler.compile(name, loops));
        const unsigned slot = region++;
        Addr next = ((static_cast<Addr>(slot) + 1) << 36) +
                    static_cast<Addr>(slot % cfg.numCores) * 40960;
        for (auto &arr : prog->arrays) {
            arr.base = next;
            const Addr size = arr.elems * arr.elemBytes;
            next += (size + 4095) / 4096 * 4096 + 4096;
        }
        programs.push_back(std::move(prog));
        return programs.back().get();
    };

    std::vector<std::unique_ptr<ScalarCore>> cores;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        cores.push_back(std::make_unique<ScalarCore>(
            static_cast<CoreId>(c), cfg, coproc));
        cores[c]->setProgram(compileAndBind(static_cast<CoreId>(c),
                                            names_[c], loops_[c]));
    }

    // Attach the trace sink after construction so boot-time plumbing
    // (e.g. initial lane grants) produces no events.
    mem.setEventSink(opt.sink);
    coproc.setEventSink(opt.sink);
    for (auto &core : cores)
        core->setEventSink(opt.sink);

    // Snapshot groups are built once and re-sampled each period; the
    // same groups feed the final statsText dump.
    stats::Group mem_group("system.mem");
    mem.regStats(mem_group);
    stats::Group cp_group("system.coproc");
    coproc.regStats(cp_group);

    // --- Cycle loop. ---
    RunResult result;
    result.cores.resize(cfg.numCores);
    const unsigned total_lanes = cfg.totalLanes();

    std::vector<Cycle> finish(cfg.numCores, 0);
    std::vector<bool> done(cfg.numCores, false);
    double busy_integral = 0.0;

    std::vector<std::vector<double>> busy_buckets(cfg.numCores);
    std::vector<std::vector<double>> alloc_buckets(cfg.numCores);

    // Batch dispatch state (Section 5). For the OI-aware discipline we
    // pre-analyze each queued workload's first-phase behaviour.
    std::vector<bool> dispatched(queue_.size(), false);
    std::size_t undispatched = queue_.size();
    std::vector<PhaseOI> queue_oi(queue_.size());
    if (cfg.schedPolicy == SchedPolicy::OiAware) {
        for (std::size_t q = 0; q < queue_.size(); ++q)
            if (!queue_[q].second.empty())
                queue_oi[q] = kir::phaseOI(queue_[q].second.front(),
                                           cfg.vecCache.sizeBytes,
                                           cfg.l2.sizeBytes);
    }
    const RooflineParams roofline = RooflineParams::fromConfig(cfg);

    // What each core is running or about to run, for placement
    // decisions (the resource table lags behind pending dispatches).
    std::vector<PhaseOI> sched_oi(cfg.numCores);

    // Estimate the machine's *normalized progress* (the classic
    // weighted-speedup co-scheduling objective) if candidate OI @p cand
    // joins the other cores: sum over active workloads of their
    // attainable rate relative to running alone with all lanes. Raw
    // GFLOP/s would never schedule a memory workload next to a compute
    // one; normalized progress rewards exactly that pairing.
    auto progressWith = [&](const PhaseOI &cand, CoreId target) {
        std::vector<PhaseOI> ois(cfg.numCores);
        for (unsigned i = 0; i < cfg.numCores; ++i) {
            const PhaseOI &running =
                coproc.resourceTable().core(static_cast<CoreId>(i)).oi;
            ois[i] = running.active() ? running : sched_oi[i];
        }
        ois[target] = cand;
        const auto plan = greedyPartition(roofline, ois, cfg.numExeBUs);

        // Memory-bandwidth ceilings are machine-wide: co-running
        // workloads bound at the same level split it. Count them so
        // mem+mem placements are not scored as if each had the full
        // 64 GB/s.
        std::array<unsigned, 3> bound_at{0, 0, 0};
        std::vector<bool> membound(ois.size(), false);
        for (std::size_t i = 0; i < ois.size(); ++i) {
            if (!ois[i].active() || plan[i] == 0)
                continue;
            const double ap = attainable(roofline, ois[i], plan[i]);
            const double ceiling =
                memBandwidth(roofline, ois[i].level) * ois[i].mem;
            if (ap >= ceiling - 1e-9) {
                membound[i] = true;
                ++bound_at[static_cast<unsigned>(ois[i].level)];
            }
        }

        double total = 0.0;
        for (std::size_t i = 0; i < ois.size(); ++i) {
            if (!ois[i].active())
                continue;
            const double solo = attainable(roofline, ois[i],
                                           cfg.numExeBUs);
            if (solo <= 0)
                continue;
            double ap = attainable(roofline, ois[i], plan[i]);
            if (membound[i])
                ap /= bound_at[static_cast<unsigned>(ois[i].level)];
            total += ap / solo;
        }
        return total;
    };

    // Choose which queued workload an idle core picks up next.
    auto selectNext = [&](CoreId core) -> std::size_t {
        if (cfg.schedPolicy == SchedPolicy::Fcfs) {
            for (std::size_t q = 0; q < queue_.size(); ++q)
                if (!dispatched[q])
                    return q;
        } else {
            std::size_t best = queue_.size();
            double best_tp = -1.0;
            for (std::size_t q = 0; q < queue_.size(); ++q) {
                if (dispatched[q])
                    continue;
                const double tp = progressWith(queue_oi[q], core);
                if (tp > best_tp + 1e-9) {
                    best_tp = tp;
                    best = q;
                }
            }
            return best;
        }
        return queue_.size();
    };

    std::vector<Cycle> dispatch_at(cfg.numCores, kCycleNever);
    std::vector<std::size_t> pending_wl(cfg.numCores, 0);

    FastForwardStats ff;

    // Synthesize the timeline contribution of a skipped quiescent span
    // [from, to]: every cycle in it would have added busy = 0 (nothing
    // issues while quiescent — adding 0.0 is an exact no-op, so the
    // busy timeline and busy_integral match the ticked run bit for
    // bit) and alloc = the lanes currently allocated, which cannot
    // change mid-span. Allocated lanes are small integers, so the
    // grouped per-bucket sums below are exact too.
    auto synthesizeSkipped = [&](Cycle from, Cycle to) {
        const std::size_t last_b = static_cast<std::size_t>(to / bucket);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (busy_buckets[c].size() <= last_b) {
                busy_buckets[c].resize(last_b + 1, 0.0);
                alloc_buckets[c].resize(last_b + 1, 0.0);
            }
            const unsigned alloc =
                coproc.allocatedLanes(static_cast<CoreId>(c));
            if (alloc == 0)
                continue;
            for (Cycle cy = from; cy <= to;) {
                const std::size_t b =
                    static_cast<std::size_t>(cy / bucket);
                const Cycle bucket_last =
                    (static_cast<Cycle>(b) + 1) * bucket - 1;
                const Cycle upto = std::min(bucket_last, to);
                alloc_buckets[c][b] += static_cast<double>(alloc) *
                                       static_cast<double>(upto - cy + 1);
                cy = upto + 1;
            }
        }
    };

    std::uint64_t watchdog_trips = 0;
    const auto wall_start = std::chrono::steady_clock::now();

    Cycle now = 0;
    Cycle last_finish = 0;
    for (; now < max_cycles; ++now) {
        ++ff.cyclesTicked;

        // Hard wall-clock kill (runner containment): checked coarsely
        // so the steady_clock read stays off the hot path.
        if (opt.wallClockLimitSec > 0 &&
            (ff.cyclesTicked & 0xFFFF) == 0) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - wall_start;
            if (elapsed.count() > opt.wallClockLimitSec) {
                result.wallKilled = true;
                break;
            }
        }

        if (injector)
            injector->emitBoundaryEvents(now, opt.sink);

        coproc.tick(now);
        for (auto &core : cores)
            core->tick(now);

        // Livelock/deadlock watchdog: a <VL>-request episode (initial
        // write + Fig. 9 retry spin) that outlives the deadline is
        // escalated to the scalar fallback instead of spinning forever.
        if (opt.watchdogCycles) {
            for (auto &core : cores) {
                if (!core->awaitingVl() ||
                    now < core->spinSince() + opt.watchdogCycles)
                    continue;
                const VlRequestStatus st =
                    coproc.vlRequestStatus(core->id());
                if (st.resolved && st.ok)
                    continue;   // Grant landed; the spin ends next step.
                ++watchdog_trips;
                if (opt.sink &&
                    opt.sink->wants(obs::EventKind::WatchdogTrip)) {
                    obs::Event ev;
                    ev.cycle = now;
                    ev.kind = obs::EventKind::WatchdogTrip;
                    ev.core = core->id();
                    ev.a = coproc.currentVl(core->id());
                    ev.b = now - core->spinSince();
                    opt.sink->record(ev);
                }
                core->watchdogEscalate(now);
            }
        }

        // Dispatch queued workloads onto cores whose context switch
        // completed.
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (dispatch_at[c] != kCycleNever && now >= dispatch_at[c]) {
                const auto &[wl_name, wl_loops] = queue_[pending_wl[c]];
                cores[c]->setProgram(compileAndBind(
                    static_cast<CoreId>(c), wl_name, wl_loops));
                result.batch.push_back(BatchCompletion{
                    wl_name, static_cast<CoreId>(c), now, 0});
                if (opt.sink &&
                    opt.sink->wants(obs::EventKind::BatchDispatch)) {
                    obs::Event ev;
                    ev.cycle = now;
                    ev.kind = obs::EventKind::BatchDispatch;
                    ev.core = static_cast<CoreId>(c);
                    ev.a = opt.sink->internString(wl_name);
                    ev.b = pending_wl[c];
                    opt.sink->record(ev);
                }
                dispatch_at[c] = kCycleNever;
            }
        }

        bool all_done = true;
        // Under FTS one full-width unit serves all cores, so busy lanes
        // are capped machine-wide and attributed proportionally.
        double fts_scale = 1.0;
        if (model.fullWidthExecution()) {
            unsigned sum = 0;
            for (unsigned c = 0; c < cfg.numCores; ++c)
                sum += coproc.busyLanes(static_cast<CoreId>(c));
            // The machine-wide cap is what still works: hard faults
            // shrink the single shared unit (== total_lanes unfaulted).
            const unsigned cap = coproc.usableLanes();
            if (sum > cap)
                fts_scale = static_cast<double>(cap) / sum;
        }
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (!done[c]) {
                const bool idle =
                    cores[c]->doneEmitting() &&
                    coproc.coreDrained(static_cast<CoreId>(c)) &&
                    dispatch_at[c] == kCycleNever;
                if (idle) {
                    // Close the batch record of the workload that just
                    // completed on this core, if any.
                    for (auto it = result.batch.rbegin();
                         it != result.batch.rend(); ++it) {
                        if (it->core == c && it->finished == 0) {
                            it->finished = now;
                            break;
                        }
                    }
                    if (undispatched > 0) {
                        // Grab the next workload (per the dispatch
                        // discipline) after the OS context-switch cost.
                        pending_wl[c] = selectNext(static_cast<CoreId>(c));
                        dispatched[pending_wl[c]] = true;
                        sched_oi[c] = queue_oi[pending_wl[c]];
                        --undispatched;
                        dispatch_at[c] = now + cfg.contextSwitchCycles;
                        all_done = false;
                    } else {
                        done[c] = true;
                        finish[c] = now;
                        last_finish = std::max(last_finish, now);
                    }
                } else {
                    all_done = false;
                }
            }
            const unsigned alloc = coproc.allocatedLanes(
                static_cast<CoreId>(c));
            double busy = coproc.busyLanes(static_cast<CoreId>(c));
            if (model.fullWidthExecution())
                busy *= fts_scale;
            else
                busy = std::min<double>(busy, alloc);
            busy_integral += busy;

            const std::size_t b = now / bucket;
            if (busy_buckets[c].size() <= b) {
                busy_buckets[c].resize(b + 1, 0.0);
                alloc_buckets[c].resize(b + 1, 0.0);
            }
            busy_buckets[c][b] += busy;
            alloc_buckets[c][b] += alloc;
        }
        if (opt.snapshotEvery && now > 0 && now % opt.snapshotEvery == 0) {
            obs::MetricSnapshot snap;
            snap.cycle = now;
            snap.values = mem_group.snapshot();
            auto cp = cp_group.snapshot();
            snap.values.insert(snap.values.end(), cp.begin(), cp.end());
            std::sort(snap.values.begin(), snap.values.end());
            result.snapshots.push_back(std::move(snap));
        }
        if (all_done)
            break;

        if (!opt.fastForward)
            continue;

        // --- Quiescence-aware fast-forward (skip-to-next-event). ---
        // Every component reports the earliest future cycle it could
        // change state; until min(candidates), each tick is provably a
        // no-op, so the loop jumps there directly. Probes may be
        // conservative (wake early) but never late, which is what
        // keeps fast-forwarded runs byte-identical to ticked ones.
        Cycle wake = kCycleNever;
        WakeSource why = WakeSource::Cap;
        auto consider = [&](Cycle c, WakeSource s) {
            if (c < wake) {
                wake = c;
                why = s;
            }
        };
        consider(coproc.nextEventAt(now), WakeSource::Coproc);
        if (wake > now + 1) {
            for (auto &core : cores)
                consider(core->nextEventAt(now), WakeSource::Core);
        }
        if (wake > now + 1) {
            consider(mem.nextEventAt(now), WakeSource::Mem);
            for (unsigned c = 0; c < cfg.numCores; ++c)
                if (dispatch_at[c] != kCycleNever)
                    consider(dispatch_at[c], WakeSource::Dispatch);
            if (opt.snapshotEvery)
                consider((now / opt.snapshotEvery + 1) *
                             opt.snapshotEvery,
                         WakeSource::Snapshot);
            // Fault-plan boundaries change component behaviour even when
            // the machine is otherwise quiescent, and a spinning core's
            // watchdog deadline is a state change the probes above can't
            // see. Both must be wake candidates or fast-forward would
            // skip past them and diverge from the ticked run.
            if (injector)
                consider(injector->nextEventAt(now), WakeSource::Fault);
            if (opt.watchdogCycles) {
                for (auto &core : cores)
                    if (core->awaitingVl())
                        consider(std::max(core->spinSince() +
                                              opt.watchdogCycles,
                                          now + 1),
                                 WakeSource::Watchdog);
            }
        }
        if (wake <= now + 1)
            continue;

        // Nothing can happen before `wake`; a machine with no pending
        // event at all (wake == kCycleNever) matches the ticked run's
        // spin to the cap, so jump straight there and time out.
        Cycle target = wake;
        if (target >= max_cycles) {
            target = max_cycles;
            why = WakeSource::Cap;
        }
        const Cycle span = target - now - 1;
        if (span == 0)
            continue;

        if (opt.sink &&
            opt.sink->wants(obs::EventKind::SchedFastForward)) {
            obs::Event ev;
            ev.cycle = now;
            ev.kind = obs::EventKind::SchedFastForward;
            ev.a = span;
            ev.b = static_cast<std::uint64_t>(why);
            opt.sink->record(ev);
        }
        synthesizeSkipped(now + 1, target - 1);
        coproc.skipCycles(span);
        ++ff.spans;
        ff.cyclesSkipped += span;
        ff.longestSpan = std::max(ff.longestSpan, span);
        now = target - 1;       // ++now lands exactly on the wake cycle.
    }
    result.timedOut = now >= max_cycles;
    ff.cyclesSimulated = now < max_cycles ? now + 1 : max_cycles;
    if (opt.ffStats)
        *opt.ffStats = ff;
    result.cycles = std::max<Cycle>(last_finish, 1);
    result.simdUtil =
        busy_integral / (static_cast<double>(total_lanes) *
                         static_cast<double>(result.cycles));

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        CoreRunResult &cr = result.cores[c];
        cr.workload = names_[c];
        cr.finish = finish[c];
        cr.computeIssued = coproc.computeIssued(static_cast<CoreId>(c));
        cr.memIssued = coproc.memIssued(static_cast<CoreId>(c));
        cr.renameRegStallCycles =
            coproc.renameRegStallCycles(static_cast<CoreId>(c));
        cr.monitorInsts = cores[c]->monitorInsts();
        cr.reconfigWaitCycles = cores[c]->reconfigWaitCycles();
        cr.reconfigEvents = cores[c]->reconfigEvents();
        cr.reinitInsts = cores[c]->reinitInsts();

        for (const PhaseTrace &t : cores[c]->phases()) {
            PhaseResult pr;
            pr.name = t.name;
            pr.start = t.start;
            pr.end = t.end ? t.end : finish[c];
            pr.firstVl = t.firstVl;
            pr.lastVl = t.lastVl;
            pr.computeIssued = coproc.computeIssuedInPhase(
                static_cast<CoreId>(c), t.phaseId);
            const Cycle span = pr.end > pr.start ? pr.end - pr.start : 1;
            pr.issueRate = static_cast<double>(pr.computeIssued) /
                           static_cast<double>(span);
            cr.phases.push_back(pr);
        }

        for (std::size_t b = 0; b < busy_buckets[c].size(); ++b) {
            cr.busyLanesTimeline.push_back(busy_buckets[c][b] / bucket);
            cr.allocLanesTimeline.push_back(alloc_buckets[c][b] / bucket);
        }
    }

    result.dramBytes = mem.dramBytes();
    result.vlSwitches = coproc.vlSwitches();
    result.plansMade = coproc.plansMade();
    result.watchdogTrips = watchdog_trips;
    result.laneFaults = coproc.laneFaults();

    // gem5-style stats dump (same groups the snapshots sampled).
    {
        std::ostringstream os;
        mem_group.dump(os);
        cp_group.dump(os);
        stats::Group run_group("system.run");
        run_group.addFormula(
            "watchdog_trips",
            [&] { return static_cast<double>(watchdog_trips); },
            "livelock-watchdog scalar-fallback escalations");
        run_group.addFormula(
            "lane_faults",
            [&] { return static_cast<double>(result.laneFaults); },
            "ExeBU hard faults applied");
        run_group.dump(os);
        result.statsText = os.str();
    }
    return result;
}

RunResult
corun(SharingPolicy p,
      const std::vector<std::pair<std::string,
                                  std::vector<kir::Loop>>> &wls,
      const RunOptions &opt)
{
    MachineConfig cfg = MachineConfig::forPolicy(
        p, static_cast<unsigned>(wls.size()));
    System sys(cfg);
    for (unsigned c = 0; c < wls.size(); ++c)
        sys.setWorkload(static_cast<CoreId>(c), wls[c].first,
                        wls[c].second);
    return sys.run(opt);
}

} // namespace occamy
