#include "sim/system.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ckpt/ckpt.hh"
#include "fault/injector.hh"
#include "kir/analysis.hh"
#include "lanemgr/cluster_arbiter.hh"
#include "lanemgr/partitioner.hh"
#include "policy/sharing_model.hh"
#include "sim/cluster_engine.hh"
#include "sim/tick_pool.hh"
#include "sim/wake_table.hh"

namespace occamy
{

namespace
{

/**
 * The flat view cluster @p k of @p cfg is built from: K local cores,
 * the per-cluster ExeBU count, this cluster's initial DRAM grant, and
 * a 1/C slice of the shared L2. numClusters == 1 returns the config
 * unchanged.
 */
MachineConfig
clusterView(const MachineConfig &cfg, unsigned initial_dram_bpc)
{
    if (cfg.numClusters == 1)
        return cfg;
    MachineConfig v = cfg;
    v.numClusters = 1;
    v.numCores = cfg.coresPerCluster();
    v.dramBytesPerCycle = initial_dram_bpc;
    v.l2.sizeBytes = std::max<std::uint64_t>(
        cfg.l2.sizeBytes / cfg.numClusters, 1);
    v.l2.bytesPerCycle =
        std::max(cfg.l2.bytesPerCycle / cfg.numClusters, 1u);
    return v;
}

} // namespace

/**
 * Everything one booted run owns: the machine, the compiled programs,
 * and every loop-carried variable of the cycle loop. run() used to
 * keep all of this in locals; hoisting it here lets the loop pause at
 * any cycle boundary (advance(stopAt)), which is what checkpointing
 * and the serve daemon's incremental stepping are built on.
 */
struct System::Ctx
{
    RunOptions opt;
    MachineConfig cfg;          ///< Resolved (static plan filled in).
    const policy::SharingModel &model;

    /** One tick engine per cluster; flat machines are the 1-cluster
     *  case. Each engine owns its cluster's view, mem, coproc, cores,
     *  and lane accounting (sim/cluster_engine.hh). */
    std::vector<std::unique_ptr<ClusterEngine>> engines;
    /** Level-2 lane manager; only clustered machines have one. */
    std::unique_ptr<ClusterArbiter> arbiter;
    /** Worker pool for the parallel tick phase; null = serial loop
     *  (opt.simThreads <= 1, or a flat machine with one engine). */
    std::unique_ptr<TickPool> pool;
    /** Engines buffer tick-phase events for cluster-order merging.
     *  Keyed to the topology (clustered + sink), never the thread
     *  count, so 1-vs-N-thread streams are identical by construction. */
    bool buffered = false;
    unsigned ncl = 1;           ///< cfg.numClusters, cached.
    unsigned cpk = 1;           ///< Cores per cluster, cached.

    /** Engine that owns global core @p c. */
    ClusterEngine &eng(unsigned c) { return *engines[c / cpk]; }
    const ClusterEngine &eng(unsigned c) const
    {
        return *engines[c / cpk];
    }
    /** Global core id -> cluster-local core id. */
    CoreId lc(unsigned c) const { return static_cast<CoreId>(c % cpk); }
    unsigned clusterOf(unsigned c) const { return c / cpk; }
    /** Global core accessor. */
    ScalarCore &core(unsigned c) { return eng(c).core(lc(c)); }
    const ScalarCore &core(unsigned c) const
    {
        return eng(c).core(lc(c));
    }

    std::unique_ptr<fault::FaultInjector> injector;

    std::vector<std::unique_ptr<Program>> programs;
    unsigned region = 0;

    /** Queued-workload compiles in dispatch order (core, queue index):
     *  replayed verbatim on restore so program addresses, phase-id
     *  layout and the `region` counter come out identical. */
    std::vector<std::pair<CoreId, std::uint64_t>> compile_log;
    /** Per core: index into `programs` of the installed program. */
    std::vector<std::uint64_t> core_prog;

    RunResult result;
    unsigned total_lanes = 0;
    std::vector<Cycle> finish;
    std::vector<bool> done;

    // Batch dispatch state (Section 5).
    std::vector<bool> dispatched;
    std::size_t undispatched = 0;
    std::vector<PhaseOI> queue_oi;
    RooflineParams roofline;
    std::vector<PhaseOI> sched_oi;
    std::vector<Cycle> dispatch_at;
    std::vector<std::size_t> pending_wl;

    // Multi-tenant traffic state (src/traffic). Inert unless arrivals
    // were enqueued: has_traffic gates every tick-loop branch, event,
    // and exported artifact, keeping traffic-off runs byte-identical.
    const traffic::Dispatcher *dispatcher = nullptr;
    bool has_traffic = false;
    std::vector<Cycle> eff_arrive;  ///< kCycleNever = not yet resolvable.
    std::vector<bool> arrived;      ///< Entry is dispatchable.
    std::size_t unarrived = 0;
    Cycle next_arrival = kCycleNever;   ///< Min eff_arrive, unarrived.
    std::vector<Cycle> admit_at;    ///< Dispatch decision cycle.
    std::vector<Cycle> done_at;     ///< Completion cycle.
    std::vector<std::size_t> dependent;  ///< q -> its closed-loop successor.
    std::vector<std::size_t> core_job;   ///< Traffic entry running per core.
    std::uint64_t slo_violations = 0;

    // Admission-control state (src/traffic/admission). Inert unless a
    // policy is installed: `admission` gates every branch, event,
    // checkpoint section and exported artifact, so admission-off runs
    // stay byte-identical. All of it is simulated state (checkpointed
    // in the "admit" section) except the borrowed policy pointer.
    const traffic::AdmissionPolicy *admission = nullptr;
    unsigned admission_cap = 4;
    std::vector<bool> adm_latched;      ///< Admission granted (one-time).
    std::vector<bool> adm_shed;         ///< Rejected permanently.
    std::vector<Cycle> adm_defer_until; ///< Backoff expiry per entry.
    std::vector<std::uint32_t> adm_defer_count;
    std::vector<unsigned> adm_inflight; ///< Per tenant: latched, unfinished.
    std::vector<std::uint64_t> adm_tokens;      ///< Per tenant.
    std::vector<Cycle> adm_last_refill;         ///< Per tenant.
    Cycle adm_refill_period = 0;    ///< Cycles per token (from config
                                    ///< mean gap; 0 = no token state).
    std::uint64_t adm_shed_total = 0;
    std::uint64_t adm_defer_total = 0;
    std::size_t adm_ready = 0;      ///< Arrived, not dispatched/shed.
    bool adm_overloaded = false;
    std::uint64_t adm_overload_enters = 0;
    /** Ring of the last 32 queueing delays (p95 detector input). */
    std::array<Cycle, 32> adm_delay_ring{};
    std::uint32_t adm_delay_n = 0;  ///< Total delays ever pushed.
    /** Per-workload-class service EMA, sorted by class name for
     *  deterministic checkpoint order. */
    std::vector<std::pair<std::string, Cycle>> adm_class_ema;
    Cycle adm_mean_ema = 0;
    /** Earliest cycle an admission verdict can change without any
     *  other wake (backoff expiry / token refill); recomputed from
     *  scratch on every admission-aware selection scan. */
    Cycle next_admission = kCycleNever;

    FastForwardStats ff;
    std::uint64_t watchdog_trips = 0;
    std::chrono::steady_clock::time_point wall_start;
    Cycle now = 0;
    Cycle last_finish = 0;
    bool complete = false;

    Ctx(const MachineConfig &resolved,
        const std::vector<MachineConfig> &views, const RunOptions &o)
        : opt(o), cfg(resolved), model(policy::model(cfg.policy)),
          ncl(cfg.numClusters), cpk(cfg.coresPerCluster())
    {
        for (unsigned k = 0; k < ncl; ++k) {
            const std::string prefix =
                ncl == 1 ? std::string("system")
                         : "system.cluster" + std::to_string(k);
            engines.push_back(
                std::make_unique<ClusterEngine>(k, views[k], prefix));
        }
        // All clusters share one machine shape; the roofline used for
        // scheduling decisions is derived from cluster 0's view (== the
        // config on a flat machine).
        roofline = RooflineParams::fromConfig(engines[0]->view());
    }
};

System::System(MachineConfig cfg) : cfg_(std::move(cfg))
{
    names_.resize(cfg_.numCores);
    loops_.resize(cfg_.numCores);
}

System::~System() = default;

void
System::setWorkload(CoreId core, std::string name,
                    std::vector<kir::Loop> loops)
{
    names_.at(core) = std::move(name);
    loops_.at(core) = std::move(loops);
}

void
System::enqueueWorkload(std::string name, std::vector<kir::Loop> loops)
{
    queue_.emplace_back(std::move(name), std::move(loops));
    queue_meta_.emplace_back();     // Plain entry: available at cycle 0.
}

void
System::enqueueArrival(const traffic::Arrival &a)
{
    queue_.emplace_back(a.workload, a.loops);
    queue_meta_.push_back(a);
    has_traffic_ = true;
}

const Program *
System::compileAndBind(Ctx &x, CoreId c, const std::string &name,
                       const std::vector<kir::Loop> &loops)
{
    // Compile a workload for a core and bind its arrays into a private,
    // staggered address region (distinct cache-set alignment per slot).
    // Compilation targets the owning cluster's view (== the config on a
    // flat machine), with the core's cluster-local id.
    const MachineConfig &view = x.eng(c).view();
    const unsigned fixed_vl = x.model.perCoreFixedVl(view, x.lc(c));
    CompileOptions opts = CompileOptions::forMachine(view, fixed_vl);
    Compiler compiler(opts);
    auto prog = std::make_unique<Program>(compiler.compile(name, loops));
    const unsigned slot = x.region++;
    Addr next = ((static_cast<Addr>(slot) + 1) << 36) +
                static_cast<Addr>(slot % x.cfg.numCores) * 40960;
    for (auto &arr : prog->arrays) {
        arr.base = next;
        const Addr size = arr.elems * arr.elemBytes;
        next += (size + 4095) / 4096 * 4096 + 4096;
    }
    x.programs.push_back(std::move(prog));
    return x.programs.back().get();
}

void
System::boot(const RunOptions &opt)
{
    MachineConfig cfg = cfg_;
    const policy::SharingModel &model = policy::model(cfg.policy);

    // Per-cluster flat views, each with its own offline static lane
    // plan (Section 7.1's static spatial sharing, and work-conserving
    // variants entitled by the same plan). On a flat machine the one
    // view is the config itself and the legacy resolution path runs
    // unchanged; on a clustered machine each cluster resolves a plan
    // over its own K local cores.
    std::unique_ptr<ClusterArbiter> arbiter;
    std::vector<MachineConfig> views;
    if (cfg.numClusters == 1) {
        if (model.wantsOfflineStaticPlan() && cfg.staticPlan.empty()) {
            std::vector<std::vector<PhaseOI>> phase_ois(cfg.numCores);
            std::vector<bool> will_run(cfg.numCores, false);
            for (unsigned c = 0; c < cfg.numCores; ++c) {
                for (const auto &loop : loops_[c])
                    phase_ois[c].push_back(kir::phaseOI(
                        loop, cfg.vecCache.sizeBytes, cfg.l2.sizeBytes));
                will_run[c] = !loops_[c].empty() || !queue_.empty();
            }
            model.resolveStaticPlan(cfg, phase_ois, will_run);
        }
        views.push_back(cfg);
    } else {
        arbiter = std::make_unique<ClusterArbiter>(
            cfg.numClusters, cfg.dramBytesPerCycle,
            cfg.interArbiterPeriod);
        const unsigned K = cfg.coresPerCluster();
        for (unsigned k = 0; k < cfg.numClusters; ++k) {
            MachineConfig v = clusterView(cfg, arbiter->shares()[k]);
            if (model.wantsOfflineStaticPlan() && v.staticPlan.empty()) {
                std::vector<std::vector<PhaseOI>> phase_ois(K);
                std::vector<bool> will_run(K, false);
                for (unsigned i = 0; i < K; ++i) {
                    const unsigned g = k * K + i;
                    for (const auto &loop : loops_[g])
                        phase_ois[i].push_back(kir::phaseOI(
                            loop, v.vecCache.sizeBytes,
                            v.l2.sizeBytes));
                    will_run[i] =
                        !loops_[g].empty() || !queue_.empty();
                }
                model.resolveStaticPlan(v, phase_ois, will_run);
            }
            views.push_back(std::move(v));
        }
    }

    ctx_ = std::make_unique<Ctx>(cfg, views, opt);
    Ctx &x = *ctx_;
    x.arbiter = std::move(arbiter);

    // Fault injection (src/fault): the injector's consumable plan is a
    // single stateful stream, so it attaches to cluster 0's components
    // (the whole machine on a flat config). Null plan = fault-free, and
    // none of the hooks fire.
    if (opt.faultPlan && !opt.faultPlan->empty()) {
        x.injector = std::make_unique<fault::FaultInjector>(
            *opt.faultPlan, x.cfg.numExeBUs);
        x.engines[0]->coproc().setFaultInjector(x.injector.get());
        x.engines[0]->mem().setFaultInjector(x.injector.get());
    }

    x.core_prog.assign(x.cfg.numCores, 0);
    for (unsigned c = 0; c < x.cfg.numCores; ++c) {
        ClusterEngine &eng = x.eng(c);
        eng.addCore(std::make_unique<ScalarCore>(
            x.lc(c), eng.view(), eng.coproc()));
        x.core(c).setProgram(compileAndBind(
            x, static_cast<CoreId>(c), names_[c], loops_[c]));
        x.core_prog[c] = x.programs.size() - 1;
    }

    // Attach the trace sink after construction so boot-time plumbing
    // (e.g. initial lane grants) produces no events. Clustered
    // machines route tick-phase events through per-engine buffers
    // merged in cluster order (independent of the thread count); flat
    // machines record straight into the sink, preserving the
    // pre-engine event order exactly.
    x.buffered = opt.sink != nullptr && x.ncl > 1;
    for (auto &eng : x.engines) {
        eng->attachSink(opt.sink, x.buffered);
        eng->regStats();
    }

    // Worker pool for the parallel tick phase: only useful when there
    // is more than one engine to tick concurrently.
    const unsigned tick_threads =
        std::min<unsigned>(std::max(opt.simThreads, 1u), x.ncl);
    if (tick_threads > 1)
        x.pool = std::make_unique<TickPool>(tick_threads);

    x.result.cores.resize(x.cfg.numCores);
    x.total_lanes = x.cfg.totalLanes();
    x.finish.assign(x.cfg.numCores, 0);
    x.done.assign(x.cfg.numCores, false);

    // For the OI-aware discipline we pre-analyze each queued
    // workload's first-phase behaviour.
    x.dispatched.assign(queue_.size(), false);
    x.undispatched = queue_.size();
    x.queue_oi.resize(queue_.size());
    if (x.cfg.schedPolicy == SchedPolicy::OiAware ||
        (dispatcher_ && dispatcher_->wantsOiScore())) {
        const MachineConfig &view = x.engines[0]->view();
        for (std::size_t q = 0; q < queue_.size(); ++q)
            if (!queue_[q].second.empty())
                x.queue_oi[q] = kir::phaseOI(queue_[q].second.front(),
                                             view.vecCache.sizeBytes,
                                             view.l2.sizeBytes);
    }

    // Traffic state: every queue entry is immediately available unless
    // arrivals were enqueued, in which case each entry waits for its
    // effective arrival cycle (closed-loop entries resolve theirs when
    // the predecessor completes).
    x.dispatcher = dispatcher_;
    x.has_traffic = has_traffic_;
    x.eff_arrive.assign(queue_.size(), 0);
    x.arrived.assign(queue_.size(), true);
    x.admit_at.assign(queue_.size(), kCycleNever);
    x.done_at.assign(queue_.size(), kCycleNever);
    x.dependent.assign(queue_.size(), traffic::kNoJob);
    x.core_job.assign(x.cfg.numCores, traffic::kNoJob);
    if (x.has_traffic) {
        x.arrived.assign(queue_.size(), false);
        x.unarrived = queue_.size();
        x.next_arrival = kCycleNever;
        for (std::size_t q = 0; q < queue_.size(); ++q) {
            const traffic::Arrival &m = queue_meta_[q];
            if (m.dependsOn == traffic::kNoJob) {
                x.eff_arrive[q] = m.arriveAt;
                x.next_arrival = std::min(x.next_arrival, m.arriveAt);
            } else {
                x.eff_arrive[q] = kCycleNever;
                x.dependent[m.dependsOn] = q;
            }
        }
    }

    // Admission-control state: active only for traffic runs with a
    // policy installed; otherwise none of it exists, so admission-off
    // runs (the default) carry zero admission state anywhere.
    x.admission = x.has_traffic ? admission_ : nullptr;
    x.admission_cap = admission_cap_;
    if (x.admission) {
        const std::size_t n = queue_.size();
        x.adm_latched.assign(n, false);
        x.adm_shed.assign(n, false);
        x.adm_defer_until.assign(n, 0);
        x.adm_defer_count.assign(n, 0);
        unsigned tenants = 1;
        for (const traffic::Arrival &m : queue_meta_)
            tenants = std::max(tenants, m.tenant + 1);
        x.adm_inflight.assign(tenants, 0);
        x.adm_tokens.assign(tenants, 0);
        x.adm_last_refill.assign(tenants, 0);
        if (x.admission->wantsTokens()) {
            x.adm_refill_period =
                admission_refill_ ? admission_refill_ : 100'000;
            // Buckets start full: a tenant may burst up to `cap` jobs
            // before the per-period refill becomes the binding rate.
            x.adm_tokens.assign(tenants, x.admission_cap);
        }
        // Per-class service-EMA table, sorted by class name so the
        // checkpoint order is deterministic.
        std::vector<std::string> classes;
        for (const auto &[wl_name, wl_loops] : queue_)
            classes.push_back(wl_name);
        std::sort(classes.begin(), classes.end());
        classes.erase(std::unique(classes.begin(), classes.end()),
                      classes.end());
        for (const std::string &cls : classes)
            x.adm_class_ema.emplace_back(cls, 0);
        x.next_admission = kCycleNever;
    }

    // What each core is running or about to run, for placement
    // decisions (the resource table lags behind pending dispatches).
    x.sched_oi.assign(x.cfg.numCores, PhaseOI{});
    x.dispatch_at.assign(x.cfg.numCores, kCycleNever);
    x.pending_wl.assign(x.cfg.numCores, 0);
    x.wall_start = std::chrono::steady_clock::now();

    // Boot beacon: engine category, so kEvAll artifacts are untouched.
    // A serve daemon counts these to prove a warm-pool request paid no
    // boot cost on the request path.
    if (opt.sink && opt.sink->wants(obs::EventKind::SystemBoot)) {
        obs::Event ev;
        ev.kind = obs::EventKind::SystemBoot;
        ev.a = x.cfg.numCores;
        ev.b = x.cfg.numExeBUs;
        opt.sink->record(ev);
    }
}

Cycle
System::now() const
{
    return ctx_ ? ctx_->now : 0;
}

bool
System::finished() const
{
    return ctx_ && ctx_->complete;
}

bool
System::overloaded() const
{
    return ctx_ && ctx_->admission && ctx_->adm_overloaded;
}

bool
System::advance(Cycle stop_at)
{
    if (!ctx_)
        throw std::logic_error("System::advance: boot() first");
    Ctx &x = *ctx_;
    if (x.complete)
        return true;

    const RunOptions &opt = x.opt;
    const Cycle max_cycles = opt.maxCycles;
    const unsigned bucket = opt.bucket;
    const MachineConfig &cfg = x.cfg;
    const policy::SharingModel &model = x.model;
    fault::FaultInjector *const injector = x.injector.get();
    RunResult &result = x.result;
    FastForwardStats &ff = x.ff;
    Cycle &now = x.now;
    Cycle &last_finish = x.last_finish;

    // Periodic checkpointing: pause at every multiple of the period
    // and overwrite the target file. Derived, not stored: resuming at
    // cycle N computes the same next boundary a straight run uses.
    const Cycle ckpt_every =
        (!opt.checkpointOut.empty() && opt.checkpointEvery)
            ? opt.checkpointEvery : 0;
    Cycle next_ckpt =
        ckpt_every ? (now / ckpt_every + 1) * ckpt_every : kCycleNever;
    auto writeCkpt = [&] {
        std::ofstream os(opt.checkpointOut,
                         std::ios::binary | std::ios::trunc);
        if (!os)
            throw ckpt::Error("cannot open checkpoint file: " +
                              opt.checkpointOut);
        saveCheckpoint(os);
        if (opt.sink && opt.sink->wants(obs::EventKind::CheckpointSave)) {
            obs::Event ev;
            ev.cycle = now;
            ev.kind = obs::EventKind::CheckpointSave;
            ev.a = static_cast<std::uint64_t>(os.tellp());
            opt.sink->record(ev);
        }
    };

    // Estimate the machine's *normalized progress* (the classic
    // weighted-speedup co-scheduling objective) if candidate OI @p cand
    // joins the other cores: sum over active workloads of their
    // attainable rate relative to running alone with all lanes. Raw
    // GFLOP/s would never schedule a memory workload next to a compute
    // one; normalized progress rewards exactly that pairing.
    // Lane partitioning is per cluster, so the candidate is scored
    // against the other cores of the *target's* cluster (the whole
    // machine on a flat config).
    auto progressWith = [&](const PhaseOI &cand, CoreId target) {
        ClusterEngine &tc = x.eng(target);
        std::vector<PhaseOI> ois(x.cpk);
        for (unsigned i = 0; i < x.cpk; ++i) {
            const unsigned g = x.clusterOf(target) * x.cpk + i;
            const PhaseOI &running =
                tc.coproc().resourceTable()
                    .core(static_cast<CoreId>(i)).oi;
            ois[i] = running.active() ? running : x.sched_oi[g];
        }
        ois[x.lc(target)] = cand;
        const auto plan = greedyPartition(x.roofline, ois, cfg.numExeBUs);

        // Memory-bandwidth ceilings are machine-wide: co-running
        // workloads bound at the same level split it. Count them so
        // mem+mem placements are not scored as if each had the full
        // 64 GB/s.
        std::array<unsigned, 3> bound_at{0, 0, 0};
        std::vector<bool> membound(ois.size(), false);
        for (std::size_t i = 0; i < ois.size(); ++i) {
            if (!ois[i].active() || plan[i] == 0)
                continue;
            const double ap = attainable(x.roofline, ois[i], plan[i]);
            const double ceiling =
                memBandwidth(x.roofline, ois[i].level) * ois[i].mem;
            if (ap >= ceiling - 1e-9) {
                membound[i] = true;
                ++bound_at[static_cast<unsigned>(ois[i].level)];
            }
        }

        double total = 0.0;
        for (std::size_t i = 0; i < ois.size(); ++i) {
            if (!ois[i].active())
                continue;
            const double solo = attainable(x.roofline, ois[i],
                                           cfg.numExeBUs);
            if (solo <= 0)
                continue;
            double ap = attainable(x.roofline, ois[i], plan[i]);
            if (membound[i])
                ap /= bound_at[static_cast<unsigned>(ois[i].level)];
            total += ap / solo;
        }
        return total;
    };

    // A queue entry is dispatchable once undispatched, (under
    // traffic) arrived, and (under admission control) admitted. Shed
    // entries are marked dispatched, so they are excluded implicitly.
    auto available = [&](std::size_t q) {
        return !x.dispatched[q] && (!x.has_traffic || x.arrived[q]) &&
               (!x.admission || x.adm_latched[q]);
    };

    // p95 queueing delay over the sliding ring of recent admits
    // (0 until any sample) — the overload detector's latency signal.
    auto admDelayP95 = [&]() -> Cycle {
        const std::size_t n = std::min<std::size_t>(
            x.adm_delay_n, x.adm_delay_ring.size());
        if (n == 0)
            return 0;
        std::array<Cycle, 32> tmp{};
        std::copy_n(x.adm_delay_ring.begin(), n, tmp.begin());
        std::sort(tmp.begin(), tmp.begin() + n);
        std::size_t rank = (95 * n + 99) / 100;     // ceil(0.95 n).
        if (rank < 1)
            rank = 1;
        return tmp[rank - 1];
    };

    // Overload detector with enter/exit hysteresis: trip when the
    // ready backlog reaches 4x the core count or the p95 queueing
    // delay reaches 4x the mean observed service time; exit only once
    // the backlog drains to <= cores AND the p95 falls back under 2x
    // — the asymmetric thresholds prevent enter/exit flapping.
    auto updateOverload = [&]() {
        if (!x.admission)
            return;
        const Cycle p95 = admDelayP95();
        if (!x.adm_overloaded) {
            const bool deep =
                x.adm_ready >= 4ull * cfg.numCores;
            const bool slow =
                x.adm_mean_ema > 0 && p95 > 4 * x.adm_mean_ema;
            if (!deep && !slow)
                return;
            x.adm_overloaded = true;
            ++x.adm_overload_enters;
            if (opt.sink &&
                opt.sink->wants(obs::EventKind::OverloadEnter)) {
                obs::Event ev;
                ev.cycle = now;
                ev.kind = obs::EventKind::OverloadEnter;
                ev.a = x.adm_ready;
                ev.b = p95;
                opt.sink->record(ev);
            }
        } else if (x.adm_ready <= cfg.numCores &&
                   (x.adm_mean_ema == 0 ||
                    p95 <= 2 * x.adm_mean_ema)) {
            x.adm_overloaded = false;
            if (opt.sink &&
                opt.sink->wants(obs::EventKind::OverloadExit)) {
                obs::Event ev;
                ev.cycle = now;
                ev.kind = obs::EventKind::OverloadExit;
                ev.a = x.adm_ready;
                ev.b = p95;
                opt.sink->record(ev);
            }
        }
    };

    // Choose which queued workload an idle core picks up next; returns
    // queue_.size() when nothing is dispatchable yet (the core idles
    // until the next arrival).
    auto selectNext = [&](CoreId core) -> std::size_t {
        if (x.dispatcher) {
            std::vector<traffic::PendingJob> pending;
            for (std::size_t q = 0; q < queue_.size(); ++q) {
                if (!available(q))
                    continue;
                traffic::PendingJob pj;
                pj.queueIdx = q;
                pj.arrived = x.has_traffic ? x.eff_arrive[q] : 0;
                pj.tenant = queue_meta_[q].tenant;
                pj.estCost = queue_meta_[q].estCost;
                if (queue_meta_[q].sloBudget != kCycleNever)
                    pj.deadline =
                        x.eff_arrive[q] + queue_meta_[q].sloBudget;
                pending.push_back(pj);
            }
            if (pending.empty())
                return queue_.size();
            traffic::DispatchContext dc{now, core, pending, {}};
            if (x.dispatcher->wantsOiScore())
                dc.progressScore = [&](std::size_t i) {
                    return progressWith(x.queue_oi[pending[i].queueIdx],
                                        core);
                };
            const std::size_t sel = x.dispatcher->select(dc);
            if (sel >= pending.size())
                return queue_.size();   // kDefer: leave the core idle.
            return pending[sel].queueIdx;
        }
        // Clustered machines prefer work whose home cluster is the
        // idle core's own (queue entry q's home is q % numClusters):
        // adopting a foreign entry is still allowed — that is the
        // work-migration path — but costs clusterMigrationCycles and
        // is only taken when the home clusters have nothing ready.
        const unsigned here = x.clusterOf(core);
        auto isHome = [&](std::size_t q) {
            return static_cast<unsigned>(q % x.ncl) == here;
        };
        if (cfg.schedPolicy == SchedPolicy::Fcfs) {
            if (x.ncl > 1) {
                for (std::size_t q = 0; q < queue_.size(); ++q)
                    if (available(q) && isHome(q))
                        return q;
            }
            for (std::size_t q = 0; q < queue_.size(); ++q)
                if (available(q))
                    return q;
        } else {
            bool home_only = false;
            if (x.ncl > 1) {
                for (std::size_t q = 0; q < queue_.size(); ++q)
                    if (available(q) && isHome(q)) {
                        home_only = true;
                        break;
                    }
            }
            std::size_t best = queue_.size();
            double best_tp = -1.0;
            for (std::size_t q = 0; q < queue_.size(); ++q) {
                if (!available(q) || (home_only && !isHome(q)))
                    continue;
                const double tp = progressWith(x.queue_oi[q], core);
                if (tp > best_tp + 1e-9) {
                    best_tp = tp;
                    best = q;
                }
            }
            return best;
        }
        return queue_.size();
    };

    // The parallel tick phase: engines are ticked concurrently (or in
    // cluster order by the serial fallback — same result either way by
    // construction). The task closure is built once, outside the loop;
    // `now` is a reference into Ctx, so it tracks the cycle.
    const bool full_width = model.fullWidthExecution();
    const std::function<void(unsigned)> tick_task =
        [&x, &now, full_width, bucket](unsigned k) {
            x.engines[k]->tickCycle(now, full_width, bucket);
        };

    // Wake-candidate table (fast-forward): one registration per
    // configured probe, hoisted out of the cycle loop. Registration
    // order matches the old per-cycle ladder exactly — tier by tier,
    // and within a tier the same source order — so the chosen wake
    // cycle and its WakeSource attribution are unchanged.
    WakeTable wt;
    for (auto &eng : x.engines)
        wt.add(0, WakeSource::Coproc, [e = eng.get()](Cycle at) {
            return e->coprocWake(at);
        });
    for (auto &eng : x.engines)
        wt.add(1, WakeSource::Core, [e = eng.get()](Cycle at) {
            return e->coreWake(at);
        });
    for (auto &eng : x.engines)
        wt.add(2, WakeSource::Mem, [e = eng.get()](Cycle at) {
            return e->memWake(at);
        });
    // An arbiter rebalance can change per-cluster DRAM grants, which
    // no component probe anticipates; wake exactly at the next period
    // boundary.
    if (x.arbiter)
        wt.add(2, WakeSource::Arbiter, [period = cfg.interArbiterPeriod](
                                           Cycle at) {
            return (at / period + 1) * period;
        });
    for (unsigned c = 0; c < cfg.numCores; ++c)
        wt.add(2, WakeSource::Dispatch,
               [&x, c](Cycle) { return x.dispatch_at[c]; });
    if (opt.snapshotEvery)
        wt.add(2, WakeSource::Snapshot, [every = opt.snapshotEvery](
                                            Cycle at) {
            return (at / every + 1) * every;
        });
    // Fault-plan boundaries change component behaviour even when the
    // machine is otherwise quiescent, and a spinning core's watchdog
    // deadline is a state change the probes above can't see. Both must
    // be wake candidates or fast-forward would skip past them and
    // diverge from the ticked run.
    if (injector)
        wt.add(2, WakeSource::Fault,
               [injector](Cycle at) { return injector->nextEventAt(at); });
    if (opt.watchdogCycles) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            wt.add(2, WakeSource::Watchdog,
                   [core = &x.core(c), wd = opt.watchdogCycles](Cycle at) {
                       return core->awaitingVl()
                                  ? std::max(core->spinSince() + wd,
                                             at + 1)
                                  : kCycleNever;
                   });
    }
    // A pending traffic arrival is a state change no component probe
    // can see: an all-idle machine waiting for work must wake exactly
    // at the next effective arrival. Unresolved closed-loop arrivals
    // (next_arrival == kCycleNever) need no candidate — their
    // predecessor is still running, so a component event precedes
    // their resolution.
    if (x.has_traffic)
        wt.add(2, WakeSource::Arrival, [&x](Cycle at) {
            return x.unarrived > 0
                       ? std::max(x.next_arrival, at + 1)
                       : kCycleNever;
        });
    // Admission re-evaluation boundaries (a deferred job's backoff
    // expiry, or a fresh arrival's first verdict) change scheduling
    // state no component probe can see. next_admission is recomputed
    // from scratch by every admission pass, so it is never stale.
    if (x.admission)
        wt.add(2, WakeSource::Admission, [&x](Cycle at) {
            return x.next_admission != kCycleNever
                       ? std::max(x.next_admission, at + 1)
                       : kCycleNever;
        });

    // --- Cycle loop. ---
    for (; now < max_cycles; ++now) {
        // Pause boundary: state is exactly "about to execute cycle
        // `now`", the same point a checkpoint captures. Checked before
        // anything else so advance(N); advance(M) ticks each cycle
        // exactly once.
        if (now >= stop_at)
            return false;
        if (now == next_ckpt) {
            writeCkpt();
            next_ckpt += ckpt_every;
        }

        ++ff.cyclesTicked;

        // Hard wall-clock kill (runner containment): checked coarsely
        // so the steady_clock read stays off the hot path.
        if (opt.wallClockLimitSec > 0 &&
            (ff.cyclesTicked & 0xFFFF) == 0) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - x.wall_start;
            if (elapsed.count() > opt.wallClockLimitSec) {
                result.wallKilled = true;
                x.complete = true;
                return true;
            }
        }

        if (injector)
            injector->emitBoundaryEvents(now, opt.sink);

        // Level-2 lane manager: at every interArbiterPeriod boundary
        // the arbiter re-splits the machine's DRAM bandwidth across
        // clusters in proportion to last-window demand. Clustered
        // machines only — a flat machine has no arbiter.
        if (x.arbiter && now > 0 &&
            now % cfg.interArbiterPeriod == 0) {
            std::vector<std::uint64_t> bytes(x.ncl);
            for (unsigned k = 0; k < x.ncl; ++k)
                bytes[k] = x.engines[k]->mem().dramBytes();
            const std::vector<unsigned> &sh =
                x.arbiter->rebalance(now, bytes);
            for (unsigned k = 0; k < x.ncl; ++k)
                x.engines[k]->mem().setDramBytesPerCycle(sh[k]);
            if (opt.sink &&
                opt.sink->wants(obs::EventKind::ClusterArbiterPlan)) {
                obs::Event ev;
                ev.cycle = now;
                ev.kind = obs::EventKind::ClusterArbiterPlan;
                ev.a = x.arbiter->rebalances();
                ev.b = x.ncl;
                ev.x = *std::min_element(sh.begin(), sh.end());
                ev.y = *std::max_element(sh.begin(), sh.end());
                opt.sink->record(ev);
            }
        }

        // --- Parallel phase: tick every cluster engine (coproc, its
        // cores, lane accounting). Engines share no mutable state, so
        // the pool needs no locks; the serial fallback ticks them in
        // cluster order with the same result by construction.
        if (x.pool)
            x.pool->run(x.ncl, tick_task);
        else
            for (unsigned k = 0; k < x.ncl; ++k)
                tick_task(k);
        // Merge point: forward tick-phase events in cluster-id order,
        // so the stream is identical for any worker-thread count.
        if (x.buffered)
            for (auto &eng : x.engines)
                eng->drainEvents();

        // Livelock/deadlock watchdog: a <VL>-request episode (initial
        // write + Fig. 9 retry spin) that outlives the deadline is
        // escalated to the scalar fallback instead of spinning forever.
        if (opt.watchdogCycles) {
            for (unsigned c = 0; c < cfg.numCores; ++c) {
                ScalarCore &core = x.core(c);
                if (!core.awaitingVl() ||
                    now < core.spinSince() + opt.watchdogCycles)
                    continue;
                CoProcessor &cp = x.eng(c).coproc();
                const VlRequestStatus st =
                    cp.vlRequestStatus(core.id());
                if (st.resolved && st.ok)
                    continue;   // Grant landed; the spin ends next step.
                ++x.watchdog_trips;
                if (opt.sink &&
                    opt.sink->wants(obs::EventKind::WatchdogTrip)) {
                    obs::Event ev;
                    ev.cycle = now;
                    ev.kind = obs::EventKind::WatchdogTrip;
                    ev.core = static_cast<CoreId>(c);
                    ev.a = cp.currentVl(core.id());
                    ev.b = now - core.spinSince();
                    opt.sink->record(ev);
                }
                core.watchdogEscalate(now);
            }
        }

        // Traffic arrivals whose effective cycle has come become
        // dispatchable this cycle (before any dispatch decision, so a
        // job arriving at `now` is immediately schedulable).
        if (x.has_traffic && x.next_arrival <= now) {
            Cycle next = kCycleNever;
            for (std::size_t q = 0; q < queue_.size(); ++q) {
                if (x.arrived[q])
                    continue;
                if (x.eff_arrive[q] <= now) {
                    x.arrived[q] = true;
                    --x.unarrived;
                    if (x.admission) {
                        ++x.adm_ready;
                        x.next_admission = now; // Evaluate on sight.
                    }
                    if (opt.sink &&
                        opt.sink->wants(obs::EventKind::JobArrival)) {
                        obs::Event ev;
                        ev.cycle = now;
                        ev.kind = obs::EventKind::JobArrival;
                        ev.a = opt.sink->internString(queue_[q].first);
                        ev.b = (static_cast<std::uint64_t>(
                                    queue_meta_[q].tenant)
                                << 32) |
                               static_cast<std::uint64_t>(q);
                        opt.sink->record(ev);
                    }
                } else {
                    next = std::min(next, x.eff_arrive[q]);
                }
            }
            x.next_arrival = next;
        }

        // Admission verdicts for arrived-but-unlatched candidates
        // whose backoff has expired. Runs at arrival instants and at
        // deferred re-evaluation boundaries, before any dispatch
        // decision, so an admitted job is dispatchable the same cycle
        // it would have been without admission control. Recomputes
        // next_admission from scratch so the fast-forward wake above
        // is never stale.
        if (x.admission && x.next_admission <= now) {
            Cycle next = kCycleNever;
            for (std::size_t q = 0; q < queue_.size(); ++q) {
                if (x.dispatched[q] || !x.arrived[q] ||
                    x.adm_latched[q])
                    continue;
                if (x.adm_defer_until[q] > now) {
                    next = std::min(next, x.adm_defer_until[q]);
                    continue;
                }
                const traffic::Arrival &m = queue_meta_[q];
                const unsigned t = m.tenant;
                // Deterministic lazy token refill: one token per
                // tenant per period, capped at the bucket size.
                if (x.adm_refill_period) {
                    const Cycle elapsed = now - x.adm_last_refill[t];
                    const std::uint64_t add =
                        elapsed / x.adm_refill_period;
                    if (add) {
                        x.adm_tokens[t] = std::min<std::uint64_t>(
                            x.adm_tokens[t] + add, x.admission_cap);
                        x.adm_last_refill[t] +=
                            add * x.adm_refill_period;
                    }
                }
                traffic::AdmissionContext ac;
                ac.now = now;
                ac.tenant = t;
                ac.sloBudget = m.sloBudget;
                if (m.sloBudget != kCycleNever)
                    ac.deadline = x.eff_arrive[q] + m.sloBudget;
                ac.estCost = static_cast<Cycle>(m.estCost);
                {
                    const std::string &cls = queue_[q].first;
                    auto it = std::lower_bound(
                        x.adm_class_ema.begin(), x.adm_class_ema.end(),
                        cls,
                        [](const std::pair<std::string, Cycle> &e,
                           const std::string &k) { return e.first < k; });
                    if (it != x.adm_class_ema.end() && it->first == cls)
                        ac.classServiceEma = it->second;
                }
                ac.meanServiceEma = x.adm_mean_ema;
                ac.readyJobs = x.adm_ready;
                ac.inFlight = x.adm_inflight[t];
                ac.tokens = x.adm_tokens[t];
                ac.overloaded = x.adm_overloaded;
                ac.cores = cfg.numCores;
                ac.deferCount = x.adm_defer_count[q];
                ac.cap = x.admission_cap;

                switch (x.admission->decide(ac)) {
                  case traffic::AdmissionDecision::Admit:
                    // One-time latch; tokens are consumed here, at
                    // admission, never at dispatch.
                    x.adm_latched[q] = true;
                    ++x.adm_inflight[t];
                    if (x.admission->wantsTokens() &&
                        x.adm_tokens[t] > 0)
                        --x.adm_tokens[t];
                    break;
                  case traffic::AdmissionDecision::Defer: {
                    const Cycle backoff =
                        traffic::admissionBackoff(x.adm_defer_count[q]);
                    ++x.adm_defer_count[q];
                    ++x.adm_defer_total;
                    x.adm_defer_until[q] = now + backoff;
                    next = std::min(next, x.adm_defer_until[q]);
                    if (opt.sink &&
                        opt.sink->wants(obs::EventKind::JobDefer)) {
                        obs::Event ev;
                        ev.cycle = now;
                        ev.kind = obs::EventKind::JobDefer;
                        ev.a = q;
                        ev.b = backoff;
                        opt.sink->record(ev);
                    }
                    break;
                  }
                  case traffic::AdmissionDecision::Shed: {
                    x.adm_shed[q] = true;
                    x.dispatched[q] = true;
                    --x.undispatched;
                    --x.adm_ready;
                    ++x.adm_shed_total;
                    if (opt.sink &&
                        opt.sink->wants(obs::EventKind::JobShed)) {
                        obs::Event ev;
                        ev.cycle = now;
                        ev.kind = obs::EventKind::JobShed;
                        ev.a = q;
                        ev.b = (static_cast<std::uint64_t>(t) << 32) |
                               x.adm_defer_count[q];
                        opt.sink->record(ev);
                    }
                    // Release the closed-loop successor exactly as a
                    // completion would: the simulated client carries
                    // on after a rejection, so no chain (and no run)
                    // ever hangs on a shed predecessor.
                    const std::size_t dep = x.dependent[q];
                    if (dep != traffic::kNoJob) {
                        x.eff_arrive[dep] =
                            now + queue_meta_[dep].thinkGap;
                        x.next_arrival = std::min(x.next_arrival,
                                                  x.eff_arrive[dep]);
                    }
                    break;
                  }
                }
            }
            x.next_admission = next;
            updateOverload();
        }

        // Dispatch queued workloads onto cores whose context switch
        // completed.
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (x.dispatch_at[c] != kCycleNever &&
                now >= x.dispatch_at[c]) {
                const auto &[wl_name, wl_loops] = queue_[x.pending_wl[c]];
                x.compile_log.emplace_back(static_cast<CoreId>(c),
                                           x.pending_wl[c]);
                x.core(c).setProgram(compileAndBind(
                    x, static_cast<CoreId>(c), wl_name, wl_loops));
                x.core_prog[c] = x.programs.size() - 1;
                if (x.has_traffic)
                    x.core_job[c] = x.pending_wl[c];
                result.batch.push_back(BatchCompletion{
                    wl_name, static_cast<CoreId>(c), now, 0});
                if (opt.sink &&
                    opt.sink->wants(obs::EventKind::BatchDispatch)) {
                    obs::Event ev;
                    ev.cycle = now;
                    ev.kind = obs::EventKind::BatchDispatch;
                    ev.core = static_cast<CoreId>(c);
                    ev.a = opt.sink->internString(wl_name);
                    ev.b = x.pending_wl[c];
                    opt.sink->record(ev);
                }
                x.dispatch_at[c] = kCycleNever;
            }
        }

        // Lane accounting (FTS scaling, bucket sums, busy integral)
        // happened inside each engine's tickCycle; this loop is the
        // serial scheduler: completion detection, traffic lifecycle,
        // and batch dispatch.
        bool all_done = true;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (!x.done[c]) {
                const bool idle =
                    x.core(c).doneEmitting() &&
                    x.eng(c).coproc().coreDrained(x.lc(c)) &&
                    x.dispatch_at[c] == kCycleNever;
                if (idle) {
                    // Close the traffic lifecycle of the job that just
                    // completed here: completion record, SLO check, and
                    // resolution of its closed-loop successor's
                    // effective arrival.
                    if (x.core_job[c] != traffic::kNoJob) {
                        const std::size_t q = x.core_job[c];
                        x.core_job[c] = traffic::kNoJob;
                        x.done_at[q] = now;
                        const Cycle lat = now - x.eff_arrive[q];
                        if (opt.sink &&
                            opt.sink->wants(obs::EventKind::JobComplete)) {
                            obs::Event ev;
                            ev.cycle = now;
                            ev.kind = obs::EventKind::JobComplete;
                            ev.core = static_cast<CoreId>(c);
                            ev.a = q;
                            ev.b = lat;
                            opt.sink->record(ev);
                        }
                        const Cycle budget = queue_meta_[q].sloBudget;
                        if (budget != kCycleNever && lat > budget) {
                            ++x.slo_violations;
                            if (opt.sink &&
                                opt.sink->wants(
                                    obs::EventKind::SloViolation)) {
                                obs::Event ev;
                                ev.cycle = now;
                                ev.kind = obs::EventKind::SloViolation;
                                ev.core = static_cast<CoreId>(c);
                                ev.a = q;
                                ev.b = lat - budget;
                                opt.sink->record(ev);
                            }
                        }
                        const std::size_t dep = x.dependent[q];
                        if (dep != traffic::kNoJob) {
                            x.eff_arrive[dep] =
                                now + queue_meta_[dep].thinkGap;
                            x.next_arrival = std::min(x.next_arrival,
                                                      x.eff_arrive[dep]);
                        }
                        // Admission bookkeeping: the tenant's slot
                        // frees, and the observed service time
                        // (dispatch decision to completion) feeds the
                        // per-class and mean EMAs the slo-aware
                        // policy predicts with. Integer EMA,
                        // alpha = 1/4.
                        if (x.admission) {
                            const unsigned t = queue_meta_[q].tenant;
                            if (x.adm_inflight[t] > 0)
                                --x.adm_inflight[t];
                            const Cycle service = now - x.admit_at[q];
                            const std::string &cls = queue_[q].first;
                            auto it = std::lower_bound(
                                x.adm_class_ema.begin(),
                                x.adm_class_ema.end(), cls,
                                [](const std::pair<std::string,
                                                   Cycle> &e,
                                   const std::string &k) {
                                    return e.first < k;
                                });
                            if (it != x.adm_class_ema.end() &&
                                it->first == cls)
                                it->second =
                                    it->second
                                        ? (3 * it->second + service) / 4
                                        : service;
                            x.adm_mean_ema =
                                x.adm_mean_ema
                                    ? (3 * x.adm_mean_ema + service) / 4
                                    : service;
                        }
                    }
                    // Close the batch record of the workload that just
                    // completed on this core, if any.
                    for (auto it = result.batch.rbegin();
                         it != result.batch.rend(); ++it) {
                        if (it->core == c && it->finished == 0) {
                            it->finished = now;
                            break;
                        }
                    }
                    if (x.undispatched > 0) {
                        // Grab the next workload (per the dispatch
                        // discipline) after the OS context-switch cost.
                        // Under traffic nothing may have arrived yet;
                        // the core then idles until the next arrival.
                        const std::size_t q =
                            selectNext(static_cast<CoreId>(c));
                        if (q < queue_.size()) {
                            x.pending_wl[c] = q;
                            x.dispatched[q] = true;
                            x.sched_oi[c] = x.queue_oi[q];
                            --x.undispatched;
                            x.dispatch_at[c] =
                                now + cfg.contextSwitchCycles;
                            // Cross-cluster adoption (work migration)
                            // pays the extra state-movement cost and
                            // is accounted by the arbiter.
                            if (x.ncl > 1) {
                                const unsigned home =
                                    static_cast<unsigned>(q % x.ncl);
                                const unsigned here = x.clusterOf(c);
                                if (home != here) {
                                    x.dispatch_at[c] +=
                                        cfg.clusterMigrationCycles;
                                    x.arbiter->noteMigration(home,
                                                             here);
                                    if (opt.sink &&
                                        opt.sink->wants(
                                            obs::EventKind::
                                                ClusterArbiterMigrate)) {
                                        obs::Event ev;
                                        ev.cycle = now;
                                        ev.kind = obs::EventKind::
                                            ClusterArbiterMigrate;
                                        ev.core =
                                            static_cast<CoreId>(c);
                                        ev.a = q;
                                        ev.b =
                                            (static_cast<std::uint64_t>(
                                                 home)
                                             << 32) |
                                            here;
                                        opt.sink->record(ev);
                                    }
                                }
                            }
                            if (x.has_traffic) {
                                x.admit_at[q] = now;
                                if (opt.sink &&
                                    opt.sink->wants(
                                        obs::EventKind::JobAdmit)) {
                                    obs::Event ev;
                                    ev.cycle = now;
                                    ev.kind = obs::EventKind::JobAdmit;
                                    ev.core = static_cast<CoreId>(c);
                                    ev.a = q;
                                    ev.b = now - x.eff_arrive[q];
                                    opt.sink->record(ev);
                                }
                                if (x.admission) {
                                    --x.adm_ready;
                                    x.adm_delay_ring
                                        [x.adm_delay_n %
                                         x.adm_delay_ring.size()] =
                                        now - x.eff_arrive[q];
                                    ++x.adm_delay_n;
                                    updateOverload();
                                }
                            }
                        }
                        all_done = false;
                    } else {
                        x.done[c] = true;
                        x.finish[c] = now;
                        last_finish = std::max(last_finish, now);
                    }
                } else {
                    all_done = false;
                }
            }
        }
        if (opt.snapshotEvery && now > 0 &&
            now % opt.snapshotEvery == 0) {
            obs::MetricSnapshot snap;
            snap.cycle = now;
            for (auto &eng : x.engines) {
                auto mv = eng->memGroup().snapshot();
                snap.values.insert(snap.values.end(), mv.begin(),
                                   mv.end());
                auto cv = eng->cpGroup().snapshot();
                snap.values.insert(snap.values.end(), cv.begin(),
                                   cv.end());
            }
            std::sort(snap.values.begin(), snap.values.end());
            result.snapshots.push_back(std::move(snap));
        }
        if (all_done) {
            x.complete = true;
            return true;
        }

        if (!opt.fastForward)
            continue;

        // --- Quiescence-aware fast-forward (skip-to-next-event). ---
        // Every component reports the earliest future cycle it could
        // change state; until min(candidates), each tick is provably a
        // no-op, so the loop jumps there directly. The candidate table
        // was registered above, once per advance() call. Pause and
        // checkpoint boundaries cap the jump so the loop lands on them
        // exactly — engine bookkeeping only: the span shapes (and
        // SchedFastForward events, engine category) may differ from an
        // uninterrupted run, the simulated state never does — a split
        // skip synthesizes the same bucket sums and round-robin
        // advance as one long skip.
        auto [wake, why] = wt.evaluate(now);
        if (stop_at < wake) {
            wake = stop_at;
            why = WakeSource::Checkpoint;
        }
        if (next_ckpt < wake) {
            wake = next_ckpt;
            why = WakeSource::Checkpoint;
        }
        if (wake <= now + 1)
            continue;

        // Nothing can happen before `wake`; a machine with no pending
        // event at all (wake == kCycleNever) matches the ticked run's
        // spin to the cap, so jump straight there and time out.
        Cycle target = wake;
        if (target >= max_cycles) {
            target = max_cycles;
            why = WakeSource::Cap;
        }
        const Cycle span = target - now - 1;
        if (span == 0)
            continue;

        if (opt.sink &&
            opt.sink->wants(obs::EventKind::SchedFastForward)) {
            obs::Event ev;
            ev.cycle = now;
            ev.kind = obs::EventKind::SchedFastForward;
            ev.a = span;
            ev.b = static_cast<std::uint64_t>(why);
            opt.sink->record(ev);
        }
        for (auto &eng : x.engines)
            eng->synthesizeSkipped(now + 1, target - 1, bucket);
        for (auto &eng : x.engines)
            eng->skipCycles(span);
        ++ff.spans;
        ff.cyclesSkipped += span;
        ff.longestSpan = std::max(ff.longestSpan, span);
        now = target - 1;       // ++now lands exactly on the wake cycle.
    }
    x.complete = true;          // Ran into the maxCycles cap.
    return true;
}

RunResult
System::finalize()
{
    if (!ctx_)
        throw std::logic_error("System::finalize: boot() first");
    Ctx &x = *ctx_;
    const unsigned bucket = x.opt.bucket;
    RunResult &result = x.result;

    result.timedOut = x.now >= x.opt.maxCycles;
    x.ff.cyclesSimulated =
        x.now < x.opt.maxCycles ? x.now + 1 : x.opt.maxCycles;
    if (x.opt.ffStats)
        *x.opt.ffStats = x.ff;
    result.cycles = std::max<Cycle>(x.last_finish, 1);
    // Each engine accumulated its own share of the busy-lane integral
    // during the (possibly parallel) tick phases; summing the shares
    // in cluster-id order makes the total independent of the thread
    // count, and on a flat machine it IS the single old accumulator.
    double busy_integral = 0.0;
    for (const auto &eng : x.engines)
        busy_integral += eng->busyIntegral();
    result.simdUtil =
        busy_integral / (static_cast<double>(x.total_lanes) *
                         static_cast<double>(result.cycles));

    for (unsigned c = 0; c < x.cfg.numCores; ++c) {
        CoreRunResult &cr = result.cores[c];
        const ScalarCore &core = x.core(c);
        const CoProcessor &cp = x.eng(c).coproc();
        cr.workload = names_[c];
        cr.finish = x.finish[c];
        cr.computeIssued = cp.computeIssued(x.lc(c));
        cr.memIssued = cp.memIssued(x.lc(c));
        cr.renameRegStallCycles = cp.renameRegStallCycles(x.lc(c));
        cr.monitorInsts = core.monitorInsts();
        cr.reconfigWaitCycles = core.reconfigWaitCycles();
        cr.reconfigEvents = core.reconfigEvents();
        cr.reinitInsts = core.reinitInsts();

        for (const PhaseTrace &t : core.phases()) {
            PhaseResult pr;
            pr.name = t.name;
            pr.start = t.start;
            pr.end = t.end ? t.end : x.finish[c];
            pr.firstVl = t.firstVl;
            pr.lastVl = t.lastVl;
            pr.computeIssued =
                cp.computeIssuedInPhase(x.lc(c), t.phaseId);
            const Cycle span = pr.end > pr.start ? pr.end - pr.start : 1;
            pr.issueRate = static_cast<double>(pr.computeIssued) /
                           static_cast<double>(span);
            cr.phases.push_back(pr);
        }

        const auto &busy_bk = x.eng(c).busyBuckets(x.lc(c));
        const auto &alloc_bk = x.eng(c).allocBuckets(x.lc(c));
        for (std::size_t b = 0; b < busy_bk.size(); ++b) {
            cr.busyLanesTimeline.push_back(busy_bk[b] / bucket);
            cr.allocLanesTimeline.push_back(alloc_bk[b] / bucket);
        }
    }

    result.dramBytes = 0;
    result.vlSwitches = 0;
    result.plansMade = 0;
    result.laneFaults = 0;
    for (const auto &eng : x.engines) {
        result.dramBytes += eng->mem().dramBytes();
        result.vlSwitches += eng->coproc().vlSwitches();
        result.plansMade += eng->coproc().plansMade();
        result.laneFaults += eng->coproc().laneFaults();
    }
    result.watchdogTrips = x.watchdog_trips;

    // Per-cluster records and arbiter accounting: clustered machines
    // only, so flat-machine results (and everything exported from
    // them) are unchanged.
    if (x.ncl > 1) {
        result.arbiterRebalances = x.arbiter->rebalances();
        result.clusters.resize(x.ncl);
        for (unsigned k = 0; k < x.ncl; ++k) {
            ClusterRunResult &cr = result.clusters[k];
            cr.cluster = k;
            cr.dramBytes = x.engines[k]->mem().dramBytes();
            cr.vlSwitches = x.engines[k]->coproc().vlSwitches();
            cr.plansMade = x.engines[k]->coproc().plansMade();
            cr.dramShareBpc = x.arbiter->shares()[k];
            cr.avgDramShareBpc = x.arbiter->avgShare(k, result.cycles);
            cr.migratedIn = x.arbiter->migratedIn(k);
            cr.migratedOut = x.arbiter->migratedOut(k);
        }
    }

    if (x.has_traffic) {
        result.sloViolations = x.slo_violations;
        result.trafficJobs.resize(queue_.size());
        for (std::size_t q = 0; q < queue_.size(); ++q) {
            traffic::JobRecord &jr = result.trafficJobs[q];
            jr.tenant = queue_meta_[q].tenant;
            jr.arrive = x.eff_arrive[q];
            jr.admit = x.admit_at[q];
            jr.finish = x.done_at[q];
            jr.sloBudget = queue_meta_[q].sloBudget;
            if (x.admission) {
                jr.shed = x.adm_shed[q];
                jr.defers = x.adm_defer_count[q];
            }
        }
        if (x.admission) {
            result.jobsShed = x.adm_shed_total;
            result.jobDeferrals = x.adm_defer_total;
            result.overloadEnters = x.adm_overload_enters;
        }
    }

    // gem5-style stats dump (same groups the snapshots sampled).
    {
        std::ostringstream os;
        for (const auto &eng : x.engines) {
            eng->memGroup().dump(os);
            eng->cpGroup().dump(os);
        }
        stats::Group run_group("system.run");
        run_group.addFormula(
            "watchdog_trips",
            [&] { return static_cast<double>(x.watchdog_trips); },
            "livelock-watchdog scalar-fallback escalations");
        run_group.addFormula(
            "lane_faults",
            [&] { return static_cast<double>(result.laneFaults); },
            "ExeBU hard faults applied");
        if (x.ncl > 1) {
            const double reb =
                static_cast<double>(x.arbiter->rebalances());
            const double mig =
                static_cast<double>(x.arbiter->migrations());
            run_group.addFormula(
                "arbiter_rebalances", [reb] { return reb; },
                "inter-cluster bandwidth rebalances published");
            run_group.addFormula(
                "cluster_migrations", [mig] { return mig; },
                "queued workloads adopted across clusters");
        }
        if (x.has_traffic) {
            double completed = 0.0;
            for (Cycle d : x.done_at)
                if (d != kCycleNever)
                    completed += 1.0;
            const double jobs = static_cast<double>(queue_.size());
            const double viol = static_cast<double>(x.slo_violations);
            run_group.addFormula(
                "traffic_jobs", [jobs] { return jobs; },
                "traffic arrivals enqueued");
            run_group.addFormula(
                "traffic_completed", [completed] { return completed; },
                "traffic jobs that ran to completion");
            run_group.addFormula(
                "slo_violations", [viol] { return viol; },
                "completions whose latency exceeded the SLO budget");
            if (x.admission) {
                const double shed =
                    static_cast<double>(x.adm_shed_total);
                const double defers =
                    static_cast<double>(x.adm_defer_total);
                const double enters =
                    static_cast<double>(x.adm_overload_enters);
                run_group.addFormula(
                    "jobs_shed", [shed] { return shed; },
                    "arrivals rejected by admission control");
                run_group.addFormula(
                    "job_deferrals", [defers] { return defers; },
                    "admission defer verdicts issued");
                run_group.addFormula(
                    "overload_enters", [enters] { return enters; },
                    "times the overload detector tripped");
            }
        }
        run_group.dump(os);
        result.statsText = os.str();
    }

    RunResult out = std::move(x.result);
    ctx_.reset();
    return out;
}

RunResult
System::run(const RunOptions &opt)
{
    boot(opt);
    advance(kCycleNever);
    return finalize();
}

// ------------------------------------------------------- checkpointing

namespace
{

/** Digest helper: loop structure, not the full expression trees — the
 *  suite builds loops deterministically from names, so name + shape is
 *  what distinguishes two workload sets in practice. */
void
describeLoops(std::ostream &os, const std::vector<kir::Loop> &loops)
{
    for (const kir::Loop &l : loops) {
        os << l.name << ';' << l.trip << ';' << l.stores.size() << ';'
           << (l.reduction ? 1 : 0) << ';';
        for (const kir::ArrayDecl &a : l.arrays)
            os << a.name << ',' << a.elems << ','
               << static_cast<unsigned>(a.elemBytes) << ','
               << (a.streaming ? 1 : 0) << ';';
        os << '|';
    }
}

void
describeCache(std::ostream &os, const CacheConfig &c)
{
    os << c.sizeBytes << ',' << c.assoc << ',' << c.lineBytes << ','
       << c.latency << ',' << c.bytesPerCycle << '|';
}

} // namespace

std::uint64_t
System::fingerprint(const Ctx &x) const
{
    std::ostringstream os;
    const MachineConfig &c = x.cfg;
    os << c.numCores << '|' << static_cast<int>(c.policy) << '|'
       << c.ghz << '|' << c.numExeBUs << '|' << c.vregsPerBlk << '|'
       << c.pregsPerBlk << '|' << c.computeIssueWidth << '|'
       << c.memIssueWidth << '|' << c.transmitWidth << '|'
       << c.instPoolEntries << '|' << c.issueQueueEntries << '|'
       << c.robEntries << '|' << c.commitWidth << '|'
       << c.loadQueueEntries << '|' << c.storeQueueEntries << '|'
       << c.fpLatency << '|' << c.laneMgrLatency << '|'
       << c.retireDelay << '|' << c.dramLatency << '|'
       << c.dramBytesPerCycle << '|' << c.prefetchDegree << '|'
       << c.monitorPeriod << '|' << c.contextSwitchCycles << '|'
       << static_cast<int>(c.schedPolicy) << '|';
    describeCache(os, c.vecCache);
    describeCache(os, c.l2);
    for (unsigned u : c.staticPlan)
        os << u << ',';
    os << '#';
    for (unsigned i = 0; i < c.numCores; ++i) {
        os << names_[i] << '@';
        describeLoops(os, loops_[i]);
    }
    os << '#';
    for (const auto &[name, loops] : queue_) {
        os << name << '@';
        describeLoops(os, loops);
    }
    // Determinism-relevant run options. fastForward and checkpointing
    // knobs are deliberately excluded: they never change simulated
    // state, so a ticked run may restore a fast-forwarded checkpoint.
    os << '#' << x.opt.maxCycles << '|' << x.opt.bucket << '|'
       << x.opt.snapshotEvery << '|' << x.opt.watchdogCycles << '|'
       << (x.opt.faultPlan ? x.opt.faultPlan->describe() : "");
    // Traffic metadata and the dispatch discipline are determinism-
    // relevant. Appended only when configured so traffic-free
    // fingerprints — and every existing checkpoint — are unchanged.
    if (has_traffic_ || dispatcher_) {
        os << '#' << (dispatcher_ ? dispatcher_->key() : "") << '|';
        for (const traffic::Arrival &m : queue_meta_)
            os << m.arriveAt << ',' << m.tenant << ',' << m.sloBudget
               << ',' << m.dependsOn << ',' << m.thinkGap << ','
               << m.estCost << ';';
    }
    // The admission policy and its knobs are determinism-relevant.
    // Appended only when a policy is installed so admission-off
    // fingerprints — and every existing checkpoint — are unchanged.
    if (has_traffic_ && admission_)
        os << '#' << "adm:" << admission_->key() << '|'
           << admission_cap_ << '|' << admission_refill_;
    // Cluster topology and per-cluster resolved static plans. Appended
    // only on clustered machines so every flat-machine fingerprint —
    // and every existing checkpoint — is unchanged.
    if (c.numClusters > 1) {
        os << '#' << c.numClusters << '|' << c.interArbiterPeriod
           << '|' << c.clusterMigrationCycles << '|';
        for (const auto &eng : x.engines) {
            for (unsigned u : eng->view().staticPlan)
                os << u << ',';
            os << ';';
        }
    }

    const std::string s = os.str();
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (unsigned char ch : s)
        h = (h ^ ch) * 0x100000001B3ULL;
    return h;
}

void
System::saveCheckpoint(std::ostream &os) const
{
    if (!ctx_)
        throw std::logic_error("System::saveCheckpoint: boot() first");
    const Ctx &x = *ctx_;
    ckpt::Writer w(os);

    w.section("meta");
    w.u64(fingerprint(x));
    w.u64(x.now);

    w.section("engine");
    w.u64(x.last_finish);
    w.b(x.complete);
    w.b(x.result.wallKilled);
    w.u64(x.ff.cyclesSimulated);
    w.u64(x.ff.cyclesTicked);
    w.u64(x.ff.cyclesSkipped);
    w.u64(x.ff.spans);
    w.u64(x.ff.longestSpan);
    w.u64(x.watchdog_trips);
    // The flat busy-integral slot stays a single f64 (the frozen byte
    // layout): the cluster-id-order sum of the per-engine shares. On a
    // flat machine that sum IS engine 0's accumulator, bit for bit; on
    // clustered machines the per-engine shares needed to resume follow
    // in the "cluster" section below.
    {
        double busy_integral = 0.0;
        for (const auto &eng : x.engines)
            busy_integral += eng->busyIntegral();
        w.f64(busy_integral);
    }

    // Program bookkeeping: the queue-dispatch compile log replays the
    // exact compile order on restore.
    w.u32(x.region);
    w.u64(x.compile_log.size());
    for (const auto &[core, q] : x.compile_log) {
        w.u16(static_cast<std::uint16_t>(core));
        w.u64(q);
    }
    for (std::uint64_t p : x.core_prog)
        w.u64(p);

    // Scheduling / completion state.
    for (Cycle f : x.finish)
        w.u64(f);
    for (bool d : x.done)
        w.b(d);
    w.u64(x.dispatched.size());
    for (bool d : x.dispatched)
        w.b(d);
    w.u64(x.undispatched);
    for (const PhaseOI &oi : x.sched_oi) {
        w.f64(oi.issue);
        w.f64(oi.mem);
        w.u8(static_cast<std::uint8_t>(oi.level));
    }
    for (Cycle d : x.dispatch_at)
        w.u64(d);
    for (std::size_t p : x.pending_wl)
        w.u64(p);

    // Timelines, in global core order (the engines hold them now, but
    // the byte layout is the pre-engine flat one).
    for (unsigned c = 0; c < x.cfg.numCores; ++c) {
        const auto &bk =
            x.engines[x.clusterOf(c)]->busyBuckets(x.lc(c));
        w.u64(bk.size());
        for (double v : bk)
            w.f64(v);
    }
    for (unsigned c = 0; c < x.cfg.numCores; ++c) {
        const auto &bk =
            x.engines[x.clusterOf(c)]->allocBuckets(x.lc(c));
        w.u64(bk.size());
        for (double v : bk)
            w.f64(v);
    }

    // Partial results accumulated so far.
    w.u64(x.result.batch.size());
    for (const BatchCompletion &b : x.result.batch) {
        w.str(b.name);
        w.u16(static_cast<std::uint16_t>(b.core));
        w.u64(b.dispatched);
        w.u64(b.finished);
    }
    w.u64(x.result.snapshots.size());
    for (const obs::MetricSnapshot &s : x.result.snapshots) {
        w.u64(s.cycle);
        w.u64(s.values.size());
        for (const auto &[name, v] : s.values) {
            w.str(name);
            w.f64(v);
        }
    }

    // The sink's intern table, so a resumed run hands out identical
    // string ids for identical names.
    const std::vector<std::string> strs =
        x.opt.sink ? x.opt.sink->internedStrings()
                   : std::vector<std::string>{};
    w.u64(strs.size());
    for (const std::string &s : strs)
        w.str(s);

    // Consumable fault-injector state.
    w.b(x.injector != nullptr);
    if (x.injector)
        x.injector->save(w);

    // Traffic lifecycle state. The section exists only when arrivals
    // were enqueued, so traffic-free checkpoints keep their exact byte
    // layout (and fingerprints) from before the traffic subsystem.
    if (x.has_traffic) {
        w.section("traffic");
        w.u64(queue_.size());
        for (std::size_t q = 0; q < queue_.size(); ++q) {
            w.u64(x.eff_arrive[q]);
            w.b(x.arrived[q]);
            w.u64(x.admit_at[q]);
            w.u64(x.done_at[q]);
        }
        w.u64(x.unarrived);
        w.u64(x.next_arrival);
        w.u64(x.slo_violations);
        for (std::size_t j : x.core_job)
            w.u64(j);
    }

    // Admission-control state. Like the traffic section, it exists
    // only when a policy is installed, so admission-off checkpoints
    // keep their exact byte layout. Presence mismatches are caught by
    // the fingerprint (the policy key and knobs are part of it).
    if (x.admission) {
        w.section("admit");
        w.u64(queue_.size());
        for (std::size_t q = 0; q < queue_.size(); ++q) {
            w.b(x.adm_latched[q]);
            w.b(x.adm_shed[q]);
            w.u64(x.adm_defer_until[q]);
            w.u32(x.adm_defer_count[q]);
        }
        w.u64(x.adm_inflight.size());
        for (std::size_t t = 0; t < x.adm_inflight.size(); ++t) {
            w.u32(x.adm_inflight[t]);
            w.u64(x.adm_tokens[t]);
            w.u64(x.adm_last_refill[t]);
        }
        for (Cycle d : x.adm_delay_ring)
            w.u64(d);
        w.u32(x.adm_delay_n);
        w.u64(x.adm_class_ema.size());
        for (const auto &[cls, ema] : x.adm_class_ema) {
            w.str(cls);
            w.u64(ema);
        }
        w.u64(x.adm_mean_ema);
        w.u64(x.adm_ready);
        w.b(x.adm_overloaded);
        w.u64(x.adm_overload_enters);
        w.u64(x.adm_shed_total);
        w.u64(x.adm_defer_total);
        w.u64(x.next_admission);
    }

    // Inter-cluster arbiter grants and accounting. Like the traffic
    // section, it exists only on clustered machines, so flat-machine
    // checkpoints keep their exact byte layout.
    if (x.arbiter) {
        w.section("cluster");
        x.arbiter->save(w);
        // Per-engine busy-integral shares: the flat slot above only
        // holds their sum, which is not enough to resume engines that
        // keep accumulating independently.
        for (const auto &eng : x.engines)
            w.f64(eng->busyIntegral());
    }

    // Components: per cluster its memory system then its co-processor
    // (the flat order on a 1-cluster machine), then every core in
    // global id order.
    for (const auto &eng : x.engines) {
        eng->mem().save(w);
        eng->coproc().save(w);
    }
    w.u64(x.cfg.numCores);
    for (unsigned c = 0; c < x.cfg.numCores; ++c)
        x.engines[x.clusterOf(c)]->core(x.lc(c)).save(w);

    w.finish();
}

void
System::restoreCheckpoint(std::istream &is, const RunOptions &opt)
{
    try {
        boot(opt);
        Ctx &x = *ctx_;
        ckpt::Reader r(is);

        r.expectSection("meta");
        ckpt::Reader::check(
            r.u64() == fingerprint(x),
            "checkpoint fingerprint mismatch: the file was written by "
            "a system with a different configuration, workload set, or "
            "determinism-relevant run options");
        x.now = r.u64();

        r.expectSection("engine");
        x.last_finish = r.u64();
        x.complete = r.b();
        x.result.wallKilled = r.b();
        x.ff.cyclesSimulated = r.u64();
        x.ff.cyclesTicked = r.u64();
        x.ff.cyclesSkipped = r.u64();
        x.ff.spans = r.u64();
        x.ff.longestSpan = r.u64();
        x.watchdog_trips = r.u64();
        // The flat slot holds the cluster-order sum of the per-engine
        // busy-integral shares. Park it on engine 0 — exact on a flat
        // machine; clustered machines overwrite every engine from the
        // per-engine values in the "cluster" section below.
        x.engines[0]->setBusyIntegral(r.f64());

        // Replay queued-workload compiles: deterministic compilation
        // reproduces byte-identical programs and array bindings.
        const unsigned saved_region = r.u32();
        const std::size_t nlog = r.arr();
        for (std::size_t i = 0; i < nlog; ++i) {
            const CoreId core = static_cast<CoreId>(r.u16());
            const std::uint64_t q = r.u64();
            ckpt::Reader::check(q < queue_.size(),
                                "checkpoint compile log references a "
                                "queue entry this system lacks");
            x.compile_log.emplace_back(core, q);
            compileAndBind(x, core, queue_[q].first, queue_[q].second);
        }
        ckpt::Reader::check(x.region == saved_region,
                            "checkpoint compile replay diverged");
        for (std::uint64_t &p : x.core_prog) {
            p = r.u64();
            ckpt::Reader::check(p < x.programs.size(),
                                "checkpoint program index out of range");
        }
        for (unsigned c = 0; c < x.cfg.numCores; ++c)
            x.core(c).restoreProgram(
                x.programs[x.core_prog[c]].get());

        for (Cycle &f : x.finish)
            f = r.u64();
        for (std::size_t i = 0; i < x.done.size(); ++i)
            x.done[i] = r.b();
        ckpt::Reader::check(r.arr() == x.dispatched.size(),
                            "checkpoint batch queue length mismatch");
        for (std::size_t i = 0; i < x.dispatched.size(); ++i)
            x.dispatched[i] = r.b();
        x.undispatched = r.u64();
        for (PhaseOI &oi : x.sched_oi) {
            oi.issue = r.f64();
            oi.mem = r.f64();
            oi.level = static_cast<MemLevel>(r.u8());
        }
        for (Cycle &d : x.dispatch_at)
            d = r.u64();
        for (std::size_t &p : x.pending_wl)
            p = r.u64();

        for (unsigned c = 0; c < x.cfg.numCores; ++c) {
            auto &bk = x.eng(c).busyBuckets(x.lc(c));
            bk.resize(r.arr());
            for (double &v : bk)
                v = r.f64();
        }
        for (unsigned c = 0; c < x.cfg.numCores; ++c) {
            auto &bk = x.eng(c).allocBuckets(x.lc(c));
            bk.resize(r.arr());
            for (double &v : bk)
                v = r.f64();
        }

        x.result.batch.resize(r.arr());
        for (BatchCompletion &b : x.result.batch) {
            b.name = r.str();
            b.core = static_cast<CoreId>(r.u16());
            b.dispatched = r.u64();
            b.finished = r.u64();
        }
        x.result.snapshots.resize(r.arr());
        for (obs::MetricSnapshot &s : x.result.snapshots) {
            s.cycle = r.u64();
            s.values.resize(r.arr());
            for (auto &[name, v] : s.values) {
                name = r.str();
                v = r.f64();
            }
        }

        std::vector<std::string> strs(r.arr());
        for (std::string &s : strs)
            s = r.str();
        if (x.opt.sink)
            x.opt.sink->restoreInternedStrings(strs);

        const bool had_injector = r.b();
        ckpt::Reader::check(
            had_injector == (x.injector != nullptr),
            "checkpoint fault-plan presence mismatch (pass the same "
            "--faults / --fault-seed the checkpointing run used)");
        if (x.injector)
            x.injector->load(r);

        if (x.has_traffic) {
            r.expectSection("traffic");
            ckpt::Reader::check(r.u64() == queue_.size(),
                                "checkpoint traffic queue length "
                                "mismatch");
            for (std::size_t q = 0; q < queue_.size(); ++q) {
                x.eff_arrive[q] = r.u64();
                x.arrived[q] = r.b();
                x.admit_at[q] = r.u64();
                x.done_at[q] = r.u64();
            }
            x.unarrived = r.u64();
            x.next_arrival = r.u64();
            x.slo_violations = r.u64();
            for (std::size_t &j : x.core_job)
                j = r.u64();
        }

        if (x.admission) {
            r.expectSection("admit");
            ckpt::Reader::check(r.u64() == queue_.size(),
                                "checkpoint admission queue length "
                                "mismatch");
            for (std::size_t q = 0; q < queue_.size(); ++q) {
                x.adm_latched[q] = r.b();
                x.adm_shed[q] = r.b();
                x.adm_defer_until[q] = r.u64();
                x.adm_defer_count[q] = r.u32();
            }
            ckpt::Reader::check(r.u64() == x.adm_inflight.size(),
                                "checkpoint admission tenant count "
                                "mismatch");
            for (std::size_t t = 0; t < x.adm_inflight.size(); ++t) {
                x.adm_inflight[t] = r.u32();
                x.adm_tokens[t] = r.u64();
                x.adm_last_refill[t] = r.u64();
            }
            for (Cycle &d : x.adm_delay_ring)
                d = r.u64();
            x.adm_delay_n = r.u32();
            ckpt::Reader::check(r.u64() == x.adm_class_ema.size(),
                                "checkpoint admission class table "
                                "mismatch");
            for (auto &[cls, ema] : x.adm_class_ema) {
                ckpt::Reader::check(r.str() == cls,
                                    "checkpoint admission class name "
                                    "mismatch");
                ema = r.u64();
            }
            x.adm_mean_ema = r.u64();
            x.adm_ready = r.u64();
            x.adm_overloaded = r.b();
            x.adm_overload_enters = r.u64();
            x.adm_shed_total = r.u64();
            x.adm_defer_total = r.u64();
            x.next_admission = r.u64();
        }

        if (x.arbiter) {
            r.expectSection("cluster");
            x.arbiter->load(r);
            const std::vector<unsigned> &sh = x.arbiter->shares();
            for (unsigned k = 0; k < x.ncl; ++k)
                x.engines[k]->mem().setDramBytesPerCycle(sh[k]);
            for (auto &eng : x.engines)
                eng->setBusyIntegral(r.f64());
        }

        for (auto &eng : x.engines) {
            eng->mem().load(r);
            eng->coproc().load(r);
        }
        ckpt::Reader::check(r.arr() == x.cfg.numCores,
                            "checkpoint core count mismatch");
        for (unsigned c = 0; c < x.cfg.numCores; ++c)
            x.core(c).load(r);

        r.finish();

        // The wall-clock budget restarts at restore time; it is host
        // time, not simulated state.
        x.wall_start = std::chrono::steady_clock::now();
        if (opt.sink &&
            opt.sink->wants(obs::EventKind::CheckpointRestore)) {
            obs::Event ev;
            ev.cycle = x.now;
            ev.kind = obs::EventKind::CheckpointRestore;
            opt.sink->record(ev);
        }
    } catch (...) {
        // Never leave a half-restored machine behind.
        ctx_.reset();
        throw;
    }
}

// ------------------------------------------------------ live inspection

std::string
System::inspect(const std::string &path) const
{
    if (!ctx_)
        throw std::logic_error("System::inspect: boot() first");
    const Ctx &x = *ctx_;
    std::ostringstream os;
    auto strip = [&path](const char *prefix) -> const char * {
        const std::size_t n = std::string_view(prefix).size();
        return path.compare(0, n, prefix) == 0 ? path.c_str() + n
                                               : nullptr;
    };
    // Un-prefixed component paths address cluster 0 — the whole
    // machine on a flat config, and a convenient alias on a clustered
    // one; system.clusterN.* addresses a specific cluster.
    const ClusterEngine &cl0 = *x.engines[0];
    if (path == "system") {
        os << "policy " << x.model.key() << '\n'
           << "cores " << x.cfg.numCores << '\n'
           << "cycle " << x.now << '\n'
           << "complete " << (x.complete ? 1 : 0) << '\n'
           << "queued_workloads " << queue_.size() << '\n'
           << "undispatched " << x.undispatched << '\n'
           << "watchdog_trips " << x.watchdog_trips << '\n'
           << "cycles_ticked " << x.ff.cyclesTicked << '\n'
           << "ff_spans " << x.ff.spans << '\n';
        if (x.ncl > 1)
            os << "clusters " << x.ncl << '\n'
               << "cores_per_cluster " << x.cpk << '\n'
               << "arbiter_rebalances " << x.arbiter->rebalances()
               << '\n'
               << "cluster_migrations " << x.arbiter->migrations()
               << '\n';
        if (x.has_traffic)
            os << "traffic_dispatcher "
               << (x.dispatcher ? x.dispatcher->key() : "legacy") << '\n'
               << "traffic_unarrived " << x.unarrived << '\n'
               << "slo_violations " << x.slo_violations << '\n';
        if (x.admission)
            os << "admission " << x.admission->key() << '\n'
               << "admission_cap " << x.admission_cap << '\n'
               << "admission_ready " << x.adm_ready << '\n'
               << "overloaded " << (x.adm_overloaded ? 1 : 0) << '\n'
               << "jobs_shed " << x.adm_shed_total << '\n'
               << "job_deferrals " << x.adm_defer_total << '\n'
               << "overload_enters " << x.adm_overload_enters << '\n';
    } else if (path == "system.arbiter" && x.arbiter) {
        os << "clusters " << x.ncl << '\n'
           << "total_dram_bpc " << x.arbiter->totalBpc() << '\n'
           << "period " << x.arbiter->period() << '\n'
           << "rebalances " << x.arbiter->rebalances() << '\n'
           << "migrations " << x.arbiter->migrations() << '\n';
        for (unsigned k = 0; k < x.ncl; ++k)
            os << "cluster" << k << "_share "
               << x.arbiter->shares()[k] << '\n';
    } else if (path == "system.mem") {
        cl0.mem().printState(os);
    } else if (path == "system.mem.vec_cache") {
        cl0.mem().vecCache().printState(os);
    } else if (path == "system.mem.l2") {
        cl0.mem().l2().printState(os);
    } else if (path == "system.coproc") {
        cl0.coproc().printState(os, "");
    } else if (path == "system.coproc.rt") {
        cl0.coproc().printState(os, "rt");
    } else if (path == "system.coproc.lanemgr") {
        cl0.coproc().printState(os, "lanemgr");
    } else if (path == "system.coproc.regfile") {
        cl0.coproc().printState(os, "regfile");
    } else if (const char *rest = strip("system.coproc.core")) {
        cl0.coproc().printState(os, rest);
    } else if (const char *spec = strip("system.cluster")) {
        std::size_t pos = 0;
        const unsigned long k = std::stoul(spec, &pos);
        if (k >= x.ncl)
            throw std::out_of_range("no such cluster: " + path);
        const ClusterEngine &cl = *x.engines[k];
        const std::string sub(spec + pos);
        if (sub == ".mem")
            cl.mem().printState(os);
        else if (sub == ".coproc")
            cl.coproc().printState(os, "");
        else
            throw std::invalid_argument("unknown component path: " +
                                        path);
    } else if (const char *core = strip("system.core")) {
        const std::size_t c = std::stoul(core);
        if (c >= x.cfg.numCores)
            throw std::out_of_range("no such core: " + path);
        x.core(static_cast<unsigned>(c)).printState(os);
    } else {
        throw std::invalid_argument("unknown component path: " + path);
    }
    return os.str();
}

std::vector<std::string>
System::componentPaths() const
{
    std::vector<std::string> paths{
        "system",          "system.mem",
        "system.mem.vec_cache", "system.mem.l2",
        "system.coproc",   "system.coproc.rt",
        "system.coproc.lanemgr", "system.coproc.regfile",
    };
    if (cfg_.numClusters > 1) {
        paths.push_back("system.arbiter");
        for (unsigned k = 0; k < cfg_.numClusters; ++k) {
            const std::string p = "system.cluster" + std::to_string(k);
            paths.push_back(p + ".mem");
            paths.push_back(p + ".coproc");
        }
    }
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        paths.push_back("system.coproc.core" + std::to_string(c));
        paths.push_back("system.core" + std::to_string(c));
    }
    return paths;
}

RunResult
corun(SharingPolicy p,
      const std::vector<std::pair<std::string,
                                  std::vector<kir::Loop>>> &wls,
      const RunOptions &opt)
{
    MachineConfig cfg = MachineConfig::forPolicy(
        p, static_cast<unsigned>(wls.size()));
    System sys(cfg);
    for (unsigned c = 0; c < wls.size(); ++c)
        sys.setWorkload(static_cast<CoreId>(c), wls[c].first,
                        wls[c].second);
    return sys.run(opt);
}

} // namespace occamy
