/**
 * @file
 * Per-cluster tick engine (the parallel unit of the cycle loop).
 *
 * One ClusterEngine owns everything a cluster touches while ticking: its
 * flat K-core config view, memory system, co-processor, scalar cores,
 * per-core busy/allocated-lane accounting, and (when event tracing is
 * on) a private obs::BufferSink. PR 8 made clusters the only component
 * boundary with no intra-cycle cross edges — cluster k's coproc, mem,
 * and cores reference nothing of cluster j, sharing policies are
 * immortal const singletons, and the fault injector attaches to cluster
 * 0 alone — so independent engines can tick the same cycle on separate
 * threads with no locks at all. System::advance is the coordinator: it
 * runs every serial, cross-cluster step (arbiter rebalance, batch-queue
 * and traffic admission, watchdog, fast-forward) between the parallel
 * tick phases, and merges engine-buffered events in cluster-id order so
 * the run's artifacts are byte-identical for 1 vs N worker threads
 * (DESIGN.md §15).
 *
 * The engine also owns the quiescence probes of its components
 * (coproc/core/mem nextEventAt) that System's wake-candidate table
 * evaluates, and the accounting synthesis for skipped spans.
 */

#ifndef OCCAMY_SIM_CLUSTER_ENGINE_HH
#define OCCAMY_SIM_CLUSTER_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "coproc/coproc.hh"
#include "core/scalar_core.hh"
#include "mem/memsystem.hh"
#include "obs/sink.hh"

namespace occamy
{

/** One cluster's components plus its slice of the cycle loop. */
class ClusterEngine
{
  public:
    /**
     * @param id Cluster id (0 on a flat machine).
     * @param view Flat K-core view of the cluster (the whole config on
     *        a flat machine).
     * @param stats_prefix Stats-group prefix, e.g. "system" or
     *        "system.cluster2".
     */
    ClusterEngine(unsigned id, const MachineConfig &view,
                  const std::string &stats_prefix);
    ~ClusterEngine();

    unsigned id() const { return id_; }
    const MachineConfig &view() const { return view_; }
    MemSystem &mem() { return mem_; }
    const MemSystem &mem() const { return mem_; }
    CoProcessor &coproc() { return coproc_; }
    const CoProcessor &coproc() const { return coproc_; }
    stats::Group &memGroup() { return mem_group_; }
    stats::Group &cpGroup() { return cp_group_; }

    // --- Boot-time wiring (System::boot). ---

    /** Adopt the next local core (construction order = local id). */
    void addCore(std::unique_ptr<ScalarCore> core);

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    ScalarCore &core(CoreId local) { return *cores_[local]; }
    const ScalarCore &core(CoreId local) const { return *cores_[local]; }

    /**
     * Attach the run's event sink to every component of this cluster.
     * With @p buffered (clustered machines with tracing on), events
     * recorded during the parallel tick phase land in a private
     * BufferSink that the coordinator drains in cluster-id order —
     * buffering is keyed to the topology, never the thread count, so 1
     * and N worker threads produce identical streams. Unbuffered (flat
     * machines), components record straight into @p sink and the
     * pre-engine event order is preserved exactly.
     */
    void attachSink(obs::EventSink *sink, bool buffered);

    /** Register component stats into the per-cluster groups. */
    void regStats();

    // --- The parallel phase (worker or coordinator thread). ---

    /**
     * Tick one cycle: co-processor first, then the local cores (their
     * construction order — the global tick order restricted to this
     * cluster), then the cycle's lane accounting (FTS busy-lane
     * scaling, busy/allocated bucket sums, the busy-lane integral).
     * Touches only this cluster's state.
     */
    void tickCycle(Cycle now, bool full_width, unsigned bucket);

    /** Flush buffered events downstream (coordinator, cluster order).
     *  No-op when unbuffered. */
    void drainEvents();

    // --- Fast-forward support (coordinator). ---

    /**
     * Account a skipped quiescent span [from, to]: busy adds 0.0 per
     * cycle (exact — nothing issues while quiescent) and alloc adds
     * the lanes currently allocated, which cannot change mid-span.
     */
    void synthesizeSkipped(Cycle from, Cycle to, unsigned bucket);

    /** Advance skip-invariant co-processor state (FTS round-robin). */
    void skipCycles(Cycle span) { coproc_.skipCycles(span); }

    // --- Quiescence probes (System's wake-candidate table). ---

    Cycle coprocWake(Cycle now) const { return coproc_.nextEventAt(now); }
    /** Non-const: the mem probe lazily pops expired wake entries. */
    Cycle memWake(Cycle now) { return mem_.nextEventAt(now); }

    /** Earliest wake over the local cores. */
    Cycle coreWake(Cycle now) const;

    // --- Accounting access (finalize and checkpointing). ---

    double busyIntegral() const { return busy_integral_; }
    void setBusyIntegral(double v) { busy_integral_ = v; }
    std::vector<double> &busyBuckets(CoreId local)
    {
        return busy_buckets_[local];
    }
    std::vector<double> &allocBuckets(CoreId local)
    {
        return alloc_buckets_[local];
    }

  private:
    unsigned id_;
    MachineConfig view_;
    MemSystem mem_;
    CoProcessor coproc_;

    /** Snapshot groups are built once and re-sampled each period; the
     *  same groups feed the final statsText dump. */
    stats::Group mem_group_;
    stats::Group cp_group_;

    std::vector<std::unique_ptr<ScalarCore>> cores_;

    /** Deferred event forwarding for the parallel tick phase; null on
     *  flat machines and sink-less runs. */
    std::unique_ptr<obs::BufferSink> buffer_;

    /** Per-cluster FTS busy-lane scale for the current cycle. */
    double fts_scale_ = 1.0;

    /** This cluster's share of the machine's busy-lane integral; the
     *  coordinator sums the shares in cluster-id order at finalize, so
     *  the total is independent of the worker-thread count (and equal
     *  to the pre-engine accumulator on a flat machine). */
    double busy_integral_ = 0.0;

    /** Per local core, per opt.bucket cycles: busy / allocated lane
     *  sums (the Fig. 2/14 timelines). */
    std::vector<std::vector<double>> busy_buckets_;
    std::vector<std::vector<double>> alloc_buckets_;
};

} // namespace occamy

#endif // OCCAMY_SIM_CLUSTER_ENGINE_HH
