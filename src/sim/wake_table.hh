/**
 * @file
 * Flat wake-candidate table for the fast-forward engine.
 *
 * System::advance used to rebuild its quiescence probes every ticked
 * cycle: a consider(...) closure plus a ladder of conditional loops
 * (coprocs, cores, mems, arbiter boundary, per-core dispatch deadlines,
 * snapshot boundary, fault plan, watchdog deadlines, traffic arrivals)
 * re-testing configuration that cannot change mid-run. The table hoists
 * that setup out of the hot loop: each candidate is registered once per
 * advance() call — and only when its feature is configured — with the
 * tier it belongs to, and evaluate() walks the flat array.
 *
 * Tiers preserve the exact early-out structure of the ladder: tier 0
 * (co-processors) always runs; a later tier runs only if everything
 * before it left wake > now + 1 (i.e. a skip is still possible). Within
 * a tier, candidates are evaluated in registration order and ties keep
 * the first source, so the WakeSource attribution recorded in
 * SchedFastForward events is unchanged. Probes may be conservative
 * (wake early) but never late; kCycleNever means "no candidate now".
 */

#ifndef OCCAMY_SIM_WAKE_TABLE_HH
#define OCCAMY_SIM_WAKE_TABLE_HH

#include <functional>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "sim/system.hh"

namespace occamy
{

/** Registration-order candidate table with tiered early-outs. */
class WakeTable
{
  public:
    /** Register a probe; candidates must be added in non-decreasing
     *  tier order. */
    void add(unsigned tier, WakeSource source,
             std::function<Cycle(Cycle)> probe)
    {
        cands_.push_back(
            Candidate{std::move(probe), source, tier});
    }

    /** @return the earliest candidate cycle and its source (the cap
     *  pair {kCycleNever, Cap} when nothing is pending). */
    std::pair<Cycle, WakeSource> evaluate(Cycle now) const
    {
        Cycle wake = kCycleNever;
        WakeSource why = WakeSource::Cap;
        unsigned tier = 0;
        for (const Candidate &c : cands_) {
            if (c.tier != tier) {
                if (wake <= now + 1)
                    break;      // A skip is already impossible.
                tier = c.tier;
            }
            const Cycle at = c.probe(now);
            if (at < wake) {
                wake = at;
                why = c.source;
            }
        }
        return {wake, why};
    }

  private:
    struct Candidate
    {
        std::function<Cycle(Cycle)> probe;
        WakeSource source;
        unsigned tier;
    };

    std::vector<Candidate> cands_;
};

} // namespace occamy

#endif // OCCAMY_SIM_WAKE_TABLE_HH
