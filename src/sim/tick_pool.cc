#include "sim/tick_pool.hh"

namespace occamy
{

namespace
{

/** Spin this many probes before yielding the time slice: long enough
 *  that a dedicated core never syscalls, short enough that a shared
 *  core hands over promptly. */
constexpr unsigned kSpinProbes = 2048;

template <class Pred>
void
spinUntil(Pred pred)
{
    unsigned probes = 0;
    while (!pred()) {
        if (++probes >= kSpinProbes) {
            probes = 0;
            std::this_thread::yield();
        }
    }
}

} // namespace

TickPool::TickPool(unsigned threads)
{
    const unsigned nworkers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(nworkers);
    for (unsigned i = 0; i < nworkers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

TickPool::~TickPool()
{
    quit_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread &t : workers_)
        t.join();
}

void
TickPool::drainTasks()
{
    for (;;) {
        const unsigned i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n_)
            return;
        try {
            (*fn_)(i);
        } catch (...) {
            errors_[i] = std::current_exception();
        }
    }
}

void
TickPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        spinUntil([&] {
            return epoch_.load(std::memory_order_acquire) != seen;
        });
        ++seen;
        if (quit_.load(std::memory_order_relaxed))
            return;
        drainTasks();
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
TickPool::run(unsigned n, const std::function<void(unsigned)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (unsigned i = 0; i < n; ++i)
            fn(i);      // Serial: propagate exceptions directly.
        return;
    }
    fn_ = &fn;
    n_ = n;
    errors_.assign(n, nullptr);
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);

    drainTasks();       // The coordinator participates.

    const unsigned workers = static_cast<unsigned>(workers_.size());
    spinUntil([&] {
        return done_.load(std::memory_order_acquire) == workers;
    });
    fn_ = nullptr;
    for (std::exception_ptr &e : errors_)
        if (e)
            std::rethrow_exception(e);
}

} // namespace occamy
