/**
 * @file
 * Worker pool for the per-cycle parallel cluster tick phase.
 *
 * The cycle loop forks the same tiny job shape millions of times: "tick
 * every ClusterEngine, then join". A condition-variable barrier would
 * pay two syscalls per cycle; TickPool instead keeps its workers
 * resident and synchronizes through three atomics — an epoch the
 * coordinator bumps to publish work (release), a shared index counter
 * the participants drain (engines are independent, so assignment order
 * is load-balancing only, never determinism), and a done counter the
 * coordinator waits on (acquire). The release/acquire pairs on
 * epoch/done give the happens-before edges ThreadSanitizer (and the
 * memory model) require: everything the coordinator wrote before run()
 * is visible to the workers, and everything the workers wrote to their
 * engines is visible to the coordinator after run() returns.
 *
 * Waits spin briefly then yield, so the pool stays fast on dedicated
 * cores and merely slow — not pathological — on oversubscribed hosts.
 * Exceptions thrown by tasks are captured per task index and rethrown
 * by run() in index order (deterministic first-failure).
 */

#ifndef OCCAMY_SIM_TICK_POOL_HH
#define OCCAMY_SIM_TICK_POOL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace occamy
{

/** Resident fork-join pool; the calling thread participates. */
class TickPool
{
  public:
    /**
     * @param threads Total participants including the coordinator;
     * spawns threads-1 workers. <= 1 spawns nothing and run() degrades
     * to a serial loop.
     */
    explicit TickPool(unsigned threads);
    ~TickPool();

    TickPool(const TickPool &) = delete;
    TickPool &operator=(const TickPool &) = delete;

    /** Run fn(0..n-1) across the coordinator and the workers; returns
     *  when every task finished. Not reentrant. */
    void run(unsigned n, const std::function<void(unsigned)> &fn);

    /** Total participants (coordinator + workers). */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

  private:
    void workerLoop();
    void drainTasks();

    const std::function<void(unsigned)> *fn_ = nullptr;
    unsigned n_ = 0;
    std::vector<std::exception_ptr> errors_;

    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> next_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<bool> quit_{false};

    std::vector<std::thread> workers_;
};

} // namespace occamy

#endif // OCCAMY_SIM_TICK_POOL_HH
