#include "common/log.hh"

#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

namespace occamy
{

namespace
{

struct LogState
{
    std::set<std::string, std::less<>> flags;
    bool all = false;
    std::mutex mtx;
};

LogState &
state()
{
    static LogState s;
    return s;
}

} // namespace

void
Log::enable(std::string_view flag)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    if (flag == "All")
        s.all = true;
    else
        s.flags.emplace(flag);
}

void
Log::disable(std::string_view flag)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    if (flag == "All") {
        s.all = false;
        s.flags.clear();
    } else {
        auto it = s.flags.find(flag);
        if (it != s.flags.end())
            s.flags.erase(it);
    }
}

bool
Log::enabled(std::string_view flag)
{
    auto &s = state();
    if (s.all)
        return true;
    if (s.flags.empty())
        return false;
    std::lock_guard<std::mutex> lock(s.mtx);
    return s.flags.find(flag) != s.flags.end();
}

void
Log::initFromEnv()
{
    const char *env = std::getenv("OCCAMY_DEBUG");
    if (!env)
        return;
    std::stringstream ss{std::string(env)};
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            enable(item);
}

void
Log::print(Cycle cycle, std::string_view flag, const std::string &msg)
{
    std::fprintf(stderr, "%12llu: %.*s: %s\n",
                 static_cast<unsigned long long>(cycle),
                 static_cast<int>(flag.size()), flag.data(), msg.c_str());
}

} // namespace occamy
