#include "common/log.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

namespace occamy
{

namespace
{

struct LogState
{
    std::set<std::string, std::less<>> flags;
    // The fast-path reads in enabled() happen outside the mutex (it
    // runs on every OCCAMY_LOG from every worker thread), so the two
    // flags it consults are atomics; `flags` itself stays mutexed.
    std::atomic<bool> all{false};
    std::atomic<bool> any{false};   ///< !flags.empty(), mirrored.
    std::mutex mtx;
};

LogState &
state()
{
    static LogState s;
    return s;
}

} // namespace

void
Log::enable(std::string_view flag)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    if (flag == "All") {
        s.all = true;
    } else {
        s.flags.emplace(flag);
        s.any = true;
    }
}

void
Log::disable(std::string_view flag)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    if (flag == "All") {
        s.all = false;
        s.flags.clear();
    } else {
        auto it = s.flags.find(flag);
        if (it != s.flags.end())
            s.flags.erase(it);
    }
    s.any = !s.flags.empty();
}

bool
Log::enabled(std::string_view flag)
{
    auto &s = state();
    if (s.all.load(std::memory_order_relaxed))
        return true;
    if (!s.any.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(s.mtx);
    return s.flags.find(flag) != s.flags.end();
}

void
Log::initFromEnv()
{
    const char *env = std::getenv("OCCAMY_DEBUG");
    if (!env)
        return;
    std::stringstream ss{std::string(env)};
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            enable(item);
}

void
Log::print(Cycle cycle, std::string_view flag, const std::string &msg)
{
    std::fprintf(stderr, "%12llu: %.*s: %s\n",
                 static_cast<unsigned long long>(cycle),
                 static_cast<int>(flag.size()), flag.data(), msg.c_str());
}

} // namespace occamy
