#include "common/cliopts.hh"

#include <algorithm>
#include <cstdlib>

namespace occamy::cliopts
{

namespace
{

/** Canonical key form: underscores read as dashes so NDJSON keys
 *  ("max_cycles") and flags ("max-cycles") name the same option. */
std::string
canonical(const std::string &key)
{
    std::string out = key;
    for (char &c : out)
        if (c == '_')
            c = '-';
    return out;
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v.empty() || v == "true" || v == "on" || v == "1") {
        out = true;
        return true;
    }
    if (v == "false" || v == "off" || v == "0") {
        out = false;
        return true;
    }
    return false;
}

bool
parseUnsigned(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || v[0] == '-')
        return false;
    out = static_cast<std::uint64_t>(n);
    return true;
}

} // namespace

OptionSet::OptionSet(std::string tool, std::string summary)
    : tool_(std::move(tool)), summary_(std::move(summary))
{
}

OptionSet &
OptionSet::add(Option o)
{
    options_.push_back(std::move(o));
    return *this;
}

OptionSet &
OptionSet::flag(const std::string &name, bool *target,
                const std::string &help)
{
    Option o;
    o.name = name;
    o.help = help;
    o.takesValue = false;
    o.apply = [name, target](const std::string &v, std::string &err) {
        bool b = true;
        if (!parseBool(v, b)) {
            err = name + " wants a boolean, got \"" + v + "\"";
            return false;
        }
        *target = b;
        return true;
    };
    return add(std::move(o));
}

OptionSet &
OptionSet::value(const std::string &name, std::string *target,
                 const std::string &metavar, const std::string &help)
{
    Option o;
    o.name = name;
    o.metavar = metavar;
    o.help = help;
    o.takesValue = true;
    o.apply = [target](const std::string &v, std::string &) {
        *target = v;
        return true;
    };
    return add(std::move(o));
}

OptionSet &
OptionSet::value(const std::string &name, unsigned *target,
                 const std::string &metavar, const std::string &help,
                 unsigned min)
{
    Option o;
    o.name = name;
    o.metavar = metavar;
    o.help = help;
    o.takesValue = true;
    o.apply = [name, target, min](const std::string &v,
                                  std::string &err) {
        std::uint64_t n = 0;
        if (!parseUnsigned(v, n) || n < min) {
            err = "--" + name + " wants an integer >= " +
                  std::to_string(min) + ", got \"" + v + "\"";
            return false;
        }
        *target = static_cast<unsigned>(n);
        return true;
    };
    return add(std::move(o));
}

OptionSet &
OptionSet::value(const std::string &name, std::uint64_t *target,
                 const std::string &metavar, const std::string &help,
                 std::uint64_t min)
{
    Option o;
    o.name = name;
    o.metavar = metavar;
    o.help = help;
    o.takesValue = true;
    o.apply = [name, target, min](const std::string &v,
                                  std::string &err) {
        std::uint64_t n = 0;
        if (!parseUnsigned(v, n) || n < min) {
            err = "--" + name + " wants an integer >= " +
                  std::to_string(min) + ", got \"" + v + "\"";
            return false;
        }
        *target = n;
        return true;
    };
    return add(std::move(o));
}

OptionSet &
OptionSet::value(const std::string &name, double *target,
                 const std::string &metavar, const std::string &help,
                 bool positive)
{
    Option o;
    o.name = name;
    o.metavar = metavar;
    o.help = help;
    o.takesValue = true;
    o.apply = [name, target, positive](const std::string &v,
                                       std::string &err) {
        char *end = nullptr;
        const double d = std::strtod(v.c_str(), &end);
        if (v.empty() || end == v.c_str() || *end != '\0' ||
            (positive && d <= 0)) {
            err = "--" + name + " wants a " +
                  (positive ? "positive number" : "number") +
                  ", got \"" + v + "\"";
            return false;
        }
        *target = d;
        return true;
    };
    return add(std::move(o));
}

OptionSet &
OptionSet::onOff(const std::string &name, bool *target,
                 const std::string &help)
{
    Option o;
    o.name = name;
    o.metavar = "on|off";
    o.help = help;
    o.takesValue = true;
    o.apply = [name, target](const std::string &v, std::string &err) {
        bool b = true;
        if (!parseBool(v, b)) {
            err = "--" + name + " wants on|off, got \"" + v + "\"";
            return false;
        }
        *target = b;
        return true;
    };
    return add(std::move(o));
}

OptionSet &
OptionSet::custom(
    const std::string &name, const std::string &metavar,
    const std::string &help,
    std::function<bool(const std::string &, std::string &)> apply)
{
    Option o;
    o.name = name;
    o.metavar = metavar;
    o.help = help;
    o.takesValue = true;
    o.apply = std::move(apply);
    return add(std::move(o));
}

OptionSet &
OptionSet::action(const std::string &name, const std::string &help,
                  std::function<int()> run)
{
    Option o;
    o.name = name;
    o.help = help;
    o.takesValue = false;
    o.act = std::move(run);
    return add(std::move(o));
}

OptionSet &
OptionSet::alias(const std::string &from, const std::string &to)
{
    aliases_.emplace_back(from, to);
    return *this;
}

OptionSet &
OptionSet::footer(std::string text)
{
    footer_ = std::move(text);
    return *this;
}

std::string
OptionSet::resolveAlias(const std::string &name) const
{
    for (const auto &[from, to] : aliases_)
        if (from == name)
            return to;
    return name;
}

const OptionSet::Option *
OptionSet::find(const std::string &name) const
{
    const std::string target = resolveAlias(canonical(name));
    for (const Option &o : options_)
        if (o.name == target)
            return &o;
    return nullptr;
}

ParseResult
OptionSet::parse(int argc, char **argv) const
{
    auto fail = [](std::string msg) {
        ParseResult r;
        r.status = Status::Error;
        r.exitCode = 2;
        r.error = std::move(msg);
        return r;
    };

    const Option *pending_action = nullptr;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            ParseResult r;
            r.status = Status::Exit;
            return r;
        }
        if (arg.rfind("--", 0) != 0)
            return fail("unexpected argument: " + arg);

        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }

        const Option *o = find(name);
        if (!o)
            return fail("unknown option: " + arg);
        if (o->act) {
            if (has_inline)
                return fail("--" + o->name + " takes no value");
            if (!pending_action)
                pending_action = o;
            continue;
        }
        std::string value = inline_value;
        if (o->takesValue && !has_inline) {
            if (i + 1 >= argc)
                return fail("--" + o->name + " needs a value");
            value = argv[++i];
        }
        if (!o->takesValue && has_inline)
            return fail("--" + o->name + " takes no value");
        std::string err;
        if (!o->apply(value, err))
            return fail(err);
    }

    if (pending_action) {
        ParseResult r;
        r.status = Status::Exit;
        r.exitCode = pending_action->act();
        return r;
    }
    return {};
}

bool
OptionSet::set(const std::string &key, const std::string &value,
               std::string &err) const
{
    const Option *o = find(key);
    if (!o) {
        err = "unknown key: " + key;
        return false;
    }
    if (o->act) {
        err = key + " is not a config key";
        return false;
    }
    return o->apply(value, err);
}

bool
OptionSet::has(const std::string &key) const
{
    return find(key) != nullptr;
}

void
OptionSet::printHelp(std::FILE *out) const
{
    std::fprintf(out, "%s: %s\n", tool_.c_str(), summary_.c_str());
    // Description column: wide enough for the longest "--name METAVAR".
    std::size_t width = 0;
    for (const Option &o : options_) {
        const std::size_t w = 2 + o.name.size() +
                              (o.metavar.empty() ? 0
                                                 : 1 + o.metavar.size());
        width = std::max(width, w);
    }
    for (const Option &o : options_) {
        std::string head = "--" + o.name;
        if (!o.metavar.empty())
            head += " " + o.metavar;
        head.resize(width + 2, ' ');
        std::fprintf(out, "  %s", head.c_str());
        // Continuation lines indent to the description column.
        for (std::size_t i = 0; i < o.help.size(); ++i) {
            std::fputc(o.help[i], out);
            if (o.help[i] == '\n' && i + 1 < o.help.size())
                std::fprintf(out, "  %*s", static_cast<int>(width + 2),
                             "");
        }
        std::fputc('\n', out);
    }
    if (!footer_.empty())
        std::fprintf(out, "%s\n", footer_.c_str());
}

bool
parseTopology(const std::string &spec, unsigned &clusters,
              unsigned &cores_per_cluster, std::string &err)
{
    const auto x = spec.find_first_of("xX");
    std::uint64_t c = 0, k = 0;
    if (x == std::string::npos ||
        !parseUnsigned(spec.substr(0, x), c) ||
        !parseUnsigned(spec.substr(x + 1), k) || c == 0 || k == 0) {
        err = "bad topology \"" + spec +
              "\" (want CxK, e.g. 4x4 = 4 clusters of 4 cores)";
        return false;
    }
    clusters = static_cast<unsigned>(c);
    cores_per_cluster = static_cast<unsigned>(k);
    return true;
}

} // namespace occamy::cliopts
