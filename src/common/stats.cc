#include "common/stats.hh"

#include <iomanip>
#include <stdexcept>

namespace occamy::stats
{

Distribution::Distribution(double min, double max, unsigned buckets)
    : min_(min), max_(max), width_((max - min) / buckets),
      buckets_(buckets, 0)
{
    assert(max > min && buckets > 0);
}

void
Distribution::sample(double v)
{
    ++samples_;
    sum_ += v;
    long idx = static_cast<long>((v - min_) / width_);
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<long>(buckets_.size()))
        idx = static_cast<long>(buckets_.size()) - 1;
    ++buckets_[static_cast<std::size_t>(idx)];
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    sum_ = 0.0;
}

void
Group::addCounter(const std::string &stat_name, const Counter *c,
                  const std::string &desc)
{
    Entry e;
    e.kind = Entry::Kind::CounterK;
    e.counter = c;
    e.desc = desc;
    entries_[stat_name] = std::move(e);
}

void
Group::addAverage(const std::string &stat_name, const Average *a,
                  const std::string &desc)
{
    Entry e;
    e.kind = Entry::Kind::AverageK;
    e.average = a;
    e.desc = desc;
    entries_[stat_name] = std::move(e);
}

void
Group::addFormula(const std::string &stat_name, std::function<double()> fn,
                  const std::string &desc)
{
    Entry e;
    e.kind = Entry::Kind::FormulaK;
    e.formula = std::move(fn);
    e.desc = desc;
    entries_[stat_name] = std::move(e);
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[stat_name, e] : entries_) {
        os << std::left << std::setw(40) << (name_ + "." + stat_name)
           << " " << std::right << std::setw(16);
        switch (e.kind) {
          case Entry::Kind::CounterK:
            os << e.counter->value();
            break;
          case Entry::Kind::AverageK:
            os << e.average->mean();
            break;
          case Entry::Kind::FormulaK:
            os << e.formula();
            break;
        }
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
}

std::vector<std::pair<std::string, double>>
Group::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries_.size());
    for (const auto &[stat_name, e] : entries_)
        out.emplace_back(name_ + "." + stat_name, get(stat_name));
    return out;
}

double
Group::get(const std::string &stat_name) const
{
    auto it = entries_.find(stat_name);
    if (it == entries_.end())
        throw std::out_of_range("no such stat: " + name_ + "." + stat_name);
    const Entry &e = it->second;
    switch (e.kind) {
      case Entry::Kind::CounterK:
        return static_cast<double>(e.counter->value());
      case Entry::Kind::AverageK:
        return e.average->mean();
      case Entry::Kind::FormulaK:
        return e.formula();
    }
    return 0.0;
}

} // namespace occamy::stats
