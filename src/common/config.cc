#include "common/config.hh"

#include <stdexcept>

namespace occamy
{

// The one allowed policy-enum switch outside src/policy/: the enum ->
// display-name mapping used by configs and result exporters.
const char *
policyName(SharingPolicy p)
{
    switch (p) {
      case SharingPolicy::Private:
        return "Private";
      case SharingPolicy::Temporal:
        return "FTS";
      case SharingPolicy::StaticSpatial:
        return "VLS";
      case SharingPolicy::Elastic:
        return "Occamy";
      case SharingPolicy::StaticSpatialWC:
        return "VLS-WC";
    }
    return "?";
}

MachineConfig
MachineConfig::forPolicy(SharingPolicy p, unsigned cores)
{
    // The paper keeps total SIMD resources equal across architectures:
    // 16 lanes/core => 4 ExeBUs per core (the Builder default).
    return Builder(p).cores(cores).build();
}

MachineConfig
MachineConfig::Builder::build() const
{
    MachineConfig out = cfg_;
    if (!bus_set_)
        out.numExeBUs = 4 * out.numCores;
    if (!out.staticPlan.empty()) {
        if (out.staticPlan.size() != out.numCores)
            throw std::invalid_argument(
                "MachineConfig: staticPlan must have one entry per core");
        unsigned sum = 0;
        for (unsigned share : out.staticPlan)
            sum += share;
        if (sum > out.numExeBUs)
            throw std::invalid_argument(
                "MachineConfig: staticPlan assigns more ExeBUs than "
                "the machine has");
    }
    return out;
}

} // namespace occamy
