#include "common/config.hh"

namespace occamy
{

const char *
policyName(SharingPolicy p)
{
    switch (p) {
      case SharingPolicy::Private:
        return "Private";
      case SharingPolicy::Temporal:
        return "FTS";
      case SharingPolicy::StaticSpatial:
        return "VLS";
      case SharingPolicy::Elastic:
        return "Occamy";
    }
    return "?";
}

MachineConfig
MachineConfig::forPolicy(SharingPolicy p, unsigned cores)
{
    // The paper keeps total SIMD resources equal across architectures:
    // 16 lanes/core => 4 ExeBUs per core (the Builder default).
    return Builder(p).cores(cores).build();
}

} // namespace occamy
