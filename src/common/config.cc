#include "common/config.hh"

#include <stdexcept>
#include <string>

#include "area/area_model.hh"

namespace occamy
{

// The one allowed policy-enum switch outside src/policy/: the enum ->
// display-name mapping used by configs and result exporters.
const char *
policyName(SharingPolicy p)
{
    switch (p) {
      case SharingPolicy::Private:
        return "Private";
      case SharingPolicy::Temporal:
        return "FTS";
      case SharingPolicy::StaticSpatial:
        return "VLS";
      case SharingPolicy::Elastic:
        return "Occamy";
      case SharingPolicy::StaticSpatialWC:
        return "VLS-WC";
    }
    return "?";
}

MachineConfig
MachineConfig::forPolicy(SharingPolicy p, unsigned cores)
{
    // The paper keeps total SIMD resources equal across architectures:
    // 16 lanes/core => 4 ExeBUs per core (the Builder default).
    return Builder(p).cores(cores).build();
}

MachineConfig
MachineConfig::Builder::build() const
{
    MachineConfig out = cfg_;
    if (out.numClusters == 0)
        throw std::invalid_argument(
            "MachineConfig: a machine needs at least one cluster; use "
            "topology(C, K) with C >= 1 (or cores(N) for a flat "
            "machine)");
    if (out.numCores == 0)
        throw std::invalid_argument(
            "MachineConfig: a cluster needs at least one core; use "
            "topology(C, K) with K >= 1 (or cores(N) with N >= 1)");
    if (out.numCores % out.numClusters != 0)
        throw std::invalid_argument(
            "MachineConfig: " + std::to_string(out.numCores) +
            " cores do not divide into " +
            std::to_string(out.numClusters) +
            " uniform clusters; pick a topology(C, K) with C*K cores");
    if (!AreaModel::canPrice(out.numClusters))
        throw std::invalid_argument(
            "MachineConfig: the area model prices at most " +
            std::to_string(AreaModel::kMaxClusters) + " clusters, got " +
            std::to_string(out.numClusters) +
            "; shrink the topology or grow cores per cluster");
    if (out.numClusters > 1 && out.interArbiterPeriod == 0)
        throw std::invalid_argument(
            "MachineConfig: interArbiterPeriod must be >= 1 cycle on a "
            "clustered machine");
    if (!bus_set_)
        out.numExeBUs = 4 * out.coresPerCluster();
    if (out.numExeBUs < out.coresPerCluster())
        throw std::invalid_argument(
            "MachineConfig: " + std::to_string(out.numExeBUs) +
            " ExeBUs per cluster cannot give each of " +
            std::to_string(out.coresPerCluster()) +
            " cluster cores a nonzero busShare(); raise exeBUs() or "
            "use more, smaller clusters");
    if (!out.staticPlan.empty()) {
        if (out.staticPlan.size() != out.coresPerCluster())
            throw std::invalid_argument(
                "MachineConfig: staticPlan must have one entry per "
                "cluster core (" +
                std::to_string(out.coresPerCluster()) + " expected, " +
                std::to_string(out.staticPlan.size()) + " given)");
        unsigned sum = 0;
        for (unsigned share : out.staticPlan)
            sum += share;
        if (sum > out.numExeBUs)
            throw std::invalid_argument(
                "MachineConfig: staticPlan assigns more ExeBUs than "
                "the cluster has");
    }
    return out;
}

} // namespace occamy
