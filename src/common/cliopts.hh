/**
 * @file
 * Declarative command-line options shared by the occamy tools.
 *
 * Each tool describes its flags once, as a table: an OptionSet maps
 * "--name" flags onto variables (or custom handlers), generates the
 * --help text from the same table, and exposes the table a second way
 * through set(key, value) so occamy-serve can feed NDJSON request keys
 * ("max_cycles":"5000") through the exact parsing and validation the
 * CLI uses. Both spellings "--flag value" and "--flag=value" work.
 *
 * The table replaces the per-tool `if (arg == "--x")` ladders that
 * occamy-sim and occamy-batchrun used to duplicate; tools/ carries no
 * hand-rolled flag branches any more.
 */

#ifndef OCCAMY_COMMON_CLIOPTS_HH
#define OCCAMY_COMMON_CLIOPTS_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace occamy::cliopts
{

enum class Status
{
    Ok,         ///< All flags parsed; run the tool.
    Exit,       ///< --help or a list action ran; exit with exitCode.
    Error,      ///< Bad flag or value; `error` says which.
};

struct ParseResult
{
    Status status = Status::Ok;
    int exitCode = 0;
    std::string error;

    bool ok() const { return status == Status::Ok; }
};

class OptionSet
{
  public:
    /** @p tool and @p summary head the generated --help text. */
    OptionSet(std::string tool, std::string summary);

    // ------------------------------------------------- registration
    // All registrars return *this so a table reads as one chain.
    // Help strings may contain '\n'; continuation lines are indented
    // to the description column.

    /** Presence flag: `--name` sets @p target true. Through set(), a
     *  boolean value ("true"/"on"/"1" or "false"/"off"/"0") applies. */
    OptionSet &flag(const std::string &name, bool *target,
                    const std::string &help);

    /** `--name V` storing into a variable, with type-checked parses. */
    OptionSet &value(const std::string &name, std::string *target,
                     const std::string &metavar, const std::string &help);
    /** Unsigned value; rejects values below @p min. */
    OptionSet &value(const std::string &name, unsigned *target,
                     const std::string &metavar, const std::string &help,
                     unsigned min = 0);
    OptionSet &value(const std::string &name, std::uint64_t *target,
                     const std::string &metavar, const std::string &help,
                     std::uint64_t min = 0);
    /** Double value; @p positive rejects values <= 0. */
    OptionSet &value(const std::string &name, double *target,
                     const std::string &metavar, const std::string &help,
                     bool positive = false);

    /** `--name on|off` boolean (the --fast-forward idiom). */
    OptionSet &onOff(const std::string &name, bool *target,
                     const std::string &help);

    /** `--name V` routed through @p apply; return false with @p err
     *  set to reject the value. */
    OptionSet &custom(
        const std::string &name, const std::string &metavar,
        const std::string &help,
        std::function<bool(const std::string &value, std::string &err)>
            apply);

    /** Valueless flag that runs @p run after a successful parse and
     *  exits the tool with its return value (--list-... idiom). */
    OptionSet &action(const std::string &name, const std::string &help,
                      std::function<int()> run);

    /** `--from` parses exactly like `--to` (not shown in --help). */
    OptionSet &alias(const std::string &from, const std::string &to);

    /** Extra lines printed after the option table (exit codes etc.). */
    OptionSet &footer(std::string text);

    // ------------------------------------------------- consumption

    /** Parse argv. --help/-h print the generated help and Exit(0);
     *  actions run after all flags parsed. Does not print errors. */
    ParseResult parse(int argc, char **argv) const;

    /** Apply one key=value pair outside argv (NDJSON config keys).
     *  '_' and '-' are interchangeable in @p key. Returns false with
     *  @p err set on unknown keys or rejected values. */
    bool set(const std::string &key, const std::string &value,
             std::string &err) const;

    /** True iff @p key names a registered option ('_' == '-'). */
    bool has(const std::string &key) const;

    /** The generated help text (tool summary + option table). */
    void printHelp(std::FILE *out = stdout) const;

  private:
    struct Option
    {
        std::string name;       ///< Without the leading "--".
        std::string metavar;    ///< Empty for presence flags/actions.
        std::string help;
        bool takesValue = false;
        /** Value handler; presence flags receive "". */
        std::function<bool(const std::string &, std::string &)> apply;
        /** Non-null for action options. */
        std::function<int()> act;
    };

    const Option *find(const std::string &name) const;
    std::string resolveAlias(const std::string &name) const;
    OptionSet &add(Option o);

    std::string tool_;
    std::string summary_;
    std::string footer_;
    std::vector<Option> options_;
    std::vector<std::pair<std::string, std::string>> aliases_;
};

/**
 * Parse a machine topology spec "CxK" (C co-processor clusters of K
 * cores each, e.g. "4x4") into its two factors. Returns false with
 * @p err set on anything else; zero factors are rejected here, richer
 * validation (area model, bus feasibility) happens in
 * MachineConfig::Builder.
 */
bool parseTopology(const std::string &spec, unsigned &clusters,
                   unsigned &cores_per_cluster, std::string &err);

} // namespace occamy::cliopts

#endif // OCCAMY_COMMON_CLIOPTS_HH
