/**
 * @file
 * Fundamental scalar types and machine-wide constants shared by every
 * Occamy module.
 *
 * Terminology follows the paper: a *lane* is one 32-bit SIMD element slot;
 * an *ExeBU* (basic execution unit) is a homogeneous 128-bit unit, i.e.
 * four lanes; the EM-SIMD <VL> register counts vector length at 128-bit
 * granularity (one unit of <VL> == one ExeBU == four lanes).
 */

#ifndef OCCAMY_COMMON_TYPES_HH
#define OCCAMY_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace occamy
{

/** Simulated clock cycle. One tick of the 2 GHz core/co-processor clock. */
using Cycle = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Index of a scalar CPU core attached to the co-processor. */
using CoreId = std::uint16_t;

/** Monotonic per-core dynamic-instruction sequence number. */
using SeqNum = std::uint64_t;

/** Sentinel for "no cycle" / "not yet scheduled". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid core ids (e.g. a free ExeBU owner slot). */
inline constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/**
 * Sentinel owner for an ExeBU taken permanently offline by a hard fault.
 * A faulted unit is neither free nor owned: it is excluded from both the
 * Dispatch.Cfg free pool and every core's <VL> entitlement.
 */
inline constexpr CoreId kFaultedCore = kNoCore - 1;

/** Bits per SIMD lane (single-precision float, the paper's unit). */
inline constexpr unsigned kLaneBits = 32;

/** Bits per ExeBU, the minimum SVE vector-length granularity. */
inline constexpr unsigned kBuBits = 128;

/** Lanes contained in one ExeBU. */
inline constexpr unsigned kLanesPerBu = kBuBits / kLaneBits;

/** Bytes moved per ExeBU-wide (128-bit) memory beat. */
inline constexpr unsigned kBytesPerBu = kBuBits / 8;

/** Architectural SVE vector registers visible to the compiler (z0..z31). */
inline constexpr unsigned kNumArchVecRegs = 32;

/** Architectural SVE predicate registers (p0..p15). */
inline constexpr unsigned kNumArchPredRegs = 16;

} // namespace occamy

#endif // OCCAMY_COMMON_TYPES_HH
