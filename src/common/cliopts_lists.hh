/**
 * @file
 * Shared registry-listing actions for the occamy CLIs.
 *
 * occamy-sim and occamy-batchrun print the same catalogs (--list-
 * policies, --list-workloads, ...); this registers the exact listing
 * actions a tool wants onto its OptionSet so both tools share one
 * implementation and one output format.
 */

#ifndef OCCAMY_COMMON_CLIOPTS_LISTS_HH
#define OCCAMY_COMMON_CLIOPTS_LISTS_HH

#include "common/cliopts.hh"

namespace occamy::cliopts
{

inline constexpr unsigned kListPolicies = 1u << 0;
inline constexpr unsigned kListWorkloads = 1u << 1;
inline constexpr unsigned kListPairs = 1u << 2;
inline constexpr unsigned kListTraffic = 1u << 3;
inline constexpr unsigned kListSchedulers = 1u << 4;
inline constexpr unsigned kListAdmission = 1u << 5;

/**
 * Register the listing actions selected by the @p which bitmask onto
 * @p set: --list-traffic, --list-schedulers, --list-pairs,
 * --list-workloads and --list-policies (each prints its registry and
 * exits 0). Tools add their own "--list" alias on top, e.g.
 * `set.alias("list", "list-workloads")`.
 */
void addListOptions(OptionSet &set, unsigned which);

} // namespace occamy::cliopts

#endif // OCCAMY_COMMON_CLIOPTS_LISTS_HH
