/**
 * @file
 * Minimal statistics package in the spirit of gem5's Stats: named scalar
 * counters, averages, distributions and derived formulas, grouped per
 * component and dumpable as text.
 *
 * Concurrency contract (audited for the parallel experiment runner in
 * src/runner):
 *
 *  - Nothing in this package is internally synchronized, and there is
 *    deliberately no process-global stats registry. Every Counter /
 *    Average / Distribution is a plain member of one simulator
 *    component, every Group is built inside one `System::run()`, and a
 *    `System` owns its `MachineConfig` by value — so all statistics and
 *    configuration state is strictly per-`System`-instance.
 *
 *  - Therefore a `System` (and everything hanging off it) must be
 *    constructed, run and destroyed on a single thread. Cross-thread
 *    parallelism is achieved by running *different* `System` instances
 *    on different threads (what runner::Runner does: one fresh System
 *    per job, built on the worker thread that executes it), never by
 *    sharing one instance.
 *
 *  - The only process-global mutable state in src/common is the debug
 *    flag registry behind `Log` (common/log.hh), which is mutex/atomic
 *    protected and safe to use from concurrent simulations.
 */

#ifndef OCCAMY_COMMON_STATS_HH
#define OCCAMY_COMMON_STATS_HH

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace occamy::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    /** Checkpoint restore only: counters otherwise only count up. */
    void set(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of sampled values (e.g. queue occupancy per cycle). */
class Average
{
  public:
    void sample(double v) { sum_ += v; ++count_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t samples() const { return count_; }
    double sum() const { return sum_; }
    void reset() { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [min, max). */
class Distribution
{
  public:
    /**
     * @param min Inclusive lower bound of the first bucket.
     * @param max Exclusive upper bound of the last bucket.
     * @param buckets Number of equal-width buckets.
     */
    Distribution(double min, double max, unsigned buckets);

    /** Record one sample; out-of-range samples clamp to the end buckets. */
    void sample(double v);

    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    void reset();

  private:
    double min_;
    double max_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of statistics belonging to one simulator component.
 *
 * Components register their counters once at construction; Group keeps
 * pointers (no ownership) and renders them on dump(). Derived quantities
 * are registered as formula callbacks evaluated at dump time.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &stat_name, const Counter *c,
                    const std::string &desc = "");
    void addAverage(const std::string &stat_name, const Average *a,
                    const std::string &desc = "");
    void addFormula(const std::string &stat_name,
                    std::function<double()> fn,
                    const std::string &desc = "");

    /** Render "group.stat value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Look up any registered stat by name as a double. */
    double get(const std::string &stat_name) const;

    /**
     * Evaluate every registered stat as ("group.stat", value) pairs in
     * deterministic (sorted-by-name) order — the payload of a periodic
     * metric snapshot (obs::MetricSnapshot).
     */
    std::vector<std::pair<std::string, double>> snapshot() const;

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        enum class Kind { CounterK, AverageK, FormulaK } kind;
        const Counter *counter = nullptr;
        const Average *average = nullptr;
        std::function<double()> formula;
        std::string desc;
    };

    std::string name_;
    std::map<std::string, Entry> entries_;
};

} // namespace occamy::stats

#endif // OCCAMY_COMMON_STATS_HH
