/**
 * @file
 * Lightweight component-tagged logging, modelled on gem5's debug flags.
 *
 * Every simulator component logs through a named flag; flags are enabled
 * at run time via Log::enable("Coproc") or the OCCAMY_DEBUG environment
 * variable (comma-separated flag names, or "All"). Logging is compiled in
 * unconditionally but costs a single branch when disabled.
 */

#ifndef OCCAMY_COMMON_LOG_HH
#define OCCAMY_COMMON_LOG_HH

#include <cstdio>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace occamy
{

/** Registry of debug flags and the printing backend. */
class Log
{
  public:
    /** Enable one flag by name ("All" enables everything). */
    static void enable(std::string_view flag);

    /** Disable one flag by name ("All" disables everything). */
    static void disable(std::string_view flag);

    /** @return true if the flag is currently enabled. */
    static bool enabled(std::string_view flag);

    /** Parse the OCCAMY_DEBUG environment variable once at startup. */
    static void initFromEnv();

    /**
     * Print one log line: "<cycle>: <flag>: <message>".
     *
     * @param cycle Simulated cycle the event happened at.
     * @param flag Component flag name.
     * @param msg Already formatted message body.
     */
    static void print(Cycle cycle, std::string_view flag,
                      const std::string &msg);
};

} // namespace occamy

/**
 * Log a formatted message under a debug flag.
 *
 * Usage: OCCAMY_LOG(curCycle, "Coproc", "core%u vl=%u", core, vl);
 */
#define OCCAMY_LOG(cycle, flag, ...)                                        \
    do {                                                                    \
        if (::occamy::Log::enabled(flag)) {                                \
            char log_buf_[256];                                            \
            std::snprintf(log_buf_, sizeof(log_buf_), __VA_ARGS__);        \
            ::occamy::Log::print((cycle), (flag), log_buf_);               \
        }                                                                   \
    } while (0)

#endif // OCCAMY_COMMON_LOG_HH
