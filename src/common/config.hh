/**
 * @file
 * Machine configuration: every micro-architectural parameter from Table 4
 * of the paper, plus the sharing-policy selector distinguishing the four
 * evaluated SIMD architectures (Fig. 1).
 */

#ifndef OCCAMY_COMMON_CONFIG_HH
#define OCCAMY_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace occamy
{

/**
 * The SIMD sharing architectures: the four compared in the paper
 * (Fig. 1) plus registered extensions. The enum is a compact identity
 * for results and configs; every behavioral difference lives in the
 * policy::SharingModel registered for each value (src/policy/).
 */
enum class SharingPolicy
{
    /** Core-private fixed-width SIMD units (Fig. 1a), e.g. Intel Xeon. */
    Private,
    /** Fine temporal sharing of one full-width unit (Fig. 1b), "FTS". */
    Temporal,
    /** Static spatial partitioning of the lanes (Fig. 1c), "VLS". */
    StaticSpatial,
    /** Occamy's elastic spatial sharing (Fig. 1d). */
    Elastic,
    /** Work-conserving VLS: statically entitled lanes, but an idle
     *  core's share is lent to active cores until it returns — the
     *  ablation point between VLS and Occamy. */
    StaticSpatialWC,
};

/** @return the paper's short name for a policy
 *  (Private/FTS/VLS/Occamy/VLS-WC). */
const char *policyName(SharingPolicy p);

/**
 * Batch-queue dispatch discipline (Section 5 discusses FCFS and
 * suggests, as future work, letting lane partitioning and OS
 * scheduling work together -- OiAware implements that suggestion).
 */
enum class SchedPolicy
{
    /** First-come-first-serve: the queue head goes to the idle core. */
    Fcfs,
    /** Pick the queued workload whose first-phase operational
     *  intensity maximizes the roofline-estimated machine throughput
     *  given what the other cores are currently running. */
    OiAware,
};

/** Cache parameters for one level of the hierarchy. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 0;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    unsigned latency = 1;           ///< Hit latency in cycles.
    unsigned bytesPerCycle = 64;    ///< Sustained bandwidth into this level.
};

/**
 * Full machine configuration.
 *
 * Defaults reproduce the paper's 2-core setup (Table 4): 2 GHz, 32 lanes
 * (8 ExeBUs) shared by 2 cores, vector issue width 4 (2 exec + 2 ld/st),
 * 160x128b VRegs and 64x16b PRegs per RegBlk, 128 KB VecCache @ 5 cycles,
 * 8 MB unified L2 @ 18 cycles, 64 GB/s DRAM.
 */
struct MachineConfig
{
    /** Number of scalar cores in the whole machine (all clusters). */
    unsigned numCores = 2;

    /** Clusters the machine is organized into. Each cluster owns one
     *  co-processor serving numCores/numClusters scalar cores; the
     *  paper's flat 2-4-core machines are the degenerate 1-cluster
     *  case. Use Builder::topology(C, K) to configure. */
    unsigned numClusters = 1;

    /** Sharing policy (which of the four architectures to model). */
    SharingPolicy policy = SharingPolicy::Elastic;

    /** Clock in GHz (for roofline GFLOP/s / GB/s conversions). */
    double ghz = 2.0;

    /** Homogeneous 128-bit execution units per cluster co-processor
     *  (8 => 32 lanes). On a 1-cluster machine this is the whole
     *  machine's SIMD width. */
    unsigned numExeBUs = 8;

    /** 128-bit physical vector registers per RegBlk. */
    unsigned vregsPerBlk = 160;

    /** 16-bit physical predicate registers per RegBlk. */
    unsigned pregsPerBlk = 64;

    /** SIMD compute instructions issueable per core per cycle. */
    unsigned computeIssueWidth = 2;

    /** SIMD ld/st micro-ops issueable per core per cycle. */
    unsigned memIssueWidth = 2;

    /** Instructions a scalar core transmits to Occamy per cycle. */
    unsigned transmitWidth = 4;

    /** Per-core instruction-pool (in-Occamy queue) capacity. */
    unsigned instPoolEntries = 32;

    /** Per-core issue-queue capacity. */
    unsigned issueQueueEntries = 64;

    /** Per-core reorder-buffer capacity. */
    unsigned robEntries = 128;

    /** Commit width per core per cycle. */
    unsigned commitWidth = 4;

    /** Load-queue (LHQ) entries per LSU. */
    unsigned loadQueueEntries = 32;

    /** Store-queue (STQ) entries per LSU. */
    unsigned storeQueueEntries = 32;

    /** FP pipeline latency of an ExeBU in cycles. */
    unsigned fpLatency = 4;

    /** Cycles the LaneMgr takes to produce a new partition plan. */
    unsigned laneMgrLatency = 8;

    /** Pipeline depth charged when a scalar core retires an instruction
     *  before transmitting it to Occamy (non-speculative hand-off). */
    unsigned retireDelay = 4;

    /** 128 KB 8-way vector cache @ 5 cycles, 2x64 B/cycle. */
    CacheConfig vecCache{128 * 1024, 8, 64, 5, 128};

    /** 8 MB shared unified L2 @ 18 cycles, 64 B/cycle. */
    CacheConfig l2{8 * 1024 * 1024, 16, 64, 18, 64};

    /** DRAM: 64 GB/s total (32 B/cycle @ 2 GHz), ~120-cycle latency. */
    unsigned dramLatency = 120;
    unsigned dramBytesPerCycle = 32;

    /** Lines the stream prefetcher pulls ahead on a DRAM demand miss. */
    unsigned prefetchDegree = 32;

    /** Iterations between partition-monitor checks (compiler knob). */
    unsigned monitorPeriod = 8;

    /** OS context-switch cost when dispatching a queued workload onto
     *  a core (covers saving/restoring the EM-SIMD registers after the
     *  pipelines drain, Section 5). */
    unsigned contextSwitchCycles = 200;

    /** Cycles between inter-cluster bandwidth rebalances: the level-2
     *  lane manager's re-planning period (clustered topologies only). */
    unsigned interArbiterPeriod = 4096;

    /** Extra dispatch cycles charged when the batch scheduler migrates
     *  a queued workload onto a core outside its home cluster (cold
     *  VecCache plus cross-cluster state movement). */
    unsigned clusterMigrationCycles = 400;

    /** Batch-queue dispatch discipline. */
    SchedPolicy schedPolicy = SchedPolicy::Fcfs;

    /**
     * Boot-time lane-partition plan in ExeBUs per core, used by the
     * Private and VLS architectures (empty = equal split). For VLS the
     * system computes it offline with staticPartition().
     */
    std::vector<unsigned> staticPlan;

    /** Scalar cores per cluster (topologies are uniform by
     *  construction: Builder::topology(C, K) => C*K cores). */
    unsigned coresPerCluster() const { return numCores / numClusters; }

    /** Cluster owning global core id @p core. */
    unsigned clusterOf(unsigned core) const
    {
        return core / coresPerCluster();
    }

    /** Index of global core id @p core within its cluster. */
    unsigned localCore(unsigned core) const
    {
        return core % coresPerCluster();
    }

    /** Total lanes (derived, machine-wide across all clusters). */
    unsigned totalLanes() const
    {
        return numClusters * numExeBUs * kLanesPerBu;
    }

    /**
     * ExeBUs statically owned by core @p core under an equal split of
     * its cluster's co-processor: the floor share plus one of the
     * remainder units, handed to the lowest-numbered cores of the
     * cluster — so every ExeBU is assigned even when numExeBUs does
     * not divide evenly.
     */
    unsigned busShare(unsigned core) const
    {
        const unsigned local_cores = coresPerCluster();
        const unsigned rem = numExeBUs % local_cores;
        return numExeBUs / local_cores + (localCore(core) < rem ? 1 : 0);
    }

    /** @return config preset for a registered architecture. */
    static MachineConfig forPolicy(SharingPolicy p, unsigned cores = 2);

    class Builder;
};

/**
 * Named, chainable MachineConfig construction:
 *
 *     auto cfg = MachineConfig::Builder(SharingPolicy::Elastic)
 *                    .cores(4)
 *                    .sched(SchedPolicy::OiAware)
 *                    .build();
 *
 * Unless exeBUs() is called, build() sizes the machine at the paper's
 * 4 ExeBUs (16 lanes) per core, matching forPolicy(). New knobs get a
 * named setter here instead of widening a positional signature.
 */
class MachineConfig::Builder
{
  public:
    explicit Builder(SharingPolicy p) { cfg_.policy = p; }

    /** Flat machine with @p n cores: shorthand for topology(1, n),
     *  kept as the back-compat entry point for the paper's configs. */
    Builder &cores(unsigned n)
    {
        cfg_.numCores = n;
        cfg_.numClusters = 1;
        return *this;
    }

    /**
     * Clustered machine: @p clusters clusters of @p cores_per_cluster
     * scalar cores, each cluster owning one co-processor. build()
     * validates the shape (non-zero counts, busShare() feasibility,
     * area-model priceability) and throws std::invalid_argument with
     * an actionable message on a bad topology.
     */
    Builder &topology(unsigned clusters, unsigned cores_per_cluster)
    {
        cfg_.numClusters = clusters;
        cfg_.numCores = clusters * cores_per_cluster;
        return *this;
    }

    /** Inter-cluster arbiter re-planning period in cycles. */
    Builder &interArbiterPeriod(unsigned cycles)
    {
        cfg_.interArbiterPeriod = cycles;
        return *this;
    }

    /** Cross-cluster work-migration dispatch penalty in cycles. */
    Builder &clusterMigrationCycles(unsigned cycles)
    {
        cfg_.clusterMigrationCycles = cycles;
        return *this;
    }

    /** ExeBUs per cluster; overrides the 4-per-core default. */
    Builder &exeBUs(unsigned n)
    {
        cfg_.numExeBUs = n;
        bus_set_ = true;
        return *this;
    }

    Builder &sched(SchedPolicy s)
    {
        cfg_.schedPolicy = s;
        return *this;
    }

    /** Boot-time lane plan in ExeBUs per core (Private/VLS). */
    Builder &staticPlan(std::vector<unsigned> plan)
    {
        cfg_.staticPlan = std::move(plan);
        return *this;
    }

    Builder &contextSwitch(unsigned cycles)
    {
        cfg_.contextSwitchCycles = cycles;
        return *this;
    }

    Builder &monitorPeriod(unsigned iters)
    {
        cfg_.monitorPeriod = iters;
        return *this;
    }

    Builder &transmitWidth(unsigned insts)
    {
        cfg_.transmitWidth = insts;
        return *this;
    }

    Builder &laneMgrLatency(unsigned cycles)
    {
        cfg_.laneMgrLatency = cycles;
        return *this;
    }

    Builder &prefetchDegree(unsigned lines)
    {
        cfg_.prefetchDegree = lines;
        return *this;
    }

    Builder &loadQueueEntries(unsigned n)
    {
        cfg_.loadQueueEntries = n;
        return *this;
    }

    Builder &vregsPerBlk(unsigned n)
    {
        cfg_.vregsPerBlk = n;
        return *this;
    }

    /**
     * Finalize the config. Unless exeBUs() was called, sizes each
     * cluster at 4 ExeBUs per core. Validates the topology (non-zero
     * cluster/core counts, every core gets a nonzero busShare(), the
     * area model can price the cluster count) and a configured
     * staticPlan (one entry per cluster core, sum within the cluster
     * width), throwing std::invalid_argument with an actionable
     * message on a misconfiguration.
     */
    MachineConfig build() const;

  private:
    MachineConfig cfg_;
    bool bus_set_ = false;
};

} // namespace occamy

#endif // OCCAMY_COMMON_CONFIG_HH
