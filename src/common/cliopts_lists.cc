#include "common/cliopts_lists.hh"

#include <cstdio>

#include "policy/sharing_model.hh"
#include "traffic/admission.hh"
#include "traffic/arrival.hh"
#include "traffic/scheduler.hh"
#include "workloads/suite.hh"

namespace occamy::cliopts
{

namespace
{

int
printPolicies()
{
    std::printf("registered sharing policies (--policy):\n");
    for (const policy::SharingModel *m : policy::allModels()) {
        std::printf("  %-8s %-8s", m->key(), m->paperName());
        if (!m->aliases().empty()) {
            std::printf(" aliases:");
            for (const auto &a : m->aliases())
                std::printf(" %s", a.c_str());
        }
        std::printf("\n");
    }
    return 0;
}

int
printWorkloads()
{
    std::printf("SPEC workloads:\n");
    for (unsigned n = 1; n <= 22; ++n) {
        const auto w = workloads::specWorkload(n);
        std::printf("  WL%-3u %s:", n, w.memoryIntensive ? "M" : "C");
        for (const auto &loop : w.loops)
            std::printf(" %s", loop.name.c_str());
        std::printf("\n");
    }
    std::printf("OpenCV workloads:\n");
    for (unsigned n = 1; n <= 12; ++n) {
        const auto w = workloads::opencvWorkload(n);
        std::printf("  CV%-3u %s:", n, w.memoryIntensive ? "M" : "C");
        for (const auto &loop : w.loops)
            std::printf(" %s", loop.name.c_str());
        std::printf("\n");
    }
    return 0;
}

int
printPairs()
{
    const auto all = workloads::allPairs();
    for (std::size_t i = 0; i < all.size(); ++i)
        std::printf("%3zu  %-8s %s + %s%s\n", i + 1,
                    all[i].label.c_str(), all[i].core0.name.c_str(),
                    all[i].core1.name.c_str(),
                    i >= 16 ? "  (OpenCV)" : "");
    return 0;
}

int
printTraffic()
{
    std::printf("registered arrival processes (--traffic):\n");
    for (const traffic::ArrivalProcess *p : traffic::allProcesses())
        std::printf("  %-8s %s\n", p->key(), p->summary());
    return 0;
}

int
printSchedulers()
{
    std::printf("registered dispatch disciplines (--scheduler):\n");
    for (const traffic::Dispatcher *d : traffic::allDispatchers())
        std::printf("  %-8s %s\n", d->key(), d->summary());
    return 0;
}

int
printAdmission()
{
    std::printf("registered admission policies (--admission):\n");
    for (const traffic::AdmissionPolicy *p :
         traffic::allAdmissionPolicies())
        std::printf("  %-12s %s\n", p->key().c_str(),
                    p->summary().c_str());
    return 0;
}

} // namespace

void
addListOptions(OptionSet &set, unsigned which)
{
    if (which & kListAdmission)
        set.action("list-admission",
                   "print registered admission policies and exit",
                   printAdmission);
    if (which & kListTraffic)
        set.action("list-traffic",
                   "print registered arrival processes and exit",
                   printTraffic);
    if (which & kListSchedulers)
        set.action("list-schedulers",
                   "print registered dispatch disciplines and exit",
                   printSchedulers);
    if (which & kListPairs)
        set.action("list-pairs",
                   "print the co-running pair catalog with indices",
                   printPairs);
    if (which & kListWorkloads)
        set.action("list-workloads",
                   "list the workload catalog and exit", printWorkloads);
    if (which & kListPolicies)
        set.action("list-policies",
                   "list registered sharing policies and exit",
                   printPolicies);
}

} // namespace occamy::cliopts
