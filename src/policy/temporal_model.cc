/**
 * @file
 * FTS (Fig. 1b): fine temporal sharing of one full-width SIMD unit.
 * Every instruction executes at machine width; the cores compete for
 * the shared issue budgets, the statically split LSU queues and one
 * shared physical register pool — the structural contention Section 2
 * blames for FTS's issue-rate drop and renaming stalls.
 */

#include <algorithm>

#include "coproc/tables.hh"
#include "policy/models.hh"

namespace occamy::policy
{

void
TemporalModel::tuneCoreConfig(MachineConfig &core_cfg) const
{
    // The single full-width unit's load/store queues are statically
    // split between the cores (SMT-style), so each core sees a
    // fraction of the per-core queue capacity.
    core_cfg.loadQueueEntries =
        std::max(1u, core_cfg.loadQueueEntries / core_cfg.numCores);
    core_cfg.storeQueueEntries =
        std::max(1u, core_cfg.storeQueueEntries / core_cfg.numCores);
}

bool
TemporalModel::issueEligible(const ResourceTable &rt, CoreId c) const
{
    (void)rt;
    (void)c;
    // Full-width execution: no ownership, so vl == 0 never gates issue.
    return true;
}

VlOutcome
TemporalModel::resolveVl(const MachineConfig &cfg, const ResourceTable &rt,
                         CoreId c, unsigned requested, bool drained) const
{
    (void)c;
    (void)requested;
    (void)drained;
    (void)cfg;
    // A full-width unit shared in time: <VL> is the machine width —
    // whatever of it still works after hard faults.
    return VlOutcome::grant(rt.usableBus());
}

unsigned
TemporalModel::compilerFixedVl(const MachineConfig &cfg,
                               unsigned fixed_vl_bus) const
{
    (void)fixed_vl_bus;
    return cfg.numExeBUs;
}

double
TemporalModel::regfileAreaScale(unsigned cores) const
{
    // Section 7.6: past 2 cores FTS keeps a full-width architectural
    // context per core, growing the register file with the core count
    // (the +33.5% Fig. 12 charges to FTS at 4 cores).
    return cores > 2 ? static_cast<double>(cores) : 1.0;
}

SharingModel *
makeTemporalModel()
{
    return new TemporalModel();
}

} // namespace occamy::policy
