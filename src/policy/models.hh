/**
 * @file
 * The concrete sharing models: the four paper architectures (Fig. 1)
 * plus the work-conserving VLS extension. Declared together so
 * extensions can subclass a paper policy (VLS-WC refines VLS) and so
 * registry.cc can instantiate them explicitly — static self-
 * registration would risk the linker dropping unreferenced objects
 * from the static library.
 */

#ifndef OCCAMY_POLICY_MODELS_HH
#define OCCAMY_POLICY_MODELS_HH

#include "policy/sharing_model.hh"

namespace occamy::policy
{

/** Core-private fixed-width SIMD units (Fig. 1a). */
class PrivateModel : public SharingModel
{
  public:
    PrivateModel() : SharingModel(SharingPolicy::Private, "private") {}

    BootOwnership bootOwnership() const override
    {
        return BootOwnership::StaticPlan;
    }
    VlOutcome resolveVl(const MachineConfig &cfg, const ResourceTable &rt,
                        CoreId c, unsigned requested,
                        bool drained) const override;
    unsigned compilerFixedVl(const MachineConfig &cfg,
                             unsigned fixed_vl_bus) const override;
    unsigned perCoreFixedVl(const MachineConfig &cfg,
                            CoreId c) const override;
    bool hasManagerBlock() const override { return false; }
};

/** Fine temporal sharing of one full-width unit, "FTS" (Fig. 1b). */
class TemporalModel : public SharingModel
{
  public:
    TemporalModel()
        : SharingModel(SharingPolicy::Temporal, "fts", {"temporal"})
    {
    }

    void tuneCoreConfig(MachineConfig &core_cfg) const override;
    BootOwnership bootOwnership() const override
    {
        return BootOwnership::FullWidthNoOwnership;
    }
    bool fullWidthExecution() const override { return true; }
    bool sharedIssueBudgets() const override { return true; }
    bool sharedRegfilePool() const override { return true; }
    bool drainIncludesLsu() const override { return false; }
    bool issueEligible(const ResourceTable &rt, CoreId c) const override;
    VlOutcome resolveVl(const MachineConfig &cfg, const ResourceTable &rt,
                        CoreId c, unsigned requested,
                        bool drained) const override;
    unsigned compilerFixedVl(const MachineConfig &cfg,
                             unsigned fixed_vl_bus) const override;
    double regfileAreaScale(unsigned cores) const override;
};

/** Static spatial partitioning of the lanes, "VLS" (Fig. 1c). */
class StaticSpatialModel : public SharingModel
{
  public:
    StaticSpatialModel()
        : SharingModel(SharingPolicy::StaticSpatial, "vls", {"static"})
    {
    }

    BootOwnership bootOwnership() const override
    {
        return BootOwnership::StaticPlan;
    }
    bool wantsOfflineStaticPlan() const override { return true; }
    void resolveStaticPlan(
        MachineConfig &cfg,
        const std::vector<std::vector<PhaseOI>> &phase_ois,
        const std::vector<bool> &will_run) const override;
    VlOutcome resolveVl(const MachineConfig &cfg, const ResourceTable &rt,
                        CoreId c, unsigned requested,
                        bool drained) const override;
    unsigned compilerFixedVl(const MachineConfig &cfg,
                             unsigned fixed_vl_bus) const override;
    unsigned perCoreFixedVl(const MachineConfig &cfg,
                            CoreId c) const override;

  protected:
    /** For refinements that keep VLS's offline plan but change the
     *  run-time discipline (VLS-WC). */
    using SharingModel::SharingModel;
};

/** Occamy's elastic spatial sharing (Fig. 1d). */
class ElasticModel : public SharingModel
{
  public:
    ElasticModel()
        : SharingModel(SharingPolicy::Elastic, "occamy", {"elastic"})
    {
    }

    bool usesLaneManager() const override { return true; }
    VlOutcome resolveVl(const MachineConfig &cfg, const ResourceTable &rt,
                        CoreId c, unsigned requested,
                        bool drained) const override;
    CodegenTraits codegen() const override { return CodegenTraits{}; }
    unsigned compilerFixedVl(const MachineConfig &cfg,
                             unsigned fixed_vl_bus) const override;
};

SharingModel *makePrivateModel();
SharingModel *makeTemporalModel();
SharingModel *makeStaticSpatialModel();
SharingModel *makeElasticModel();
SharingModel *makeVlsWcModel();

} // namespace occamy::policy

#endif // OCCAMY_POLICY_MODELS_HH
