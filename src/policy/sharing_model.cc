#include "policy/sharing_model.hh"

#include "coproc/tables.hh"

namespace occamy::policy
{

void
SharingModel::resolveStaticPlan(
    MachineConfig &cfg, const std::vector<std::vector<PhaseOI>> &phase_ois,
    const std::vector<bool> &will_run) const
{
    (void)cfg;
    (void)phase_ois;
    (void)will_run;
}

bool
SharingModel::issueEligible(const ResourceTable &rt, CoreId c) const
{
    // Spatial designs: a core with no lanes has nothing to issue to
    // until a reconfiguration grants some again.
    return rt.core(c).vl > 0;
}

unsigned
bootShare(const MachineConfig &cfg, CoreId c)
{
    return cfg.staticPlan.empty() ? cfg.busShare(c) : cfg.staticPlan[c];
}

} // namespace occamy::policy
