/**
 * @file
 * The SharingModel strategy layer: one object per SIMD sharing
 * architecture (Fig. 1) owning every policy-conditional behavior that
 * used to live in `switch (cfg.policy)` blocks across the co-processor,
 * system, compiler, register file and area model.
 *
 * The split follows the paper's own taxonomy:
 *  - boot-time lane ownership and offline partition planning (§7.1);
 *  - structural sharing of the issue budgets, LSU queues and physical
 *    register pool (FTS, §2);
 *  - VL-request resolution with grant/reject/wait semantics (§4.2.2);
 *  - the EM-SIMD code-insertion strategy (§6, Fig. 9);
 *  - area-model hooks (§7.3, Fig. 12).
 *
 * Adding a sharing scheme means subclassing SharingModel in one new
 * translation unit and registering it in registry.cc; nothing outside
 * src/policy/ branches on the policy enum (a CI lint enforces this).
 * The registry is name-keyed so command-line tools select policies by
 * string (`--policy vls-wc`).
 */

#ifndef OCCAMY_POLICY_SHARING_MODEL_HH
#define OCCAMY_POLICY_SHARING_MODEL_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "isa/inst.hh"

namespace occamy
{

class ResourceTable;

namespace policy
{

/** How the co-processor assigns ExeBUs/RegBlks at boot. */
enum class BootOwnership
{
    /** All lanes start free; workload prologues claim them (Elastic). */
    AllFree,
    /** Each core owns its boot share up front (Private / VLS). */
    StaticPlan,
    /** No ownership: every instruction executes full-width (FTS). */
    FullWidthNoOwnership,
};

/** Outcome of resolving a <VL> write request (Section 4.2.2). */
struct VlOutcome
{
    enum class Action
    {
        Grant,      ///< Write succeeds; vl is the granted width in BUs.
        Reject,     ///< <status> = false; software retries (Fig. 9).
        Wait,       ///< Head stalls until the core's pipeline drains.
    };

    Action action = Action::Reject;
    unsigned vl = 0;    ///< Granted vector length in BUs (Grant only).

    static VlOutcome grant(unsigned vl) { return {Action::Grant, vl}; }
    static VlOutcome reject() { return {Action::Reject, 0}; }
    static VlOutcome wait() { return {Action::Wait, 0}; }
};

/**
 * The compiler's per-policy code-insertion strategy (Fig. 9): which
 * EM-SIMD blocks to emit around the vectorized loop. Defaults describe
 * the full elastic structure; fixed-VL policies switch everything off.
 */
struct CodegenTraits
{
    /** Emit MSR <OI> in the phase prologue and MSR <OI>,0 in the
     *  epilogue (phase begin/end notification to the Manager). */
    bool phaseOi = true;

    /** Emit the lazy-partitioning blocks: the per-iteration partition
     *  monitor (MRS <decision>), the reconfiguration retry loop
     *  (MSR <VL>, <decision>) and the re-init block (§6.4). */
    bool monitor = true;

    /** Emit the epilogue lane release (MSR <VL>,0). */
    bool releaseLanes = true;

    /** Default VL = roofline knee capped at the fair share (§6.2);
     *  false = the fixed per-core VL configured at compile time. */
    bool kneeDefaultVl = true;

    static CodegenTraits fixedVl()
    {
        return CodegenTraits{false, false, false, false};
    }
};

/**
 * Strategy interface for one SIMD sharing architecture. Instances are
 * immutable singletons owned by the registry; all mutable state stays
 * in the components that consult them.
 */
class SharingModel
{
  public:
    SharingModel(SharingPolicy id, const char *key,
                 std::vector<std::string> aliases = {})
        : id_(id), key_(key), aliases_(std::move(aliases))
    {
    }

    virtual ~SharingModel() = default;

    SharingModel(const SharingModel &) = delete;
    SharingModel &operator=(const SharingModel &) = delete;

    /** Enum identity (kept for compact storage in results/configs). */
    SharingPolicy id() const { return id_; }

    /** Canonical registry key, e.g. "vls-wc" (lowercase, stable). */
    const char *key() const { return key_; }

    /** Alternate accepted names (e.g. "temporal" for "fts"). */
    const std::vector<std::string> &aliases() const { return aliases_; }

    /** The paper's display name (Private/FTS/VLS/Occamy/...). */
    const char *paperName() const { return policyName(id_); }

    // --- Boot / configuration hooks. ---

    /** Adjust the per-core structure sizing before the co-processor
     *  builds its cores (FTS statically splits the LSU queues). */
    virtual void tuneCoreConfig(MachineConfig &core_cfg) const
    {
        (void)core_cfg;
    }

    /** Boot-time ExeBU/RegBlk ownership discipline. */
    virtual BootOwnership bootOwnership() const
    {
        return BootOwnership::AllFree;
    }

    /** True when the System must compute an offline static lane plan
     *  before construction (VLS-style policies, §7.1). */
    virtual bool wantsOfflineStaticPlan() const { return false; }

    /**
     * Fill cfg.staticPlan from the workloads' phase OIs. @p will_run
     * flags cores that start empty but will receive batch-queued work
     * and therefore still need a share. Only called when
     * wantsOfflineStaticPlan() and the config carries no plan.
     */
    virtual void resolveStaticPlan(
        MachineConfig &cfg,
        const std::vector<std::vector<PhaseOI>> &phase_ois,
        const std::vector<bool> &will_run) const;

    // --- Structural sharing (the FTS axis). ---

    /** One full-width unit: allocatedLanes == machine width and <VL>
     *  writes bypass the ownership tables. */
    virtual bool fullWidthExecution() const { return false; }

    /** Issue budgets are machine-wide and arbitrated round-robin
     *  instead of per-core. */
    virtual bool sharedIssueBudgets() const { return false; }

    /** One shared physical register pool with pinned full-width
     *  per-core contexts instead of per-core RegBlk pools. */
    virtual bool sharedRegfilePool() const { return false; }

    /** Whether coreDrained() requires the LSU queues to be empty
     *  (FTS context switches don't wait for them). */
    virtual bool drainIncludesLsu() const { return true; }

    /** May core @p c issue from its IQ this cycle? */
    virtual bool issueEligible(const ResourceTable &rt, CoreId c) const;

    // --- Run-time repartitioning. ---

    /** True when the LaneMgr produces partition plans (Elastic). */
    virtual bool usesLaneManager() const { return false; }

    /**
     * Recompute the per-core <decision> registers after an ownership
     * or phase event (a <VL> retarget or an MSR <OI>). Policies with a
     * plan engine of their own (the LaneMgr) leave this a no-op;
     * simple rule-based policies (VLS-WC) publish decisions here so
     * fast-forwarded and ticked runs see identical register state.
     */
    virtual void updateDecisions(const MachineConfig &cfg,
                                 ResourceTable &rt) const
    {
        (void)cfg;
        (void)rt;
    }

    /**
     * Resolve a <VL> write of @p requested BUs by core @p c
     * (Section 4.2.2). Pure: the caller applies the outcome.
     */
    virtual VlOutcome resolveVl(const MachineConfig &cfg,
                                const ResourceTable &rt, CoreId c,
                                unsigned requested,
                                bool drained) const = 0;

    /**
     * An ExeBU went permanently offline (hard fault). Called after the
     * co-processor has already excluded @p unit from both Cfg tables
     * and shrunk the resource table (<AL> if the unit was free, the
     * owner's <VL> otherwise), so rt.usableBus() reflects the degraded
     * machine. Policies adjust their entitlement state here: the
     * default re-publishes <decision> via updateDecisions(); the
     * elastic policy additionally re-invokes the LaneMgr (the
     * co-processor schedules that re-plan when usesLaneManager()).
     *
     * @param owner The evicted owner, or kNoCore if the unit was free.
     */
    virtual void onLaneFault(const MachineConfig &cfg, ResourceTable &rt,
                             unsigned unit, CoreId owner) const
    {
        (void)unit;
        (void)owner;
        updateDecisions(cfg, rt);
    }

    // --- Compiler strategy (§6). ---

    /** Which EM-SIMD code blocks the compiler emits (Fig. 9). */
    virtual CodegenTraits codegen() const
    {
        return CodegenTraits::fixedVl();
    }

    /**
     * The compiled fixed vector length in BUs. @p fixed_vl_bus is the
     * caller's per-core override (0 = none); policies that negotiate
     * at run time return 0.
     */
    virtual unsigned compilerFixedVl(const MachineConfig &cfg,
                                     unsigned fixed_vl_bus) const = 0;

    /** The per-core fixed VL the System passes when compiling core
     *  @p c's workload (0 = let compilerFixedVl pick a default). */
    virtual unsigned perCoreFixedVl(const MachineConfig &cfg,
                                    CoreId c) const
    {
        (void)cfg;
        (void)c;
        return 0;
    }

    // --- Area-model hooks (§7.3). ---

    /** Register-file area multiplier at @p cores cores (FTS pays
     *  per-core full-width contexts past 2 cores, §7.6). */
    virtual double regfileAreaScale(unsigned cores) const
    {
        (void)cores;
        return 1.0;
    }

    /** Whether the design includes the Manager block (everything but
     *  Private, Fig. 12). */
    virtual bool hasManagerBlock() const { return true; }

  private:
    SharingPolicy id_;
    const char *key_;
    std::vector<std::string> aliases_;
};

/** The boot-time share of core @p c under a static-ownership policy:
 *  the configured plan entry, or an equal split with the remainder
 *  ExeBUs spread deterministically over the lowest-numbered cores. */
unsigned bootShare(const MachineConfig &cfg, CoreId c);

// --- Registry (name-keyed; registration order is presentation order). ---

/** The model implementing @p p. Never null: every enum value is
 *  registered at startup. */
const SharingModel &model(SharingPolicy p);

/** Look up a model by registry key or alias; nullptr when unknown. */
const SharingModel *modelByName(std::string_view name);

/** All registered models, in registration order (the four paper
 *  architectures first, extensions after). */
const std::vector<const SharingModel *> &allModels();

} // namespace policy
} // namespace occamy

#endif // OCCAMY_POLICY_SHARING_MODEL_HH
