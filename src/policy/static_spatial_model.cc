/**
 * @file
 * VLS (Fig. 1c): static spatial partitioning. The lane split is
 * computed offline from every workload's most demanding phase
 * (staticPartition, §7.1) and never changes at run time.
 */

#include <algorithm>

#include "coproc/tables.hh"
#include "lanemgr/partitioner.hh"
#include "policy/models.hh"

namespace occamy::policy
{

void
StaticSpatialModel::resolveStaticPlan(
    MachineConfig &cfg, const std::vector<std::vector<PhaseOI>> &phase_ois,
    const std::vector<bool> &will_run) const
{
    const RooflineParams params = RooflineParams::fromConfig(cfg);
    cfg.staticPlan = staticPartition(params, phase_ois, cfg.numExeBUs);
    // Cores that start empty but will receive batch-queued workloads
    // need a static share too: VLS cannot adapt at dispatch time, so
    // they get an equal split of the leftovers.
    unsigned used = 0;
    for (unsigned share : cfg.staticPlan)
        used += share;
    unsigned needy = 0;
    for (unsigned c = 0; c < cfg.numCores; ++c)
        if (cfg.staticPlan[c] == 0 && will_run[c])
            ++needy;
    for (unsigned c = 0; c < cfg.numCores && needy; ++c) {
        if (cfg.staticPlan[c] == 0 && will_run[c]) {
            cfg.staticPlan[c] =
                std::max(1u, (cfg.numExeBUs - used) / needy);
        }
    }
}

VlOutcome
StaticSpatialModel::resolveVl(const MachineConfig &cfg,
                              const ResourceTable &rt, CoreId c,
                              unsigned requested, bool drained) const
{
    (void)cfg;
    (void)drained;
    // The offline partition never changes by request: a write is
    // satisfied with the core's current entitlement (== its static plan
    // entry unfaulted, something smaller after a lane fault shrank it).
    // Zero entitlement rejects forever; the watchdog handles escalation.
    const unsigned vl = rt.core(c).vl;
    if (vl > 0 && requested >= vl)
        return VlOutcome::grant(vl);
    return VlOutcome::reject();
}

unsigned
StaticSpatialModel::compilerFixedVl(const MachineConfig &cfg,
                                    unsigned fixed_vl_bus) const
{
    return fixed_vl_bus ? fixed_vl_bus : cfg.numExeBUs / cfg.numCores;
}

unsigned
StaticSpatialModel::perCoreFixedVl(const MachineConfig &cfg,
                                   CoreId c) const
{
    return cfg.staticPlan.empty() ? 0 : cfg.staticPlan[c];
}

SharingModel *
makeStaticSpatialModel()
{
    return new StaticSpatialModel();
}

} // namespace occamy::policy
