/**
 * @file
 * Private (Fig. 1a): each core owns a fixed share of the ExeBUs for
 * the machine's lifetime. <VL> writes can only confirm the boot-time
 * width; there is no Manager block to pay area for.
 */

#include "coproc/tables.hh"
#include "policy/models.hh"

namespace occamy::policy
{

VlOutcome
PrivateModel::resolveVl(const MachineConfig &cfg, const ResourceTable &rt,
                        CoreId c, unsigned requested, bool drained) const
{
    (void)cfg;
    (void)drained;
    // The partition never changes by request: a write is satisfied with
    // the core's current entitlement. Unfaulted this is exactly the
    // boot-time share the compiler hard-coded (grant == requested); after
    // a lane fault the entitlement has shrunk and the request is granted
    // at the degraded width. A core faulted to zero ExeBUs is rejected
    // forever — the watchdog escalates it to the scalar fallback.
    const unsigned vl = rt.core(c).vl;
    if (vl > 0 && requested >= vl)
        return VlOutcome::grant(vl);
    return VlOutcome::reject();
}

unsigned
PrivateModel::compilerFixedVl(const MachineConfig &cfg,
                              unsigned fixed_vl_bus) const
{
    return fixed_vl_bus ? fixed_vl_bus : cfg.numExeBUs / cfg.numCores;
}

unsigned
PrivateModel::perCoreFixedVl(const MachineConfig &cfg, CoreId c) const
{
    return bootShare(cfg, c);
}

SharingModel *
makePrivateModel()
{
    return new PrivateModel();
}

} // namespace occamy::policy
