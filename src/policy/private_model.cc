/**
 * @file
 * Private (Fig. 1a): each core owns a fixed share of the ExeBUs for
 * the machine's lifetime. <VL> writes can only confirm the boot-time
 * width; there is no Manager block to pay area for.
 */

#include "coproc/tables.hh"
#include "policy/models.hh"

namespace occamy::policy
{

VlOutcome
PrivateModel::resolveVl(const MachineConfig &cfg, const ResourceTable &rt,
                        CoreId c, unsigned requested, bool drained) const
{
    (void)cfg;
    (void)drained;
    // The boot-time partition never changes.
    if (requested == rt.core(c).vl)
        return VlOutcome::grant(requested);
    return VlOutcome::reject();
}

unsigned
PrivateModel::compilerFixedVl(const MachineConfig &cfg,
                              unsigned fixed_vl_bus) const
{
    return fixed_vl_bus ? fixed_vl_bus : cfg.numExeBUs / cfg.numCores;
}

unsigned
PrivateModel::perCoreFixedVl(const MachineConfig &cfg, CoreId c) const
{
    return bootShare(cfg, c);
}

SharingModel *
makePrivateModel()
{
    return new PrivateModel();
}

} // namespace occamy::policy
