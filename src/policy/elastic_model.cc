/**
 * @file
 * Occamy (Fig. 1d): elastic spatial sharing. Lanes start free and are
 * negotiated at run time by EM-SIMD instructions under LaneMgr
 * guidance; <VL> writes follow Section 4.2.2's grant/reject/wait
 * discipline with pipeline-drain semantics.
 */

#include "coproc/tables.hh"
#include "policy/models.hh"

namespace occamy::policy
{

VlOutcome
ElasticModel::resolveVl(const MachineConfig &cfg, const ResourceTable &rt,
                        CoreId c, unsigned requested, bool drained) const
{
    (void)cfg;
    if (requested == rt.core(c).vl)
        return VlOutcome::grant(requested);
    if (requested > rt.core(c).vl + rt.al()) {
        // Not enough free lanes (Section 4.2.2 condition (1)).
        return VlOutcome::reject();
    }
    if (!drained) {
        // Wait at the head of the EM-SIMD queue until the SIMD
        // pipeline of this core is drained (condition (2)).
        return VlOutcome::wait();
    }
    return VlOutcome::grant(requested);
}

unsigned
ElasticModel::compilerFixedVl(const MachineConfig &cfg,
                              unsigned fixed_vl_bus) const
{
    (void)cfg;
    (void)fixed_vl_bus;
    // VL is negotiated at run time; nothing is fixed at compile time.
    return 0;
}

SharingModel *
makeElasticModel()
{
    return new ElasticModel();
}

} // namespace occamy::policy
