/**
 * @file
 * VLS-WC: work-conserving static spatial partitioning — the natural
 * ablation point between VLS (Fig. 1c) and Occamy (Fig. 1d).
 *
 * Like VLS, each core holds a statically computed *entitlement* of
 * ExeBUs (the offline staticPartition plan). Unlike VLS, an idle
 * core's entitlement does not sit dark: the <decision> registers are
 * recomputed on every phase event (MSR <OI>) and ownership change so
 * active cores are offered their entitlement plus an equal split of
 * every idle entitlement and unassigned unit. Borrowing rides the
 * stock elastic machinery — phase prologues request the entitlement,
 * the partition monitor picks up a grown <decision> at the next lazy
 * point, and reconfiguration keeps drain-before-resize semantics.
 *
 * Reclaim needs no new hardware either: a returning owner's prologue
 * MSR <VL> is rejected while its lanes are lent out (Fig. 9's retry
 * loop spins), the borrower's next monitor sees its shrunken
 * <decision> and releases, and the owner's retry then succeeds.
 * Decision updates are eager (event-driven), never per-tick, so
 * fast-forwarded and ticked runs remain byte-identical.
 *
 * The entire policy lives in this one file plus a registry line —
 * the extensibility proof for the SharingModel layer.
 */

#include "coproc/tables.hh"
#include "policy/models.hh"

namespace occamy::policy
{

namespace
{

/** VLS-WC: VLS's offline plan, Occamy's run-time request machinery. */
class VlsWcModel : public StaticSpatialModel
{
  public:
    VlsWcModel()
        : StaticSpatialModel(SharingPolicy::StaticSpatialWC, "vls-wc",
                             {"vlswc", "static-wc"})
    {
    }

    /** Lanes start free; each prologue claims the core's entitlement
     *  (unlike VLS, ownership follows phase activity). */
    BootOwnership bootOwnership() const override
    {
        return BootOwnership::AllFree;
    }

    /** Full elastic code structure, but the default VL is the static
     *  entitlement rather than the roofline knee: a work-conserving
     *  VLS still partitions by the offline plan when all cores run. */
    CodegenTraits codegen() const override
    {
        CodegenTraits t;
        t.kneeDefaultVl = false;
        return t;
    }

    void
    updateDecisions(const MachineConfig &cfg,
                    ResourceTable &rt) const override
    {
        const unsigned n = rt.numCores();
        // Partition over what still works: hard faults shrink the pool
        // (usableBus == numExeBUs while unfaulted).
        const unsigned usable = rt.usableBus();
        unsigned active = 0;
        unsigned entitled = 0;
        for (unsigned c = 0; c < n; ++c) {
            if (rt.core(static_cast<CoreId>(c)).oi.active()) {
                ++active;
                entitled += entitlement(cfg, static_cast<CoreId>(c));
            }
        }
        if (active == 0) {
            for (unsigned c = 0; c < n; ++c)
                rt.core(static_cast<CoreId>(c)).decision = 0;
            return;
        }
        if (entitled > usable) {
            // Degraded machine: the offline entitlements no longer fit.
            // Shrink them proportionally (floor), handing the remainder
            // to the lowest-numbered active cores — deterministic, and
            // decisions still sum to the usable width.
            std::vector<unsigned> share(n, 0);
            unsigned given = 0;
            for (unsigned c = 0; c < n; ++c) {
                const auto &pc = rt.core(static_cast<CoreId>(c));
                if (!pc.oi.active())
                    continue;
                share[c] = entitlement(cfg, static_cast<CoreId>(c)) *
                           usable / entitled;
                given += share[c];
            }
            unsigned remainder = usable - given;
            for (unsigned c = 0; c < n && remainder; ++c) {
                if (rt.core(static_cast<CoreId>(c)).oi.active()) {
                    ++share[c];
                    --remainder;
                }
            }
            for (unsigned c = 0; c < n; ++c)
                rt.core(static_cast<CoreId>(c)).decision = share[c];
            return;
        }
        // Everything not entitled to an active core is the loan pool:
        // idle entitlements plus units the offline plan left
        // unassigned. Split it equally, remainder to the
        // lowest-numbered active cores, so decisions are deterministic
        // and always sum to the machine width.
        const unsigned pool = usable - entitled;
        const unsigned extra = pool / active;
        unsigned remainder = pool % active;
        for (unsigned c = 0; c < n; ++c) {
            auto &pc = rt.core(static_cast<CoreId>(c));
            if (!pc.oi.active()) {
                pc.decision = 0;
                continue;
            }
            unsigned d = entitlement(cfg, static_cast<CoreId>(c)) + extra;
            if (remainder > 0) {
                ++d;
                --remainder;
            }
            pc.decision = d;
        }
    }

    VlOutcome
    resolveVl(const MachineConfig &cfg, const ResourceTable &rt, CoreId c,
              unsigned requested, bool drained) const override
    {
        (void)cfg;
        // Same discipline as Occamy (Section 4.2.2): grants bounded by
        // free lanes, shrink/grow only across a drained pipeline. A
        // returning owner is rejected while its lanes are lent out and
        // retries until the borrower's monitor releases them.
        if (requested == rt.core(c).vl)
            return VlOutcome::grant(requested);
        if (requested > rt.core(c).vl + rt.al())
            return VlOutcome::reject();
        if (!drained)
            return VlOutcome::wait();
        return VlOutcome::grant(requested);
    }

  private:
    static unsigned
    entitlement(const MachineConfig &cfg, CoreId c)
    {
        return bootShare(cfg, c);
    }
};

} // namespace

SharingModel *
makeVlsWcModel()
{
    return new VlsWcModel();
}

} // namespace occamy::policy
