/**
 * @file
 * The name-keyed sharing-model registry. Models are constructed once,
 * explicitly, in presentation order — the four paper architectures
 * first, extensions after. Explicit construction (instead of static
 * self-registration) keeps the registry immune to the linker dropping
 * unreferenced translation units from the static library.
 */

#include <cassert>

#include "policy/models.hh"

namespace occamy::policy
{

const std::vector<const SharingModel *> &
allModels()
{
    static const std::vector<const SharingModel *> models = {
        makePrivateModel(),
        makeTemporalModel(),
        makeStaticSpatialModel(),
        makeElasticModel(),
        makeVlsWcModel(),
    };
    return models;
}

const SharingModel &
model(SharingPolicy p)
{
    for (const SharingModel *m : allModels())
        if (m->id() == p)
            return *m;
    assert(false && "unregistered sharing policy");
    return *allModels().front();
}

const SharingModel *
modelByName(std::string_view name)
{
    for (const SharingModel *m : allModels()) {
        if (name == m->key())
            return m;
        for (const std::string &alias : m->aliases())
            if (name == alias)
                return m;
    }
    return nullptr;
}

} // namespace occamy::policy
