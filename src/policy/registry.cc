/**
 * @file
 * The name-keyed sharing-model registry. Models are constructed once,
 * explicitly, in presentation order — the four paper architectures
 * first, extensions after. Explicit construction (instead of static
 * self-registration) keeps the registry immune to the linker dropping
 * unreferenced translation units from the static library.
 */

#include <cassert>
#include <memory>

#include "policy/models.hh"

namespace occamy::policy
{

const std::vector<const SharingModel *> &
allModels()
{
    // The models are owned here so LeakSanitizer sees them reclaimed
    // at exit; the raw-pointer view is what the rest of the tree uses.
    static const std::vector<std::unique_ptr<const SharingModel>> owned =
        [] {
            std::vector<std::unique_ptr<const SharingModel>> v;
            v.emplace_back(makePrivateModel());
            v.emplace_back(makeTemporalModel());
            v.emplace_back(makeStaticSpatialModel());
            v.emplace_back(makeElasticModel());
            v.emplace_back(makeVlsWcModel());
            return v;
        }();
    static const std::vector<const SharingModel *> models = [] {
        std::vector<const SharingModel *> v;
        for (const auto &m : owned)
            v.push_back(m.get());
        return v;
    }();
    return models;
}

const SharingModel &
model(SharingPolicy p)
{
    for (const SharingModel *m : allModels())
        if (m->id() == p)
            return *m;
    assert(false && "unregistered sharing policy");
    return *allModels().front();
}

const SharingModel *
modelByName(std::string_view name)
{
    for (const SharingModel *m : allModels()) {
        if (name == m->key())
            return m;
        for (const std::string &alias : m->aliases())
            if (name == alias)
                return m;
    }
    return nullptr;
}

} // namespace occamy::policy
