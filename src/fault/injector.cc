#include "fault/injector.hh"

#include <algorithm>

#include "ckpt/ckpt.hh"
#include "obs/sink.hh"

namespace occamy::fault
{

FaultInjector::FaultInjector(const FaultPlan &plan, unsigned num_exebus)
{
    for (const FaultSpec &s : plan.faults) {
        if (s.kind == FaultKind::LaneFault) {
            if (s.unit < num_exebus)
                lane_events_.push_back({s.at, s.unit, false});
        } else {
            windows_.push_back({s, false, false});
        }
    }
    std::sort(lane_events_.begin(), lane_events_.end(),
              [](const LaneEvent &a, const LaneEvent &b) {
                  return a.at != b.at ? a.at < b.at : a.unit < b.unit;
              });
}

std::vector<unsigned>
FaultInjector::takeDueLaneFaults(Cycle now)
{
    std::vector<unsigned> due;
    for (LaneEvent &e : lane_events_) {
        if (e.at > now)
            break;
        if (!e.fired) {
            e.fired = true;
            due.push_back(e.unit);
        }
    }
    return due;
}

bool
FaultInjector::vlDenied(CoreId core, Cycle now) const
{
    for (const Window &w : windows_) {
        if (w.spec.kind != FaultKind::VlDenial || !w.activeAt(now))
            continue;
        if (w.spec.core == kNoCore || w.spec.core == core)
            return true;
    }
    return false;
}

unsigned
FaultInjector::dramExtraLatency(Cycle now) const
{
    unsigned extra = 0;
    for (const Window &w : windows_)
        if (w.spec.kind == FaultKind::DramSpike && w.activeAt(now))
            extra += w.spec.extraLatency;
    return extra;
}

unsigned
FaultInjector::dramBandwidthDivisor(Cycle now) const
{
    unsigned div = 1;
    for (const Window &w : windows_)
        if (w.spec.kind == FaultKind::DramSpike && w.activeAt(now))
            div = std::max(div, w.spec.bwDivisor);
    return div;
}

Cycle
FaultInjector::reconfigExtraDelay(CoreId core, Cycle now) const
{
    Cycle delay = 0;
    for (const Window &w : windows_) {
        if (w.spec.kind != FaultKind::ReconfigDelay || !w.activeAt(now))
            continue;
        if (w.spec.core == kNoCore || w.spec.core == core)
            delay = std::max(delay, w.spec.delayCycles);
    }
    return delay;
}

Cycle
FaultInjector::nextEventAt(Cycle now) const
{
    Cycle next = kCycleNever;
    auto consider = [&next, now](Cycle c) {
        if (c > now && c < next)
            next = c;
    };
    for (const LaneEvent &e : lane_events_) {
        if (!e.fired)
            consider(std::max(e.at, now + 1));
    }
    for (const Window &w : windows_) {
        consider(w.spec.at);
        if (w.spec.duration != 0)
            consider(w.spec.at + w.spec.duration);
    }
    return next;
}

void
FaultInjector::emitBoundaryEvents(Cycle now, obs::EventSink *sink)
{
    if (!sink)
        return;
    for (Window &w : windows_) {
        if (!w.beginEmitted && now >= w.spec.at) {
            w.beginEmitted = true;
            std::uint64_t detail = 0;
            switch (w.spec.kind) {
              case FaultKind::VlDenial:
                detail = w.spec.duration;
                break;
              case FaultKind::DramSpike:
                detail = w.spec.extraLatency;
                break;
              case FaultKind::ReconfigDelay:
                detail = w.spec.delayCycles;
                break;
              case FaultKind::LaneFault:
                break;  // not a window
            }
            sink->record({w.spec.at, obs::EventKind::FaultInject,
                          w.spec.core,
                          static_cast<std::uint64_t>(w.spec.kind), detail,
                          0.0, 0.0});
        }
        if (!w.endEmitted && w.spec.duration != 0 &&
            now >= w.spec.at + w.spec.duration) {
            w.endEmitted = true;
            sink->record({w.spec.at + w.spec.duration,
                          obs::EventKind::FaultRecover, w.spec.core,
                          static_cast<std::uint64_t>(w.spec.kind),
                          w.spec.at, 0.0, 0.0});
        }
    }
}

void
FaultInjector::save(ckpt::Writer &w) const
{
    w.section("injector");
    w.u64(lane_events_.size());
    for (const LaneEvent &e : lane_events_)
        w.b(e.fired);
    w.u64(windows_.size());
    for (const Window &win : windows_) {
        w.b(win.beginEmitted);
        w.b(win.endEmitted);
    }
}

void
FaultInjector::load(ckpt::Reader &r)
{
    r.expectSection("injector");
    ckpt::Reader::check(r.arr() == lane_events_.size(),
                        "checkpoint fault plan mismatch (lane events)");
    for (LaneEvent &e : lane_events_)
        e.fired = r.b();
    ckpt::Reader::check(r.arr() == windows_.size(),
                        "checkpoint fault plan mismatch (windows)");
    for (Window &win : windows_) {
        win.beginEmitted = r.b();
        win.endEmitted = r.b();
    }
}

} // namespace occamy::fault
