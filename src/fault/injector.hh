/**
 * @file
 * Runtime delivery of a FaultPlan.
 *
 * The FaultInjector is the single stateful object a simulation consults
 * about faults. Components query it with pure-function predicates
 * (vlDenied, dramExtraLatency, ...) keyed only on (target, cycle), so
 * results are independent of tick order and identical between ticked and
 * fast-forwarded runs. The one piece of consumable state — pending ExeBU
 * hard faults — is drained exactly once via takeDueLaneFaults().
 *
 * Fast-forward contract: every cycle at which any injector answer
 * changes (a lane fault fires, a window opens or closes) is reported by
 * nextEventAt(), so the quiescence engine never skips a fault boundary.
 */

#ifndef OCCAMY_FAULT_INJECTOR_HH
#define OCCAMY_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "ckpt/fwd.hh"
#include "common/types.hh"
#include "fault/fault.hh"

namespace occamy::obs
{
class EventSink;
}

namespace occamy::fault
{

class FaultInjector
{
  public:
    /**
     * @param plan The plan to deliver (copied; lane faults aimed at
     *        units >= @p num_exebus are dropped as unmappable).
     * @param num_exebus ExeBU count of the machine under test.
     */
    FaultInjector(const FaultPlan &plan, unsigned num_exebus);

    /**
     * ExeBU hard faults whose trigger cycle has arrived, each returned
     * exactly once, ordered by (trigger cycle, unit). The co-processor
     * calls this at the top of every tick and retires the units.
     */
    std::vector<unsigned> takeDueLaneFaults(Cycle now);

    /** @return true if <VL> requests from @p core are denied at @p now. */
    bool vlDenied(CoreId core, Cycle now) const;

    /** Extra DRAM latency cycles active at @p now (0 = nominal). */
    unsigned dramExtraLatency(Cycle now) const;

    /** DRAM bandwidth divisor active at @p now (1 = nominal). */
    unsigned dramBandwidthDivisor(Cycle now) const;

    /** Added reconfiguration stall for @p core at @p now (0 = none). */
    Cycle reconfigExtraDelay(CoreId core, Cycle now) const;

    /**
     * Next cycle > @p now at which any injector answer changes: a
     * pending lane fault fires, or a transient window opens or closes.
     * kCycleNever once the plan is exhausted.
     */
    Cycle nextEventAt(Cycle now) const;

    /**
     * Emit FaultInject/FaultRecover obs events for transient windows
     * that started (ended) at or before @p now, each exactly once.
     * Lane-fault FaultInject events are emitted by the co-processor at
     * apply time instead (it knows the evicted owner).
     */
    void emitBoundaryEvents(Cycle now, obs::EventSink *sink);

    /** Checkpoint hooks: only the consumable flags (fired lane faults,
     *  emitted window boundaries) — the plan itself is reconstructed
     *  from the run options and cross-checked by the fingerprint. */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

  private:
    struct LaneEvent
    {
        Cycle at;
        unsigned unit;
        bool fired = false;
    };

    /** A [at, at+duration) transient window; duration 0 = unbounded. */
    struct Window
    {
        FaultSpec spec;
        bool beginEmitted = false;
        bool endEmitted = false;

        bool activeAt(Cycle now) const
        {
            if (now < spec.at)
                return false;
            return spec.duration == 0 || now < spec.at + spec.duration;
        }
    };

    std::vector<LaneEvent> lane_events_;   // sorted by (at, unit)
    std::vector<Window> windows_;          // plan order
};

} // namespace occamy::fault

#endif // OCCAMY_FAULT_INJECTOR_HH
