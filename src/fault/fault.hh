/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan is a declarative list of faults to inject into one run:
 * ExeBU hard faults (a lane group goes permanently offline), transient
 * <VL>-grant denials (extended <status>-busy windows), DRAM latency /
 * bandwidth spikes, and delayed Dispatch.Cfg/RegFile.Cfg reconfiguration.
 *
 * Plans are pure data: the same plan applied to the same configuration
 * and workload produces a byte-identical simulation (the injector never
 * consults wall-clock time or global randomness). Plans come from one of
 * two fully deterministic sources:
 *
 *   - FaultPlan::parse() — a compact textual grammar used by the
 *     `--fault-plan` CLI flag, e.g.
 *       "lane@50000:bu=3;vldeny@10000+5000:core=0;dram@20000+10000:lat=200,bw=4"
 *   - FaultPlan::random() — a seeded generator (own xorshift PRNG, never
 *     std:: distributions) used by `--fault-seed` and the fuzz tests.
 */

#ifndef OCCAMY_FAULT_FAULT_HH
#define OCCAMY_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace occamy::fault
{

/** The four fault categories the injector knows how to deliver. */
enum class FaultKind : std::uint8_t
{
    LaneFault,      ///< ExeBU goes permanently offline at `at`.
    VlDenial,       ///< <VL> requests from `core` are denied during the window.
    DramSpike,      ///< DRAM latency/bandwidth degraded during the window.
    ReconfigDelay,  ///< Cfg-table rewrites for `core` stall `delayCycles`.
};

/** One scheduled fault. Fields beyond (kind, at) are kind-specific. */
struct FaultSpec
{
    FaultKind kind = FaultKind::LaneFault;
    Cycle at = 0;            ///< Cycle the fault begins.
    Cycle duration = 0;      ///< Window length; 0 = permanent / unbounded.
    unsigned unit = 0;       ///< LaneFault: ExeBU index to kill.
    CoreId core = kNoCore;   ///< VlDenial/ReconfigDelay target; kNoCore = all.
    unsigned extraLatency = 0;  ///< DramSpike: cycles added to dramLatency.
    unsigned bwDivisor = 1;     ///< DramSpike: dramBytesPerCycle divisor.
    Cycle delayCycles = 0;   ///< ReconfigDelay: added reconfiguration stall.
};

/**
 * An ordered collection of FaultSpecs. Order in `faults` is not
 * significant — the injector sorts events internally — but parse() and
 * random() both produce deterministic orderings so plans round-trip
 * stably through describe().
 */
struct FaultPlan
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /**
     * Parse the `--fault-plan` grammar. Entries are ';'-separated:
     *
     *   kind@at[+duration][:key=value[,key=value...]]
     *
     *   lane@50000:bu=3              kill ExeBU 3 at cycle 50000
     *   vldeny@10000+5000:core=0     deny core 0's <VL> requests for 5000cy
     *   vldeny@10000:core=1          ...forever (no +duration = unbounded)
     *   dram@20000+10000:lat=200,bw=4  +200cy latency, 1/4 bandwidth
     *   cfgdelay@30000+10000:core=0,cycles=64
     *
     * Throws std::invalid_argument on malformed input.
     */
    static FaultPlan parse(const std::string &text);

    /**
     * Deterministically generate a moderate plan from a seed: one lane
     * fault, one or two <VL>-denial windows, one DRAM spike and one
     * reconfiguration delay, all placed within the first ~200k cycles.
     * Same (seed, cfg.numExeBUs, cfg.numCores) => same plan.
     */
    static FaultPlan random(std::uint64_t seed, const MachineConfig &cfg);

    /** Render the plan back into the parse() grammar (diagnostics). */
    std::string describe() const;
};

} // namespace occamy::fault

#endif // OCCAMY_FAULT_FAULT_HH
