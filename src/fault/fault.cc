#include "fault/fault.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace occamy::fault
{

namespace
{

/** splitmix64: seeds the working state so nearby seeds diverge. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** xorshift64*, seeded via splitmix64. Deterministic across platforms. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        state_ = splitmix64(sm);
        if (state_ == 0)
            state_ = 0x2545f4914f6cdd1dULL;
    }

    std::uint64_t next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform in [lo, hi] via modulo — bias is irrelevant here. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

  private:
    std::uint64_t state_;
};

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
        if (ch == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::uint64_t
parseNum(const std::string &s, const std::string &what)
{
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument("fault plan: bad " + what + " '" + s +
                                    "'");
    return std::stoull(s);
}

FaultSpec
parseEntry(const std::string &entry)
{
    // kind@at[+duration][:k=v[,k=v...]]
    std::size_t atPos = entry.find('@');
    if (atPos == std::string::npos)
        throw std::invalid_argument("fault plan: entry '" + entry +
                                    "' missing '@'");
    std::string kindStr = trim(entry.substr(0, atPos));
    std::string rest = entry.substr(atPos + 1);

    std::string kvStr;
    std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
        kvStr = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
    }

    FaultSpec spec;
    std::size_t plus = rest.find('+');
    if (plus != std::string::npos) {
        spec.at = parseNum(trim(rest.substr(0, plus)), "cycle");
        spec.duration = parseNum(trim(rest.substr(plus + 1)), "duration");
        if (spec.duration == 0)
            throw std::invalid_argument(
                "fault plan: explicit +0 duration in '" + entry + "'");
    } else {
        spec.at = parseNum(trim(rest), "cycle");
    }

    if (kindStr == "lane")
        spec.kind = FaultKind::LaneFault;
    else if (kindStr == "vldeny")
        spec.kind = FaultKind::VlDenial;
    else if (kindStr == "dram")
        spec.kind = FaultKind::DramSpike;
    else if (kindStr == "cfgdelay")
        spec.kind = FaultKind::ReconfigDelay;
    else
        throw std::invalid_argument("fault plan: unknown kind '" + kindStr +
                                    "'");

    bool saw_bu = false;
    if (!kvStr.empty()) {
        for (const std::string &kv : split(kvStr, ',')) {
            std::size_t eq = kv.find('=');
            if (eq == std::string::npos)
                throw std::invalid_argument("fault plan: bad option '" + kv +
                                            "'");
            std::string key = trim(kv.substr(0, eq));
            std::uint64_t val = parseNum(trim(kv.substr(eq + 1)), key);
            if (key == "bu") {
                spec.unit = static_cast<unsigned>(val);
                saw_bu = true;
            } else if (key == "core")
                spec.core = static_cast<CoreId>(val);
            else if (key == "lat")
                spec.extraLatency = static_cast<unsigned>(val);
            else if (key == "bw")
                spec.bwDivisor = static_cast<unsigned>(val);
            else if (key == "cycles")
                spec.delayCycles = val;
            else
                throw std::invalid_argument("fault plan: unknown key '" +
                                            key + "'");
        }
    }

    switch (spec.kind) {
      case FaultKind::LaneFault:
        if (spec.duration != 0)
            throw std::invalid_argument(
                "fault plan: lane faults are permanent (no +duration)");
        if (!saw_bu)
            throw std::invalid_argument(
                "fault plan: lane fault needs an explicit bu=");
        break;
      case FaultKind::DramSpike:
        if (spec.extraLatency == 0 && spec.bwDivisor <= 1)
            throw std::invalid_argument(
                "fault plan: dram spike needs lat= and/or bw=");
        if (spec.bwDivisor == 0)
            throw std::invalid_argument("fault plan: bw=0 is invalid");
        break;
      case FaultKind::ReconfigDelay:
        if (spec.delayCycles == 0)
            throw std::invalid_argument(
                "fault plan: cfgdelay needs cycles=");
        break;
      case FaultKind::VlDenial:
        break;
    }
    return spec;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    for (const std::string &raw : split(text, ';')) {
        std::string entry = trim(raw);
        if (entry.empty())
            continue;
        plan.faults.push_back(parseEntry(entry));
    }
    return plan;
}

FaultPlan
FaultPlan::random(std::uint64_t seed, const MachineConfig &cfg)
{
    Rng rng(seed);
    FaultPlan plan;

    // One ExeBU hard fault somewhere in the early run.
    {
        FaultSpec s;
        s.kind = FaultKind::LaneFault;
        s.at = rng.range(10'000, 120'000);
        s.unit = static_cast<unsigned>(rng.range(0, cfg.numExeBUs - 1));
        plan.faults.push_back(s);
    }

    // One or two bounded <VL>-denial windows on random cores.
    const unsigned denials = 1 + static_cast<unsigned>(rng.range(0, 1));
    for (unsigned i = 0; i < denials; ++i) {
        FaultSpec s;
        s.kind = FaultKind::VlDenial;
        s.at = rng.range(5'000, 150'000);
        s.duration = rng.range(2'000, 20'000);
        s.core = static_cast<CoreId>(rng.range(0, cfg.numCores - 1));
        plan.faults.push_back(s);
    }

    // One DRAM spike window.
    {
        FaultSpec s;
        s.kind = FaultKind::DramSpike;
        s.at = rng.range(5'000, 150'000);
        s.duration = rng.range(5'000, 40'000);
        s.extraLatency = static_cast<unsigned>(rng.range(50, 400));
        s.bwDivisor = static_cast<unsigned>(rng.range(1, 4));
        plan.faults.push_back(s);
    }

    // One reconfiguration-delay window.
    {
        FaultSpec s;
        s.kind = FaultKind::ReconfigDelay;
        s.at = rng.range(5'000, 150'000);
        s.duration = rng.range(5'000, 40'000);
        s.core = static_cast<CoreId>(rng.range(0, cfg.numCores - 1));
        s.delayCycles = rng.range(16, 256);
        plan.faults.push_back(s);
    }

    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    bool first = true;
    for (const FaultSpec &s : faults) {
        if (!first)
            os << ";";
        first = false;
        switch (s.kind) {
          case FaultKind::LaneFault:
            os << "lane@" << s.at << ":bu=" << s.unit;
            break;
          case FaultKind::VlDenial:
            os << "vldeny@" << s.at;
            if (s.duration)
                os << "+" << s.duration;
            if (s.core != kNoCore)
                os << ":core=" << s.core;
            break;
          case FaultKind::DramSpike:
            os << "dram@" << s.at;
            if (s.duration)
                os << "+" << s.duration;
            os << ":lat=" << s.extraLatency << ",bw=" << s.bwDivisor;
            break;
          case FaultKind::ReconfigDelay:
            os << "cfgdelay@" << s.at;
            if (s.duration)
                os << "+" << s.duration;
            os << ":";
            if (s.core != kNoCore)
                os << "core=" << s.core << ",";
            os << "cycles=" << s.delayCycles;
            break;
        }
    }
    return os.str();
}

} // namespace occamy::fault
