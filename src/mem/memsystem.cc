#include "mem/memsystem.hh"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "ckpt/ckpt.hh"
#include "fault/injector.hh"

namespace occamy
{

MemSystem::MemSystem(const MachineConfig &cfg)
    : cfg_(cfg),
      vec_cache_("vec_cache", cfg.vecCache),
      l2_("l2", cfg.l2),
      dram_bpc_(cfg.dramBytesPerCycle)
{
}

unsigned
MemSystem::dramLatencyAt(Cycle now) const
{
    if (!injector_)
        return cfg_.dramLatency;
    return cfg_.dramLatency + injector_->dramExtraLatency(now);
}

unsigned
MemSystem::dramBpcAt(Cycle now) const
{
    if (!injector_)
        return dram_bpc_;
    const unsigned div = std::max(1u, injector_->dramBandwidthDivisor(now));
    return std::max(1u, dram_bpc_ / div);
}

void
MemSystem::recordDram(Cycle now, obs::EventKind kind, Addr line_addr,
                      unsigned bytes, Cycle ready) const
{
    if (!sink_ || !sink_->wants(kind))
        return;
    obs::Event ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.a = line_addr;
    ev.b = bytes;
    ev.x = static_cast<double>(ready);
    sink_->record(ev);
}

Cycle
MemSystem::reserve(Cycle &busy_until, unsigned bytes,
                   unsigned bytes_per_cycle, Cycle now)
{
    assert(bytes_per_cycle > 0);
    const Cycle start = std::max(now, busy_until);
    const Cycle busy = (bytes + bytes_per_cycle - 1) / bytes_per_cycle;
    busy_until = start + busy;
    return start;
}

Cycle
MemSystem::lineReady(Addr line, Cycle now)
{
    auto it = line_ready_.find(line);
    if (it == line_ready_.end())
        return 0;
    const Cycle ready = it->second;
    if (ready <= now)
        line_ready_.erase(it);
    return ready;
}

void
MemSystem::maybePrefetch(Addr trigger_line, Cycle now)
{
    if (cfg_.prefetchDegree == 0)
        return;
    const unsigned line = cfg_.vecCache.lineBytes;
    const Addr region = trigger_line / 4096;    // 4 KB stream region.

    auto [it, inserted] = frontier_.try_emplace(region, trigger_line);
    Addr frontier = inserted ? trigger_line : it->second;
    const Addr target =
        trigger_line + static_cast<Addr>(cfg_.prefetchDegree) * line;
    if (frontier >= target)
        return;

    for (Addr pf = std::max(frontier + line, trigger_line + line);
         pf <= target; pf += line) {
        if (vec_cache_.contains(pf) || l2_.contains(pf))
            continue;
        const Cycle start =
            reserve(dram_busy_until_, line, dramBpcAt(now), now);
        dram_bytes_ += line;
        ++prefetches_;
        line_ready_[pf] = start + dramLatencyAt(now);
        pending_fills_.push(start + dramLatencyAt(now));
        recordDram(now, obs::EventKind::DramRead, pf, line,
                   start + dramLatencyAt(now));
        // Prefetch into L2 only: demand accesses pull lines into the
        // VecCache, so streams do not flush co-runners' resident sets.
        CacheAccessResult pr = l2_.access(pf, /*is_write=*/false);
        if (pr.writeback)
            reserve(dram_busy_until_, line, dramBpcAt(now), start);
    }
    it->second = target;
}

Cycle
MemSystem::accessLine(Addr line_addr, bool is_write, Cycle now,
                      Cycle vec_done)
{
    const unsigned line = cfg_.vecCache.lineBytes;

    CacheAccessResult vc = vec_cache_.access(line_addr, is_write);
    if (vc.hit) {
        // Keep the stream frontier running ahead of the demand pointer.
        maybePrefetch(line_addr, now);
        return std::max(vec_done, lineReady(line_addr, now));
    }

    // Dirty victim from VecCache consumes L2 bandwidth but is off the
    // critical path of this request.
    if (vc.writeback)
        reserve(l2_busy_until_, line, cfg_.l2.bytesPerCycle, vec_done);

    // Miss in VecCache: go to the unified L2.
    const Cycle l2_start =
        reserve(l2_busy_until_, line, cfg_.l2.bytesPerCycle, vec_done);
    const Cycle l2_done = l2_start + cfg_.l2.latency;

    CacheAccessResult l2r = l2_.access(line_addr, is_write);
    if (l2r.hit) {
        maybePrefetch(line_addr, now);
        return std::max(l2_done, lineReady(line_addr, now));
    }

    if (l2r.writeback) {
        reserve(dram_busy_until_, line, dramBpcAt(now), l2_done);
        dram_bytes_ += line;
        recordDram(now, obs::EventKind::DramWrite, l2r.victimLine, line,
                   l2_done);
    }

    // Miss in L2: DRAM, bandwidth-limited at 64 GB/s (32 B/cycle @2 GHz).
    const Cycle dram_start =
        reserve(dram_busy_until_, line, dramBpcAt(now), l2_done);
    ++dram_reads_;
    dram_bytes_ += line;
    const Cycle ready = dram_start + dramLatencyAt(now);
    line_ready_[line_addr] = ready;
    pending_fills_.push(ready);
    recordDram(now, obs::EventKind::DramRead, line_addr, line, ready);
    maybePrefetch(line_addr, now);
    return ready;
}

MemAccessResult
MemSystem::access(Addr addr, unsigned bytes, bool is_write, Cycle now)
{
    assert(bytes > 0);
    ++accesses_;
    const unsigned line = cfg_.vecCache.lineBytes;
    const Addr first = addr / line;
    const Addr last = (addr + bytes - 1) / line;

    // Port occupancy is proportional to the access width (the 2x64 B
    // VecCache ports move B bytes in B/128 cycles).
    const double start = std::max(static_cast<double>(now),
                                  vec_busy_until_);
    vec_busy_until_ =
        start + static_cast<double>(bytes) / cfg_.vecCache.bytesPerCycle;
    const Cycle vec_done =
        static_cast<Cycle>(start) + cfg_.vecCache.latency;

    Cycle done = now;
    for (Addr l = first; l <= last; ++l)
        done = std::max(done, accessLine(l * line, is_write, now,
                                         vec_done));

    MemAccessResult res;
    res.queueRelease = done;
    // Stores retire into the store buffer once the VecCache port
    // accepted them; the fetch-for-ownership only holds the STQ entry.
    res.dataReady = is_write ? now + cfg_.vecCache.latency : done;
    return res;
}

MemAccessResult
MemSystem::accessStrided(Addr addr, unsigned elem_bytes,
                         std::int64_t stride, unsigned count,
                         bool is_write, Cycle now)
{
    assert(count > 0 && elem_bytes > 0);
    ++accesses_;
    const unsigned line = cfg_.vecCache.lineBytes;

    // Gathers move one element per port beat (16 B of port time each),
    // the classic SVE gather cost.
    const double start =
        std::max(static_cast<double>(now), vec_busy_until_);
    vec_busy_until_ = start + count * 16.0 /
                              cfg_.vecCache.bytesPerCycle;
    const Cycle vec_done =
        static_cast<Cycle>(start) + cfg_.vecCache.latency +
        (count * 16 + cfg_.vecCache.bytesPerCycle - 1) /
            cfg_.vecCache.bytesPerCycle;

    // Service every distinct line touched by the element addresses.
    Cycle done = now;
    Addr prev_line = ~static_cast<Addr>(0);
    for (unsigned k = 0; k < count; ++k) {
        const Addr a =
            addr + static_cast<Addr>(static_cast<std::int64_t>(k) *
                                     stride * elem_bytes);
        const Addr la = a / line * line;
        if (la == prev_line)
            continue;
        prev_line = la;
        done = std::max(done, accessLine(la, is_write, now, vec_done));
    }

    MemAccessResult res;
    res.queueRelease = done;
    res.dataReady = is_write ? vec_done : done;
    return res;
}

Cycle
MemSystem::scalarAccess(Addr addr, bool is_write, Cycle now)
{
    // Scalar references ride the same L2/DRAM path; the private scalar
    // L1s from Table 4 are approximated by the VecCache lookup since the
    // kernels issue almost no scalar memory traffic.
    return accessLine((addr / cfg_.l2.lineBytes) * cfg_.l2.lineBytes,
                      is_write, now, now + cfg_.vecCache.latency);
}

void
MemSystem::reset()
{
    vec_cache_.flush();
    l2_.flush();
    vec_busy_until_ = 0.0;
    l2_busy_until_ = 0;
    dram_busy_until_ = 0;
    line_ready_.clear();
    frontier_.clear();
    pending_fills_ = {};
}

Cycle
MemSystem::nextEventAt(Cycle now)
{
    while (!pending_fills_.empty() && pending_fills_.top() <= now)
        pending_fills_.pop();
    return pending_fills_.empty() ? kCycleNever : pending_fills_.top();
}

void
MemSystem::regStats(stats::Group &group) const
{
    vec_cache_.regStats(group);
    l2_.regStats(group);
    group.addCounter("dram.reads", &dram_reads_, "line fills from DRAM");
    group.addCounter("dram.bytes", &dram_bytes_, "bytes moved to/from DRAM");
    group.addCounter("mem.accesses", &accesses_, "vector accesses");
    group.addCounter("mem.prefetches", &prefetches_,
                     "stream-prefetched lines");
}

void
MemSystem::save(ckpt::Writer &w) const
{
    w.section("mem");
    w.f64(vec_busy_until_);
    w.u64(l2_busy_until_);
    w.u64(dram_busy_until_);

    // Sorted copies of the hash maps keep the byte stream deterministic.
    std::vector<std::pair<Addr, Cycle>> ready(line_ready_.begin(),
                                              line_ready_.end());
    std::sort(ready.begin(), ready.end());
    w.u64(ready.size());
    for (const auto &[line, at] : ready) {
        w.u64(line);
        w.u64(at);
    }

    // Drain a copy of the min-heap: pops come out already sorted.
    auto fills = pending_fills_;
    w.u64(fills.size());
    while (!fills.empty()) {
        w.u64(fills.top());
        fills.pop();
    }

    std::vector<std::pair<Addr, Addr>> fr(frontier_.begin(),
                                          frontier_.end());
    std::sort(fr.begin(), fr.end());
    w.u64(fr.size());
    for (const auto &[region, line] : fr) {
        w.u64(region);
        w.u64(line);
    }

    w.u64(dram_reads_.value());
    w.u64(dram_bytes_.value());
    w.u64(accesses_.value());
    w.u64(prefetches_.value());

    vec_cache_.save(w);
    l2_.save(w);
}

void
MemSystem::load(ckpt::Reader &r)
{
    r.expectSection("mem");
    vec_busy_until_ = r.f64();
    l2_busy_until_ = r.u64();
    dram_busy_until_ = r.u64();

    line_ready_.clear();
    const std::size_t nready = r.arr();
    for (std::size_t i = 0; i < nready; ++i) {
        const Addr line = r.u64();
        const Cycle at = r.u64();
        line_ready_.emplace(line, at);
    }

    pending_fills_ = {};
    const std::size_t nfills = r.arr();
    for (std::size_t i = 0; i < nfills; ++i)
        pending_fills_.push(r.u64());

    frontier_.clear();
    const std::size_t nfr = r.arr();
    for (std::size_t i = 0; i < nfr; ++i) {
        const Addr region = r.u64();
        const Addr line = r.u64();
        frontier_.emplace(region, line);
    }

    dram_reads_.set(r.u64());
    dram_bytes_.set(r.u64());
    accesses_.set(r.u64());
    prefetches_.set(r.u64());

    vec_cache_.load(r);
    l2_.load(r);
}

void
MemSystem::printState(std::ostream &os) const
{
    os << "vec_busy_until " << vec_busy_until_ << '\n'
       << "l2_busy_until " << l2_busy_until_ << '\n'
       << "dram_busy_until " << dram_busy_until_ << '\n'
       << "inflight_fills " << line_ready_.size() << '\n'
       << "stream_frontiers " << frontier_.size() << '\n'
       << "accesses " << accesses_.value() << '\n'
       << "dram_reads " << dramReads() << '\n'
       << "dram_bytes " << dramBytes() << '\n'
       << "prefetches " << prefetches() << '\n';
    vec_cache_.printState(os);
    l2_.printState(os);
}

} // namespace occamy
