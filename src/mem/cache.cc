#include "mem/cache.hh"

#include <cassert>

namespace occamy
{

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    assert(cfg_.sizeBytes % (static_cast<std::uint64_t>(cfg_.lineBytes) *
                             cfg_.assoc) == 0);
    num_sets_ = static_cast<unsigned>(
        cfg_.sizeBytes / (static_cast<std::uint64_t>(cfg_.lineBytes) *
                          cfg_.assoc));
    assert(num_sets_ > 0);
    ways_.resize(static_cast<std::size_t>(num_sets_) * cfg_.assoc);
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    CacheAccessResult res;
    const Addr line = lineAddr(addr);
    const std::size_t base = setIndex(line) * cfg_.assoc;

    ++stamp_;

    // Hit path.
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == line) {
            way.lruStamp = stamp_;
            way.dirty |= is_write;
            ++hits_;
            res.hit = true;
            return res;
        }
    }

    // Miss: fill into invalid way or evict true-LRU.
    ++misses_;
    std::size_t victim = base;
    std::uint64_t oldest = ways_[base].lruStamp;
    bool found_invalid = false;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (!way.valid) {
            victim = base + w;
            found_invalid = true;
            break;
        }
        if (way.lruStamp <= oldest) {
            oldest = way.lruStamp;
            victim = base + w;
        }
    }

    Way &way = ways_[victim];
    if (!found_invalid && way.dirty) {
        ++writebacks_;
        res.writeback = true;
        res.victimLine = way.tag * cfg_.lineBytes;
    }
    way.tag = line;
    way.valid = true;
    way.dirty = is_write;
    way.lruStamp = stamp_;
    return res;
}

bool
Cache::contains(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const std::size_t base = setIndex(line) * cfg_.assoc;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        const Way &way = ways_[base + w];
        if (way.valid && way.tag == line)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &way : ways_)
        way = Way{};
}

void
Cache::regStats(stats::Group &group) const
{
    group.addCounter(name_ + ".hits", &hits_, "line hits");
    group.addCounter(name_ + ".misses", &misses_, "line misses");
    group.addCounter(name_ + ".writebacks", &writebacks_,
                     "dirty lines evicted");
    group.addFormula(name_ + ".miss_rate", [this] {
        const double total = static_cast<double>(hits() + misses());
        return total > 0 ? misses() / total : 0.0;
    }, "miss fraction");
}

} // namespace occamy
