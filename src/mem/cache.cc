#include "mem/cache.hh"

#include <cassert>
#include <ostream>

#include "ckpt/ckpt.hh"

namespace occamy
{

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    assert(cfg_.sizeBytes % (static_cast<std::uint64_t>(cfg_.lineBytes) *
                             cfg_.assoc) == 0);
    num_sets_ = static_cast<unsigned>(
        cfg_.sizeBytes / (static_cast<std::uint64_t>(cfg_.lineBytes) *
                          cfg_.assoc));
    assert(num_sets_ > 0);
    ways_.resize(static_cast<std::size_t>(num_sets_) * cfg_.assoc);
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    CacheAccessResult res;
    const Addr line = lineAddr(addr);
    const std::size_t base = setIndex(line) * cfg_.assoc;

    ++stamp_;

    // Hit path.
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == line) {
            way.lruStamp = stamp_;
            way.dirty |= is_write;
            ++hits_;
            res.hit = true;
            return res;
        }
    }

    // Miss: fill into invalid way or evict true-LRU.
    ++misses_;
    std::size_t victim = base;
    std::uint64_t oldest = ways_[base].lruStamp;
    bool found_invalid = false;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (!way.valid) {
            victim = base + w;
            found_invalid = true;
            break;
        }
        if (way.lruStamp <= oldest) {
            oldest = way.lruStamp;
            victim = base + w;
        }
    }

    Way &way = ways_[victim];
    if (!found_invalid && way.dirty) {
        ++writebacks_;
        res.writeback = true;
        res.victimLine = way.tag * cfg_.lineBytes;
    }
    way.tag = line;
    way.valid = true;
    way.dirty = is_write;
    way.lruStamp = stamp_;
    return res;
}

bool
Cache::contains(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const std::size_t base = setIndex(line) * cfg_.assoc;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        const Way &way = ways_[base + w];
        if (way.valid && way.tag == line)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &way : ways_)
        way = Way{};
}

void
Cache::regStats(stats::Group &group) const
{
    group.addCounter(name_ + ".hits", &hits_, "line hits");
    group.addCounter(name_ + ".misses", &misses_, "line misses");
    group.addCounter(name_ + ".writebacks", &writebacks_,
                     "dirty lines evicted");
    group.addFormula(name_ + ".miss_rate", [this] {
        const double total = static_cast<double>(hits() + misses());
        return total > 0 ? misses() / total : 0.0;
    }, "miss fraction");
}

void
Cache::save(ckpt::Writer &w) const
{
    w.section(("cache." + name_).c_str());
    w.u64(stamp_);
    w.u64(ways_.size());
    for (const Way &way : ways_) {
        w.u64(way.tag);
        w.b(way.valid);
        w.b(way.dirty);
        w.u64(way.lruStamp);
    }
    w.u64(hits_.value());
    w.u64(misses_.value());
    w.u64(writebacks_.value());
}

void
Cache::load(ckpt::Reader &r)
{
    r.expectSection(("cache." + name_).c_str());
    stamp_ = r.u64();
    ckpt::Reader::check(r.arr() == ways_.size(),
                        "checkpoint cache geometry mismatch (" + name_ + ")");
    for (Way &way : ways_) {
        way.tag = r.u64();
        way.valid = r.b();
        way.dirty = r.b();
        way.lruStamp = r.u64();
    }
    hits_.set(r.u64());
    misses_.set(r.u64());
    writebacks_.set(r.u64());
}

void
Cache::printState(std::ostream &os) const
{
    std::size_t valid = 0, dirty = 0;
    for (const Way &way : ways_) {
        valid += way.valid ? 1 : 0;
        dirty += way.valid && way.dirty ? 1 : 0;
    }
    os << name_ << ".size_bytes " << cfg_.sizeBytes << '\n'
       << name_ << ".sets " << num_sets_ << '\n'
       << name_ << ".assoc " << cfg_.assoc << '\n'
       << name_ << ".valid_lines " << valid << '\n'
       << name_ << ".dirty_lines " << dirty << '\n'
       << name_ << ".hits " << hits() << '\n'
       << name_ << ".misses " << misses() << '\n'
       << name_ << ".writebacks " << writebacks() << '\n';
}

} // namespace occamy
