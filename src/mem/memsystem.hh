/**
 * @file
 * Timing model of the shared memory hierarchy behind the co-processor's
 * LSUs: VecCache -> unified L2 -> DRAM (Fig. 4 and Table 4).
 *
 * Bandwidth at each level is modelled with busy-until pointers: a request
 * of B bytes occupies the level for ceil(B / bytes_per_cycle) cycles
 * starting no earlier than the level's previous completion, then adds the
 * level's latency. Contention between cores falls out naturally because
 * all cores share one MemSystem, exactly as they share the VecCache, L2
 * and DRAM in the paper.
 *
 * Two mechanisms make streaming loops bandwidth- rather than
 * latency-bound, as on real hardware:
 *  - a region stream prefetcher that keeps `prefetchDegree` lines ahead
 *    of every demand stream, and
 *  - MSHR-style per-line readiness: a hit on a line whose fill is still
 *    in flight waits for the fill, so prefetching never teleports data.
 */

#ifndef OCCAMY_MEM_MEMSYSTEM_HH
#define OCCAMY_MEM_MEMSYSTEM_HH

#include <queue>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "obs/sink.hh"

namespace occamy
{

namespace fault
{
class FaultInjector;
}

/** Completion times of one vector memory access. */
struct MemAccessResult
{
    /** Cycle the data is available (loads) / line owned (stores). */
    Cycle dataReady = 0;
    /** Cycle the queue entry can be released (== dataReady for loads;
     *  stores retire into the store buffer earlier than this). */
    Cycle queueRelease = 0;
};

/** Timing + contents model of VecCache/L2/DRAM shared by all cores. */
class MemSystem
{
  public:
    explicit MemSystem(const MachineConfig &cfg);

    /**
     * Perform a vector memory access of @p bytes starting at @p addr.
     *
     * The access is split into 64 B lines; each line is serviced at the
     * innermost level that holds it. Stores are write-allocate but
     * complete into a store buffer (dataReady is near-immediate; the
     * fetch-for-ownership holds the queue entry via queueRelease).
     *
     * @param addr Starting byte address.
     * @param bytes Access width (16 * vl bytes for an SVE ld/st).
     * @param is_write True for stores.
     * @param now Cycle the LSU presents the request.
     */
    MemAccessResult access(Addr addr, unsigned bytes, bool is_write,
                           Cycle now);

    /**
     * Perform a strided (gather/scatter) access: @p count elements of
     * @p elem_bytes spaced @p stride elements apart starting at
     * @p addr. Each element occupies one port beat; distinct lines are
     * serviced individually.
     */
    MemAccessResult accessStrided(Addr addr, unsigned elem_bytes,
                                  std::int64_t stride, unsigned count,
                                  bool is_write, Cycle now);

    /** Scalar (single-word) reference; shares the hierarchy. */
    Cycle scalarAccess(Addr addr, bool is_write, Cycle now);

    /**
     * Quiescence probe for the fast-forward engine: earliest future
     * cycle at which an in-flight line fill completes, or kCycleNever
     * when no fill is outstanding. The memory system has no tick() —
     * its state only changes when a component calls access*() — so a
     * pending fill is the only thing that can make a *waiting*
     * consumer's world change without that consumer acting first.
     */
    Cycle nextEventAt(Cycle now);

    const Cache &vecCache() const { return vec_cache_; }
    const Cache &l2() const { return l2_; }

    std::uint64_t dramReads() const { return dram_reads_.value(); }
    std::uint64_t dramBytes() const { return dram_bytes_.value(); }
    std::uint64_t prefetches() const { return prefetches_.value(); }

    /** Drop all cached contents and reset busy pointers (tests only). */
    void reset();

    void regStats(stats::Group &group) const;

    /** Checkpoint hooks: busy pointers, MSHRs, prefetch frontiers,
     *  counters and both cache levels. Unordered containers are
     *  serialized key-sorted so the byte stream is deterministic. */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

    /** One-line-per-fact state dump for live inspection. */
    void printState(std::ostream &os) const;

    /** Attach/detach the trace sink (null = tracing off). */
    void setEventSink(obs::EventSink *sink) { sink_ = sink; }

    /** Attach a fault injector (null = fault-free; the default).
     *  Active DramSpike windows add latency / divide bandwidth. */
    void setFaultInjector(const fault::FaultInjector *inj)
    {
        injector_ = inj;
    }

    /**
     * Re-grant this memory slice's share of the machine's DRAM
     * bandwidth (the inter-cluster arbiter's lever on a clustered
     * machine; 1-cluster configs never call this). Floored at
     * 1 byte/cycle. Deliberately not checkpointed here: the arbiter
     * owns the grants and restores them from its own ckpt section.
     */
    void setDramBytesPerCycle(unsigned bpc)
    {
        dram_bpc_ = bpc > 0 ? bpc : 1;
    }

    /** Currently granted DRAM bandwidth in bytes/cycle. */
    unsigned dramBytesPerCycle() const { return dram_bpc_; }

  private:
    /** Effective DRAM fill latency at @p now (injected spikes added). */
    unsigned dramLatencyAt(Cycle now) const;

    /** Effective DRAM bandwidth at @p now (injected divisor applied,
     *  floored at 1 byte/cycle). */
    unsigned dramBpcAt(Cycle now) const;

    /** Record a DRAM transaction (kEvMem), if traced. */
    void recordDram(Cycle now, obs::EventKind kind, Addr line_addr,
                    unsigned bytes, Cycle ready) const;

    /**
     * Service one cache line. @p vec_done is the cycle the VecCache
     * port delivers it on a hit (port occupancy is charged per access
     * in access(), not per line). @return cycle the line's data is
     * ready.
     */
    Cycle accessLine(Addr line_addr, bool is_write, Cycle now,
                     Cycle vec_done);

    /** Extend the stream frontier past @p trigger_line. */
    void maybePrefetch(Addr trigger_line, Cycle now);

    /** Readiness of an in-flight fill covering @p line (0 if settled). */
    Cycle lineReady(Addr line, Cycle now);

    /** Reserve @p bytes of bandwidth at a level. @return service start. */
    static Cycle reserve(Cycle &busy_until, unsigned bytes,
                         unsigned bytes_per_cycle, Cycle now);

    MachineConfig cfg_;
    Cache vec_cache_;
    Cache l2_;

    /** Granted DRAM bandwidth; starts at cfg_.dramBytesPerCycle and is
     *  re-granted by the inter-cluster arbiter on clustered machines. */
    unsigned dram_bpc_;

    /** VecCache port busy time in fractional cycles (an access of B
     *  bytes occupies the 2x64 B port for B/128 cycles). */
    double vec_busy_until_ = 0.0;
    Cycle l2_busy_until_ = 0;
    Cycle dram_busy_until_ = 0;

    /** Line address -> fill-ready cycle (MSHR-style). */
    std::unordered_map<Addr, Cycle> line_ready_;

    /** Ready cycles of fills still in flight, mirroring line_ready_
     *  inserts; heads <= now are lazily popped by nextEventAt() so the
     *  probe stays O(log n) instead of scanning the map. */
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<Cycle>>
        pending_fills_;

    /** 4 KB region -> highest line prefetched for that stream. */
    std::unordered_map<Addr, Addr> frontier_;

    stats::Counter dram_reads_;
    stats::Counter dram_bytes_;
    stats::Counter accesses_;
    stats::Counter prefetches_;

    obs::EventSink *sink_ = nullptr;    ///< Borrowed, may be null.
    const fault::FaultInjector *injector_ = nullptr;  ///< Borrowed.
};

} // namespace occamy

#endif // OCCAMY_MEM_MEMSYSTEM_HH
