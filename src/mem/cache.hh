/**
 * @file
 * Set-associative cache tag model with true-LRU replacement and
 * write-back/write-allocate semantics.
 *
 * This models *contents* (hit/miss and dirty-eviction behaviour); timing
 * (latency and bandwidth) is layered on top by MemSystem so that the same
 * tag model serves the VecCache and the unified L2 from Table 4.
 */

#ifndef OCCAMY_MEM_CACHE_HH
#define OCCAMY_MEM_CACHE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ckpt/fwd.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace occamy
{

/** Result of a cache lookup-and-fill. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty line was evicted and must be written back downstream. */
    bool writeback = false;
    /** Line address of the written-back victim (valid iff writeback). */
    Addr victimLine = 0;
};

/** One set-associative write-back cache level. */
class Cache
{
  public:
    /**
     * @param name Stats prefix (e.g. "vec_cache").
     * @param cfg Geometry and (unused here) timing parameters.
     */
    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Look up one line; on miss, allocate it (evicting LRU).
     *
     * @param addr Any byte address inside the line.
     * @param is_write Marks the line dirty on hit or fill.
     * @return hit/miss and any dirty victim produced by the fill.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Probe without modifying state. @return true on present line. */
    bool contains(Addr addr) const;

    /** Invalidate everything (used between simulated workload phases
     *  only by tests; real runs keep contents warm). */
    void flush();

    unsigned lineBytes() const { return cfg_.lineBytes; }
    std::uint64_t sizeBytes() const { return cfg_.sizeBytes; }
    unsigned numSets() const { return num_sets_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }

    /** Register this cache's counters with a stats group. */
    void regStats(stats::Group &group) const;

    /** Checkpoint hooks: tag array, LRU clock and counters. */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

    /** One-line-per-fact state dump for live inspection. */
    void printState(std::ostream &os) const;

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / cfg_.lineBytes; }
    std::size_t setIndex(Addr line) const { return line % num_sets_; }

    std::string name_;
    CacheConfig cfg_;
    unsigned num_sets_;
    std::vector<Way> ways_;         ///< num_sets_ * assoc, row-major.
    std::uint64_t stamp_ = 0;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter writebacks_;
};

} // namespace occamy

#endif // OCCAMY_MEM_CACHE_HH
