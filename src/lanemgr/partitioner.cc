#include "lanemgr/partitioner.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace occamy
{

std::vector<unsigned>
greedyPartition(const RooflineParams &p, const std::vector<PhaseOI> &ois,
                unsigned total_bus)
{
    const std::size_t m = ois.size();
    std::vector<unsigned> vl(m, 0);

    // Step 1: one ExeBU to every workload currently executing a phase.
    unsigned used = 0;
    for (std::size_t i = 0; i < m; ++i) {
        if (ois[i].active() && used < total_bus) {
            vl[i] = 1;
            ++used;
        }
    }

    // Step 2: per iteration, sort by net performance gain (Eq. 3) and
    // give one ExeBU to each workload with a positive gain, in order.
    while (used < total_bus) {
        std::vector<std::size_t> order;
        for (std::size_t i = 0; i < m; ++i)
            if (vl[i] > 0)
                order.push_back(i);

        auto gain = [&](std::size_t i) {
            return attainable(p, ois[i], vl[i] + 1) -
                   attainable(p, ois[i], vl[i]);
        };
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return gain(a) > gain(b);
                         });

        bool assigned = false;
        for (std::size_t i : order) {
            if (used >= total_bus)
                break;
            if (gain(i) > 1e-9) {
                ++vl[i];
                ++used;
                assigned = true;
            }
        }
        // Step 3: stop when no workload can gain any further.
        if (!assigned)
            break;
    }
    return vl;
}

std::vector<unsigned>
staticPartition(const RooflineParams &p,
                const std::vector<std::vector<PhaseOI>> &phase_ois,
                unsigned total_bus)
{
    // Represent each workload by its most lane-demanding phase: a static
    // split is fixed for the whole run, so it must satisfy the phase
    // with the largest roofline knee.
    std::vector<PhaseOI> rep(phase_ois.size());
    for (std::size_t w = 0; w < phase_ois.size(); ++w) {
        unsigned best_knee = 0;
        for (const auto &oi : phase_ois[w]) {
            if (!oi.active())
                continue;
            const unsigned k = kneeVl(p, oi, total_bus);
            if (k > best_knee) {
                best_knee = k;
                rep[w] = oi;
            }
        }
    }
    return greedyPartition(p, rep, total_bus);
}

} // namespace occamy
