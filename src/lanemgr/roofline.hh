/**
 * @file
 * Vector-length-aware roofline model (Section 5.1).
 *
 * Extends the classic roofline with vector-length-dependent ceilings:
 *   - computation ceiling: FP_peak(vl) grows linearly with lanes;
 *   - SIMD-issue-bandwidth ceiling (Eq. 2): a narrow data path caps the
 *     bytes the LSU can request per cycle at issue_width * vl * 16 B;
 *   - memory-bandwidth ceiling: fixed per hierarchy level (hierarchical
 *     roofline), independent of vl.
 *
 * Attainable performance (Eq. 4):
 *   AP_vl(OI) = min(FP_peak_vl,
 *                   SIMD_issue_BW_vl * OI.issue,
 *                   mem_BW_level * OI.mem)
 *
 * Units: GFLOP/s and GB/s at the configured clock. Calibrated to
 * reproduce the paper's Table 5 exactly (see tests/lanemgr).
 */

#ifndef OCCAMY_LANEMGR_ROOFLINE_HH
#define OCCAMY_LANEMGR_ROOFLINE_HH

#include "common/config.hh"
#include "isa/inst.hh"

namespace occamy
{

/** Architecture-specific ceiling parameters. */
struct RooflineParams
{
    double ghz = 2.0;

    /** Peak FLOPs per lane per cycle (1.0 reproduces Table 5). */
    double flopsPerLanePerCycle = 1.0;

    /** Sustained vector-memory micro-ops dispatched per cycle
     *  (SIMD-issue_width in Eq. 2; 1.0 reproduces Table 5). */
    double simdIssueWidth = 1.0;

    /** Bandwidths in bytes/cycle per hierarchy level. */
    double vecCacheBytesPerCycle = 128.0;
    double l2BytesPerCycle = 64.0;
    double dramBytesPerCycle = 32.0;

    /** Derive parameters from a machine configuration. */
    static RooflineParams fromConfig(const MachineConfig &cfg);
};

/** Peak FP performance in GFLOP/s for @p vl_bus ExeBUs (128-bit units). */
double fpPeak(const RooflineParams &p, unsigned vl_bus);

/** Eq. 2: SIMD issue bandwidth in GB/s for @p vl_bus ExeBUs. */
double simdIssueBandwidth(const RooflineParams &p, unsigned vl_bus);

/** Bandwidth ceiling in GB/s of one memory-hierarchy level. */
double memBandwidth(const RooflineParams &p, MemLevel level);

/** Eq. 4: attainable GFLOP/s of a phase with @p vl_bus ExeBUs. */
double attainable(const RooflineParams &p, const PhaseOI &oi,
                  unsigned vl_bus);

/**
 * The smallest vl (in ExeBUs) achieving the plateau of attainable
 * performance within [1, max_bus] — the compiler's default-VL choice and
 * the static partitioner's per-workload demand.
 */
unsigned kneeVl(const RooflineParams &p, const PhaseOI &oi,
                unsigned max_bus);

} // namespace occamy

#endif // OCCAMY_LANEMGR_ROOFLINE_HH
