/**
 * @file
 * LaneMgr: the hardware lane-partitioning manager (Section 5).
 *
 * LaneMgr monitors MSR writes to <OI> (phase-changing points). On each
 * such event it gathers the co-running workloads' phase behaviours and,
 * after a fixed re-planning latency, publishes a new lane-partition plan
 * into the per-core <decision> registers of the resource table.
 */

#ifndef OCCAMY_LANEMGR_LANEMGR_HH
#define OCCAMY_LANEMGR_LANEMGR_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "lanemgr/partitioner.hh"
#include "lanemgr/roofline.hh"

namespace occamy
{

/** The hardware lane manager embedded in the co-processor's Manager. */
class LaneMgr
{
  public:
    /**
     * @param params Roofline ceilings of this machine.
     * @param total_bus ExeBUs available for partitioning.
     * @param latency Cycles from phase event to plan publication.
     */
    LaneMgr(const RooflineParams &params, unsigned total_bus,
            unsigned latency)
        : params_(params), total_bus_(total_bus), latency_(latency)
    {
    }

    /**
     * A phase-changing point was observed (some core wrote <OI>).
     * Schedules a re-plan completing at now + latency.
     */
    void notifyPhaseEvent(Cycle now) { plan_ready_at_ = now + latency_; }

    /** @return true if a scheduled re-plan completes at/before @p now. */
    bool planDue(Cycle now) const
    {
        return plan_ready_at_ != kCycleNever && now >= plan_ready_at_;
    }

    /**
     * Produce the plan for the current <OI> values.
     *
     * @param ois Per-core operational intensities from the resource
     *        table (inactive phases have OI == 0).
     * @return ExeBUs per core.
     */
    std::vector<unsigned>
    makePlan(const std::vector<PhaseOI> &ois)
    {
        plan_ready_at_ = kCycleNever;
        ++plans_made_;
        return greedyPartition(params_, ois, total_bus_);
    }

    std::uint64_t plansMade() const { return plans_made_.value(); }
    const RooflineParams &params() const { return params_; }
    unsigned totalBus() const { return total_bus_; }

  private:
    RooflineParams params_;
    unsigned total_bus_;
    unsigned latency_;
    Cycle plan_ready_at_ = kCycleNever;
    stats::Counter plans_made_;
};

} // namespace occamy

#endif // OCCAMY_LANEMGR_LANEMGR_HH
