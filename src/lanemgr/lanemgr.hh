/**
 * @file
 * LaneMgr: the hardware lane-partitioning manager (Section 5).
 *
 * LaneMgr monitors MSR writes to <OI> (phase-changing points). On each
 * such event it gathers the co-running workloads' phase behaviours and,
 * after a fixed re-planning latency, publishes a new lane-partition plan
 * into the per-core <decision> registers of the resource table.
 */

#ifndef OCCAMY_LANEMGR_LANEMGR_HH
#define OCCAMY_LANEMGR_LANEMGR_HH

#include <vector>

#include "ckpt/fwd.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "lanemgr/partitioner.hh"
#include "lanemgr/roofline.hh"
#include "obs/sink.hh"

namespace occamy
{

/** The hardware lane manager embedded in the co-processor's Manager. */
class LaneMgr
{
  public:
    /**
     * @param params Roofline ceilings of this machine.
     * @param total_bus ExeBUs available for partitioning.
     * @param latency Cycles from phase event to plan publication.
     */
    LaneMgr(const RooflineParams &params, unsigned total_bus,
            unsigned latency)
        : params_(params), total_bus_(total_bus), latency_(latency)
    {
    }

    /**
     * A phase-changing point was observed (some core wrote <OI>).
     * Schedules a re-plan completing at now + latency.
     */
    void notifyPhaseEvent(Cycle now) { plan_ready_at_ = now + latency_; }

    /** @return true if a scheduled re-plan completes at/before @p now. */
    bool planDue(Cycle now) const
    {
        return plan_ready_at_ != kCycleNever && now >= plan_ready_at_;
    }

    /** Cycle the pending re-plan publishes (kCycleNever when none is
     *  scheduled). Wake event for the fast-forward engine: a plan
     *  publication changes partition state even if every pipeline is
     *  otherwise drained. */
    Cycle planReadyAt() const { return plan_ready_at_; }

    /**
     * Produce the plan for the current <OI> values.
     *
     * @param ois Per-core operational intensities from the resource
     *        table (inactive phases have OI == 0).
     * @param now Cycle of the plan (trace timestamping only).
     * @return ExeBUs per core.
     */
    std::vector<unsigned>
    makePlan(const std::vector<PhaseOI> &ois, Cycle now = 0)
    {
        plan_ready_at_ = kCycleNever;
        ++plans_made_;
        auto plan = greedyPartition(params_, ois, total_bus_);
        if (sink_ && sink_->wants(obs::EventKind::PartitionDecision))
            recordPlan(ois, plan, now);
        return plan;
    }

    /** Attach/detach the trace sink (null = tracing off). */
    void setEventSink(obs::EventSink *sink) { sink_ = sink; }

    /** An ExeBU hard fault shrank the machine: partition over
     *  @p usable_bus from now on (greedy roofline re-runs on the
     *  degraded pool at the next plan publication). */
    void degrade(unsigned usable_bus) { total_bus_ = usable_bus; }

    std::uint64_t plansMade() const { return plans_made_.value(); }
    const RooflineParams &params() const { return params_; }
    unsigned totalBus() const { return total_bus_; }

    /** Checkpoint hooks (src/ckpt/components.cc): pending-plan timer,
     *  fault-degraded pool size and the plan counter. */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

  private:
    /** Trace one published plan: per active core a roofline
     *  evaluation with its marginal-gain pair (Eq. 2-4 inputs), per
     *  core the published share, then the plan summary. */
    void
    recordPlan(const std::vector<PhaseOI> &ois,
               const std::vector<unsigned> &plan, Cycle now)
    {
        unsigned used = 0;
        for (std::size_t c = 0; c < plan.size(); ++c) {
            const CoreId core = static_cast<CoreId>(c);
            if (ois[c].active()) {
                obs::Event ev;
                ev.cycle = now;
                ev.kind = obs::EventKind::RooflineEval;
                ev.core = core;
                ev.a = static_cast<std::uint64_t>(ois[c].level);
                ev.b = plan[c];
                ev.x = attainable(params_, ois[c], plan[c]);
                ev.y = attainable(params_, ois[c], plan[c] + 1);
                sink_->record(ev);
            }
            obs::Event dec;
            dec.cycle = now;
            dec.kind = obs::EventKind::PartitionDecision;
            dec.core = core;
            dec.b = plan[c];
            sink_->record(dec);
            used += plan[c];
        }
        obs::Event sum;
        sum.cycle = now;
        sum.kind = obs::EventKind::PartitionPlan;
        sum.a = used;
        sum.b = total_bus_;
        sink_->record(sum);
    }

    RooflineParams params_;
    unsigned total_bus_;
    unsigned latency_;
    Cycle plan_ready_at_ = kCycleNever;
    stats::Counter plans_made_;
    obs::EventSink *sink_ = nullptr;    ///< Borrowed, may be null.
};

} // namespace occamy

#endif // OCCAMY_LANEMGR_LANEMGR_HH
