/**
 * @file
 * ClusterArbiter: level 2 of the hierarchical lane manager.
 *
 * On a clustered machine (MachineConfig::Builder::topology(C, K) with
 * C > 1) each cluster owns one co-processor whose LaneMgr partitions
 * lanes across the cluster's cores exactly as in the paper. Above
 * those per-cluster managers sits this arbiter: every
 * interArbiterPeriod cycles it re-splits the machine's total DRAM
 * bandwidth across clusters in proportion to each cluster's measured
 * demand over the last window (with a 1 byte/cycle floor so no
 * cluster starves), and it accounts for work migration when the batch
 * scheduler adopts a queued workload onto a core outside its home
 * cluster.
 *
 * Everything is integer arithmetic over deterministic inputs, so
 * clustered runs stay byte-identical across hosts and thread counts.
 */

#ifndef OCCAMY_LANEMGR_CLUSTER_ARBITER_HH
#define OCCAMY_LANEMGR_CLUSTER_ARBITER_HH

#include <cstdint>
#include <vector>

#include "ckpt/fwd.hh"
#include "common/types.hh"

namespace occamy
{

/** Demand-proportional inter-cluster DRAM bandwidth arbiter. */
class ClusterArbiter
{
  public:
    /**
     * @param clusters Cluster count (>= 2 in practice; the System
     *        only instantiates an arbiter on clustered machines).
     * @param total_bpc Machine-total DRAM bandwidth in bytes/cycle.
     * @param period Cycles between rebalances.
     */
    ClusterArbiter(unsigned clusters, unsigned total_bpc,
                   unsigned period);

    unsigned clusters() const { return nclusters_; }
    unsigned period() const { return period_; }
    unsigned totalBpc() const { return total_bpc_; }

    /** Currently granted bytes/cycle per cluster (sums to totalBpc(),
     *  every entry >= 1). Starts as an equal split with the remainder
     *  handed to the lowest-numbered clusters, like busShare(). */
    const std::vector<unsigned> &shares() const { return shares_; }

    /**
     * Rebalance at cycle @p now given each cluster's cumulative DRAM
     * byte counter. The per-window demand is the delta against the
     * previous rebalance; a window with zero total demand keeps an
     * equal split. @return the new per-cluster shares.
     */
    const std::vector<unsigned> &
    rebalance(Cycle now, const std::vector<std::uint64_t> &dram_bytes);

    /** Rebalances published so far. */
    std::uint64_t rebalances() const { return rebalances_; }

    /** Record one cross-cluster adoption of a queued workload. */
    void noteMigration(unsigned from_cluster, unsigned to_cluster);

    std::uint64_t migratedIn(unsigned cluster) const
    {
        return migrated_in_[cluster];
    }
    std::uint64_t migratedOut(unsigned cluster) const
    {
        return migrated_out_[cluster];
    }
    std::uint64_t migrations() const { return migrations_; }

    /**
     * Time-weighted mean of @p cluster's granted share over
     * [0, @p end_cycle], counting the currently granted share up to
     * @p end_cycle. Reporting only — does not advance arbiter state.
     */
    double avgShare(unsigned cluster, Cycle end_cycle) const;

    /** Checkpoint hooks: grants, window baselines, share integrals and
     *  the migration/rebalance counters. */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

  private:
    unsigned nclusters_;
    unsigned total_bpc_;
    unsigned period_;

    std::vector<unsigned> shares_;
    /** Cumulative per-cluster DRAM bytes at the last rebalance. */
    std::vector<std::uint64_t> last_bytes_;
    /** Integral of granted share over time (bytes/cycle * cycles),
     *  for time-weighted reporting. */
    std::vector<std::uint64_t> share_integral_;
    Cycle last_update_ = 0;

    std::uint64_t rebalances_ = 0;
    std::uint64_t migrations_ = 0;
    std::vector<std::uint64_t> migrated_in_;
    std::vector<std::uint64_t> migrated_out_;
};

} // namespace occamy

#endif // OCCAMY_LANEMGR_CLUSTER_ARBITER_HH
