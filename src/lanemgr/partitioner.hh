/**
 * @file
 * Greedy lane partitioner (Section 5.2).
 *
 * Given the <OI> of every co-running workload currently inside a phase,
 * produce a lane-partition plan {vl_1 .. vl_M} in ExeBUs maximizing the
 * sum of roofline-attainable performance, subject to Eq. 1:
 * each active workload gets at least one ExeBU and the total does not
 * exceed N.
 *
 * The algorithm is the paper's three-step greedy:
 *  1. give each active workload one ExeBU;
 *  2. repeatedly sort workloads by the net gain of one extra ExeBU
 *     (Eq. 3) and hand one ExeBU to each with positive gain, in order;
 *  3. stop when ExeBUs run out or nobody gains.
 */

#ifndef OCCAMY_LANEMGR_PARTITIONER_HH
#define OCCAMY_LANEMGR_PARTITIONER_HH

#include <vector>

#include "isa/inst.hh"
#include "lanemgr/roofline.hh"

namespace occamy
{

/**
 * Compute a lane-partition plan.
 *
 * @param p Roofline ceilings.
 * @param ois Per-workload operational intensity; entries with
 *        !oi.active() (OI == 0, i.e. not inside a phase) receive 0.
 * @param total_bus Number of ExeBUs to distribute.
 * @return ExeBUs per workload (same order as @p ois). The sum may be
 *         less than @p total_bus when extra units would not help anyone.
 */
std::vector<unsigned> greedyPartition(const RooflineParams &p,
                                      const std::vector<PhaseOI> &ois,
                                      unsigned total_bus);

/**
 * Offline static partition used by the VLS architecture: each workload
 * demands the maximum over its phases' roofline knees (a static split
 * must satisfy its most demanding phase), then leftover units go to the
 * workloads that still gain (compute-bound ones), round-robin.
 *
 * @param p Roofline ceilings.
 * @param phase_ois Per workload, the OIs of all its phases.
 * @param total_bus Number of ExeBUs to distribute.
 * @return ExeBUs per workload; always >= 1 per workload, sums to
 *         <= total_bus.
 */
std::vector<unsigned> staticPartition(
    const RooflineParams &p,
    const std::vector<std::vector<PhaseOI>> &phase_ois,
    unsigned total_bus);

} // namespace occamy

#endif // OCCAMY_LANEMGR_PARTITIONER_HH
