#include "lanemgr/cluster_arbiter.hh"

#include <cassert>

#include "ckpt/ckpt.hh"

namespace occamy
{

namespace
{

/** Equal split of @p total over @p n with the remainder handed to the
 *  lowest indices — the same convention as MachineConfig::busShare. */
std::vector<unsigned>
equalSplit(unsigned n, unsigned total)
{
    std::vector<unsigned> out(n, total / n);
    for (unsigned k = 0; k < total % n; ++k)
        ++out[k];
    for (auto &s : out)
        if (s == 0)
            s = 1;
    return out;
}

} // namespace

ClusterArbiter::ClusterArbiter(unsigned clusters, unsigned total_bpc,
                               unsigned period)
    : nclusters_(clusters), total_bpc_(total_bpc), period_(period),
      shares_(equalSplit(clusters, total_bpc)),
      last_bytes_(clusters, 0), share_integral_(clusters, 0),
      migrated_in_(clusters, 0), migrated_out_(clusters, 0)
{
    assert(clusters >= 1 && period >= 1);
}

const std::vector<unsigned> &
ClusterArbiter::rebalance(Cycle now,
                          const std::vector<std::uint64_t> &dram_bytes)
{
    assert(dram_bytes.size() == nclusters_);

    // Close the elapsed window under the outgoing grants.
    for (unsigned k = 0; k < nclusters_; ++k)
        share_integral_[k] += static_cast<std::uint64_t>(shares_[k]) *
                              (now - last_update_);
    last_update_ = now;

    std::uint64_t total_demand = 0;
    std::vector<std::uint64_t> demand(nclusters_);
    for (unsigned k = 0; k < nclusters_; ++k) {
        demand[k] = dram_bytes[k] - last_bytes_[k];
        last_bytes_[k] = dram_bytes[k];
        total_demand += demand[k];
    }

    if (total_demand == 0 || total_bpc_ <= nclusters_) {
        shares_ = equalSplit(nclusters_, total_bpc_);
        ++rebalances_;
        return shares_;
    }

    // Guarantee 1 byte/cycle per cluster, then split the rest in
    // proportion to demand: integer floors first, then the leftover
    // units to the largest fractional remainders (ties to the lowest
    // cluster id) — fully deterministic, no floating point.
    const unsigned pool = total_bpc_ - nclusters_;
    std::vector<std::uint64_t> remainder(nclusters_);
    unsigned granted = 0;
    for (unsigned k = 0; k < nclusters_; ++k) {
        const auto scaled = static_cast<unsigned __int128>(demand[k]) *
                            pool;
        shares_[k] = 1 + static_cast<unsigned>(scaled / total_demand);
        remainder[k] = static_cast<std::uint64_t>(scaled % total_demand);
        granted += shares_[k];
    }
    while (granted < total_bpc_) {
        unsigned best = 0;
        for (unsigned k = 1; k < nclusters_; ++k)
            if (remainder[k] > remainder[best])
                best = k;
        ++shares_[best];
        remainder[best] = 0;
        ++granted;
    }

    ++rebalances_;
    return shares_;
}

void
ClusterArbiter::noteMigration(unsigned from_cluster, unsigned to_cluster)
{
    ++migrations_;
    ++migrated_out_[from_cluster];
    ++migrated_in_[to_cluster];
}

double
ClusterArbiter::avgShare(unsigned cluster, Cycle end_cycle) const
{
    if (end_cycle == 0)
        return static_cast<double>(shares_[cluster]);
    const std::uint64_t integral =
        share_integral_[cluster] +
        static_cast<std::uint64_t>(shares_[cluster]) *
            (end_cycle - last_update_);
    return static_cast<double>(integral) /
           static_cast<double>(end_cycle);
}

void
ClusterArbiter::save(ckpt::Writer &w) const
{
    w.u64(rebalances_);
    w.u64(migrations_);
    w.u64(last_update_);
    for (unsigned k = 0; k < nclusters_; ++k) {
        w.u32(shares_[k]);
        w.u64(last_bytes_[k]);
        w.u64(share_integral_[k]);
        w.u64(migrated_in_[k]);
        w.u64(migrated_out_[k]);
    }
}

void
ClusterArbiter::load(ckpt::Reader &r)
{
    rebalances_ = r.u64();
    migrations_ = r.u64();
    last_update_ = r.u64();
    for (unsigned k = 0; k < nclusters_; ++k) {
        shares_[k] = r.u32();
        last_bytes_[k] = r.u64();
        share_integral_[k] = r.u64();
        migrated_in_[k] = r.u64();
        migrated_out_[k] = r.u64();
    }
}

} // namespace occamy
