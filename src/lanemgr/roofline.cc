#include "lanemgr/roofline.hh"

#include <algorithm>
#include <cassert>

#include "common/types.hh"

namespace occamy
{

RooflineParams
RooflineParams::fromConfig(const MachineConfig &cfg)
{
    RooflineParams p;
    p.ghz = cfg.ghz;
    p.vecCacheBytesPerCycle = cfg.vecCache.bytesPerCycle;
    p.l2BytesPerCycle = cfg.l2.bytesPerCycle;
    p.dramBytesPerCycle = cfg.dramBytesPerCycle;
    return p;
}

double
fpPeak(const RooflineParams &p, unsigned vl_bus)
{
    return p.flopsPerLanePerCycle * p.ghz * vl_bus * kLanesPerBu;
}

double
simdIssueBandwidth(const RooflineParams &p, unsigned vl_bus)
{
    // Eq. 2: SIMD-issue_BW = SIMD-issue_width * vl * 16 bytes/cycle.
    return p.simdIssueWidth * vl_bus * kBytesPerBu * p.ghz;
}

double
memBandwidth(const RooflineParams &p, MemLevel level)
{
    switch (level) {
      case MemLevel::VecCache:
        return p.vecCacheBytesPerCycle * p.ghz;
      case MemLevel::L2:
        return p.l2BytesPerCycle * p.ghz;
      case MemLevel::Dram:
        return p.dramBytesPerCycle * p.ghz;
    }
    return 0.0;
}

double
attainable(const RooflineParams &p, const PhaseOI &oi, unsigned vl_bus)
{
    if (vl_bus == 0 || !oi.active())
        return 0.0;
    const double comp = fpPeak(p, vl_bus);
    const double issue = simdIssueBandwidth(p, vl_bus) * oi.issue;
    const double mem = memBandwidth(p, oi.level) * oi.mem;
    return std::min({comp, issue, mem});
}

unsigned
kneeVl(const RooflineParams &p, const PhaseOI &oi, unsigned max_bus)
{
    assert(max_bus >= 1);
    unsigned best = 1;
    double best_ap = attainable(p, oi, 1);
    for (unsigned vl = 2; vl <= max_bus; ++vl) {
        const double ap = attainable(p, oi, vl);
        if (ap > best_ap + 1e-9) {
            best_ap = ap;
            best = vl;
        }
    }
    return best;
}

} // namespace occamy
