#include "compiler/compiler.hh"

#include <cassert>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "kir/analysis.hh"

namespace occamy
{

namespace
{

/** Architectural register plan used by the vectorizer. */
constexpr int kFirstTemp = 0;      ///< z0..z23: expression temporaries.
constexpr int kLastTemp = 23;
constexpr int kFirstInvariant = 24;///< z24..z27: loop-invariant consts.
constexpr int kLastInvariant = 27;
constexpr int kFirstAcc = 28;      ///< z28..z31: rotating reduction accs.
constexpr unsigned kNumAccs = 4;

Opcode
opcodeFor(kir::ArithOp op)
{
    using kir::ArithOp;
    switch (op) {
      case ArithOp::Add: return Opcode::VFAdd;
      case ArithOp::Sub: return Opcode::VFSub;
      case ArithOp::Mul: return Opcode::VFMul;
      case ArithOp::Div: return Opcode::VFDiv;
      case ArithOp::Min: return Opcode::VFMin;
      case ArithOp::Max: return Opcode::VFMax;
      case ArithOp::Neg: return Opcode::VFNeg;
      case ArithOp::Sqrt: return Opcode::VFSqrt;
      case ArithOp::Abs: return Opcode::VFAbs;
      case ArithOp::Fma: return Opcode::VFMla;
    }
    return Opcode::VFAdd;
}

/**
 * Expression-DAG code generator with structural CSE, refcount-driven
 * temporary recycling and loop-invariant hoisting.
 */
class Codegen
{
  public:
    Codegen(const kir::Loop &loop, int array_base, std::vector<Inst> &out)
        : loop_(loop), array_base_(array_base), out_(out)
    {
        for (int r = kLastTemp; r >= kFirstTemp; --r)
            free_temps_.push_back(r);
    }

    /** Pre-pass: count uses of every structurally unique node. */
    void
    countUses(const kir::ExprP &e)
    {
        const std::string k = keyOf(e);
        ++uses_[k];
        if (visited_.insert(k).second && e->kind == kir::Expr::Kind::Op) {
            countUses(e->a);
            if (e->b)
                countUses(e->b);
            if (e->c)
                countUses(e->c);
        }
    }

    /** Emit code computing @p e; @return its architectural register. */
    int
    emit(const kir::ExprP &e)
    {
        const std::string k = keyOf(e);
        auto it = reg_of_.find(k);
        if (it != reg_of_.end())
            return it->second;

        int reg = -1;
        switch (e->kind) {
          case kir::Expr::Kind::Const:
            reg = invariantReg(e->value);
            break;
          case kir::Expr::Kind::Load: {
            reg = allocTemp();
            Inst inst;
            inst.op = Opcode::VLoad;
            inst.dst = static_cast<std::int16_t>(reg);
            inst.arrayId =
                static_cast<std::int16_t>(array_base_ + e->array);
            inst.elemOffset = e->offset;
            inst.stride = e->stride;
            inst.elemBytes = loop_.arrays[e->array].elemBytes;
            out_.push_back(inst);
            break;
          }
          case kir::Expr::Kind::Op: {
            const int ra = emit(e->a);
            const int rb = e->b ? emit(e->b) : -1;
            const int rc = e->c ? emit(e->c) : -1;
            // Children are consumed exactly once by this (unique) node.
            release(e->a);
            if (e->b)
                release(e->b);
            if (e->c)
                release(e->c);
            reg = allocTemp();
            Inst inst;
            inst.op = opcodeFor(e->op);
            inst.dst = static_cast<std::int16_t>(reg);
            inst.src[inst.nsrc++] = static_cast<std::int16_t>(ra);
            if (rb >= 0)
                inst.src[inst.nsrc++] = static_cast<std::int16_t>(rb);
            if (rc >= 0)
                inst.src[inst.nsrc++] = static_cast<std::int16_t>(rc);
            out_.push_back(inst);
            break;
          }
        }
        reg_of_[k] = reg;
        return reg;
    }

    /** Note one consumption of @p e; recycle its temp on the last use. */
    void
    release(const kir::ExprP &e)
    {
        const std::string k = keyOf(e);
        assert(uses_[k] > 0);
        if (--uses_[k] == 0 && e->kind != kir::Expr::Kind::Const) {
            auto it = reg_of_.find(k);
            if (it != reg_of_.end()) {
                free_temps_.push_back(it->second);
                reg_of_.erase(it);
            }
        }
    }

    /** Map of hoisted constants to their invariant registers. */
    const std::map<double, int> &invariants() const { return invariant_; }

  private:
    std::string
    keyOf(const kir::ExprP &e)
    {
        auto it = key_memo_.find(e.get());
        if (it != key_memo_.end())
            return it->second;
        std::ostringstream os;
        switch (e->kind) {
          case kir::Expr::Kind::Load:
            os << "L" << e->array << "@" << e->offset << "s" << e->stride;
            break;
          case kir::Expr::Kind::Const:
            os << "C" << e->value;
            break;
          case kir::Expr::Kind::Op:
            os << "O" << static_cast<int>(e->op) << "(" << keyOf(e->a);
            if (e->b)
                os << "," << keyOf(e->b);
            if (e->c)
                os << "," << keyOf(e->c);
            os << ")";
            break;
        }
        auto k = os.str();
        key_memo_.emplace(e.get(), k);
        return k;
    }

    int
    allocTemp()
    {
        if (free_temps_.empty())
            throw std::runtime_error(
                "vectorizer: out of temporary vector registers in loop " +
                loop_.name);
        const int r = free_temps_.back();
        free_temps_.pop_back();
        return r;
    }

    int
    invariantReg(double v)
    {
        auto it = invariant_.find(v);
        if (it != invariant_.end())
            return it->second;
        const int reg = kFirstInvariant + static_cast<int>(invariant_.size());
        if (reg > kLastInvariant)
            throw std::runtime_error(
                "vectorizer: too many loop-invariant constants in loop " +
                loop_.name);
        invariant_.emplace(v, reg);
        return reg;
    }

    const kir::Loop &loop_;
    int array_base_;
    std::vector<Inst> &out_;
    std::map<const kir::Expr *, std::string> key_memo_;
    std::map<std::string, unsigned> uses_;
    std::set<std::string> visited_;
    std::map<std::string, int> reg_of_;
    std::vector<int> free_temps_;
    std::map<double, int> invariant_;
};

Inst
makeMsrOI(const PhaseOI &oi)
{
    Inst inst;
    inst.op = Opcode::MsrOI;
    inst.oi = oi;
    return inst;
}

Inst
makeMsrVL(unsigned vl_bus, bool from_decision = false)
{
    Inst inst;
    inst.op = Opcode::MsrVL;
    inst.imm = vl_bus;
    inst.vlFromDecision = from_decision;
    return inst;
}

Inst
makeDup(int dst)
{
    Inst inst;
    inst.op = Opcode::VDup;
    inst.dst = static_cast<std::int16_t>(dst);
    return inst;
}

} // namespace

CompileOptions
CompileOptions::forMachine(const MachineConfig &cfg, unsigned fixed_vl_bus)
{
    const policy::SharingModel &model = policy::model(cfg.policy);
    CompileOptions o;
    o.codegen = model.codegen();
    o.maxVlBus = cfg.numExeBUs;
    o.fairShareBus = cfg.numExeBUs / cfg.numCores;
    o.fixedVlBus = model.compilerFixedVl(cfg, fixed_vl_bus);
    o.vecCacheBytes = cfg.vecCache.sizeBytes;
    o.l2Bytes = cfg.l2.sizeBytes;
    o.monitorPeriod = cfg.monitorPeriod;
    o.roofline = RooflineParams::fromConfig(cfg);
    return o;
}

VectorLoop
Compiler::compileLoop(const kir::Loop &loop,
                      std::vector<ArrayInfo> &arrays) const
{
    VectorLoop vloop;
    const int array_base = static_cast<int>(arrays.size());
    for (const auto &decl : loop.arrays)
        arrays.push_back(ArrayInfo{decl.name, decl.elems, decl.elemBytes,
                                   decl.streaming, /*base=*/0});

    // --- Phase-behaviour analysis (Section 6.3, Eq. 5). ---
    const kir::LoopSummary summary = kir::analyze(loop);
    PhaseInfo &phase = vloop.phase;
    phase.name = loop.name;
    phase.oi.issue = summary.oiIssue();
    phase.oi.mem = summary.oiMem();
    phase.oi.level =
        kir::classifyMemLevel(loop, opts_.vecCacheBytes, opts_.l2Bytes);
    phase.tripElems = loop.trip;
    phase.computeInsts = summary.computeInsts;
    phase.memInsts = summary.memInsts;
    phase.footprintBytes = summary.footprintBytes;
    phase.accessBytes = summary.accessBytes;
    phase.memoryIntensive = phase.oi.level == MemLevel::Dram &&
                            phase.oi.mem < 0.5;
    unsigned widest = 0;
    for (const auto &decl : loop.arrays)
        widest = std::max<unsigned>(widest, decl.elemBytes);
    if (widest == 0)
        widest = 4;
    phase.elemBytes = widest;
    vloop.elemsPerBu = kBuBits / 8 / widest;
    vloop.hasReduction = summary.hasReduction;
    vloop.scalarThreshold = opts_.scalarThreshold;
    vloop.monitorPeriod = opts_.monitorPeriod ? opts_.monitorPeriod : 1;

    // --- Vectorized loop body. ---
    {
        Inst whilelt;
        whilelt.op = Opcode::VWhilelt;
        vloop.body.push_back(whilelt);
    }
    Codegen cg(loop, array_base, vloop.body);
    for (const auto &st : loop.stores)
        cg.countUses(st.value);
    if (loop.reduction)
        cg.countUses(loop.reduction);
    for (const auto &st : loop.stores) {
        const int reg = cg.emit(st.value);
        Inst inst;
        inst.op = Opcode::VStore;
        inst.src[inst.nsrc++] = static_cast<std::int16_t>(reg);
        inst.arrayId = static_cast<std::int16_t>(array_base + st.array);
        inst.elemOffset = st.offset;
        inst.stride = st.stride;
        inst.elemBytes = loop.arrays[st.array].elemBytes;
        vloop.body.push_back(inst);
        cg.release(st.value);
    }
    if (loop.reduction) {
        const int reg = cg.emit(loop.reduction);
        Inst acc;
        acc.op = Opcode::VFAdd;
        acc.dst = kFirstAcc;
        acc.src[acc.nsrc++] = kFirstAcc;
        acc.src[acc.nsrc++] = static_cast<std::int16_t>(reg);
        acc.rotateAcc = true;
        vloop.body.push_back(acc);
        cg.release(loop.reduction);
    }

    // --- Loop-invariant initialization (shared by prologue / reinit). ---
    std::vector<Inst> invariant_init;
    for (const auto &[value, reg] : cg.invariants()) {
        (void)value;
        invariant_init.push_back(makeDup(reg));
    }
    if (vloop.hasReduction)
        for (unsigned a = 0; a < kNumAccs; ++a)
            invariant_init.push_back(makeDup(kFirstAcc + static_cast<int>(a)));

    // --- Default vector length. ---
    const policy::CodegenTraits &traits = opts_.codegen;
    if (traits.kneeDefaultVl) {
        const unsigned knee = kneeVl(opts_.roofline, phase.oi,
                                     opts_.maxVlBus);
        vloop.defaultVl = std::min(knee, opts_.fairShareBus);
        if (vloop.defaultVl == 0)
            vloop.defaultVl = 1;
    } else {
        vloop.defaultVl = opts_.fixedVlBus;
    }

    // --- Eager partitioning: phase prologue (Fig. 9). ---
    if (traits.phaseOi)
        vloop.prologue.push_back(makeMsrOI(phase.oi));
    vloop.prologue.push_back(makeMsrVL(vloop.defaultVl));
    for (const auto &inst : invariant_init)
        vloop.prologue.push_back(inst);

    // --- Lazy partitioning: monitor + reconfiguration. ---
    if (traits.monitor) {
        Inst mon;
        mon.op = Opcode::MrsDecision;
        mon.dst = 4;    // x4 per Fig. 9.
        vloop.monitor.push_back(mon);

        vloop.reconfig.push_back(makeMsrVL(0, /*from_decision=*/true));
        vloop.reinit = invariant_init;
        if (vloop.hasReduction) {
            // Fold the partial sums so they can seed the accumulators
            // under the new vector length (Section 6.4).
            for (unsigned a = 0; a < kNumAccs; ++a) {
                Inst red;
                red.op = Opcode::VRedAdd;
                red.src[red.nsrc++] = kFirstAcc + static_cast<std::int16_t>(a);
                vloop.reinit.push_back(red);
            }
        }
    }

    // --- Phase epilogue. ---
    if (vloop.hasReduction) {
        for (unsigned a = 0; a < kNumAccs; ++a) {
            Inst red;
            red.op = Opcode::VRedAdd;
            red.src[red.nsrc++] = kFirstAcc + static_cast<std::int16_t>(a);
            vloop.epilogue.push_back(red);
        }
    }
    if (traits.phaseOi) {
        PhaseOI zero;
        vloop.epilogue.push_back(makeMsrOI(zero));
    }
    if (traits.releaseLanes)
        vloop.epilogue.push_back(makeMsrVL(0));

    // --- Multi-version scalar fallback (Section 6.3). ---
    for (unsigned i = 0; i < phase.memInsts; ++i) {
        Inst inst;
        inst.op = Opcode::SLoad;
        vloop.scalarBody.push_back(inst);
    }
    for (unsigned i = 0; i < phase.computeInsts; ++i) {
        Inst inst;
        inst.op = Opcode::SAlu;
        vloop.scalarBody.push_back(inst);
    }

    return vloop;
}

Program
Compiler::compile(const std::string &name,
                  const std::vector<kir::Loop> &loops) const
{
    Program prog;
    prog.name = name;
    for (const auto &loop : loops)
        prog.loops.push_back(compileLoop(loop, prog.arrays));
    return prog;
}

} // namespace occamy
