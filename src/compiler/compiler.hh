/**
 * @file
 * The Occamy compiler (Section 6): lowers kernel-IR loops to vectorized,
 * vector-length-agnostic SVE code and inserts the EM-SIMD instructions
 * implementing eager-lazy lane partitioning (Fig. 9).
 *
 * Responsibilities, by paper section:
 *  - 6.1/6.2: phase prologue (MSR <OI>, default-VL set loop), per
 *    iteration partition monitor (MRS <decision>), vector-length
 *    reconfiguration (MSR <VL> retry loop), phase epilogue (MSR <OI>,0
 *    and lane release);
 *  - 6.3: phase-behaviour analysis (Eq. 5) and multi-version code
 *    generation for small trip counts;
 *  - 6.4: correctness across VL changes: re-broadcast of loop-invariant
 *    registers and reduction fix-up code in the re-init block.
 */

#ifndef OCCAMY_COMPILER_COMPILER_HH
#define OCCAMY_COMPILER_COMPILER_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "isa/inst.hh"
#include "kir/kir.hh"
#include "lanemgr/roofline.hh"
#include "policy/sharing_model.hh"

namespace occamy
{

/** Per-compilation options; the target policy's CodegenTraits decide
 *  which EM-SIMD code-insertion strategies apply. */
struct CompileOptions
{
    /** Code-insertion strategy of the target policy (which EM-SIMD
     *  blocks to emit, how the default VL is picked). Defaults to the
     *  full elastic strategy. */
    policy::CodegenTraits codegen;

    /** Machine-wide number of ExeBUs (max vector length in BUs). */
    unsigned maxVlBus = 8;

    /**
     * Fixed vector length in BUs for targets whose traits disable
     * knee-based default-VL selection (Private/VLS/FTS entitlements);
     * ignored when CodegenTraits::kneeDefaultVl is set.
     */
    unsigned fixedVlBus = 4;

    /** Elastic default-VL cap: a fair share so the prologue's first
     *  request can always succeed promptly. */
    unsigned fairShareBus = 4;

    /** Below this trip count the multi-version scalar variant runs. */
    std::uint64_t scalarThreshold = 128;

    /** Run the lazy partition monitor every N iterations (Section 6.1
     *  requires lazy points at iteration boundaries, not at every one;
     *  amortizing keeps the monitoring overhead near the paper's
     *  ~0.3%). */
    unsigned monitorPeriod = 8;

    /** Cache capacities used by phase classification. */
    std::uint64_t vecCacheBytes = 128 * 1024;
    std::uint64_t l2Bytes = 8 * 1024 * 1024;

    /** Roofline ceilings used for the compiler's default-VL selection. */
    RooflineParams roofline;

    /** Build options matching a machine configuration. */
    static CompileOptions forMachine(const MachineConfig &cfg,
                                     unsigned fixed_vl_bus = 0);
};

/** The Occamy compiler. */
class Compiler
{
  public:
    explicit Compiler(CompileOptions opts) : opts_(opts) {}

    /**
     * Compile a workload (ordered list of loops == phases) into a
     * Program ready to run on a scalar core.
     */
    Program compile(const std::string &name,
                    const std::vector<kir::Loop> &loops) const;

    /**
     * Compile one loop. @p arrays is the program-level array table;
     * the loop's arrays are appended and instructions reference them by
     * program-level index.
     */
    VectorLoop compileLoop(const kir::Loop &loop,
                           std::vector<ArrayInfo> &arrays) const;

    const CompileOptions &options() const { return opts_; }

  private:
    CompileOptions opts_;
};

} // namespace occamy

#endif // OCCAMY_COMPILER_COMPILER_HH
