#include "kir/analysis.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace occamy::kir
{

namespace
{

/**
 * Structural CSE walker: assigns each structurally distinct node one
 * canonical key so repeated subexpressions (e.g. (v[i]+v_1[i]) used by
 * both Ufx and Ufe in Fig. 2a) count as a single SIMD instruction.
 */
class Canonicalizer
{
  public:
    /** @return canonical key of @p e, visiting children first. */
    std::string
    key(const ExprP &e)
    {
        auto it = memo_.find(e.get());
        if (it != memo_.end())
            return it->second;

        std::ostringstream os;
        switch (e->kind) {
          case Expr::Kind::Load:
            os << "L" << e->array << "@" << e->offset << "s"
               << e->stride;
            loads_.emplace(std::tuple<int, std::int32_t, std::int32_t>(
                e->array, e->offset, e->stride));
            break;
          case Expr::Kind::Const:
            os << "C" << e->value;
            consts_.insert(e->value);
            break;
          case Expr::Kind::Op: {
            os << "O" << static_cast<int>(e->op);
            os << "(" << key(e->a);
            if (e->b)
                os << "," << key(e->b);
            if (e->c)
                os << "," << key(e->c);
            os << ")";
            break;
          }
        }
        std::string k = os.str();
        if (e->kind == Expr::Kind::Op)
            ops_.insert(k);
        memo_.emplace(e.get(), k);
        return k;
    }

    const std::set<std::tuple<int, std::int32_t, std::int32_t>> &
    loads() const
    {
        return loads_;
    }
    const std::set<std::string> &ops() const { return ops_; }
    const std::set<double> &consts() const { return consts_; }

  private:
    std::map<const Expr *, std::string> memo_;
    std::set<std::tuple<int, std::int32_t, std::int32_t>> loads_;
    std::set<std::string> ops_;
    std::set<double> consts_;
};

} // namespace

LoopSummary
analyze(const Loop &loop)
{
    LoopSummary s;
    Canonicalizer canon;

    for (const auto &st : loop.stores)
        canon.key(st.value);
    if (loop.reduction) {
        canon.key(loop.reduction);
        s.hasReduction = true;
        // The in-loop accumulate (fmla/fadd into the running vector
        // accumulator) is one extra compute instruction per iteration.
    }

    // Unique stores per iteration.
    std::set<std::pair<int, std::int32_t>> store_sites;
    for (const auto &st : loop.stores)
        store_sites.emplace(st.array, st.offset);
    // Note: stride does not change Eq. 5's per-iteration instruction
    // and byte counts; the cache model charges the real line traffic.

    s.computeInsts = static_cast<unsigned>(canon.ops().size()) +
                     (s.hasReduction ? 1 : 0);
    s.invariants = static_cast<unsigned>(canon.consts().size());

    // Memory instructions and Eq. 5 denominators.
    double access_bytes = 0.0;
    unsigned mem_insts = 0;

    // Per array, the set of distinct offsets it is accessed at.
    std::map<int, std::set<std::int32_t>> read_offsets;
    for (const auto &[array, offset, stride] : canon.loads()) {
        (void)stride;
        ++mem_insts;
        access_bytes += loop.arrays[array].elemBytes;
        read_offsets[array].insert(offset);
    }
    std::map<int, std::set<std::int32_t>> write_offsets;
    for (const auto &[array, offset] : store_sites) {
        ++mem_insts;
        access_bytes += loop.arrays[array].elemBytes;
        write_offsets[array].insert(offset);
    }

    // Footprint with sliding-window reuse: per array, offsets that lie
    // within a small window of each other re-touch the same stream, so
    // each cluster of nearby offsets contributes one new element per
    // iteration (e.g. dz[k-1] and dz[k] cost one element, not two).
    auto cluster_count = [](const std::set<std::int32_t> &offs) {
        unsigned clusters = 0;
        std::int32_t prev = 0;
        bool first = true;
        for (std::int32_t o : offs) {
            if (first || o - prev > 8)
                ++clusters;
            prev = o;
            first = false;
        }
        return clusters;
    };

    double footprint = 0.0;
    std::set<int> touched;
    for (const auto &[array, offs] : read_offsets) {
        footprint += cluster_count(offs) * loop.arrays[array].elemBytes;
        touched.insert(array);
    }
    for (const auto &[array, offs] : write_offsets) {
        // A store to an array already covered by a read cluster (e.g.
        // in-place update a[i] = f(a[i])) adds no new footprint.
        if (touched.count(array))
            continue;
        footprint += cluster_count(offs) * loop.arrays[array].elemBytes;
        touched.insert(array);
    }

    s.memInsts = mem_insts;
    s.accessBytes = access_bytes;
    s.footprintBytes = footprint;
    s.totalBytes = footprint * static_cast<double>(loop.trip);
    return s;
}

MemLevel
classifyMemLevel(const Loop &loop, std::uint64_t vec_cache_bytes,
                 std::uint64_t l2_bytes)
{
    // Streaming arrays are traversed in a single cold pass: every line
    // is a compulsory miss, so a streaming-dominated loop is DRAM-bound
    // regardless of array size. Wrapped arrays form a resident working
    // set classified against the cache capacities.
    std::uint64_t resident = 0;
    std::uint64_t streamed = 0;
    for (const auto &arr : loop.arrays) {
        const std::uint64_t bytes = arr.elems * arr.elemBytes;
        if (arr.streaming)
            streamed += bytes;
        else
            resident += bytes;
    }

    if (streamed > resident)
        return MemLevel::Dram;
    if (resident * 4 <= vec_cache_bytes * 3)      // <= 75% of VecCache
        return MemLevel::VecCache;
    if (resident * 4 <= l2_bytes * 3)             // <= 75% of L2
        return MemLevel::L2;
    return MemLevel::Dram;
}

PhaseOI
phaseOI(const Loop &loop, std::uint64_t vec_cache_bytes,
        std::uint64_t l2_bytes)
{
    const LoopSummary s = analyze(loop);
    PhaseOI oi;
    oi.issue = s.oiIssue();
    oi.mem = s.oiMem();
    oi.level = classifyMemLevel(loop, vec_cache_bytes, l2_bytes);
    return oi;
}

} // namespace occamy::kir
