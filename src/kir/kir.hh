/**
 * @file
 * Kernel IR: the small affine-loop language the Occamy compiler consumes.
 *
 * A kir::Loop describes one innermost loop over unit-stride arrays:
 * a set of array declarations, a list of stores whose right-hand sides
 * are expression DAGs over array loads and constants, and optionally a
 * scalar reduction. This is exactly the shape of the SPECCPU2017 /
 * OpenCV loops used in the paper (Fig. 2a, Table 3).
 */

#ifndef OCCAMY_KIR_KIR_HH
#define OCCAMY_KIR_KIR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace occamy::kir
{

/** Arithmetic operators available in kernel expressions. */
enum class ArithOp : std::uint8_t
{
    Add, Sub, Mul, Div, Min, Max,   // binary
    Neg, Sqrt, Abs,                 // unary
    Fma,                            // ternary a*b + c
};

/** @return number of operands an ArithOp takes. */
constexpr unsigned
arity(ArithOp op)
{
    switch (op) {
      case ArithOp::Neg:
      case ArithOp::Sqrt:
      case ArithOp::Abs:
        return 1;
      case ArithOp::Fma:
        return 3;
      default:
        return 2;
    }
}

struct Expr;
/** Shared immutable expression node (DAG-friendly). */
using ExprP = std::shared_ptr<const Expr>;

/** One expression node: an array load, a constant, or an operation. */
struct Expr
{
    enum class Kind : std::uint8_t { Load, Const, Op } kind;

    // Kind::Load
    int array = -1;                 ///< Index into Loop::arrays.
    std::int32_t offset = 0;        ///< Element offset vs induction var.
    std::int32_t stride = 1;        ///< Element stride (>1 = gather).

    // Kind::Const
    double value = 0.0;

    // Kind::Op
    ArithOp op = ArithOp::Add;
    ExprP a, b, c;
};

/** Build a load of arrays[array][i + offset]. */
ExprP load(int array, std::int32_t offset = 0);
/** Build a strided (gather) load of arrays[array][i*stride + offset]. */
ExprP loadStrided(int array, std::int32_t stride,
                  std::int32_t offset = 0);
/** Build a loop-invariant floating-point constant. */
ExprP cst(double v);
ExprP add(ExprP a, ExprP b);
ExprP sub(ExprP a, ExprP b);
ExprP mul(ExprP a, ExprP b);
ExprP div(ExprP a, ExprP b);
ExprP vmin(ExprP a, ExprP b);
ExprP vmax(ExprP a, ExprP b);
ExprP neg(ExprP a);
ExprP sqrt(ExprP a);
ExprP abs(ExprP a);
/** a * b + c. */
ExprP fma(ExprP a, ExprP b, ExprP c);
/** Build an operation node directly from an ArithOp tag. */
ExprP op(ArithOp o, ExprP a, ExprP b = nullptr, ExprP c = nullptr);

/** Array declaration local to one loop. */
struct ArrayDecl
{
    std::string name;
    std::uint64_t elems = 0;        ///< Logical length in elements.
    std::uint8_t elemBytes = 4;     ///< 4 = f32, the paper's lane width.
    /**
     * True if the loop streams through the array once (index == i);
     * false means accesses wrap modulo `elems`, keeping the working set
     * cache-resident regardless of trip count (used by compute kernels).
     */
    bool streaming = true;
};

/** One store: arrays[array][i*stride + offset] = value. */
struct Stmt
{
    int array = -1;
    std::int32_t offset = 0;
    std::int32_t stride = 1;        ///< Element stride (>1 = scatter).
    ExprP value;
};

/** An innermost loop: the compiler's unit of vectorization (== phase). */
struct Loop
{
    std::string name;
    std::vector<ArrayDecl> arrays;
    std::vector<Stmt> stores;

    /** Optional reduction: acc += reduction(i) each iteration. */
    ExprP reduction;

    /** Scalar trip count. */
    std::uint64_t trip = 0;

    /** Declare an array, returning its index for load()/Stmt::array. */
    int addArray(std::string name, std::uint64_t elems,
                 bool streaming = true, std::uint8_t elem_bytes = 4);

    /** Append a store arrays[array][i+offset] = value. */
    void store(int array, ExprP value, std::int32_t offset = 0);

    /** Append a scatter store arrays[array][i*stride+offset] = value. */
    void storeStrided(int array, std::int32_t stride, ExprP value,
                      std::int32_t offset = 0);
};

} // namespace occamy::kir

#endif // OCCAMY_KIR_KIR_HH
