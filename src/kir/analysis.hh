/**
 * @file
 * Phase-behaviour analysis (Section 6.3): computes the per-iteration
 * instruction mix, the Eq. 5 operational-intensity pair
 * (<OI>.issue, <OI>.mem), the reuse-aware memory footprint, and the
 * memory-hierarchy level whose bandwidth ceiling applies.
 */

#ifndef OCCAMY_KIR_ANALYSIS_HH
#define OCCAMY_KIR_ANALYSIS_HH

#include <cstdint>

#include "isa/inst.hh"
#include "kir/kir.hh"

namespace occamy::kir
{

/** Static summary of one loop, the basis of <OI> and vectorization. */
struct LoopSummary
{
    /** SIMD compute instructions per iteration (after CSE; loop-invariant
     *  constants are hoisted and excluded). */
    unsigned computeInsts = 0;

    /** SIMD memory instructions per iteration (unique loads + stores). */
    unsigned memInsts = 0;

    /** Sum over memory instructions of their element size in bytes
     *  (Eq. 5 issue-side denominator). */
    double accessBytes = 0.0;

    /** Unique bytes consumed per iteration with sliding-window reuse
     *  considered (Eq. 5 memory-side denominator, "fp"). */
    double footprintBytes = 0.0;

    /** Loop-invariant constants needing broadcast (VDup) at entry and
     *  after every vector-length change. */
    unsigned invariants = 0;

    /** Total bytes the loop touches across its whole trip. */
    double totalBytes = 0.0;

    /** True if the loop carries a reduction. */
    bool hasReduction = false;

    /** Eq. 5 intensities. */
    double oiIssue() const
    {
        return accessBytes > 0 ? computeInsts / accessBytes : 0.0;
    }
    double oiMem() const
    {
        return footprintBytes > 0 ? computeInsts / footprintBytes : 0.0;
    }
};

/** Compute the static summary of @p loop. */
LoopSummary analyze(const Loop &loop);

/**
 * Classify which bandwidth ceiling applies to @p loop (Section 5.1's
 * "chosen level in the memory hierarchy"): the innermost cache whose
 * capacity covers the loop's resident working set.
 *
 * @param vec_cache_bytes VecCache capacity.
 * @param l2_bytes Unified L2 capacity.
 */
MemLevel classifyMemLevel(const Loop &loop, std::uint64_t vec_cache_bytes,
                          std::uint64_t l2_bytes);

/** Build the PhaseOI the compiler writes into <OI> for @p loop. */
PhaseOI phaseOI(const Loop &loop, std::uint64_t vec_cache_bytes,
                std::uint64_t l2_bytes);

} // namespace occamy::kir

#endif // OCCAMY_KIR_ANALYSIS_HH
