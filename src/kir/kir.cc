#include "kir/kir.hh"

#include <cassert>

namespace occamy::kir
{

namespace
{

ExprP
makeOp(ArithOp op, ExprP a, ExprP b = nullptr, ExprP c = nullptr)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Op;
    e->op = op;
    e->a = std::move(a);
    e->b = std::move(b);
    e->c = std::move(c);
    return e;
}

} // namespace

ExprP
load(int array, std::int32_t offset)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Load;
    e->array = array;
    e->offset = offset;
    return e;
}

ExprP
loadStrided(int array, std::int32_t stride, std::int32_t offset)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Load;
    e->array = array;
    e->offset = offset;
    e->stride = stride;
    return e;
}

ExprP
cst(double v)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Const;
    e->value = v;
    return e;
}

ExprP add(ExprP a, ExprP b) { return makeOp(ArithOp::Add, a, b); }
ExprP sub(ExprP a, ExprP b) { return makeOp(ArithOp::Sub, a, b); }
ExprP mul(ExprP a, ExprP b) { return makeOp(ArithOp::Mul, a, b); }
ExprP div(ExprP a, ExprP b) { return makeOp(ArithOp::Div, a, b); }
ExprP vmin(ExprP a, ExprP b) { return makeOp(ArithOp::Min, a, b); }
ExprP vmax(ExprP a, ExprP b) { return makeOp(ArithOp::Max, a, b); }
ExprP neg(ExprP a) { return makeOp(ArithOp::Neg, a); }
ExprP sqrt(ExprP a) { return makeOp(ArithOp::Sqrt, a); }
ExprP abs(ExprP a) { return makeOp(ArithOp::Abs, a); }
ExprP fma(ExprP a, ExprP b, ExprP c) { return makeOp(ArithOp::Fma, a, b, c); }
ExprP op(ArithOp o, ExprP a, ExprP b, ExprP c) { return makeOp(o, a, b, c); }

int
Loop::addArray(std::string name, std::uint64_t elems, bool streaming,
               std::uint8_t elem_bytes)
{
    arrays.push_back(ArrayDecl{std::move(name), elems, elem_bytes,
                               streaming});
    return static_cast<int>(arrays.size()) - 1;
}

void
Loop::store(int array, ExprP value, std::int32_t offset)
{
    assert(array >= 0 && array < static_cast<int>(arrays.size()));
    stores.push_back(Stmt{array, offset, 1, std::move(value)});
}

void
Loop::storeStrided(int array, std::int32_t stride, ExprP value,
                   std::int32_t offset)
{
    assert(array >= 0 && array < static_cast<int>(arrays.size()));
    assert(stride >= 1);
    stores.push_back(Stmt{array, offset, stride, std::move(value)});
}

} // namespace occamy::kir
