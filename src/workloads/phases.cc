#include "workloads/phases.hh"

#include <cassert>
#include <deque>
#include <map>
#include <stdexcept>

namespace occamy::workloads
{

namespace
{

/** Wrapped-array sizes per residency level (elements of 4 bytes). */
constexpr std::uint64_t kVecCacheArrayElems = 3072;    // 12 KB each.
constexpr std::uint64_t kL2ArrayElems = 262144;        // 1 MB each.

std::uint64_t
arrayElemsFor(const PhaseSpec &spec)
{
    switch (spec.level) {
      case MemLevel::VecCache:
        return kVecCacheArrayElems;
      case MemLevel::L2:
        return kL2ArrayElems;
      case MemLevel::Dram:
        return spec.trip;         // Single streaming pass.
    }
    return spec.trip;
}

} // namespace

kir::Loop
makePhase(const PhaseSpec &spec)
{
    kir::Loop loop;
    loop.name = spec.name;
    loop.trip = spec.trip;

    const bool streaming = spec.level == MemLevel::Dram;
    const std::uint64_t elems = arrayElemsFor(spec);

    std::vector<int> inputs;
    for (unsigned i = 0; i < spec.loads; ++i)
        inputs.push_back(loop.addArray(
            spec.name + "_in" + std::to_string(i), elems, streaming));
    std::vector<int> outputs;
    for (unsigned i = 0; i < spec.stores; ++i)
        outputs.push_back(loop.addArray(
            spec.name + "_out" + std::to_string(i), elems, streaming));

    // Operand pool: one load per input array, plus reuse loads at
    // offset +1 into the first arrays (issue bytes without footprint).
    std::deque<kir::ExprP> pending;
    for (unsigned i = 0; i < spec.loads; ++i)
        pending.push_back(kir::load(inputs[i], 0));
    for (unsigned i = 0; i < spec.reuseLoads; ++i)
        pending.push_back(kir::load(inputs[i % spec.loads], 1));

    assert(pending.size() <= 2ull * spec.flops + 1 &&
           "phase spec infeasible: too many operands for flop budget");

    const unsigned total_ops =
        spec.flops - (spec.reduction ? 1u : 0u);
    assert(total_ops >= 1);

    // Emit the compute as K interleaved independent chains merged at the
    // end: real vectorized loop bodies are wide DAGs, and the width is
    // what lets the out-of-order window hide the FP latency (a serial
    // chain would bottleneck every kernel at 1/latency IPC).
    unsigned lanes_ilp = total_ops >= 8 ? 4u : (total_ops >= 4 ? 2u : 1u);
    while (lanes_ilp > 1 && total_ops < 2 * lanes_ilp - 1)
        lanes_ilp /= 2;
    const unsigned chain_ops = total_ops - (lanes_ilp - 1);

    std::vector<kir::ExprP> made;
    std::vector<kir::ExprP> chains(lanes_ilp);
    std::size_t recycle = 0;
    auto take = [&]() -> kir::ExprP {
        if (!pending.empty()) {
            auto e = pending.front();
            pending.pop_front();
            return e;
        }
        assert(!made.empty());
        return made[recycle++ % made.size()];
    };

    static const kir::ArithOp kCycle[] = {
        kir::ArithOp::Add, kir::ArithOp::Mul, kir::ArithOp::Sub,
        kir::ArithOp::Max, kir::ArithOp::Add, kir::ArithOp::Mul,
    };

    for (unsigned k = 0; k < chain_ops; ++k) {
        kir::ExprP &cur = chains[k % lanes_ilp];
        const unsigned rem_ops = chain_ops - k;
        // Use an FMA whenever the remaining operand pool could not be
        // drained by binary ops alone.
        const bool need_fma =
            pending.size() >= 2ull * (rem_ops - 1) + (cur ? 1u : 2u);
        kir::ExprP a = cur ? cur : take();
        if (need_fma) {
            kir::ExprP b = pending.empty() && made.empty() ? a : take();
            kir::ExprP c = pending.empty() && made.empty() ? a : take();
            cur = kir::fma(a, b, c);
        } else {
            kir::ExprP b = pending.empty() && made.empty() ? a : take();
            cur = kir::op(kCycle[k % 6], a, b);
        }
        made.push_back(cur);
    }
    assert(pending.empty() && "phase generator failed to drain operands");

    // Merge the chains into a single root (log-depth tail).
    kir::ExprP cur = chains[0];
    for (unsigned j = 1; j < lanes_ilp; ++j) {
        cur = kir::op(kCycle[(chain_ops + j) % 6], cur, chains[j]);
        made.push_back(cur);
    }

    if (spec.reduction) {
        loop.reduction = cur;
    } else {
        // First output stores the chain result; extra outputs store
        // earlier intermediates (or plain copies of inputs).
        for (unsigned j = 0; j < spec.stores; ++j) {
            kir::ExprP v;
            if (j == 0)
                v = cur;
            else if (j < made.size())
                v = made[made.size() - 1 - j];
            else
                v = kir::load(inputs[j % spec.loads], 0);
            loop.store(outputs[j], v);
        }
    }
    return loop;
}

namespace
{

/** The Table 3 phase recipes (target oi_mem in parentheses). */
std::vector<PhaseSpec>
buildSpecs()
{
    auto mem = [](std::string n, unsigned l, unsigned e, unsigned s,
                  unsigned f, double oi) {
        PhaseSpec p;
        p.name = std::move(n);
        p.loads = l;
        p.reuseLoads = e;
        p.stores = s;
        p.flops = f;
        p.level = MemLevel::Dram;
        p.trip = 49152;
        p.tableOiMem = oi;
        return p;
    };
    auto comp = [](std::string n, unsigned l, unsigned s, unsigned f,
                   double oi, MemLevel lvl = MemLevel::VecCache) {
        PhaseSpec p;
        p.name = std::move(n);
        p.loads = l;
        p.stores = s;
        p.flops = f;
        p.level = lvl;
        p.trip = 786432;
        p.tableOiMem = oi;
        return p;
    };
    auto red = [](std::string n, unsigned l, unsigned f, double oi,
                  MemLevel lvl, std::uint64_t trip) {
        PhaseSpec p;
        p.name = std::move(n);
        p.loads = l;
        p.stores = 0;
        p.flops = f;
        p.reduction = true;
        p.level = lvl;
        p.trip = trip;
        p.tableOiMem = oi;
        return p;
    };

    std::vector<PhaseSpec> v;
    // --- SPECCPU2017 phases. ---
    v.push_back(mem("select_atoms1", 3, 0, 1, 4, 0.25));
    v.push_back(mem("select_atoms2", 3, 0, 1, 4, 0.25));
    v.push_back(mem("select_atoms3", 4, 0, 1, 5, 0.25));
    v.push_back(mem("select_atoms4", 5, 0, 1, 2, 0.083));
    v.push_back(comp("select_atoms5", 2, 1, 9, 0.75));
    v.push_back(comp("select_atoms5b", 3, 1, 4, 0.25));
    v.push_back(mem("step3d_uv1", 8, 0, 1, 4, 0.11));
    v.push_back(mem("step3d_uv2", 8, 0, 3, 4, 0.09));
    v.push_back(mem("step3d_uv3", 5, 0, 1, 3, 0.13));
    v.push_back(mem("step3d_uv4", 5, 0, 1, 3, 0.13));
    v.push_back(mem("rhs3d1", 5, 0, 1, 3, 0.13));
    v.push_back(comp("rhs3d5", 3, 1, 5, 0.32));
    v.push_back(mem("rhs3d7", 5, 0, 1, 4, 0.17));
    v.push_back(mem("rho_eos1", 8, 0, 3, 4, 0.09));
    v.push_back(mem("rho_eos2", 3, 2, 1, 4, 0.25));
    v.push_back(mem("rho_eos2b", 5, 0, 1, 2, 0.08));
    v.push_back(mem("rho_eos4", 7, 2, 1, 5, 0.16));
    v.push_back(mem("rho_eos5", 5, 0, 1, 2, 0.08));
    v.push_back(mem("rho_eos6", 3, 0, 1, 1, 0.06));
    v.push_back(comp("set_vbc1", 3, 1, 9, 0.56));
    v.push_back(comp("set_vbc2", 3, 1, 9, 0.56));
    v.push_back(comp("wsm51", 2, 1, 12, 1.0));
    v.push_back(comp("wsm52", 2, 1, 12, 1.0));
    v.push_back(comp("wsm53", 3, 1, 9, 0.56));
    v.push_back(mem("sff2", 5, 0, 1, 3, 0.13));
    v.push_back(mem("sff5", 5, 2, 1, 5, 0.21));
    v.push_back(mem("step2d1", 7, 0, 1, 7, 0.22));
    v.push_back(mem("step2d6", 6, 0, 1, 5, 0.18));

    // --- OpenCV phases. ---
    v.push_back(red("fitLine2D", 3, 11, 0.92, MemLevel::VecCache,
                    786432));
    v.push_back(mem("addWeight", 2, 0, 1, 4, 0.33));
    v.push_back(mem("compare", 2, 0, 1, 3, 0.25));
    v.push_back(comp("rgb2xyz", 3, 1, 10, 0.63));
    v.push_back(comp("calcDist3D", 3, 1, 14, 0.875));
    v.push_back(comp("rgb2hsv", 2, 1, 22, 1.83));
    v.push_back(mem("accProd", 2, 0, 1, 2, 0.17));
    v.push_back(red("dotProd", 2, 2, 0.25, MemLevel::Dram, 49152));
    v.push_back(red("normL1", 1, 2, 0.5, MemLevel::Dram, 49152));
    v.push_back(red("normL2", 2, 2, 0.25, MemLevel::Dram, 49152));
    v.push_back(mem("blend", 4, 0, 1, 6, 0.3));
    v.push_back(red("fitLine3D", 4, 7, 0.44, MemLevel::Dram, 49152));
    v.push_back(mem("rgb2ycrcb", 5, 0, 1, 10, 0.42));
    v.push_back(mem("rgb2gray", 3, 0, 1, 5, 0.31));
    return v;
}

} // namespace

const std::vector<PhaseSpec> &
allPhaseSpecs()
{
    static const std::vector<PhaseSpec> specs = buildSpecs();
    return specs;
}

const PhaseSpec &
phaseSpec(const std::string &name)
{
    for (const auto &s : allPhaseSpecs())
        if (s.name == name)
            return s;
    throw std::out_of_range("unknown phase: " + name);
}

kir::Loop
makeNamedPhase(const std::string &name, std::uint64_t trip)
{
    PhaseSpec spec = phaseSpec(name);
    if (trip)
        spec.trip = trip;
    return makePhase(spec);
}

kir::Loop
makeRh3dLoop(std::uint64_t trip)
{
    using namespace kir;
    Loop loop;
    loop.name = "rh3d";
    loop.trip = trip;
    const int dndx = loop.addArray("dndx", trip);
    const int dmde = loop.addArray("dmde", trip);
    const int v = loop.addArray("v", trip);
    const int v1 = loop.addArray("v_1", trip);
    const int u = loop.addArray("u", trip);
    const int u1 = loop.addArray("u_1", trip);
    const int ufx = loop.addArray("Ufx", trip);
    const int ufe = loop.addArray("Ufe", trip);

    // Ufx[i] = 0.5*dndx[i]*(v+v_1)^2 - dmde[i]*(v+v_1)*(u+u_1)
    // Ufe[i] = 0.5*dndx[i]*(v+v_1)*(u+u_1) - dmde[i]*(u+u_1)^2
    ExprP vv = add(load(v), load(v1));
    ExprP uu = add(load(u), load(u1));
    ExprP hd = mul(cst(0.5), load(dndx));
    ExprP vu = mul(vv, uu);
    loop.store(ufx, sub(mul(hd, mul(vv, vv)), mul(load(dmde), vu)));
    loop.store(ufe, sub(mul(hd, vu), mul(load(dmde), mul(uu, uu))));
    return loop;
}

kir::Loop
makeRhoEosLoop(std::uint64_t trip)
{
    using namespace kir;
    Loop loop;
    loop.name = "rho_eos";
    loop.trip = trip;
    const int den = loop.addArray("den", trip);
    const int bulk = loop.addArray("bulk", trip);
    const int z_r = loop.addArray("z_r", trip);
    const int bulk_dt = loop.addArray("bulkDT", trip);
    const int den1 = loop.addArray("den1", trip);
    const int den1_dt = loop.addArray("den1DT", trip);
    const int bulk_ds = loop.addArray("bulkDS", trip);
    const int den1_ds = loop.addArray("den1DS", trip);
    const int wrk = loop.addArray("wrk", trip);
    const int tcof = loop.addArray("Tcof", trip);
    const int scof = loop.addArray("Scof", trip);

    // wrk[i]  = (den+1000) * (bulk + 0.1*z_r)^2
    // Tcof[i] = -(bulkDT*0.1*z_r*den1 + den1DT*bulk*(bulk+0.1*z_r))
    // Scof[i] = -(bulkDS*0.1*z_r*den1 + den1DS*bulk*(bulk+0.1*z_r))
    ExprP zr01 = mul(cst(0.1), load(z_r));
    ExprP bz = add(load(bulk), zr01);
    loop.store(wrk, mul(add(load(den), cst(1000.0)), mul(bz, bz)));
    ExprP zd = mul(zr01, load(den1));
    ExprP bbz = mul(load(bulk), bz);
    loop.store(tcof, neg(add(mul(load(bulk_dt), zd),
                             mul(load(den1_dt), bbz))));
    loop.store(scof, neg(add(mul(load(bulk_ds), zd),
                             mul(load(den1_ds), bbz))));
    return loop;
}

kir::Loop
makeWsm5Loop(std::uint64_t trip)
{
    using namespace kir;
    Loop loop;
    loop.name = "wsm5";
    loop.trip = trip;
    const int ww = loop.addArray("ww", kVecCacheArrayElems, false);
    const int dz = loop.addArray("dz", kVecCacheArrayElems, false);
    const int wi = loop.addArray("wi", kVecCacheArrayElems, false);

    // wi[k] = (ww[k]*dz[k-1] + ww[k-1]*dz[k]) / (dz[k-1] + dz[k])
    ExprP num = add(mul(load(ww, 0), load(dz, -1)),
                    mul(load(ww, -1), load(dz, 0)));
    ExprP den = add(load(dz, -1), load(dz, 0));
    loop.store(wi, div(num, den));
    return loop;
}

} // namespace occamy::workloads
