/**
 * @file
 * The evaluation workload suite: the 22 SPEC-derived and 12
 * OpenCV-derived workloads of Table 3, the 25 co-running pairs of
 * Fig. 10/11, and the 4-core groups of Fig. 16.
 */

#ifndef OCCAMY_WORKLOADS_SUITE_HH
#define OCCAMY_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "kir/kir.hh"
#include "workloads/phases.hh"

namespace occamy::workloads
{

/** One workload: a named ordered list of phases. */
struct Workload
{
    std::string name;
    std::vector<kir::Loop> loops;

    /** True if every phase is memory-intensive (classification used to
     *  place memory workloads on Core0 per Section 7.1). */
    bool memoryIntensive = false;
};

/** Table 3 SPEC workload WLn (n in 1..22). */
Workload specWorkload(unsigned n);

/** Table 3 OpenCV workload WLn (n in 1..12). */
Workload opencvWorkload(unsigned n);

/** A co-running pair, placed memory-first per the paper. */
struct Pair
{
    std::string label;       ///< e.g. "1+13" as in Fig. 10's x-axis.
    Workload core0;          ///< Memory-intensive side.
    Workload core1;          ///< Compute-intensive side.
};

/** The 16 SPEC pairs of Fig. 10, in x-axis order. */
std::vector<Pair> specPairs();

/** The 9 OpenCV pairs of Fig. 10, in x-axis order. */
std::vector<Pair> opencvPairs();

/** All 25 pairs (SPEC then OpenCV). */
std::vector<Pair> allPairs();

/** One 4-core group of Fig. 16. */
struct Group
{
    std::string label;       ///< e.g. "WL15+6+15+16".
    std::vector<Workload> workloads;   ///< One per core, 4 entries.
};

/** The four 4-core groups of Fig. 16. */
std::vector<Group> scalabilityGroups();

} // namespace occamy::workloads

#endif // OCCAMY_WORKLOADS_SUITE_HH
