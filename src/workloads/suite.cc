#include "workloads/suite.hh"

#include <stdexcept>

namespace occamy::workloads
{

namespace
{

Workload
make(std::string name, const std::vector<std::string> &phase_names,
     bool memory_intensive)
{
    Workload w;
    w.name = std::move(name);
    for (const auto &p : phase_names) {
        // Compute phases inside multi-phase workloads run a shorter
        // trip so the workload finishes before its single-phase
        // compute partner and releases its lanes (the paper's Case 2
        // dynamics depend on this ordering).
        const PhaseSpec &spec = phaseSpec(p);
        const bool shorten = phase_names.size() > 1 &&
                             spec.level != MemLevel::Dram;
        w.loops.push_back(makeNamedPhase(p, shorten ? 196608 : 0));
    }
    w.memoryIntensive = memory_intensive;
    return w;
}

} // namespace

Workload
specWorkload(unsigned n)
{
    switch (n) {
      case 1: return make("WL1", {"select_atoms2", "step3d_uv2"}, true);
      case 2: return make("WL2", {"select_atoms1", "step3d_uv4"}, true);
      case 3: return make("WL3", {"rhs3d1", "select_atoms3"}, true);
      case 4: return make("WL4", {"select_atoms4", "select_atoms5"}, false);
      case 5: return make("WL5", {"step3d_uv1", "rhs3d7"}, true);
      case 6: return make("WL6", {"rho_eos1", "rho_eos4"}, true);
      case 7: return make("WL7", {"rho_eos5", "select_atoms3"}, true);
      case 8: return make("WL8", {"rho_eos2", "rho_eos6"}, true);
      case 9: return make("WL9", {"wsm53", "select_atoms5b"}, false);
      case 10: return make("WL10", {"rhs3d1", "rho_eos4"}, true);
      case 11: return make("WL11", {"step2d1", "step2d6"}, true);
      case 12: return make("WL12", {"step3d_uv3", "step3d_uv1"}, true);
      case 13: return make("WL13", {"set_vbc2"}, false);
      case 14: return make("WL14", {"set_vbc1"}, false);
      case 15: return make("WL15", {"rhs3d5"}, false);
      case 16: return make("WL16", {"wsm51"}, false);
      case 17: return make("WL17", {"wsm52"}, false);
      case 18: return make("WL18", {"wsm53"}, false);
      case 19: return make("WL19", {"rho_eos2"}, true);
      case 20: return make("WL20", {"sff2", "sff5"}, true);
      case 21: return make("WL21", {"sff5", "rho_eos6"}, true);
      case 22: return make("WL22", {"rho_eos2b", "step3d_uv1"}, true);
      default:
        throw std::out_of_range("SPEC workload id out of range");
    }
}

Workload
opencvWorkload(unsigned n)
{
    switch (n) {
      case 1: return make("CV1", {"fitLine2D"}, false);
      case 2: return make("CV2", {"addWeight", "compare"}, true);
      case 3: return make("CV3", {"rgb2xyz"}, false);
      case 4: return make("CV4", {"calcDist3D"}, false);
      case 5: return make("CV5", {"rgb2hsv"}, false);
      case 6: return make("CV6", {"accProd", "dotProd"}, true);
      case 7: return make("CV7", {"normL1", "normL2"}, true);
      case 8: return make("CV8", {"compare", "accProd"}, true);
      case 9: return make("CV9", {"blend", "fitLine3D"}, true);
      case 10: return make("CV10", {"dotProd", "addWeight"}, true);
      case 11: return make("CV11", {"blend", "compare"}, true);
      case 12: return make("CV12", {"rgb2ycrcb", "rgb2gray"}, true);
      default:
        throw std::out_of_range("OpenCV workload id out of range");
    }
}

std::vector<Pair>
specPairs()
{
    // Fig. 10 x-axis order; memory-intensive workload on Core0.
    static const std::pair<unsigned, unsigned> ids[] = {
        {1, 13}, {2, 14}, {3, 4}, {5, 15}, {6, 16}, {8, 17}, {7, 18},
        {20, 9}, {21, 17}, {20, 17}, {10, 16}, {11, 14}, {22, 15},
        {4, 14}, {9, 13}, {12, 19},
    };
    std::vector<Pair> pairs;
    for (auto [a, b] : ids) {
        Pair p;
        p.label = std::to_string(a) + "+" + std::to_string(b);
        p.core0 = specWorkload(a);
        p.core1 = specWorkload(b);
        pairs.push_back(std::move(p));
    }
    return pairs;
}

std::vector<Pair>
opencvPairs()
{
    static const std::pair<unsigned, unsigned> ids[] = {
        {6, 1}, {2, 1}, {7, 3}, {8, 3}, {9, 4}, {10, 4}, {11, 5},
        {12, 5}, {11, 1},
    };
    std::vector<Pair> pairs;
    for (auto [a, b] : ids) {
        Pair p;
        p.label = std::to_string(a) + "+" + std::to_string(b);
        p.core0 = opencvWorkload(a);
        p.core1 = opencvWorkload(b);
        pairs.push_back(std::move(p));
    }
    return pairs;
}

std::vector<Pair>
allPairs()
{
    std::vector<Pair> pairs = specPairs();
    for (auto &p : opencvPairs())
        pairs.push_back(std::move(p));
    return pairs;
}

std::vector<Group>
scalabilityGroups()
{
    // Fig. 16: memory-intensive workloads on Core0/Core1, compute on
    // Core2/Core3 for the first three groups; the last group runs three
    // memory workloads and one compute workload.
    std::vector<Group> groups;
    auto add = [&](std::string label, std::vector<unsigned> ids) {
        Group g;
        g.label = std::move(label);
        for (unsigned id : ids)
            g.workloads.push_back(specWorkload(id));
        groups.push_back(std::move(g));
    };
    add("WL5+6+15+16", {5, 6, 15, 16});
    add("WL21+20+17+17", {21, 20, 17, 17});
    add("WL10+22+16+15", {10, 22, 16, 15});
    add("WL7+19+20+14", {7, 19, 20, 14});
    return groups;
}

} // namespace occamy::workloads
