/**
 * @file
 * Phase kernels: kernel-IR re-creations of the SPECCPU2017 loops and
 * OpenCV kernels of Table 3.
 *
 * Each phase is constructed so that the Eq. 5 analysis of its loop body
 * reproduces the operational intensity the paper reports for it (see
 * tests/workloads for the verification sweep). Memory-intensive phases
 * stream DRAM-resident arrays; compute-intensive phases iterate over
 * wrapped VecCache/L2-resident working sets, matching the co-running
 * behaviour the paper studies.
 */

#ifndef OCCAMY_WORKLOADS_PHASES_HH
#define OCCAMY_WORKLOADS_PHASES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "kir/kir.hh"

namespace occamy::workloads
{

/** Recipe for one synthetic phase with a target instruction mix. */
struct PhaseSpec
{
    std::string name;

    /** Distinct streaming input arrays (one load each). */
    unsigned loads = 3;

    /** Extra loads at offset +1 into already-loaded arrays: they add
     *  issue-side bytes but no footprint (data reuse, making
     *  oi_issue < oi_mem as in the paper's Case 4). */
    unsigned reuseLoads = 0;

    /** Output arrays (one store each). */
    unsigned stores = 1;

    /** SIMD compute instructions per iteration (including the reduction
     *  accumulate if `reduction`). */
    unsigned flops = 4;

    /** Reduction kernel (dot products, norms, line fits): no stores,
     *  the last value accumulates. */
    bool reduction = false;

    /** Which level the working set lives at: Dram = streaming arrays,
     *  VecCache/L2 = wrapped resident arrays. */
    MemLevel level = MemLevel::Dram;

    /** Scalar trip count. */
    std::uint64_t trip = 49152;

    /** Expected oi_mem from Table 3 (checked by tests). */
    double tableOiMem = 0.0;
};

/** Build the kernel-IR loop realizing @p spec. */
kir::Loop makePhase(const PhaseSpec &spec);

/** Look up a named phase recipe (e.g. "rho_eos2", "wsm51"). */
const PhaseSpec &phaseSpec(const std::string &name);

/** All registered phase recipes. */
const std::vector<PhaseSpec> &allPhaseSpecs();

/** Convenience: build a named phase, optionally overriding the trip. */
kir::Loop makeNamedPhase(const std::string &name, std::uint64_t trip = 0);

/**
 * The motivating loops of Fig. 2(a), written out literally:
 *   rh3d (Ufx/Ufe), rho_eos (wrk/Tcof/Scof) and wsm5 (wi).
 * These exercise the full expression DAG path (CSE, invariants,
 * stencil offsets) rather than the synthetic generator.
 */
kir::Loop makeRh3dLoop(std::uint64_t trip = 49152);
kir::Loop makeRhoEosLoop(std::uint64_t trip = 49152);
kir::Loop makeWsm5Loop(std::uint64_t trip = 262144);

} // namespace occamy::workloads

#endif // OCCAMY_WORKLOADS_PHASES_HH
