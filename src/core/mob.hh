/**
 * @file
 * Memory Ordering Buffer (Section 4.1.2).
 *
 * Tracks memory regions with at least one incomplete SVE ld/st, so the
 * scalar core can delay a younger scalar access that overlaps an older
 * vector access (and vice versa), implementing the <Scalar, SVE> /
 * <SVE, Scalar> ordering rows of Table 2.
 */

#ifndef OCCAMY_CORE_MOB_HH
#define OCCAMY_CORE_MOB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace occamy
{

/** Memory Ordering Buffer: outstanding-region tracking. */
class Mob
{
  public:
    explicit Mob(unsigned entries = 32) : capacity_(entries) {}

    /**
     * Record an in-flight vector memory access.
     * @return false if the MOB is full (the producer must stall).
     */
    bool
    insert(Addr addr, unsigned bytes, bool is_store, Cycle completes_at)
    {
        if (entries_.size() >= capacity_)
            return false;
        entries_.push_back(Entry{addr, bytes, is_store, completes_at});
        return true;
    }

    /** Deallocate entries whose accesses have completed. */
    void
    retire(Cycle now)
    {
        std::erase_if(entries_, [now](const Entry &e) {
            return e.completesAt <= now;
        });
    }

    /**
     * Would a younger access of [addr, addr+bytes) conflict with any
     * outstanding entry? Loads only conflict with stores; stores
     * conflict with everything (conservative).
     */
    bool
    conflicts(Addr addr, unsigned bytes, bool is_store) const
    {
        const Addr lo = addr;
        const Addr hi = addr + bytes;
        for (const Entry &e : entries_) {
            if (!is_store && !e.isStore)
                continue;
            const Addr elo = e.addr;
            const Addr ehi = e.addr + e.bytes;
            if (lo < ehi && elo < hi)
                return true;
        }
        return false;
    }

    /** Earliest cycle all currently conflicting entries complete. */
    Cycle
    readyCycle(Addr addr, unsigned bytes, bool is_store) const
    {
        Cycle ready = 0;
        const Addr lo = addr;
        const Addr hi = addr + bytes;
        for (const Entry &e : entries_) {
            if (!is_store && !e.isStore)
                continue;
            if (lo < e.addr + e.bytes && e.addr < hi)
                ready = std::max(ready, e.completesAt);
        }
        return ready;
    }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    unsigned capacity() const { return capacity_; }

  private:
    struct Entry
    {
        Addr addr;
        unsigned bytes;
        bool isStore;
        Cycle completesAt;
    };

    unsigned capacity_;
    std::vector<Entry> entries_;
};

} // namespace occamy

#endif // OCCAMY_CORE_MOB_HH
