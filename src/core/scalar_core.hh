/**
 * @file
 * Scalar CPU core model (Section 4.1).
 *
 * The core executes a compiled Program in program order, transmitting
 * retired SVE and EM-SIMD instructions to the co-processor (up to
 * transmitWidth per cycle, stalling on pool back-pressure). It
 * implements the software side of the Fig. 9 protocol: the prologue's
 * default-VL set loop, the per-iteration partition monitor with its
 * speculative <decision> read, the <VL>-write retry spin, re-init after
 * a successful switch, and the epilogue's lane release. Loop-control
 * scalar instructions are folded into the 8-issue scalar pipeline and
 * charged zero co-processor cycles.
 */

#ifndef OCCAMY_CORE_SCALAR_CORE_HH
#define OCCAMY_CORE_SCALAR_CORE_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "coproc/coproc.hh"
#include "isa/inst.hh"
#include "obs/sink.hh"

namespace occamy
{

/** Execution record of one phase, for per-phase statistics. */
struct PhaseTrace
{
    std::string name;
    unsigned phaseId = 0;
    Cycle start = 0;
    Cycle end = 0;
    bool scalarVersion = false;      ///< Ran the multi-version fallback.
    unsigned firstVl = 0;            ///< BUs at phase entry.
    unsigned lastVl = 0;             ///< BUs at phase exit.
};

/** A scalar core driving the shared co-processor. */
class ScalarCore
{
  public:
    ScalarCore(CoreId id, const MachineConfig &cfg, CoProcessor &coproc);

    /** Install the compiled workload (arrays must carry base addrs). */
    void setProgram(const Program *prog);

    /** Emit up to transmitWidth instructions this cycle. */
    void tick(Cycle now);

    /**
     * Quiescence probe for the fast-forward engine: earliest future
     * cycle (> @p now) this core's tick can do anything. A finished
     * core never acts again (kCycleNever); a scalar-fallback stall
     * resumes exactly at its deadline; an Await state with the <VL>
     * request still unresolved, or a core blocked on co-processor
     * back-pressure, is woken by co-processor progress — the
     * co-processor's own probe carries those candidates, so this one
     * reports kCycleNever. Anything else acts next cycle.
     */
    Cycle nextEventAt(Cycle now) const;

    /** All instructions emitted (workload retired from the core). */
    bool doneEmitting() const { return state_ == State::Done; }

    /** @return per-phase execution records. */
    const std::vector<PhaseTrace> &phases() const { return phases_; }

    CoreId id() const { return id_; }
    unsigned currentVl() const { return current_vl_; }

    // --- Livelock-watchdog interface (sim/system.cc). ---

    /** True while a <VL> write is outstanding (any Await state). */
    bool awaitingVl() const
    {
        return state_ == State::AwaitVl || state_ == State::AwaitReconfig ||
               state_ == State::AwaitRelease;
    }

    /** Cycle the current <VL>-request episode began. Unlike the
     *  per-retry accounting timestamp, this is NOT reset when a
     *  rejected request is re-written (the Fig. 9 retry spin), so the
     *  watchdog sees the episode's total age. */
    Cycle spinSince() const { return spin_since_; }

    /**
     * Watchdog escalation: abandon the outstanding <VL> request and run
     * the rest of the phase through the multi-version scalar fallback
     * (§6), charging the scalar cost model for the remaining elements.
     * The core proceeds to its epilogue once the fallback stall expires.
     */
    void watchdogEscalate(Cycle now);

    /** Attach/detach the trace sink (null = tracing off). */
    void setEventSink(obs::EventSink *sink) { sink_ = sink; }

    // --- Overhead accounting (Fig. 15). ---

    /** Partition-monitor instructions emitted (MRS <decision>). */
    std::uint64_t monitorInsts() const { return monitor_insts_; }

    /** Cycles spent waiting on <VL> writes: drain + retry spins. */
    Cycle reconfigWaitCycles() const { return reconfig_wait_cycles_; }

    /** Successful vector-length switches observed by this core. */
    std::uint64_t reconfigEvents() const { return reconfig_events_; }

    /** Re-init instructions emitted after VL switches. */
    std::uint64_t reinitInsts() const { return reinit_insts_; }

    /**
     * Checkpoint restore only: install the program pointer *without*
     * setProgram's fresh-start resets (phase-id rebasing, state/index
     * clears) — load() overwrites every one of those fields with the
     * checkpointed values right after.
     */
    void restoreProgram(const Program *prog) { prog_ = prog; }

    /** Checkpoint hooks: the full software-protocol state machine. */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

    /** One-line-per-fact state dump for live inspection. */
    void printState(std::ostream &os) const;

  private:
    enum class State
    {
        Idle,            ///< Between loops; advance to the next phase.
        Prologue,        ///< Emitting prologue instructions.
        AwaitVl,         ///< <VL> write outstanding (prologue).
        IterStart,       ///< Begin an iteration: run the monitor.
        AwaitReconfig,   ///< <VL> write outstanding (lazy reconfig).
        Reinit,          ///< Emitting post-switch re-init code.
        Body,            ///< Emitting the vector body.
        ScalarLoop,      ///< Multi-version scalar fallback.
        Epilogue,        ///< Emitting epilogue instructions.
        AwaitRelease,    ///< <VL>,0 outstanding (epilogue).
        Done,
    };

    /** Advance the state machine; @return false when blocked. */
    bool step(Cycle now, unsigned &budget);

    /** Emit one static instruction; @return false on back-pressure. */
    bool emit(const Inst &si, Cycle now, unsigned &budget);

    /** Build the dynamic instance of @p si for the current iteration. */
    DynInst makeDyn(const Inst &si, Cycle now) const;

    const VectorLoop &curLoop() const { return prog_->loops[loop_idx_]; }

    void enterLoop(Cycle now);
    void finishLoop(Cycle now);

    CoreId id_;
    const MachineConfig &cfg_;
    CoProcessor &coproc_;
    const Program *prog_ = nullptr;

    State state_ = State::Done;
    std::size_t loop_idx_ = 0;
    unsigned phase_id_base_ = 0;   ///< Unique phase ids across programs.
    std::size_t inst_idx_ = 0;       ///< Within the current section.
    std::uint64_t elems_done_ = 0;
    std::uint64_t iter_index_ = 0;   ///< For accumulator rotation.
    unsigned current_vl_ = 0;        ///< BUs, mirror of <VL>.
    unsigned active_elems_ = 0;      ///< Elements live this iteration.
    Cycle await_since_ = 0;
    Cycle spin_since_ = 0;           ///< Episode start (see spinSince()).
    Cycle stall_until_ = 0;          ///< Scalar-fallback cost model.
    unsigned vl_before_request_ = 0;
    /** Last tick ended with transmit budget left: the core is waiting
     *  on something external (back-pressure, <VL> resolution), not on
     *  its own next cycle. Input to nextEventAt(). */
    bool blocked_ = false;

    std::vector<PhaseTrace> phases_;

    std::uint64_t monitor_insts_ = 0;
    Cycle reconfig_wait_cycles_ = 0;
    std::uint64_t reconfig_events_ = 0;
    std::uint64_t reinit_insts_ = 0;

    obs::EventSink *sink_ = nullptr;    ///< Borrowed, may be null.

    /** Record a VL-reconfiguration protocol step, if traced. */
    void recordVl(Cycle now, obs::EventKind kind, std::uint64_t a,
                  std::uint64_t b) const;
};

} // namespace occamy

#endif // OCCAMY_CORE_SCALAR_CORE_HH
