#include "core/scalar_core.hh"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "ckpt/ckpt.hh"
#include "common/log.hh"

namespace occamy
{

ScalarCore::ScalarCore(CoreId id, const MachineConfig &cfg,
                       CoProcessor &coproc)
    : id_(id), cfg_(cfg), coproc_(coproc)
{
}

void
ScalarCore::recordVl(Cycle now, obs::EventKind kind, std::uint64_t a,
                     std::uint64_t b) const
{
    if (!sink_ || !sink_->wants(kind))
        return;
    obs::Event ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.core = id_;
    ev.a = a;
    ev.b = b;
    sink_->record(ev);
}

void
ScalarCore::setProgram(const Program *prog)
{
    // Phase ids must stay unique across successively dispatched
    // programs so per-phase statistics do not alias.
    if (prog_)
        phase_id_base_ += static_cast<unsigned>(prog_->loops.size());
    prog_ = prog;
    loop_idx_ = 0;
    inst_idx_ = 0;
    elems_done_ = 0;
    state_ = prog_ && !prog_->loops.empty() ? State::Idle : State::Done;
}

DynInst
ScalarCore::makeDyn(const Inst &si, Cycle now) const
{
    DynInst d;
    d.op = si.op;
    d.core = id_;
    d.phaseId = static_cast<std::uint16_t>(phase_id_base_ + loop_idx_);
    d.dstArch = si.dst;
    d.srcArch = si.src;
    d.nsrc = si.nsrc;
    const unsigned elems_per_bu =
        state_ == State::Done ? kLanesPerBu : curLoop().elemsPerBu;
    const unsigned lanes_per_elem_x4 = 4 * kLanesPerBu / elems_per_bu;
    d.vlBus = static_cast<std::uint16_t>(current_vl_);
    d.activeElems = static_cast<std::uint16_t>(
        active_elems_ ? active_elems_ : current_vl_ * elems_per_bu);
    d.activeLanes = static_cast<std::uint16_t>(
        (d.activeElems * lanes_per_elem_x4 + 3) / 4);
    d.oi = si.oi;
    d.imm = si.imm;
    d.vlFromDecision = si.vlFromDecision;
    d.enqueueCycle = now;

    // Reduction-accumulator rotation (4 independent partial sums).
    if (si.rotateAcc) {
        const std::int16_t rot = static_cast<std::int16_t>(iter_index_ & 3);
        if (d.dstArch >= 28)
            d.dstArch = static_cast<std::int16_t>(28 + rot);
        for (unsigned i = 0; i < d.nsrc; ++i)
            if (d.srcArch[i] >= 28)
                d.srcArch[i] = static_cast<std::int16_t>(28 + rot);
    }

    if (isVMem(si.op)) {
        const ArrayInfo &arr = prog_->arrays.at(si.arrayId);
        std::int64_t idx =
            static_cast<std::int64_t>(elems_done_) * si.stride +
            si.elemOffset;
        if (arr.streaming) {
            idx = std::max<std::int64_t>(idx, 0);
        } else {
            const auto n = static_cast<std::int64_t>(arr.elems);
            idx = ((idx % n) + n) % n;
        }
        d.addr = arr.base + static_cast<Addr>(idx) * arr.elemBytes;
        d.stride = si.stride;
        d.elemBytes = arr.elemBytes;
        d.bytes = std::max<std::uint32_t>(
            d.activeElems * arr.elemBytes, arr.elemBytes);
    }
    return d;
}

bool
ScalarCore::emit(const Inst &si, Cycle now, unsigned &budget)
{
    if (isEmSimd(si.op)) {
        if (!coproc_.canEnqueueEmSimd(id_))
            return false;
        coproc_.enqueueEmSimd(makeDyn(si, now));
    } else {
        assert(isSve(si.op));
        if (!coproc_.canEnqueue(id_))
            return false;
        coproc_.enqueue(makeDyn(si, now));
    }
    --budget;
    return true;
}

void
ScalarCore::enterLoop(Cycle now)
{
    PhaseTrace t;
    t.name = curLoop().phase.name;
    t.phaseId = phase_id_base_ + static_cast<unsigned>(loop_idx_);
    t.start = now;
    t.firstVl = current_vl_;
    phases_.push_back(t);
    inst_idx_ = 0;
    elems_done_ = 0;
    iter_index_ = 0;
    state_ = State::Prologue;
    if (sink_ && sink_->wants(obs::EventKind::PhaseBegin)) {
        obs::Event ev;
        ev.cycle = now;
        ev.kind = obs::EventKind::PhaseBegin;
        ev.core = id_;
        ev.a = sink_->internString(t.name);
        ev.b = t.phaseId;
        sink_->record(ev);
    }
    OCCAMY_LOG(now, "Core", "core%u enters phase %s", id_, t.name.c_str());
}

void
ScalarCore::finishLoop(Cycle now)
{
    phases_.back().end = now;
    if (phases_.back().lastVl == 0)
        phases_.back().lastVl = current_vl_;
    if (sink_ && sink_->wants(obs::EventKind::PhaseEnd)) {
        obs::Event ev;
        ev.cycle = now;
        ev.kind = obs::EventKind::PhaseEnd;
        ev.core = id_;
        ev.a = sink_->internString(phases_.back().name);
        ev.b = phases_.back().phaseId;
        sink_->record(ev);
    }
    ++loop_idx_;
    state_ = State::Idle;
}

bool
ScalarCore::step(Cycle now, unsigned &budget)
{
    switch (state_) {
      case State::Done:
        return false;

      case State::Idle:
        if (loop_idx_ >= prog_->loops.size()) {
            state_ = State::Done;
            return false;
        }
        enterLoop(now);
        return true;

      case State::Prologue: {
        const auto &pro = curLoop().prologue;
        while (inst_idx_ < pro.size()) {
            const Inst &si = pro[inst_idx_];
            if (!emit(si, now, budget))
                return false;
            ++inst_idx_;
            if (si.op == Opcode::MsrVL) {
                vl_before_request_ = current_vl_;
                recordVl(now, obs::EventKind::VlRequest, current_vl_,
                         si.vlFromDecision ? 0 : si.imm);
                await_since_ = now;
                spin_since_ = now;
                state_ = State::AwaitVl;
                return false;
            }
            if (budget == 0)
                return false;
        }
        // Prologue finished: multi-version dispatch (Section 6.3).
        if (curLoop().phase.tripElems < curLoop().scalarThreshold &&
            !curLoop().scalarBody.empty()) {
            phases_.back().scalarVersion = true;
            state_ = State::ScalarLoop;
        } else {
            state_ = State::IterStart;
        }
        return true;
      }

      case State::AwaitVl:
      case State::AwaitReconfig:
      case State::AwaitRelease: {
        const VlRequestStatus st = coproc_.vlRequestStatus(id_);
        if (!st.resolved)
            return false;
        coproc_.ackVlRequest(id_);
        recordVl(now, obs::EventKind::VlResolve, st.ok ? 1 : 0,
                 coproc_.currentVl(id_));
        reconfig_wait_cycles_ += now - await_since_;
        if (!st.ok) {
            // <status> == 0: spin, re-writing <VL> (Fig. 9 retry loop).
            const Inst *msr = nullptr;
            if (state_ == State::AwaitVl)
                msr = &curLoop().prologue[inst_idx_ - 1];
            else if (state_ == State::AwaitReconfig)
                msr = &curLoop().reconfig.back();
            else
                msr = &curLoop().epilogue[inst_idx_ - 1];
            if (budget == 0 || !emit(*msr, now, budget))
                return false;
            recordVl(now, obs::EventKind::VlRequest, current_vl_,
                     msr->vlFromDecision ? 0 : msr->imm);
            await_since_ = now;
            return false;
        }
        const unsigned new_vl = coproc_.currentVl(id_);
        const bool changed = new_vl != vl_before_request_;
        current_vl_ = new_vl;
        active_elems_ = current_vl_ * curLoop().elemsPerBu;
        if (changed)
            ++reconfig_events_;
        if (state_ != State::AwaitRelease && !phases_.empty()) {
            if (phases_.back().firstVl == 0)
                phases_.back().firstVl = current_vl_;
            phases_.back().lastVl = current_vl_;
        }
        if (state_ == State::AwaitVl) {
            state_ = State::Prologue;
        } else if (state_ == State::AwaitReconfig) {
            inst_idx_ = 0;
            state_ = changed ? State::Reinit : State::Body;
        } else {
            state_ = State::Epilogue;
        }
        return true;
      }

      case State::IterStart: {
        const VectorLoop &loop = curLoop();
        if (elems_done_ >= loop.phase.tripElems) {
            inst_idx_ = 0;
            state_ = State::Epilogue;
            return true;
        }
        // Lazy partition point: run the monitor (elastic only), every
        // monitorPeriod-th iteration.
        if (!loop.monitor.empty() &&
            iter_index_ % loop.monitorPeriod == 0) {
            while (inst_idx_ < loop.monitor.size()) {
                if (budget == 0 ||
                    !emit(loop.monitor[inst_idx_], now, budget))
                    return false;
                ++monitor_insts_;
                ++inst_idx_;
            }
            // Speculative <decision> read (Section 4.1.1).
            const unsigned d = coproc_.decision(id_);
            if (d > 0 && d != current_vl_) {
                inst_idx_ = 0;
                // Emit the reconfiguration MSR <VL>, <decision>.
                if (budget == 0 ||
                    !emit(loop.reconfig.back(), now, budget)) {
                    // Retry the whole monitor next cycle (harmless).
                    return false;
                }
                vl_before_request_ = current_vl_;
                recordVl(now, obs::EventKind::VlRequest, current_vl_, 0);
                await_since_ = now;
                spin_since_ = now;
                state_ = State::AwaitReconfig;
                return false;
            }
        }
        const std::uint64_t remaining =
            loop.phase.tripElems - elems_done_;
        active_elems_ = static_cast<unsigned>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(current_vl_) * loop.elemsPerBu,
            remaining));
        inst_idx_ = 0;
        state_ = State::Body;
        return true;
      }

      case State::Reinit: {
        const auto &re = curLoop().reinit;
        while (inst_idx_ < re.size()) {
            if (budget == 0 || !emit(re[inst_idx_], now, budget))
                return false;
            ++reinit_insts_;
            ++inst_idx_;
        }
        const std::uint64_t remaining =
            curLoop().phase.tripElems - elems_done_;
        active_elems_ = static_cast<unsigned>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(current_vl_) * curLoop().elemsPerBu,
            remaining));
        inst_idx_ = 0;
        state_ = State::Body;
        return true;
      }

      case State::Body: {
        const auto &body = curLoop().body;
        while (inst_idx_ < body.size()) {
            if (budget == 0 || !emit(body[inst_idx_], now, budget))
                return false;
            ++inst_idx_;
        }
        elems_done_ += active_elems_;
        ++iter_index_;
        inst_idx_ = 0;
        state_ = State::IterStart;
        return true;
      }

      case State::ScalarLoop: {
        // Multi-version fallback: executed entirely in the scalar
        // pipeline at 4 instructions per cycle, no co-processor use.
        const auto insts = static_cast<std::uint64_t>(
            curLoop().scalarBody.size());
        const std::uint64_t cycles =
            (curLoop().phase.tripElems * insts + 3) / 4;
        stall_until_ = now + cycles;
        elems_done_ = curLoop().phase.tripElems;
        inst_idx_ = 0;
        state_ = State::Epilogue;
        return false;
      }

      case State::Epilogue: {
        const auto &epi = curLoop().epilogue;
        while (inst_idx_ < epi.size()) {
            const Inst &si = epi[inst_idx_];
            if (budget == 0 || !emit(si, now, budget))
                return false;
            ++inst_idx_;
            if (si.op == Opcode::MsrVL) {
                vl_before_request_ = current_vl_;
                recordVl(now, obs::EventKind::VlRequest, current_vl_,
                         si.vlFromDecision ? 0 : si.imm);
                await_since_ = now;
                spin_since_ = now;
                state_ = State::AwaitRelease;
                return false;
            }
        }
        finishLoop(now);
        return true;
      }
    }
    return false;
}

void
ScalarCore::watchdogEscalate(Cycle now)
{
    assert(awaitingVl());
    coproc_.cancelVlRequest(id_);

    // Bounded retry exceeded: give up on the SIMD version of this phase
    // and run the remaining elements through the multi-version scalar
    // fallback (Section 6.3), 4 scalar instructions per cycle. In the
    // epilogue (AwaitRelease) there is no remaining work — the release
    // itself is abandoned and the epilogue simply continues.
    const VectorLoop &loop = curLoop();
    phases_.back().scalarVersion = true;
    const std::uint64_t remaining =
        loop.phase.tripElems > elems_done_
            ? loop.phase.tripElems - elems_done_
            : 0;
    const std::uint64_t insts_per_elem = loop.scalarBody.empty()
                                             ? loop.body.size()
                                             : loop.scalarBody.size();
    stall_until_ = now + (remaining * insts_per_elem + 3) / 4;
    elems_done_ = loop.phase.tripElems;
    if (state_ != State::AwaitRelease)
        inst_idx_ = 0;
    state_ = State::Epilogue;
    blocked_ = false;
    OCCAMY_LOG(now, "Core",
               "core%u watchdog escalation: scalar fallback for %llu elems",
               id_, static_cast<unsigned long long>(remaining));
}

void
ScalarCore::tick(Cycle now)
{
    blocked_ = false;
    if (state_ == State::Done || stall_until_ > now)
        return;
    unsigned budget = cfg_.transmitWidth;
    while (budget > 0 && step(now, budget)) {
    }
    // Budget left over means step() refused to advance: the core is
    // gated on external progress, not merely out of transmit slots.
    blocked_ = budget > 0;
}

Cycle
ScalarCore::nextEventAt(Cycle now) const
{
    if (state_ == State::Done)
        return kCycleNever;
    if (stall_until_ > now)
        return stall_until_;
    if (state_ == State::AwaitVl || state_ == State::AwaitReconfig ||
        state_ == State::AwaitRelease) {
        // Resolution is a co-processor action; until it happens every
        // tick here is a pure status poll. The co-processor's probe
        // owns the wake (the outstanding MSR sits in its EM-SIMD
        // queue, or its drain progress gates it).
        return coproc_.vlRequestStatus(id_).resolved ? now + 1
                                                     : kCycleNever;
    }
    return blocked_ ? kCycleNever : now + 1;
}

void
ScalarCore::save(ckpt::Writer &w) const
{
    w.section("core");
    w.u8(static_cast<std::uint8_t>(state_));
    w.u64(loop_idx_);
    w.u32(phase_id_base_);
    w.u64(inst_idx_);
    w.u64(elems_done_);
    w.u64(iter_index_);
    w.u32(current_vl_);
    w.u32(active_elems_);
    w.u64(await_since_);
    w.u64(spin_since_);
    w.u64(stall_until_);
    w.u32(vl_before_request_);
    w.b(blocked_);

    w.u64(phases_.size());
    for (const PhaseTrace &pt : phases_) {
        w.str(pt.name);
        w.u32(pt.phaseId);
        w.u64(pt.start);
        w.u64(pt.end);
        w.b(pt.scalarVersion);
        w.u32(pt.firstVl);
        w.u32(pt.lastVl);
    }

    w.u64(monitor_insts_);
    w.u64(reconfig_wait_cycles_);
    w.u64(reconfig_events_);
    w.u64(reinit_insts_);
}

void
ScalarCore::load(ckpt::Reader &r)
{
    r.expectSection("core");
    state_ = static_cast<State>(r.u8());
    loop_idx_ = r.u64();
    phase_id_base_ = r.u32();
    inst_idx_ = r.u64();
    elems_done_ = r.u64();
    iter_index_ = r.u64();
    current_vl_ = r.u32();
    active_elems_ = r.u32();
    await_since_ = r.u64();
    spin_since_ = r.u64();
    stall_until_ = r.u64();
    vl_before_request_ = r.u32();
    blocked_ = r.b();

    phases_.resize(r.arr());
    for (PhaseTrace &pt : phases_) {
        pt.name = r.str();
        pt.phaseId = r.u32();
        pt.start = r.u64();
        pt.end = r.u64();
        pt.scalarVersion = r.b();
        pt.firstVl = r.u32();
        pt.lastVl = r.u32();
    }

    monitor_insts_ = r.u64();
    reconfig_wait_cycles_ = r.u64();
    reconfig_events_ = r.u64();
    reinit_insts_ = r.u64();
}

void
ScalarCore::printState(std::ostream &os) const
{
    static const char *const names[] = {
        "Idle", "Prologue", "AwaitVl", "IterStart", "AwaitReconfig",
        "Reinit", "Body", "ScalarLoop", "Epilogue", "AwaitRelease",
        "Done",
    };
    os << "state " << names[static_cast<unsigned>(state_)] << '\n'
       << "loop_idx " << loop_idx_ << '\n'
       << "inst_idx " << inst_idx_ << '\n'
       << "elems_done " << elems_done_ << '\n'
       << "iter_index " << iter_index_ << '\n'
       << "current_vl " << current_vl_ << '\n'
       << "active_elems " << active_elems_ << '\n'
       << "blocked " << (blocked_ ? 1 : 0) << '\n'
       << "spin_since " << spin_since_ << '\n'
       << "stall_until " << stall_until_ << '\n'
       << "phases_recorded " << phases_.size() << '\n'
       << "monitor_insts " << monitor_insts_ << '\n'
       << "reconfig_wait_cycles " << reconfig_wait_cycles_ << '\n'
       << "reconfig_events " << reconfig_events_ << '\n'
       << "reinit_insts " << reinit_insts_ << '\n';
}

} // namespace occamy
