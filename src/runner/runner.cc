#include "runner/runner.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "fault/fault.hh"

namespace occamy::runner
{

const char *
jobStatusName(JobStatus s)
{
    return s == JobStatus::Ok ? "ok" : "failed";
}

std::size_t
SweepResult::failed() const
{
    std::size_t n = 0;
    for (const auto &j : jobs)
        if (!j.ok())
            ++n;
    return n;
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("OCCAMY_JOBS")) {
        const long n = std::atol(env);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::function<void(const Progress &)>
stderrProgress()
{
    return [](const Progress &p) {
        std::fprintf(stderr,
                     "\r[%zu/%zu] running=%zu failed=%zu "
                     "elapsed=%.1fs eta=%.1fs   ",
                     p.done, p.total, p.running, p.failed, p.elapsedSec,
                     p.etaSec);
        if (p.done == p.total)
            std::fprintf(stderr, "\n");
        std::fflush(stderr);
    };
}

JobResult
Runner::runOne(const JobSpec &spec, unsigned transient_retries)
{
    JobResult out;
    out.id = spec.id;
    out.label = spec.label;
    out.policy = spec.cfg.policy;
    out.retryBudget = transient_retries;

    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned attempt = 0;; ++attempt) {
        out.status = JobStatus::Ok;
        out.error.clear();
        out.result = RunResult{};
        out.trace = obs::TraceBuffer{};
        out.ff = FastForwardStats{};
        // The sink lives on this worker thread for exactly this job;
        // no other thread ever sees it (stats.hh concurrency contract).
        // Held outside the try so a throwing or timed-out run still
        // hands back the partial trace it captured.
        std::unique_ptr<obs::RingSink> sink;
        if (spec.traceEvents != 0)
            sink = std::make_unique<obs::RingSink>(spec.traceCapacity,
                                                   spec.traceEvents);
        bool transient = false;
        try {
            System sys(spec.cfg);
            // System::setWorkload range-checks the core id, so a spec
            // with more slots than cores becomes a contained per-job
            // failure.
            for (std::size_t c = 0; c < spec.workloads.size(); ++c)
                sys.setWorkload(static_cast<CoreId>(c),
                                spec.workloads[c].first,
                                spec.workloads[c].second);
            for (const auto &[name, loops] : spec.batch)
                sys.enqueueWorkload(name, loops);
            // Traffic expansion on the worker thread: a bad process or
            // scheduler name fails this job, not the sweep. The stream
            // is a pure function of the config, so the same spec yields
            // the same arrivals on any thread.
            if (spec.traffic.enabled()) {
                const traffic::Dispatcher *disp =
                    traffic::dispatcherByName(spec.traffic.scheduler);
                if (!disp)
                    throw std::invalid_argument(
                        "unknown traffic scheduler: " +
                        spec.traffic.scheduler);
                for (const traffic::Arrival &a :
                     traffic::generate(spec.traffic))
                    sys.enqueueArrival(a);
                sys.setDispatcher(disp);
                // Admission control: validated here so a bad name or
                // cap is a contained per-job failure too. "none" (the
                // default) installs nothing at all, keeping the run
                // byte-identical to pre-admission builds.
                if (spec.traffic.admissionEnabled()) {
                    const traffic::AdmissionPolicy *adm =
                        traffic::admissionByName(spec.traffic.admission);
                    if (!adm)
                        throw std::invalid_argument(
                            "unknown admission policy: " +
                            spec.traffic.admission);
                    if (spec.traffic.admissionCap < 1)
                        throw std::invalid_argument(
                            "admission cap must be >= 1");
                    sys.setAdmission(
                        adm, spec.traffic.admissionCap,
                        static_cast<Cycle>(spec.traffic.meanGapCycles));
                    out.hasAdmission = true;
                }
            }
            RunOptions ropt;
            ropt.maxCycles = spec.maxCycles;
            ropt.bucket = spec.bucket;
            ropt.snapshotEvery = spec.snapshotEvery;
            ropt.fastForward = spec.fastForward;
            ropt.watchdogCycles = spec.watchdogCycles;
            ropt.wallClockLimitSec = spec.wallClockLimitSec;
            ropt.checkpointOut = spec.checkpointOut;
            ropt.checkpointEvery = spec.checkpointEvery;
            ropt.simThreads = spec.simThreads;
            ropt.ffStats = &out.ff;
            if (sink)
                ropt.sink = sink.get();
            // Parsed inside the try: a malformed plan fails this job,
            // not the sweep.
            fault::FaultPlan plan;
            if (!spec.faultPlan.empty())
                plan = fault::FaultPlan::parse(spec.faultPlan);
            else if (spec.faultSeed)
                plan = fault::FaultPlan::random(spec.faultSeed,
                                                spec.cfg);
            if (!plan.empty())
                ropt.faultPlan = &plan;
            if (!spec.restoreFrom.empty()) {
                // Resume mid-run: boot + load + run the remainder.
                std::ifstream ckpt_is(spec.restoreFrom,
                                      std::ios::binary);
                if (!ckpt_is)
                    throw std::runtime_error(
                        "cannot open checkpoint file: " +
                        spec.restoreFrom);
                sys.restoreCheckpoint(ckpt_is, ropt);
                sys.advance();
                out.result = sys.finalize();
            } else {
                out.result = sys.run(ropt);
            }
            if (spec.traffic.enabled()) {
                out.hasTraffic = true;
                out.trafficTenants = spec.traffic.tenants;
                out.trafficMetrics = traffic::computeMetrics(
                    out.result.trafficJobs, spec.traffic.tenants,
                    out.result.cycles);
            }
            if (out.result.timedOut) {
                out.status = JobStatus::Failed;
                out.error = "hit the " + std::to_string(spec.maxCycles) +
                            "-cycle cap (partial result retained)";
            } else if (out.result.wallKilled) {
                out.status = JobStatus::Failed;
                out.error = "killed by the " +
                            std::to_string(spec.wallClockLimitSec) +
                            "s wall-clock limit (partial result "
                            "retained)";
            }
        } catch (const std::bad_alloc &) {
            out.status = JobStatus::Failed;
            out.error = "out of memory";
            transient = true;
        } catch (const std::system_error &e) {
            out.status = JobStatus::Failed;
            out.error = e.what();
            transient = true;
        } catch (const std::exception &e) {
            out.status = JobStatus::Failed;
            out.error = e.what();
        } catch (...) {
            out.status = JobStatus::Failed;
            out.error = "unknown exception";
        }
        if (sink)
            out.trace = sink->take();
        out.retriesUsed = attempt;
        if (out.ok() || !transient || attempt >= transient_retries)
            break;
        // Host-condition failure with retries left: back off and rerun.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10LL << attempt));
    }
    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return out;
}

SweepResult
Runner::run(std::vector<JobSpec> jobs) const
{
    SweepResult sweep;
    const std::size_t n = jobs.size();
    sweep.jobs.resize(n);
    if (n == 0)
        return sweep;

    unsigned threads = opt_.numThreads ? opt_.numThreads : defaultJobs();
    if (threads > n)
        threads = static_cast<unsigned>(n);

    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> running{0};
    std::atomic<std::size_t> failed{0};
    std::mutex done_mtx;
    std::condition_variable done_cv;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            ++running;
            // Results land at the spec's position, so completion order
            // (and thus thread count) never affects sweep output.
            sweep.jobs[i] = runOne(jobs[i], opt_.transientRetries);
            if (!sweep.jobs[i].ok())
                ++failed;
            --running;
            {
                std::lock_guard<std::mutex> lock(done_mtx);
                ++done;
            }
            done_cv.notify_one();
        }
    };

    auto progress = [&]() {
        Progress p;
        p.total = n;
        p.done = done.load();
        p.running = running.load();
        p.failed = failed.load();
        p.elapsedSec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        p.etaSec = p.done ? p.elapsedSec / static_cast<double>(p.done) *
                                static_cast<double>(p.total - p.done)
                          : 0.0;
        return p;
    };

    if (threads <= 1 && !opt_.onProgress) {
        // Inline fast path: no pool needed, still fault-contained.
        for (std::size_t i = 0; i < n; ++i) {
            sweep.jobs[i] = runOne(jobs[i], opt_.transientRetries);
            if (!sweep.jobs[i].ok())
                ++failed;
            ++done;
        }
        return sweep;
    }

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);

    if (opt_.onProgress) {
        std::unique_lock<std::mutex> lock(done_mtx);
        while (done.load() < n) {
            opt_.onProgress(progress());
            done_cv.wait_for(lock, std::chrono::milliseconds(500));
        }
    }
    for (auto &t : pool)
        t.join();
    if (opt_.onProgress)
        opt_.onProgress(progress());
    return sweep;
}

} // namespace occamy::runner
