/**
 * @file
 * Sweep construction and export on top of the runner: build job lists
 * from the workload suite's co-running pairs crossed with sharing
 * policies, and render a completed SweepResult as aggregated JSON or a
 * summary CSV (both deterministic: ordered by job id, no wall-clock
 * fields), reusing the per-run exporters in sim/trace.
 */

#ifndef OCCAMY_RUNNER_SWEEP_HH
#define OCCAMY_RUNNER_SWEEP_HH

#include <ostream>
#include <string>
#include <vector>

#include "runner/runner.hh"
#include "workloads/suite.hh"

namespace occamy::runner
{

/**
 * Build the job list for @p pairs x @p policies, pair-major (all
 * policies of pair 0, then pair 1, ...), with ids assigned 0..n-1 and
 * labels "<pair>/<policy>". Each job gets
 * MachineConfig::forPolicy(policy, 2) with @p tweak (if non-null)
 * applied to the config after the preset.
 */
std::vector<JobSpec> pairSweepJobs(
    const std::vector<workloads::Pair> &pairs,
    const std::vector<SharingPolicy> &policies,
    Cycle max_cycles = 40'000'000,
    const std::function<void(MachineConfig &)> &tweak = nullptr);

/**
 * Build the traffic-ablation job list: @p base (one traffic config —
 * process, tenants, seed, rate, SLO) crossed with @p policies x
 * @p schedulers, policy-major, ids 0..n-1 and labels
 * "<process>/<policy>/<scheduler>". Every job replays the identical
 * arrival stream (same seed), so the sweep isolates the scheduling
 * discipline and sharing policy. Each job gets
 * MachineConfig::forPolicy(policy, 2) with @p tweak (if non-null)
 * applied after the preset.
 */
std::vector<JobSpec> trafficSweepJobs(
    const traffic::TrafficConfig &base,
    const std::vector<SharingPolicy> &policies,
    const std::vector<std::string> &schedulers,
    Cycle max_cycles = 40'000'000,
    const std::function<void(MachineConfig &)> &tweak = nullptr);

/**
 * Render the whole sweep as one JSON object:
 *   {"jobs":[{"id":..,"label":..,"policy":..,"seed":..,"status":..,
 *             "error":..,"result":{..trace::toJson..}},...],
 *    "failed":N}
 * Deterministic for a given job list: independent of thread count and
 * completion order (jobs are id-ordered, wall-clock is excluded).
 */
std::string sweepToJson(const SweepResult &sweep);

/**
 * Write the one-row-per-job summary CSV:
 *   id,label,policy,status,cycles,simd_util,dram_bytes,core<i>_finish...
 * Column count is fixed by the widest job (idle columns left empty).
 */
void writeSweepCsv(std::ostream &os, const SweepResult &sweep);

} // namespace occamy::runner

#endif // OCCAMY_RUNNER_SWEEP_HH
