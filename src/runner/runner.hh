/**
 * @file
 * Parallel experiment runner: fans independent `System` simulations out
 * across worker threads with deterministic result ordering and per-job
 * fault containment.
 *
 * A sweep is a vector of JobSpec; Runner::run() executes them on N
 * threads and returns a SweepResult whose jobs are ordered by spec
 * position regardless of completion order, so a sweep's output (and any
 * JSON/CSV rendered from it) is bit-identical whether it ran on 1
 * thread or 16. A job that throws, is infeasible, or hits its cycle cap
 * is marked Failed with a captured diagnostic; the rest of the sweep
 * still completes.
 *
 * Concurrency contract: each job constructs its own `System` (and with
 * it every component, stats group and `MachineConfig` copy) on the
 * worker thread that executes it, so jobs share no mutable state — see
 * the contract block in common/stats.hh.
 */

#ifndef OCCAMY_RUNNER_RUNNER_HH
#define OCCAMY_RUNNER_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "obs/sink.hh"
#include "sim/system.hh"

namespace occamy::runner
{

/** One named workload slot: {workload name, kernel loops}. */
using WorkloadSlot = std::pair<std::string, std::vector<kir::Loop>>;

/** Everything needed to run one independent simulation. */
struct JobSpec
{
    /** Dense position in the sweep; results come back in this order.
     *  Builders (pairSweepJobs, Runner callers) assign it = index. */
    std::size_t id = 0;

    /** Human-readable label, e.g. "6+16/Occamy". */
    std::string label;

    /** Full machine configuration (policy included). Copied per job:
     *  a running System never shares its config with another job. */
    MachineConfig cfg;

    /** Per-core workloads, indexed by core id. Fewer entries than
     *  cores leaves the remaining cores idle; more entries than cores
     *  is infeasible and fails the job (contained, not fatal). */
    std::vector<WorkloadSlot> workloads;

    /** FCFS/OI-aware batch queue entries (Section 5 co-scheduling). */
    std::vector<WorkloadSlot> batch;

    /** Simulation cycle cap; exceeding it fails the job. */
    Cycle maxCycles = 40'000'000;

    /** Timeline bucket size in cycles (System::run's bucket). */
    unsigned bucket = 1000;

    /** Reserved for stochastic workloads/configs. The simulator is
     *  fully deterministic today, so the seed only tags the result. */
    std::uint64_t seed = 0;

    /** Event categories to trace (obs::parseEventMask). When nonzero,
     *  the job gets a private RingSink built on its worker thread and
     *  the captured TraceBuffer comes back in JobResult::trace — the
     *  simulator is deterministic, so the buffer is byte-identical
     *  regardless of runner thread count. 0 (default) disables
     *  tracing entirely. */
    obs::EventMask traceEvents = 0;

    /** Ring capacity (events) for the per-job sink. */
    std::size_t traceCapacity = 1u << 20;

    /** Metric-snapshot period (RunOptions::snapshotEvery; 0 = never). */
    Cycle snapshotEvery = 0;

    /** Skip quiescent spans of the cycle loop (RunOptions::fastForward;
     *  results are identical either way). */
    bool fastForward = true;

    /** Fault plan in fault::FaultPlan::parse grammar, e.g.
     *  "lane@50000:bu=3;vldeny@10000+5000:core=0". Parsed on the worker
     *  thread, so a malformed plan is a contained per-job failure.
     *  Empty (default) = no textual plan. */
    std::string faultPlan;

    /** When faultPlan is empty and this is nonzero, the job runs under
     *  the seeded random plan fault::FaultPlan::random(faultSeed, cfg)
     *  — same seed, same plan, same result. 0 = fault-free. */
    std::uint64_t faultSeed = 0;

    /** Livelock watchdog threshold (RunOptions::watchdogCycles);
     *  0 = watchdog off. */
    Cycle watchdogCycles = 0;

    /** Hard per-job wall-clock kill in seconds
     *  (RunOptions::wallClockLimitSec); 0 = off. A killed job is
     *  Failed, never retried (the next attempt would die the same
     *  way), and keeps its partial trace. */
    double wallClockLimitSec = 0.0;

    /** Periodic checkpointing (RunOptions::checkpointOut/-Every): every
     *  checkpointEvery cycles the job overwrites checkpointOut with its
     *  latest snapshot. Both must be set to take effect. */
    std::string checkpointOut;
    Cycle checkpointEvery = 0;

    /** Worker threads for the job's own cycle loop
     *  (RunOptions::simThreads): clustered machines tick their
     *  ClusterEngines in parallel between deterministic horizons, so
     *  results are byte-identical for any value. <= 1 (and every flat
     *  machine) keeps the classic serial loop. Composes with the
     *  runner's own job-level threads — total concurrency is roughly
     *  jobs x simThreads. */
    unsigned simThreads = 1;

    /** Resume from this checkpoint file instead of starting at cycle 0
     *  (System::restoreCheckpoint). The spec must carry the same
     *  config, workloads and determinism-relevant options as the run
     *  that wrote it; a mismatch is a contained per-job failure. */
    std::string restoreFrom;

    /** Multi-tenant traffic (src/traffic): when traffic.enabled(), the
     *  worker expands the config into a deterministic arrival stream
     *  (traffic::generate), enqueues it instead of `batch`, and selects
     *  the traffic.scheduler dispatch discipline. Generation and
     *  registry lookups happen on the worker thread, so a bad process
     *  or scheduler name is a contained per-job failure. */
    traffic::TrafficConfig traffic;
};

/** Terminal state of one job. */
enum class JobStatus
{
    Ok,         ///< Ran to completion of all workloads.
    Failed,     ///< Threw, was infeasible, or hit the cycle cap.
};

/** @return "ok" / "failed". */
const char *jobStatusName(JobStatus s);

/** Outcome of one job. */
struct JobResult
{
    std::size_t id = 0;
    std::string label;
    SharingPolicy policy = SharingPolicy::Elastic;
    JobStatus status = JobStatus::Ok;

    /** Diagnostic when Failed (exception text or timeout note). */
    std::string error;

    /** Simulation result. On a cycle-cap failure this holds the
     *  partial state at the cap; on an exception it is empty. */
    RunResult result;

    /** Captured event trace (empty unless JobSpec::traceEvents != 0).
     *  Failed and timed-out jobs keep whatever the ring captured up to
     *  the failure point — the partial trace is often the only
     *  diagnostic a hung or faulted run leaves behind. */
    obs::TraceBuffer trace;

    /** Wall-clock spent simulating, for operator feedback only. Never
     *  exported to JSON/CSV: it would break run-to-run determinism. */
    double wallMs = 0.0;

    /** Fast-forward accounting of the run (cycles simulated vs.
     *  ticked). Deterministic, unlike wallMs: it depends only on the
     *  job, so exporting it keeps sweeps byte-identical across thread
     *  counts. */
    FastForwardStats ff;

    /** SLO metrics aggregated from RunResult::trafficJobs (only
     *  meaningful when hasTraffic; deterministic like everything else
     *  exported). */
    bool hasTraffic = false;
    unsigned trafficTenants = 0;
    traffic::TrafficMetrics trafficMetrics;

    /** True when the job ran with an admission policy installed;
     *  gates the shed/defer/goodput export fields so admission-off
     *  sweeps stay byte-identical. */
    bool hasAdmission = false;

    /** Transient-retry accounting: attempts actually retried (0 on a
     *  clean first attempt) and the configured budget
     *  (RunnerOptions::transientRetries). Exported only when a budget
     *  was configured — retry counts reflect host conditions, not
     *  simulated state, so default sweeps must not carry the field. */
    unsigned retriesUsed = 0;
    unsigned retryBudget = 0;

    bool ok() const { return status == JobStatus::Ok; }
};

/** A completed sweep, ordered by JobSpec::id. */
struct SweepResult
{
    std::vector<JobResult> jobs;

    std::size_t failed() const;
    bool allOk() const { return failed() == 0; }
};

/** Live progress snapshot passed to RunnerOptions::onProgress. */
struct Progress
{
    std::size_t total = 0;
    std::size_t done = 0;       ///< Finished (ok or failed).
    std::size_t running = 0;    ///< Currently executing.
    std::size_t failed = 0;
    double elapsedSec = 0.0;
    double etaSec = 0.0;        ///< Naive remaining-time estimate.
};

/** Runner configuration. */
struct RunnerOptions
{
    /** Worker threads; 0 means defaultJobs(). */
    unsigned numThreads = 0;

    /** Invoked ~2x/second from the coordinating thread while the sweep
     *  runs, and once after the last job. Leave empty for silence. */
    std::function<void(const Progress &)> onProgress;

    /** Extra attempts for jobs that fail transiently (std::bad_alloc,
     *  std::system_error — host conditions, not simulator bugs), with
     *  10 ms * 2^attempt backoff before each retry. Deterministic
     *  failures (sim exceptions, cycle cap, wall-clock kill) are never
     *  retried. 0 (default) = single attempt. */
    unsigned transientRetries = 0;
};

/**
 * Default worker-thread count: the OCCAMY_JOBS environment variable if
 * set and positive, else std::thread::hardware_concurrency(), else 1.
 */
unsigned defaultJobs();

/** Stock onProgress callback: one-line live status on stderr. */
std::function<void(const Progress &)> stderrProgress();

/** Thread-pool executor for sweeps of independent simulations. */
class Runner
{
  public:
    explicit Runner(RunnerOptions opt = {}) : opt_(std::move(opt)) {}

    /**
     * Execute every job and return results ordered by spec position.
     * Never throws for job-level failures; those come back as
     * JobStatus::Failed entries.
     */
    SweepResult run(std::vector<JobSpec> jobs) const;

    /** Convenience: run one job with fault containment, inline.
     *  @p transient_retries follows RunnerOptions::transientRetries. */
    static JobResult runOne(const JobSpec &spec,
                            unsigned transient_retries = 0);

  private:
    RunnerOptions opt_;
};

} // namespace occamy::runner

#endif // OCCAMY_RUNNER_RUNNER_HH
