#include "runner/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "sim/trace.hh"

namespace occamy::runner
{

std::vector<JobSpec>
pairSweepJobs(const std::vector<workloads::Pair> &pairs,
              const std::vector<SharingPolicy> &policies,
              Cycle max_cycles,
              const std::function<void(MachineConfig &)> &tweak)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(pairs.size() * policies.size());
    for (const auto &pair : pairs) {
        for (SharingPolicy p : policies) {
            JobSpec spec;
            spec.id = jobs.size();
            spec.label = pair.label + "/" + policyName(p);
            spec.cfg = MachineConfig::forPolicy(p, 2);
            if (tweak)
                tweak(spec.cfg);
            spec.workloads = {{pair.core0.name, pair.core0.loops},
                              {pair.core1.name, pair.core1.loops}};
            spec.maxCycles = max_cycles;
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

std::vector<JobSpec>
trafficSweepJobs(const traffic::TrafficConfig &base,
                 const std::vector<SharingPolicy> &policies,
                 const std::vector<std::string> &schedulers,
                 Cycle max_cycles,
                 const std::function<void(MachineConfig &)> &tweak)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(policies.size() * schedulers.size());
    for (SharingPolicy p : policies) {
        for (const std::string &sched : schedulers) {
            JobSpec spec;
            spec.id = jobs.size();
            spec.label = base.process + "/" + policyName(p) + "/" + sched;
            spec.cfg = MachineConfig::forPolicy(p, 2);
            if (tweak)
                tweak(spec.cfg);
            spec.traffic = base;
            spec.traffic.scheduler = sched;
            spec.maxCycles = max_cycles;
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

namespace
{

/** Escape for a JSON string literal (labels can be arbitrary). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

/** Deterministic fixed-notation double for JSON/CSV export. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/** A cycle stamp for JSON; kCycleNever (stage never reached) -> -1. */
std::string
cyc(Cycle c)
{
    return c == kCycleNever ? std::string("-1") : std::to_string(c);
}

/** The per-job "traffic" JSON object (aggregates, per-tenant rows, and
 *  one lifecycle record per arrival). */
std::string
trafficToJson(const JobResult &j)
{
    const traffic::TrafficMetrics &m = j.trafficMetrics;
    std::ostringstream os;
    os << "{\"arrivals\":" << m.arrivals
       << ",\"completed\":" << m.completed
       << ",\"slo_violations\":" << m.sloViolations
       << ",\"queueing_delay_mean\":" << num(m.queueingDelayMean)
       << ",\"latency_p50\":" << num(m.latencyP50)
       << ",\"latency_p95\":" << num(m.latencyP95)
       << ",\"latency_p99\":" << num(m.latencyP99)
       << ",\"fairness_jain\":" << num(m.fairnessJain);
    // Admission aggregates appear only for jobs that actually ran with
    // an admission policy, keeping admission-off sweeps byte-identical.
    if (j.hasAdmission)
        os << ",\"shed\":" << m.shed << ",\"deferrals\":" << m.deferrals
           << ",\"goodput\":" << m.goodput;
    os << ",\"tenants\":[";
    for (std::size_t t = 0; t < m.tenants.size(); ++t) {
        const traffic::TenantMetrics &tm = m.tenants[t];
        os << (t ? "," : "") << "{\"tenant\":" << tm.tenant
           << ",\"arrivals\":" << tm.arrivals
           << ",\"completed\":" << tm.completed
           << ",\"slo_violations\":" << tm.sloViolations;
        if (j.hasAdmission)
            os << ",\"shed\":" << tm.shed;
        os << ",\"throughput\":" << num(tm.throughput)
           << ",\"mean_latency\":" << num(tm.meanLatency) << "}";
    }
    os << "],\"jobs\":[";
    for (std::size_t q = 0; q < j.result.trafficJobs.size(); ++q) {
        const traffic::JobRecord &r = j.result.trafficJobs[q];
        os << (q ? "," : "") << "{\"tenant\":" << r.tenant
           << ",\"arrive\":" << cyc(r.arrive)
           << ",\"admit\":" << cyc(r.admit)
           << ",\"finish\":" << cyc(r.finish)
           << ",\"slo_violated\":" << (r.violatedSlo() ? "true" : "false");
        if (j.hasAdmission)
            os << ",\"shed\":" << (r.shed ? "true" : "false")
               << ",\"defers\":" << r.defers;
        os << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace

std::string
sweepToJson(const SweepResult &sweep)
{
    std::ostringstream os;
    os << "{\"jobs\":[";
    for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
        const JobResult &j = sweep.jobs[i];
        os << (i ? "," : "") << "{\"id\":" << j.id
           << ",\"label\":\"" << jsonEscape(j.label) << "\""
           << ",\"policy\":\"" << policyName(j.policy) << "\""
           << ",\"status\":\"" << jobStatusName(j.status) << "\""
           << ",\"error\":\"" << jsonEscape(j.error) << "\""
           << ",\"timed_out\":" << (j.result.timedOut ? "true" : "false")
           << ",\"watchdog_trips\":" << j.result.watchdogTrips
           << ",\"lane_faults\":" << j.result.laneFaults
           << ",\"ff\":{\"simulated\":" << j.ff.cyclesSimulated
           << ",\"ticked\":" << j.ff.cyclesTicked
           << ",\"spans\":" << j.ff.spans << "}";
        // Retry accounting is exported only when a retry budget was
        // configured: attempt counts depend on host conditions, so
        // default (no-retry) sweeps must not grow a new field.
        if (j.retryBudget > 0)
            os << ",\"retries\":" << j.retriesUsed;
        if (j.hasTraffic)
            os << ",\"traffic\":" << trafficToJson(j);
        os << ",\"result\":" << trace::toJson(j.result) << "}";
    }
    std::size_t timed_out = 0;
    for (const auto &j : sweep.jobs)
        if (j.result.timedOut)
            ++timed_out;
    os << "],\"failed\":" << sweep.failed()
       << ",\"timed_out\":" << timed_out << "}";
    return os.str();
}

void
writeSweepCsv(std::ostream &os, const SweepResult &sweep)
{
    std::size_t max_cores = 0;
    std::size_t max_tenants = 0;
    std::size_t max_clusters = 0;
    bool any_traffic = false;
    bool any_admission = false;
    bool any_retries = false;
    for (const auto &j : sweep.jobs) {
        max_cores = std::max(max_cores, j.result.cores.size());
        max_clusters = std::max(max_clusters, j.result.clusters.size());
        if (j.hasTraffic) {
            any_traffic = true;
            max_tenants = std::max(
                max_tenants, static_cast<std::size_t>(j.trafficTenants));
        }
        any_admission = any_admission || j.hasAdmission;
        any_retries = any_retries || j.retryBudget > 0;
    }

    os << "id,label,policy,status,timed_out,cycles,simd_util,dram_bytes,"
          "cycles_ticked,watchdog_trips,lane_faults";
    // Like the traffic block below, retry columns exist only in sweeps
    // that configured a retry budget.
    if (any_retries)
        os << ",retries";
    // Traffic columns only appear in sweeps that ran traffic, so
    // pre-existing consumers of traffic-free CSVs see the exact format
    // they always did.
    if (any_traffic) {
        os << ",traffic_arrivals,traffic_completed,slo_violations,"
              "queueing_delay_mean,latency_p50,latency_p95,latency_p99,"
              "fairness_jain";
        if (any_admission)
            os << ",shed,deferrals,goodput";
        for (std::size_t t = 0; t < max_tenants; ++t)
            os << ",tenant" << t << "_throughput";
    }
    // Cluster columns likewise appear only when some job ran a
    // clustered topology.
    if (max_clusters > 0) {
        os << ",clusters,arbiter_rebalances";
        for (std::size_t k = 0; k < max_clusters; ++k)
            os << ",cluster" << k << "_dram_share_bpc,cluster" << k
               << "_migrated_in";
    }
    for (std::size_t c = 0; c < max_cores; ++c)
        os << ",core" << c << "_workload,core" << c << "_finish";
    os << "\n";

    os << std::setprecision(10);
    for (const auto &j : sweep.jobs) {
        os << j.id << "," << j.label << "," << policyName(j.policy)
           << "," << jobStatusName(j.status) << ","
           << (j.result.timedOut ? 1 : 0) << "," << j.result.cycles
           << "," << j.result.simdUtil << "," << j.result.dramBytes
           << "," << j.ff.cyclesTicked << "," << j.result.watchdogTrips
           << "," << j.result.laneFaults;
        if (any_retries)
            os << "," << j.retriesUsed;
        if (any_traffic) {
            if (j.hasTraffic) {
                const traffic::TrafficMetrics &m = j.trafficMetrics;
                os << "," << m.arrivals << "," << m.completed << ","
                   << m.sloViolations << "," << num(m.queueingDelayMean)
                   << "," << num(m.latencyP50) << "," << num(m.latencyP95)
                   << "," << num(m.latencyP99) << ","
                   << num(m.fairnessJain);
                if (any_admission) {
                    // Admission-less jobs in a mixed sweep leave the
                    // shed/defer cells empty rather than printing 0, so
                    // "no policy" and "policy shed nothing" stay
                    // distinguishable.
                    if (j.hasAdmission)
                        os << "," << m.shed << "," << m.deferrals << ","
                           << m.goodput;
                    else
                        os << ",,,";
                }
                for (std::size_t t = 0; t < max_tenants; ++t) {
                    os << ",";
                    if (t < m.tenants.size())
                        os << num(m.tenants[t].throughput);
                }
            } else {
                os << ",,,,,,,,";
                if (any_admission)
                    os << ",,,";
                for (std::size_t t = 0; t < max_tenants; ++t)
                    os << ",";
            }
        }
        if (max_clusters > 0) {
            os << "," << j.result.clusters.size() << ","
               << j.result.arbiterRebalances;
            for (std::size_t k = 0; k < max_clusters; ++k) {
                if (k < j.result.clusters.size())
                    os << "," << j.result.clusters[k].dramShareBpc
                       << "," << j.result.clusters[k].migratedIn;
                else
                    os << ",,";
            }
        }
        for (std::size_t c = 0; c < max_cores; ++c) {
            if (c < j.result.cores.size())
                os << "," << j.result.cores[c].workload << ","
                   << j.result.cores[c].finish;
            else
                os << ",,";
        }
        os << "\n";
    }
}

} // namespace occamy::runner
