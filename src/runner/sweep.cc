#include "runner/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "sim/trace.hh"

namespace occamy::runner
{

std::vector<JobSpec>
pairSweepJobs(const std::vector<workloads::Pair> &pairs,
              const std::vector<SharingPolicy> &policies,
              Cycle max_cycles,
              const std::function<void(MachineConfig &)> &tweak)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(pairs.size() * policies.size());
    for (const auto &pair : pairs) {
        for (SharingPolicy p : policies) {
            JobSpec spec;
            spec.id = jobs.size();
            spec.label = pair.label + "/" + policyName(p);
            spec.cfg = MachineConfig::forPolicy(p, 2);
            if (tweak)
                tweak(spec.cfg);
            spec.workloads = {{pair.core0.name, pair.core0.loops},
                              {pair.core1.name, pair.core1.loops}};
            spec.maxCycles = max_cycles;
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

namespace
{

/** Escape for a JSON string literal (labels can be arbitrary). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

std::string
sweepToJson(const SweepResult &sweep)
{
    std::ostringstream os;
    os << "{\"jobs\":[";
    for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
        const JobResult &j = sweep.jobs[i];
        os << (i ? "," : "") << "{\"id\":" << j.id
           << ",\"label\":\"" << jsonEscape(j.label) << "\""
           << ",\"policy\":\"" << policyName(j.policy) << "\""
           << ",\"status\":\"" << jobStatusName(j.status) << "\""
           << ",\"error\":\"" << jsonEscape(j.error) << "\""
           << ",\"timed_out\":" << (j.result.timedOut ? "true" : "false")
           << ",\"watchdog_trips\":" << j.result.watchdogTrips
           << ",\"lane_faults\":" << j.result.laneFaults
           << ",\"ff\":{\"simulated\":" << j.ff.cyclesSimulated
           << ",\"ticked\":" << j.ff.cyclesTicked
           << ",\"spans\":" << j.ff.spans << "}"
           << ",\"result\":" << trace::toJson(j.result) << "}";
    }
    std::size_t timed_out = 0;
    for (const auto &j : sweep.jobs)
        if (j.result.timedOut)
            ++timed_out;
    os << "],\"failed\":" << sweep.failed()
       << ",\"timed_out\":" << timed_out << "}";
    return os.str();
}

void
writeSweepCsv(std::ostream &os, const SweepResult &sweep)
{
    std::size_t max_cores = 0;
    for (const auto &j : sweep.jobs)
        max_cores = std::max(max_cores, j.result.cores.size());

    os << "id,label,policy,status,timed_out,cycles,simd_util,dram_bytes,"
          "cycles_ticked,watchdog_trips,lane_faults";
    for (std::size_t c = 0; c < max_cores; ++c)
        os << ",core" << c << "_workload,core" << c << "_finish";
    os << "\n";

    os << std::setprecision(10);
    for (const auto &j : sweep.jobs) {
        os << j.id << "," << j.label << "," << policyName(j.policy)
           << "," << jobStatusName(j.status) << ","
           << (j.result.timedOut ? 1 : 0) << "," << j.result.cycles
           << "," << j.result.simdUtil << "," << j.result.dramBytes
           << "," << j.ff.cyclesTicked << "," << j.result.watchdogTrips
           << "," << j.result.laneFaults;
        for (std::size_t c = 0; c < max_cores; ++c) {
            if (c < j.result.cores.size())
                os << "," << j.result.cores[c].workload << ","
                   << j.result.cores[c].finish;
            else
                os << ",,";
        }
        os << "\n";
    }
}

} // namespace occamy::runner
