#include "isa/inst.hh"

#include <sstream>

namespace occamy
{

std::string
Inst::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    bool first = true;
    auto sep = [&] {
        os << (first ? " " : ", ");
        first = false;
    };
    if (dst >= 0) {
        sep();
        os << (isSve(op) ? "z" : "x") << dst;
    }
    for (unsigned i = 0; i < nsrc; ++i) {
        sep();
        os << "z" << src[i];
    }
    if (op == Opcode::VLoad || op == Opcode::VStore) {
        sep();
        os << "[arr" << arrayId;
        if (elemOffset)
            os << (elemOffset > 0 ? "+" : "") << elemOffset;
        if (stride != 1)
            os << ", stride " << stride;
        os << "]";
    }
    if (op == Opcode::MsrVL) {
        sep();
        if (vlFromDecision)
            os << "<decision>";
        else
            os << "#" << imm;   // #0 releases all lanes (phase exit).
    }
    if (op == Opcode::MsrOI) {
        sep();
        os << "(" << oi.issue << "," << oi.mem << ")";
    }
    return os.str();
}

namespace
{

void
dumpSection(std::ostringstream &os, const char *label,
            const std::vector<Inst> &insts)
{
    if (insts.empty())
        return;
    os << "  ." << label << ":\n";
    for (const auto &inst : insts)
        os << "    " << inst.toString() << "\n";
}

} // namespace

std::string
Program::disassemble() const
{
    std::ostringstream os;
    os << "program " << name << ":\n";
    for (const auto &arr : arrays)
        os << "  array " << arr.name << "[" << arr.elems << "] x"
           << static_cast<int>(arr.elemBytes) << "B\n";
    for (const auto &loop : loops) {
        os << " phase " << loop.phase.name
           << " (oi_issue=" << loop.phase.oi.issue
           << ", oi_mem=" << loop.phase.oi.mem
           << ", trip=" << loop.phase.tripElems << "):\n";
        dumpSection(os, "prologue", loop.prologue);
        dumpSection(os, "monitor", loop.monitor);
        dumpSection(os, "reconfig", loop.reconfig);
        dumpSection(os, "reinit", loop.reinit);
        dumpSection(os, "body", loop.body);
        dumpSection(os, "scalar_body", loop.scalarBody);
        dumpSection(os, "epilogue", loop.epilogue);
    }
    return os.str();
}

} // namespace occamy
