/**
 * @file
 * Instruction opcodes for the three instruction classes the paper's
 * Table 2 distinguishes: Scalar, SVE (compute and ld/st), and EM-SIMD
 * (reads/writes of the five dedicated registers of Table 1).
 */

#ifndef OCCAMY_ISA_OPCODE_HH
#define OCCAMY_ISA_OPCODE_HH

#include <cstdint>

namespace occamy
{

/** Opcodes understood by the scalar cores and the co-processor. */
enum class Opcode : std::uint8_t
{
    // Scalar instructions (executed by the scalar cores).
    SNop,
    SAlu,           ///< Generic scalar integer ALU op (addressing, cmp).
    SBranch,        ///< Conditional branch.
    SLoad,          ///< Scalar load.
    SStore,         ///< Scalar store.

    // SVE compute instructions (variable-length vector arithmetic).
    VFAdd,
    VFSub,
    VFMul,
    VFDiv,
    VFMla,          ///< Fused multiply-add.
    VFNeg,
    VFSqrt,
    VFAbs,
    VFMax,
    VFMin,
    VCmp,           ///< Vector compare producing a predicate.
    VSel,           ///< Predicated select.
    VDup,           ///< Broadcast a scalar into all lanes (loop invariant).
    VRedAdd,        ///< Horizontal add-reduction into a scalar.
    VWhilelt,       ///< Build the loop-tail predicate (whilelt).

    // SVE memory instructions.
    VLoad,          ///< Contiguous vector load (128 * vl bits).
    VStore,         ///< Contiguous vector store.

    // EM-SIMD instructions (Table 1 dedicated registers via MRS/MSR).
    MsrOI,          ///< Write a phase's operational intensity into <OI>.
    MsrVL,          ///< Request the vector length <VL> := imm/reg.
    MrsVL,          ///< Read the configured vector length.
    MrsStatus,      ///< Read the success flag of the last <VL> write.
    MrsDecision,    ///< Read the suggested vector length <decision>.
    MrsAL,          ///< Read the number of free SIMD lanes <AL>.
};

/** @return true for SVE arithmetic (the "SIMD compute" class). */
constexpr bool
isVCompute(Opcode op)
{
    switch (op) {
      case Opcode::VFAdd:
      case Opcode::VFSub:
      case Opcode::VFMul:
      case Opcode::VFDiv:
      case Opcode::VFMla:
      case Opcode::VFNeg:
      case Opcode::VFSqrt:
      case Opcode::VFAbs:
      case Opcode::VFMax:
      case Opcode::VFMin:
      case Opcode::VCmp:
      case Opcode::VSel:
      case Opcode::VDup:
      case Opcode::VRedAdd:
      case Opcode::VWhilelt:
        return true;
      default:
        return false;
    }
}

/** @return true for SVE memory instructions. */
constexpr bool
isVMem(Opcode op)
{
    return op == Opcode::VLoad || op == Opcode::VStore;
}

/** @return true for any SVE instruction (compute or ld/st). */
constexpr bool
isSve(Opcode op)
{
    return isVCompute(op) || isVMem(op);
}

/** @return true for EM-SIMD ISA-extension instructions. */
constexpr bool
isEmSimd(Opcode op)
{
    switch (op) {
      case Opcode::MsrOI:
      case Opcode::MsrVL:
      case Opcode::MrsVL:
      case Opcode::MrsStatus:
      case Opcode::MrsDecision:
      case Opcode::MrsAL:
        return true;
      default:
        return false;
    }
}

/** @return true for scalar-core instructions. */
constexpr bool
isScalar(Opcode op)
{
    return !isSve(op) && !isEmSimd(op);
}

/** @return execution latency class of an SVE compute op, in cycles. */
constexpr unsigned
computeLatency(Opcode op, unsigned fp_latency)
{
    switch (op) {
      case Opcode::VFDiv:
        return fp_latency * 4;          // Unpipelined-ish long op.
      case Opcode::VFSqrt:
        return fp_latency * 4;
      case Opcode::VRedAdd:
        return fp_latency + 2;          // Cross-lane tree.
      case Opcode::VDup:
      case Opcode::VWhilelt:
      case Opcode::VSel:
      case Opcode::VCmp:
      case Opcode::VFNeg:
      case Opcode::VFAbs:
        return 1;
      default:
        return fp_latency;
    }
}

/** Short mnemonic, for disassembly and traces. */
const char *opcodeName(Opcode op);

} // namespace occamy

#endif // OCCAMY_ISA_OPCODE_HH
