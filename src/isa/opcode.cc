#include "isa/opcode.hh"

namespace occamy
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::SNop: return "nop";
      case Opcode::SAlu: return "alu";
      case Opcode::SBranch: return "b";
      case Opcode::SLoad: return "ldr";
      case Opcode::SStore: return "str";
      case Opcode::VFAdd: return "fadd";
      case Opcode::VFSub: return "fsub";
      case Opcode::VFMul: return "fmul";
      case Opcode::VFDiv: return "fdiv";
      case Opcode::VFMla: return "fmla";
      case Opcode::VFNeg: return "fneg";
      case Opcode::VFSqrt: return "fsqrt";
      case Opcode::VFAbs: return "fabs";
      case Opcode::VFMax: return "fmax";
      case Opcode::VFMin: return "fmin";
      case Opcode::VCmp: return "fcmp";
      case Opcode::VSel: return "sel";
      case Opcode::VDup: return "dup";
      case Opcode::VRedAdd: return "faddv";
      case Opcode::VWhilelt: return "whilelt";
      case Opcode::VLoad: return "ld1w";
      case Opcode::VStore: return "st1w";
      case Opcode::MsrOI: return "msr_oi";
      case Opcode::MsrVL: return "msr_vl";
      case Opcode::MrsVL: return "mrs_vl";
      case Opcode::MrsStatus: return "mrs_status";
      case Opcode::MrsDecision: return "mrs_decision";
      case Opcode::MrsAL: return "mrs_al";
    }
    return "?";
}

} // namespace occamy
