/**
 * @file
 * Static instructions and compiled-program containers.
 *
 * The Occamy compiler (src/compiler) lowers kernel-IR loops into
 * VectorLoop objects: straight-line SVE bodies plus the EM-SIMD
 * prologue / partition-monitor / reconfiguration / epilogue sections of
 * Fig. 9. The scalar-core model (src/core) walks this structure to
 * produce the dynamic instruction stream fed to the co-processor.
 */

#ifndef OCCAMY_ISA_INST_HH
#define OCCAMY_ISA_INST_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace occamy
{

/** Which memory-hierarchy level bounds a phase's streaming bandwidth. */
enum class MemLevel : std::uint8_t
{
    VecCache,
    L2,
    Dram,
};

/**
 * Operational intensity of one phase as the compiler writes it to <OI>
 * (a pair of values, Section 6.3): the issue-side intensity uses total
 * bytes over all memory instructions, the memory-side intensity uses the
 * per-iteration footprint with data reuse considered (Eq. 5).
 */
struct PhaseOI
{
    double issue = 0.0;     ///< comp / sum of access bytes.
    double mem = 0.0;       ///< comp / footprint bytes.
    MemLevel level = MemLevel::Dram;   ///< Bandwidth ceiling that applies.

    bool active() const { return mem > 0.0; }
};

/** A static (compile-time) instruction. */
struct Inst
{
    Opcode op = Opcode::SNop;

    /** Destination architectural register (z-reg for SVE, x-reg ids for
     *  MRS destinations; unused otherwise). */
    std::int16_t dst = -1;

    /** Source architectural registers (up to 3, e.g. fmla acc,a,b). */
    std::array<std::int16_t, 3> src{-1, -1, -1};
    std::uint8_t nsrc = 0;

    /** For VLoad/VStore: which program array is referenced. */
    std::int16_t arrayId = -1;

    /** For VLoad/VStore: element offset relative to the induction
     *  variable (e.g. -1 for dz[k-1]); enables sliding-window reuse. */
    std::int32_t elemOffset = 0;

    /** For VLoad/VStore: element stride; >1 is a gather/scatter. */
    std::int32_t stride = 1;

    /** Element size in bytes for memory instructions. */
    std::uint8_t elemBytes = 4;

    /** For MsrVL: requested vector length in BUs (0 with
     *  !vlFromDecision releases all lanes at phase exit). */
    std::uint32_t imm = 0;

    /** MsrVL: take the target vector length from <decision> instead
     *  of `imm` (the lazy reconfiguration path of Fig. 9). */
    bool vlFromDecision = false;

    /** Reduction accumulator rotation: the scalar core renames this
     *  instruction's accumulator register per iteration so independent
     *  partial sums hide the FP latency (standard unroll-and-jam). */
    bool rotateAcc = false;

    /** For MsrOI: the operational-intensity pair written to <OI>. */
    PhaseOI oi;

    /** Render "fmla z2, z0, z1"-style text. */
    std::string toString() const;
};

/** An array referenced by a compiled program. */
struct ArrayInfo
{
    std::string name;
    std::uint64_t elems = 0;      ///< Total elements.
    std::uint8_t elemBytes = 4;
    /** Streams once (index = i) vs wraps modulo `elems` (cache-resident
     *  working set regardless of trip count). */
    bool streaming = true;
    /** Base byte address; assigned when the program is bound to a core. */
    Addr base = 0;
};

/**
 * Static metadata describing one phase (== one vectorized loop), the
 * granularity at which the LaneMgr repartitions.
 */
struct PhaseInfo
{
    std::string name;
    PhaseOI oi;

    /** Scalar trip count (elements to process). */
    std::uint64_t tripElems = 0;

    /** Compute / memory instruction counts per vectorized iteration. */
    unsigned computeInsts = 0;
    unsigned memInsts = 0;

    /** Per-iteration unique bytes (Eq. 5 footprint, with reuse). */
    double footprintBytes = 0.0;

    /** Widest element type in the loop (bytes); sets elements/BU. */
    unsigned elemBytes = 4;

    /** Sum of access bytes per iteration (Eq. 5 issue denominator). */
    double accessBytes = 0.0;

    /** True if the compiler classified the phase memory-intensive. */
    bool memoryIntensive = false;
};

/**
 * A compiled vectorized loop with the eager-lazy lane-partitioning code
 * of Fig. 9 attached.
 */
struct VectorLoop
{
    PhaseInfo phase;

    /** Eager partitioning: MSR <OI>, then the default-VL set loop. */
    std::vector<Inst> prologue;

    /** Lazy partitioning: MRS <decision> + compare, run per iteration. */
    std::vector<Inst> monitor;

    /** Vector-length reconfiguration: MSR <VL> retry loop. */
    std::vector<Inst> reconfig;

    /** Re-initialization after a successful VL switch: loop-invariant
     *  re-broadcasts and reduction fix-up (Section 6.4). */
    std::vector<Inst> reinit;

    /** The vectorized loop body (one strip-mined iteration). */
    std::vector<Inst> body;

    /** Multi-version scalar fallback for small trip counts. */
    std::vector<Inst> scalarBody;

    /** Eager partitioning: MSR <OI>,0 and MSR <VL>,0 (release lanes). */
    std::vector<Inst> epilogue;

    /** Compiler-selected default vector length, in BUs. */
    unsigned defaultVl = 1;

    /** The partition monitor runs every this-many iterations. */
    unsigned monitorPeriod = 1;

    /** Elements processed per ExeBU per iteration (128 bits divided by
     *  the loop's widest element type: 8 for f16, 4 for f32, 2 for
     *  f64). */
    unsigned elemsPerBu = 4;

    /** Below this trip count the scalar version is chosen at run time. */
    std::uint64_t scalarThreshold = 128;

    /** True if the loop carries a reduction across iterations. */
    bool hasReduction = false;
};

/** A compiled workload: its arrays plus an ordered list of phases. */
struct Program
{
    std::string name;
    std::vector<ArrayInfo> arrays;
    std::vector<VectorLoop> loops;

    /** Pretty-print the whole program (assembly-like listing). */
    std::string disassemble() const;
};

} // namespace occamy

#endif // OCCAMY_ISA_INST_HH
