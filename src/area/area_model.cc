#include "area/area_model.hh"

#include <cmath>
#include <stdexcept>
#include <string>

#include "policy/sharing_model.hh"

namespace occamy
{

double
AreaBreakdown::total() const
{
    double t = 0.0;
    for (const auto &c : components)
        t += c.mm2;
    return t;
}

double
AreaBreakdown::fraction(const std::string &component) const
{
    const double t = total();
    if (t <= 0)
        return 0.0;
    for (const auto &c : components)
        if (c.name == component)
            return c.mm2 / t;
    return 0.0;
}

AreaBreakdown
AreaModel::breakdown(SharingPolicy policy, unsigned cores) const
{
    AreaBreakdown b;
    b.policy = policy;
    b.cores = cores;
    const policy::SharingModel &model = policy::model(policy);

    const unsigned bus = 4 * cores;   // Equal SIMD resources per core.

    // Register file: N RegBlks of 160 rows, scaled by the policy's
    // context-holding cost (FTS must hold a full-width context per
    // core; beyond 2 cores that multiplies the rows by the core count,
    // Section 7.6, instead of sharing one 160-row pool).
    double regfile = kRegfilePerBu * bus * model.regfileAreaScale(cores);

    const double per_core_scale = static_cast<double>(cores);
    double inst_pool = kInstPoolPerCore * per_core_scale;
    double decode = kDecodePerCore * per_core_scale;
    double rename = kRenamePerCore * per_core_scale;
    double dispatch = kDispatchPerCore * per_core_scale;
    double rob = kRobPerCore * per_core_scale;
    double lsu = kLsuPerCore * per_core_scale;
    double manager = model.hasManagerBlock() ? kManager : 0.0;

    // Control/table growth when scaling past 2 cores (~3% per doubling
    // of the control-heavy structures, Section 4.2.1).
    if (cores > 2) {
        const double doublings = std::log2(cores / 2.0);
        const double scale = 1.0 + kControlScalePerDoubling * doublings;
        inst_pool *= scale;
        decode *= scale;
        rename *= scale;
        dispatch *= scale;
        rob *= scale;
        manager *= scale;
    }

    b.components = {
        {"inst_pool", inst_pool},
        {"decode", decode},
        {"rename", rename},
        {"dispatch", dispatch},
        {"simd_exe_units", kExePerBu * bus},
        {"lsu", lsu},
        {"manager", manager},
        {"register_file", regfile},
        {"rob", rob},
        {"vec_cache", kVecCache * (cores / 2.0)},
    };
    return b;
}

AreaBreakdown
AreaModel::breakdown(const MachineConfig &cfg) const
{
    AreaBreakdown one = breakdown(cfg.policy, cfg.coresPerCluster());
    if (cfg.numClusters == 1)
        return one;
    if (!canPrice(cfg.numClusters))
        throw std::invalid_argument(
            "AreaModel: cannot price " +
            std::to_string(cfg.numClusters) +
            " clusters (calibrated up to " +
            std::to_string(kMaxClusters) + ")");

    AreaBreakdown b;
    b.policy = cfg.policy;
    b.cores = cfg.numCores;
    b.clusters = cfg.numClusters;
    for (const auto &c : one.components)
        b.components.push_back({c.name, c.mm2 * cfg.numClusters});

    // Inter-cluster overhead grows with the topology's fan-in: the
    // level-2 arbiter like a control structure, the interconnect as a
    // fraction of the area it has to wire together.
    const double doublings =
        std::log2(static_cast<double>(cfg.numClusters));
    b.components.push_back(
        {"cluster_arbiter",
         kArbiter * (1.0 + kControlScalePerDoubling * doublings)});
    b.components.push_back(
        {"interconnect", one.total() * cfg.numClusters *
                             kInterconnectPerDoubling * doublings});
    return b;
}

} // namespace occamy
