/**
 * @file
 * Analytic chip-area model (Section 7.3, Fig. 12).
 *
 * Substitutes for the paper's TSMC-7nm Synopsys DC synthesis: per
 * component, area scales with the structure that dominates it (ExeBUs
 * for execution units and the register file, cores for the per-core
 * pipeline structures), calibrated so the 2-core configuration lands on
 * the paper's published totals (Private 1.263 mm², shared designs
 * 1.265 mm²) and breakdown (execution units 46%, LSU 23%, register
 * file 15%, Manager <1%), control scaling of +3% from 2 to 4 cores,
 * and FTS's +33.5% at 4 cores when it keeps per-core full-width
 * register contexts.
 */

#ifndef OCCAMY_AREA_AREA_MODEL_HH
#define OCCAMY_AREA_AREA_MODEL_HH

#include <string>
#include <vector>

#include "common/config.hh"

namespace occamy
{

/** Area of one micro-architectural component in mm² (7 nm). */
struct AreaComponent
{
    std::string name;
    double mm2 = 0.0;
};

/** Full breakdown for one architecture/configuration. */
struct AreaBreakdown
{
    SharingPolicy policy;
    unsigned cores = 2;       ///< Machine-wide core count.
    unsigned clusters = 1;    ///< Co-processor clusters priced.
    std::vector<AreaComponent> components;

    double total() const;
    double fraction(const std::string &component) const;
};

/** Analytic area model. */
class AreaModel
{
  public:
    /**
     * Largest cluster count the interconnect/arbiter overhead terms
     * are calibrated for (64 clusters x 8 cores covers the 432-core
     * clustered RISC-V Occamy chip). MachineConfig::Builder rejects
     * topologies beyond this.
     */
    static constexpr unsigned kMaxClusters = 64;

    /** @return whether @p clusters is within the calibrated range. */
    static constexpr bool canPrice(unsigned clusters)
    {
        return clusters >= 1 && clusters <= kMaxClusters;
    }

    /**
     * Compute the breakdown for @p policy with @p cores cores sharing
     * one co-processor of 4 * cores ExeBUs (the paper's equal-resource
     * scaling).
     */
    AreaBreakdown breakdown(SharingPolicy policy, unsigned cores) const;

    /**
     * Compute the breakdown for a full (possibly clustered) machine:
     * the per-cluster breakdown replicated numClusters times plus the
     * inter-cluster interconnect and level-2 arbiter. Degenerates to
     * breakdown(policy, cores) for 1-cluster configs. Throws
     * std::invalid_argument when !canPrice(cfg.numClusters).
     */
    AreaBreakdown breakdown(const MachineConfig &cfg) const;

  private:
    // 2-core calibration (mm²). Derived from Fig. 12's fractions of the
    // 1.263 mm² Private total.
    static constexpr double kExePerBu = 0.58098 / 8;      // 46%
    static constexpr double kLsuPerCore = 0.29049 / 2;    // 23%
    static constexpr double kRegfilePerBu = 0.18945 / 8;  // 15%
    static constexpr double kVecCache = 0.12000;
    static constexpr double kRobPerCore = 0.02400 / 2;
    static constexpr double kInstPoolPerCore = 0.01600 / 2;
    static constexpr double kDecodePerCore = 0.01000 / 2;
    static constexpr double kRenamePerCore = 0.01400 / 2;
    static constexpr double kDispatchPerCore = 0.01808 / 2;
    static constexpr double kManager = 0.00200;           // <1% (shared).

    /** Control/table overhead when scaling beyond 2 cores: +3% of the
     *  per-core pipeline structures per doubling (Section 4.2.1). */
    static constexpr double kControlScalePerDoubling = 0.03;

    /** Level-2 lane manager (inter-cluster arbiter): twice the
     *  intra-cluster Manager block, it holds per-cluster bandwidth
     *  counters instead of per-core OI registers. */
    static constexpr double kArbiter = 0.00400;

    /** Inter-cluster interconnect (cluster <-> shared L2/DRAM ports):
     *  +2% of the replicated cluster area per cluster doubling. */
    static constexpr double kInterconnectPerDoubling = 0.02;

    /** FTS per-core full-width register contexts: the register file
     *  grows with cores * machine width instead of lanes. */
};

} // namespace occamy

#endif // OCCAMY_AREA_AREA_MODEL_HH
