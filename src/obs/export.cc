#include "obs/export.hh"

#include <cstdio>
#include <cstring>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace occamy::obs
{

namespace
{

/** JSON-escape a string (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Track id of an event: per-core events ride the core's track,
 *  machine-wide events get a synthetic track after the cores. */
unsigned
tidOf(const Event &e, unsigned ncores)
{
    if (e.core != kNoCore)
        return e.core;
    return categoryOf(e.kind) == kEvMem ? ncores + 1 : ncores;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const TraceBuffer &buf,
                 const std::vector<MetricSnapshot> &snapshots)
{
    unsigned ncores = 0;
    for (const Event &e : buf.events)
        if (e.core != kNoCore && e.core + 1u > ncores)
            ncores = e.core + 1u;

    os << std::setprecision(12);
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
    };

    // Track names, so Perfetto shows "core0".."manager","dram".
    for (unsigned c = 0; c < ncores + 2; ++c) {
        sep();
        const std::string name =
            c < ncores ? "core" + std::to_string(c)
                       : (c == ncores ? "manager" : "dram");
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << c
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << name << "\"}}";
    }

    for (const Event &e : buf.events) {
        const unsigned tid = tidOf(e, ncores);
        const Cycle ts = e.cycle;
        switch (e.kind) {
          case EventKind::PhaseBegin:
          case EventKind::PhaseEnd:
            sep();
            os << "{\"ph\":\""
               << (e.kind == EventKind::PhaseBegin ? "B" : "E")
               << "\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << ts
               << ",\"cat\":\"phase\",\"name\":\""
               << jsonEscape(buf.str(e.a)) << "\",\"args\":{\"phase_id\":"
               << e.b << "}}";
            break;

          case EventKind::VlApply:
            // Instant plus a counter track of allocated ExeBUs.
            sep();
            os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << ts
               << ",\"cat\":\"reconfig\",\"name\":\"vl_apply\","
                  "\"args\":{\"vl\":"
               << e.a << ",\"free_bus\":" << e.b << "}}";
            sep();
            os << "{\"ph\":\"C\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << ts << ",\"name\":\"core"
               << e.core << " VL\",\"args\":{\"exebus\":" << e.a << "}}";
            break;

          case EventKind::PartitionDecision:
            sep();
            os << "{\"ph\":\"C\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << ts << ",\"name\":\"core" << e.core
               << " decision\",\"args\":{\"exebus\":" << e.b << "}}";
            break;

          case EventKind::BatchDispatch:
            sep();
            os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << ts
               << ",\"cat\":\"sched\",\"name\":\"dispatch "
               << jsonEscape(buf.str(e.a)) << "\",\"args\":{\"queue_idx\":"
               << e.b << "}}";
            break;

          default: {
            sep();
            os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << ts << ",\"cat\":\"";
            const EventMask cat = categoryOf(e.kind);
            os << (cat == kEvPipeline
                       ? "pipeline"
                       : (cat == kEvPartition
                              ? "partition"
                              : (cat == kEvReconfig
                                     ? "reconfig"
                                     : (cat == kEvMem ? "mem"
                                                      : "sched"))));
            os << "\",\"name\":\"" << eventKindName(e.kind)
               << "\",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b
               << ",\"x\":" << e.x << ",\"y\":" << e.y << "}}";
            break;
          }
        }
    }

    // Metric snapshots as counter events on the manager track.
    for (const MetricSnapshot &snap : snapshots) {
        for (const auto &[name, value] : snap.values) {
            sep();
            os << "{\"ph\":\"C\",\"pid\":0,\"tid\":" << ncores
               << ",\"ts\":" << snap.cycle << ",\"name\":\""
               << jsonEscape(name) << "\",\"args\":{\"value\":" << value
               << "}}";
        }
    }
    os << "]}";
}

namespace
{

constexpr char kMagic[8] = {'O', 'C', 'C', 'A', 'M', 'Y', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
put(std::ostream &os, T v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof v);
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof v);
    if (!is)
        throw std::runtime_error("truncated binary trace");
    return v;
}

} // namespace

void
writeBinaryTrace(std::ostream &os, const TraceBuffer &buf)
{
    os.write(kMagic, sizeof kMagic);
    put<std::uint32_t>(os, kVersion);
    put<std::uint32_t>(os, 0);      // Reserved.
    put<std::uint64_t>(os, buf.dropped);

    put<std::uint64_t>(os, buf.strings.size());
    for (const std::string &s : buf.strings) {
        put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
        os.write(s.data(), static_cast<std::streamsize>(s.size()));
    }

    put<std::uint64_t>(os, buf.events.size());
    for (const Event &e : buf.events) {
        put<std::uint64_t>(os, e.cycle);
        put<std::uint32_t>(os, static_cast<std::uint32_t>(e.kind));
        put<std::uint32_t>(os, e.core);
        put<std::uint64_t>(os, e.a);
        put<std::uint64_t>(os, e.b);
        put<double>(os, e.x);
        put<double>(os, e.y);
    }
}

TraceBuffer
readBinaryTrace(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof magic);
    if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        throw std::runtime_error("not an Occamy binary trace");
    const auto version = get<std::uint32_t>(is);
    if (version != kVersion)
        throw std::runtime_error("unsupported binary trace version " +
                                 std::to_string(version));
    get<std::uint32_t>(is);     // Reserved.

    TraceBuffer buf;
    buf.dropped = get<std::uint64_t>(is);

    const auto nstrings = get<std::uint64_t>(is);
    buf.strings.reserve(static_cast<std::size_t>(nstrings));
    for (std::uint64_t i = 0; i < nstrings; ++i) {
        const auto len = get<std::uint32_t>(is);
        std::string s(len, '\0');
        is.read(s.data(), len);
        if (!is)
            throw std::runtime_error("truncated binary trace");
        buf.strings.push_back(std::move(s));
    }

    const auto nevents = get<std::uint64_t>(is);
    buf.events.reserve(static_cast<std::size_t>(nevents));
    for (std::uint64_t i = 0; i < nevents; ++i) {
        Event e;
        e.cycle = get<std::uint64_t>(is);
        e.kind = static_cast<EventKind>(get<std::uint32_t>(is));
        e.core = static_cast<CoreId>(get<std::uint32_t>(is));
        e.a = get<std::uint64_t>(is);
        e.b = get<std::uint64_t>(is);
        e.x = get<double>(is);
        e.y = get<double>(is);
        buf.events.push_back(e);
    }
    return buf;
}

void
writeSnapshotsCsv(std::ostream &os,
                  const std::vector<MetricSnapshot> &snapshots)
{
    os << "cycle,stat,value\n";
    for (const MetricSnapshot &snap : snapshots)
        for (const auto &[name, value] : snap.values)
            os << snap.cycle << "," << name << "," << value << "\n";
}

} // namespace occamy::obs
