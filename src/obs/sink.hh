/**
 * @file
 * Event sinks: where instrumentation points deliver their records.
 *
 * The simulator holds a borrowed `EventSink *` that is null by default;
 * every instrumentation site tests the pointer (and the sink's category
 * mask, a non-virtual member read) before building an Event, so a
 * sink-less run pays one branch per site and nothing else.
 *
 * RingSink is the standard implementation: a fixed-capacity ring of
 * Events plus a string-interning table. When the ring wraps, the oldest
 * events are dropped and counted -- recording never allocates after
 * construction and never throws. One sink serves exactly one `System`
 * run on one thread (the same single-thread contract as common/stats);
 * the parallel runner routes one private sink per job.
 */

#ifndef OCCAMY_OBS_SINK_HH
#define OCCAMY_OBS_SINK_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/events.hh"

namespace occamy::obs
{

/** A completed, ordered event trace (what a sink hands back). */
struct TraceBuffer
{
    /** Events in recording order (timestamps non-decreasing). */
    std::vector<Event> events;

    /** Interned names; Event payloads reference entries by index. */
    std::vector<std::string> strings;

    /** Events discarded because the ring wrapped. */
    std::uint64_t dropped = 0;

    /** @return the interned string for @p id ("?" if out of range). */
    const std::string &str(std::uint64_t id) const;

    bool empty() const { return events.empty(); }
};

/** Abstract destination for simulation events. */
class EventSink
{
  public:
    explicit EventSink(EventMask mask = kEvAll) : mask_(mask) {}
    virtual ~EventSink() = default;

    /** @return true if the sink records @p k's category. Sites use
     *  this to skip payload construction entirely. */
    bool wants(EventKind k) const { return (mask_ & categoryOf(k)) != 0; }

    /** Record one event (the sink re-checks the mask). */
    void record(const Event &e)
    {
        if (wants(e.kind))
            push(e);
    }

    /** Intern @p s, returning its stable id for Event payloads. */
    virtual std::uint64_t internString(std::string_view s) = 0;

    /**
     * Checkpoint support: the intern table in id order, so a restored
     * run re-derives identical string ids for identical names. Sinks
     * without a table (or that don't care) return empty / ignore.
     */
    virtual std::vector<std::string> internedStrings() const { return {}; }
    virtual void restoreInternedStrings(const std::vector<std::string> &) {}

    EventMask mask() const { return mask_; }

  protected:
    virtual void push(const Event &e) = 0;

  private:
    EventMask mask_;
};

/** Fixed-capacity drop-oldest ring sink. */
class RingSink : public EventSink
{
  public:
    /**
     * @param capacity Maximum events retained (oldest dropped beyond).
     * @param mask Categories to record.
     */
    explicit RingSink(std::size_t capacity = 1u << 20,
                      EventMask mask = kEvAll);

    std::uint64_t internString(std::string_view s) override;

    std::vector<std::string> internedStrings() const override
    {
        return strings_;
    }
    void restoreInternedStrings(const std::vector<std::string> &s) override;

    /** Events recorded and retained, oldest first. */
    std::size_t size() const;

    /** Events discarded because the ring wrapped. */
    std::uint64_t dropped() const { return dropped_; }

    /** Copy the retained trace out, oldest first. */
    TraceBuffer snapshot() const;

    /** Move the trace out, leaving the sink empty (strings kept). */
    TraceBuffer take();

    /** Discard all retained events and the drop count. */
    void clear();

  protected:
    void push(const Event &e) override;

  private:
    std::vector<Event> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0;      ///< Next write position.
    std::size_t count_ = 0;     ///< Retained events (<= capacity).
    std::uint64_t dropped_ = 0;

    std::vector<std::string> strings_;
    std::unordered_map<std::string, std::uint64_t> string_ids_;
};

/**
 * Deferred-forwarding sink for the parallel cluster tick phase.
 *
 * Each ClusterEngine's components record into a private BufferSink
 * while the engines tick concurrently; the coordinator then drains the
 * buffers into the real sink in cluster-id order, so the merged event
 * stream is identical no matter how many worker threads ticked. String
 * ids are interned into a buffer-local table at record time (recording
 * stays allocation-light and lock-free) and remapped to the downstream
 * sink's table at drain time — only the event kinds for which
 * kindHasStringPayload() holds carry such ids.
 *
 * The buffer is transient: it is drained at every cycle's merge point,
 * so it never appears in checkpoints (the downstream sink's intern
 * table is always complete at any pause boundary).
 */
class BufferSink : public EventSink
{
  public:
    /** @param downstream The real sink whose mask gates recording.
     *  Borrowed — must outlive the buffer. */
    explicit BufferSink(EventSink &downstream)
        : EventSink(downstream.mask()), downstream_(downstream)
    {
    }

    std::uint64_t internString(std::string_view s) override;

    /** Forward every buffered event downstream (remapping string
     *  payloads) and clear the buffer. Coordinator thread only. */
    void drain();

    std::size_t pending() const { return events_.size(); }

  protected:
    void push(const Event &e) override { events_.push_back(e); }

  private:
    EventSink &downstream_;
    std::vector<Event> events_;

    std::vector<std::string> strings_;
    std::unordered_map<std::string, std::uint64_t> string_ids_;
    /** Local string id -> downstream id; extended lazily at drain. */
    std::vector<std::uint64_t> remap_;
};

} // namespace occamy::obs

#endif // OCCAMY_OBS_SINK_HH
