/**
 * @file
 * Event taxonomy of the simulation observability layer.
 *
 * An Event is one fixed-size structured record of something the
 * simulator did at a cycle: a pipeline action (dispatch/issue/retire),
 * a lane-partition decision with its roofline inputs, a vector-length
 * reconfiguration step, a DRAM transaction, a phase boundary, or a
 * batch-dispatch decision. Events carry no strings; names (phase and
 * workload labels) are interned into the sink's string table and
 * referenced by id, so recording stays allocation-free on the hot path.
 *
 * Overhead contract: every instrumentation point is guarded by a plain
 * `if (sink)` pointer test (and a non-virtual mask check), so a run
 * with no sink attached pays one predictable branch per site and
 * nothing else.
 */

#ifndef OCCAMY_OBS_EVENTS_HH
#define OCCAMY_OBS_EVENTS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace occamy::obs
{

/** What happened. Payload field meaning is listed per kind. */
enum class EventKind : std::uint8_t
{
    // --- Phase boundaries (ScalarCore). ---
    PhaseBegin,     ///< a=name id, b=phaseId.
    PhaseEnd,       ///< a=name id, b=phaseId.

    // --- Co-processor pipeline. ---
    Dispatch,       ///< Renamed pool->ROB/IQ. a=opcode, b=seq.
    Issue,          ///< Left the IQ. a=opcode, b=seq, x=activeLanes.
    Retire,         ///< Committed from the ROB. a=opcode, b=seq.
    RenameStall,    ///< Rename blocked this cycle. a=1 regs, 0 other.

    // --- Lane manager (Section 5, Eq. 2-4). ---
    OiUpdate,       ///< MSR <OI>. a=mem level, x=oi.issue, y=oi.mem.
    RooflineEval,   ///< Per-core plan input. a=mem level, b=granted
                    ///< share (ExeBUs), x=AP(share), y=AP(share+1)
                    ///< GFLOP/s -- the marginal-gain pair.
    PartitionDecision, ///< Per-core published share. b=share (ExeBUs).
    PartitionPlan,  ///< Plan summary. a=sum of shares, b=total ExeBUs.

    // --- Vector-length reconfiguration (Fig. 9 protocol). ---
    VlRequest,      ///< Core emitted MSR <VL>. a=current vl,
                    ///< b=requested vl (0 = from <decision>).
    VlResolve,      ///< <status> observed. a=ok, b=vl after.
    VlApply,        ///< Co-processor retargeted lanes. a=new vl,
                    ///< b=free ExeBUs after.

    // --- Memory system. ---
    DramRead,       ///< Line fill. a=line addr, b=bytes, x=ready cycle.
    DramWrite,      ///< Writeback. a=line addr, b=bytes.

    // --- OS batch scheduling (Section 5). ---
    BatchDispatch,  ///< Queued workload placed. a=name id, b=queue idx.

    // --- Simulation engine (not simulated hardware). ---
    SchedFastForward, ///< Cycle loop skipped a quiescent span. The
                      ///< event's cycle is the decision cycle; a=number
                      ///< of skipped cycles, b=wake source
                      ///< (occamy::WakeSource numeric value).

    // --- Fault injection & degradation (src/fault). Appended after
    // --- SchedFastForward to keep the binary trace format stable. ---
    FaultInject,    ///< A fault became active. core=target (owner for
                    ///< lane faults, kNoCore for machine-wide windows),
                    ///< a=FaultKind numeric value, b=kind-specific
                    ///< detail (lane: unit index; dram: extra latency;
                    ///< cfgdelay: delay cycles; vldeny: window length,
                    ///< 0 = unbounded).
    FaultRecover,   ///< A transient fault window ended. core=target,
                    ///< a=FaultKind numeric value, b=window start cycle.
    PartitionDegrade, ///< Resource table shrank after a lane fault.
                      ///< a=usable ExeBUs after, b=configured total.
    WatchdogTrip,   ///< Livelock watchdog escalated a spinning core to
                    ///< its scalar fallback. core=victim, a=vl at trip,
                    ///< b=cycles spent spinning.

    // --- Simulation engine, appended for format stability. ---
    SystemBoot,     ///< A System finished boot (cores constructed,
                    ///< programs compiled). Engine category: lets a
                    ///< serve daemon prove a warm-pool request paid no
                    ///< boot cost. a=cores, b=ExeBUs.
    CheckpointSave,    ///< Engine wrote a checkpoint at this cycle.
                       ///< a=serialized bytes.
    CheckpointRestore, ///< Engine restored state at this cycle.

    // --- Multi-tenant traffic (src/traffic). Appended after the
    // --- checkpoint kinds to keep the binary trace format stable. ---
    JobArrival,     ///< A traffic job's effective arrival. a=workload
                    ///< name id, b=(tenant << 32) | queue idx.
    JobAdmit,       ///< Dispatcher picked the job for a core.
                    ///< core=target, a=queue idx, b=queueing delay.
    JobComplete,    ///< The job's workload finished. core=where,
                    ///< a=queue idx, b=completion latency.
    SloViolation,   ///< Completion latency exceeded the SLO budget.
                    ///< core=where, a=queue idx, b=overshoot cycles.

    // --- Inter-cluster arbiter (src/lanemgr, clustered topologies).
    // --- Appended after the traffic kinds to keep the binary trace
    // --- format stable. Never emitted on a 1-cluster machine. ---
    ClusterArbiterPlan, ///< Bandwidth rebalance published. a=rebalance
                        ///< ordinal, b=cluster count, x=smallest and
                        ///< y=largest granted share (bytes/cycle).
    ClusterArbiterMigrate, ///< Queued workload adopted across
                           ///< clusters. core=adopting core (global
                           ///< id), a=queue idx, b=(home cluster
                           ///< << 32) | adopting cluster.

    // --- Admission control & overload (src/traffic/admission).
    // --- Appended after the arbiter kinds to keep the binary trace
    // --- format stable. Never emitted unless an admission policy is
    // --- installed, so admission-off traces are unaffected. ---
    JobDefer,       ///< Admission deferred a candidate. a=queue idx,
                    ///< b=backoff cycles until re-evaluation.
    JobShed,        ///< Admission rejected a candidate permanently.
                    ///< a=queue idx, b=(tenant << 32) | defer count.
    OverloadEnter,  ///< Overload detector tripped (hysteresis).
                    ///< a=ready backlog depth, b=p95 queueing delay.
    OverloadExit,   ///< Backlog drained below the exit threshold.
                    ///< a=ready backlog depth, b=p95 queueing delay.
};

/** Coarse category bits used to subset recording. */
using EventMask = std::uint32_t;

inline constexpr EventMask kEvPhase = 1u << 0;
inline constexpr EventMask kEvPipeline = 1u << 1;
inline constexpr EventMask kEvPartition = 1u << 2;
inline constexpr EventMask kEvReconfig = 1u << 3;
inline constexpr EventMask kEvMem = 1u << 4;
inline constexpr EventMask kEvSched = 1u << 5;
/** Engine events describe what the *simulator* did (e.g. fast-forward
 *  skips), not what the simulated hardware did. They are deliberately
 *  excluded from kEvAll so "all" traces stay invariant under engine
 *  settings like RunOptions::fastForward; opt in with the "engine"
 *  category token. */
inline constexpr EventMask kEvEngine = 1u << 6;
/** Fault injection / degradation / watchdog events. Included in kEvAll:
 *  they describe simulated-hardware behavior, and no fault event is ever
 *  emitted unless a FaultPlan or watchdog is configured, so fault-free
 *  traces are unaffected. */
inline constexpr EventMask kEvFault = 1u << 7;
/** Multi-tenant traffic lifecycle events. Included in kEvAll for the
 *  same reason kEvFault is: no Job* event is ever emitted unless
 *  traffic arrivals are enqueued, so traffic-free traces are
 *  unaffected. */
inline constexpr EventMask kEvTraffic = 1u << 8;
/** Inter-cluster arbiter events (level-2 lane manager). Included in
 *  kEvAll like kEvFault/kEvTraffic: a 1-cluster machine never emits
 *  them, so flat-machine traces are unaffected. */
inline constexpr EventMask kEvCluster = 1u << 9;
inline constexpr EventMask kEvAll =
    kEvPhase | kEvPipeline | kEvPartition | kEvReconfig | kEvMem |
    kEvSched | kEvFault | kEvTraffic | kEvCluster;

/**
 * @return true if @p k's `a` payload is a string-table id. A sink that
 * re-buffers events across string tables (obs::BufferSink) must remap
 * exactly these payloads when it forwards.
 */
constexpr bool
kindHasStringPayload(EventKind k)
{
    switch (k) {
      case EventKind::PhaseBegin:
      case EventKind::PhaseEnd:
      case EventKind::BatchDispatch:
      case EventKind::JobArrival:
        return true;
      default:
        return false;
    }
}

/** @return the category bit of @p k. */
constexpr EventMask
categoryOf(EventKind k)
{
    switch (k) {
      case EventKind::PhaseBegin:
      case EventKind::PhaseEnd:
        return kEvPhase;
      case EventKind::Dispatch:
      case EventKind::Issue:
      case EventKind::Retire:
      case EventKind::RenameStall:
        return kEvPipeline;
      case EventKind::OiUpdate:
      case EventKind::RooflineEval:
      case EventKind::PartitionDecision:
      case EventKind::PartitionPlan:
        return kEvPartition;
      case EventKind::VlRequest:
      case EventKind::VlResolve:
      case EventKind::VlApply:
        return kEvReconfig;
      case EventKind::DramRead:
      case EventKind::DramWrite:
        return kEvMem;
      case EventKind::BatchDispatch:
        return kEvSched;
      case EventKind::SchedFastForward:
      case EventKind::SystemBoot:
      case EventKind::CheckpointSave:
      case EventKind::CheckpointRestore:
        return kEvEngine;
      case EventKind::FaultInject:
      case EventKind::FaultRecover:
      case EventKind::PartitionDegrade:
      case EventKind::WatchdogTrip:
        return kEvFault;
      case EventKind::JobArrival:
      case EventKind::JobAdmit:
      case EventKind::JobComplete:
      case EventKind::SloViolation:
      case EventKind::JobDefer:
      case EventKind::JobShed:
      case EventKind::OverloadEnter:
      case EventKind::OverloadExit:
        return kEvTraffic;
      case EventKind::ClusterArbiterPlan:
      case EventKind::ClusterArbiterMigrate:
        return kEvCluster;
    }
    return 0;
}

/** @return a stable lower-case name for @p k (trace export, tests). */
const char *eventKindName(EventKind k);

/**
 * Parse a comma-separated category list ("phase,partition,reconfig",
 * "all", "pipeline,mem,sched", "all,engine") into a mask. Unknown
 * tokens are ignored; an empty string yields 0 (tracing off). "all"
 * covers every simulated-hardware category but not "engine" (see
 * kEvEngine).
 */
EventMask parseEventMask(const std::string &spec);

/** One structured trace record. */
struct Event
{
    Cycle cycle = 0;
    EventKind kind = EventKind::PhaseBegin;
    CoreId core = kNoCore;      ///< kNoCore for machine-wide events.
    std::uint64_t a = 0;        ///< Payload, meaning per EventKind.
    std::uint64_t b = 0;
    double x = 0.0;
    double y = 0.0;

    bool operator==(const Event &) const = default;
};

/**
 * One periodic dump of a component stats::Group, keyed by cycle.
 * Values are "<group>.<stat>" named, in the group's deterministic
 * (sorted) registration order.
 */
struct MetricSnapshot
{
    Cycle cycle = 0;
    std::vector<std::pair<std::string, double>> values;
};

} // namespace occamy::obs

#endif // OCCAMY_OBS_EVENTS_HH
