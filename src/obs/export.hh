/**
 * @file
 * Trace exporters: Chrome tracing / Perfetto JSON for human inspection
 * and a compact binary format for byte-exact comparison and archival.
 *
 * The Chrome export maps phase begin/end pairs to "B"/"E" duration
 * events on one track per core, everything else to instant events, and
 * additionally renders per-core lane allocation (and any metric
 * snapshots) as counter tracks -- load the file at chrome://tracing or
 * https://ui.perfetto.dev.
 *
 * The binary format is a deterministic function of the TraceBuffer
 * alone (no timestamps, hostnames or pointers), so two identical
 * simulations produce byte-identical files regardless of thread count.
 */

#ifndef OCCAMY_OBS_EXPORT_HH
#define OCCAMY_OBS_EXPORT_HH

#include <iosfwd>

#include "obs/sink.hh"

namespace occamy::obs
{

/**
 * Write @p buf as Chrome tracing JSON ("traceEvents" array format).
 * @param snapshots Optional metric snapshots rendered as counter
 *        events (pass {} for none).
 */
void writeChromeTrace(std::ostream &os, const TraceBuffer &buf,
                      const std::vector<MetricSnapshot> &snapshots = {});

/** Write @p buf in the compact binary format (magic "OCCAMYTR"). */
void writeBinaryTrace(std::ostream &os, const TraceBuffer &buf);

/**
 * Read a binary trace written by writeBinaryTrace.
 * @throw std::runtime_error on bad magic/version or truncation.
 */
TraceBuffer readBinaryTrace(std::istream &is);

/**
 * Write metric snapshots as CSV: cycle,stat,value -- one row per
 * (snapshot, stat), rows ordered by cycle then stat name.
 */
void writeSnapshotsCsv(std::ostream &os,
                       const std::vector<MetricSnapshot> &snapshots);

} // namespace occamy::obs

#endif // OCCAMY_OBS_EXPORT_HH
