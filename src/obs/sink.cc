#include "obs/sink.hh"

#include <algorithm>

namespace occamy::obs
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::PhaseBegin: return "phase_begin";
      case EventKind::PhaseEnd: return "phase_end";
      case EventKind::Dispatch: return "dispatch";
      case EventKind::Issue: return "issue";
      case EventKind::Retire: return "retire";
      case EventKind::RenameStall: return "rename_stall";
      case EventKind::OiUpdate: return "oi_update";
      case EventKind::RooflineEval: return "roofline_eval";
      case EventKind::PartitionDecision: return "partition_decision";
      case EventKind::PartitionPlan: return "partition_plan";
      case EventKind::VlRequest: return "vl_request";
      case EventKind::VlResolve: return "vl_resolve";
      case EventKind::VlApply: return "vl_apply";
      case EventKind::DramRead: return "dram_read";
      case EventKind::DramWrite: return "dram_write";
      case EventKind::BatchDispatch: return "batch_dispatch";
      case EventKind::SchedFastForward: return "sched_fast_forward";
      case EventKind::FaultInject: return "fault_inject";
      case EventKind::FaultRecover: return "fault_recover";
      case EventKind::PartitionDegrade: return "partition_degrade";
      case EventKind::WatchdogTrip: return "watchdog_trip";
      case EventKind::SystemBoot: return "system_boot";
      case EventKind::CheckpointSave: return "checkpoint_save";
      case EventKind::CheckpointRestore: return "checkpoint_restore";
      case EventKind::JobArrival: return "job_arrival";
      case EventKind::JobAdmit: return "job_admit";
      case EventKind::JobComplete: return "job_complete";
      case EventKind::SloViolation: return "slo_violation";
      case EventKind::ClusterArbiterPlan: return "cluster_arbiter_plan";
      case EventKind::ClusterArbiterMigrate:
        return "cluster_arbiter_migrate";
      case EventKind::JobDefer: return "job_defer";
      case EventKind::JobShed: return "job_shed";
      case EventKind::OverloadEnter: return "overload_enter";
      case EventKind::OverloadExit: return "overload_exit";
    }
    return "unknown";
}

EventMask
parseEventMask(const std::string &spec)
{
    EventMask mask = 0;
    std::string token;
    auto apply = [&mask](const std::string &t) {
        if (t == "all")
            mask |= kEvAll;
        else if (t == "phase")
            mask |= kEvPhase;
        else if (t == "pipeline")
            mask |= kEvPipeline;
        else if (t == "partition")
            mask |= kEvPartition;
        else if (t == "reconfig")
            mask |= kEvReconfig;
        else if (t == "mem")
            mask |= kEvMem;
        else if (t == "sched")
            mask |= kEvSched;
        else if (t == "engine")
            mask |= kEvEngine;
        else if (t == "fault")
            mask |= kEvFault;
        else if (t == "traffic")
            mask |= kEvTraffic;
        else if (t == "cluster")
            mask |= kEvCluster;
    };
    for (char c : spec) {
        if (c == ',') {
            apply(token);
            token.clear();
        } else {
            token.push_back(c);
        }
    }
    apply(token);
    return mask;
}

const std::string &
TraceBuffer::str(std::uint64_t id) const
{
    static const std::string unknown = "?";
    return id < strings.size()
               ? strings[static_cast<std::size_t>(id)]
               : unknown;
}

RingSink::RingSink(std::size_t capacity, EventMask mask)
    : EventSink(mask), capacity_(std::max<std::size_t>(capacity, 1))
{
    ring_.resize(capacity_);
}

std::uint64_t
RingSink::internString(std::string_view s)
{
    auto it = string_ids_.find(std::string(s));
    if (it != string_ids_.end())
        return it->second;
    const std::uint64_t id = strings_.size();
    strings_.emplace_back(s);
    string_ids_.emplace(strings_.back(), id);
    return id;
}

void
RingSink::restoreInternedStrings(const std::vector<std::string> &s)
{
    strings_ = s;
    string_ids_.clear();
    for (std::size_t i = 0; i < strings_.size(); ++i)
        string_ids_.emplace(strings_[i], i);
}

std::size_t
RingSink::size() const
{
    return count_;
}

void
RingSink::push(const Event &e)
{
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    if (count_ < capacity_)
        ++count_;
    else
        ++dropped_;
}

TraceBuffer
RingSink::snapshot() const
{
    TraceBuffer out;
    out.events.reserve(count_);
    const std::size_t first = (head_ + capacity_ - count_) % capacity_;
    for (std::size_t i = 0; i < count_; ++i)
        out.events.push_back(ring_[(first + i) % capacity_]);
    out.strings = strings_;
    out.dropped = dropped_;
    return out;
}

TraceBuffer
RingSink::take()
{
    TraceBuffer out = snapshot();
    clear();
    return out;
}

void
RingSink::clear()
{
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
}

std::uint64_t
BufferSink::internString(std::string_view s)
{
    auto it = string_ids_.find(std::string(s));
    if (it != string_ids_.end())
        return it->second;
    const std::uint64_t id = strings_.size();
    strings_.emplace_back(s);
    string_ids_.emplace(strings_.back(), id);
    return id;
}

void
BufferSink::drain()
{
    // Intern new local strings downstream first, in local-id order, so
    // the downstream table grows in the deterministic merge order.
    while (remap_.size() < strings_.size())
        remap_.push_back(
            downstream_.internString(strings_[remap_.size()]));
    for (Event e : events_) {
        if (kindHasStringPayload(e.kind))
            e.a = remap_[static_cast<std::size_t>(e.a)];
        downstream_.record(e);
    }
    events_.clear();
}

} // namespace occamy::obs
