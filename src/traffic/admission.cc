/**
 * @file
 * The four stock admission disciplines and their registry. Every
 * decision is a pure function of AdmissionContext (simulated state
 * only), so admission-controlled sweeps stay byte-identical across
 * runner thread counts and fast-forward settings.
 */

#include "traffic/admission.hh"

#include <memory>

namespace occamy::traffic
{

const char *
admissionDecisionName(AdmissionDecision d)
{
    switch (d) {
      case AdmissionDecision::Admit: return "admit";
      case AdmissionDecision::Defer: return "defer";
      case AdmissionDecision::Shed:  return "shed";
    }
    return "?";
}

Cycle
admissionBackoff(unsigned defer_count)
{
    constexpr Cycle kBase = 64;
    constexpr Cycle kMax = 65536;
    if (defer_count >= 10)      // 64 << 10 == kMax; avoid UB past it.
        return kMax;
    const Cycle b = kBase << defer_count;
    return b < kMax ? b : kMax;
}

namespace
{

/** Today's behavior: everything is admitted the cycle it arrives.
 *  Installed-but-"none" still never happens in practice — the runner
 *  skips setAdmission entirely for "none" so goldens stay
 *  byte-identical — but the policy exists so "none" is a first-class
 *  registry citizen for --list-admission and sweeps. */
class NoneAdmission final : public AdmissionPolicy
{
  public:
    NoneAdmission()
        : AdmissionPolicy("none",
                          "admit everything (no admission control)")
    {
    }

    AdmissionDecision
    decide(const AdmissionContext &) const override
    {
        return AdmissionDecision::Admit;
    }
};

/** Bounded per-tenant concurrency: a tenant may hold at most `cap`
 *  admitted-but-unfinished jobs. Over the bound, candidates wait
 *  (defer) — never shed, so job conservation is trivial. */
class StaticCapAdmission final : public AdmissionPolicy
{
  public:
    StaticCapAdmission()
        : AdmissionPolicy(
              "static-cap",
              "bound in-flight jobs per tenant (defer over cap)")
    {
    }

    AdmissionDecision
    decide(const AdmissionContext &ctx) const override
    {
        if (ctx.cap != 0 && ctx.inFlight >= ctx.cap)
            return AdmissionDecision::Defer;
        return AdmissionDecision::Admit;
    }
};

/** Per-tenant rate cap: admission consumes one token; the System
 *  refills one token per tenant mean-gap period (deterministic lazy
 *  integer refill), capping each tenant at its configured arrival
 *  rate with bucket-sized bursts. A candidate already past its
 *  deadline is shed instead of burning a token on guaranteed SLO
 *  failure. */
class TokenBucketAdmission final : public AdmissionPolicy
{
  public:
    TokenBucketAdmission()
        : AdmissionPolicy(
              "token-bucket",
              "per-tenant rate cap with deterministic refill")
    {
    }

    bool wantsTokens() const override { return true; }

    AdmissionDecision
    decide(const AdmissionContext &ctx) const override
    {
        if (ctx.deadline != kCycleNever && ctx.now > ctx.deadline)
            return AdmissionDecision::Shed;
        if (ctx.tokens == 0)
            return AdmissionDecision::Defer;
        return AdmissionDecision::Admit;
    }
};

/** Deadline-feasibility prediction: estimate queue wait as backlog
 *  depth x mean observed service time / cores, add this class's
 *  recent service EMA, and shed candidates that cannot finish inside
 *  their budget anyway — protecting the SLOs of jobs that still can.
 *  Jobs without a deadline are always admitted (nothing to protect or
 *  violate). */
class SloAwareAdmission final : public AdmissionPolicy
{
  public:
    SloAwareAdmission()
        : AdmissionPolicy(
              "slo-aware",
              "shed jobs predicted to miss their SLO budget")
    {
    }

    AdmissionDecision
    decide(const AdmissionContext &ctx) const override
    {
        if (ctx.deadline == kCycleNever)
            return AdmissionDecision::Admit;
        if (ctx.now > ctx.deadline)
            return AdmissionDecision::Shed;

        // Service estimate: the observed per-class EMA, else the
        // cross-class mean. estCost is deliberately NOT a fallback —
        // it is in abstract demand units, not cycles, so comparing it
        // against a cycle deadline would shed feasible jobs wholesale.
        const Cycle service = ctx.classServiceEma ? ctx.classServiceEma
                                                  : ctx.meanServiceEma;
        if (service == 0) {
            // No completion observed yet: admit while the queue is
            // shallow (they execute immediately and become the
            // evidence), defer the backlog — shedding needs evidence,
            // and the deferred jobs get re-evaluated against real
            // EMAs once the first admissions finish.
            return ctx.readyJobs <= ctx.cores ? AdmissionDecision::Admit
                                              : AdmissionDecision::Defer;
        }

        const unsigned cores = ctx.cores ? ctx.cores : 1;
        const Cycle wait = static_cast<Cycle>(ctx.readyJobs) *
                           ctx.meanServiceEma / cores;

        if (ctx.now + wait + service > ctx.deadline)
            return AdmissionDecision::Shed;
        return AdmissionDecision::Admit;
    }
};

} // namespace

const std::vector<const AdmissionPolicy *> &
allAdmissionPolicies()
{
    static const std::vector<std::unique_ptr<const AdmissionPolicy>>
        owned = [] {
            std::vector<std::unique_ptr<const AdmissionPolicy>> v;
            v.emplace_back(std::make_unique<NoneAdmission>());
            v.emplace_back(std::make_unique<StaticCapAdmission>());
            v.emplace_back(std::make_unique<TokenBucketAdmission>());
            v.emplace_back(std::make_unique<SloAwareAdmission>());
            return v;
        }();
    static const std::vector<const AdmissionPolicy *> ps = [] {
        std::vector<const AdmissionPolicy *> v;
        for (const auto &p : owned)
            v.push_back(p.get());
        return v;
    }();
    return ps;
}

const AdmissionPolicy *
admissionByName(std::string_view name)
{
    for (const AdmissionPolicy *p : allAdmissionPolicies())
        if (name == p->key())
            return p;
    return nullptr;
}

} // namespace occamy::traffic
