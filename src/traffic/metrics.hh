/**
 * @file
 * SLO metrics over one finished traffic run: queueing delay, nearest-
 * rank completion-latency percentiles, per-tenant throughput, and
 * Jain's fairness index. Pure functions over JobRecord lists so the
 * statistical tests can drive them without a simulator.
 */

#ifndef OCCAMY_TRAFFIC_METRICS_HH
#define OCCAMY_TRAFFIC_METRICS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace occamy::traffic
{

/** The lifecycle timestamps of one traffic job, as the simulator saw
 *  them. kCycleNever marks a stage the job never reached. */
struct JobRecord
{
    unsigned tenant = 0;
    Cycle arrive = 0;              ///< Effective arrival cycle.
    Cycle admit = kCycleNever;     ///< Dispatch decision cycle.
    Cycle finish = kCycleNever;    ///< Completion cycle.
    Cycle sloBudget = kCycleNever; ///< Relative deadline; kCycleNever = none.

    /** True when admission control rejected the job permanently; shed
     *  jobs never admit or finish. Always false with admission off. */
    bool shed = false;

    /** Times admission deferred the job before its final verdict.
     *  Always 0 with admission off. */
    std::uint32_t defers = 0;

    bool completed() const { return finish != kCycleNever; }
    bool admitted() const { return admit != kCycleNever; }

    /** Completion latency (finish - arrive); only valid if completed. */
    Cycle latency() const { return finish - arrive; }

    /** Queueing delay (admit - arrive); only valid if admitted. */
    Cycle queueingDelay() const { return admit - arrive; }

    bool
    violatedSlo() const
    {
        return completed() && sloBudget != kCycleNever &&
               latency() > sloBudget;
    }
};

/** Per-tenant aggregates. */
struct TenantMetrics
{
    unsigned tenant = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t sloViolations = 0;

    /** Jobs shed by admission control (0 with admission off). */
    std::uint64_t shed = 0;

    /** Completed jobs per million cycles of run horizon. */
    double throughput = 0.0;

    /** Mean completion latency over this tenant's completed jobs. */
    double meanLatency = 0.0;
};

/** Whole-run aggregates exported into the sweep JSON/CSV. */
struct TrafficMetrics
{
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t sloViolations = 0;

    /** Admission-control outcome counters (0 with admission off). */
    std::uint64_t shed = 0;         ///< Jobs rejected permanently.
    std::uint64_t deferrals = 0;    ///< Total defer verdicts issued.

    /** Goodput: completions that met their SLO (== completed when no
     *  deadline is configured). The shed/goodput pair is the
     *  overload-resilience headline — throughput counts work done,
     *  goodput counts work done *in time*. */
    std::uint64_t goodput = 0;

    double queueingDelayMean = 0.0;

    /** Nearest-rank completion-latency percentiles, cycles. Zero when
     *  nothing completed. */
    double latencyP50 = 0.0;
    double latencyP95 = 0.0;
    double latencyP99 = 0.0;

    /** Jain's fairness index over per-tenant throughput, in (0, 1]. */
    double fairnessJain = 1.0;

    std::vector<TenantMetrics> tenants;
};

/**
 * Nearest-rank percentile of @p sorted (ascending): the smallest value
 * with at least p% of the sample at or below it. Empty input -> 0.
 * @param p in [0, 100].
 */
double percentileNearestRank(const std::vector<double> &sorted, double p);

/**
 * Jain's fairness index (sum x)^2 / (n * sum x^2) over @p values.
 * 1 when all shares are equal (including the all-zero and empty
 * cases, which are trivially fair); approaches 1/n under maximum
 * imbalance.
 */
double jainIndex(const std::vector<double> &values);

/**
 * Aggregate @p records into run metrics. @p tenants fixes the tenant
 * axis (tenants with no records still appear, with zero counts);
 * @p horizon is the run length in cycles used for throughput
 * normalization (0 -> throughput reported as 0).
 */
TrafficMetrics computeMetrics(const std::vector<JobRecord> &records,
                              unsigned tenants, Cycle horizon);

} // namespace occamy::traffic

#endif // OCCAMY_TRAFFIC_METRICS_HH
