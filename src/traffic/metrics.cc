#include "traffic/metrics.hh"

#include <algorithm>
#include <cmath>

namespace occamy::traffic
{

double
percentileNearestRank(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    if (p <= 0.0)
        return sorted.front();
    const double n = static_cast<double>(sorted.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

double
jainIndex(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double sum = 0.0;
    double sumsq = 0.0;
    for (double v : values) {
        sum += v;
        sumsq += v * v;
    }
    if (sumsq == 0.0)
        return 1.0;
    return (sum * sum) / (static_cast<double>(values.size()) * sumsq);
}

TrafficMetrics
computeMetrics(const std::vector<JobRecord> &records, unsigned tenants,
               Cycle horizon)
{
    TrafficMetrics m;
    m.tenants.resize(tenants);
    for (unsigned t = 0; t < tenants; ++t)
        m.tenants[t].tenant = t;

    std::vector<double> latencies;
    double qdelay_sum = 0.0;
    std::uint64_t qdelay_n = 0;

    for (const JobRecord &r : records) {
        ++m.arrivals;
        TenantMetrics *tm =
            r.tenant < tenants ? &m.tenants[r.tenant] : nullptr;
        if (tm)
            ++tm->arrivals;
        if (r.admitted()) {
            qdelay_sum += static_cast<double>(r.queueingDelay());
            ++qdelay_n;
        }
        if (r.completed()) {
            ++m.completed;
            const double lat = static_cast<double>(r.latency());
            latencies.push_back(lat);
            if (tm) {
                ++tm->completed;
                tm->meanLatency += lat;
            }
        }
        if (r.violatedSlo()) {
            ++m.sloViolations;
            if (tm)
                ++tm->sloViolations;
        } else if (r.completed()) {
            ++m.goodput;    // In-time completion (or no deadline).
        }
        if (r.shed) {
            ++m.shed;
            if (tm)
                ++tm->shed;
        }
        m.deferrals += r.defers;
    }

    if (qdelay_n > 0)
        m.queueingDelayMean = qdelay_sum / static_cast<double>(qdelay_n);

    std::sort(latencies.begin(), latencies.end());
    m.latencyP50 = percentileNearestRank(latencies, 50.0);
    m.latencyP95 = percentileNearestRank(latencies, 95.0);
    m.latencyP99 = percentileNearestRank(latencies, 99.0);

    std::vector<double> throughputs;
    throughputs.reserve(tenants);
    for (TenantMetrics &tm : m.tenants) {
        if (tm.completed > 0)
            tm.meanLatency /= static_cast<double>(tm.completed);
        if (horizon > 0)
            tm.throughput = static_cast<double>(tm.completed) * 1e6 /
                            static_cast<double>(horizon);
        throughputs.push_back(tm.throughput);
    }
    m.fairnessJain = jainIndex(throughputs);
    return m;
}

} // namespace occamy::traffic
