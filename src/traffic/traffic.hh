/**
 * @file
 * Multi-tenant traffic engine: seeded stochastic workload arrivals.
 *
 * The batch queue (Section 5's co-scheduling regime) models a *fixed*
 * job list; this layer models *traffic*. A TrafficConfig names an
 * arrival process from the registry (arrival.hh), a tenant count, a
 * per-tenant rate and an SLO budget; generate() expands it into a
 * deterministic stream of Arrival records — per-tenant job classes
 * drawn from the 34-workload suite — that System::enqueueArrival feeds
 * through the dispatcher strategy layer (scheduler.hh).
 *
 * Determinism contract: the whole stream is a pure function of the
 * TrafficConfig (seed included). Identical configs yield byte-identical
 * arrival streams, so sweep exports stay byte-identical across runner
 * thread counts, and fault plans (src/fault) compose without touching
 * this layer.
 */

#ifndef OCCAMY_TRAFFIC_TRAFFIC_HH
#define OCCAMY_TRAFFIC_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "kir/kir.hh"

namespace occamy::traffic
{

/** Sentinel for "no queue entry" (e.g. no closed-loop predecessor). */
inline constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);

/**
 * Deterministic splitmix64 PRNG. Deliberately not <random>: libstdc++
 * distributions are implementation-defined, and byte-identical arrival
 * streams across builds are a hard requirement here.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform in (0, 1]: never 0, so log() below is always finite. */
    double
    u01()
    {
        return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740992.0;
    }

    /** Exponentially distributed with the given mean. */
    double expMean(double mean);

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

  private:
    std::uint64_t state_;
};

/** One generated job arrival (one batch-queue entry's traffic side). */
struct Arrival
{
    /** Nominal arrival cycle. For closed-loop jobs with a predecessor
     *  this is a lower bound used only for deterministic queue
     *  ordering; the *effective* arrival is completion(dependsOn) +
     *  thinkGap, resolved by the simulator. */
    Cycle arriveAt = 0;

    unsigned tenant = 0;

    /** Workload class drawn from the suite (e.g. "WL8"). */
    std::string workload;
    std::vector<kir::Loop> loops;

    /** SLO budget in cycles relative to the effective arrival;
     *  kCycleNever = no deadline. */
    Cycle sloBudget = kCycleNever;

    /** Service-demand estimate for SJF: vector iterations x per-iter
     *  instruction count, summed over the workload's phases. */
    double estCost = 0.0;

    /** Closed-loop chain: queue index of the same tenant's previous
     *  job, or kNoJob for open-loop / first-in-chain jobs. */
    std::size_t dependsOn = kNoJob;

    /** Think time applied after the predecessor completes. */
    Cycle thinkGap = 0;
};

/** Everything needed to synthesize one deterministic traffic stream. */
struct TrafficConfig
{
    /** Arrival-process registry key (poisson|bursty|diurnal|closed);
     *  empty = traffic off. */
    std::string process;

    /** Dispatcher registry key (fcfs|sjf|edf|oi). */
    std::string scheduler = "fcfs";

    unsigned tenants = 2;

    std::uint64_t seed = 1;

    /** Jobs generated per tenant stream. */
    std::uint64_t jobsPerTenant = 4;

    /** Mean inter-arrival gap per tenant stream, cycles. */
    double meanGapCycles = 200'000.0;

    /** SLO budget per job in cycles (0 = no deadline). */
    Cycle sloCycles = 0;

    /** Bursty (MMPP-2) intensity: ratio between the slow and burst
     *  modes' mean gaps. 1.0 degenerates to Poisson. */
    double burstiness = 8.0;

    /** Diurnal rate-modulation period, cycles. */
    Cycle diurnalPeriod = 1'000'000;

    /** Workload classes tenants draw from (suite names, e.g. "WL3",
     *  "CV7"); empty = the full 34-workload catalog. */
    std::vector<std::string> workloadSet;

    /** Admission-policy registry key (admission.hh); "none" (default)
     *  = no admission layer at all — byte-identical to pre-admission
     *  builds. */
    std::string admission = "none";

    /** Admission knob: per-tenant in-flight bound (static-cap) or
     *  token-bucket capacity. */
    unsigned admissionCap = 4;

    bool enabled() const { return !process.empty(); }

    /** True when an admission policy other than "none" is selected. */
    bool
    admissionEnabled() const
    {
        return !admission.empty() && admission != "none";
    }

    /** Canonical one-line rendering, used in checkpoint fingerprints
     *  and job labels; every determinism-relevant field appears. */
    std::string describe() const;
};

/**
 * Expand @p cfg into the arrival stream: per-tenant independent
 * processes (tenant t's stream is seeded with mix(seed, t)), merged
 * and sorted by (arriveAt, tenant). Closed-loop processes chain each
 * tenant's jobs via Arrival::dependsOn. Throws std::invalid_argument
 * for an unknown process name, an empty catalog selection, or a zero
 * tenant/job count.
 */
std::vector<Arrival> generate(const TrafficConfig &cfg);

/** SJF service-demand estimate for a workload's phase list. */
double estimateCost(const std::vector<kir::Loop> &loops);

} // namespace occamy::traffic

#endif // OCCAMY_TRAFFIC_TRAFFIC_HH
