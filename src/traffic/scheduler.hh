/**
 * @file
 * The admission/dispatch strategy layer for the batch queue: when a
 * core goes idle, a Dispatcher picks which *arrived* queued job it
 * takes next. One immutable object per discipline, name-keyed in a
 * registry mirroring src/policy — FCFS, shortest-job-first, deadline-
 * aware EDF, and the existing OI-aware co-placement (which scores
 * candidates with the roofline partitioner via a callback, so this
 * layer never depends on src/sim).
 */

#ifndef OCCAMY_TRAFFIC_SCHEDULER_HH
#define OCCAMY_TRAFFIC_SCHEDULER_HH

#include <functional>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace occamy::traffic
{

/** One arrived-but-undispatched queue entry, as a dispatcher sees it. */
struct PendingJob
{
    std::size_t queueIdx = 0;   ///< Position in the batch queue.
    Cycle arrived = 0;          ///< Effective arrival cycle.
    unsigned tenant = 0;
    Cycle deadline = kCycleNever;   ///< Absolute; kCycleNever = none.
    double estCost = 0.0;       ///< SJF service-demand estimate.
};

/** Everything a dispatch decision may consult. */
struct DispatchContext
{
    Cycle now = 0;
    CoreId core = 0;            ///< The idle core asking for work.

    /** Arrived, undispatched jobs in queue order. Never empty. */
    const std::vector<PendingJob> &pending;

    /**
     * Roofline-estimated normalized machine progress if pending[i]
     * joins `core` alongside what the other cores are running (the
     * OI-aware co-placement score). Null when the simulator has no
     * OI precomputation for the queue.
     */
    std::function<double(std::size_t)> progressScore;
};

/** Strategy interface for one dispatch discipline. */
class Dispatcher
{
  public:
    Dispatcher(const char *key, const char *summary)
        : key_(key), summary_(summary)
    {
    }

    virtual ~Dispatcher() = default;

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /** Canonical registry key, e.g. "edf" (lowercase, stable). */
    const char *key() const { return key_; }

    /** One-line description for --list-schedulers output. */
    const char *summary() const { return summary_; }

    /** True if the simulator should precompute first-phase OI for
     *  every queued job (feeds DispatchContext::progressScore). */
    virtual bool wantsOiScore() const { return false; }

    /**
     * Pick an index INTO ctx.pending. Every stock discipline always
     * dispatches (work-conserving); kDefer is allowed for future
     * admission-control strategies and leaves the core idle this
     * cycle.
     */
    virtual std::size_t select(const DispatchContext &ctx) const = 0;

    static constexpr std::size_t kDefer = static_cast<std::size_t>(-1);

  private:
    const char *key_;
    const char *summary_;
};

/** Every registered dispatcher, in presentation order. */
const std::vector<const Dispatcher *> &allDispatchers();

/** @return the dispatcher registered under @p name, or null. */
const Dispatcher *dispatcherByName(std::string_view name);

} // namespace occamy::traffic

#endif // OCCAMY_TRAFFIC_SCHEDULER_HH
