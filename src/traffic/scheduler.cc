/**
 * @file
 * The four stock dispatch disciplines and their registry. Ties break
 * on the lowest queue index everywhere, so every discipline is a total
 * deterministic order and sweep exports stay byte-identical across
 * runner thread counts.
 */

#include "traffic/scheduler.hh"

#include <memory>

namespace occamy::traffic
{

namespace
{

/** Select the minimum of @p pending under @p less (queue-index tie). */
template <typename Less>
std::size_t
argMin(const std::vector<PendingJob> &pending, Less less)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i)
        if (less(pending[i], pending[best]))
            best = i;
    return best;
}

class FcfsDispatcher final : public Dispatcher
{
  public:
    FcfsDispatcher()
        : Dispatcher("fcfs", "first come, first served (arrival order)")
    {
    }

    std::size_t
    select(const DispatchContext &ctx) const override
    {
        return argMin(ctx.pending,
                      [](const PendingJob &a, const PendingJob &b) {
                          if (a.arrived != b.arrived)
                              return a.arrived < b.arrived;
                          return a.queueIdx < b.queueIdx;
                      });
    }
};

class SjfDispatcher final : public Dispatcher
{
  public:
    SjfDispatcher()
        : Dispatcher("sjf",
                     "shortest job first (estimated service demand)")
    {
    }

    std::size_t
    select(const DispatchContext &ctx) const override
    {
        return argMin(ctx.pending,
                      [](const PendingJob &a, const PendingJob &b) {
                          if (a.estCost != b.estCost)
                              return a.estCost < b.estCost;
                          return a.queueIdx < b.queueIdx;
                      });
    }
};

class EdfDispatcher final : public Dispatcher
{
  public:
    EdfDispatcher()
        : Dispatcher("edf", "earliest deadline first (SLO-aware)")
    {
    }

    std::size_t
    select(const DispatchContext &ctx) const override
    {
        // Jobs without a deadline (kCycleNever) naturally sort last;
        // among them the order degenerates to FCFS.
        return argMin(ctx.pending,
                      [](const PendingJob &a, const PendingJob &b) {
                          if (a.deadline != b.deadline)
                              return a.deadline < b.deadline;
                          if (a.arrived != b.arrived)
                              return a.arrived < b.arrived;
                          return a.queueIdx < b.queueIdx;
                      });
    }
};

/**
 * The paper's Section 5 follow-on: pick the job whose first-phase
 * operational intensity maximizes the roofline-estimated normalized
 * machine progress next to what the other cores are running. Falls
 * back to FCFS when the simulator provides no score.
 */
class OiDispatcher final : public Dispatcher
{
  public:
    OiDispatcher()
        : Dispatcher("oi",
                     "OI-aware co-placement (roofline progress score)")
    {
    }

    bool wantsOiScore() const override { return true; }

    std::size_t
    select(const DispatchContext &ctx) const override
    {
        if (!ctx.progressScore) {
            return argMin(ctx.pending,
                          [](const PendingJob &a, const PendingJob &b) {
                              if (a.arrived != b.arrived)
                                  return a.arrived < b.arrived;
                              return a.queueIdx < b.queueIdx;
                          });
        }
        std::size_t best = 0;
        double best_tp = ctx.progressScore(0);
        for (std::size_t i = 1; i < ctx.pending.size(); ++i) {
            const double tp = ctx.progressScore(i);
            if (tp > best_tp + 1e-9) {
                best_tp = tp;
                best = i;
            }
        }
        return best;
    }
};

} // namespace

const std::vector<const Dispatcher *> &
allDispatchers()
{
    static const std::vector<std::unique_ptr<const Dispatcher>> owned =
        [] {
            std::vector<std::unique_ptr<const Dispatcher>> v;
            v.emplace_back(std::make_unique<FcfsDispatcher>());
            v.emplace_back(std::make_unique<SjfDispatcher>());
            v.emplace_back(std::make_unique<EdfDispatcher>());
            v.emplace_back(std::make_unique<OiDispatcher>());
            return v;
        }();
    static const std::vector<const Dispatcher *> ds = [] {
        std::vector<const Dispatcher *> v;
        for (const auto &d : owned)
            v.push_back(d.get());
        return v;
    }();
    return ds;
}

const Dispatcher *
dispatcherByName(std::string_view name)
{
    for (const Dispatcher *d : allDispatchers())
        if (name == d->key())
            return d;
    return nullptr;
}

} // namespace occamy::traffic
