/**
 * @file
 * Policy-aware admission control for multi-tenant traffic (ROADMAP
 * item 4 follow-on to PR 7's dispatch disciplines).
 *
 * An AdmissionPolicy decides, each time the simulator would consider a
 * newly arrived job for dispatch, whether that job may *enter the
 * dispatchable pool* at all:
 *
 *  - Admit: the job becomes visible to the Dispatcher from this cycle
 *    on. Admission is a one-time latch — once admitted, a job is never
 *    re-evaluated (tokens are consumed at admission, not at dispatch).
 *  - Defer: the job stays queued but invisible to the Dispatcher until
 *    a deterministic exponential backoff expires (admissionBackoff),
 *    then is re-evaluated. Deferral re-uses the Dispatcher::kDefer
 *    core-idling contract: a cycle where every candidate is deferred
 *    leaves the core idle, and no job is ever lost.
 *  - Shed: the job is rejected permanently. It is counted, its
 *    closed-loop dependents are released exactly as completion would
 *    release them (the simulated client keeps going after a
 *    rejection), and it never occupies a core.
 *
 * Policies are stateless singletons: every mutable quantity a decision
 * needs (token balances, in-flight counts, service-time EMAs, the
 * overload flag) is owned by the System and passed in through
 * AdmissionContext. That keeps the registry shape identical to the
 * PR-4 sharing-model and PR-7 dispatcher registries, and keeps
 * decisions pure functions — same context, same verdict — which is
 * what makes checkpoint/restore equivalence hold mid-overload.
 *
 * Determinism contract: admission decisions happen only inside the
 * dispatcher's selection scan (core-idle boundaries), use only
 * simulated state, and never read the host clock or a PRNG, so a sweep
 * with admission enabled is byte-identical across runner thread counts
 * and fast-forward settings — and with the default "none" policy, the
 * whole layer is absent from checkpoints, fingerprints and exports.
 */

#ifndef OCCAMY_TRAFFIC_ADMISSION_HH
#define OCCAMY_TRAFFIC_ADMISSION_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace occamy::traffic
{

/** Verdict for one job at one evaluation point. */
enum class AdmissionDecision
{
    Admit,      ///< Enter the dispatchable pool now (latched).
    Defer,      ///< Retry after deterministic backoff; never lost.
    Shed,       ///< Reject permanently; counted, never dispatched.
};

/** @return a stable lower-case name ("admit"/"defer"/"shed"). */
const char *admissionDecisionName(AdmissionDecision d);

/**
 * Everything a policy may consult for one decision. All simulated
 * state; populated by the System at evaluation time.
 */
struct AdmissionContext
{
    Cycle now = 0;              ///< Current simulated cycle.
    unsigned tenant = 0;        ///< Owning tenant of the candidate.
    Cycle deadline = kCycleNever;   ///< Absolute SLO deadline
                                    ///< (effective arrival + budget),
                                    ///< kCycleNever when no SLO.
    Cycle sloBudget = kCycleNever;  ///< Relative budget, kCycleNever
                                    ///< when no SLO.
    Cycle estCost = 0;          ///< Static service estimate (cycles).
    std::size_t readyJobs = 0;  ///< Arrived, not yet dispatched/shed
                                ///< (machine-wide backlog depth).
    unsigned inFlight = 0;      ///< Tenant's admitted-but-unfinished
                                ///< job count.
    std::uint64_t tokens = 0;   ///< Tenant's current token balance
                                ///< (token-bucket bookkeeping).
    bool overloaded = false;    ///< Overload detector state (see
                                ///< DESIGN.md §16 hysteresis).
    Cycle classServiceEma = 0;  ///< EMA of observed service cycles for
                                ///< this job's workload class; 0 until
                                ///< a first completion of the class.
    Cycle meanServiceEma = 0;   ///< EMA across all classes; 0 until
                                ///< any completion.
    unsigned cores = 1;         ///< Cores draining the queue.
    unsigned deferCount = 0;    ///< Times this job was already
                                ///< deferred.
    unsigned cap = 0;           ///< Policy knob (--admission-cap):
                                ///< per-tenant in-flight bound or
                                ///< token-bucket capacity.
};

/**
 * One admission discipline. Stateless; registered once; looked up by
 * key. Same immortal-singleton ownership as the Dispatcher registry.
 */
class AdmissionPolicy
{
  public:
    AdmissionPolicy(std::string key, std::string summary)
        : key_(std::move(key)), summary_(std::move(summary))
    {
    }
    virtual ~AdmissionPolicy() = default;

    /** Registry key, e.g. "token-bucket". */
    const std::string &key() const { return key_; }

    /** One-line human description for --list-admission. */
    const std::string &summary() const { return summary_; }

    /** True if the System must maintain per-tenant token balances
     *  (deterministic lazy refill) for this policy. */
    virtual bool wantsTokens() const { return false; }

    /** Decide the candidate's fate. Pure: no side effects, no host
     *  state. The System applies the verdict (latching, backoff
     *  scheduling, shed bookkeeping, token consumption). */
    virtual AdmissionDecision decide(const AdmissionContext &ctx)
        const = 0;

  private:
    std::string key_;
    std::string summary_;
};

/** Every registered policy, stable registration order. */
const std::vector<const AdmissionPolicy *> &allAdmissionPolicies();

/** @return the policy registered under @p name, or nullptr. */
const AdmissionPolicy *admissionByName(std::string_view name);

/**
 * Deterministic exponential backoff for the n-th deferral of a job:
 * 64 << n cycles, saturating at 65536. Pure function of the per-job
 * defer count, so the retry schedule survives checkpoint/restore and
 * is identical under fast-forward.
 */
Cycle admissionBackoff(unsigned defer_count);

} // namespace occamy::traffic

#endif // OCCAMY_TRAFFIC_ADMISSION_HH
