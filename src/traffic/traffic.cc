#include "traffic/traffic.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "kir/analysis.hh"
#include "traffic/arrival.hh"
#include "workloads/suite.hh"

namespace occamy::traffic
{

namespace
{

/** Stable per-tenant stream seed: the generator's determinism contract
 *  requires tenant t's stream to be a pure function of (seed, t). */
std::uint64_t
mixSeed(std::uint64_t seed, unsigned tenant)
{
    std::uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL *
                              (static_cast<std::uint64_t>(tenant) + 1));
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/** The full 34-workload catalog (WL1..WL22, CV1..CV12), or the
 *  cfg.workloadSet subset resolved against it. */
std::vector<workloads::Workload>
resolveCatalog(const TrafficConfig &cfg)
{
    std::vector<workloads::Workload> all;
    all.reserve(34);
    for (unsigned n = 1; n <= 22; ++n)
        all.push_back(workloads::specWorkload(n));
    for (unsigned n = 1; n <= 12; ++n)
        all.push_back(workloads::opencvWorkload(n));
    if (cfg.workloadSet.empty())
        return all;

    std::vector<workloads::Workload> picked;
    for (const std::string &want : cfg.workloadSet) {
        bool found = false;
        for (const auto &w : all) {
            if (w.name == want) {
                picked.push_back(w);
                found = true;
                break;
            }
        }
        if (!found)
            throw std::invalid_argument("unknown workload in traffic "
                                        "workload set: " +
                                        want);
    }
    return picked;
}

} // namespace

double
estimateCost(const std::vector<kir::Loop> &loops)
{
    double cost = 0.0;
    for (const kir::Loop &l : loops) {
        const kir::LoopSummary s = kir::analyze(l);
        cost += static_cast<double>(l.trip) *
                static_cast<double>(s.computeInsts + s.memInsts);
    }
    return cost;
}

std::string
TrafficConfig::describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "process=%s sched=%s tenants=%u seed=%llu jobs=%llu "
                  "gap=%.1f slo=%llu burst=%.2f period=%llu",
                  process.c_str(), scheduler.c_str(), tenants,
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(jobsPerTenant),
                  meanGapCycles,
                  static_cast<unsigned long long>(sloCycles), burstiness,
                  static_cast<unsigned long long>(diurnalPeriod));
    std::string out = buf;
    out += " set=[";
    for (std::size_t i = 0; i < workloadSet.size(); ++i) {
        if (i)
            out += ',';
        out += workloadSet[i];
    }
    out += ']';
    // Appended only when admission control is on, so pre-admission
    // descriptions (and the fingerprints derived from them) are
    // byte-identical for the default "none".
    if (admissionEnabled()) {
        out += " admission=";
        out += admission;
        out += " cap=";
        out += std::to_string(admissionCap);
    }
    return out;
}

std::vector<Arrival>
generate(const TrafficConfig &cfg)
{
    if (!cfg.enabled())
        throw std::invalid_argument("traffic process not set");
    const ArrivalProcess *proc = processByName(cfg.process);
    if (!proc)
        throw std::invalid_argument("unknown traffic process: " +
                                    cfg.process);
    if (cfg.tenants == 0)
        throw std::invalid_argument("traffic needs at least one tenant");
    if (cfg.jobsPerTenant == 0)
        throw std::invalid_argument("traffic needs at least one job "
                                    "per tenant");
    if (cfg.meanGapCycles <= 0.0)
        throw std::invalid_argument("traffic mean gap must be positive");

    const std::vector<workloads::Workload> catalog = resolveCatalog(cfg);
    if (catalog.empty())
        throw std::invalid_argument("traffic workload set is empty");

    // Each tenant synthesizes its stream independently; the merge is a
    // stable sort by (arriveAt, tenant), so the stream order is a pure
    // function of the config.
    struct TenantJob
    {
        Arrival a;
        std::uint64_t seqInTenant = 0;
    };
    std::vector<TenantJob> jobs;
    jobs.reserve(static_cast<std::size_t>(cfg.tenants) *
                 cfg.jobsPerTenant);
    for (unsigned t = 0; t < cfg.tenants; ++t) {
        StreamState st(mixSeed(cfg.seed, t));
        for (std::uint64_t j = 0; j < cfg.jobsPerTenant; ++j) {
            const Cycle gap = proc->nextGap(st, cfg);
            st.clock += gap;

            TenantJob tj;
            tj.seqInTenant = j;
            tj.a.tenant = t;
            tj.a.arriveAt = st.clock;
            const workloads::Workload &w =
                catalog[st.rng.range(0, catalog.size() - 1)];
            tj.a.workload = w.name;
            tj.a.loops = w.loops;
            tj.a.estCost = estimateCost(w.loops);
            tj.a.sloBudget =
                cfg.sloCycles > 0 ? cfg.sloCycles : kCycleNever;
            if (proc->closedLoop())
                tj.a.thinkGap = gap;
            jobs.push_back(std::move(tj));
        }
    }

    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const TenantJob &x, const TenantJob &y) {
                         if (x.a.arriveAt != y.a.arriveAt)
                             return x.a.arriveAt < y.a.arriveAt;
                         return x.a.tenant < y.a.tenant;
                     });

    // Closed-loop chaining: after the merge, point each job past the
    // first in its tenant stream at its predecessor's global queue
    // index. Sequence numbers survive the stable sort, so "previous in
    // stream" is well-defined.
    std::vector<Arrival> out;
    out.reserve(jobs.size());
    if (proc->closedLoop()) {
        std::vector<std::size_t> last(cfg.tenants, kNoJob);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            Arrival a = std::move(jobs[i].a);
            if (jobs[i].seqInTenant > 0)
                a.dependsOn = last[a.tenant];
            last[a.tenant] = i;
            out.push_back(std::move(a));
        }
    } else {
        for (TenantJob &tj : jobs)
            out.push_back(std::move(tj.a));
    }
    return out;
}

} // namespace occamy::traffic
