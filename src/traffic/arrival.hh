/**
 * @file
 * The arrival-process strategy layer: one immutable object per
 * stochastic process, name-keyed in a registry mirroring src/policy's
 * SharingModel pattern. A process is a pure gap sampler — all mutable
 * per-stream state (RNG, stream clock, mode bits) lives in the
 * StreamState the generator owns, so processes are shareable
 * singletons and every stream stays independently seeded.
 */

#ifndef OCCAMY_TRAFFIC_ARRIVAL_HH
#define OCCAMY_TRAFFIC_ARRIVAL_HH

#include <string_view>
#include <vector>

#include "traffic/traffic.hh"

namespace occamy::traffic
{

/** Mutable per-tenant-stream sampling state. */
struct StreamState
{
    Rng rng;
    Cycle clock = 0;            ///< Stream time after the last arrival.
    std::uint64_t mode = 0;     ///< Process-specific (MMPP mode).
    std::uint64_t dwell = 0;    ///< Arrivals left in the current mode.

    explicit StreamState(std::uint64_t seed) : rng(seed) {}
};

/** Strategy interface for one stochastic arrival process. */
class ArrivalProcess
{
  public:
    ArrivalProcess(const char *key, const char *summary)
        : key_(key), summary_(summary)
    {
    }

    virtual ~ArrivalProcess() = default;

    ArrivalProcess(const ArrivalProcess &) = delete;
    ArrivalProcess &operator=(const ArrivalProcess &) = delete;

    /** Canonical registry key, e.g. "poisson" (lowercase, stable). */
    const char *key() const { return key_; }

    /** One-line description for --list-traffic output. */
    const char *summary() const { return summary_; }

    /** True for processes whose next arrival waits on the previous
     *  job's *completion* (the sampled gap becomes think time). */
    virtual bool closedLoop() const { return false; }

    /**
     * Sample the next inter-arrival gap (>= 1 cycle) for one tenant
     * stream. @p st carries the stream's RNG and clock; the caller
     * advances st.clock by the returned gap.
     */
    virtual Cycle nextGap(StreamState &st,
                          const TrafficConfig &cfg) const = 0;

  private:
    const char *key_;
    const char *summary_;
};

/** Every registered process, in presentation order. */
const std::vector<const ArrivalProcess *> &allProcesses();

/** @return the process registered under @p name, or null. */
const ArrivalProcess *processByName(std::string_view name);

} // namespace occamy::traffic

#endif // OCCAMY_TRAFFIC_ARRIVAL_HH
