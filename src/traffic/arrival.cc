/**
 * @file
 * The four stock arrival processes and their registry. Registration is
 * explicit construction (no static self-registration), matching
 * src/policy/registry.cc: the registry survives the linker dropping
 * unreferenced translation units from the static library.
 */

#include "traffic/arrival.hh"

#include <cmath>
#include <memory>

namespace occamy::traffic
{

double
Rng::expMean(double mean)
{
    return -mean * std::log(u01());
}

namespace
{

/** Clamp a sampled gap to a whole positive cycle count. */
Cycle
gapCycles(double g)
{
    if (g < 1.0)
        return 1;
    return static_cast<Cycle>(g);
}

/** Memoryless arrivals: exponential gaps at the configured rate. */
class PoissonProcess final : public ArrivalProcess
{
  public:
    PoissonProcess()
        : ArrivalProcess("poisson",
                         "memoryless arrivals, exponential gaps")
    {
    }

    Cycle
    nextGap(StreamState &st, const TrafficConfig &cfg) const override
    {
        return gapCycles(st.rng.expMean(cfg.meanGapCycles));
    }
};

/**
 * Markov-modulated Poisson (MMPP-2): the stream alternates between a
 * burst mode and a slow mode, dwelling a geometric number of arrivals
 * (mean 8) in each. Mode means are chosen so the per-arrival mixture
 * keeps E[gap] == meanGapCycles while the coefficient of variation
 * rises with `burstiness` (CV == 1 for pure Poisson, ~1.5 at the
 * default burstiness of 8).
 */
class BurstyProcess final : public ArrivalProcess
{
  public:
    BurstyProcess()
        : ArrivalProcess("bursty",
                         "Markov-modulated Poisson (burst/slow modes)")
    {
    }

    Cycle
    nextGap(StreamState &st, const TrafficConfig &cfg) const override
    {
        if (st.dwell == 0) {
            st.mode ^= 1;
            // Geometric dwell, mean 8 arrivals, never 0.
            st.dwell = 1;
            while (st.rng.u01() > 1.0 / 8.0 && st.dwell < 64)
                ++st.dwell;
        }
        --st.dwell;
        const double b = cfg.burstiness >= 1.0 ? cfg.burstiness : 1.0;
        const double mean =
            st.mode ? 2.0 * cfg.meanGapCycles / (1.0 + b)      // burst
                    : 2.0 * cfg.meanGapCycles * b / (1.0 + b); // slow
        return gapCycles(st.rng.expMean(mean));
    }
};

/**
 * Diurnal load: Poisson with the instantaneous rate modulated
 * sinusoidally over diurnalPeriod — rate peaks in the first half of
 * each period ("daytime") and bottoms out in the second.
 */
class DiurnalProcess final : public ArrivalProcess
{
  public:
    DiurnalProcess()
        : ArrivalProcess("diurnal",
                         "sinusoidally rate-modulated Poisson")
    {
    }

    Cycle
    nextGap(StreamState &st, const TrafficConfig &cfg) const override
    {
        const Cycle period =
            cfg.diurnalPeriod ? cfg.diurnalPeriod : 1'000'000;
        const double phase =
            2.0 * 3.14159265358979323846 *
            (static_cast<double>(st.clock % period) /
             static_cast<double>(period));
        const double rate_scale = 1.0 + 0.8 * std::sin(phase);
        return gapCycles(st.rng.expMean(cfg.meanGapCycles / rate_scale));
    }
};

/**
 * Closed-loop tenants: each tenant keeps one job in flight and submits
 * the next one a think time after the previous completes. The sampled
 * gap is the think time; the effective arrival is resolved by the
 * simulator against the predecessor's completion cycle.
 */
class ClosedLoopProcess final : public ArrivalProcess
{
  public:
    ClosedLoopProcess()
        : ArrivalProcess("closed",
                         "one job in flight per tenant, think-time gaps")
    {
    }

    bool closedLoop() const override { return true; }

    Cycle
    nextGap(StreamState &st, const TrafficConfig &cfg) const override
    {
        return gapCycles(st.rng.expMean(cfg.meanGapCycles));
    }
};

} // namespace

const std::vector<const ArrivalProcess *> &
allProcesses()
{
    static const std::vector<std::unique_ptr<const ArrivalProcess>>
        owned = [] {
            std::vector<std::unique_ptr<const ArrivalProcess>> v;
            v.emplace_back(std::make_unique<PoissonProcess>());
            v.emplace_back(std::make_unique<BurstyProcess>());
            v.emplace_back(std::make_unique<DiurnalProcess>());
            v.emplace_back(std::make_unique<ClosedLoopProcess>());
            return v;
        }();
    static const std::vector<const ArrivalProcess *> procs = [] {
        std::vector<const ArrivalProcess *> v;
        for (const auto &p : owned)
            v.push_back(p.get());
        return v;
    }();
    return procs;
}

const ArrivalProcess *
processByName(std::string_view name)
{
    for (const ArrivalProcess *p : allProcesses())
        if (name == p->key())
            return p;
    return nullptr;
}

} // namespace occamy::traffic
