/**
 * @file
 * Physical vector register file model (Section 4.2.1).
 *
 * The register file is built from N RegBlks of 160 128-bit physical
 * registers each. Under spatial sharing (Private / VLS / Occamy) a core
 * owning l RegBlks renames each architectural z-register to one *row*
 * (the same entry index in each of its l blocks), so its in-flight
 * renaming capacity is 160 entries independent of vector width — the
 * property that lets spatial sharing split single VRF entries between
 * cores.
 *
 * Under temporal sharing (FTS) every register is full-width across all
 * N blocks, and all cores allocate from one shared pool of 160 rows:
 * the physical-register pressure that causes FTS's renaming stalls
 * (Fig. 13) falls out of this structure.
 */

#ifndef OCCAMY_COPROC_REGFILE_HH
#define OCCAMY_COPROC_REGFILE_HH

#include <cstdint>
#include <vector>

#include "ckpt/fwd.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace occamy
{

/** Physical register allocation, mapping and readiness tracking. */
class RegFileModel
{
  public:
    explicit RegFileModel(const MachineConfig &cfg);

    /**
     * Allocate a physical row for core @p c.
     * @return global physical id, or -1 if the (per-core or shared)
     *         freelist is empty.
     */
    std::int32_t alloc(CoreId c);

    /** Return a physical row to its freelist. */
    void free(CoreId c, std::int32_t phys);

    /** Current mapping of an architectural register (-1 if unmapped). */
    std::int32_t mapping(CoreId c, int arch) const;

    /** Install a new mapping; @return the previous physical row
     *  (-1 if none), which the ROB frees at commit. */
    std::int32_t rename(CoreId c, int arch, std::int32_t phys);

    /** Readiness of a physical row's value. */
    Cycle readyAt(std::int32_t phys) const { return ready_.at(phys); }
    void setReadyAt(std::int32_t phys, Cycle c) { ready_.at(phys) = c; }

    /**
     * Vector-length reconfiguration dropped core @p c's register
     * contents (Section 4.2.2): clear its mappings and reclaim every
     * row it held. Only legal when the core's pipeline is drained.
     */
    void resetCore(CoreId c);

    /** Free rows currently available to core @p c. */
    unsigned freeCount(CoreId c) const;

    /** True when the file is one shared full-width pool (FTS). */
    bool shared() const { return shared_; }

    /** Checkpoint hooks. Freelists are order-sensitive (alloc pops
     *  from the back), so they round-trip verbatim, not sorted. */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

  private:
    bool shared_;
    unsigned rows_;                 ///< Rows per pool.
    unsigned pools_;                ///< 1 if shared, else one per core.

    unsigned poolOf(CoreId c) const { return shared_ ? 0 : c; }

    /** Per pool: freelist of row ids (global ids = pool*rows_ + row). */
    std::vector<std::vector<std::int32_t>> freelist_;

    /** Per core: arch -> phys map. */
    std::vector<std::vector<std::int32_t>> map_;

    /** Global phys id -> value-ready cycle. */
    std::vector<Cycle> ready_;

    /** Global phys id -> owning core (for resetCore in shared mode). */
    std::vector<CoreId> held_by_;
};

} // namespace occamy

#endif // OCCAMY_COPROC_REGFILE_HH
