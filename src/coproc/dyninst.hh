/**
 * @file
 * Dynamic instructions: one instance of a static instruction in flight
 * through the co-processor pipeline, carrying renamed registers and
 * timing state.
 */

#ifndef OCCAMY_COPROC_DYNINST_HH
#define OCCAMY_COPROC_DYNINST_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/inst.hh"

namespace occamy
{

/** One in-flight dynamic instruction. */
struct DynInst
{
    Opcode op = Opcode::SNop;
    CoreId core = 0;
    SeqNum seq = 0;

    /** Phase index within the workload, for per-phase statistics. */
    std::uint16_t phaseId = 0;

    // Architectural registers (after reduction-accumulator rotation).
    std::int16_t dstArch = -1;
    std::array<std::int16_t, 3> srcArch{-1, -1, -1};
    std::uint8_t nsrc = 0;

    /** Vector length (ExeBUs) this instruction executes under. */
    std::uint16_t vlBus = 0;

    /** Active 32-bit lane slots (<= vlBus * 4), for busy-lane
     *  accounting; an f64 element occupies two, an f16 element half. */
    std::uint16_t activeLanes = 0;

    /** Active data elements this iteration (predication-aware). */
    std::uint16_t activeElems = 0;

    // Memory operands.
    Addr addr = 0;
    std::uint32_t bytes = 0;
    std::int32_t stride = 1;        ///< Element stride (gather if > 1).
    std::uint8_t elemBytes = 4;

    // EM-SIMD payload.
    PhaseOI oi;
    std::uint32_t imm = 0;
    bool vlFromDecision = false;

    // Pipeline bookkeeping.
    std::int32_t dstPhys = -1;
    std::int32_t prevPhys = -1;
    std::array<std::int32_t, 3> srcPhys{-1, -1, -1};
    Cycle enqueueCycle = 0;
    Cycle readyCycle = kCycleNever;    ///< Writeback / completion time.
    bool issued = false;
    bool completed = false;

    bool isCompute() const { return isVCompute(op); }
    bool isMem() const { return isVMem(op); }
    bool isStore() const { return op == Opcode::VStore; }
};

} // namespace occamy

#endif // OCCAMY_COPROC_DYNINST_HH
