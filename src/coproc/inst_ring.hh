/**
 * @file
 * Arena-backed ring of in-flight DynInsts.
 *
 * The co-processor's per-core pipeline queues (instruction pool, ROB,
 * EM-SIMD queue) used to be std::deque<DynInst>. A deque of ~112-byte
 * records places 4-5 instructions per 512-byte chunk and chases the
 * chunk map on every front/back access, which is exactly the access
 * pattern of the per-cycle commit/rename/issue stages. Every queue the
 * coproc keeps is *bounded by configuration* (pool by instPoolEntries,
 * ROB by robEntries, EMQ by its fixed depth), so each is now one
 * contiguous arena allocated at construction and indexed as a circular
 * buffer: a single allocation per queue for the machine's lifetime, no
 * per-push allocation, and linear walks touch consecutive cache lines.
 *
 * Only the operations the pipeline stages use are provided: FIFO
 * push_back/pop_front, random access (the ROB is indexed by seq -
 * robBase), mid-queue erase (watchdog <VL> cancellation), and forward
 * iteration (checkpointing). Overflow is a programming error — callers
 * gate on canEnqueue()/capacity checks first — and asserts.
 */

#ifndef OCCAMY_COPROC_INST_RING_HH
#define OCCAMY_COPROC_INST_RING_HH

#include <cassert>
#include <cstddef>
#include <vector>

#include "coproc/dyninst.hh"

namespace occamy
{

/** Fixed-capacity contiguous FIFO of DynInsts. */
class InstRing
{
  public:
    explicit InstRing(std::size_t capacity)
        : slots_(capacity == 0 ? 1 : capacity)
    {
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    DynInst &operator[](std::size_t i)
    {
        assert(i < size_);
        return slots_[wrap(head_ + i)];
    }
    const DynInst &operator[](std::size_t i) const
    {
        assert(i < size_);
        return slots_[wrap(head_ + i)];
    }

    DynInst &front() { return (*this)[0]; }
    const DynInst &front() const { return (*this)[0]; }
    DynInst &back() { return (*this)[size_ - 1]; }
    const DynInst &back() const { return (*this)[size_ - 1]; }

    void push_back(const DynInst &d)
    {
        assert(size_ < slots_.size() && "InstRing overflow");
        slots_[wrap(head_ + size_)] = d;
        ++size_;
    }

    void pop_front()
    {
        assert(size_ > 0);
        head_ = wrap(head_ + 1);
        --size_;
    }

    /** Remove the element at logical index @p i, shifting the tail
     *  down. O(size) — used only on the rare watchdog-cancel path. */
    void erase_at(std::size_t i)
    {
        assert(i < size_);
        for (std::size_t k = i + 1; k < size_; ++k)
            slots_[wrap(head_ + k - 1)] = slots_[wrap(head_ + k)];
        --size_;
    }

    void clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Forward iterator over [0, size): enough for range-for walks and
     *  the checkpoint writer. */
    template <class Ring, class Ref>
    class Iter
    {
      public:
        Iter(Ring *r, std::size_t i) : r_(r), i_(i) {}
        Ref operator*() const { return (*r_)[i_]; }
        Iter &operator++()
        {
            ++i_;
            return *this;
        }
        bool operator!=(const Iter &o) const { return i_ != o.i_; }
        bool operator==(const Iter &o) const { return i_ == o.i_; }

      private:
        Ring *r_;
        std::size_t i_;
    };
    using iterator = Iter<InstRing, DynInst &>;
    using const_iterator = Iter<const InstRing, const DynInst &>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, size_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

  private:
    std::size_t wrap(std::size_t i) const
    {
        const std::size_t n = slots_.size();
        return i >= n ? i - n : i;
    }

    std::vector<DynInst> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace occamy

#endif // OCCAMY_COPROC_INST_RING_HH
