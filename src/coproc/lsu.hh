/**
 * @file
 * Load/store unit: the STQ / load-queue structures of Fig. 5, limiting
 * memory-level parallelism per core (or globally under FTS).
 */

#ifndef OCCAMY_COPROC_LSU_HH
#define OCCAMY_COPROC_LSU_HH

#include <queue>
#include <vector>

#include "ckpt/fwd.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memsystem.hh"

namespace occamy
{

/** One LSU: bounded load/store queues feeding the shared MemSystem. */
class Lsu
{
  public:
    explicit Lsu(const MachineConfig &cfg)
        : lq_capacity_(cfg.loadQueueEntries),
          sq_capacity_(cfg.storeQueueEntries)
    {
    }

    bool canIssueLoad() const { return lq_.size() < lq_capacity_; }
    bool canIssueStore() const { return sq_.size() < sq_capacity_; }

    /**
     * Issue a vector load; occupies a load-queue entry until the data
     * returns. @return the data-ready cycle.
     */
    Cycle
    issueLoad(MemSystem &mem, Addr addr, unsigned bytes, Cycle now)
    {
        const MemAccessResult r =
            mem.access(addr, bytes, /*is_write=*/false, now);
        lq_.push(r.queueRelease);
        ++loads_;
        return r.dataReady;
    }

    /**
     * Issue a vector store. The store retires quickly into the store
     * buffer; the fetch-for-ownership holds the STQ entry.
     * @return the retirement cycle.
     */
    Cycle
    issueStore(MemSystem &mem, Addr addr, unsigned bytes, Cycle now)
    {
        const MemAccessResult r =
            mem.access(addr, bytes, /*is_write=*/true, now);
        sq_.push(r.queueRelease);
        ++stores_;
        return r.dataReady;
    }

    /** Issue a gather load: one element per beat, one LQ entry. */
    Cycle
    issueGather(MemSystem &mem, Addr addr, unsigned elem_bytes,
                std::int64_t stride, unsigned count, Cycle now)
    {
        const MemAccessResult r = mem.accessStrided(
            addr, elem_bytes, stride, count, /*is_write=*/false, now);
        lq_.push(r.queueRelease);
        ++loads_;
        return r.dataReady;
    }

    /** Issue a scatter store. */
    Cycle
    issueScatter(MemSystem &mem, Addr addr, unsigned elem_bytes,
                 std::int64_t stride, unsigned count, Cycle now)
    {
        const MemAccessResult r = mem.accessStrided(
            addr, elem_bytes, stride, count, /*is_write=*/true, now);
        sq_.push(r.queueRelease);
        ++stores_;
        return r.dataReady;
    }

    /** Release queue entries whose accesses completed by @p now. */
    void
    tick(Cycle now)
    {
        while (!lq_.empty() && lq_.top() <= now)
            lq_.pop();
        while (!sq_.empty() && sq_.top() <= now)
            sq_.pop();
    }

    bool empty() const { return lq_.empty() && sq_.empty(); }

    /** Earliest future cycle a queue entry releases (kCycleNever when
     *  both queues are empty). Quiescence input for fast-forward. */
    Cycle
    nextRelease() const
    {
        Cycle next = kCycleNever;
        if (!lq_.empty())
            next = lq_.top();
        if (!sq_.empty() && sq_.top() < next)
            next = sq_.top();
        return next;
    }

    std::size_t loadQueueOccupancy() const { return lq_.size(); }
    std::size_t storeQueueOccupancy() const { return sq_.size(); }
    std::uint64_t loadsIssued() const { return loads_.value(); }
    std::uint64_t storesIssued() const { return stores_.value(); }

    /** Checkpoint hooks (src/ckpt/components.cc): queue contents are
     *  serialized as drained min-heap copies, i.e. ascending. */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

  private:
    using MinHeap = std::priority_queue<Cycle, std::vector<Cycle>,
                                        std::greater<Cycle>>;
    unsigned lq_capacity_;
    unsigned sq_capacity_;
    MinHeap lq_;
    MinHeap sq_;
    stats::Counter loads_;
    stats::Counter stores_;
};

} // namespace occamy

#endif // OCCAMY_COPROC_LSU_HH
