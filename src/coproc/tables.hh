/**
 * @file
 * The three introduced tables of Section 4.2.1: the resource table
 * (ResourceTbl, holding the five EM-SIMD dedicated registers of
 * Table 1), and the two configuration tables (Dispatch.Cfg and
 * RegFile.Cfg) recording per-ExeBU / per-RegBlk ownership.
 */

#ifndef OCCAMY_COPROC_TABLES_HH
#define OCCAMY_COPROC_TABLES_HH

#include <cassert>
#include <vector>

#include "ckpt/fwd.hh"
#include "common/types.hh"
#include "isa/inst.hh"

namespace occamy
{

/**
 * ResourceTbl: (4*C + 1) registers — <OI>, <decision>, <VL>, <status>
 * per core plus the shared free-lane register <AL> (in ExeBUs).
 */
class ResourceTable
{
  public:
    struct PerCore
    {
        PhaseOI oi;              ///< <OI>, 0 when outside any phase.
        unsigned decision = 0;   ///< <decision>: suggested VL in BUs.
        unsigned vl = 0;         ///< <VL>: configured VL in BUs.
        bool status = false;     ///< <status> of the last <VL> write.
    };

    ResourceTable(unsigned cores, unsigned total_bus)
        : core_(cores), al_(total_bus), total_(total_bus)
    {
    }

    PerCore &core(CoreId c) { return core_.at(c); }
    const PerCore &core(CoreId c) const { return core_.at(c); }
    unsigned numCores() const { return static_cast<unsigned>(core_.size()); }

    /** <AL>: free ExeBUs available for allocation. */
    unsigned al() const { return al_; }

    /** ExeBUs permanently lost to hard faults. */
    unsigned faulted() const { return faulted_; }

    /** ExeBUs still usable: configured total minus faulted units. */
    unsigned usableBus() const { return total_ - faulted_; }

    /** A hard fault consumed a *free* ExeBU: shrink <AL>. */
    void
    loseFree()
    {
        assert(al_ > 0);
        --al_;
        ++faulted_;
    }

    /** A hard fault consumed an ExeBU *owned* by core @p c: shrink its
     *  <VL> in place (the unit simply stops computing; the drain /
     *  re-request protocol is unchanged). */
    void
    loseOwned(CoreId c)
    {
        PerCore &pc = core_.at(c);
        assert(pc.vl > 0);
        --pc.vl;
        ++faulted_;
    }

    /** Atomically retarget core @p c from its current VL to @p vl BUs.
     *  Caller must have verified availability. */
    void
    retarget(CoreId c, unsigned vl)
    {
        PerCore &pc = core_.at(c);
        assert(pc.vl + al_ >= vl);
        al_ = pc.vl + al_ - vl;
        pc.vl = vl;
        pc.status = true;
    }

    /** OIs of all cores, in core order (input to the LaneMgr). */
    std::vector<PhaseOI>
    allOIs() const
    {
        std::vector<PhaseOI> ois;
        ois.reserve(core_.size());
        for (const auto &pc : core_)
            ois.push_back(pc.oi);
        return ois;
    }

    /** Checkpoint hooks (src/ckpt/components.cc). */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

  private:
    std::vector<PerCore> core_;
    unsigned al_;
    unsigned total_;
    unsigned faulted_ = 0;
};

/**
 * A ConfigTbl: ownership of N homogeneous units (ExeBUs or RegBlks).
 * Each entry ranges over {free, core0, core1, ...} (Section 4.2.1).
 */
class ConfigTable
{
  public:
    explicit ConfigTable(unsigned units) : owner_(units, kNoCore) {}

    CoreId owner(unsigned unit) const { return owner_.at(unit); }
    unsigned size() const { return static_cast<unsigned>(owner_.size()); }

    unsigned
    countOwned(CoreId c) const
    {
        unsigned n = 0;
        for (CoreId o : owner_)
            if (o == c)
                ++n;
        return n;
    }

    unsigned countFree() const { return countOwned(kNoCore); }

    /** Take @p unit permanently offline (ExeBU hard fault). A faulted
     *  unit is neither free nor owned, so release()/assign() skip it
     *  and the <AL> == countFree() invariant is preserved. */
    void disable(unsigned unit) { owner_.at(unit) = kFaultedCore; }

    /** Free every unit owned by core @p c. */
    void
    release(CoreId c)
    {
        for (CoreId &o : owner_)
            if (o == c)
                o = kNoCore;
    }

    /**
     * Assign @p n free units to core @p c.
     * @return true on success (enough free units existed).
     */
    bool
    assign(CoreId c, unsigned n)
    {
        if (countFree() < n)
            return false;
        for (CoreId &o : owner_) {
            if (n == 0)
                break;
            if (o == kNoCore) {
                o = c;
                --n;
            }
        }
        return true;
    }

    /** Checkpoint hooks (src/ckpt/components.cc). */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

  private:
    std::vector<CoreId> owner_;
};

} // namespace occamy

#endif // OCCAMY_COPROC_TABLES_HH
