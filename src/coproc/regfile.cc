#include "coproc/regfile.hh"

#include <cassert>

#include "ckpt/ckpt.hh"
#include "policy/sharing_model.hh"

namespace occamy
{

RegFileModel::RegFileModel(const MachineConfig &cfg)
    : shared_(policy::model(cfg.policy).sharedRegfilePool()),
      rows_(cfg.vregsPerBlk),
      pools_(shared_ ? 1 : cfg.numCores)
{
    // Section 7.6: when scaling FTS past 2 cores the paper keeps the
    // 2-core number of physical registers per core (paying the +33.5%
    // register-file area its Fig. 12 analysis charges to FTS).
    if (shared_ && cfg.numCores > 2)
        rows_ = cfg.vregsPerBlk * (cfg.numCores / 2);

    // Under FTS every core's full architectural context must be held
    // at machine width in the one shared pool (the paper's root cause
    // of FTS's renaming stalls): those rows are pinned and never enter
    // the freelist. Spatial designs rename per-core into their own
    // 160-row block sets, so nothing is pinned.
    unsigned pinned = 0;
    if (shared_)
        pinned = kNumArchVecRegs * cfg.numCores;
    assert(pinned < rows_ && "register file too small for FTS contexts");

    freelist_.resize(pools_);
    for (unsigned p = 0; p < pools_; ++p) {
        freelist_[p].reserve(rows_);
        for (int r = static_cast<int>(rows_) - 1;
             r >= static_cast<int>(pinned); --r)
            freelist_[p].push_back(static_cast<std::int32_t>(p * rows_ + r));
    }
    map_.assign(cfg.numCores,
                std::vector<std::int32_t>(kNumArchVecRegs, -1));
    ready_.assign(static_cast<std::size_t>(pools_) * rows_, 0);
    held_by_.assign(ready_.size(), kNoCore);
}

std::int32_t
RegFileModel::alloc(CoreId c)
{
    auto &fl = freelist_[poolOf(c)];
    if (fl.empty())
        return -1;
    const std::int32_t phys = fl.back();
    fl.pop_back();
    held_by_[phys] = c;
    return phys;
}

void
RegFileModel::free(CoreId c, std::int32_t phys)
{
    assert(phys >= 0);
    // A physical row freed after resetCore() already went back to the
    // freelist; the held_by_ tag detects the double-free and skips it.
    if (held_by_[phys] != c)
        return;
    held_by_[phys] = kNoCore;
    freelist_[poolOf(c)].push_back(phys);
}

std::int32_t
RegFileModel::mapping(CoreId c, int arch) const
{
    return map_[c].at(arch);
}

std::int32_t
RegFileModel::rename(CoreId c, int arch, std::int32_t phys)
{
    std::int32_t prev = map_[c].at(arch);
    map_[c].at(arch) = phys;
    return prev;
}

void
RegFileModel::resetCore(CoreId c)
{
    for (auto &m : map_[c])
        m = -1;
    auto &fl = freelist_[poolOf(c)];
    for (std::size_t phys = 0; phys < held_by_.size(); ++phys) {
        if (held_by_[phys] == c) {
            held_by_[phys] = kNoCore;
            fl.push_back(static_cast<std::int32_t>(phys));
        }
    }
}

unsigned
RegFileModel::freeCount(CoreId c) const
{
    return static_cast<unsigned>(freelist_[poolOf(c)].size());
}

void
RegFileModel::save(ckpt::Writer &w) const
{
    w.section("regfile");
    w.u64(freelist_.size());
    for (const auto &fl : freelist_) {
        w.u64(fl.size());
        for (std::int32_t p : fl)
            w.i64(p);
    }
    w.u64(map_.size());
    for (const auto &m : map_) {
        w.u64(m.size());
        for (std::int32_t p : m)
            w.i64(p);
    }
    w.u64(ready_.size());
    for (Cycle c : ready_)
        w.u64(c);
    w.u64(held_by_.size());
    for (CoreId c : held_by_)
        w.u16(static_cast<std::uint16_t>(c));
}

void
RegFileModel::load(ckpt::Reader &r)
{
    r.expectSection("regfile");
    ckpt::Reader::check(r.arr() == freelist_.size(),
                        "checkpoint regfile pool count mismatch");
    for (auto &fl : freelist_) {
        fl.resize(r.arr(ready_.size()));
        for (std::int32_t &p : fl)
            p = static_cast<std::int32_t>(r.i64());
    }
    ckpt::Reader::check(r.arr() == map_.size(),
                        "checkpoint regfile map count mismatch");
    for (auto &m : map_) {
        ckpt::Reader::check(r.arr() == m.size(),
                            "checkpoint regfile map width mismatch");
        for (std::int32_t &p : m)
            p = static_cast<std::int32_t>(r.i64());
    }
    ckpt::Reader::check(r.arr() == ready_.size(),
                        "checkpoint regfile row count mismatch");
    for (Cycle &c : ready_)
        c = r.u64();
    ckpt::Reader::check(r.arr() == held_by_.size(),
                        "checkpoint regfile holder count mismatch");
    for (CoreId &c : held_by_)
        c = static_cast<CoreId>(r.u16());
}

} // namespace occamy
