/**
 * @file
 * The Occamy SIMD co-processor micro-architecture (Section 4, Fig. 5).
 *
 * One CoProcessor instance serves all scalar cores. Per cycle, in
 * back-to-front stage order: commit (per-core ROBs), issue (compute to
 * the owned ExeBUs, ld/st to the LSUs), rename (instruction pool ->
 * IQ/ROB, allocating physical rows), and the Manager's EM-SIMD data
 * path (ResourceTbl updates, LaneMgr plans, vector-length
 * reconfiguration with pipeline-drain semantics, Section 4.2.2).
 *
 * The sharing policies map onto the same structures; every
 * policy-conditional behavior (boot ownership, issue eligibility,
 * drain rules, <VL> resolution) is delegated to the config's
 * policy::SharingModel:
 *  - Private: ExeBUs/RegBlks statically owned, per-core issue budgets;
 *  - FTS: no ownership, full-width execution, *shared* issue budgets
 *    and one shared full-width physical register pool;
 *  - VLS: static ownership from a boot-time plan;
 *  - Elastic (Occamy): ownership retargeted at run time by EM-SIMD
 *    instructions under LaneMgr guidance;
 *  - extensions (e.g. VLS-WC) plug in via the policy registry.
 */

#ifndef OCCAMY_COPROC_COPROC_HH
#define OCCAMY_COPROC_COPROC_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "coproc/dyninst.hh"
#include "coproc/inst_ring.hh"
#include "coproc/lsu.hh"
#include "coproc/regfile.hh"
#include "coproc/tables.hh"
#include "lanemgr/lanemgr.hh"
#include "mem/memsystem.hh"
#include "obs/sink.hh"
#include "policy/sharing_model.hh"

namespace occamy
{

namespace fault
{
class FaultInjector;
}

/** Result of a front-end poll on an outstanding <VL> write. */
struct VlRequestStatus
{
    bool resolved = false;
    bool ok = false;
};

/** The shared SIMD co-processor. */
class CoProcessor
{
  public:
    CoProcessor(const MachineConfig &cfg, MemSystem &mem);

    // --- Front-end interface (scalar cores push work in). ---

    /** @return true if core @p c's instruction pool has space. */
    bool canEnqueue(CoreId c) const;

    /** Enqueue a retired SVE instruction into the instruction pool. */
    void enqueue(DynInst inst);

    /** @return true if the EM-SIMD queue of core @p c has space. */
    bool canEnqueueEmSimd(CoreId c) const;

    /** Enqueue an EM-SIMD instruction (separate in-order data path). */
    void enqueueEmSimd(DynInst inst);

    /** Poll / acknowledge the outcome of an outstanding <VL> write. */
    VlRequestStatus vlRequestStatus(CoreId c) const;
    void ackVlRequest(CoreId c);

    /**
     * Abandon core @p c's outstanding <VL> request (livelock-watchdog
     * escalation): drop the pending MsrVL from the EM-SIMD queue and
     * clear the request latch, leaving the core's current ownership
     * untouched. The core falls back to its scalar loop version (§6).
     */
    void cancelVlRequest(CoreId c);

    // --- Architectural state visible to software (MRS reads). ---
    unsigned currentVl(CoreId c) const { return rt_.core(c).vl; }
    unsigned decision(CoreId c) const { return rt_.core(c).decision; }
    unsigned freeBus() const { return rt_.al(); }
    const ResourceTable &resourceTable() const { return rt_; }

    /** @return true when core @p c has nothing in flight (drained). */
    bool coreDrained(CoreId c) const;

    /** Attach a fault injector (null = fault-free; the default). */
    void setFaultInjector(fault::FaultInjector *inj) { injector_ = inj; }

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Quiescence probe for the fast-forward engine: earliest future
     * cycle (> @p now) at which a tick could change architectural,
     * timing, or observable state — the next ROB head retire, LSU
     * queue release, pool head clearing its transmit-retire gate, IQ
     * entry becoming issueable, EM-SIMD queue progress, or pending
     * lane-partition plan publication. Returns kCycleNever when fully
     * drained. Returning now+1 means "cannot skip"; the probe may be
     * conservative (wake early — an extra tick of a quiescent machine
     * is a no-op) but never optimistic.
     */
    Cycle nextEventAt(Cycle now) const;

    /**
     * Account for @p span skipped quiescent cycles. Ticking a
     * quiescent co-processor is a no-op except under FTS, where the
     * issue stage's round-robin pointer advances every cycle; advance
     * it here so arbitration after a skip matches the ticked run.
     */
    void skipCycles(Cycle span);

    // --- Metrics. ---

    /** Lanes of core @p c that executed compute µops this cycle. */
    unsigned busyLanes(CoreId c) const { return busy_lanes_.at(c); }

    /** Lanes currently allocated to core @p c. */
    unsigned allocatedLanes(CoreId c) const;

    /** Lanes on ExeBUs that still work (hard faults excluded). */
    unsigned usableLanes() const { return rt_.usableBus() * kLanesPerBu; }

    /** ExeBU hard faults applied so far. */
    std::uint64_t laneFaults() const { return lane_faults_.value(); }

    std::uint64_t computeIssued(CoreId c) const;
    std::uint64_t memIssued(CoreId c) const;
    std::uint64_t computeIssuedInPhase(CoreId c, unsigned phase) const;
    std::uint64_t renameRegStallCycles(CoreId c) const;
    std::uint64_t renameOtherStallCycles(CoreId c) const;
    std::uint64_t vlSwitches() const { return vl_switches_.value(); }
    std::uint64_t plansMade() const { return lane_mgr_.plansMade(); }

    void regStats(stats::Group &group) const;

    /** Attach/detach the trace sink (null = tracing off); forwarded
     *  to the embedded LaneMgr. */
    void setEventSink(obs::EventSink *sink)
    {
        sink_ = sink;
        lane_mgr_.setEventSink(sink);
    }

    const MachineConfig &config() const { return cfg_; }

    /** Checkpoint hooks: tables, regfile, lane manager, and every
     *  per-core pipeline structure (pool/ROB/IQ/LSU/EMQ). */
    void save(ckpt::Writer &w) const;
    void load(ckpt::Reader &r);

    /** One-line-per-fact state dump for live inspection. @p what
     *  selects a sub-component: "" (summary), "rt", "lanemgr",
     *  "regfile", or a decimal core id for that core's pipeline. */
    void printState(std::ostream &os, const std::string &what) const;

  private:
    /** EM-SIMD queue depth (Fig. 5's small in-order buffer). */
    static constexpr std::size_t kEmqDepth = 8;

    /** Per-core pipeline state. The in-flight instruction queues are
     *  arena-backed rings (coproc/inst_ring.hh): each is bounded by
     *  configuration, so one contiguous allocation at construction
     *  serves the machine's lifetime and the per-cycle stage walks
     *  touch consecutive cache lines instead of chasing deque chunks. */
    struct CoreState
    {
        explicit CoreState(const MachineConfig &cfg)
            : pool(cfg.instPoolEntries), rob(cfg.robEntries), lsu(cfg),
              emq(kEmqDepth)
        {
        }

        InstRing pool;                  ///< Instruction pool (FIFO).
        InstRing rob;                   ///< Renamed, program order.
        SeqNum robBase = 0;             ///< seq of rob.front().
        std::vector<SeqNum> iq;         ///< Awaiting issue.
        Lsu lsu;
        InstRing emq;                   ///< EM-SIMD in-order queue.

        VlRequestStatus vlReq;

        /** Injected reconfiguration delay: a granted resize at the emq
         *  head stalls until this cycle (0 = no delay pending). */
        Cycle cfgDelayUntil = 0;

        std::uint64_t computeIssued = 0;
        std::uint64_t memIssued = 0;
        std::vector<std::uint64_t> phaseCompute;  ///< By phaseId.
        std::uint64_t regStallCycles = 0;
        std::uint64_t otherStallCycles = 0;
    };

    DynInst &robEntry(CoreState &cs, SeqNum seq);

    /** The LSU serving core @p c (one shared LSU under FTS). */
    Lsu &lsuFor(CoreId c);

    /** IQ occupancy relevant to core @p c (machine-wide under FTS). */
    std::size_t iqLoad(CoreId c) const;

    /** Apply ExeBU hard faults due at @p now (top of tick). */
    void applyFaults(Cycle now);

    void commitStage(Cycle now);
    void issueStage(Cycle now);
    void renameStage(Cycle now);
    void managerStage(Cycle now);

    /** Try to issue ROB entry @p seq of core @p c. @return true if it
     *  left the IQ this cycle. */
    bool tryIssue(CoreId c, SeqNum seq, Cycle now, unsigned &compute_budget,
                  unsigned &mem_budget);

    /** Execute the head EM-SIMD instruction of core @p c.
     *  @return true if it retired (pop it). */
    bool execEmSimd(CoreId c, const DynInst &inst, Cycle now);

    /** @return true if @p inst at the head of core @p c's EM-SIMD
     *  queue would wait (MsrVL pipeline-drain condition, or an armed
     *  injected reconfiguration delay) rather than retire if executed
     *  at @p now. Mirrors execEmSimd's wait paths. */
    bool emHeadWaits(CoreId c, const DynInst &inst, Cycle now) const;

    /** Decode the VL (in BUs) a MsrVL instruction requests: its
     *  immediate, or the core's <decision> register (falling back to
     *  the current <VL> when no decision is published). */
    unsigned vlTarget(CoreId c, const DynInst &inst) const;

    /** Apply a successful vector-length retarget for core @p c. */
    void applyVl(CoreId c, unsigned target, Cycle now = 0);

    MachineConfig cfg_;
    const policy::SharingModel &model_;
    MemSystem &mem_;

    ResourceTable rt_;
    ConfigTable dispatch_cfg_;      ///< ExeBU ownership.
    ConfigTable regfile_cfg_;       ///< RegBlk ownership.
    RegFileModel regfile_;
    LaneMgr lane_mgr_;

    std::vector<CoreState> cores_;
    std::vector<unsigned> busy_lanes_;  ///< Per core, this cycle.
    unsigned rr_start_ = 0;             ///< FTS round-robin pointer.

    stats::Counter vl_switches_;
    stats::Counter em_insts_;
    stats::Counter plans_published_;
    stats::Counter lane_faults_;

    obs::EventSink *sink_ = nullptr;    ///< Borrowed, may be null.
    fault::FaultInjector *injector_ = nullptr;  ///< Borrowed, may be null.
};

} // namespace occamy

#endif // OCCAMY_COPROC_COPROC_HH
