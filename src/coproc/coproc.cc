#include "coproc/coproc.hh"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>

#include "ckpt/ckpt.hh"
#include "common/log.hh"
#include "fault/injector.hh"

namespace occamy
{

namespace
{

/** Build a pipeline event for @p inst (dispatch/issue/retire). */
inline obs::Event
pipeEvent(Cycle now, obs::EventKind kind, const DynInst &inst)
{
    obs::Event ev;
    ev.cycle = now;
    ev.kind = kind;
    ev.core = inst.core;
    ev.a = static_cast<std::uint64_t>(inst.op);
    ev.b = inst.seq;
    ev.x = inst.activeLanes;
    return ev;
}

} // namespace

CoProcessor::CoProcessor(const MachineConfig &cfg, MemSystem &mem)
    : cfg_(cfg), model_(policy::model(cfg.policy)), mem_(mem),
      rt_(cfg.numCores, cfg.numExeBUs),
      dispatch_cfg_(cfg.numExeBUs),
      regfile_cfg_(cfg.numExeBUs),
      regfile_(cfg),
      lane_mgr_(RooflineParams::fromConfig(cfg), cfg.numExeBUs,
                cfg.laneMgrLatency)
{
    // Let the policy adjust per-core structure sizing (FTS statically
    // splits the single full-width unit's load/store queues between
    // the cores -- the store-queue competition Section 2 blames for
    // FTS's issue-rate drop).
    MachineConfig core_cfg = cfg;
    model_.tuneCoreConfig(core_cfg);
    cores_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c)
        cores_.emplace_back(core_cfg);
    busy_lanes_.assign(cfg.numCores, 0);

    // Boot-time lane ownership.
    switch (model_.bootOwnership()) {
      case policy::BootOwnership::StaticPlan:
        // Static plan: equal split unless the config carries one.
        for (unsigned c = 0; c < cfg_.numCores; ++c) {
            applyVl(static_cast<CoreId>(c),
                    policy::bootShare(cfg_, static_cast<CoreId>(c)));
            rt_.core(static_cast<CoreId>(c)).status = true;
        }
        break;
      case policy::BootOwnership::FullWidthNoOwnership:
        // No ownership: every instruction executes full-width.
        for (unsigned c = 0; c < cfg_.numCores; ++c)
            rt_.retarget(static_cast<CoreId>(c), 0);
        break;
      case policy::BootOwnership::AllFree:
        // All lanes start free; workload prologues claim them.
        break;
    }
}

bool
CoProcessor::canEnqueue(CoreId c) const
{
    return cores_[c].pool.size() < cfg_.instPoolEntries;
}

void
CoProcessor::enqueue(DynInst inst)
{
    assert(isSve(inst.op));
    assert(canEnqueue(inst.core));
    cores_[inst.core].pool.push_back(inst);
}

bool
CoProcessor::canEnqueueEmSimd(CoreId c) const
{
    return cores_[c].emq.size() < kEmqDepth;
}

void
CoProcessor::enqueueEmSimd(DynInst inst)
{
    assert(isEmSimd(inst.op));
    assert(canEnqueueEmSimd(inst.core));
    if (inst.op == Opcode::MsrVL)
        cores_[inst.core].vlReq = VlRequestStatus{};
    cores_[inst.core].emq.push_back(inst);
}

VlRequestStatus
CoProcessor::vlRequestStatus(CoreId c) const
{
    return cores_[c].vlReq;
}

void
CoProcessor::ackVlRequest(CoreId c)
{
    cores_[c].vlReq = VlRequestStatus{};
}

void
CoProcessor::cancelVlRequest(CoreId c)
{
    CoreState &cs = cores_[c];
    cs.vlReq = VlRequestStatus{};
    cs.cfgDelayUntil = 0;
    // At most one <VL> request is in flight per core (the front end
    // stalls on it), so dropping the first un-executed MsrVL is enough.
    for (std::size_t i = 0; i < cs.emq.size(); ++i) {
        if (cs.emq[i].op == Opcode::MsrVL) {
            cs.emq.erase_at(i);
            break;
        }
    }
}

bool
CoProcessor::coreDrained(CoreId c) const
{
    const CoreState &cs = cores_[c];
    if (!model_.drainIncludesLsu())
        return cs.pool.empty() && cs.rob.empty();
    return cs.pool.empty() && cs.rob.empty() && cs.lsu.empty();
}

unsigned
CoProcessor::allocatedLanes(CoreId c) const
{
    if (model_.fullWidthExecution())
        return usableLanes();
    return rt_.core(c).vl * kLanesPerBu;
}

DynInst &
CoProcessor::robEntry(CoreState &cs, SeqNum seq)
{
    assert(seq >= cs.robBase);
    const std::size_t idx = static_cast<std::size_t>(seq - cs.robBase);
    assert(idx < cs.rob.size());
    return cs.rob[idx];
}

Lsu &
CoProcessor::lsuFor(CoreId c)
{
    return cores_[c].lsu;
}

std::size_t
CoProcessor::iqLoad(CoreId c) const
{
    // Issue queues stay per core even under FTS (each core keeps its
    // own dispatch window); sharing them starves the faster core
    // outright instead of merely slowing it.
    return cores_[c].iq.size();
}

void
CoProcessor::tick(Cycle now)
{
    applyFaults(now);

    std::fill(busy_lanes_.begin(), busy_lanes_.end(), 0u);
    for (auto &cs : cores_)
        cs.lsu.tick(now);

    commitStage(now);
    issueStage(now);
    renameStage(now);
    managerStage(now);
}

void
CoProcessor::applyFaults(Cycle now)
{
    if (!injector_)
        return;
    for (unsigned u : injector_->takeDueLaneFaults(now)) {
        if (dispatch_cfg_.owner(u) == kFaultedCore)
            continue;       // Already dead (duplicate plan entry).
        const CoreId owner = dispatch_cfg_.owner(u);
        // The two Cfg tables receive identical release/assign streams,
        // so per-unit ownership matches.
        assert(regfile_cfg_.owner(u) == owner);
        dispatch_cfg_.disable(u);
        regfile_cfg_.disable(u);
        if (owner == kNoCore)
            rt_.loseFree();
        else
            rt_.loseOwned(owner);
        ++lane_faults_;

        // Degrade the partitioning machinery: the LaneMgr plans over
        // the surviving pool from now on (the elastic policy schedules
        // an immediate re-plan); rule-based policies adjust their
        // entitlements through the onLaneFault hook.
        lane_mgr_.degrade(rt_.usableBus());
        if (model_.usesLaneManager())
            lane_mgr_.notifyPhaseEvent(now);
        model_.onLaneFault(cfg_, rt_, u, owner);

        OCCAMY_LOG(now, "Coproc",
                   "ExeBU %u hard fault (owner=%d, usable=%u)", u,
                   owner == kNoCore ? -1 : static_cast<int>(owner),
                   rt_.usableBus());
        if (sink_ && sink_->wants(obs::EventKind::FaultInject)) {
            obs::Event ev;
            ev.cycle = now;
            ev.kind = obs::EventKind::FaultInject;
            ev.core = owner;
            ev.a = static_cast<std::uint64_t>(fault::FaultKind::LaneFault);
            ev.b = u;
            sink_->record(ev);
        }
        if (sink_ && sink_->wants(obs::EventKind::PartitionDegrade)) {
            obs::Event ev;
            ev.cycle = now;
            ev.kind = obs::EventKind::PartitionDegrade;
            ev.core = owner;
            ev.a = rt_.usableBus();
            ev.b = cfg_.numExeBUs;
            sink_->record(ev);
        }
    }
}

Cycle
CoProcessor::nextEventAt(Cycle now) const
{
    Cycle next = kCycleNever;
    // Candidates may be <= now (e.g. a ROB head that became ready
    // after this cycle's commit stage ran); clamp to now+1 — the
    // soonest a future tick can act on them.
    auto consider = [&next, now](Cycle c) {
        if (c != kCycleNever)
            next = std::min(next, std::max(c, now + 1));
    };

    // A pending lane-partition plan publishes at a fixed cycle and
    // changes <decision> state even with every pipeline drained.
    // (Rule-based policies update <decision> eagerly on EM-SIMD
    // execution, which the per-core candidates below already track.)
    if (model_.usesLaneManager())
        consider(lane_mgr_.planReadyAt());

    for (unsigned ci = 0; ci < cores_.size(); ++ci) {
        const CoreId c = static_cast<CoreId>(ci);
        const CoreState &cs = cores_[ci];

        // LSU queue releases gate both issue and coreDrained().
        consider(cs.lsu.nextRelease());

        // Rename acts on the pool head once it clears the transmit
        // retire gate; before that the stage is a strict no-op (the
        // gate check precedes the stall bookkeeping). At or past the
        // gate this clamps to now+1: a capacity-blocked rename bumps
        // stall counters and fires RenameStall every cycle, so such
        // cycles must be ticked, never skipped.
        if (!cs.pool.empty())
            consider(cs.pool.front().enqueueCycle + cfg_.retireDelay);

        // Next ROB head retirement.
        if (!cs.rob.empty() && cs.rob.front().issued)
            consider(cs.rob.front().readyCycle);

        // IQ entries: earliest cycle each could leave. With vl == 0
        // (non-FTS) the issue stage skips this core entirely until a
        // reconfiguration — which is itself a wake event — grants
        // lanes again.
        if (model_.issueEligible(rt_, c)) {
            for (SeqNum seq : cs.iq) {
                const DynInst &inst =
                    cs.rob[static_cast<std::size_t>(seq - cs.robBase)];
                Cycle earliest = now + 1;
                bool src_pending = false;
                if (inst.isCompute() || inst.isStore()) {
                    for (unsigned i = 0; i < inst.nsrc; ++i) {
                        if (inst.srcPhys[i] < 0)
                            continue;
                        const Cycle r = regfile_.readyAt(inst.srcPhys[i]);
                        if (r == kCycleNever)
                            // Producer not issued yet: its own IQ entry
                            // (or vl/plan wake) governs this one.
                            src_pending = true;
                        else if (r > earliest)
                            earliest = r;
                    }
                }
                if (inst.isMem()) {
                    const bool full = inst.isStore()
                                          ? !cs.lsu.canIssueStore()
                                          : !cs.lsu.canIssueLoad();
                    if (full)
                        earliest = std::max(earliest,
                                            cs.lsu.nextRelease());
                }
                if (!src_pending)
                    consider(earliest);
                if (next == now + 1)
                    break;      // Cannot do better; stop scanning.
            }
        }

        // EM-SIMD queue: a non-waiting head executes next cycle; a
        // drain-waiting MsrVL head is a no-op until the pipeline
        // empties, which the pool/ROB/LSU candidates above track. A
        // head stalled on an armed reconfiguration-delay deadline
        // resumes at that (known) cycle.
        if (!cs.emq.empty()) {
            if (!emHeadWaits(c, cs.emq.front(), now))
                consider(now + 1);
            else if (cs.cfgDelayUntil > now)
                consider(cs.cfgDelayUntil);
        }

        if (next == now + 1)
            break;
    }
    return next;
}

void
CoProcessor::skipCycles(Cycle span)
{
    if (model_.sharedIssueBudgets() && !cores_.empty())
        rr_start_ = static_cast<unsigned>((rr_start_ + span) %
                                          cores_.size());
}

void
CoProcessor::commitStage(Cycle now)
{
    for (unsigned c = 0; c < cores_.size(); ++c) {
        CoreState &cs = cores_[c];
        unsigned width = cfg_.commitWidth;
        while (width > 0 && !cs.rob.empty()) {
            DynInst &head = cs.rob.front();
            if (!head.issued || head.readyCycle > now)
                break;
            if (head.prevPhys >= 0)
                regfile_.free(static_cast<CoreId>(c), head.prevPhys);
            if (sink_ && sink_->wants(obs::EventKind::Retire))
                sink_->record(
                    pipeEvent(now, obs::EventKind::Retire, head));
            cs.rob.pop_front();
            ++cs.robBase;
            --width;
        }
    }
}

bool
CoProcessor::tryIssue(CoreId c, SeqNum seq, Cycle now,
                      unsigned &compute_budget, unsigned &mem_budget)
{
    CoreState &cs = cores_[c];
    DynInst &inst = robEntry(cs, seq);
    assert(!inst.issued);

    auto operandsReady = [&](const DynInst &di) {
        for (unsigned i = 0; i < di.nsrc; ++i) {
            if (di.srcPhys[i] >= 0 &&
                regfile_.readyAt(di.srcPhys[i]) > now) {
                return false;
            }
        }
        return true;
    };

    if (inst.isCompute()) {
        if (compute_budget == 0 || !operandsReady(inst))
            return false;
        --compute_budget;
        inst.issued = true;
        inst.readyCycle = now + computeLatency(inst.op, cfg_.fpLatency);
        if (inst.dstPhys >= 0)
            regfile_.setReadyAt(inst.dstPhys, inst.readyCycle);
        busy_lanes_[c] += inst.activeLanes;
        ++cs.computeIssued;
        if (inst.phaseId >= cs.phaseCompute.size())
            cs.phaseCompute.resize(inst.phaseId + 1, 0);
        ++cs.phaseCompute[inst.phaseId];
        if (sink_ && sink_->wants(obs::EventKind::Issue))
            sink_->record(pipeEvent(now, obs::EventKind::Issue, inst));
        return true;
    }

    assert(inst.isMem());
    if (mem_budget == 0)
        return false;
    Lsu &lsu = lsuFor(c);
    const bool strided = inst.stride != 1;
    // Gathers/scatters crack into address-generation micro-ops and
    // consume the core's full ld/st issue bandwidth for the cycle.
    if (strided && mem_budget < cfg_.memIssueWidth)
        return false;
    if (inst.isStore()) {
        if (!lsu.canIssueStore() || !operandsReady(inst))
            return false;
        mem_budget -= strided ? cfg_.memIssueWidth : 1;
        inst.issued = true;
        inst.readyCycle =
            strided ? lsu.issueScatter(mem_, inst.addr, inst.elemBytes,
                                       inst.stride, inst.activeElems,
                                       now)
                    : lsu.issueStore(mem_, inst.addr, inst.bytes, now);
    } else {
        if (!lsu.canIssueLoad())
            return false;
        mem_budget -= strided ? cfg_.memIssueWidth : 1;
        inst.issued = true;
        inst.readyCycle =
            strided ? lsu.issueGather(mem_, inst.addr, inst.elemBytes,
                                      inst.stride, inst.activeElems,
                                      now)
                    : lsu.issueLoad(mem_, inst.addr, inst.bytes, now);
        if (inst.dstPhys >= 0)
            regfile_.setReadyAt(inst.dstPhys, inst.readyCycle);
    }
    ++cs.memIssued;
    if (sink_ && sink_->wants(obs::EventKind::Issue))
        sink_->record(pipeEvent(now, obs::EventKind::Issue, inst));
    return true;
}

void
CoProcessor::issueStage(Cycle now)
{
    if (model_.sharedIssueBudgets()) {
        // One full-width unit: issue budgets shared by all cores,
        // arbitrated round-robin for fairness.
        unsigned compute_budget = cfg_.computeIssueWidth;
        unsigned mem_budget = cfg_.memIssueWidth;
        const unsigned n = static_cast<unsigned>(cores_.size());
        bool progress = true;
        std::vector<std::size_t> cursor(n, 0);
        while (progress && (compute_budget > 0 || mem_budget > 0)) {
            progress = false;
            for (unsigned i = 0; i < n; ++i) {
                const CoreId c =
                    static_cast<CoreId>((rr_start_ + i) % n);
                CoreState &cs = cores_[c];
                // Find the next issueable entry for this core.
                for (std::size_t k = cursor[c]; k < cs.iq.size(); ++k) {
                    if (tryIssue(c, cs.iq[k], now, compute_budget,
                                 mem_budget)) {
                        cs.iq.erase(cs.iq.begin() +
                                    static_cast<std::ptrdiff_t>(k));
                        cursor[c] = k;
                        progress = true;
                        break;
                    }
                }
            }
        }
        rr_start_ = (rr_start_ + 1) % n;
    } else {
        for (unsigned c = 0; c < cores_.size(); ++c) {
            CoreState &cs = cores_[c];
            if (!model_.issueEligible(rt_, static_cast<CoreId>(c)))
                continue;
            unsigned compute_budget = cfg_.computeIssueWidth;
            unsigned mem_budget = cfg_.memIssueWidth;
            for (std::size_t k = 0; k < cs.iq.size();) {
                if (compute_budget == 0 && mem_budget == 0)
                    break;
                if (tryIssue(static_cast<CoreId>(c), cs.iq[k], now,
                             compute_budget, mem_budget)) {
                    cs.iq.erase(cs.iq.begin() +
                                static_cast<std::ptrdiff_t>(k));
                } else {
                    ++k;
                }
            }
        }
    }
}

void
CoProcessor::renameStage(Cycle now)
{
    // Rotate the per-cycle rename order so scarce shared physical
    // registers (FTS) are allocated fairly across cores.
    for (unsigned i = 0; i < cores_.size(); ++i) {
        const CoreId c =
            static_cast<CoreId>((now + i) % cores_.size());
        CoreState &cs = cores_[c];
        unsigned width = cfg_.transmitWidth;
        bool reg_stall = false;
        bool other_stall = false;
        while (width > 0 && !cs.pool.empty()) {
            DynInst &inst = cs.pool.front();
            if (inst.enqueueCycle + cfg_.retireDelay > now)
                break;
            if (cs.rob.size() >= cfg_.robEntries ||
                iqLoad(c) >= cfg_.issueQueueEntries) {
                other_stall = true;
                break;
            }
            // Rename sources.
            for (unsigned i = 0; i < inst.nsrc; ++i)
                inst.srcPhys[i] =
                    inst.srcArch[i] >= 0
                        ? regfile_.mapping(c, inst.srcArch[i])
                        : -1;
            // Allocate the destination row.
            if (inst.dstArch >= 0) {
                const std::int32_t phys = regfile_.alloc(c);
                if (phys < 0) {
                    reg_stall = true;
                    break;
                }
                inst.dstPhys = phys;
                regfile_.setReadyAt(phys, kCycleNever);
                inst.prevPhys = regfile_.rename(c, inst.dstArch, phys);
            }
            const SeqNum seq = cs.robBase + cs.rob.size();
            inst.seq = seq;
            cs.iq.push_back(seq);
            cs.rob.push_back(inst);
            if (sink_ && sink_->wants(obs::EventKind::Dispatch))
                sink_->record(pipeEvent(now, obs::EventKind::Dispatch,
                                        cs.rob.back()));
            cs.pool.pop_front();
            --width;
        }
        if (reg_stall)
            ++cs.regStallCycles;
        else if (other_stall)
            ++cs.otherStallCycles;
        if ((reg_stall || other_stall) && sink_ &&
            sink_->wants(obs::EventKind::RenameStall)) {
            obs::Event ev;
            ev.cycle = now;
            ev.kind = obs::EventKind::RenameStall;
            ev.core = c;
            ev.a = reg_stall ? 1 : 0;
            sink_->record(ev);
        }
    }
}

void
CoProcessor::applyVl(CoreId c, unsigned target, Cycle now)
{
    dispatch_cfg_.release(c);
    regfile_cfg_.release(c);
    if (target > 0) {
        const bool ok_d = dispatch_cfg_.assign(c, target);
        const bool ok_r = regfile_cfg_.assign(c, target);
        assert(ok_d && ok_r);
        (void)ok_d;
        (void)ok_r;
    }
    regfile_.resetCore(c);
    rt_.retarget(c, target);
    assert(rt_.al() == dispatch_cfg_.countFree());
    ++vl_switches_;
    // Ownership changed: rule-based policies refresh <decision> here,
    // eagerly, so skipped (fast-forwarded) cycles never miss one.
    model_.updateDecisions(cfg_, rt_);
    if (sink_ && sink_->wants(obs::EventKind::VlApply)) {
        obs::Event ev;
        ev.cycle = now;
        ev.kind = obs::EventKind::VlApply;
        ev.core = c;
        ev.a = target;
        ev.b = rt_.al();
        sink_->record(ev);
    }
}

bool
CoProcessor::execEmSimd(CoreId c, const DynInst &inst, Cycle now)
{
    CoreState &cs = cores_[c];
    switch (inst.op) {
      case Opcode::MsrOI:
        rt_.core(c).oi = inst.oi;
        if (sink_ && sink_->wants(obs::EventKind::OiUpdate)) {
            obs::Event ev;
            ev.cycle = now;
            ev.kind = obs::EventKind::OiUpdate;
            ev.core = c;
            ev.a = static_cast<std::uint64_t>(inst.oi.level);
            ev.x = inst.oi.issue;
            ev.y = inst.oi.mem;
            sink_->record(ev);
        }
        if (model_.usesLaneManager())
            lane_mgr_.notifyPhaseEvent(now);
        // Phase activity changed: rule-based policies republish
        // <decision> eagerly (no-op for the LaneMgr-driven policy).
        model_.updateDecisions(cfg_, rt_);
        return true;

      case Opcode::MsrVL: {
        const unsigned target = vlTarget(c, inst);

        // Injected transient denial: the Manager answers busy
        // (<status> = false) regardless of what the policy would say.
        // Releases (target 0) are exempt so epilogues always complete.
        if (injector_ && target != 0 && injector_->vlDenied(c, now)) {
            cs.cfgDelayUntil = 0;
            rt_.core(c).status = false;
            cs.vlReq = VlRequestStatus{true, false};
            return true;
        }

        const policy::VlOutcome out =
            model_.resolveVl(cfg_, rt_, c, target, coreDrained(c));

        if (out.action == policy::VlOutcome::Action::Wait) {
            // Wait at the head of the EM-SIMD queue until the SIMD
            // pipeline of this core is drained (Section 4.2.2
            // condition (2)).
            return false;
        }

        if (out.action == policy::VlOutcome::Action::Reject) {
            cs.cfgDelayUntil = 0;
            rt_.core(c).status = false;
            cs.vlReq = VlRequestStatus{true, false};
            return true;
        }

        if (model_.fullWidthExecution()) {
            // No ownership tables to update: <VL> is written directly.
            rt_.core(c).vl = out.vl;
            rt_.core(c).status = true;
        } else if (out.vl == rt_.core(c).vl) {
            cs.cfgDelayUntil = 0;
            rt_.core(c).status = true;
        } else {
            // A granted resize rewrites Dispatch.Cfg/RegFile.Cfg; an
            // injected reconfiguration delay stalls that rewrite at the
            // queue head. Once armed the deadline sticks even if the
            // fault window closes meanwhile.
            if (injector_) {
                if (cs.cfgDelayUntil == 0) {
                    const Cycle d = injector_->reconfigExtraDelay(c, now);
                    if (d > 0) {
                        cs.cfgDelayUntil = now + d;
                        return false;
                    }
                } else if (now < cs.cfgDelayUntil) {
                    return false;
                } else {
                    cs.cfgDelayUntil = 0;
                }
            }
            applyVl(c, out.vl, now);
            OCCAMY_LOG(now, "Coproc", "core%u vl -> %u (al=%u)", c,
                       out.vl, rt_.al());
        }
        cs.vlReq = VlRequestStatus{true, true};
        return true;
      }

      case Opcode::MrsVL:
      case Opcode::MrsStatus:
      case Opcode::MrsDecision:
      case Opcode::MrsAL:
        // Reads complete immediately; the front-end already consumed the
        // architectural value (speculative transmission, Section 4.1.1).
        return true;

      default:
        assert(false && "non-EM-SIMD instruction in EM-SIMD queue");
        return true;
    }
}

bool
CoProcessor::emHeadWaits(CoreId c, const DynInst &inst, Cycle now) const
{
    // Mirrors execEmSimd: only a MsrVL the policy resolves to Wait (a
    // real, grantable resize of an undrained pipeline) or one stalled
    // by an armed injected reconfiguration delay waits. Every other
    // head retires when executed.
    if (inst.op != Opcode::MsrVL)
        return false;
    const unsigned target = vlTarget(c, inst);
    if (injector_ && target != 0 && injector_->vlDenied(c, now))
        return false;       // Denied: retires as a reject.
    const policy::VlOutcome out =
        model_.resolveVl(cfg_, rt_, c, target, coreDrained(c));
    if (out.action == policy::VlOutcome::Action::Wait)
        return true;
    if (out.action == policy::VlOutcome::Action::Grant &&
        !model_.fullWidthExecution() && out.vl != rt_.core(c).vl) {
        // Grant-with-change: waiting only while an already-armed delay
        // deadline lies ahead. An unarmed but active delay window means
        // the next execution *arms* it — a state change, so not a wait.
        const Cycle du = cores_[c].cfgDelayUntil;
        if (du > now)
            return true;
    }
    return false;
}

unsigned
CoProcessor::vlTarget(CoreId c, const DynInst &inst) const
{
    if (inst.vlFromDecision) {
        const unsigned d = rt_.core(c).decision;
        return d > 0 ? d : rt_.core(c).vl;
    }
    return inst.imm;
}

void
CoProcessor::managerStage(Cycle now)
{
    // Publish a due lane-partition plan into <decision> (Section 5).
    if (model_.usesLaneManager() && lane_mgr_.planDue(now)) {
        const auto plan = lane_mgr_.makePlan(rt_.allOIs(), now);
        for (unsigned c = 0; c < cores_.size(); ++c)
            rt_.core(static_cast<CoreId>(c)).decision = plan[c];
        ++plans_published_;
        OCCAMY_LOG(now, "LaneMgr", "plan: c0=%u c1=%u", plan[0],
                   plan.size() > 1 ? plan[1] : 0);
    }

    // The EM-SIMD data path decodes 2 instructions per cycle (Fig. 5),
    // in order per core.
    unsigned budget = 2;
    const unsigned n = static_cast<unsigned>(cores_.size());
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        const CoreId c = static_cast<CoreId>((now + i) % n);
        CoreState &cs = cores_[c];
        while (budget > 0 && !cs.emq.empty()) {
            if (!execEmSimd(c, cs.emq.front(), now))
                break;      // Head is waiting (e.g. for drain).
            // Count executed instructions, not drain-wait retries of
            // the queue head: a waiting head must be an exact no-op so
            // the fast-forward engine can skip drain cycles.
            ++em_insts_;
            cs.emq.pop_front();
            --budget;
        }
    }
}

std::uint64_t
CoProcessor::computeIssued(CoreId c) const
{
    return cores_[c].computeIssued;
}

std::uint64_t
CoProcessor::memIssued(CoreId c) const
{
    return cores_[c].memIssued;
}

std::uint64_t
CoProcessor::computeIssuedInPhase(CoreId c, unsigned phase) const
{
    const auto &v = cores_[c].phaseCompute;
    return phase < v.size() ? v[phase] : 0;
}

std::uint64_t
CoProcessor::renameRegStallCycles(CoreId c) const
{
    return cores_[c].regStallCycles;
}

std::uint64_t
CoProcessor::renameOtherStallCycles(CoreId c) const
{
    return cores_[c].otherStallCycles;
}

void
CoProcessor::regStats(stats::Group &group) const
{
    group.addCounter("vl_switches", &vl_switches_,
                     "successful vector-length reconfigurations");
    group.addCounter("em_insts", &em_insts_,
                     "EM-SIMD instructions executed");
    group.addCounter("plans_published", &plans_published_,
                     "lane-partition plans published");
    group.addCounter("lane_faults", &lane_faults_,
                     "ExeBU hard faults applied");
    for (unsigned c = 0; c < cores_.size(); ++c) {
        const std::string p = "core" + std::to_string(c) + ".";
        group.addFormula(p + "compute_issued",
                         [this, c] {
                             return static_cast<double>(
                                 cores_[c].computeIssued);
                         },
                         "SIMD compute instructions issued");
        group.addFormula(p + "mem_issued",
                         [this, c] {
                             return static_cast<double>(
                                 cores_[c].memIssued);
                         },
                         "SIMD ld/st instructions issued");
        group.addFormula(p + "rename_reg_stall_cycles",
                         [this, c] {
                             return static_cast<double>(
                                 cores_[c].regStallCycles);
                         },
                         "cycles renaming blocked on free registers");
    }
}

namespace
{

void
saveInst(occamy::ckpt::Writer &w, const occamy::DynInst &d)
{
    w.u16(static_cast<std::uint16_t>(d.op));
    w.u16(static_cast<std::uint16_t>(d.core));
    w.u64(d.seq);
    w.u16(d.phaseId);
    w.i64(d.dstArch);
    for (std::int16_t a : d.srcArch)
        w.i64(a);
    w.u8(d.nsrc);
    w.u16(d.vlBus);
    w.u16(d.activeLanes);
    w.u16(d.activeElems);
    w.u64(d.addr);
    w.u32(d.bytes);
    w.i64(d.stride);
    w.u8(d.elemBytes);
    w.f64(d.oi.issue);
    w.f64(d.oi.mem);
    w.u8(static_cast<std::uint8_t>(d.oi.level));
    w.u32(d.imm);
    w.b(d.vlFromDecision);
    w.i64(d.dstPhys);
    w.i64(d.prevPhys);
    for (std::int32_t p : d.srcPhys)
        w.i64(p);
    w.u64(d.enqueueCycle);
    w.u64(d.readyCycle);
    w.b(d.issued);
    w.b(d.completed);
}

occamy::DynInst
loadInst(occamy::ckpt::Reader &r)
{
    occamy::DynInst d;
    d.op = static_cast<occamy::Opcode>(r.u16());
    d.core = static_cast<occamy::CoreId>(r.u16());
    d.seq = r.u64();
    d.phaseId = r.u16();
    d.dstArch = static_cast<std::int16_t>(r.i64());
    for (std::int16_t &a : d.srcArch)
        a = static_cast<std::int16_t>(r.i64());
    d.nsrc = r.u8();
    d.vlBus = r.u16();
    d.activeLanes = r.u16();
    d.activeElems = r.u16();
    d.addr = r.u64();
    d.bytes = r.u32();
    d.stride = static_cast<std::int32_t>(r.i64());
    d.elemBytes = r.u8();
    d.oi.issue = r.f64();
    d.oi.mem = r.f64();
    d.oi.level = static_cast<occamy::MemLevel>(r.u8());
    d.imm = r.u32();
    d.vlFromDecision = r.b();
    d.dstPhys = static_cast<std::int32_t>(r.i64());
    d.prevPhys = static_cast<std::int32_t>(r.i64());
    for (std::int32_t &sp : d.srcPhys)
        sp = static_cast<std::int32_t>(r.i64());
    d.enqueueCycle = r.u64();
    d.readyCycle = r.u64();
    d.issued = r.b();
    d.completed = r.b();
    return d;
}

void
saveInstSeq(occamy::ckpt::Writer &w, const occamy::InstRing &seq)
{
    w.u64(seq.size());
    for (const occamy::DynInst &d : seq)
        saveInst(w, d);
}

void
loadInstSeq(occamy::ckpt::Reader &r, occamy::InstRing &seq)
{
    seq.clear();
    const std::size_t n = r.arr();
    occamy::ckpt::Reader::check(
        n <= seq.capacity(),
        "checkpoint instruction queue exceeds its configured capacity");
    for (std::size_t i = 0; i < n; ++i)
        seq.push_back(loadInst(r));
}

} // namespace

void
CoProcessor::save(ckpt::Writer &w) const
{
    w.section("coproc");
    rt_.save(w);
    dispatch_cfg_.save(w);
    regfile_cfg_.save(w);
    regfile_.save(w);
    lane_mgr_.save(w);

    w.u64(cores_.size());
    for (const CoreState &cs : cores_) {
        saveInstSeq(w, cs.pool);
        saveInstSeq(w, cs.rob);
        w.u64(cs.robBase);
        w.u64(cs.iq.size());
        for (SeqNum s : cs.iq)
            w.u64(s);
        cs.lsu.save(w);
        saveInstSeq(w, cs.emq);
        w.b(cs.vlReq.resolved);
        w.b(cs.vlReq.ok);
        w.u64(cs.cfgDelayUntil);
        w.u64(cs.computeIssued);
        w.u64(cs.memIssued);
        w.u64(cs.phaseCompute.size());
        for (std::uint64_t v : cs.phaseCompute)
            w.u64(v);
        w.u64(cs.regStallCycles);
        w.u64(cs.otherStallCycles);
    }

    w.u64(busy_lanes_.size());
    for (unsigned b : busy_lanes_)
        w.u32(b);
    w.u32(rr_start_);

    w.u64(vl_switches_.value());
    w.u64(em_insts_.value());
    w.u64(plans_published_.value());
    w.u64(lane_faults_.value());
}

void
CoProcessor::load(ckpt::Reader &r)
{
    r.expectSection("coproc");
    rt_.load(r);
    dispatch_cfg_.load(r);
    regfile_cfg_.load(r);
    regfile_.load(r);
    lane_mgr_.load(r);

    ckpt::Reader::check(r.arr() == cores_.size(),
                        "checkpoint co-processor core count mismatch");
    for (CoreState &cs : cores_) {
        loadInstSeq(r, cs.pool);
        loadInstSeq(r, cs.rob);
        cs.robBase = r.u64();
        cs.iq.resize(r.arr());
        for (SeqNum &s : cs.iq)
            s = r.u64();
        cs.lsu.load(r);
        loadInstSeq(r, cs.emq);
        cs.vlReq.resolved = r.b();
        cs.vlReq.ok = r.b();
        cs.cfgDelayUntil = r.u64();
        cs.computeIssued = r.u64();
        cs.memIssued = r.u64();
        cs.phaseCompute.resize(r.arr());
        for (std::uint64_t &v : cs.phaseCompute)
            v = r.u64();
        cs.regStallCycles = r.u64();
        cs.otherStallCycles = r.u64();
    }

    ckpt::Reader::check(r.arr() == busy_lanes_.size(),
                        "checkpoint busy-lane vector size mismatch");
    for (unsigned &b : busy_lanes_)
        b = r.u32();
    rr_start_ = r.u32();

    vl_switches_.set(r.u64());
    em_insts_.set(r.u64());
    plans_published_.set(r.u64());
    lane_faults_.set(r.u64());
}

void
CoProcessor::printState(std::ostream &os, const std::string &what) const
{
    if (what == "rt") {
        os << "al " << rt_.al() << '\n'
           << "usable_bus " << rt_.usableBus() << '\n'
           << "faulted " << rt_.faulted() << '\n';
        for (CoreId c = 0; c < static_cast<CoreId>(cores_.size()); ++c) {
            const auto &pc = rt_.core(c);
            os << "core" << c << ".vl " << pc.vl << '\n'
               << "core" << c << ".decision " << pc.decision << '\n'
               << "core" << c << ".status " << (pc.status ? 1 : 0) << '\n'
               << "core" << c << ".oi.issue " << pc.oi.issue << '\n'
               << "core" << c << ".oi.mem " << pc.oi.mem << '\n';
        }
        return;
    }
    if (what == "lanemgr") {
        os << "total_bus " << lane_mgr_.totalBus() << '\n'
           << "plan_ready_at " << lane_mgr_.planReadyAt() << '\n'
           << "plans_made " << lane_mgr_.plansMade() << '\n';
        return;
    }
    if (what == "regfile") {
        os << "shared " << (regfile_.shared() ? 1 : 0) << '\n';
        for (CoreId c = 0; c < static_cast<CoreId>(cores_.size()); ++c)
            os << "core" << c << ".free_rows " << regfile_.freeCount(c)
               << '\n';
        return;
    }
    if (!what.empty()) {
        // Decimal core id: that core's pipeline occupancy.
        const std::size_t c = std::stoul(what);
        if (c >= cores_.size())
            throw std::out_of_range("no such core: " + what);
        const CoreState &cs = cores_[c];
        os << "pool " << cs.pool.size() << '\n'
           << "rob " << cs.rob.size() << '\n'
           << "rob_base " << cs.robBase << '\n'
           << "iq " << cs.iq.size() << '\n'
           << "emq " << cs.emq.size() << '\n'
           << "lq " << cs.lsu.loadQueueOccupancy() << '\n'
           << "sq " << cs.lsu.storeQueueOccupancy() << '\n'
           << "compute_issued " << cs.computeIssued << '\n'
           << "mem_issued " << cs.memIssued << '\n'
           << "vl " << rt_.core(static_cast<CoreId>(c)).vl << '\n';
        return;
    }
    os << "cores " << cores_.size() << '\n'
       << "free_bus " << rt_.al() << '\n'
       << "usable_bus " << rt_.usableBus() << '\n'
       << "rr_start " << rr_start_ << '\n'
       << "vl_switches " << vl_switches_.value() << '\n'
       << "em_insts " << em_insts_.value() << '\n'
       << "plans_published " << plans_published_.value() << '\n'
       << "lane_faults " << lane_faults_.value() << '\n';
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        const CoreState &cs = cores_[c];
        os << "core" << c << ".inflight "
           << (cs.pool.size() + cs.rob.size() + cs.emq.size()) << '\n';
    }
}

} // namespace occamy
