/**
 * @file
 * Versioned binary checkpoint streams (DESIGN.md §11).
 *
 * A checkpoint is a little-endian byte stream with a fixed header
 * (magic "OCKP", format version), a sequence of named sections, and
 * an FNV-1a checksum trailer covering every byte in between.  The
 * Writer/Reader pair below is deliberately dumb: fixed-width scalars,
 * length-prefixed strings, and section markers.  All policy about
 * *what* goes in a checkpoint lives with the components themselves
 * (each stateful class has save/load members) and in
 * System::saveCheckpoint, which owns the section order.
 *
 * Failure handling is exception-based: every malformed input —
 * wrong magic, unsupported version, truncation, checksum mismatch,
 * section-name drift, implausible array lengths — throws ckpt::Error
 * with a message naming the problem.  Readers never return partially
 * restored state to the caller: System::restoreCheckpoint builds the
 * target into a fresh context and only installs it after finish()
 * verifies the trailer.
 */

#ifndef OCCAMY_CKPT_CKPT_HH
#define OCCAMY_CKPT_CKPT_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace occamy::ckpt
{

/** Every checkpoint failure mode surfaces as this exception. */
class Error : public std::runtime_error
{
public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

/** "OCKP" read back as a little-endian u32. */
constexpr std::uint32_t kMagic = 0x504B434FU;

/**
 * Bump on any layout change.  Policy (DESIGN.md §11): there is no
 * in-place migration — a reader accepts exactly its own version and
 * rejects everything else with a message naming both versions, so a
 * stale file fails loudly instead of deserializing garbage.
 */
constexpr std::uint32_t kVersion = 1;

/** Serializes scalars to a stream while accumulating the checksum. */
class Writer
{
public:
    /** Writes the magic/version header immediately. */
    explicit Writer(std::ostream &os);

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    /** Bit-exact: the IEEE-754 pattern round-trips unchanged. */
    void f64(double v);
    void b(bool v);
    void str(const std::string &s);

    /** Marks the start of a named section (Reader::expectSection). */
    void section(const char *name);

    /** Writes the checksum trailer; the Writer is dead afterwards. */
    void finish();

private:
    void byte(unsigned char c);

    std::ostream &os_;
    std::uint64_t hash_;
    bool finished_ = false;
};

/** Mirror of Writer; throws Error on any malformed input. */
class Reader
{
public:
    /** Validates the magic/version header immediately. */
    explicit Reader(std::istream &is);

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool b();
    std::string str();

    /**
     * Reads an array length and rejects implausible values so a
     * corrupt stream fails cleanly instead of attempting a huge
     * allocation before the checksum check is reached.
     */
    std::size_t arr(std::size_t maxElems = (std::size_t{1} << 28));

    /** Reads a section marker; mismatch means drift or corruption. */
    void expectSection(const char *name);

    /** Convenience guard: throws Error(msg) when cond is false. */
    static void check(bool cond, const std::string &msg);

    /** Verifies the checksum trailer and that the payload is spent. */
    void finish();

private:
    unsigned char byte();

    std::istream &is_;
    std::uint64_t hash_;
};

} // namespace occamy::ckpt

#endif // OCCAMY_CKPT_CKPT_HH
