/**
 * @file
 * Checkpoint save/load definitions for the header-only components
 * (Lsu, ResourceTable, ConfigTable, LaneMgr).  Grouping them in one
 * translation unit keeps those headers free of the serialization
 * machinery; classes with their own .cc file define the hooks there.
 */

#include "ckpt/ckpt.hh"
#include "coproc/lsu.hh"
#include "coproc/tables.hh"
#include "lanemgr/lanemgr.hh"

namespace occamy
{

namespace
{

/** Serialize a Cycle min-heap as its ascending drain order. */
void
saveHeap(ckpt::Writer &w,
         std::priority_queue<Cycle, std::vector<Cycle>,
                             std::greater<Cycle>> heap)
{
    w.u64(heap.size());
    while (!heap.empty()) {
        w.u64(heap.top());
        heap.pop();
    }
}

void
loadHeap(ckpt::Reader &r,
         std::priority_queue<Cycle, std::vector<Cycle>,
                             std::greater<Cycle>> &heap)
{
    heap = {};
    const std::size_t n = r.arr();
    for (std::size_t i = 0; i < n; ++i)
        heap.push(r.u64());
}

} // namespace

// ------------------------------------------------------------------ Lsu

void
Lsu::save(ckpt::Writer &w) const
{
    w.section("lsu");
    saveHeap(w, lq_);
    saveHeap(w, sq_);
    w.u64(loads_.value());
    w.u64(stores_.value());
}

void
Lsu::load(ckpt::Reader &r)
{
    r.expectSection("lsu");
    loadHeap(r, lq_);
    loadHeap(r, sq_);
    ckpt::Reader::check(lq_.size() <= lq_capacity_ &&
                            sq_.size() <= sq_capacity_,
                        "checkpoint LSU occupancy exceeds queue capacity");
    loads_.set(r.u64());
    stores_.set(r.u64());
}

// -------------------------------------------------------- ResourceTable

void
ResourceTable::save(ckpt::Writer &w) const
{
    w.section("rt");
    w.u64(core_.size());
    for (const PerCore &pc : core_) {
        w.f64(pc.oi.issue);
        w.f64(pc.oi.mem);
        w.u8(static_cast<std::uint8_t>(pc.oi.level));
        w.u32(pc.decision);
        w.u32(pc.vl);
        w.b(pc.status);
    }
    w.u32(al_);
    w.u32(total_);
    w.u32(faulted_);
}

void
ResourceTable::load(ckpt::Reader &r)
{
    r.expectSection("rt");
    ckpt::Reader::check(r.arr() == core_.size(),
                        "checkpoint resource table core count mismatch");
    for (PerCore &pc : core_) {
        pc.oi.issue = r.f64();
        pc.oi.mem = r.f64();
        pc.oi.level = static_cast<MemLevel>(r.u8());
        pc.decision = r.u32();
        pc.vl = r.u32();
        pc.status = r.b();
    }
    al_ = r.u32();
    ckpt::Reader::check(r.u32() == total_,
                        "checkpoint resource table ExeBU count mismatch");
    faulted_ = r.u32();
}

// ---------------------------------------------------------- ConfigTable

void
ConfigTable::save(ckpt::Writer &w) const
{
    w.section("cfgtbl");
    w.u64(owner_.size());
    for (CoreId o : owner_)
        w.u16(static_cast<std::uint16_t>(o));
}

void
ConfigTable::load(ckpt::Reader &r)
{
    r.expectSection("cfgtbl");
    ckpt::Reader::check(r.arr() == owner_.size(),
                        "checkpoint config table size mismatch");
    for (CoreId &o : owner_)
        o = static_cast<CoreId>(r.u16());
}

// -------------------------------------------------------------- LaneMgr

void
LaneMgr::save(ckpt::Writer &w) const
{
    w.section("lanemgr");
    w.u64(plan_ready_at_);
    w.u32(total_bus_);
    w.u64(plans_made_.value());
}

void
LaneMgr::load(ckpt::Reader &r)
{
    r.expectSection("lanemgr");
    plan_ready_at_ = r.u64();
    total_bus_ = r.u32();
    plans_made_.set(r.u64());
}

} // namespace occamy
