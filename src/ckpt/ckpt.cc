#include "ckpt/ckpt.hh"

#include <cstring>
#include <istream>
#include <ostream>

namespace occamy::ckpt
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/** Section markers get a fixed sentinel so drift is caught early. */
constexpr std::uint32_t kSectionTag = 0x5EC70000U;

std::uint64_t
fnv1a(std::uint64_t h, unsigned char c)
{
    return (h ^ c) * kFnvPrime;
}

} // namespace

// --------------------------------------------------------------- Writer

Writer::Writer(std::ostream &os) : os_(os), hash_(kFnvOffset)
{
    u32(kMagic);
    u32(kVersion);
}

void
Writer::byte(unsigned char c)
{
    hash_ = fnv1a(hash_, c);
    os_.put(static_cast<char>(c));
}

void
Writer::u8(std::uint8_t v)
{
    byte(v);
}

void
Writer::u16(std::uint16_t v)
{
    byte(static_cast<unsigned char>(v & 0xFF));
    byte(static_cast<unsigned char>(v >> 8));
}

void
Writer::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        byte(static_cast<unsigned char>((v >> (8 * i)) & 0xFF));
}

void
Writer::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        byte(static_cast<unsigned char>((v >> (8 * i)) & 0xFF));
}

void
Writer::i64(std::int64_t v)
{
    u64(static_cast<std::uint64_t>(v));
}

void
Writer::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
Writer::b(bool v)
{
    u8(v ? 1 : 0);
}

void
Writer::str(const std::string &s)
{
    u64(s.size());
    for (char c : s)
        byte(static_cast<unsigned char>(c));
}

void
Writer::section(const char *name)
{
    u32(kSectionTag);
    str(name);
}

void
Writer::finish()
{
    if (finished_)
        return;
    finished_ = true;
    // The trailer itself is not hashed: freeze the digest first.
    const std::uint64_t digest = hash_;
    u64(digest);
    os_.flush();
    if (!os_)
        throw Error("checkpoint write failed (output stream error)");
}

// --------------------------------------------------------------- Reader

Reader::Reader(std::istream &is) : is_(is), hash_(kFnvOffset)
{
    const std::uint32_t magic = u32();
    if (magic != kMagic)
        throw Error("not an Occamy checkpoint (bad magic)");
    const std::uint32_t version = u32();
    if (version != kVersion)
        throw Error("unsupported checkpoint format version " +
                    std::to_string(version) + " (this build reads version " +
                    std::to_string(kVersion) +
                    (version > kVersion ? "; the file is from a newer build)"
                                        : "; re-create the checkpoint)"));
}

unsigned char
Reader::byte()
{
    const int c = is_.get();
    if (c == std::istream::traits_type::eof())
        throw Error("truncated checkpoint (unexpected end of stream)");
    const auto uc = static_cast<unsigned char>(c);
    hash_ = fnv1a(hash_, uc);
    return uc;
}

std::uint8_t
Reader::u8()
{
    return byte();
}

std::uint16_t
Reader::u16()
{
    std::uint16_t v = byte();
    v = static_cast<std::uint16_t>(v | (std::uint16_t{byte()} << 8));
    return v;
}

std::uint32_t
Reader::u32()
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{byte()} << (8 * i);
    return v;
}

std::uint64_t
Reader::u64()
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{byte()} << (8 * i);
    return v;
}

std::int64_t
Reader::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
Reader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

bool
Reader::b()
{
    const std::uint8_t v = u8();
    check(v <= 1, "corrupt checkpoint (bad boolean)");
    return v != 0;
}

std::string
Reader::str()
{
    const std::size_t n = arr();
    std::string s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(static_cast<char>(byte()));
    return s;
}

std::size_t
Reader::arr(std::size_t maxElems)
{
    const std::uint64_t n = u64();
    if (n > maxElems)
        throw Error("corrupt checkpoint (implausible array length " +
                    std::to_string(n) + ")");
    return static_cast<std::size_t>(n);
}

void
Reader::expectSection(const char *name)
{
    if (u32() != kSectionTag)
        throw Error(std::string("corrupt checkpoint (expected section '") +
                    name + "' marker)");
    const std::string got = str();
    if (got != name)
        throw Error("checkpoint section mismatch (expected '" +
                    std::string(name) + "', found '" + got + "')");
}

void
Reader::check(bool cond, const std::string &msg)
{
    if (!cond)
        throw Error(msg);
}

void
Reader::finish()
{
    // Freeze the digest before consuming the (unhashed) trailer.
    const std::uint64_t expect = hash_;
    std::uint64_t trailer = 0;
    for (int i = 0; i < 8; ++i) {
        const int c = is_.get();
        if (c == std::istream::traits_type::eof())
            throw Error("truncated checkpoint (missing checksum trailer)");
        trailer |= std::uint64_t{static_cast<unsigned char>(c)} << (8 * i);
    }
    if (trailer != expect)
        throw Error("corrupt checkpoint (checksum mismatch)");
}

} // namespace occamy::ckpt
