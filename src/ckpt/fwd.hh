/**
 * @file
 * Forward declarations for the checkpoint layer, so stateful
 * component headers can declare save/load hooks without pulling in
 * the full serialization machinery (see ckpt/ckpt.hh).
 */

#ifndef OCCAMY_CKPT_FWD_HH
#define OCCAMY_CKPT_FWD_HH

namespace occamy::ckpt
{
class Writer;
class Reader;
} // namespace occamy::ckpt

#endif // OCCAMY_CKPT_FWD_HH
