/**
 * @file
 * Extension bench (the paper's Section 5 future-work suggestion):
 * letting lane partitioning and OS scheduling work together.
 *
 * A batch of four memory-intensive and four compute-intensive
 * workloads is drained by a 2-core Occamy machine under two dispatch
 * disciplines. FCFS, fed an adversarial queue ordering (all memory
 * first), repeatedly co-runs same-intensity workloads; the OI-aware
 * scheduler consults the roofline with the co-runner's current <OI>
 * and picks complementary workloads, improving makespan and
 * utilization.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/suite.hh"

using namespace occamy;
using namespace occamy::bench;

namespace
{

RunResult
drainBatch(SchedPolicy sched, SharingPolicy policy)
{
    const MachineConfig cfg =
        MachineConfig::Builder(policy).cores(2).sched(sched).build();
    System sys(cfg);
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    // Adversarial order: all memory workloads first, then all compute.
    for (unsigned id : {19u, 8u, 20u, 22u})
        sys.enqueueWorkload("WL" + std::to_string(id),
                            workloads::specWorkload(id).loops);
    for (unsigned id : {16u, 17u, 13u, 18u})
        sys.enqueueWorkload("WL" + std::to_string(id),
                            workloads::specWorkload(id).loops);
    return sys.run({.maxCycles = 80'000'000});
}

} // namespace

int
main()
{
    header("sched_coplacement: co-scheduling + lane partitioning",
           "extension of Section 5 (\"it may be more profitable to let "
           "both work together\")");

    std::printf("\nbatch: 4 memory + 4 compute workloads, adversarial "
                "FCFS order (memory first)\n\n");
    std::printf("%-10s %-10s %12s %10s\n", "dispatch", "arch",
                "makespan", "util");

    Cycle fcfs_makespan = 0;
    for (SharingPolicy arch :
         {SharingPolicy::StaticSpatial, SharingPolicy::Elastic}) {
        for (SchedPolicy sched :
             {SchedPolicy::Fcfs, SchedPolicy::OiAware}) {
            const RunResult r = drainBatch(sched, arch);
            const char *sched_name =
                sched == SchedPolicy::Fcfs ? "FCFS" : "OI-aware";
            std::printf("%-10s %-10s %12llu %9.1f%%\n", sched_name,
                        policyName(arch),
                        static_cast<unsigned long long>(r.cycles),
                        100.0 * r.simdUtil);
            if (arch == SharingPolicy::Elastic &&
                sched == SchedPolicy::Fcfs)
                fcfs_makespan = r.cycles;
            if (arch == SharingPolicy::Elastic &&
                sched == SchedPolicy::OiAware) {
                std::printf("\nOI-aware makespan gain on Occamy: "
                            "%.2fx\n",
                            static_cast<double>(fcfs_makespan) /
                                r.cycles);
                std::printf("\ndispatch trace (OI-aware, Occamy):\n");
                for (const auto &b : r.batch)
                    std::printf("  %-6s -> core%u [%8llu .. %8llu]\n",
                                b.name.c_str(), b.core,
                                static_cast<unsigned long long>(
                                    b.dispatched),
                                static_cast<unsigned long long>(
                                    b.finished));
            }
        }
    }
    return 0;
}
