/**
 * @file
 * Reproduces Table 5: the vector-length-aware roofline's attainable
 * performance (GFLOP/s) for WL8.p1 (rho_eos2: oi_issue = 0.17,
 * oi_mem = 0.25, DRAM-resident) as the vector length varies, showing
 * the SIMD-issue-bandwidth ceiling binding below 12 lanes and the
 * memory ceiling binding beyond.
 */

#include <cstdio>

#include "bench_util.hh"
#include "kir/analysis.hh"
#include "lanemgr/roofline.hh"
#include "workloads/phases.hh"

using namespace occamy;
using namespace occamy::bench;

int
main()
{
    header("table5_roofline: attainable performance for WL8.p1",
           "Table 5, Section 7.4 Case 4");

    // Derive the OI pair from the actual compiled phase, as the Occamy
    // compiler would write it into <OI>.
    const kir::Loop loop = workloads::makeNamedPhase("rho_eos2");
    const MachineConfig cfg;
    const PhaseOI oi =
        kir::phaseOI(loop, cfg.vecCache.sizeBytes, cfg.l2.sizeBytes);
    std::printf("\nphase rho_eos2 (WL8.p1): oi_issue=%.3f oi_mem=%.3f "
                "(paper: 0.17 / 0.25)\n\n", oi.issue, oi.mem);

    const RooflineParams p = RooflineParams::fromConfig(cfg);

    std::printf("%-18s", "VL (lanes)");
    for (unsigned bus = 1; bus <= 8; ++bus)
        std::printf(" %6u", bus * kLanesPerBu);
    std::printf("\n");
    rule(74);

    std::printf("%-18s", "SIMDIssueBound");
    for (unsigned bus = 1; bus <= 8; ++bus)
        std::printf(" %6.1f", simdIssueBandwidth(p, bus) * oi.issue);
    std::printf("\n%-18s", "MemBound");
    for (unsigned bus = 1; bus <= 8; ++bus)
        std::printf(" %6.1f", memBandwidth(p, oi.level) * oi.mem);
    std::printf("\n%-18s", "CompBound");
    for (unsigned bus = 1; bus <= 8; ++bus)
        std::printf(" %6.1f", fpPeak(p, bus));
    std::printf("\n%-18s", "Performance");
    for (unsigned bus = 1; bus <= 8; ++bus)
        std::printf(" %6.1f", attainable(p, oi, bus));
    std::printf("\n");
    rule(74);
    std::printf("paper row (VL=4..32): 5.3 10.7 16 16 16 16 16 16 "
                "(issue-bound < 12 lanes)\n");
    std::printf("roofline knee: %u lanes (paper assigns WL8.p1 "
                "12 lanes)\n", kneeVl(p, oi, 8) * kLanesPerBu);
    return 0;
}
