/**
 * @file
 * Multi-tenant traffic ablation: the full scheduler x sharing-policy x
 * fault-plan cross, replaying one seeded bursty arrival stream (4
 * tenants) under every combination. Because every job sees the exact
 * same arrivals, differences in p99 latency, SLO violations and Jain
 * fairness isolate the dispatch discipline, the SIMD sharing model and
 * the injected DRAM spike. The whole cross is one parallel runner
 * sweep; pass an argument to also dump the sweep as
 * BENCH_traffic.json / BENCH_traffic.csv next to the cwd.
 *
 * The admission section then crosses admission policy x scheduler x
 * load level on one seeded poisson stream and writes the fully
 * deterministic shed/defer/goodput numbers to a JSON report
 * (--admission-out FILE, default BENCH_admission.json) gated in CI by
 * tools/check_bench_ticks.sh against the committed snapshot: the
 * headline evidence that admission control converts SLO violations
 * into explicit sheds under overload.
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_util.hh"
#include "runner/sweep.hh"
#include "traffic/admission.hh"
#include "traffic/arrival.hh"
#include "traffic/scheduler.hh"

using namespace occamy;
using namespace occamy::bench;

namespace
{

/** The two fault regimes of the ablation: fault-free, and a mid-run
 *  DRAM spike (+150 cy latency, 1/4 bandwidth for 300k cycles) that
 *  lands while the bursty stream is still arriving. */
const struct
{
    const char *label;
    const char *plan;
} kFaultRegimes[] = {
    {"none", ""},
    {"dram-spike", "dram@400000+300000:lat=150,bw=4"},
};

/** Sharing-policy ladder: private baseline, both static flavors, and
 *  the elastic model under test. */
const SharingPolicy kSharingLadder[] = {
    SharingPolicy::Private,
    SharingPolicy::StaticSpatial,
    SharingPolicy::StaticSpatialWC,
    SharingPolicy::Elastic,
};

} // namespace

int
main(int argc, char **argv)
{
    header("traffic_ablation: scheduler x sharing x faults on one "
           "seeded bursty stream",
           "multi-tenant extension of Section 5 (not a paper figure)");

    traffic::TrafficConfig base;
    base.process = "bursty";
    base.tenants = 4;
    base.seed = 7;
    base.jobsPerTenant = 4;
    base.meanGapCycles = 120'000.0;
    base.sloCycles = 600'000;

    std::vector<std::string> scheds;
    for (const traffic::Dispatcher *d : traffic::allDispatchers())
        scheds.push_back(d->key());

    // One flat job list: fault-regime-major, then the policy x
    // scheduler cross from trafficSweepJobs (policy-major).
    std::vector<runner::JobSpec> jobs;
    for (const auto &regime : kFaultRegimes) {
        std::vector<SharingPolicy> pols(std::begin(kSharingLadder),
                                        std::end(kSharingLadder));
        auto block = runner::trafficSweepJobs(base, pols, scheds);
        for (auto &spec : block) {
            spec.id = jobs.size();
            spec.label += std::string("/") + regime.label;
            spec.faultPlan = regime.plan;
            jobs.push_back(std::move(spec));
        }
    }

    std::printf("\nstream: %s\n\n", base.describe().c_str());
    const runner::SweepResult sweep = runner::Runner().run(std::move(jobs));

    std::printf("%-32s %9s %6s %10s %10s %8s %9s\n", "scheduler/policy/fault",
                "makespan", "done", "p50", "p99", "jain", "slo_viol");
    for (const auto &j : sweep.jobs) {
        if (!j.ok()) {
            std::fprintf(stderr, "job %s failed: %s\n", j.label.c_str(),
                         j.error.c_str());
            return 1;
        }
        const traffic::TrafficMetrics &m = j.trafficMetrics;
        std::printf("%-32s %9llu %3llu/%-2llu %10.0f %10.0f %8.3f %9llu\n",
                    j.label.c_str(),
                    static_cast<unsigned long long>(j.result.cycles),
                    static_cast<unsigned long long>(m.completed),
                    static_cast<unsigned long long>(m.arrivals),
                    m.latencyP50, m.latencyP99, m.fairnessJain,
                    static_cast<unsigned long long>(m.sloViolations));
    }

    // Digest: per scheduler, the worst p99 over policies, split by
    // fault regime — the headline "which discipline degrades least".
    std::printf("\nworst-case p99 per scheduler (over policies):\n");
    std::printf("  %-8s %12s %12s\n", "sched", "fault-free", "dram-spike");
    for (const std::string &s : scheds) {
        double worst[2] = {0.0, 0.0};
        for (const auto &j : sweep.jobs) {
            const bool spiked =
                j.label.find("dram-spike") != std::string::npos;
            if (j.label.find("/" + s + "/") != std::string::npos) {
                double &w = worst[spiked ? 1 : 0];
                if (j.trafficMetrics.latencyP99 > w)
                    w = j.trafficMetrics.latencyP99;
            }
        }
        std::printf("  %-8s %12.0f %12.0f\n", s.c_str(), worst[0],
                    worst[1]);
    }

    if (argc > 1 && std::strcmp(argv[1], "--no-export") != 0 &&
        std::strcmp(argv[1], "--admission-out") != 0) {
        std::ofstream js("BENCH_traffic.json");
        js << runner::sweepToJson(sweep) << "\n";
        std::ofstream cs("BENCH_traffic.csv");
        runner::writeSweepCsv(cs, sweep);
        std::printf("\nwrote BENCH_traffic.json, BENCH_traffic.csv\n");
    }

    // ------------------------------------------------------------------
    // Admission x scheduler x load cross: one seeded poisson stream at
    // a sustainable and an oversubscribed rate, under every admission
    // policy. Every field in the report is a pure function of the
    // seeded config, so CI gates them exactly.
    std::string adm_out = "BENCH_admission.json";
    for (int a = 1; a + 1 < argc; ++a)
        if (std::strcmp(argv[a], "--admission-out") == 0)
            adm_out = argv[a + 1];

    const struct
    {
        const char *label;
        double gapCycles;
    } kLoads[] = {
        {"light", 200'000.0},   // Arrivals roughly match service.
        {"storm", 25'000.0},    // Arrival rate >> service rate.
    };
    const char *kAdmissions[] = {"none", "static-cap", "token-bucket",
                                 "slo-aware"};
    const char *kScheds[] = {"fcfs", "edf"};

    std::vector<runner::JobSpec> adm_jobs;
    for (const auto &load : kLoads) {
        for (const char *sched : kScheds) {
            for (const char *adm : kAdmissions) {
                runner::JobSpec spec;
                spec.id = adm_jobs.size();
                spec.label = std::string(adm) + "/" + sched + "/" +
                             load.label;
                spec.cfg =
                    MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
                spec.traffic.process = "poisson";
                spec.traffic.tenants = 4;
                spec.traffic.seed = 11;
                spec.traffic.jobsPerTenant = 4;
                spec.traffic.meanGapCycles = load.gapCycles;
                spec.traffic.sloCycles = 600'000;
                spec.traffic.scheduler = sched;
                spec.traffic.admission = adm;
                spec.traffic.admissionCap = 2;
                adm_jobs.push_back(std::move(spec));
            }
        }
    }
    const runner::SweepResult adm_sweep =
        runner::Runner().run(std::move(adm_jobs));

    std::printf("\nadmission x scheduler x load (poisson, 4 tenants, "
                "SLO 600k cycles):\n");
    std::printf("%-28s %9s %6s %5s %6s %8s %9s\n",
                "admission/scheduler/load", "makespan", "done", "shed",
                "defer", "goodput", "slo_viol");
    std::string json = "{\"bench\":\"traffic_admission\",\"scenarios\":[";
    bool adm_first = true;
    for (const auto &j : adm_sweep.jobs) {
        if (!j.ok()) {
            std::fprintf(stderr, "job %s failed: %s\n", j.label.c_str(),
                         j.error.c_str());
            return 1;
        }
        const traffic::TrafficMetrics &m = j.trafficMetrics;
        std::printf("%-28s %9llu %3llu/%-2llu %5llu %6llu %8llu %9llu\n",
                    j.label.c_str(),
                    static_cast<unsigned long long>(j.result.cycles),
                    static_cast<unsigned long long>(m.completed),
                    static_cast<unsigned long long>(m.arrivals),
                    static_cast<unsigned long long>(m.shed),
                    static_cast<unsigned long long>(m.deferrals),
                    static_cast<unsigned long long>(m.goodput),
                    static_cast<unsigned long long>(m.sloViolations));

        std::string name = j.label;
        for (char &c : name)
            if (c == '/')
                c = '_';
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"name\":\"%s\",\"cycles\":%llu,\"arrivals\":%llu,"
            "\"completed\":%llu,\"shed\":%llu,\"deferrals\":%llu,"
            "\"goodput\":%llu,\"slo_violations\":%llu}",
            adm_first ? "" : ",", name.c_str(),
            static_cast<unsigned long long>(j.result.cycles),
            static_cast<unsigned long long>(m.arrivals),
            static_cast<unsigned long long>(m.completed),
            static_cast<unsigned long long>(m.shed),
            static_cast<unsigned long long>(m.deferrals),
            static_cast<unsigned long long>(m.goodput),
            static_cast<unsigned long long>(m.sloViolations));
        json += buf;
        adm_first = false;
    }
    json += "]}";

    std::ofstream js(adm_out);
    js << json << "\n";
    std::printf("wrote %s\n", adm_out.c_str());
    return 0;
}
