/**
 * @file
 * Reproduces Fig. 2 (motivation): co-run the memory-intensive WL#0
 * (654.rom_s phases rho_eos1 + rho_eos4) with the compute-intensive
 * WL#1 (621.wrf_s wsm5 loop) on all four SIMD architectures, printing
 * the per-1000-cycle busy-lane timelines (Fig. 2b-e) and the
 * performance-statistics table (Fig. 2f).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "workloads/phases.hh"

using namespace occamy;
using namespace occamy::bench;

namespace
{

void
printTimeline(const char *tag, const std::vector<double> &lanes,
              double max_lanes)
{
    std::printf("  %-6s |", tag);
    for (std::size_t i = 0; i < lanes.size() && i < 56; ++i) {
        static const char glyphs[] = " .:-=+*#%@";
        const int level = std::min<int>(
            9, static_cast<int>(lanes[i] / max_lanes * 9.999));
        std::putchar(glyphs[level]);
    }
    std::printf("|\n");
}

} // namespace

int
main()
{
    header("fig02_motivation: elastic sharing of a 32-lane co-processor",
           "Fig. 2 (b)-(f), Section 2");

    workloads::Pair pair;
    pair.label = "WL#0(654.rom_s)+WL#1(621.wrf_s)";
    pair.core0.name = "WL#0";
    pair.core0.loops = {workloads::makeNamedPhase("rho_eos1"),
                        workloads::makeNamedPhase("rho_eos4")};
    pair.core1.name = "WL#1";
    pair.core1.loops = {workloads::makeNamedPhase("wsm51")};

    PairResults res = runPair(pair);

    std::printf("\nBusy-lane timelines (each column = 1000 cycles, "
                "scale 0..16 lanes/core private, 0..32 shared):\n");
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        const RunResult &r = res.byPolicy[p];
        std::printf("%s (total %llu cycles)\n", policyName(kPolicies[p]),
                    static_cast<unsigned long long>(r.cycles));
        const double scale =
            kPolicies[p] == SharingPolicy::Private ? 16.0 : 32.0;
        printTimeline("Core0", r.cores[0].busyLanesTimeline, scale);
        printTimeline("Core1", r.cores[1].busyLanesTimeline, scale);
    }

    std::printf("\nFig. 2(f) performance statistics "
                "(paper values in brackets):\n");
    std::printf("%-8s %-12s %-26s %-18s %-14s %-9s\n", "Arch",
                "VL (#lanes)", "SIMD issue rates (/cycle)",
                "Times (x1e5 cyc)", "Speedups", "SIMD util");
    rule(92);
    static const char *paper[] = {
        "[1.00x 1.00x 60.6%]", "[1.00x 1.41x 84.7%]",
        "[1.00x 1.25x 75.6%]", "[0.98x 1.62x 96.7%]"};
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        const RunResult &r = res.byPolicy[p];
        char rates[64];
        std::snprintf(rates, sizeof(rates), "%.2f/%.2f | %.2f",
                      r.cores[0].phases[0].issueRate,
                      r.cores[0].phases[1].issueRate,
                      r.cores[1].phases[0].issueRate);
        char vls[32];
        std::snprintf(vls, sizeof(vls), "%u/%u | %u",
                      r.cores[0].phases[0].firstVl * kLanesPerBu,
                      r.cores[0].phases[1].firstVl * kLanesPerBu,
                      r.cores[1].phases[0].firstVl * kLanesPerBu);
        char times[32];
        std::snprintf(times, sizeof(times), "%.2f %.2f",
                      r.cores[0].finish / 1e5, r.cores[1].finish / 1e5);
        std::printf("%-8s %-12s %-26s %-18s %.2fx %.2fx    %5.1f%%  %s\n",
                    policyName(kPolicies[p]), vls, rates, times,
                    res.speedup(p, 0), res.speedup(p, 1),
                    100.0 * r.simdUtil, paper[p]);
    }

    std::printf("\nLane-partition plans published (Occamy): %llu, "
                "VL switches: %llu\n",
                static_cast<unsigned long long>(res.byPolicy[3].plansMade),
                static_cast<unsigned long long>(
                    res.byPolicy[3].vlSwitches));
    return 0;
}
