/**
 * @file
 * micro_ticks: wall-clock leverage of the quiescence-aware fast-forward
 * engine. Each scenario runs the identical simulation twice — classic
 * tick-every-cycle loop vs. RunOptions::fastForward — verifies the
 * results match, and reports simulated-cycles-per-wall-second for both
 * along with the ticked/simulated ratio and the speedup.
 *
 * Scenarios cover the quiescence patterns the engine exploits:
 *  - batch_idle_heavy: FCFS batch queue behind a long OS context
 *    switch, so the whole machine idles between dispatches (the
 *    headline case: most cycles are skippable).
 *  - scalar_fallback: tiny-trip loops that stay on the scalar fallback
 *    path (trip < the compiler's scalar threshold), leaving the
 *    co-processor drained while cores grind through stall cycles.
 *  - drained_partner: a classic compute+memory co-run where one core
 *    finishes long before the other and sits drained.
 *
 * Usage: micro_ticks [OUT.json]   (default BENCH_ticks.json)
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "sim/trace.hh"
#include "workloads/phases.hh"
#include "workloads/suite.hh"

using namespace occamy;

namespace
{

struct Scenario
{
    std::string name;
    MachineConfig cfg;
    std::vector<std::pair<std::string, std::vector<kir::Loop>>> pinned;
    std::vector<std::pair<std::string, std::vector<kir::Loop>>> batch;
};

struct Measurement
{
    double wallSec = 0.0;           ///< Best-of-reps wall time.
    FastForwardStats ff;
    std::string resultJson;         ///< Canonical trace, for equality.
};

Scenario
batchIdleHeavy()
{
    Scenario s;
    s.name = "batch_idle_heavy";
    s.cfg = MachineConfig::Builder(SharingPolicy::Elastic)
                .cores(2)
                .contextSwitch(1'000'000)
                .build();
    s.pinned = {{"idle0", {}}, {"idle1", {}}};
    for (int i = 0; i < 4; ++i)
        s.batch.push_back({"job" + std::to_string(i),
                           {workloads::makeNamedPhase("wsm51", 16384)}});
    return s;
}

Scenario
scalarFallback()
{
    Scenario s;
    s.name = "scalar_fallback";
    s.cfg = MachineConfig::Builder(SharingPolicy::Elastic)
                .cores(2)
                .build();
    // Trips below the compiler's scalar threshold take the multi-
    // version scalar path: long core-local stalls, drained SIMD.
    std::vector<kir::Loop> tiny;
    for (int i = 0; i < 64; ++i)
        tiny.push_back(workloads::makeNamedPhase("wsm51", 64));
    s.pinned = {{"tiny", tiny}, {"idle", {}}};
    return s;
}

Scenario
drainedPartner()
{
    Scenario s;
    s.name = "drained_partner";
    s.cfg = MachineConfig::Builder(SharingPolicy::Elastic)
                .cores(2)
                .build();
    s.pinned = {{"mem", {workloads::makeNamedPhase("rho_eos1", 8192)}},
                {"comp", {workloads::makeNamedPhase("wsm51", 262144)}}};
    return s;
}

Measurement
measure(const Scenario &s, bool fast_forward, int reps)
{
    Measurement m;
    for (int rep = 0; rep < reps; ++rep) {
        System sys(s.cfg);
        for (std::size_t c = 0; c < s.pinned.size(); ++c)
            sys.setWorkload(static_cast<CoreId>(c), s.pinned[c].first,
                            s.pinned[c].second);
        for (const auto &[name, loops] : s.batch)
            sys.enqueueWorkload(name, loops);

        RunOptions opt;
        opt.fastForward = fast_forward;
        opt.ffStats = &m.ff;

        const auto t0 = std::chrono::steady_clock::now();
        const RunResult r = sys.run(opt);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        if (rep == 0 || sec < m.wallSec)
            m.wallSec = sec;
        if (rep == 0)
            m.resultJson = trace::toJson(r);
    }
    return m;
}

double
cyclesPerSec(const Measurement &m)
{
    return m.wallSec > 0.0
               ? static_cast<double>(m.ff.cyclesSimulated) / m.wallSec
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_ticks.json";
    const int reps = 3;

    const std::vector<Scenario> scenarios = {
        batchIdleHeavy(), scalarFallback(), drainedPartner()};

    std::string json = "{\"bench\":\"micro_ticks\",\"scenarios\":[";
    bool all_match = true;
    bool first = true;

    for (const Scenario &s : scenarios) {
        const Measurement off = measure(s, false, reps);
        const Measurement on = measure(s, true, reps);

        const bool match = on.resultJson == off.resultJson;
        all_match = all_match && match;
        const double speedup =
            on.wallSec > 0.0 ? off.wallSec / on.wallSec : 0.0;
        const double tick_ratio =
            on.ff.cyclesSimulated
                ? static_cast<double>(on.ff.cyclesTicked) /
                      static_cast<double>(on.ff.cyclesSimulated)
                : 1.0;

        std::printf("%-18s %12llu cycles | off %8.0fk cyc/s | "
                    "on %8.0fk cyc/s | ticked %5.1f%% | %5.2fx %s\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(
                        on.ff.cyclesSimulated),
                    cyclesPerSec(off) / 1e3, cyclesPerSec(on) / 1e3,
                    100.0 * tick_ratio, speedup,
                    match ? "" : "RESULT MISMATCH");

        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"name\":\"%s\",\"cycles\":%llu,"
            "\"cycles_ticked\":%llu,\"spans\":%llu,"
            "\"wall_sec_off\":%.6f,\"wall_sec_on\":%.6f,"
            "\"sim_cycles_per_sec_off\":%.0f,"
            "\"sim_cycles_per_sec_on\":%.0f,"
            "\"speedup\":%.3f,\"results_match\":%s}",
            first ? "" : ",", s.name.c_str(),
            static_cast<unsigned long long>(on.ff.cyclesSimulated),
            static_cast<unsigned long long>(on.ff.cyclesTicked),
            static_cast<unsigned long long>(on.ff.spans), off.wallSec,
            on.wallSec, cyclesPerSec(off), cyclesPerSec(on), speedup,
            match ? "true" : "false");
        json += buf;
        first = false;
    }
    json += "]}";

    if (std::FILE *f = std::fopen(out_path.c_str(), "w")) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    if (!all_match) {
        std::fprintf(stderr,
                     "fast-forward changed simulation results\n");
        return 1;
    }
    return 0;
}
