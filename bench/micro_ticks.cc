/**
 * @file
 * micro_ticks: wall-clock leverage of the quiescence-aware fast-forward
 * engine. Each scenario runs the identical simulation twice — classic
 * tick-every-cycle loop vs. RunOptions::fastForward — verifies the
 * results match, and reports simulated-cycles-per-wall-second for both
 * along with the ticked/simulated ratio and the speedup.
 *
 * Scenarios cover the quiescence patterns the engine exploits:
 *  - batch_idle_heavy: FCFS batch queue behind a long OS context
 *    switch, so the whole machine idles between dispatches (the
 *    headline case: most cycles are skippable).
 *  - scalar_fallback: tiny-trip loops that stay on the scalar fallback
 *    path (trip < the compiler's scalar threshold), leaving the
 *    co-processor drained while cores grind through stall cycles.
 *  - drained_partner: a classic compute+memory co-run where one core
 *    finishes long before the other and sits drained.
 *  - parallel_clusters_4x4: a 16-core clustered machine ticked with 1
 *    vs 4 cycle-loop worker threads (RunOptions::simThreads, DESIGN.md
 *    §15). Here "off" is the serial loop and "on" the worker pool; the
 *    results must be byte-identical and the speedup tracks the host's
 *    free cores (~1x on a single-core host, where the barrier only
 *    adds overhead).
 *
 * Usage: micro_ticks [OUT.json]   (default BENCH_ticks.json)
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "sim/trace.hh"
#include "workloads/phases.hh"
#include "workloads/suite.hh"

using namespace occamy;

namespace
{

struct Scenario
{
    std::string name;
    MachineConfig cfg;
    std::vector<std::pair<std::string, std::vector<kir::Loop>>> pinned;
    std::vector<std::pair<std::string, std::vector<kir::Loop>>> batch;

    /** When nonzero, the measured axis is the cycle-loop worker count
     *  (off = 1 thread, on = this many) instead of fast-forward. */
    unsigned simThreadsOn = 0;
};

struct Measurement
{
    double wallSec = 0.0;           ///< Best-of-reps wall time.
    FastForwardStats ff;
    std::string resultJson;         ///< Canonical trace, for equality.
};

Scenario
batchIdleHeavy()
{
    Scenario s;
    s.name = "batch_idle_heavy";
    s.cfg = MachineConfig::Builder(SharingPolicy::Elastic)
                .cores(2)
                .contextSwitch(1'000'000)
                .build();
    s.pinned = {{"idle0", {}}, {"idle1", {}}};
    for (int i = 0; i < 4; ++i)
        s.batch.push_back({"job" + std::to_string(i),
                           {workloads::makeNamedPhase("wsm51", 16384)}});
    return s;
}

Scenario
scalarFallback()
{
    Scenario s;
    s.name = "scalar_fallback";
    s.cfg = MachineConfig::Builder(SharingPolicy::Elastic)
                .cores(2)
                .build();
    // Trips below the compiler's scalar threshold take the multi-
    // version scalar path: long core-local stalls, drained SIMD.
    std::vector<kir::Loop> tiny;
    for (int i = 0; i < 64; ++i)
        tiny.push_back(workloads::makeNamedPhase("wsm51", 64));
    s.pinned = {{"tiny", tiny}, {"idle", {}}};
    return s;
}

Scenario
drainedPartner()
{
    Scenario s;
    s.name = "drained_partner";
    s.cfg = MachineConfig::Builder(SharingPolicy::Elastic)
                .cores(2)
                .build();
    s.pinned = {{"mem", {workloads::makeNamedPhase("rho_eos1", 8192)}},
                {"comp", {workloads::makeNamedPhase("wsm51", 262144)}}};
    return s;
}

/** The fig16 scale-out shape: even clusters lean memory, odd clusters
 *  lean compute, 2*C batch jobs drain through work migration. All four
 *  engines stay busy most of the run, which is exactly the load the
 *  worker pool parallelizes. */
Scenario
parallelClusters()
{
    Scenario s;
    s.name = "parallel_clusters_4x4";
    s.cfg = MachineConfig::Builder(SharingPolicy::Elastic)
                .topology(4, 4)
                .build();
    for (unsigned c = 0; c < 16; ++c) {
        const bool mem = (c / 4) % 2 == 0;
        s.pinned.push_back(
            {mem ? "mem" : "comp",
             {workloads::makeNamedPhase(mem ? "rho_eos1" : "wsm51",
                                        mem ? 2048 : 8192)}});
    }
    for (unsigned q = 0; q < 8; ++q)
        s.batch.push_back(
            {"q" + std::to_string(q),
             {workloads::makeNamedPhase(q % 2 ? "wsm51" : "rho_eos1",
                                        4096)}});
    s.simThreadsOn = 4;
    return s;
}

/** @p on selects the scenario's measured axis: fast-forward for the
 *  classic scenarios, 1-vs-N worker threads when simThreadsOn is set
 *  (fast-forward then stays on in both runs). */
Measurement
measure(const Scenario &s, bool on, int reps)
{
    Measurement m;
    for (int rep = 0; rep < reps; ++rep) {
        System sys(s.cfg);
        for (std::size_t c = 0; c < s.pinned.size(); ++c)
            sys.setWorkload(static_cast<CoreId>(c), s.pinned[c].first,
                            s.pinned[c].second);
        for (const auto &[name, loops] : s.batch)
            sys.enqueueWorkload(name, loops);

        RunOptions opt;
        opt.fastForward = s.simThreadsOn ? true : on;
        opt.simThreads = on && s.simThreadsOn ? s.simThreadsOn : 1;
        opt.ffStats = &m.ff;

        const auto t0 = std::chrono::steady_clock::now();
        const RunResult r = sys.run(opt);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        if (rep == 0 || sec < m.wallSec)
            m.wallSec = sec;
        if (rep == 0)
            m.resultJson = trace::toJson(r);
    }
    return m;
}

double
cyclesPerSec(const Measurement &m)
{
    return m.wallSec > 0.0
               ? static_cast<double>(m.ff.cyclesSimulated) / m.wallSec
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_ticks.json";
    const int reps = 3;

    const std::vector<Scenario> scenarios = {
        batchIdleHeavy(), scalarFallback(), drainedPartner(),
        parallelClusters()};

    std::string json = "{\"bench\":\"micro_ticks\",\"scenarios\":[";
    bool all_match = true;
    bool first = true;

    for (const Scenario &s : scenarios) {
        const Measurement off = measure(s, false, reps);
        const Measurement on = measure(s, true, reps);

        const bool match = on.resultJson == off.resultJson;
        all_match = all_match && match;
        const double speedup =
            on.wallSec > 0.0 ? off.wallSec / on.wallSec : 0.0;
        const double tick_ratio =
            on.ff.cyclesSimulated
                ? static_cast<double>(on.ff.cyclesTicked) /
                      static_cast<double>(on.ff.cyclesSimulated)
                : 1.0;

        std::printf("%-18s %12llu cycles | off %8.0fk cyc/s | "
                    "on %8.0fk cyc/s | ticked %5.1f%% | %5.2fx %s\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(
                        on.ff.cyclesSimulated),
                    cyclesPerSec(off) / 1e3, cyclesPerSec(on) / 1e3,
                    100.0 * tick_ratio, speedup,
                    match ? "" : "RESULT MISMATCH");

        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"name\":\"%s\",\"cycles\":%llu,"
            "\"cycles_ticked\":%llu,\"spans\":%llu,"
            "\"wall_sec_off\":%.6f,\"wall_sec_on\":%.6f,"
            "\"sim_cycles_per_sec_off\":%.0f,"
            "\"sim_cycles_per_sec_on\":%.0f,"
            "\"speedup\":%.3f,\"results_match\":%s",
            first ? "" : ",", s.name.c_str(),
            static_cast<unsigned long long>(on.ff.cyclesSimulated),
            static_cast<unsigned long long>(on.ff.cyclesTicked),
            static_cast<unsigned long long>(on.ff.spans), off.wallSec,
            on.wallSec, cyclesPerSec(off), cyclesPerSec(on), speedup,
            match ? "true" : "false");
        json += buf;
        if (s.simThreadsOn) {
            std::snprintf(buf, sizeof(buf), ",\"sim_threads_on\":%u",
                          s.simThreadsOn);
            json += buf;
        }
        json += "}";
        first = false;
    }
    json += "]}";

    if (std::FILE *f = std::fopen(out_path.c_str(), "w")) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }

    if (!all_match) {
        std::fprintf(stderr,
                     "fast-forward changed simulation results\n");
        return 1;
    }
    return 0;
}
