/**
 * @file
 * Reproduces Fig. 13: the fraction of cycles in which some instruction
 * is blocked in the Renamer waiting for free physical registers. The
 * paper reports >70% of cycles on FTS, on average, versus hardly any on
 * the other three architectures — the cost of keeping per-core
 * full-width register contexts in one shared VRF.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace occamy;
using namespace occamy::bench;

int
main()
{
    header("fig13_rename_stalls: cycles blocked waiting for registers",
           "Fig. 13, Section 7.3");

    std::printf("%-8s | %-17s | %-17s | %-17s | %-17s\n", "",
                "Private", "FTS", "VLS", "Occamy");
    std::printf("%-8s | %8s %8s | %8s %8s | %8s %8s | %8s %8s\n", "pair",
                "Core0", "Core1", "Core0", "Core1", "Core0", "Core1",
                "Core0", "Core1");
    rule(92);

    std::vector<std::vector<double>> frac(8);
    const auto pairs = workloads::allPairs();
    const auto results = runPairs(pairs);   // parallel fan-out
    std::size_t idx = 0;
    for (const PairResults &res : results) {
        if (idx == 16)
            std::printf("-- OpenCV --\n");
        ++idx;
        std::printf("%-8s |", res.label.c_str());
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            for (unsigned c = 0; c < 2; ++c) {
                const auto &core = res.byPolicy[p].cores[c];
                const double f =
                    core.finish
                        ? 100.0 * core.renameRegStallCycles / core.finish
                        : 0.0;
                frac[p * 2 + c].push_back(f);
                std::printf(" %7.1f%%", f);
            }
            if (p + 1 < kPolicies.size())
                std::printf(" |");
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    rule(92);
    std::printf("%-8s |", "mean");
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        for (unsigned c = 0; c < 2; ++c) {
            double sum = 0;
            for (double f : frac[p * 2 + c])
                sum += f;
            std::printf(" %7.1f%%", sum / frac[p * 2 + c].size());
        }
        if (p + 1 < kPolicies.size())
            std::printf(" |");
    }
    std::printf("\npaper: renaming stalls in >70%% of cycles on FTS; "
                "hardly any on the other three.\n");
    return 0;
}
