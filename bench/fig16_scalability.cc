/**
 * @file
 * Reproduces Fig. 16: 4-core scalability. Four groups of SPEC
 * workloads run on a 4-core machine with 16 ExeBUs (64 lanes); per-core
 * speedups of FTS/VLS/Occamy over Private are reported, plus the
 * geometric means. The paper observes Occamy matching the others on
 * the memory cores and winning on the compute cores, and FTS shifting
 * its bottleneck to the shared register file.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace occamy;
using namespace occamy::bench;

int
main()
{
    header("fig16_scalability: four workloads on a 4-core machine",
           "Fig. 16, Section 7.6");

    const auto groups = workloads::scalabilityGroups();
    std::vector<std::vector<double>> gm(4);   // per policy, all cores.

    for (const auto &group : groups) {
        std::printf("\ngroup %s:\n", group.label.c_str());
        std::printf("  %-8s %8s %8s %8s %8s | %9s\n", "arch", "Core0",
                    "Core1", "Core2", "Core3", "FTSstall%");

        RunResult base;
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            System sys(
                MachineConfig::Builder(kPolicies[p]).cores(4).build());
            for (unsigned c = 0; c < 4; ++c)
                sys.setWorkload(static_cast<CoreId>(c),
                                group.workloads[c].name,
                                group.workloads[c].loops);
            RunResult r = sys.run({.maxCycles = 80'000'000});
            if (p == 0)
                base = r;
            std::printf("  %-8s", policyName(kPolicies[p]));
            double stall = 0.0;
            for (unsigned c = 0; c < 4; ++c) {
                const double s =
                    r.cores[c].finish
                        ? static_cast<double>(base.cores[c].finish) /
                              r.cores[c].finish
                        : 0.0;
                if (p > 0)
                    gm[p].push_back(s);
                std::printf(" %7.2fx", s);
                if (r.cores[c].finish)
                    stall += 100.0 * r.cores[c].renameRegStallCycles /
                             r.cores[c].finish / 4.0;
            }
            std::printf(" | %8.1f%%\n", stall);
            std::fflush(stdout);
        }
    }

    rule();
    std::printf("GM speedup over Private (all cores): FTS %.2fx, "
                "VLS %.2fx, Occamy %.2fx\n",
                geomean(gm[1]), geomean(gm[2]), geomean(gm[3]));
    std::printf("paper: Occamy scales best 2->4 cores; FTS's "
                "bottleneck shifts to the shared register file\n");
    return 0;
}
