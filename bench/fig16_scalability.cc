/**
 * @file
 * Reproduces Fig. 16 and extends it past the paper: 4-core
 * scalability. Four groups of SPEC workloads run on a 4-core machine
 * with 16 ExeBUs (64 lanes); per-core speedups of FTS/VLS/Occamy over
 * Private are reported, plus the geometric means. The paper observes
 * Occamy matching the others on the memory cores and winning on the
 * compute cores, and FTS shifting its bottleneck to the shared
 * register file.
 *
 * The clustered scale-out section then replicates the paper's cluster
 * to 16 cores (4x4) and 64 cores (8x8) — each cluster one
 * co-processor, the inter-cluster DRAM arbiter above them (DESIGN.md
 * §13) — and reports makespan, utilization, arbiter rebalances and
 * cross-cluster work migrations per topology. The deterministic
 * numbers are written to a JSON report gated in CI by
 * tools/check_bench_ticks.sh against the committed
 * BENCH_scalability.json snapshot.
 *
 * Usage: fig16_scalability [OUT.json]  (default BENCH_scalability.json)
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

using namespace occamy;
using namespace occamy::bench;

namespace
{

struct Topo
{
    const char *label;
    unsigned clusters;
    unsigned cores;     ///< Per cluster.
};

/** One clustered scenario. Full Fig. 16 workloads at 64 cores take
 *  minutes of wall clock (per-cluster DRAM shrinks to 1/C of the
 *  machine), so the scale-out section uses the same bounded
 *  memory/compute phases micro_ticks does: even clusters lean memory,
 *  odd clusters lean compute — the imbalance is what makes the
 *  demand-proportional arbiter and the migration path visible — and
 *  2*C batch jobs drain through the work-migration scheduler. */
RunResult
runClustered(const Topo &t, SharingPolicy p)
{
    System sys(MachineConfig::Builder(p)
                   .topology(t.clusters, t.cores)
                   .build());
    const unsigned total = t.clusters * t.cores;
    for (unsigned c = 0; c < total; ++c) {
        const unsigned cl = c / t.cores;
        const bool mem = cl % 2 == 0;
        sys.setWorkload(
            static_cast<CoreId>(c), mem ? "mem" : "comp",
            {workloads::makeNamedPhase(mem ? "rho_eos1" : "wsm51",
                                       mem ? 2048 : 8192)});
    }
    for (unsigned q = 0; q < 2 * t.clusters; ++q)
        sys.enqueueWorkload(
            "q" + std::to_string(q),
            {workloads::makeNamedPhase(q % 2 ? "wsm51" : "rho_eos1",
                                       4096)});
    return sys.run({.maxCycles = 80'000'000});
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_scalability.json";

    header("fig16_scalability: four workloads on a 4-core machine",
           "Fig. 16, Section 7.6");

    const auto groups = workloads::scalabilityGroups();
    std::vector<std::vector<double>> gm(4);   // per policy, all cores.

    for (const auto &group : groups) {
        std::printf("\ngroup %s:\n", group.label.c_str());
        std::printf("  %-8s %8s %8s %8s %8s | %9s\n", "arch", "Core0",
                    "Core1", "Core2", "Core3", "FTSstall%");

        RunResult base;
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            System sys(
                MachineConfig::Builder(kPolicies[p]).cores(4).build());
            for (unsigned c = 0; c < 4; ++c)
                sys.setWorkload(static_cast<CoreId>(c),
                                group.workloads[c].name,
                                group.workloads[c].loops);
            RunResult r = sys.run({.maxCycles = 80'000'000});
            if (p == 0)
                base = r;
            std::printf("  %-8s", policyName(kPolicies[p]));
            double stall = 0.0;
            for (unsigned c = 0; c < 4; ++c) {
                const double s =
                    r.cores[c].finish
                        ? static_cast<double>(base.cores[c].finish) /
                              r.cores[c].finish
                        : 0.0;
                if (p > 0)
                    gm[p].push_back(s);
                std::printf(" %7.2fx", s);
                if (r.cores[c].finish)
                    stall += 100.0 * r.cores[c].renameRegStallCycles /
                             r.cores[c].finish / 4.0;
            }
            std::printf(" | %8.1f%%\n", stall);
            std::fflush(stdout);
        }
    }

    rule();
    std::printf("GM speedup over Private (all cores): FTS %.2fx, "
                "VLS %.2fx, Occamy %.2fx\n",
                geomean(gm[1]), geomean(gm[2]), geomean(gm[3]));
    std::printf("paper: Occamy scales best 2->4 cores; FTS's "
                "bottleneck shifts to the shared register file\n");

    // ------------------------------------------------------------------
    // Clustered scale-out: the paper's cluster replicated to 16 and 64
    // cores under the hierarchical lane manager.
    std::printf("\nclustered scale-out (each cluster = one "
                "co-processor, DESIGN.md \u00a713):\n");
    std::printf("  %-5s %-8s %5s %12s %6s %6s %7s %6s\n", "topo",
                "arch", "cores", "makespan", "util%", "rebal", "migr",
                "DRAM");

    const std::vector<Topo> topos = {
        {"1x4", 1, 4}, {"4x4", 4, 4}, {"8x8", 8, 8}};
    const std::vector<SharingPolicy> archs = {SharingPolicy::Private,
                                              SharingPolicy::Elastic};

    std::string json =
        "{\"bench\":\"fig16_scalability\",\"scenarios\":[";
    bool first = true;
    for (const Topo &t : topos) {
        for (SharingPolicy p : archs) {
            const RunResult r = runClustered(t, p);
            std::uint64_t migrations = 0;
            for (const auto &cl : r.clusters)
                migrations += cl.migratedIn;
            std::printf("  %-5s %-8s %5u %12llu %5.1f%% %6llu %7llu "
                        "%4.1fMB\n",
                        t.label, policyName(p), t.clusters * t.cores,
                        static_cast<unsigned long long>(r.cycles),
                        100.0 * r.simdUtil,
                        static_cast<unsigned long long>(
                            r.arbiterRebalances),
                        static_cast<unsigned long long>(migrations),
                        r.dramBytes / 1048576.0);
            std::fflush(stdout);

            char buf[512];
            std::snprintf(
                buf, sizeof(buf),
                "%s{\"name\":\"%s_%s\",\"topology\":\"%s\","
                "\"policy\":\"%s\",\"cores\":%u,\"cycles\":%llu,"
                "\"dram_bytes\":%llu,\"vl_switches\":%llu,"
                "\"rebalances\":%llu,\"migrations\":%llu,"
                "\"simd_util\":%.4f}",
                first ? "" : ",", t.label, policyName(p), t.label,
                policyName(p), t.clusters * t.cores,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.dramBytes),
                static_cast<unsigned long long>(r.vlSwitches),
                static_cast<unsigned long long>(r.arbiterRebalances),
                static_cast<unsigned long long>(migrations),
                r.simdUtil);
            json += buf;
            first = false;
        }
    }
    json += "]}";
    std::printf("paper extension: migration stays a cold-path cost — "
                "home-cluster work is preferred, foreign entries are "
                "adopted only when the home queue is dry\n");

    if (std::FILE *f = std::fopen(out_path.c_str(), "w")) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    return 0;
}
