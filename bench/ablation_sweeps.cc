/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out: the
 * eager-lazy split (monitor cadence, including a "no lazy points"
 * variant), the LaneMgr re-planning latency, the stream prefetcher and
 * the load-queue depth. Each sweep runs the motivating pair (WL6+WL16)
 * and reports the metric that the knob trades off. All configurations
 * across all sections are fanned out through one parallel runner sweep
 * and printed in knob order afterwards.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/phases.hh"

using namespace occamy;
using namespace occamy::bench;

namespace
{

/** One WL6+WL16 job under @p cfg (the motivating pair). */
runner::JobSpec
jobWith(MachineConfig cfg, std::string label)
{
    runner::JobSpec spec;
    spec.label = std::move(label);
    spec.cfg = std::move(cfg);
    spec.workloads = {
        {"WL6", {workloads::makeNamedPhase("rho_eos1"),
                 workloads::makeNamedPhase("rho_eos4")}},
        {"WL16", {workloads::makeNamedPhase("wsm51")}}};
    spec.maxCycles = 40'000'000;
    return spec;
}

/** Run the whole job list; abort with the diagnostic on any failure. */
std::vector<RunResult>
runAll(std::vector<runner::JobSpec> jobs)
{
    for (std::size_t i = 0; i < jobs.size(); ++i)
        jobs[i].id = i;
    runner::SweepResult sweep = runner::Runner().run(std::move(jobs));
    std::vector<RunResult> out;
    out.reserve(sweep.jobs.size());
    for (auto &j : sweep.jobs) {
        if (!j.ok()) {
            std::fprintf(stderr, "job %s failed: %s\n", j.label.c_str(),
                         j.error.c_str());
            std::exit(1);
        }
        out.push_back(std::move(j.result));
    }
    return out;
}

const unsigned kPeriods[] = {1u, 2u, 4u, 8u, 16u, 64u, 1u << 20};
const unsigned kLatencies[] = {1u, 8u, 64u, 512u, 4096u};
const unsigned kDegrees[] = {0u, 4u, 8u, 16u, 32u, 64u};
const unsigned kLqDepths[] = {4u, 8u, 16u, 32u, 64u};
const unsigned kVregs[] = {96u, 128u, 160u, 224u, 320u};

/** The static->work-conserving->elastic sharing ladder (section F). */
const SharingPolicy kWcLadder[] = {SharingPolicy::StaticSpatial,
                                   SharingPolicy::StaticSpatialWC,
                                   SharingPolicy::Elastic};

} // namespace

int
main()
{
    header("ablation_sweeps: design-choice sensitivity on WL6+WL16",
           "DESIGN.md section 5 (not a paper figure)");

    // One sweep for everything: the Private baseline plus every knob
    // setting of every section, in declaration order.
    std::vector<runner::JobSpec> jobs;
    jobs.push_back(jobWith(
        MachineConfig::Builder(SharingPolicy::Private).cores(2).build(),
        "baseline"));
    for (unsigned period : kPeriods)
        jobs.push_back(jobWith(MachineConfig::Builder(SharingPolicy::Elastic)
                                   .cores(2)
                                   .monitorPeriod(period)
                                   .build(),
                               "A/monitorPeriod"));
    for (unsigned lat : kLatencies)
        jobs.push_back(jobWith(MachineConfig::Builder(SharingPolicy::Elastic)
                                   .cores(2)
                                   .laneMgrLatency(lat)
                                   .build(),
                               "B/laneMgrLatency"));
    for (unsigned deg : kDegrees)
        jobs.push_back(jobWith(MachineConfig::Builder(SharingPolicy::Private)
                                   .cores(2)
                                   .prefetchDegree(deg)
                                   .build(),
                               "C/prefetchDegree"));
    for (unsigned lq : kLqDepths)
        jobs.push_back(jobWith(MachineConfig::Builder(SharingPolicy::Private)
                                   .cores(2)
                                   .loadQueueEntries(lq)
                                   .build(),
                               "D/loadQueueEntries"));
    for (unsigned regs : kVregs)
        jobs.push_back(jobWith(MachineConfig::Builder(SharingPolicy::Temporal)
                                   .cores(2)
                                   .vregsPerBlk(regs)
                                   .build(),
                               "E/vregsPerBlk"));
    for (SharingPolicy p : kWcLadder)
        jobs.push_back(jobWith(
            MachineConfig::Builder(p).cores(2).build(),
            std::string("F/") + policyName(p)));

    const std::vector<RunResult> results = runAll(std::move(jobs));
    std::size_t at = 0;
    const Cycle private_c1 = results[at++].cores[1].finish;

    std::printf("\n[A] eager-lazy split: partition-monitor cadence "
                "(Occamy)\n");
    std::printf("  %-14s %10s %12s %12s\n", "monitorPeriod",
                "c1 speedup", "monitor ovh", "vl switches");
    const unsigned transmit_width =
        MachineConfig::Builder(SharingPolicy::Elastic)
            .cores(2)
            .build()
            .transmitWidth;
    for (unsigned period : kPeriods) {
        const RunResult &r = results[at++];
        double ovh = 0.0;
        for (const auto &core : r.cores)
            ovh += 50.0 * core.monitorOverhead(transmit_width);
        std::printf("  %-14u %9.2fx %11.2f%% %12llu%s\n", period,
                    static_cast<double>(private_c1) / r.cores[1].finish,
                    ovh, static_cast<unsigned long long>(r.vlSwitches),
                    period >= (1u << 20) ? "  (lazy points disabled)"
                                         : "");
    }
    std::printf("  -> monitoring every iteration buys nothing but "
                "overhead; no lazy points loses elasticity.\n");

    std::printf("\n[B] LaneMgr re-planning latency (Occamy)\n");
    std::printf("  %-14s %10s %10s\n", "latency(cyc)", "c1 speedup",
                "util");
    for (unsigned lat : kLatencies) {
        const RunResult &r = results[at++];
        std::printf("  %-14u %9.2fx %9.1f%%\n", lat,
                    static_cast<double>(private_c1) / r.cores[1].finish,
                    100.0 * r.simdUtil);
    }
    std::printf("  -> plans are needed only at phase boundaries, so "
                "even a slow manager barely hurts.\n");

    std::printf("\n[C] stream-prefetch degree (Private, memory core)\n");
    std::printf("  %-14s %12s %12s\n", "degree", "c0 finish",
                "dram MB");
    for (unsigned deg : kDegrees) {
        const RunResult &r = results[at++];
        std::printf("  %-14u %12llu %11.2f\n", deg,
                    static_cast<unsigned long long>(r.cores[0].finish),
                    r.dramBytes / 1048576.0);
    }
    std::printf("  -> without prefetching the streaming phases are "
                "latency- instead of bandwidth-bound.\n");

    std::printf("\n[D] load-queue depth (Private, memory core)\n");
    std::printf("  %-14s %12s\n", "LQ entries", "c0 finish");
    for (unsigned lq : kLqDepths) {
        const RunResult &r = results[at++];
        std::printf("  %-14u %12llu\n", lq,
                    static_cast<unsigned long long>(r.cores[0].finish));
    }

    std::printf("\n[E] FTS register-file pressure: pinned-context cost "
                "(2-core FTS)\n");
    std::printf("  %-14s %10s %14s\n", "VRegs/RegBlk", "c1 speedup",
                "rename stall%");
    for (unsigned regs : kVregs) {
        const RunResult &r = results[at++];
        std::printf("  %-14u %9.2fx %13.1f%%\n", regs,
                    static_cast<double>(private_c1) / r.cores[1].finish,
                    100.0 * r.cores[1].renameRegStallCycles /
                        std::max<Cycle>(r.cores[1].finish, 1));
    }
    std::printf("  -> FTS approaches Occamy only with far more "
                "physical registers (the paper's +33.5%% area).\n");

    std::printf("\n[F] how much of Occamy's win is work conservation "
                "alone? (VLS -> VLS-WC -> Occamy)\n");
    std::printf("  %-10s %10s %10s %10s %12s\n", "policy", "c0 speedup",
                "c1 speedup", "util", "vl switches");
    for (SharingPolicy p : kWcLadder) {
        const RunResult &r = results[at++];
        std::printf("  %-10s %9.2fx %9.2fx %9.1f%% %12llu\n",
                    policyName(p),
                    static_cast<double>(results[0].cores[0].finish) /
                        r.cores[0].finish,
                    static_cast<double>(private_c1) / r.cores[1].finish,
                    100.0 * r.simdUtil,
                    static_cast<unsigned long long>(r.vlSwitches));
    }
    std::printf("  -> lending idle entitlements closes part of the "
                "VLS->Occamy gap; OI-aware repartitioning of *active* "
                "cores is the rest.\n");
    return 0;
}
