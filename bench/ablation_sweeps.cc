/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out: the
 * eager-lazy split (monitor cadence, including a "no lazy points"
 * variant), the LaneMgr re-planning latency, the stream prefetcher and
 * the load-queue depth. Each sweep runs the motivating pair (WL6+WL16)
 * and reports the metric that the knob trades off.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/phases.hh"

using namespace occamy;
using namespace occamy::bench;

namespace
{

RunResult
runWith(MachineConfig cfg)
{
    System sys(cfg);
    sys.setWorkload(0, "WL6",
                    {workloads::makeNamedPhase("rho_eos1"),
                     workloads::makeNamedPhase("rho_eos4")});
    sys.setWorkload(1, "WL16", {workloads::makeNamedPhase("wsm51")});
    return sys.run(40'000'000);
}

} // namespace

int
main()
{
    header("ablation_sweeps: design-choice sensitivity on WL6+WL16",
           "DESIGN.md section 5 (not a paper figure)");

    const Cycle private_c1 =
        runWith(MachineConfig::forPolicy(SharingPolicy::Private, 2))
            .cores[1].finish;

    std::printf("\n[A] eager-lazy split: partition-monitor cadence "
                "(Occamy)\n");
    std::printf("  %-14s %10s %12s %12s\n", "monitorPeriod",
                "c1 speedup", "monitor ovh", "vl switches");
    for (unsigned period : {1u, 2u, 4u, 8u, 16u, 64u, 1u << 20}) {
        MachineConfig cfg =
            MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
        cfg.monitorPeriod = period;
        const RunResult r = runWith(cfg);
        double ovh = 0.0;
        for (const auto &core : r.cores)
            ovh += 50.0 * core.monitorOverhead(cfg.transmitWidth);
        std::printf("  %-14u %9.2fx %11.2f%% %12llu%s\n", period,
                    static_cast<double>(private_c1) / r.cores[1].finish,
                    ovh, static_cast<unsigned long long>(r.vlSwitches),
                    period >= (1u << 20) ? "  (lazy points disabled)"
                                         : "");
    }
    std::printf("  -> monitoring every iteration buys nothing but "
                "overhead; no lazy points loses elasticity.\n");

    std::printf("\n[B] LaneMgr re-planning latency (Occamy)\n");
    std::printf("  %-14s %10s %10s\n", "latency(cyc)", "c1 speedup",
                "util");
    for (unsigned lat : {1u, 8u, 64u, 512u, 4096u}) {
        MachineConfig cfg =
            MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
        cfg.laneMgrLatency = lat;
        const RunResult r = runWith(cfg);
        std::printf("  %-14u %9.2fx %9.1f%%\n", lat,
                    static_cast<double>(private_c1) / r.cores[1].finish,
                    100.0 * r.simdUtil);
    }
    std::printf("  -> plans are needed only at phase boundaries, so "
                "even a slow manager barely hurts.\n");

    std::printf("\n[C] stream-prefetch degree (Private, memory core)\n");
    std::printf("  %-14s %12s %12s\n", "degree", "c0 finish",
                "dram MB");
    for (unsigned deg : {0u, 4u, 8u, 16u, 32u, 64u}) {
        MachineConfig cfg =
            MachineConfig::forPolicy(SharingPolicy::Private, 2);
        cfg.prefetchDegree = deg;
        const RunResult r = runWith(cfg);
        std::printf("  %-14u %12llu %11.2f\n", deg,
                    static_cast<unsigned long long>(r.cores[0].finish),
                    r.dramBytes / 1048576.0);
    }
    std::printf("  -> without prefetching the streaming phases are "
                "latency- instead of bandwidth-bound.\n");

    std::printf("\n[D] load-queue depth (Private, memory core)\n");
    std::printf("  %-14s %12s\n", "LQ entries", "c0 finish");
    for (unsigned lq : {4u, 8u, 16u, 32u, 64u}) {
        MachineConfig cfg =
            MachineConfig::forPolicy(SharingPolicy::Private, 2);
        cfg.loadQueueEntries = lq;
        const RunResult r = runWith(cfg);
        std::printf("  %-14u %12llu\n", lq,
                    static_cast<unsigned long long>(r.cores[0].finish));
    }

    std::printf("\n[E] FTS register-file pressure: pinned-context cost "
                "(2-core FTS)\n");
    std::printf("  %-14s %10s %14s\n", "VRegs/RegBlk", "c1 speedup",
                "rename stall%");
    for (unsigned regs : {96u, 128u, 160u, 224u, 320u}) {
        MachineConfig cfg =
            MachineConfig::forPolicy(SharingPolicy::Temporal, 2);
        cfg.vregsPerBlk = regs;
        const RunResult r = runWith(cfg);
        std::printf("  %-14u %9.2fx %13.1f%%\n", regs,
                    static_cast<double>(private_c1) / r.cores[1].finish,
                    100.0 * r.cores[1].renameRegStallCycles /
                        std::max<Cycle>(r.cores[1].finish, 1));
    }
    std::printf("  -> FTS approaches Occamy only with far more "
                "physical registers (the paper's +33.5%% area).\n");
    return 0;
}
