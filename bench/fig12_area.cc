/**
 * @file
 * Reproduces Fig. 12 (area breakdown) and the Section 7.3/7.6 area
 * claims: ~1.263 mm^2 (Private) vs ~1.265 mm^2 (shared designs) for the
 * 2-core configuration with the Manager under 1% of total area, plus
 * the 4-core scaling including FTS's per-core register-context blow-up.
 */

#include <cstdio>

#include "area/area_model.hh"
#include "bench_util.hh"

using namespace occamy;
using namespace occamy::bench;

namespace
{

void
printBreakdown(unsigned cores)
{
    AreaModel model;
    std::printf("\n%u-core configuration (mm^2, TSMC 7 nm analytic "
                "model):\n", cores);
    std::printf("%-16s", "component");
    for (SharingPolicy p : kPolicies)
        std::printf(" %9s", policyName(p));
    std::printf("\n");
    rule(58);

    std::vector<AreaBreakdown> all;
    for (SharingPolicy p : kPolicies)
        all.push_back(model.breakdown(p, cores));

    for (std::size_t i = 0; i < all[0].components.size(); ++i) {
        std::printf("%-16s", all[0].components[i].name.c_str());
        for (const auto &b : all)
            std::printf(" %9.4f", b.components[i].mm2);
        std::printf("\n");
    }
    rule(58);
    std::printf("%-16s", "total");
    for (const auto &b : all)
        std::printf(" %9.4f", b.total());
    std::printf("\n%-16s", "exe fraction");
    for (const auto &b : all)
        std::printf(" %8.1f%%", 100.0 * b.fraction("simd_exe_units"));
    std::printf("\n%-16s", "lsu fraction");
    for (const auto &b : all)
        std::printf(" %8.1f%%", 100.0 * b.fraction("lsu"));
    std::printf("\n%-16s", "rf fraction");
    for (const auto &b : all)
        std::printf(" %8.1f%%", 100.0 * b.fraction("register_file"));
    std::printf("\n%-16s", "mgr fraction");
    for (const auto &b : all)
        std::printf(" %8.2f%%", 100.0 * b.fraction("manager"));
    std::printf("\n");
}

} // namespace

int
main()
{
    header("fig12_area: chip-area breakdown of the four architectures",
           "Fig. 12 + Sections 7.3 and 7.6");

    printBreakdown(2);
    std::printf("\npaper (2-core): Private 1.263 mm^2, others 1.265 "
                "mm^2;\n  exe units 46%%, LSU 23%%, register file 15%%, "
                "Manager < 1%%\n");

    printBreakdown(4);
    AreaModel model;
    const double fts4 =
        model.breakdown(SharingPolicy::Temporal, 4).total();
    const double occ4 =
        model.breakdown(SharingPolicy::Elastic, 4).total();
    std::printf("\nFTS(4-core) / Occamy(4-core) area = %.3fx "
                "(paper: +33.5%% for FTS keeping per-core contexts)\n",
                fts4 / occ4);
    auto controlArea = [&](unsigned cores) {
        const AreaBreakdown b =
            model.breakdown(SharingPolicy::Elastic, cores);
        double a = 0.0;
        for (const char *name : {"inst_pool", "decode", "rename",
                                 "dispatch", "rob", "manager"})
            a += b.fraction(name) * b.total();
        return a;
    };
    std::printf("control-structure growth 2->4 cores: +%.1f%% beyond "
                "linear scaling (paper: ~3%%)\n",
                100.0 * (controlArea(4) / (2 * controlArea(2)) - 1.0));
    return 0;
}
