/**
 * @file
 * Reproduces Fig. 11: whole-run SIMD utilization (Section 2's
 * definition) per pair and architecture. Paper geometric means:
 * Private 63.2%, FTS 72.5%, VLS 70.8%, Occamy 84.2%.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace occamy;
using namespace occamy::bench;

int
main()
{
    header("fig11_utilization: SIMD utilization across 25 pairs",
           "Fig. 11, Section 7.2");

    std::printf("%-8s | %8s %8s %8s %8s\n", "pair", "Private", "FTS",
                "VLS", "Occamy");
    rule(48);

    std::vector<std::vector<double>> util(4);
    const auto pairs = workloads::allPairs();
    const auto results = runPairs(pairs);   // parallel fan-out
    std::size_t idx = 0;
    for (const PairResults &res : results) {
        if (idx == 16)
            std::printf("-- OpenCV --\n");
        ++idx;
        std::printf("%-8s |", res.label.c_str());
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            util[p].push_back(res.byPolicy[p].simdUtil);
            std::printf(" %7.1f%%", 100.0 * res.byPolicy[p].simdUtil);
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    rule(48);
    std::printf("%-8s |", "GM");
    for (std::size_t p = 0; p < kPolicies.size(); ++p)
        std::printf(" %7.1f%%", 100.0 * geomean(util[p]));
    std::printf("\n");
    std::printf("paper GM |    63.2%%    72.5%%    70.8%%    84.2%%\n");
    return 0;
}
