/**
 * @file
 * Shared helpers for the figure/table reproduction benches: run a
 * workload pair across the four SIMD architectures, format tables, and
 * compute the geometric means the paper reports.
 */

#ifndef OCCAMY_BENCH_BENCH_UTIL_HH
#define OCCAMY_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "sim/system.hh"
#include "workloads/suite.hh"

namespace occamy::bench
{

/** The four architectures, in the paper's presentation order. */
inline const std::vector<SharingPolicy> kPolicies = {
    SharingPolicy::Private,
    SharingPolicy::Temporal,
    SharingPolicy::StaticSpatial,
    SharingPolicy::Elastic,
};

/** Results of one pair on all four architectures (Private first). */
struct PairResults
{
    std::string label;
    std::vector<RunResult> byPolicy;   ///< Indexed like kPolicies.

    /** Core-@p c speedup of policy @p p over Private. */
    double
    speedup(std::size_t p, unsigned c) const
    {
        const Cycle base = byPolicy[0].cores[c].finish;
        const Cycle t = byPolicy[p].cores[c].finish;
        return t ? static_cast<double>(base) / static_cast<double>(t)
                 : 0.0;
    }
};

/**
 * Run @p pairs x @p policies through the parallel runner (OCCAMY_JOBS
 * or hardware-concurrency worker threads) and regroup the id-ordered
 * sweep per pair. Results are identical to the old serial loops for
 * any thread count; a failed job aborts with its diagnostic, matching
 * the old uncontained behaviour the figure benches rely on.
 */
inline std::vector<PairResults>
runPairs(const std::vector<workloads::Pair> &pairs,
         const std::vector<SharingPolicy> &policies = kPolicies,
         Cycle max_cycles = 40'000'000)
{
    const runner::SweepResult sweep = runner::Runner().run(
        runner::pairSweepJobs(pairs, policies, max_cycles));
    std::vector<PairResults> out;
    out.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        PairResults r;
        r.label = pairs[i].label;
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const runner::JobResult &job =
                sweep.jobs[i * policies.size() + p];
            if (!job.ok()) {
                std::fprintf(stderr, "job %s failed: %s\n",
                             job.label.c_str(), job.error.c_str());
                std::exit(1);
            }
            r.byPolicy.push_back(job.result);
        }
        out.push_back(std::move(r));
    }
    return out;
}

/** Run @p pair on all four 2-core architectures (runner-backed). */
inline PairResults
runPair(const workloads::Pair &pair, Cycle max_cycles = 40'000'000)
{
    return runPairs({pair}, kPolicies, max_cycles).front();
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x > 0 ? x : 1e-9);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Print a rule line. */
inline void
rule(unsigned width = 78)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a bench header in a consistent style. */
inline void
header(const std::string &title, const std::string &paper_ref)
{
    rule();
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    rule();
}

} // namespace occamy::bench

#endif // OCCAMY_BENCH_BENCH_UTIL_HH
