/**
 * @file
 * Shared helpers for the figure/table reproduction benches: run a
 * workload pair across the four SIMD architectures, format tables, and
 * compute the geometric means the paper reports.
 */

#ifndef OCCAMY_BENCH_BENCH_UTIL_HH
#define OCCAMY_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workloads/suite.hh"

namespace occamy::bench
{

/** The four architectures, in the paper's presentation order. */
inline const std::vector<SharingPolicy> kPolicies = {
    SharingPolicy::Private,
    SharingPolicy::Temporal,
    SharingPolicy::StaticSpatial,
    SharingPolicy::Elastic,
};

/** Results of one pair on all four architectures (Private first). */
struct PairResults
{
    std::string label;
    std::vector<RunResult> byPolicy;   ///< Indexed like kPolicies.

    /** Core-@p c speedup of policy @p p over Private. */
    double
    speedup(std::size_t p, unsigned c) const
    {
        const Cycle base = byPolicy[0].cores[c].finish;
        const Cycle t = byPolicy[p].cores[c].finish;
        return t ? static_cast<double>(base) / static_cast<double>(t)
                 : 0.0;
    }
};

/** Run @p pair on all four 2-core architectures. */
inline PairResults
runPair(const workloads::Pair &pair, Cycle max_cycles = 40'000'000)
{
    PairResults r;
    r.label = pair.label;
    for (SharingPolicy p : kPolicies) {
        System sys(MachineConfig::forPolicy(p, 2));
        sys.setWorkload(0, pair.core0.name, pair.core0.loops);
        sys.setWorkload(1, pair.core1.name, pair.core1.loops);
        r.byPolicy.push_back(sys.run(max_cycles));
    }
    return r;
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x > 0 ? x : 1e-9);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Print a rule line. */
inline void
rule(unsigned width = 78)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a bench header in a consistent style. */
inline void
header(const std::string &title, const std::string &paper_ref)
{
    rule();
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    rule();
}

} // namespace occamy::bench

#endif // OCCAMY_BENCH_BENCH_UTIL_HH
