/**
 * @file
 * Reproduces Fig. 15: the runtime overhead Occamy spends facilitating
 * EM-SIMD execution, split into partition-decision monitoring (the
 * speculatively-transmitted MRS <decision> per iteration, paper avg
 * ~0.3%) and vector-length reconfiguration (pipeline drains + <VL>
 * retry spins, paper avg ~0.2%).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace occamy;
using namespace occamy::bench;

int
main()
{
    header("fig15_overhead: cost of elastic spatial sharing",
           "Fig. 15, Section 7.5");

    std::printf("%-8s | %10s %12s %8s | %9s %9s\n", "pair", "monitor%",
                "reconfig%", "total%", "switches", "plans");
    rule(70);

    const MachineConfig cfg =
        MachineConfig::Builder(SharingPolicy::Elastic).cores(2).build();
    std::vector<double> mon, rec;
    const auto pairs = workloads::allPairs();
    const auto results =
        runPairs(pairs, {SharingPolicy::Elastic});   // parallel fan-out
    std::size_t idx = 0;
    for (const PairResults &res : results) {
        if (idx == 16)
            std::printf("-- OpenCV --\n");
        ++idx;
        const RunResult &r = res.byPolicy[0];

        // Workload-weighted overhead across both cores.
        double m = 0.0, v = 0.0;
        for (const auto &core : r.cores) {
            m += 100.0 * core.monitorOverhead(cfg.transmitWidth) / 2.0;
            v += 100.0 * core.reconfigOverhead() / 2.0;
        }
        mon.push_back(m);
        rec.push_back(v);
        std::printf("%-8s | %9.2f%% %11.2f%% %7.2f%% | %9llu %9llu\n",
                    res.label.c_str(), m, v, m + v,
                    static_cast<unsigned long long>(r.vlSwitches),
                    static_cast<unsigned long long>(r.plansMade));
        std::fflush(stdout);
    }

    rule(70);
    double ms = 0, rs = 0;
    for (std::size_t i = 0; i < mon.size(); ++i) {
        ms += mon[i];
        rs += rec[i];
    }
    ms /= mon.size();
    rs /= rec.size();
    std::printf("%-8s | %9.2f%% %11.2f%% %7.2f%%\n", "mean", ms, rs,
                ms + rs);
    std::printf("paper    |      0.30%%       0.20%%    0.50%%\n");
    return 0;
}
