/**
 * @file
 * Reproduces Fig. 10: per-core speedups of FTS, VLS and Occamy over
 * Private for the 25 co-running pairs (16 SPEC + 9 OpenCV), plus the
 * geometric means. The paper reports Core1 GM speedups of 1.20 (FTS),
 * 1.11 (VLS) and 1.39 (Occamy) with Core0 unchanged.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace occamy;
using namespace occamy::bench;

int
main()
{
    header("fig10_speedups: 25 co-running pairs, 4 architectures",
           "Fig. 10, Section 7.2");

    std::printf("%-8s | %-21s | %-21s\n", "", "Core0 speedup (memory)",
                "Core1 speedup (compute)");
    std::printf("%-8s | %6s %6s %6s | %6s %6s %6s\n", "pair", "FTS",
                "VLS", "Occamy", "FTS", "VLS", "Occamy");
    rule(64);

    std::vector<std::vector<double>> s0(4), s1(4);
    const auto pairs = workloads::allPairs();
    const auto results = runPairs(pairs);   // parallel fan-out
    std::size_t idx = 0;
    for (const PairResults &res : results) {
        if (idx == 16)
            std::printf("-- OpenCV --\n");
        ++idx;
        std::printf("%-8s |", res.label.c_str());
        for (std::size_t p = 1; p < kPolicies.size(); ++p) {
            s0[p].push_back(res.speedup(p, 0));
            std::printf(" %5.2fx", res.speedup(p, 0));
        }
        std::printf(" |");
        for (std::size_t p = 1; p < kPolicies.size(); ++p) {
            s1[p].push_back(res.speedup(p, 1));
            std::printf(" %5.2fx", res.speedup(p, 1));
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    rule(64);
    std::printf("%-8s |", "GM");
    for (std::size_t p = 1; p < kPolicies.size(); ++p)
        std::printf(" %5.2fx", geomean(s0[p]));
    std::printf(" |");
    for (std::size_t p = 1; p < kPolicies.size(); ++p)
        std::printf(" %5.2fx", geomean(s1[p]));
    std::printf("\n");
    std::printf("paper GM |  1.00x  1.00x  1.00x |  1.20x  1.11x  1.39x\n");
    return 0;
}
