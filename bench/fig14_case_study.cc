/**
 * @file
 * Reproduces Fig. 14 and the Section 7.4 case studies.
 *
 * Case 1 <memory, compute> (WL20 + WL17): per-lane-count normalized
 * execution times of WL20.p1 (sff2), WL20.p2 (sff5) and WL17 (wsm52);
 * the lane-partition timeline for WL17; and the per-phase SIMD issue
 * rates across architectures. Cases 2-4 re-run the paper's other pair
 * categories: WL9+WL13 <compute,compute>, WL12+WL19 <memory,memory>,
 * and WL8+WL17 where FTS edges out Occamy (Table 5's issue-bound
 * phase).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "workloads/phases.hh"

using namespace occamy;
using namespace occamy::bench;

namespace
{

/** Run @p loops solo on Core0 with a fixed allocation of @p bus BUs. */
Cycle
soloAtLanes(const std::vector<kir::Loop> &loops, unsigned bus)
{
    MachineConfig cfg =
        MachineConfig::Builder(SharingPolicy::StaticSpatial)
            .cores(2)
            .build();
    // The plan splits the built machine's BU total, so it cannot be a
    // Builder argument: the total is only known after build().
    cfg.staticPlan = {bus, cfg.numExeBUs - bus};
    System sys(cfg);
    sys.setWorkload(0, "wl", loops);
    sys.setWorkload(1, "idle", {});
    return sys.run({.maxCycles = 80'000'000}).cores[0].finish;
}

void
caseStudy(const char *title, const workloads::Pair &pair,
          const char *expectation)
{
    std::printf("\n%s\n", title);
    PairResults res = runPair(pair);
    std::printf("  %-8s %-10s %-10s %-12s %-9s\n", "arch", "c0 time",
                "c1 time", "speedups", "util");
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        const RunResult &r = res.byPolicy[p];
        std::printf("  %-8s %-10llu %-10llu %.2fx/%.2fx   %5.1f%%\n",
                    policyName(kPolicies[p]),
                    static_cast<unsigned long long>(r.cores[0].finish),
                    static_cast<unsigned long long>(r.cores[1].finish),
                    res.speedup(p, 0), res.speedup(p, 1),
                    100.0 * r.simdUtil);
    }
    std::printf("  paper: %s\n", expectation);
}

} // namespace

int
main()
{
    header("fig14_case_study: WL20+WL17 deep dive and Cases 2-4",
           "Fig. 14 + Table 5 context, Section 7.4");

    // --- Fig. 14(a): normalized times with varying SIMD resources. ---
    std::printf("\nFig. 14(a) normalized execution time vs lane count "
                "(1.0 = 4 lanes):\n");
    std::printf("  %-10s", "lanes");
    for (unsigned bus = 1; bus <= 7; ++bus)
        std::printf(" %6u", bus * kLanesPerBu);
    std::printf("\n");
    struct Target
    {
        const char *name;
        std::vector<kir::Loop> loops;
    };
    std::vector<Target> targets;
    targets.push_back({"WL20.p1", {workloads::makeNamedPhase("sff2")}});
    targets.push_back({"WL20.p2", {workloads::makeNamedPhase("sff5")}});
    targets.push_back({"WL17", {workloads::makeNamedPhase("wsm52")}});
    for (auto &t : targets) {
        std::vector<double> times;
        for (unsigned bus = 1; bus <= 7; ++bus)
            times.push_back(
                static_cast<double>(soloAtLanes(t.loops, bus)));
        std::printf("  %-10s", t.name);
        for (double x : times)
            std::printf(" %6.2f", x / times[0]);
        std::printf("\n");
    }
    std::printf("  paper: WL20.p1 flat beyond 8 lanes, WL20.p2 flat "
                "beyond 12, WL17 keeps scaling.\n");

    // --- Fig. 14(b)/(c): the co-run. ---
    workloads::Pair pair;
    pair.label = "20+17";
    pair.core0 = workloads::specWorkload(20);
    pair.core1 = workloads::specWorkload(17);
    PairResults res = runPair(pair);

    std::printf("\nFig. 14(b) lanes allocated to WL17 over time "
                "(per 4000 cycles):\n");
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        if (kPolicies[p] == SharingPolicy::Temporal)
            continue;   // The paper plots Private/VLS/Occamy.
        const auto &tl = res.byPolicy[p].cores[1].allocLanesTimeline;
        std::printf("  %-8s", policyName(kPolicies[p]));
        const std::size_t points = 16;
        for (std::size_t i = 0; i < points && !tl.empty(); ++i)
            std::printf(" %2.0f", tl[i * (tl.size() - 1) / (points - 1)]);
        std::printf("\n");
    }

    std::printf("\nFig. 14(c) per-phase SIMD issue rates "
                "(insts/cycle):\n");
    std::printf("  %-8s %8s %8s %8s %8s\n", "arch", "20.p1", "20.p2",
                "17.p1", "17(all)");
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        const RunResult &r = res.byPolicy[p];
        std::printf("  %-8s %8.2f %8.2f %8.2f %8.2f\n",
                    policyName(kPolicies[p]),
                    r.cores[0].phases[0].issueRate,
                    r.cores[0].phases[1].issueRate,
                    r.cores[1].phases[0].issueRate,
                    r.cores[1].phases[0].issueRate);
    }
    std::printf("  WL17 speedups: FTS %.2fx, VLS %.2fx, Occamy %.2fx "
                "(paper: 1.42x, 1.25x, 1.63x)\n",
                res.speedup(1, 1), res.speedup(2, 1), res.speedup(3, 1));

    // --- Cases 2-4. ---
    {
        workloads::Pair p2;
        p2.label = "9+13";
        p2.core0 = workloads::specWorkload(9);
        p2.core1 = workloads::specWorkload(13);
        caseStudy("Case 2 <compute, compute>: WL9 + WL13", p2,
                  "FTS/Occamy speed WL13 up ~1.61x after WL9 ends; "
                  "VLS stays at 1.0x.");
    }
    {
        workloads::Pair p3;
        p3.label = "12+19";
        p3.core0 = workloads::specWorkload(12);
        p3.core1 = workloads::specWorkload(19);
        caseStudy("Case 3 <memory, memory>: WL12 + WL19", p3,
                  "all four architectures perform similarly "
                  "(both DRAM-bound).");
    }
    {
        workloads::Pair p4;
        p4.label = "8+17";
        p4.core0 = workloads::specWorkload(8);
        p4.core1 = workloads::specWorkload(17);
        caseStudy("Case 4 (FTS can edge Occamy): WL8 + WL17", p4,
                  "WL8.p1 is issue-bound (oi_issue 0.17 < oi_mem 0.25); "
                  "Occamy trades 4 lanes for issue bandwidth "
                  "(1.41x) while FTS reaches 1.52x.");
    }
    return 0;
}
