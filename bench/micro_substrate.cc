/**
 * @file
 * Google-benchmark micro-benchmarks of the simulation substrate itself:
 * cache tag lookups, memory-system accesses, roofline evaluation, the
 * greedy partitioner, the compiler, and end-to-end simulated
 * cycles/second. These quantify the cost of regenerating the paper's
 * figures and guard against performance regressions in the simulator.
 */

#include <benchmark/benchmark.h>

#include "compiler/compiler.hh"
#include "kir/analysis.hh"
#include "lanemgr/partitioner.hh"
#include "mem/memsystem.hh"
#include "sim/system.hh"
#include "workloads/phases.hh"

using namespace occamy;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg{128 * 1024, 8, 64, 5, 128};
    Cache cache("bench", cfg);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_MemSystemStream(benchmark::State &state)
{
    MachineConfig cfg;
    MemSystem mem(cfg);
    Addr addr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(addr, 64, false, now));
        addr += 64;
        now += 2;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemSystemStream);

void
BM_RooflineAttainable(benchmark::State &state)
{
    RooflineParams p;
    PhaseOI oi{0.17, 0.25, MemLevel::Dram};
    unsigned vl = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(attainable(p, oi, vl));
        vl = vl % 8 + 1;
    }
}
BENCHMARK(BM_RooflineAttainable);

void
BM_GreedyPartition(benchmark::State &state)
{
    RooflineParams p;
    std::vector<PhaseOI> ois(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < ois.size(); ++i) {
        ois[i].issue = 0.1 + 0.2 * static_cast<double>(i);
        ois[i].mem = 0.1 + 0.25 * static_cast<double>(i);
        ois[i].level = MemLevel::Dram;
    }
    const unsigned total = 4 * static_cast<unsigned>(ois.size());
    for (auto _ : state)
        benchmark::DoNotOptimize(greedyPartition(p, ois, total));
}
BENCHMARK(BM_GreedyPartition)->Arg(2)->Arg(4)->Arg(8);

void
BM_CompilePhase(benchmark::State &state)
{
    const kir::Loop loop = workloads::makeNamedPhase("rho_eos4");
    CompileOptions opts =
        CompileOptions::forMachine(MachineConfig{});
    Compiler compiler(opts);
    for (auto _ : state) {
        std::vector<ArrayInfo> arrays;
        benchmark::DoNotOptimize(compiler.compileLoop(loop, arrays));
    }
}
BENCHMARK(BM_CompilePhase);

void
BM_SimulatedCycles(benchmark::State &state)
{
    const auto policy = static_cast<SharingPolicy>(state.range(0));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        System sys(MachineConfig::Builder(policy).cores(2).build());
        sys.setWorkload(0, "mem",
                        {workloads::makeNamedPhase("rho_eos1", 8192)});
        sys.setWorkload(1, "comp",
                        {workloads::makeNamedPhase("wsm51", 32768)});
        RunResult r = sys.run({.maxCycles = 4'000'000});
        cycles += r.cycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedCycles)
    ->Arg(static_cast<int>(SharingPolicy::Private))
    ->Arg(static_cast<int>(SharingPolicy::Temporal))
    ->Arg(static_cast<int>(SharingPolicy::Elastic))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
