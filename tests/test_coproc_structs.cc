/**
 * @file
 * Tests for the co-processor's building blocks: the resource table
 * (Table 1 registers + <AL>), the two configuration tables
 * (Section 4.2.1), the physical register-file model, the LSU queues
 * and the memory ordering buffer (Table 2).
 */

#include <gtest/gtest.h>

#include "coproc/lsu.hh"
#include "coproc/regfile.hh"
#include "coproc/tables.hh"
#include "core/mob.hh"
#include "mem/memsystem.hh"

namespace occamy
{
namespace
{

TEST(ResourceTable, RetargetConservesUnits)
{
    ResourceTable rt(2, 8);
    EXPECT_EQ(rt.al(), 8u);
    rt.retarget(0, 3);
    EXPECT_EQ(rt.core(0).vl, 3u);
    EXPECT_EQ(rt.al(), 5u);
    EXPECT_TRUE(rt.core(0).status);
    rt.retarget(1, 5);
    EXPECT_EQ(rt.al(), 0u);
    rt.retarget(0, 1);           // Shrink returns units.
    EXPECT_EQ(rt.al(), 2u);
    rt.retarget(0, 0);           // Release.
    EXPECT_EQ(rt.al(), 3u);
}

TEST(ResourceTable, AllOIsInCoreOrder)
{
    ResourceTable rt(2, 8);
    rt.core(1).oi = PhaseOI{0.5, 0.5, MemLevel::Dram};
    const auto ois = rt.allOIs();
    ASSERT_EQ(ois.size(), 2u);
    EXPECT_FALSE(ois[0].active());
    EXPECT_TRUE(ois[1].active());
}

TEST(ConfigTable, AssignReleaseOwnership)
{
    ConfigTable tbl(8);
    EXPECT_EQ(tbl.countFree(), 8u);
    EXPECT_TRUE(tbl.assign(0, 3));
    EXPECT_EQ(tbl.countOwned(0), 3u);
    EXPECT_EQ(tbl.countFree(), 5u);
    EXPECT_TRUE(tbl.assign(1, 5));
    EXPECT_FALSE(tbl.assign(0, 1));   // Nothing left.
    tbl.release(1);
    EXPECT_EQ(tbl.countFree(), 5u);
    EXPECT_TRUE(tbl.assign(0, 5));
    EXPECT_EQ(tbl.countOwned(0), 8u);
}

TEST(RegFile, PerCorePoolsAreIndependent)
{
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic);
    cfg.vregsPerBlk = 4;
    RegFileModel rf(cfg);
    EXPECT_EQ(rf.freeCount(0), 4u);
    // Exhaust core 0.
    for (int i = 0; i < 4; ++i)
        EXPECT_GE(rf.alloc(0), 0);
    EXPECT_EQ(rf.alloc(0), -1);
    // Core 1 unaffected.
    EXPECT_EQ(rf.freeCount(1), 4u);
    EXPECT_GE(rf.alloc(1), 0);
}

TEST(RegFile, RenameTracksPreviousMapping)
{
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic);
    RegFileModel rf(cfg);
    const std::int32_t p1 = rf.alloc(0);
    EXPECT_EQ(rf.rename(0, 5, p1), -1);
    EXPECT_EQ(rf.mapping(0, 5), p1);
    const std::int32_t p2 = rf.alloc(0);
    EXPECT_EQ(rf.rename(0, 5, p2), p1);
    rf.free(0, p1);
    EXPECT_EQ(rf.mapping(0, 5), p2);
}

TEST(RegFile, ResetCoreReclaimsEverything)
{
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic);
    cfg.vregsPerBlk = 8;
    RegFileModel rf(cfg);
    for (int i = 0; i < 5; ++i) {
        const std::int32_t p = rf.alloc(0);
        rf.rename(0, i, p);
    }
    EXPECT_EQ(rf.freeCount(0), 3u);
    rf.resetCore(0);
    EXPECT_EQ(rf.freeCount(0), 8u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(rf.mapping(0, i), -1);
}

TEST(RegFile, DoubleFreeAfterResetIsIgnored)
{
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic);
    cfg.vregsPerBlk = 8;
    RegFileModel rf(cfg);
    const std::int32_t p = rf.alloc(0);
    rf.resetCore(0);
    rf.free(0, p);   // In-flight commit after reset: must not corrupt.
    EXPECT_EQ(rf.freeCount(0), 8u);
}

TEST(RegFile, SharedModePinsArchContexts)
{
    MachineConfig cfg =
        MachineConfig::forPolicy(SharingPolicy::Temporal, 2);
    RegFileModel rf(cfg);
    EXPECT_TRUE(rf.shared());
    // 160 rows minus 2 cores x 32 pinned architectural contexts.
    EXPECT_EQ(rf.freeCount(0), 160u - 64u);
    // One shared pool: core 1 sees the same freelist.
    EXPECT_EQ(rf.freeCount(1), rf.freeCount(0));
    const std::int32_t p = rf.alloc(0);
    EXPECT_GE(p, 0);
    EXPECT_EQ(rf.freeCount(1), 160u - 64u - 1u);
    rf.free(0, p);
}

TEST(RegFile, SharedModeScalesRowsAtFourCores)
{
    MachineConfig cfg =
        MachineConfig::forPolicy(SharingPolicy::Temporal, 4);
    RegFileModel rf(cfg);
    // Per-core register budget preserved: 160 * (4/2) rows - 128 pinned.
    EXPECT_EQ(rf.freeCount(0), 320u - 128u);
}

TEST(RegFile, ReadyTracking)
{
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic);
    RegFileModel rf(cfg);
    const std::int32_t p = rf.alloc(1);
    rf.setReadyAt(p, 123);
    EXPECT_EQ(rf.readyAt(p), 123u);
}

TEST(Lsu, CapacityBackpressure)
{
    MachineConfig cfg;
    cfg.loadQueueEntries = 2;
    cfg.storeQueueEntries = 1;
    cfg.prefetchDegree = 0;
    MemSystem mem(cfg);
    Lsu lsu(cfg);

    EXPECT_TRUE(lsu.canIssueLoad());
    lsu.issueLoad(mem, 0x0, 64, 0);      // Cold miss: long latency.
    lsu.issueLoad(mem, 0x1000, 64, 0);
    EXPECT_FALSE(lsu.canIssueLoad());
    EXPECT_TRUE(lsu.canIssueStore());
    lsu.issueStore(mem, 0x2000, 64, 0);
    EXPECT_FALSE(lsu.canIssueStore());
    EXPECT_FALSE(lsu.empty());

    // Entries release once the accesses complete.
    lsu.tick(1'000'000);
    EXPECT_TRUE(lsu.canIssueLoad());
    EXPECT_TRUE(lsu.canIssueStore());
    EXPECT_TRUE(lsu.empty());
    EXPECT_EQ(lsu.loadsIssued(), 2u);
    EXPECT_EQ(lsu.storesIssued(), 1u);
}

TEST(Lsu, ReleasesInCompletionOrder)
{
    MachineConfig cfg;
    cfg.loadQueueEntries = 2;
    cfg.prefetchDegree = 0;
    MemSystem mem(cfg);
    Lsu lsu(cfg);
    // First access cold (slow), second hits the just-filled line (fast
    // at a later issue time).
    lsu.issueLoad(mem, 0x0, 64, 0);
    const Cycle fast = lsu.issueLoad(mem, 0x0, 64, 400);
    lsu.tick(fast);
    // The fast one released even though the slot order differs.
    EXPECT_TRUE(lsu.canIssueLoad());
}

TEST(Mob, OverlapDetection)
{
    Mob mob;
    EXPECT_TRUE(mob.insert(100, 64, /*is_store=*/true, 500));
    // Loads conflict with outstanding stores on overlap.
    EXPECT_TRUE(mob.conflicts(130, 8, false));
    EXPECT_FALSE(mob.conflicts(164, 8, false));
    // Stores conflict with anything outstanding.
    EXPECT_TRUE(mob.insert(200, 64, /*is_store=*/false, 600));
    EXPECT_TRUE(mob.conflicts(200, 4, true));
    // Loads do not conflict with loads.
    EXPECT_FALSE(mob.conflicts(200, 4, false));
}

TEST(Mob, ReadyCycleIsMaxOfConflicts)
{
    Mob mob;
    mob.insert(0, 64, true, 500);
    mob.insert(32, 64, true, 800);
    EXPECT_EQ(mob.readyCycle(40, 8, false), 800u);
    EXPECT_EQ(mob.readyCycle(8, 8, false), 500u);
    EXPECT_EQ(mob.readyCycle(4096, 8, false), 0u);
}

TEST(Mob, RetireDropsCompleted)
{
    Mob mob(2);
    mob.insert(0, 64, true, 100);
    mob.insert(64, 64, true, 200);
    EXPECT_FALSE(mob.insert(128, 64, true, 300));   // Full.
    mob.retire(150);
    EXPECT_EQ(mob.size(), 1u);
    EXPECT_TRUE(mob.insert(128, 64, true, 300));
    EXPECT_FALSE(mob.conflicts(0, 8, true));
}

} // namespace
} // namespace occamy
