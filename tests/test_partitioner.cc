/**
 * @file
 * Tests for the greedy lane partitioner (Section 5.2): the Eq. 1
 * constraints, the paper's fairness properties, the motivating
 * example's plans (8/24 then 12/20 then 0/32), the VLS static plan,
 * and parameterized invariants over random-ish OI mixes.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "lanemgr/lanemgr.hh"
#include "lanemgr/partitioner.hh"

namespace occamy
{
namespace
{

RooflineParams
params()
{
    return RooflineParams::fromConfig(MachineConfig{});
}

PhaseOI
dram(double oi_issue, double oi_mem)
{
    return PhaseOI{oi_issue, oi_mem, MemLevel::Dram};
}

PhaseOI
cacheRes(double oi)
{
    return PhaseOI{oi, oi, MemLevel::VecCache};
}

TEST(Partitioner, MotivationPhase1Plan)
{
    // WL#0.p1 (oi 0.09) + WL#1 (compute): the paper assigns 8 and 24
    // lanes (2 and 6 BUs).
    const auto plan = greedyPartition(
        params(), {dram(0.09, 0.09), cacheRes(1.0)}, 8);
    EXPECT_EQ(plan[0], 2u);
    EXPECT_EQ(plan[1], 6u);
}

TEST(Partitioner, MotivationPhase2Plan)
{
    // WL#0.p2 (issue 0.125 / mem 0.156) + WL#1: 12 and 20 lanes.
    const auto plan = greedyPartition(
        params(), {dram(0.125, 0.156), cacheRes(1.0)}, 8);
    EXPECT_EQ(plan[0], 3u);
    EXPECT_EQ(plan[1], 5u);
}

TEST(Partitioner, FinishedWorkloadReleasesEverything)
{
    // WL#0 done (OI = 0): WL#1 gets all 32 lanes.
    const auto plan =
        greedyPartition(params(), {PhaseOI{}, cacheRes(1.0)}, 8);
    EXPECT_EQ(plan[0], 0u);
    EXPECT_EQ(plan[1], 8u);
}

TEST(Partitioner, EqualComputeWorkloadsSplitEqually)
{
    // Section 5.2's fairness: compute-only co-runners divide equally.
    const auto plan = greedyPartition(
        params(), {cacheRes(1.0), cacheRes(1.0)}, 8);
    EXPECT_EQ(plan[0], 4u);
    EXPECT_EQ(plan[1], 4u);
}

TEST(Partitioner, MemoryWorkloadsLeaveLanesFree)
{
    // Two DRAM-bound workloads with knee 2: 4 BUs stay free.
    const auto plan = greedyPartition(
        params(), {dram(0.09, 0.09), dram(0.09, 0.09)}, 8);
    EXPECT_EQ(plan[0], 2u);
    EXPECT_EQ(plan[1], 2u);
}

TEST(Partitioner, NoStarvation)
{
    // Even a hopeless workload gets its minimum one ExeBU.
    const auto plan = greedyPartition(
        params(), {dram(0.01, 0.01), cacheRes(2.0)}, 8);
    EXPECT_GE(plan[0], 1u);
}

TEST(Partitioner, FourCoreMixedPlan)
{
    const auto plan = greedyPartition(
        params(),
        {dram(0.09, 0.09), dram(0.125, 0.156), cacheRes(1.0),
         cacheRes(1.0)},
        16);
    EXPECT_EQ(plan[0], 2u);
    EXPECT_EQ(plan[1], 3u);
    // The compute pair splits the remainder fairly.
    EXPECT_EQ(plan[2] + plan[3], 11u);
    EXPECT_LE(plan[2] > plan[3] ? plan[2] - plan[3] : plan[3] - plan[2],
              1u);
}

TEST(Partitioner, StaticPlanUsesMostDemandingPhase)
{
    // VLS for the motivating pair: WL#0's max-knee phase is p2
    // (3 BUs), WL#1 always gains: 12/20 lanes as in Fig. 2(d).
    const auto plan = staticPartition(
        params(),
        {{dram(0.09, 0.09), dram(0.125, 0.156)}, {cacheRes(1.0)}}, 8);
    EXPECT_EQ(plan[0], 3u);
    EXPECT_EQ(plan[1], 5u);
}

TEST(Partitioner, StaticPlanIgnoresInactiveWorkloads)
{
    const auto plan =
        staticPartition(params(), {{cacheRes(1.0)}, {}}, 8);
    EXPECT_EQ(plan[0], 8u);
    EXPECT_EQ(plan[1], 0u);
}

TEST(LaneMgrClass, PlanSchedulingLifecycle)
{
    LaneMgr mgr(params(), 8, /*latency=*/10);
    EXPECT_FALSE(mgr.planDue(100));
    mgr.notifyPhaseEvent(100);
    EXPECT_FALSE(mgr.planDue(105));
    EXPECT_TRUE(mgr.planDue(110));
    const auto plan = mgr.makePlan({cacheRes(1.0), PhaseOI{}});
    EXPECT_EQ(plan[0], 8u);
    EXPECT_EQ(mgr.plansMade(), 1u);
    EXPECT_FALSE(mgr.planDue(200));   // Consumed.
}

/** Parameterized invariants over OI mixes and machine sizes. */
class PartitionSweep
    : public ::testing::TestWithParam<
          std::tuple<double, double, unsigned>>
{
};

TEST_P(PartitionSweep, Eq1ConstraintsHold)
{
    const auto [oi0, oi1, total] = GetParam();
    const std::vector<PhaseOI> ois = {dram(oi0, oi0),
                                      cacheRes(oi1)};
    const auto plan = greedyPartition(params(), ois, total);
    ASSERT_EQ(plan.size(), 2u);
    unsigned sum = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (ois[i].active())
            EXPECT_GE(plan[i], 1u) << "active workload starved";
        else
            EXPECT_EQ(plan[i], 0u);
        sum += plan[i];
    }
    EXPECT_LE(sum, total);
}

TEST_P(PartitionSweep, PlanMaximizesMarginalGains)
{
    const auto [oi0, oi1, total] = GetParam();
    const std::vector<PhaseOI> ois = {dram(oi0, oi0), cacheRes(oi1)};
    const auto plan = greedyPartition(params(), ois, total);
    const unsigned used = plan[0] + plan[1];
    if (used < total) {
        // Leftover lanes imply nobody can gain any more.
        for (std::size_t i = 0; i < 2; ++i) {
            if (plan[i] == 0)
                continue;
            EXPECT_LE(attainable(params(), ois[i], plan[i] + 1) -
                          attainable(params(), ois[i], plan[i]),
                      1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, PartitionSweep,
    ::testing::Combine(::testing::Values(0.05, 0.09, 0.17, 0.3),
                       ::testing::Values(0.25, 0.5, 1.0, 2.0),
                       ::testing::Values(4u, 8u, 16u)));

} // namespace
} // namespace occamy
