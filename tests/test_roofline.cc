/**
 * @file
 * Tests for the vector-length-aware roofline (Section 5.1): exact
 * reproduction of Table 5, ceiling formulas, knee selection, and
 * monotonicity/boundedness properties over parameter sweeps.
 */

#include <gtest/gtest.h>

#include "lanemgr/roofline.hh"

namespace occamy
{
namespace
{

RooflineParams
params()
{
    return RooflineParams::fromConfig(MachineConfig{});
}

TEST(Roofline, FpPeakIsLinearInLanes)
{
    const RooflineParams p = params();
    // 1 FLOP/lane/cycle at 2 GHz: 8 GFLOP/s per ExeBU (Table 5).
    EXPECT_DOUBLE_EQ(fpPeak(p, 1), 8.0);
    EXPECT_DOUBLE_EQ(fpPeak(p, 4), 32.0);
    EXPECT_DOUBLE_EQ(fpPeak(p, 8), 64.0);
}

TEST(Roofline, IssueBandwidthEq2)
{
    const RooflineParams p = params();
    // Eq. 2 with issue width 1: 16 B/cycle per BU at 2 GHz = 32 GB/s.
    EXPECT_DOUBLE_EQ(simdIssueBandwidth(p, 1), 32.0);
    EXPECT_DOUBLE_EQ(simdIssueBandwidth(p, 4), 128.0);
}

TEST(Roofline, MemBandwidthPerLevel)
{
    const RooflineParams p = params();
    EXPECT_DOUBLE_EQ(memBandwidth(p, MemLevel::Dram), 64.0);
    EXPECT_DOUBLE_EQ(memBandwidth(p, MemLevel::L2), 128.0);
    EXPECT_DOUBLE_EQ(memBandwidth(p, MemLevel::VecCache), 256.0);
}

TEST(Roofline, Table5ExactReproduction)
{
    const RooflineParams p = params();
    const PhaseOI oi{1.0 / 6.0, 0.25, MemLevel::Dram};   // WL8.p1.

    const double expected[] = {16.0 / 3.0, 32.0 / 3.0, 16.0, 16.0,
                               16.0, 16.0, 16.0, 16.0};
    for (unsigned bus = 1; bus <= 8; ++bus)
        EXPECT_NEAR(attainable(p, oi, bus), expected[bus - 1], 1e-9)
            << "VL=" << bus * 4 << " lanes";
}

TEST(Roofline, InactivePhaseAttainsNothing)
{
    const RooflineParams p = params();
    EXPECT_DOUBLE_EQ(attainable(p, PhaseOI{}, 4), 0.0);
    EXPECT_DOUBLE_EQ(attainable(p, PhaseOI{0.5, 0.5, MemLevel::Dram}, 0),
                     0.0);
}

TEST(Roofline, KneeOfComputeBoundPhaseIsMax)
{
    const RooflineParams p = params();
    // Cache-resident OI 1.0: FP-peak-bound all the way.
    const PhaseOI oi{1.0, 1.0, MemLevel::VecCache};
    EXPECT_EQ(kneeVl(p, oi, 8), 8u);
}

TEST(Roofline, KneeOfMemoryBoundPhase)
{
    const RooflineParams p = params();
    // rho_eos1-like OI 0.09: DRAM ceiling 5.8 GFLOP/s reached at 2 BUs.
    const PhaseOI oi{0.09, 0.09, MemLevel::Dram};
    EXPECT_EQ(kneeVl(p, oi, 8), 2u);
}

TEST(Roofline, KneeHonorsIssueBandwidth)
{
    const RooflineParams p = params();
    // WL8.p1: issue-bound until 3 BUs (Case 4 of the paper).
    const PhaseOI oi{1.0 / 6.0, 0.25, MemLevel::Dram};
    EXPECT_EQ(kneeVl(p, oi, 8), 3u);
}

/** Property sweep over OI values and lane counts. */
class RooflineSweep
    : public ::testing::TestWithParam<std::tuple<double, int>>
{
};

TEST_P(RooflineSweep, AttainableIsMonotonicInLanes)
{
    const auto [oi_val, level] = GetParam();
    const RooflineParams p = params();
    const PhaseOI oi{oi_val, oi_val, static_cast<MemLevel>(level)};
    double prev = 0.0;
    for (unsigned bus = 1; bus <= 8; ++bus) {
        const double ap = attainable(p, oi, bus);
        EXPECT_GE(ap, prev - 1e-12);
        prev = ap;
    }
}

TEST_P(RooflineSweep, AttainableNeverExceedsAnyCeiling)
{
    const auto [oi_val, level] = GetParam();
    const RooflineParams p = params();
    const PhaseOI oi{oi_val, oi_val, static_cast<MemLevel>(level)};
    for (unsigned bus = 1; bus <= 8; ++bus) {
        const double ap = attainable(p, oi, bus);
        EXPECT_LE(ap, fpPeak(p, bus) + 1e-9);
        EXPECT_LE(ap, simdIssueBandwidth(p, bus) * oi.issue + 1e-9);
        EXPECT_LE(ap, memBandwidth(p, oi.level) * oi.mem + 1e-9);
    }
}

TEST_P(RooflineSweep, KneeIsThePlateauStart)
{
    const auto [oi_val, level] = GetParam();
    const RooflineParams p = params();
    const PhaseOI oi{oi_val, oi_val, static_cast<MemLevel>(level)};
    const unsigned knee = kneeVl(p, oi, 8);
    ASSERT_GE(knee, 1u);
    // No configuration below the knee attains the knee's performance,
    // and the knee attains (numerically) the global maximum.
    const double at_knee = attainable(p, oi, knee);
    for (unsigned bus = 1; bus < knee; ++bus)
        EXPECT_LT(attainable(p, oi, bus), at_knee - 1e-12);
    for (unsigned bus = knee; bus <= 8; ++bus)
        EXPECT_LE(attainable(p, oi, bus), at_knee + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    OiLevels, RooflineSweep,
    ::testing::Combine(
        ::testing::Values(0.05, 0.09, 0.125, 0.17, 0.25, 0.5, 1.0, 2.0),
        ::testing::Values(0, 1, 2)));

} // namespace
} // namespace occamy
