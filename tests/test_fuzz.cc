/**
 * @file
 * Deterministic fuzzing: generate pseudo-random (seeded) kernel loops
 * and co-run them under every sharing policy, checking the global
 * invariants that must survive any workload shape — completion, exact
 * trip accounting, lane conservation, bounded utilization, and
 * policy-invariant DRAM traffic.
 */

#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "kir/analysis.hh"
#include "obs/sink.hh"
#include "policy/sharing_model.hh"
#include "runner/runner.hh"
#include "sim/system.hh"
#include "sim/trace.hh"
#include "traffic/admission.hh"
#include "traffic/arrival.hh"

namespace occamy
{
namespace
{

/** Small deterministic PRNG (xorshift32). */
class Rng
{
  public:
    explicit Rng(std::uint32_t seed) : state_(seed ? seed : 1) {}

    std::uint32_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return state_;
    }

    /** Uniform in [lo, hi]. */
    std::uint32_t
    range(std::uint32_t lo, std::uint32_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

  private:
    std::uint32_t state_;
};

/** Generate a random but well-formed loop. */
kir::Loop
randomLoop(Rng &rng, const std::string &name)
{
    kir::Loop loop;
    loop.name = name;
    loop.trip = 512u << rng.range(0, 4);          // 512 .. 8192.
    const bool streaming = rng.range(0, 1) == 1;
    const unsigned n_in = rng.range(1, 6);
    const unsigned n_out = rng.range(0, 2);
    const std::uint64_t elems =
        streaming ? loop.trip : 1024u << rng.range(0, 2);

    std::vector<kir::ExprP> values;
    for (unsigned i = 0; i < n_in; ++i) {
        const int a = loop.addArray(name + "_i" + std::to_string(i),
                                    elems, streaming);
        values.push_back(kir::load(a, static_cast<std::int32_t>(
                                           rng.range(0, 2))));
    }
    if (rng.range(0, 3) == 0)
        values.push_back(kir::cst(1.0 + rng.range(0, 7)));

    // Random DAG: combine random pairs.
    const unsigned ops = rng.range(1, 12);
    for (unsigned k = 0; k < ops; ++k) {
        const auto &a = values[rng.next() % values.size()];
        const auto &b = values[rng.next() % values.size()];
        static const kir::ArithOp kOps[] = {
            kir::ArithOp::Add, kir::ArithOp::Mul, kir::ArithOp::Sub,
            kir::ArithOp::Max, kir::ArithOp::Min};
        values.push_back(kir::op(kOps[rng.range(0, 4)], a, b));
    }

    if (n_out == 0 && rng.range(0, 1) == 0) {
        loop.reduction = values.back();
    } else {
        for (unsigned i = 0; i < std::max(n_out, 1u); ++i) {
            const int o = loop.addArray(name + "_o" + std::to_string(i),
                                        elems, streaming);
            loop.store(o, values[values.size() - 1 - i]);
        }
    }
    return loop;
}

class FuzzSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FuzzSweep, CorunInvariantsHoldForAllPolicies)
{
    Rng rng(0x9e3779b9u + GetParam() * 0x85ebca6bu);
    std::vector<kir::Loop> wl0, wl1;
    const unsigned n0 = rng.range(1, 3);
    for (unsigned i = 0; i < n0; ++i)
        wl0.push_back(randomLoop(rng, "a" + std::to_string(i)));
    const unsigned n1 = rng.range(1, 2);
    for (unsigned i = 0; i < n1; ++i)
        wl1.push_back(randomLoop(rng, "b" + std::to_string(i)));

    std::uint64_t dram_ref = 0;
    for (SharingPolicy p :
         {SharingPolicy::Private, SharingPolicy::Temporal,
          SharingPolicy::StaticSpatial, SharingPolicy::Elastic}) {
        System sys(MachineConfig::forPolicy(p, 2));
        sys.setWorkload(0, "w0", wl0);
        sys.setWorkload(1, "w1", wl1);
        const RunResult r = sys.run({.maxCycles = 30'000'000});

        ASSERT_FALSE(r.timedOut)
            << policyName(p) << " seed " << GetParam();
        EXPECT_GT(r.cores[0].finish, 0u);
        EXPECT_GT(r.cores[1].finish, 0u);
        EXPECT_GE(r.simdUtil, 0.0);
        EXPECT_LE(r.simdUtil, 1.0 + 1e-9);
        EXPECT_EQ(r.cores[0].phases.size(), wl0.size());
        EXPECT_EQ(r.cores[1].phases.size(), wl1.size());

        // Lane conservation at the end of an elastic run: everything
        // released.
        for (const auto &core : r.cores)
            for (const auto &ph : core.phases) {
                EXPECT_LE(ph.firstVl, 8u);
                EXPECT_LE(ph.lastVl, 8u);
            }

        // Work conservation: identical DRAM traffic across policies
        // (within prefetch-overshoot noise).
        if (p == SharingPolicy::Private) {
            dram_ref = r.dramBytes;
        } else if (dram_ref > (1u << 20)) {
            const double ratio = static_cast<double>(r.dramBytes) /
                                 static_cast<double>(dram_ref);
            EXPECT_GT(ratio, 0.85) << policyName(p);
            EXPECT_LT(ratio, 1.15) << policyName(p);
        }
    }
}

TEST_P(FuzzSweep, ExactElementAccounting)
{
    Rng rng(0xdeadbeefu + GetParam() * 2654435761u);
    kir::Loop loop = randomLoop(rng, "x");
    loop.trip = 777 + GetParam() * 131;     // Awkward tails.
    // Force the vector path even for small trips.
    const kir::LoopSummary s = kir::analyze(loop);

    System sys(MachineConfig::forPolicy(SharingPolicy::Private, 2));
    sys.setWorkload(0, "x", {loop});
    sys.setWorkload(1, "idle", {});
    const RunResult r = sys.run({.maxCycles = 30'000'000});
    ASSERT_FALSE(r.timedOut);

    if (loop.trip >= 128) {
        const std::uint64_t iters = (loop.trip + 15) / 16;
        EXPECT_EQ(r.cores[0].memIssued, iters * s.memInsts)
            << "seed " << GetParam();
    }
}

/**
 * Event-stream invariants: whatever random workload runs under the
 * elastic policy, its trace must be well-formed — monotone timestamps,
 * per-core balanced and non-nested phase begin/end pairs, and lane
 * conservation at every published partition plan.
 */
TEST_P(FuzzSweep, EventStreamInvariantsHold)
{
    Rng rng(0xc0ffee11u + GetParam() * 0x9e3779b9u);
    std::vector<kir::Loop> wl0, wl1;
    const unsigned n0 = rng.range(1, 3);
    for (unsigned i = 0; i < n0; ++i)
        wl0.push_back(randomLoop(rng, "a" + std::to_string(i)));
    const unsigned n1 = rng.range(1, 2);
    for (unsigned i = 0; i < n1; ++i)
        wl1.push_back(randomLoop(rng, "b" + std::to_string(i)));

    const MachineConfig cfg =
        MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    System sys(cfg);
    sys.setWorkload(0, "w0", wl0);
    sys.setWorkload(1, "w1", wl1);

    obs::RingSink sink(1u << 20, obs::kEvPhase | obs::kEvPartition |
                                     obs::kEvReconfig);
    RunOptions opt;
    opt.maxCycles = 30'000'000;
    opt.sink = &sink;
    const RunResult r = sys.run(opt);
    ASSERT_FALSE(r.timedOut) << "seed " << GetParam();

    const obs::TraceBuffer buf = sink.take();
    ASSERT_FALSE(buf.empty());
    ASSERT_EQ(buf.dropped, 0u);

    Cycle prev = 0;
    std::vector<int> open_phase(2, 0);
    std::vector<std::uint64_t> begins(2, 0), ends(2, 0);
    // PartitionDecision events of one plan share a cycle; collect the
    // per-cycle share sums and check them against the machine total.
    std::map<Cycle, unsigned> plan_sum;
    for (const obs::Event &e : buf.events) {
        ASSERT_GE(e.cycle, prev) << "timestamps must be monotone";
        prev = e.cycle;
        switch (e.kind) {
          case obs::EventKind::PhaseBegin:
            ASSERT_LT(e.core, 2u);
            ++begins[e.core];
            ASSERT_EQ(open_phase[e.core], 0)
                << "nested phase on core " << e.core;
            ++open_phase[e.core];
            break;
          case obs::EventKind::PhaseEnd:
            ASSERT_LT(e.core, 2u);
            ++ends[e.core];
            ASSERT_EQ(open_phase[e.core], 1)
                << "unmatched phase end on core " << e.core;
            --open_phase[e.core];
            break;
          case obs::EventKind::PartitionDecision:
            EXPECT_LE(e.b, cfg.numExeBUs);
            plan_sum[e.cycle] += static_cast<unsigned>(e.b);
            break;
          case obs::EventKind::PartitionPlan:
            EXPECT_EQ(e.b, cfg.numExeBUs);
            EXPECT_LE(e.a, e.b) << "plan oversubscribes the ExeBUs";
            EXPECT_EQ(plan_sum[e.cycle], e.a)
                << "decision shares disagree with the plan summary";
            break;
          case obs::EventKind::VlApply:
            EXPECT_LE(e.a, cfg.numExeBUs);
            EXPECT_LE(e.b, cfg.numExeBUs) << "free ExeBUs out of range";
            break;
          case obs::EventKind::VlResolve:
            EXPECT_LE(e.b, cfg.numExeBUs);
            break;
          default:
            break;
        }
    }
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_EQ(begins[c], ends[c]) << "core " << c;
        EXPECT_EQ(open_phase[c], 0) << "core " << c;
        EXPECT_EQ(begins[c], c == 0 ? wl0.size() : wl1.size())
            << "core " << c;
    }
}

/**
 * Fault-plan fuzzing: a seeded random FaultPlan (lane fault, <VL>
 * denials, DRAM spike, reconfiguration delay) applied to a seeded
 * random co-run must leave the global invariants standing under every
 * registered policy — the run completes (the watchdog guarantees
 * forward progress even if a denial window pins a retry spin), the
 * applied lane faults are bounded by the machine, utilization stays in
 * range, and the same seed reproduces the identical outcome.
 */
TEST_P(FuzzSweep, InvariantsHoldUnderRandomFaultPlans)
{
    Rng rng(0xfa017a11u + GetParam() * 0x9e3779b9u);
    std::vector<kir::Loop> wl0, wl1;
    const unsigned n0 = rng.range(1, 2);
    for (unsigned i = 0; i < n0; ++i)
        wl0.push_back(randomLoop(rng, "a" + std::to_string(i)));
    wl1.push_back(randomLoop(rng, "b0"));

    for (const policy::SharingModel *m : policy::allModels()) {
        const MachineConfig cfg = MachineConfig::forPolicy(m->id(), 2);
        const fault::FaultPlan plan =
            fault::FaultPlan::random(GetParam() * 2654435761u + 1, cfg);

        RunOptions opt;
        opt.maxCycles = 30'000'000;
        opt.faultPlan = &plan;
        opt.watchdogCycles = 100'000;

        auto once = [&] {
            System sys(cfg);
            sys.setWorkload(0, "w0", wl0);
            sys.setWorkload(1, "w1", wl1);
            return sys.run(opt);
        };
        const RunResult r = once();

        ASSERT_FALSE(r.timedOut)
            << m->key() << " seed " << GetParam() << " plan "
            << plan.describe();
        EXPECT_GT(r.cores[0].finish, 0u) << m->key();
        EXPECT_GT(r.cores[1].finish, 0u) << m->key();
        EXPECT_GE(r.simdUtil, 0.0) << m->key();
        EXPECT_LE(r.simdUtil, 1.0 + 1e-9) << m->key();
        EXPECT_LE(r.laneFaults, cfg.numExeBUs) << m->key();
        EXPECT_EQ(r.cores[0].phases.size(), wl0.size()) << m->key();
        EXPECT_EQ(r.cores[1].phases.size(), wl1.size()) << m->key();

        // Same seed, same plan, same machine: identical outcome.
        const RunResult r2 = once();
        EXPECT_EQ(r.cores[0].finish, r2.cores[0].finish) << m->key();
        EXPECT_EQ(r.cores[1].finish, r2.cores[1].finish) << m->key();
        EXPECT_EQ(r.watchdogTrips, r2.watchdogTrips) << m->key();
        EXPECT_EQ(r.laneFaults, r2.laneFaults) << m->key();
    }
}

/**
 * Checkpoint-cycle fuzzing: for a seeded random co-run on a seeded
 * random policy, interrupting the run at a seeded random cycle with a
 * saveCheckpoint/restoreCheckpoint round trip must not change anything
 * the simulation produces — the result JSON and the gem5-style stats
 * text are byte-identical to the uninterrupted run. (tests/test_ckpt.cc
 * proves the same property exhaustively on fixed workloads; this
 * variant hunts for workload shapes that break the pause boundary.)
 */
TEST_P(FuzzSweep, RandomCheckpointCycleIsInvisible)
{
    Rng rng(0xcec7a9b1u + GetParam() * 0x85ebca6bu);
    std::vector<kir::Loop> wl0, wl1;
    const unsigned n0 = rng.range(1, 3);
    for (unsigned i = 0; i < n0; ++i)
        wl0.push_back(randomLoop(rng, "a" + std::to_string(i)));
    wl1.push_back(randomLoop(rng, "b0"));

    const auto &models = policy::allModels();
    const policy::SharingModel *m = models[rng.next() % models.size()];
    const MachineConfig cfg = MachineConfig::forPolicy(m->id(), 2);
    const Cycle ckpt_at = rng.range(1, 50'000);

    RunOptions opt;
    opt.maxCycles = 30'000'000;
    opt.fastForward = rng.range(0, 1) == 1;

    auto fresh = [&] {
        auto sys = std::make_unique<System>(cfg);
        sys->setWorkload(0, "w0", wl0);
        sys->setWorkload(1, "w1", wl1);
        return sys;
    };

    const RunResult straight = fresh()->run(opt);
    ASSERT_FALSE(straight.timedOut)
        << m->key() << " seed " << GetParam();

    std::string bytes;
    {
        auto sys = fresh();
        sys->boot(opt);
        sys->advance(ckpt_at);
        std::ostringstream os(std::ios::binary);
        sys->saveCheckpoint(os);
        bytes = os.str();
    }
    auto sys = fresh();
    std::istringstream is(bytes, std::ios::binary);
    sys->restoreCheckpoint(is, opt);
    sys->advance();
    const RunResult resumed = sys->finalize();

    const std::string what = std::string(m->key()) + " seed " +
                             std::to_string(GetParam()) + " ckpt@" +
                             std::to_string(ckpt_at);
    EXPECT_EQ(trace::toJson(straight), trace::toJson(resumed)) << what;
    EXPECT_EQ(straight.statsText, resumed.statsText) << what;
}

/**
 * Traffic fuzzing: a seeded random TrafficConfig (process, scheduler,
 * admission policy, tenant count, rate, SLO) drained on a random
 * policy must conserve jobs — every generated arrival appears exactly
 * once in the lifecycle records, every record of a drained run is
 * either completed with ordered timestamps or (admission only)
 * explicitly shed, SLO violations never exceed the job count, and the
 * same config reproduces the identical outcome.
 */
TEST_P(FuzzSweep, TrafficInvariantsHoldForRandomConfigs)
{
    Rng rng(0x7a55f1cu + GetParam() * 0x9e3779b9u);

    traffic::TrafficConfig tc;
    const auto &procs = traffic::allProcesses();
    tc.process = procs[rng.next() % procs.size()]->key();
    const auto &dispatchers = traffic::allDispatchers();
    tc.scheduler = dispatchers[rng.next() % dispatchers.size()]->key();
    tc.tenants = rng.range(1, 4);
    tc.seed = 0x51237 + GetParam();
    tc.jobsPerTenant = rng.range(1, 3);
    tc.meanGapCycles = 50'000.0 * rng.range(1, 4);
    tc.sloCycles = rng.range(0, 1) ? 800'000 : 0;
    tc.burstiness = 1.0 + rng.range(0, 15);
    const auto &admissions = traffic::allAdmissionPolicies();
    tc.admission = admissions[rng.next() % admissions.size()]->key();
    tc.admissionCap = rng.range(1, 4);
    const bool admission_on = tc.admission != "none";

    const auto &models = policy::allModels();
    const policy::SharingModel *m = models[rng.next() % models.size()];

    runner::JobSpec spec;
    spec.label = "traffic-fuzz";
    spec.cfg = MachineConfig::forPolicy(m->id(), 2);
    spec.traffic = tc;
    spec.maxCycles = 60'000'000;

    const std::string what = std::string(tc.process) + "/" +
                             tc.scheduler + "/" + tc.admission + "/" +
                             m->key() + " seed " +
                             std::to_string(GetParam());
    const runner::JobResult r = runner::Runner::runOne(spec);
    ASSERT_TRUE(r.ok()) << what << ": " << r.error;

    // Job conservation: the simulator's lifecycle records match the
    // generated stream one-to-one — nothing lost, nothing duplicated.
    // With admission on, "shed" is the only other legal fate and it is
    // always explicit; defers may delay jobs but never lose them.
    const std::vector<traffic::Arrival> stream = traffic::generate(tc);
    const auto &jobs = r.result.trafficJobs;
    ASSERT_EQ(jobs.size(), stream.size()) << what;
    ASSERT_EQ(r.trafficMetrics.arrivals, stream.size()) << what;
    EXPECT_EQ(r.trafficMetrics.completed + r.trafficMetrics.shed,
              stream.size())
        << what;
    if (!admission_on) {
        EXPECT_EQ(r.trafficMetrics.shed, 0u) << what;
    }
    EXPECT_LE(r.trafficMetrics.sloViolations, stream.size()) << what;
    EXPECT_EQ(r.result.sloViolations, r.trafficMetrics.sloViolations)
        << what;
    EXPECT_EQ(r.result.jobsShed, r.trafficMetrics.shed) << what;
    EXPECT_EQ(r.result.jobDeferrals, r.trafficMetrics.deferrals) << what;
    EXPECT_GT(r.trafficMetrics.fairnessJain, 0.0) << what;
    EXPECT_LE(r.trafficMetrics.fairnessJain, 1.0 + 1e-12) << what;

    std::uint64_t shed_records = 0;
    for (std::size_t q = 0; q < jobs.size(); ++q) {
        const traffic::JobRecord &j = jobs[q];
        EXPECT_EQ(j.tenant, stream[q].tenant) << what << " job " << q;
        if (j.shed) {
            // Shed jobs are counted, never dispatched or finished.
            ++shed_records;
            EXPECT_TRUE(admission_on) << what << " job " << q;
            EXPECT_FALSE(j.admitted()) << what << " job " << q;
            EXPECT_FALSE(j.completed()) << what << " job " << q;
            continue;
        }
        ASSERT_TRUE(j.completed()) << what << " job " << q;
        if (!admission_on) {
            EXPECT_EQ(j.defers, 0u) << what << " job " << q;
        }
        // Ordered lifecycle: arrive <= admit < finish, and open-loop
        // jobs keep their generated arrival cycle.
        EXPECT_GE(j.admit, j.arrive) << what << " job " << q;
        EXPECT_GT(j.finish, j.admit) << what << " job " << q;
        if (stream[q].dependsOn == traffic::kNoJob &&
            !traffic::processByName(tc.process)->closedLoop()) {
            EXPECT_EQ(j.arrive, stream[q].arriveAt)
                << what << " job " << q;
        }
    }
    EXPECT_EQ(shed_records, r.trafficMetrics.shed) << what;

    // Same config, same everything.
    const runner::JobResult r2 = runner::Runner::runOne(spec);
    ASSERT_TRUE(r2.ok()) << what;
    EXPECT_EQ(trace::toJson(r.result), trace::toJson(r2.result)) << what;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0u, 24u));

} // namespace
} // namespace occamy
