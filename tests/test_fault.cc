/**
 * @file
 * Fault-injection subsystem tests: plan grammar round-trips, seeded
 * plan determinism, the no-fault byte-identity guarantee, ticked vs.
 * fast-forwarded equivalence under faults, graceful lane degradation
 * across every registered sharing policy, and the livelock watchdog's
 * scalar-fallback escalation (with the deadlock it prevents shown by
 * switching it off).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "obs/export.hh"
#include "obs/sink.hh"
#include "policy/sharing_model.hh"
#include "sim/system.hh"
#include "sim/trace.hh"
#include "workloads/phases.hh"

namespace occamy
{
namespace
{

using workloads::makeNamedPhase;

std::vector<kir::Loop>
memWorkload()
{
    return {makeNamedPhase("rho_eos1", 16384),
            makeNamedPhase("rho_eos4", 16384)};
}

std::vector<kir::Loop>
compWorkload(std::uint64_t trip = 65536)
{
    return {makeNamedPhase("wsm51", trip)};
}

RunResult
runPair(SharingPolicy p, const RunOptions &opt)
{
    System sys(MachineConfig::forPolicy(p, 2));
    sys.setWorkload(0, "mem", memWorkload());
    sys.setWorkload(1, "comp", compWorkload());
    return sys.run(opt);
}

/** Serialize a trace buffer to its compact binary bytes. */
std::string
traceBytes(const obs::TraceBuffer &buf)
{
    std::ostringstream os(std::ios::binary);
    obs::writeBinaryTrace(os, buf);
    return os.str();
}

// --- Plan grammar. ---

TEST(FaultPlan, ParseRoundTripsThroughDescribe)
{
    const std::string text =
        "lane@50000:bu=3;vldeny@10000+5000:core=0;"
        "dram@20000+10000:lat=200,bw=4;"
        "cfgdelay@30000+10000:core=1,cycles=64";
    const fault::FaultPlan plan = fault::FaultPlan::parse(text);
    ASSERT_EQ(plan.faults.size(), 4u);

    EXPECT_EQ(plan.faults[0].kind, fault::FaultKind::LaneFault);
    EXPECT_EQ(plan.faults[0].at, 50000u);
    EXPECT_EQ(plan.faults[0].unit, 3u);

    EXPECT_EQ(plan.faults[1].kind, fault::FaultKind::VlDenial);
    EXPECT_EQ(plan.faults[1].duration, 5000u);
    EXPECT_EQ(plan.faults[1].core, 0u);

    EXPECT_EQ(plan.faults[2].kind, fault::FaultKind::DramSpike);
    EXPECT_EQ(plan.faults[2].extraLatency, 200u);
    EXPECT_EQ(plan.faults[2].bwDivisor, 4u);

    EXPECT_EQ(plan.faults[3].kind, fault::FaultKind::ReconfigDelay);
    EXPECT_EQ(plan.faults[3].delayCycles, 64u);

    // describe() renders back into the grammar and re-parses stably.
    const std::string desc = plan.describe();
    EXPECT_EQ(fault::FaultPlan::parse(desc).describe(), desc);
}

TEST(FaultPlan, ParseRejectsMalformedInput)
{
    EXPECT_THROW(fault::FaultPlan::parse("bogus@100"),
                 std::invalid_argument);
    EXPECT_THROW(fault::FaultPlan::parse("lane:bu=1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::FaultPlan::parse("lane@100"),
                 std::invalid_argument);          // lane needs bu=.
    EXPECT_THROW(fault::FaultPlan::parse("lane@100+50:bu=1"),
                 std::invalid_argument);          // lane is permanent.
    EXPECT_THROW(fault::FaultPlan::parse("dram@100+50:bw=0"),
                 std::invalid_argument);          // zero bandwidth.
    EXPECT_THROW(fault::FaultPlan::parse("vldeny@100+0:core=0"),
                 std::invalid_argument);          // explicit +0.
    EXPECT_THROW(fault::FaultPlan::parse("cfgdelay@100+50:core=0"),
                 std::invalid_argument);          // missing cycles=.
}

TEST(FaultPlan, RandomIsSeedDeterministic)
{
    const MachineConfig cfg =
        MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    const auto a = fault::FaultPlan::random(42, cfg);
    const auto b = fault::FaultPlan::random(42, cfg);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_NE(a.describe(),
              fault::FaultPlan::random(43, cfg).describe());
}

// --- The no-fault byte-identity guarantee. ---

TEST(FaultInjection, InertPlanIsByteIdenticalToNoPlan)
{
    obs::RingSink base_sink(1u << 20, obs::kEvAll);
    RunOptions base;
    base.maxCycles = 10'000'000;
    base.sink = &base_sink;
    const RunResult base_r = runPair(SharingPolicy::Elastic, base);
    ASSERT_FALSE(base_r.timedOut);

    // A plan whose only event lies beyond the end of the run installs
    // the injector (every per-tick query path runs) but never fires.
    const fault::FaultPlan inert =
        fault::FaultPlan::parse("lane@4000000000:bu=0");
    obs::RingSink inert_sink(1u << 20, obs::kEvAll);
    RunOptions with = base;
    with.sink = &inert_sink;
    with.faultPlan = &inert;
    const RunResult inert_r = runPair(SharingPolicy::Elastic, with);

    EXPECT_EQ(trace::toJson(base_r), trace::toJson(inert_r));
    EXPECT_EQ(traceBytes(base_sink.take()),
              traceBytes(inert_sink.take()));
    EXPECT_EQ(inert_r.laneFaults, 0u);
    EXPECT_EQ(inert_r.watchdogTrips, 0u);
}

TEST(FaultInjection, EmptyPlanAndIdleWatchdogChangeNothing)
{
    RunOptions base;
    base.maxCycles = 10'000'000;
    const RunResult base_r = runPair(SharingPolicy::Elastic, base);

    const fault::FaultPlan empty;
    RunOptions with = base;
    with.faultPlan = &empty;            // Empty plan: no injector.
    with.watchdogCycles = 5'000'000;    // Armed but never tripping.
    const RunResult r = runPair(SharingPolicy::Elastic, with);

    EXPECT_EQ(trace::toJson(base_r), trace::toJson(r));
    EXPECT_EQ(r.watchdogTrips, 0u);
}

// --- Determinism and fast-forward equivalence under faults. ---

TEST(FaultInjection, FaultedRunsAreDeterministicAndFfEquivalent)
{
    const MachineConfig cfg =
        MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    const fault::FaultPlan plan = fault::FaultPlan::random(1234, cfg);

    auto once = [&](bool ff) {
        obs::RingSink sink(1u << 20, obs::kEvAll);
        RunOptions opt;
        opt.maxCycles = 20'000'000;
        opt.fastForward = ff;
        opt.faultPlan = &plan;
        opt.watchdogCycles = 200'000;
        opt.sink = &sink;
        const RunResult r = runPair(SharingPolicy::Elastic, opt);
        EXPECT_FALSE(r.timedOut);
        return std::make_pair(trace::toJson(r),
                              traceBytes(sink.take()));
    };

    const auto ticked = once(false);
    const auto ffwd = once(true);
    const auto again = once(true);
    EXPECT_EQ(ticked.first, ffwd.first);
    EXPECT_EQ(ticked.second, ffwd.second)
        << "fault boundaries must be fast-forward wake candidates";
    EXPECT_EQ(ffwd.first, again.first);
    EXPECT_EQ(ffwd.second, again.second);
}

// --- Graceful degradation. ---

TEST(FaultInjection, LaneFaultDegradesEveryRegisteredPolicy)
{
    const fault::FaultPlan plan =
        fault::FaultPlan::parse("lane@20000:bu=0");
    for (const policy::SharingModel *m : policy::allModels()) {
        RunOptions opt;
        opt.maxCycles = 30'000'000;
        opt.faultPlan = &plan;
        opt.watchdogCycles = 500'000;   // Safety net, not the subject.
        const RunResult r = runPair(m->id(), opt);
        EXPECT_FALSE(r.timedOut) << m->key();
        EXPECT_EQ(r.laneFaults, 1u) << m->key();
        EXPECT_GT(r.cores[0].finish, 0u) << m->key();
        EXPECT_GT(r.cores[1].finish, 0u) << m->key();
        EXPECT_NE(r.statsText.find("system.run.lane_faults"),
                  std::string::npos);
    }
}

TEST(FaultInjection, LaneFaultEmitsDegradeEvents)
{
    const fault::FaultPlan plan =
        fault::FaultPlan::parse("lane@20000:bu=0;lane@25000:bu=5");
    obs::RingSink sink(1u << 20, obs::kEvFault);
    RunOptions opt;
    opt.maxCycles = 30'000'000;
    opt.faultPlan = &plan;
    opt.sink = &sink;
    const RunResult r = runPair(SharingPolicy::Elastic, opt);
    ASSERT_FALSE(r.timedOut);
    EXPECT_EQ(r.laneFaults, 2u);

    unsigned injects = 0, degrades = 0;
    unsigned last_usable = 8;
    for (const obs::Event &e : sink.take().events) {
        if (e.kind == obs::EventKind::FaultInject) {
            ++injects;
            EXPECT_EQ(e.a, static_cast<std::uint64_t>(
                               fault::FaultKind::LaneFault));
        } else if (e.kind == obs::EventKind::PartitionDegrade) {
            ++degrades;
            EXPECT_LT(e.a, last_usable) << "usable BUs must shrink";
            last_usable = static_cast<unsigned>(e.a);
            EXPECT_EQ(e.b, 8u);
        }
    }
    EXPECT_EQ(injects, 2u);
    EXPECT_EQ(degrades, 2u);
    EXPECT_EQ(last_usable, 6u);
}

// --- Livelock watchdog. ---

TEST(FaultInjection, WatchdogEscalatesUnboundedDenial)
{
    // Core 1's <VL> requests are denied from cycle 0, forever: the
    // prologue's very first write enters the Fig. 9 retry loop and
    // without intervention spins to the cycle cap (see the companion
    // test below). The watchdog escalates to the scalar fallback.
    const fault::FaultPlan plan =
        fault::FaultPlan::parse("vldeny@0:core=1");
    obs::RingSink sink(1u << 20, obs::kEvFault);
    RunOptions opt;
    opt.maxCycles = 30'000'000;
    opt.faultPlan = &plan;
    opt.watchdogCycles = 20'000;
    opt.sink = &sink;

    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "mem", memWorkload());
    sys.setWorkload(1, "comp", compWorkload(8192));
    const RunResult r = sys.run(opt);

    EXPECT_FALSE(r.timedOut);
    EXPECT_GE(r.watchdogTrips, 1u);
    EXPECT_GT(r.cores[0].finish, 0u);
    EXPECT_GT(r.cores[1].finish, 0u);
    EXPECT_NE(r.statsText.find("system.run.watchdog_trips"),
              std::string::npos);

    bool saw_trip = false;
    for (const obs::Event &e : sink.take().events)
        if (e.kind == obs::EventKind::WatchdogTrip) {
            saw_trip = true;
            EXPECT_EQ(e.core, 1u);
            EXPECT_GE(e.b, opt.watchdogCycles);
        }
    EXPECT_TRUE(saw_trip);
}

TEST(FaultInjection, WithoutWatchdogUnboundedDenialSpinsToCap)
{
    const fault::FaultPlan plan =
        fault::FaultPlan::parse("vldeny@0:core=1");
    RunOptions opt;
    opt.maxCycles = 400'000;    // Small cap: the spin never ends.
    opt.faultPlan = &plan;

    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "mem", memWorkload());
    sys.setWorkload(1, "comp", compWorkload(8192));
    const RunResult r = sys.run(opt);
    EXPECT_TRUE(r.timedOut);
    EXPECT_EQ(r.watchdogTrips, 0u);
}

} // namespace
} // namespace occamy
