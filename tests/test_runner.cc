/**
 * @file
 * Tests for the parallel experiment runner: thread-count-independent
 * determinism (finish cycles, GM speedups, exported JSON), fault
 * containment of failing jobs, result ordering, and the progress
 * callback contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "runner/runner.hh"
#include "runner/sweep.hh"
#include "workloads/phases.hh"
#include "workloads/suite.hh"

namespace occamy
{
namespace
{

/** Small pair/policy sweep: 6 pairs x {Private, Elastic}. */
std::vector<runner::JobSpec>
smallSweep()
{
    auto pairs = workloads::specPairs();
    pairs.resize(6);
    return runner::pairSweepJobs(
        pairs, {SharingPolicy::Private, SharingPolicy::Elastic});
}

runner::SweepResult
runWithThreads(unsigned threads)
{
    runner::RunnerOptions opt;
    opt.numThreads = threads;
    return runner::Runner(opt).run(smallSweep());
}

double
gmElasticSpeedup(const runner::SweepResult &sweep)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i + 1 < sweep.jobs.size(); i += 2) {
        const Cycle base = sweep.jobs[i].result.cores[1].finish;
        const Cycle elastic = sweep.jobs[i + 1].result.cores[1].finish;
        log_sum += std::log(static_cast<double>(base) /
                            static_cast<double>(elastic));
        ++n;
    }
    return std::exp(log_sum / static_cast<double>(n));
}

TEST(Runner, DeterministicAcrossThreadCounts)
{
    const runner::SweepResult serial = runWithThreads(1);
    const runner::SweepResult parallel = runWithThreads(4);

    ASSERT_EQ(serial.jobs.size(), parallel.jobs.size());
    EXPECT_TRUE(serial.allOk());
    EXPECT_TRUE(parallel.allOk());

    for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
        SCOPED_TRACE(serial.jobs[i].label);
        EXPECT_EQ(serial.jobs[i].id, i);
        EXPECT_EQ(parallel.jobs[i].id, i);
        EXPECT_EQ(serial.jobs[i].label, parallel.jobs[i].label);
        const auto &sc = serial.jobs[i].result.cores;
        const auto &pc = parallel.jobs[i].result.cores;
        ASSERT_EQ(sc.size(), pc.size());
        for (std::size_t c = 0; c < sc.size(); ++c)
            EXPECT_EQ(sc[c].finish, pc[c].finish);
    }

    EXPECT_DOUBLE_EQ(gmElasticSpeedup(serial),
                     gmElasticSpeedup(parallel));
    EXPECT_GT(gmElasticSpeedup(serial), 1.0);

    // The aggregated export is byte-identical, wall-clock excluded.
    EXPECT_EQ(runner::sweepToJson(serial), runner::sweepToJson(parallel));
    std::ostringstream scsv, pcsv;
    runner::writeSweepCsv(scsv, serial);
    runner::writeSweepCsv(pcsv, parallel);
    EXPECT_EQ(scsv.str(), pcsv.str());
}

/** Thread-count independence holds on clustered 16-core machines too:
 *  the inter-cluster arbiter and migration bookkeeping are part of the
 *  deterministic artifact set (JSON incl. the per-cluster block, CSV
 *  incl. the cluster columns). */
TEST(Runner, ClusteredSweepDeterministicAcrossThreadCounts)
{
    const auto jobs = [] {
        auto pairs = workloads::specPairs();
        pairs.resize(3);
        return runner::pairSweepJobs(
            pairs, {SharingPolicy::Private, SharingPolicy::Elastic},
            40'000'000, [](MachineConfig &cfg) {
                cfg = MachineConfig::Builder(cfg.policy)
                          .topology(4, 4)
                          .build();
            });
    };
    const auto runWith = [&](unsigned threads) {
        runner::RunnerOptions opt;
        opt.numThreads = threads;
        return runner::Runner(opt).run(jobs());
    };

    const runner::SweepResult serial = runWith(1);
    const runner::SweepResult parallel = runWith(4);
    ASSERT_EQ(serial.jobs.size(), parallel.jobs.size());
    EXPECT_TRUE(serial.allOk());
    EXPECT_TRUE(parallel.allOk());

    for (const auto &j : serial.jobs) {
        SCOPED_TRACE(j.label);
        ASSERT_EQ(j.result.clusters.size(), 4u);
        EXPECT_GT(j.result.arbiterRebalances, 0u);
    }

    EXPECT_EQ(runner::sweepToJson(serial), runner::sweepToJson(parallel));
    std::ostringstream scsv, pcsv;
    runner::writeSweepCsv(scsv, serial);
    runner::writeSweepCsv(pcsv, parallel);
    EXPECT_EQ(scsv.str(), pcsv.str());
    // The clustered columns actually made it into the export.
    EXPECT_NE(scsv.str().find("cluster3_dram_share_bpc"),
              std::string::npos);
    EXPECT_NE(runner::sweepToJson(serial).find("\"clusters\":["),
              std::string::npos);
}

TEST(Runner, FaultContainment)
{
    auto jobs = smallSweep();
    // Job 3 cannot finish a single workload in one cycle: it must come
    // back Failed (with its diagnostic) without disturbing the rest.
    jobs[3].maxCycles = 1;

    runner::RunnerOptions opt;
    opt.numThreads = 4;
    const runner::SweepResult sweep = runner::Runner(opt).run(jobs);

    ASSERT_EQ(sweep.jobs.size(), jobs.size());
    EXPECT_EQ(sweep.failed(), 1u);
    EXPECT_FALSE(sweep.allOk());
    EXPECT_EQ(sweep.jobs[3].status, runner::JobStatus::Failed);
    EXPECT_NE(sweep.jobs[3].error.find("cycle cap"), std::string::npos);
    EXPECT_TRUE(sweep.jobs[3].result.timedOut);
    for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
        if (i == 3)
            continue;
        SCOPED_TRACE(i);
        EXPECT_TRUE(sweep.jobs[i].ok()) << sweep.jobs[i].error;
        EXPECT_GT(sweep.jobs[i].result.cores[1].finish, 0u);
    }

    // The sweep JSON reports the failure without losing the ok jobs.
    const std::string json = runner::sweepToJson(sweep);
    EXPECT_NE(json.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(json.find("\"failed\":1"), std::string::npos);
}

TEST(Runner, InfeasibleSpecIsContained)
{
    // Three workload slots on a two-core machine: System rejects the
    // third slot, and the runner must contain the exception.
    runner::JobSpec bad;
    bad.label = "infeasible";
    bad.cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    const auto loop = workloads::makeNamedPhase("wsm51", 4096);
    bad.workloads = {{"a", {loop}}, {"b", {loop}}, {"c", {loop}}};

    const runner::JobResult r = runner::Runner::runOne(bad);
    EXPECT_EQ(r.status, runner::JobStatus::Failed);
    EXPECT_FALSE(r.error.empty());
}

TEST(Runner, ProgressCallbackReachesCompletion)
{
    auto pairs = workloads::specPairs();
    pairs.resize(2);
    auto jobs = runner::pairSweepJobs(pairs, {SharingPolicy::Private});

    runner::Progress last;
    std::size_t calls = 0;
    runner::RunnerOptions opt;
    opt.numThreads = 2;
    opt.onProgress = [&](const runner::Progress &p) {
        last = p;
        ++calls;
    };
    const runner::SweepResult sweep = runner::Runner(opt).run(jobs);

    EXPECT_TRUE(sweep.allOk());
    EXPECT_GE(calls, 1u);
    EXPECT_EQ(last.total, jobs.size());
    EXPECT_EQ(last.done, jobs.size());
    EXPECT_EQ(last.running, 0u);
    EXPECT_EQ(last.failed, 0u);
}

TEST(Runner, TrafficSweepDeterministicAcrossThreadCounts)
{
    // The acceptance property of the traffic engine: the same seeded
    // sweep exports byte-identical JSON and CSV whether it runs on one
    // worker thread or four.
    traffic::TrafficConfig tc;
    tc.process = "poisson";
    tc.tenants = 4;
    tc.seed = 7;
    tc.jobsPerTenant = 2;
    tc.meanGapCycles = 100'000.0;
    tc.sloCycles = 1'500'000;
    const auto jobs = runner::trafficSweepJobs(
        tc, {SharingPolicy::Private, SharingPolicy::Elastic},
        {"fcfs", "sjf", "edf", "oi"});
    ASSERT_EQ(jobs.size(), 8u);

    auto runWith = [&](unsigned threads) {
        runner::RunnerOptions opt;
        opt.numThreads = threads;
        return runner::Runner(opt).run(jobs);
    };
    const runner::SweepResult serial = runWith(1);
    const runner::SweepResult parallel = runWith(4);
    EXPECT_TRUE(serial.allOk());
    EXPECT_TRUE(parallel.allOk());

    const std::string json = runner::sweepToJson(serial);
    EXPECT_EQ(json, runner::sweepToJson(parallel));
    std::ostringstream scsv, pcsv;
    runner::writeSweepCsv(scsv, serial);
    runner::writeSweepCsv(pcsv, parallel);
    EXPECT_EQ(scsv.str(), pcsv.str());

    // The exports actually carry the SLO metrics.
    EXPECT_NE(json.find("\"latency_p50\":"), std::string::npos);
    EXPECT_NE(json.find("\"latency_p99\":"), std::string::npos);
    EXPECT_NE(json.find("\"fairness_jain\":"), std::string::npos);
    EXPECT_NE(json.find("\"queueing_delay_mean\":"), std::string::npos);
    EXPECT_NE(scsv.str().find("latency_p50"), std::string::npos);
    EXPECT_NE(scsv.str().find("fairness_jain"), std::string::npos);

    // Every scheduler replayed the identical arrival stream: the
    // arrival count is uniform across the sweep.
    for (const auto &j : serial.jobs) {
        SCOPED_TRACE(j.label);
        ASSERT_TRUE(j.hasTraffic);
        EXPECT_EQ(j.trafficMetrics.arrivals, 8u);
        EXPECT_EQ(j.trafficMetrics.completed, 8u);
    }
}

TEST(Runner, UnknownTrafficNamesAreContained)
{
    runner::JobSpec bad;
    bad.label = "bad-process";
    bad.cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    bad.traffic.process = "nonesuch";
    const runner::JobResult r = runner::Runner::runOne(bad);
    EXPECT_EQ(r.status, runner::JobStatus::Failed);
    EXPECT_NE(r.error.find("unknown traffic process"),
              std::string::npos);

    runner::JobSpec sched;
    sched.label = "bad-scheduler";
    sched.cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    sched.traffic.process = "poisson";
    sched.traffic.scheduler = "nonesuch";
    const runner::JobResult r2 = runner::Runner::runOne(sched);
    EXPECT_EQ(r2.status, runner::JobStatus::Failed);
    EXPECT_NE(r2.error.find("unknown traffic scheduler"),
              std::string::npos);
}

TEST(Runner, UnknownAdmissionNamesAndBadCapsAreContained)
{
    runner::JobSpec bad;
    bad.label = "bad-admission";
    bad.cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    bad.traffic.process = "poisson";
    bad.traffic.admission = "nonesuch";
    const runner::JobResult r = runner::Runner::runOne(bad);
    EXPECT_EQ(r.status, runner::JobStatus::Failed);
    EXPECT_NE(r.error.find("unknown admission policy"),
              std::string::npos);

    runner::JobSpec cap;
    cap.label = "bad-cap";
    cap.cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    cap.traffic.process = "poisson";
    cap.traffic.admission = "static-cap";
    cap.traffic.admissionCap = 0;
    const runner::JobResult r2 = runner::Runner::runOne(cap);
    EXPECT_EQ(r2.status, runner::JobStatus::Failed);
    EXPECT_NE(r2.error.find("admission cap"), std::string::npos);
}

TEST(Runner, AdmissionSweepExportsAreDeterministicAndGated)
{
    // A mixed sweep: one admission-free job and one admission-
    // controlled storm. Exports must stay byte-identical across
    // runner thread counts, carry shed/defer/goodput only for the
    // admission job, and leave admission-free rows with empty CSV
    // cells (distinguishable from "policy shed nothing").
    auto specFor = [](const char *adm) {
        runner::JobSpec spec;
        spec.label = std::string("adm-") + adm;
        spec.cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
        spec.traffic.process = "poisson";
        spec.traffic.tenants = 4;
        spec.traffic.seed = 11;
        spec.traffic.jobsPerTenant = 4;
        spec.traffic.meanGapCycles = 25'000.0;
        spec.traffic.sloCycles = 600'000;
        spec.traffic.admission = adm;
        spec.traffic.admissionCap = 2;
        return spec;
    };
    std::vector<runner::JobSpec> jobs = {specFor("none"),
                                         specFor("slo-aware")};
    for (std::size_t i = 0; i < jobs.size(); ++i)
        jobs[i].id = i;

    auto runWith = [&](unsigned threads) {
        runner::RunnerOptions opt;
        opt.numThreads = threads;
        return runner::Runner(opt).run(jobs);
    };
    const runner::SweepResult serial = runWith(1);
    const runner::SweepResult parallel = runWith(4);
    ASSERT_TRUE(serial.allOk());
    ASSERT_TRUE(parallel.allOk());
    EXPECT_EQ(runner::sweepToJson(serial),
              runner::sweepToJson(parallel));
    std::ostringstream scsv, pcsv;
    runner::writeSweepCsv(scsv, serial);
    runner::writeSweepCsv(pcsv, parallel);
    EXPECT_EQ(scsv.str(), pcsv.str());

    EXPECT_FALSE(serial.jobs[0].hasAdmission);
    EXPECT_TRUE(serial.jobs[1].hasAdmission);

    // JSON gating: shed/goodput appear in the sweep (the admission
    // job), but an admission-free sweep carries none of them.
    const std::string json = runner::sweepToJson(serial);
    EXPECT_NE(json.find("\"shed\":"), std::string::npos);
    EXPECT_NE(json.find("\"goodput\":"), std::string::npos);
    const runner::SweepResult plain =
        runner::Runner().run({specFor("none")});
    ASSERT_TRUE(plain.allOk());
    const std::string plain_json = runner::sweepToJson(plain);
    EXPECT_EQ(plain_json.find("\"shed\":"), std::string::npos);
    EXPECT_EQ(plain_json.find("\"goodput\":"), std::string::npos);
    EXPECT_EQ(plain_json.find("\"deferrals\":"), std::string::npos);
    EXPECT_EQ(plain_json.find("\"retries\":"), std::string::npos);

    // CSV gating: the mixed sweep has the columns, and the admission-
    // free row leaves those cells empty, not zero.
    const std::string csv = scsv.str();
    EXPECT_NE(csv.find(",shed,deferrals,goodput"), std::string::npos);
    auto cells = [](const std::string &row) {
        std::vector<std::string> out;
        std::istringstream is(row);
        std::string cell;
        while (std::getline(is, cell, ','))
            out.push_back(cell);
        if (!row.empty() && row.back() == ',')
            out.emplace_back();
        return out;
    };
    std::istringstream lines(csv);
    std::string header, line, none_row, slo_row;
    std::getline(lines, header);
    while (std::getline(lines, line)) {
        if (line.find("adm-none") != std::string::npos)
            none_row = line;
        if (line.find("adm-slo-aware") != std::string::npos)
            slo_row = line;
    }
    ASSERT_FALSE(none_row.empty());
    ASSERT_FALSE(slo_row.empty());
    const std::vector<std::string> cols = cells(header);
    const std::size_t shed_col =
        std::find(cols.begin(), cols.end(), "shed") - cols.begin();
    ASSERT_LT(shed_col, cols.size());
    for (std::size_t c = shed_col; c < shed_col + 3; ++c) {
        EXPECT_TRUE(cells(none_row)[c].empty()) << "col " << c;
        EXPECT_FALSE(cells(slo_row)[c].empty()) << "col " << c;
    }
    std::ostringstream plain_csv;
    runner::writeSweepCsv(plain_csv, plain);
    EXPECT_EQ(plain_csv.str().find("shed"), std::string::npos);
}

TEST(Runner, RetryCountsAreExportedOnlyWhenABudgetExists)
{
    runner::JobSpec spec;
    spec.label = "retry-export";
    spec.cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    const auto w8 = workloads::specWorkload(8);
    spec.workloads.emplace_back(w8.name, w8.loops);

    // Default: no retry budget, no "retries" field anywhere.
    const runner::SweepResult bare = runner::Runner().run({spec});
    ASSERT_TRUE(bare.allOk());
    EXPECT_EQ(bare.jobs[0].retryBudget, 0u);
    EXPECT_EQ(runner::sweepToJson(bare).find("\"retries\":"),
              std::string::npos);
    std::ostringstream bare_csv;
    runner::writeSweepCsv(bare_csv, bare);
    EXPECT_EQ(bare_csv.str().find("retries"), std::string::npos);

    // With a budget, the field appears (0 used on a clean run) so
    // flaky-host forensics can tell "no budget" from "never retried".
    runner::RunnerOptions opt;
    opt.transientRetries = 2;
    const runner::SweepResult budgeted = runner::Runner(opt).run({spec});
    ASSERT_TRUE(budgeted.allOk());
    EXPECT_EQ(budgeted.jobs[0].retryBudget, 2u);
    EXPECT_EQ(budgeted.jobs[0].retriesUsed, 0u);
    EXPECT_NE(runner::sweepToJson(budgeted).find("\"retries\":0"),
              std::string::npos);
    std::ostringstream bcsv;
    runner::writeSweepCsv(bcsv, budgeted);
    EXPECT_NE(bcsv.str().find("retries"), std::string::npos);
}

TEST(Runner, SimThreadsForwardsAndKeepsSweepExportsIdentical)
{
    // JobSpec::simThreads reaches RunOptions::simThreads: a clustered
    // sweep exports byte-identical JSON/CSV whether each job's own
    // cycle loop runs serial or on a worker pool (and composes with
    // the runner's job-level threads).
    auto jobsWith = [](unsigned sim_threads) {
        std::vector<runner::JobSpec> jobs;
        for (const SharingPolicy p :
             {SharingPolicy::Elastic, SharingPolicy::Private}) {
            runner::JobSpec spec;
            spec.id = jobs.size();
            spec.label = std::string("2x2/") + policyName(p);
            spec.cfg =
                MachineConfig::Builder(p).topology(2, 2).build();
            const auto w6 = workloads::specWorkload(6);
            const auto w16 = workloads::specWorkload(16);
            for (unsigned c = 0; c < 4; ++c)
                spec.workloads.emplace_back(c % 2 ? w16.name : w6.name,
                                            c % 2 ? w16.loops
                                                  : w6.loops);
            spec.simThreads = sim_threads;
            jobs.push_back(std::move(spec));
        }
        return jobs;
    };

    runner::RunnerOptions opt;
    opt.numThreads = 2;
    const runner::SweepResult serial =
        runner::Runner(opt).run(jobsWith(1));
    const runner::SweepResult pooled =
        runner::Runner(opt).run(jobsWith(2));
    ASSERT_TRUE(serial.allOk());
    ASSERT_TRUE(pooled.allOk());
    EXPECT_EQ(runner::sweepToJson(serial), runner::sweepToJson(pooled));
    std::ostringstream scsv, pcsv;
    runner::writeSweepCsv(scsv, serial);
    runner::writeSweepCsv(pcsv, pooled);
    EXPECT_EQ(scsv.str(), pcsv.str());
}

TEST(Runner, BatchJobsRunThroughTheQueue)
{
    runner::JobSpec spec;
    spec.label = "batch";
    spec.cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    const auto w8 = workloads::specWorkload(8);
    const auto w17 = workloads::specWorkload(17);
    spec.batch = {{w8.name, w8.loops}, {w17.name, w17.loops}};

    const runner::JobResult r = runner::Runner::runOne(spec);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.result.batch.size(), 2u);
}

} // namespace
} // namespace occamy
