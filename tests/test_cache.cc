/**
 * @file
 * Unit and property tests for the set-associative cache tag model:
 * hit/miss behaviour, true-LRU replacement, dirty-eviction writebacks,
 * and geometry sweeps.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace occamy
{
namespace
{

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    return CacheConfig{512, 2, 64, 1, 64};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c("t", smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1030, false).hit);   // Same line.
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    Cache c("t", smallCache());
    // Three lines mapping to the same set (set stride = 4 lines).
    const Addr a = 0 * 64, b = 4 * 64, d = 8 * 64;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);      // a is now MRU.
    c.access(d, false);      // Evicts b (LRU).
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyEvictionProducesWriteback)
{
    Cache c("t", smallCache());
    const Addr a = 0 * 64, b = 4 * 64, d = 8 * 64;
    c.access(a, true);       // Dirty.
    c.access(b, false);
    CacheAccessResult r = c.access(d, false);   // Evicts dirty a.
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimLine, a);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c("t", smallCache());
    c.access(0 * 64, false);
    c.access(4 * 64, false);
    CacheAccessResult r = c.access(8 * 64, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c("t", smallCache());
    c.access(0 * 64, false);     // Clean fill.
    c.access(0 * 64, true);      // Write hit -> dirty.
    c.access(4 * 64, false);
    CacheAccessResult r = c.access(8 * 64, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c("t", smallCache());
    c.access(0x0, true);
    c.access(0x100, false);
    c.flush();
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x100));
    // Flushed dirty lines are dropped, not written back.
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, ContainsDoesNotTouchState)
{
    Cache c("t", smallCache());
    c.access(0 * 64, false);
    c.access(4 * 64, false);
    // Probing 'a' must NOT refresh its LRU position.
    EXPECT_TRUE(c.contains(0 * 64));
    c.access(8 * 64, false);     // Should still evict a (LRU).
    EXPECT_FALSE(c.contains(0 * 64));
}

TEST(Cache, StatsRegistration)
{
    Cache c("vec", smallCache());
    c.access(0, false);
    c.access(0, false);
    stats::Group g("mem");
    c.regStats(g);
    EXPECT_DOUBLE_EQ(g.get("vec.hits"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("vec.misses"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("vec.miss_rate"), 0.5);
}

/** Geometry sweep: capacity and conflict behaviour must hold for any
 *  (size, assoc) combination. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometry, WorkingSetWithinCapacityAlwaysHitsAfterWarmup)
{
    const auto [size_kb, assoc] = GetParam();
    CacheConfig cfg{size_kb * 1024ull, assoc, 64, 1, 64};
    Cache c("t", cfg);

    const unsigned lines = static_cast<unsigned>(cfg.sizeBytes / 64);
    // Touch exactly the capacity once (sequential lines fill every way
    // of every set under modulo indexing).
    for (unsigned i = 0; i < lines; ++i)
        c.access(static_cast<Addr>(i) * 64, false);
    EXPECT_EQ(c.misses(), lines);
    // Second pass: everything must hit.
    for (unsigned i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(static_cast<Addr>(i) * 64, false).hit);
}

TEST_P(CacheGeometry, StreamingNeverHitsOnFirstTouch)
{
    const auto [size_kb, assoc] = GetParam();
    CacheConfig cfg{size_kb * 1024ull, assoc, 64, 1, 64};
    Cache c("t", cfg);
    for (unsigned i = 0; i < 4096; ++i)
        EXPECT_FALSE(c.access(static_cast<Addr>(i) * 64, false).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(8u, 64u, 128u, 1024u),
                       ::testing::Values(1u, 2u, 8u, 16u)));

} // namespace
} // namespace occamy
