/**
 * @file
 * Tests for the Table 3 workload suite: every phase recipe must
 * reproduce its published operational intensity through the Eq. 5
 * analysis (parameterized over the whole suite), the workload/pair/
 * group constructors must be complete, and memory-intensity placement
 * must follow Section 7.1.
 */

#include <gtest/gtest.h>

#include "kir/analysis.hh"
#include "workloads/phases.hh"
#include "workloads/suite.hh"

namespace occamy
{
namespace
{

using workloads::PhaseSpec;

constexpr std::uint64_t kVec = 128 * 1024;
constexpr std::uint64_t kL2 = 8 * 1024 * 1024;

/** Every named phase reproduces its Table 3 oi_mem. */
class PhaseOiSweep : public ::testing::TestWithParam<PhaseSpec>
{
};

TEST_P(PhaseOiSweep, OiMemMatchesTable3)
{
    const PhaseSpec &spec = GetParam();
    const kir::Loop loop = workloads::makePhase(spec);
    const kir::LoopSummary s = kir::analyze(loop);
    // Table 3 prints two significant digits; allow that rounding.
    EXPECT_NEAR(s.oiMem(), spec.tableOiMem, 0.013) << spec.name;
}

TEST_P(PhaseOiSweep, InstructionMixMatchesSpec)
{
    const PhaseSpec &spec = GetParam();
    const kir::Loop loop = workloads::makePhase(spec);
    const kir::LoopSummary s = kir::analyze(loop);
    EXPECT_EQ(s.computeInsts, spec.flops) << spec.name;
    EXPECT_EQ(s.memInsts,
              spec.loads + spec.reuseLoads + spec.stores) << spec.name;
    EXPECT_EQ(s.hasReduction, spec.reduction) << spec.name;
}

TEST_P(PhaseOiSweep, MemLevelMatchesSpec)
{
    const PhaseSpec &spec = GetParam();
    const kir::Loop loop = workloads::makePhase(spec);
    EXPECT_EQ(kir::classifyMemLevel(loop, kVec, kL2), spec.level)
        << spec.name;
}

TEST_P(PhaseOiSweep, ReuseLoadsLowerIssueIntensity)
{
    const PhaseSpec &spec = GetParam();
    const kir::Loop loop = workloads::makePhase(spec);
    const kir::LoopSummary s = kir::analyze(loop);
    if (spec.reuseLoads > 0)
        EXPECT_LT(s.oiIssue(), s.oiMem()) << spec.name;
    else
        EXPECT_NEAR(s.oiIssue(), s.oiMem(), 1e-9) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table3, PhaseOiSweep,
    ::testing::ValuesIn(workloads::allPhaseSpecs()),
    [](const ::testing::TestParamInfo<PhaseSpec> &info) {
        return info.param.name;
    });

TEST(Workloads, AllSpecWorkloadsConstruct)
{
    for (unsigned n = 1; n <= 22; ++n) {
        const workloads::Workload w = workloads::specWorkload(n);
        EXPECT_FALSE(w.loops.empty()) << w.name;
        for (const auto &loop : w.loops)
            EXPECT_GT(loop.trip, 0u);
    }
    EXPECT_THROW(workloads::specWorkload(23), std::out_of_range);
    EXPECT_THROW(workloads::specWorkload(0), std::out_of_range);
}

TEST(Workloads, AllOpencvWorkloadsConstruct)
{
    for (unsigned n = 1; n <= 12; ++n) {
        const workloads::Workload w = workloads::opencvWorkload(n);
        EXPECT_FALSE(w.loops.empty()) << w.name;
    }
    EXPECT_THROW(workloads::opencvWorkload(13), std::out_of_range);
}

TEST(Workloads, PairCountsMatchThePaper)
{
    EXPECT_EQ(workloads::specPairs().size(), 16u);
    EXPECT_EQ(workloads::opencvPairs().size(), 9u);
    EXPECT_EQ(workloads::allPairs().size(), 25u);
}

TEST(Workloads, PairsPlaceMemoryWorkloadOnCore0)
{
    // In the <memory, compute> pairs the paper runs the memory-
    // intensive workload on Core0 (Section 7.1); the two <compute,
    // compute> pairs (3+4, 9+13) and the <memory, memory> pair (12+19)
    // are the exceptions.
    for (const auto &pair : workloads::specPairs()) {
        if (pair.label == "3+4" || pair.label == "9+13" ||
            pair.label == "12+19" || pair.label == "4+14")
            continue;
        EXPECT_TRUE(pair.core0.memoryIntensive) << pair.label;
    }
}

TEST(Workloads, ScalabilityGroupsAreFourCoreSized)
{
    const auto groups = workloads::scalabilityGroups();
    EXPECT_EQ(groups.size(), 4u);
    for (const auto &g : groups)
        EXPECT_EQ(g.workloads.size(), 4u);
}

TEST(Workloads, UnknownPhaseThrows)
{
    EXPECT_THROW(workloads::phaseSpec("no_such_kernel"),
                 std::out_of_range);
}

TEST(Workloads, TripOverrideApplies)
{
    const kir::Loop loop = workloads::makeNamedPhase("wsm51", 1234);
    EXPECT_EQ(loop.trip, 1234u);
}

TEST(Workloads, SuiteCoversBothIntensityClasses)
{
    unsigned memory = 0, compute = 0;
    for (const auto &spec : workloads::allPhaseSpecs()) {
        if (spec.level == MemLevel::Dram)
            ++memory;
        else
            ++compute;
    }
    EXPECT_GE(memory, 20u);
    EXPECT_GE(compute, 10u);
}

TEST(Workloads, LiteralLoopsHaveDocumentedShapes)
{
    // The Fig. 2a loops exercise CSE/stencils/invariants; their mixes
    // are pinned so regressions in the builders are caught.
    const kir::LoopSummary rh3d =
        kir::analyze(workloads::makeRh3dLoop(1024));
    EXPECT_EQ(rh3d.memInsts, 8u);
    const kir::LoopSummary eos =
        kir::analyze(workloads::makeRhoEosLoop(1024));
    EXPECT_EQ(eos.memInsts, 11u);
    const kir::LoopSummary wsm5 =
        kir::analyze(workloads::makeWsm5Loop(1024));
    EXPECT_DOUBLE_EQ(wsm5.oiMem(), 5.0 / 12.0);
}

} // namespace
} // namespace occamy
