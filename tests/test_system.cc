/**
 * @file
 * End-to-end system tests: the co-run driver across the four
 * architectures, the paper's headline behaviours (elastic sharing wins
 * on the compute core without hurting the memory core; temporal
 * sharing pays renaming stalls; static sharing cannot reclaim released
 * lanes), determinism, and metric sanity.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/system.hh"
#include "sim/trace.hh"
#include "workloads/phases.hh"

namespace occamy
{
namespace
{

using workloads::makeNamedPhase;

std::vector<kir::Loop>
memWorkload()
{
    return {makeNamedPhase("rho_eos1", 16384),
            makeNamedPhase("rho_eos4", 16384)};
}

std::vector<kir::Loop>
compWorkload(std::uint64_t trip = 131072)
{
    return {makeNamedPhase("wsm51", trip)};
}

RunResult
runPairOn(SharingPolicy p)
{
    System sys(MachineConfig::forPolicy(p, 2));
    sys.setWorkload(0, "mem", memWorkload());
    sys.setWorkload(1, "comp", compWorkload());
    return sys.run({.maxCycles = 10'000'000});
}

TEST(System, AllPoliciesComplete)
{
    for (SharingPolicy p :
         {SharingPolicy::Private, SharingPolicy::Temporal,
          SharingPolicy::StaticSpatial, SharingPolicy::Elastic}) {
        const RunResult r = runPairOn(p);
        EXPECT_FALSE(r.timedOut) << policyName(p);
        EXPECT_GT(r.cores[0].finish, 0u) << policyName(p);
        EXPECT_GT(r.cores[1].finish, 0u) << policyName(p);
        EXPECT_GT(r.simdUtil, 0.0) << policyName(p);
        EXPECT_LE(r.simdUtil, 1.0 + 1e-9) << policyName(p);
    }
}

TEST(System, DeterministicAcrossRuns)
{
    const RunResult a = runPairOn(SharingPolicy::Elastic);
    const RunResult b = runPairOn(SharingPolicy::Elastic);
    EXPECT_EQ(a.cores[0].finish, b.cores[0].finish);
    EXPECT_EQ(a.cores[1].finish, b.cores[1].finish);
    EXPECT_DOUBLE_EQ(a.simdUtil, b.simdUtil);
    EXPECT_EQ(a.vlSwitches, b.vlSwitches);
}

TEST(System, ElasticBeatsStaticOnComputeCore)
{
    const RunResult priv = runPairOn(SharingPolicy::Private);
    const RunResult vls = runPairOn(SharingPolicy::StaticSpatial);
    const RunResult occ = runPairOn(SharingPolicy::Elastic);
    // Core1 (compute) ordering: Occamy < VLS < Private finish time.
    EXPECT_LT(occ.cores[1].finish, vls.cores[1].finish);
    EXPECT_LT(vls.cores[1].finish, priv.cores[1].finish);
}

TEST(System, MemoryCorePerformanceIsPreserved)
{
    const RunResult priv = runPairOn(SharingPolicy::Private);
    for (SharingPolicy p : {SharingPolicy::Temporal,
                            SharingPolicy::StaticSpatial,
                            SharingPolicy::Elastic}) {
        const RunResult r = runPairOn(p);
        const double ratio = static_cast<double>(r.cores[0].finish) /
                             static_cast<double>(priv.cores[0].finish);
        EXPECT_LT(ratio, 1.15) << policyName(p);
    }
}

TEST(System, ElasticAchievesBestUtilization)
{
    const RunResult priv = runPairOn(SharingPolicy::Private);
    const RunResult occ = runPairOn(SharingPolicy::Elastic);
    EXPECT_GT(occ.simdUtil, priv.simdUtil);
}

TEST(System, OnlyTemporalPaysRenameStalls)
{
    for (SharingPolicy p :
         {SharingPolicy::Private, SharingPolicy::StaticSpatial,
          SharingPolicy::Elastic}) {
        const RunResult r = runPairOn(p);
        EXPECT_EQ(r.cores[0].renameRegStallCycles +
                      r.cores[1].renameRegStallCycles,
                  0u)
            << policyName(p);
    }
    const RunResult fts = runPairOn(SharingPolicy::Temporal);
    EXPECT_GT(fts.cores[1].renameRegStallCycles, 0u);
}

TEST(System, OnlyElasticSwitchesMidPhase)
{
    const RunResult occ = runPairOn(SharingPolicy::Elastic);
    EXPECT_GT(occ.vlSwitches, 4u);   // Beyond phase entries/exits.
    EXPECT_GT(occ.plansMade, 0u);
    const RunResult vls = runPairOn(SharingPolicy::StaticSpatial);
    EXPECT_EQ(vls.plansMade, 0u);
}

TEST(System, DramTrafficIsPolicyInvariant)
{
    // The same workloads move the same data regardless of sharing.
    const RunResult priv = runPairOn(SharingPolicy::Private);
    for (SharingPolicy p : {SharingPolicy::Temporal,
                            SharingPolicy::StaticSpatial,
                            SharingPolicy::Elastic}) {
        const RunResult r = runPairOn(p);
        const double ratio = static_cast<double>(r.dramBytes) /
                             static_cast<double>(priv.dramBytes);
        EXPECT_GT(ratio, 0.9) << policyName(p);
        EXPECT_LT(ratio, 1.1) << policyName(p);
    }
}

TEST(System, PhaseResultsCoverTheRun)
{
    const RunResult r = runPairOn(SharingPolicy::Elastic);
    ASSERT_EQ(r.cores[0].phases.size(), 2u);
    ASSERT_EQ(r.cores[1].phases.size(), 1u);
    for (const auto &core : r.cores)
        for (const auto &ph : core.phases) {
            EXPECT_GT(ph.end, ph.start);
            EXPECT_GT(ph.computeIssued, 0u);
            EXPECT_GT(ph.issueRate, 0.0);
            EXPECT_LE(ph.issueRate, 2.0 + 0.1);
        }
}

TEST(System, TimelinesMatchRunLength)
{
    const RunResult r = runPairOn(SharingPolicy::Elastic);
    for (const auto &core : r.cores) {
        ASSERT_FALSE(core.busyLanesTimeline.empty());
        EXPECT_EQ(core.busyLanesTimeline.size(),
                  core.allocLanesTimeline.size());
        for (double lanes : core.allocLanesTimeline)
            EXPECT_LE(lanes, 32.0 + 1e-9);
    }
}

TEST(System, IdleCoreIsHarmless)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "solo", compWorkload(65536));
    sys.setWorkload(1, "idle", {});
    const RunResult r = sys.run({.maxCycles = 10'000'000});
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.cores[0].finish, 0u);
    EXPECT_EQ(r.cores[1].computeIssued, 0u);
    // The solo workload eventually claims the full machine.
    EXPECT_EQ(r.cores[0].phases[0].lastVl, 8u);
}

TEST(System, SoloElasticTwiceAsFastAsSoloPrivate)
{
    // 32 lanes vs 16 lanes on a compute-bound kernel.
    auto solo = [](SharingPolicy p) {
        System sys(MachineConfig::forPolicy(p, 2));
        sys.setWorkload(0, "solo", compWorkload(65536));
        sys.setWorkload(1, "idle", {});
        return sys.run({.maxCycles = 10'000'000}).cores[0].finish;
    };
    const double ratio = static_cast<double>(solo(SharingPolicy::Private)) /
                         static_cast<double>(solo(SharingPolicy::Elastic));
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.4);
}

TEST(System, FourCoreMachineRuns)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 4));
    sys.setWorkload(0, "m0", memWorkload());
    sys.setWorkload(1, "m1", memWorkload());
    sys.setWorkload(2, "c0", compWorkload(65536));
    sys.setWorkload(3, "c1", compWorkload(65536));
    const RunResult r = sys.run({.maxCycles = 20'000'000});
    EXPECT_FALSE(r.timedOut);
    for (const auto &core : r.cores)
        EXPECT_GT(core.finish, 0u);
}

TEST(System, MaxCyclesCapSetsTimedOut)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "mem", memWorkload());
    sys.setWorkload(1, "comp", compWorkload());
    const RunResult r = sys.run({.maxCycles = 100});
    EXPECT_TRUE(r.timedOut);
}

TEST(System, CorunHelperMatchesManualSetup)
{
    const RunResult a = corun(
        SharingPolicy::Private,
        {{"mem", memWorkload()}, {"comp", compWorkload()}},
        {.maxCycles = 10'000'000});
    const RunResult b = runPairOn(SharingPolicy::Private);
    EXPECT_EQ(a.cores[0].finish, b.cores[0].finish);
    EXPECT_EQ(a.cores[1].finish, b.cores[1].finish);
}

TEST(System, BatchFcfsSchedulesAllQueuedWorkloads)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    for (int i = 0; i < 5; ++i)
        sys.enqueueWorkload("job" + std::to_string(i),
                            compWorkload(16384));
    const RunResult r = sys.run({.maxCycles = 20'000'000});
    ASSERT_FALSE(r.timedOut);
    ASSERT_EQ(r.batch.size(), 5u);
    for (const auto &b : r.batch) {
        EXPECT_GT(b.finished, b.dispatched) << b.name;
        EXPECT_LT(b.core, 2u);
    }
    // FCFS: dispatch order follows queue order.
    for (std::size_t i = 1; i < r.batch.size(); ++i)
        EXPECT_GE(r.batch[i].dispatched, r.batch[i - 1].dispatched);
}

TEST(System, BatchPaysContextSwitchCost)
{
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    cfg.contextSwitchCycles = 1000;
    System sys(cfg);
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    sys.enqueueWorkload("a", compWorkload(16384));
    const RunResult r = sys.run({.maxCycles = 20'000'000});
    ASSERT_EQ(r.batch.size(), 1u);
    EXPECT_GE(r.batch[0].dispatched, 1000u);
}

TEST(System, BatchMixesWithPinnedWorkloads)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "pinned", memWorkload());
    sys.setWorkload(1, "idle", {});
    sys.enqueueWorkload("queued", compWorkload(32768));
    const RunResult r = sys.run({.maxCycles = 20'000'000});
    ASSERT_FALSE(r.timedOut);
    ASSERT_EQ(r.batch.size(), 1u);
    // The idle core grabs the queued workload immediately-ish, long
    // before the pinned memory workload completes.
    EXPECT_EQ(r.batch[0].core, 1u);
    EXPECT_LT(r.batch[0].dispatched, r.cores[0].finish);
}

TEST(System, OiAwareSchedulerPairsComplementaryWorkloads)
{
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    cfg.schedPolicy = SchedPolicy::OiAware;
    System sys(cfg);
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    // Adversarial order: memory, memory, compute, compute.
    sys.enqueueWorkload("mem_a", memWorkload());
    sys.enqueueWorkload("mem_b", memWorkload());
    sys.enqueueWorkload("comp_a", compWorkload(65536));
    sys.enqueueWorkload("comp_b", compWorkload(65536));
    const RunResult r = sys.run({.maxCycles = 40'000'000});
    ASSERT_FALSE(r.timedOut);
    ASSERT_EQ(r.batch.size(), 4u);
    // The second dispatch must be a compute workload (complementary to
    // the memory workload just placed), not FCFS's mem_b.
    EXPECT_EQ(r.batch[1].name.substr(0, 4), "comp");
}

TEST(System, OiAwareNeverLosesWorkloads)
{
    MachineConfig cfg = MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
    cfg.schedPolicy = SchedPolicy::OiAware;
    System sys(cfg);
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    for (int i = 0; i < 6; ++i)
        sys.enqueueWorkload("j" + std::to_string(i),
                            i % 2 ? compWorkload(16384) : memWorkload());
    const RunResult r = sys.run({.maxCycles = 40'000'000});
    ASSERT_FALSE(r.timedOut);
    EXPECT_EQ(r.batch.size(), 6u);
    for (const auto &b : r.batch)
        EXPECT_GT(b.finished, b.dispatched) << b.name;
}

TEST(System, OiAwareBeatsAdversarialFcfsOnOccamy)
{
    auto drain = [](SchedPolicy sched) {
        MachineConfig cfg =
            MachineConfig::forPolicy(SharingPolicy::Elastic, 2);
        cfg.schedPolicy = sched;
        System sys(cfg);
        sys.setWorkload(0, "idle0", {});
        sys.setWorkload(1, "idle1", {});
        sys.enqueueWorkload("m0", memWorkload());
        sys.enqueueWorkload("m1", memWorkload());
        sys.enqueueWorkload("c0", compWorkload(131072));
        sys.enqueueWorkload("c1", compWorkload(131072));
        return sys.run({.maxCycles = 60'000'000}).cycles;
    };
    EXPECT_LT(drain(SchedPolicy::OiAware),
              drain(SchedPolicy::Fcfs) * 101 / 100);
}

TEST(System, VlsBatchGetsEqualStaticShares)
{
    MachineConfig cfg =
        MachineConfig::forPolicy(SharingPolicy::StaticSpatial, 2);
    System sys(cfg);
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    sys.enqueueWorkload("a", compWorkload(16384));
    sys.enqueueWorkload("b", compWorkload(16384));
    const RunResult r = sys.run({.maxCycles = 40'000'000});
    ASSERT_FALSE(r.timedOut);
    EXPECT_EQ(r.batch.size(), 2u);
}

TEST(System, StatsTextContainsHierarchyCounters)
{
    const RunResult r = runPairOn(SharingPolicy::Elastic);
    EXPECT_NE(r.statsText.find("system.mem.vec_cache.hits"),
              std::string::npos);
    EXPECT_NE(r.statsText.find("system.mem.dram.bytes"),
              std::string::npos);
    EXPECT_NE(r.statsText.find("system.coproc.vl_switches"),
              std::string::npos);
}

TEST(System, OverheadCountersArePopulatedForElastic)
{
    const RunResult r = runPairOn(SharingPolicy::Elastic);
    EXPECT_GT(r.cores[0].monitorInsts + r.cores[1].monitorInsts, 0u);
    EXPECT_GT(r.cores[0].reconfigWaitCycles +
                  r.cores[1].reconfigWaitCycles,
              0u);
    // Overheads are small fractions (Fig. 15's regime).
    for (const auto &core : r.cores) {
        EXPECT_LT(core.monitorOverhead(4), 0.05);
        EXPECT_LT(core.reconfigOverhead(), 0.05);
    }
}

// ---- Clustered topologies (topology(C, K), hierarchical lane mgr). --

TEST(System, FlatRunReportsNoClusterArtifacts)
{
    const RunResult r = runPairOn(SharingPolicy::Elastic);
    EXPECT_TRUE(r.clusters.empty());
    EXPECT_EQ(r.arbiterRebalances, 0u);
    // The gated JSON block must be absent on a flat machine so golden
    // traces are byte-identical to the pre-cluster format.
    const std::string js = trace::toJson(r);
    EXPECT_EQ(js.find("\"clusters\""), std::string::npos);
    EXPECT_EQ(r.statsText.find("arbiter_rebalances"),
              std::string::npos);
}

RunResult
runClustered(SharingPolicy p, unsigned clusters, unsigned per,
             const RunOptions &opt = {.maxCycles = 10'000'000})
{
    System sys(MachineConfig::Builder(p).topology(clusters, per).build());
    for (unsigned c = 0; c < clusters * per; ++c)
        sys.setWorkload(static_cast<CoreId>(c),
                        c % 2 ? "comp" : "mem",
                        c % 2 ? compWorkload(32768) : memWorkload());
    return sys.run(opt);
}

TEST(System, ClusteredMachineRunsAllCores)
{
    const RunResult r = runClustered(SharingPolicy::Elastic, 2, 2);
    EXPECT_FALSE(r.timedOut);
    ASSERT_EQ(r.cores.size(), 4u);
    for (const auto &core : r.cores)
        EXPECT_GT(core.finish, 0u);
    ASSERT_EQ(r.clusters.size(), 2u);
    EXPECT_GT(r.arbiterRebalances, 0u);
    // The arbiter conserves machine bandwidth across its grants.
    const MachineConfig cfg =
        MachineConfig::Builder(SharingPolicy::Elastic)
            .topology(2, 2)
            .build();
    unsigned granted = 0;
    for (const auto &cl : r.clusters) {
        EXPECT_GE(cl.dramShareBpc, 1u);
        granted += cl.dramShareBpc;
    }
    EXPECT_EQ(granted, cfg.dramBytesPerCycle);
    EXPECT_NE(r.statsText.find("system.cluster0.mem"),
              std::string::npos);
    EXPECT_NE(r.statsText.find("system.cluster1.coproc"),
              std::string::npos);
    EXPECT_NE(r.statsText.find("arbiter_rebalances"),
              std::string::npos);
}

TEST(System, ClusteredRunIsDeterministic)
{
    const RunResult a = runClustered(SharingPolicy::Elastic, 2, 2);
    const RunResult b = runClustered(SharingPolicy::Elastic, 2, 2);
    EXPECT_EQ(trace::toJson(a), trace::toJson(b));
}

TEST(System, ClusteredFastForwardMatchesTickedRun)
{
    const RunResult ticked = runClustered(
        SharingPolicy::Elastic, 2, 2,
        {.maxCycles = 10'000'000, .fastForward = false});
    const RunResult ff = runClustered(
        SharingPolicy::Elastic, 2, 2,
        {.maxCycles = 10'000'000, .fastForward = true});
    // The arbiter-period wake candidate keeps skipped runs exact.
    EXPECT_EQ(trace::toJson(ticked), trace::toJson(ff));
}

TEST(System, SixteenCoreClusteredMachineCompletes)
{
    const RunResult r = runClustered(SharingPolicy::Elastic, 4, 4);
    EXPECT_FALSE(r.timedOut);
    ASSERT_EQ(r.cores.size(), 16u);
    for (const auto &core : r.cores)
        EXPECT_GT(core.finish, 0u);
    ASSERT_EQ(r.clusters.size(), 4u);
}

TEST(System, BatchWorkMigratesAcrossClusters)
{
    // Two 1-core clusters. Core 1 is pinned to a long compute phase;
    // core 0 drains the queue, whose entries alternate home clusters
    // (q % C), so it must adopt cluster 1's entries — the migration
    // path, with its extra switch cost and arbiter accounting.
    System sys(MachineConfig::Builder(SharingPolicy::Elastic)
                   .topology(2, 1)
                   .build());
    sys.setWorkload(0, "idle", {});
    sys.setWorkload(1, "comp", compWorkload(262144));
    sys.enqueueWorkload("q0", compWorkload(4096));
    sys.enqueueWorkload("q1", compWorkload(4096));
    const RunResult r = sys.run({.maxCycles = 10'000'000});
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.batch.size(), 2u);
    ASSERT_EQ(r.clusters.size(), 2u);
    EXPECT_EQ(r.clusters[0].migratedIn, 1u);
    EXPECT_EQ(r.clusters[1].migratedOut, 1u);
}

TEST(System, ClusteredComponentPathsAreInspectable)
{
    System sys(MachineConfig::Builder(SharingPolicy::Elastic)
                   .topology(2, 2)
                   .build());
    for (unsigned c = 0; c < 4; ++c)
        sys.setWorkload(static_cast<CoreId>(c), "mem", memWorkload());
    sys.boot({});
    const auto paths = sys.componentPaths();
    EXPECT_NE(std::find(paths.begin(), paths.end(), "system.arbiter"),
              paths.end());
    EXPECT_NE(std::find(paths.begin(), paths.end(),
                        "system.cluster1.mem"),
              paths.end());
    EXPECT_NE(sys.inspect("system.arbiter").find("rebalances"),
              std::string::npos);
    EXPECT_NE(sys.inspect("system.cluster1.coproc").size(), 0u);
    // Un-prefixed paths stay valid as cluster-0 aliases.
    EXPECT_NE(sys.inspect("system.mem").size(), 0u);
    sys.finalize();
}

} // namespace
} // namespace occamy
