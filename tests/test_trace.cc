/**
 * @file
 * Tests for the result exporters: CSV schemas, row counts matching the
 * run, and JSON well-formedness / content.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"
#include "workloads/phases.hh"

namespace occamy
{
namespace
{

RunResult
sampleRun()
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "mem",
                    {workloads::makeNamedPhase("rho_eos1", 8192)});
    sys.setWorkload(1, "comp",
                    {workloads::makeNamedPhase("wsm51", 16384)});
    return sys.run({.maxCycles = 10'000'000});
}

std::size_t
countLines(const std::string &text)
{
    std::size_t n = 0;
    for (char ch : text)
        if (ch == '\n')
            ++n;
    return n;
}

TEST(Trace, TimelineCsvShape)
{
    const RunResult r = sampleRun();
    std::ostringstream os;
    trace::writeTimelinesCsv(os, r);
    const std::string text = os.str();
    EXPECT_EQ(text.substr(0, 6), "bucket");
    EXPECT_NE(text.find("core0_busy"), std::string::npos);
    EXPECT_NE(text.find("core1_alloc"), std::string::npos);
    // Header + one row per bucket.
    EXPECT_EQ(countLines(text),
              1 + std::max(r.cores[0].busyLanesTimeline.size(),
                           r.cores[1].busyLanesTimeline.size()));
}

TEST(Trace, PhasesCsvHasOneRowPerPhase)
{
    const RunResult r = sampleRun();
    std::ostringstream os;
    trace::writePhasesCsv(os, r);
    EXPECT_EQ(countLines(os.str()),
              1 + r.cores[0].phases.size() + r.cores[1].phases.size());
    EXPECT_NE(os.str().find("rho_eos1"), std::string::npos);
    EXPECT_NE(os.str().find("wsm51"), std::string::npos);
}

TEST(Trace, BatchCsvEmptyForPinnedOnlyRuns)
{
    const RunResult r = sampleRun();
    std::ostringstream os;
    trace::writeBatchCsv(os, r);
    EXPECT_EQ(countLines(os.str()), 1u);   // Header only.
}

TEST(Trace, JsonContainsKeyMetrics)
{
    const RunResult r = sampleRun();
    const std::string json = trace::toJson(r);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(json.find("\"simd_util\":"), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"mem\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"comp\""), std::string::npos);
    EXPECT_NE(json.find("\"timed_out\":false"), std::string::npos);

    // Balanced braces and brackets (cheap well-formedness check).
    int braces = 0, brackets = 0;
    for (char ch : json) {
        braces += ch == '{' ? 1 : (ch == '}' ? -1 : 0);
        brackets += ch == '[' ? 1 : (ch == ']' ? -1 : 0);
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Trace, JsonRecordsBatchCompletions)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    sys.enqueueWorkload("queued",
                        {workloads::makeNamedPhase("wsm51", 16384)});
    const RunResult r = sys.run({.maxCycles = 10'000'000});
    const std::string json = trace::toJson(r);
    EXPECT_NE(json.find("\"name\":\"queued\""), std::string::npos);
}

TEST(Trace, FourCoreRunWidensEveryExporter)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 4));
    for (unsigned c = 0; c < 4; ++c)
        sys.setWorkload(static_cast<CoreId>(c),
                        "w" + std::to_string(c),
                        {workloads::makeNamedPhase(
                            c % 2 ? "wsm51" : "rho_eos1", 4096)});
    const RunResult r = sys.run({.maxCycles = 10'000'000});
    ASSERT_EQ(r.cores.size(), 4u);

    std::ostringstream tl;
    trace::writeTimelinesCsv(tl, r);
    EXPECT_NE(tl.str().find("core3_alloc"), std::string::npos);

    std::ostringstream ph;
    trace::writePhasesCsv(ph, r);
    EXPECT_EQ(countLines(ph.str()), 1u + 4u);
    EXPECT_NE(ph.str().find("3,wsm51"), std::string::npos);

    const std::string json = trace::toJson(r);
    EXPECT_NE(json.find("\"workload\":\"w3\""), std::string::npos);
}

TEST(Trace, TimedOutRunIsStillExportable)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Private, 2));
    sys.setWorkload(0, "long",
                    {workloads::makeNamedPhase("rho_eos1", 1u << 20)});
    sys.setWorkload(1, "idle", {});
    const RunResult r = sys.run({.maxCycles = 2'000});
    ASSERT_TRUE(r.timedOut);

    const std::string json = trace::toJson(r);
    EXPECT_NE(json.find("\"timed_out\":true"), std::string::npos);
    // Open phases report end == finish-so-far, never end < start.
    for (const auto &core : r.cores)
        for (const auto &p : core.phases)
            EXPECT_GE(p.end, p.start);
    std::ostringstream os;
    trace::writePhasesCsv(os, r);
    EXPECT_GE(countLines(os.str()), 2u);
}

TEST(Trace, ZeroPhaseResultProducesHeadersOnly)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Private, 2));
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    const RunResult r = sys.run({.maxCycles = 10'000});
    ASSERT_FALSE(r.timedOut);

    std::ostringstream ph;
    trace::writePhasesCsv(ph, r);
    EXPECT_EQ(ph.str(),
              "core,phase,start,end,compute_insts,issue_rate,first_vl,"
              "last_vl\n");
    std::ostringstream bt;
    trace::writeBatchCsv(bt, r);
    EXPECT_EQ(bt.str(), "workload,core,dispatched,finished\n");
    const std::string json = trace::toJson(r);
    EXPECT_NE(json.find("\"phases\":[]"), std::string::npos);
    EXPECT_NE(json.find("\"batch\":[]"), std::string::npos);
}

TEST(Trace, CsvQuotesAwkwardNamesAndJsonEscapesThem)
{
    // Names chosen to break naive exporters: comma, quote, newline,
    // backslash, tab.
    kir::Loop evil = workloads::makeNamedPhase("rho_eos1", 4096);
    evil.name = "a,b\"c\nd\\e\tf";

    System sys(MachineConfig::forPolicy(SharingPolicy::Private, 2));
    sys.setWorkload(0, "w,0", {evil});
    sys.setWorkload(1, "idle", {});
    const RunResult r = sys.run({.maxCycles = 10'000'000});
    ASSERT_FALSE(r.timedOut);

    std::ostringstream ph;
    trace::writePhasesCsv(ph, r);
    // RFC-4180: whole field quoted, embedded quote doubled; the raw
    // unquoted name must not appear.
    EXPECT_NE(ph.str().find("\"a,b\"\"c\nd\\e\tf\""), std::string::npos)
        << ph.str();

    const std::string json = trace::toJson(r);
    EXPECT_NE(json.find("\"workload\":\"w,0\""), std::string::npos);
    EXPECT_NE(json.find("a,b\\\"c\\nd\\\\e\\tf"), std::string::npos)
        << json;
    // Still structurally valid: no raw control characters inside.
    for (char ch : json)
        EXPECT_TRUE(static_cast<unsigned char>(ch) >= 0x20) << json;
}

} // namespace
} // namespace occamy
