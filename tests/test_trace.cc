/**
 * @file
 * Tests for the result exporters: CSV schemas, row counts matching the
 * run, and JSON well-formedness / content.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"
#include "workloads/phases.hh"

namespace occamy
{
namespace
{

RunResult
sampleRun()
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "mem",
                    {workloads::makeNamedPhase("rho_eos1", 8192)});
    sys.setWorkload(1, "comp",
                    {workloads::makeNamedPhase("wsm51", 16384)});
    return sys.run(10'000'000);
}

std::size_t
countLines(const std::string &text)
{
    std::size_t n = 0;
    for (char ch : text)
        if (ch == '\n')
            ++n;
    return n;
}

TEST(Trace, TimelineCsvShape)
{
    const RunResult r = sampleRun();
    std::ostringstream os;
    trace::writeTimelinesCsv(os, r);
    const std::string text = os.str();
    EXPECT_EQ(text.substr(0, 6), "bucket");
    EXPECT_NE(text.find("core0_busy"), std::string::npos);
    EXPECT_NE(text.find("core1_alloc"), std::string::npos);
    // Header + one row per bucket.
    EXPECT_EQ(countLines(text),
              1 + std::max(r.cores[0].busyLanesTimeline.size(),
                           r.cores[1].busyLanesTimeline.size()));
}

TEST(Trace, PhasesCsvHasOneRowPerPhase)
{
    const RunResult r = sampleRun();
    std::ostringstream os;
    trace::writePhasesCsv(os, r);
    EXPECT_EQ(countLines(os.str()),
              1 + r.cores[0].phases.size() + r.cores[1].phases.size());
    EXPECT_NE(os.str().find("rho_eos1"), std::string::npos);
    EXPECT_NE(os.str().find("wsm51"), std::string::npos);
}

TEST(Trace, BatchCsvEmptyForPinnedOnlyRuns)
{
    const RunResult r = sampleRun();
    std::ostringstream os;
    trace::writeBatchCsv(os, r);
    EXPECT_EQ(countLines(os.str()), 1u);   // Header only.
}

TEST(Trace, JsonContainsKeyMetrics)
{
    const RunResult r = sampleRun();
    const std::string json = trace::toJson(r);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(json.find("\"simd_util\":"), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"mem\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"comp\""), std::string::npos);
    EXPECT_NE(json.find("\"timed_out\":false"), std::string::npos);

    // Balanced braces and brackets (cheap well-formedness check).
    int braces = 0, brackets = 0;
    for (char ch : json) {
        braces += ch == '{' ? 1 : (ch == '}' ? -1 : 0);
        brackets += ch == '[' ? 1 : (ch == ']' ? -1 : 0);
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Trace, JsonRecordsBatchCompletions)
{
    System sys(MachineConfig::forPolicy(SharingPolicy::Elastic, 2));
    sys.setWorkload(0, "idle0", {});
    sys.setWorkload(1, "idle1", {});
    sys.enqueueWorkload("queued",
                        {workloads::makeNamedPhase("wsm51", 16384)});
    const RunResult r = sys.run(10'000'000);
    const std::string json = trace::toJson(r);
    EXPECT_NE(json.find("\"name\":\"queued\""), std::string::npos);
}

} // namespace
} // namespace occamy
